package mcbench

import (
	"mcbench/internal/multicore"
	"mcbench/internal/serve"
)

// WithSampling runs the detailed simulation under SMARTS-style
// systematic sampling instead of exactly: per unit µops committed by
// each core, one window of window µops is measured by the cycle-level
// model after warmup detailed µops of cache/predictor warmup, and the
// rest of the unit is fast-forwarded functionally (caches, branch
// predictors and prefetcher state stay warm; the out-of-order pipeline
// is skipped). The Result's IPC becomes an estimate of the steady-state
// IPC with CIHalf, CV and Windows populated:
//
//	r, err := mcbench.Simulate(ctx, []string{"mcf"},
//	    mcbench.WithSampling(10000, 2000, 2000),
//	    mcbench.WithTraceLen(10*mcbench.DefaultTraceLen))
//	// r.IPC[0] ± r.CIHalf[0] over r.Windows windows
//
// Sampling requires the Detailed engine and is mutually exclusive with
// WithWarmup (the spec's warmup argument plays that role per window).
// The estimate targets steady-state IPC: the windows never measure the
// cold-start transient a full run from reset includes, which is the
// point — and the reason sampled and exact IPCs on short traces differ
// by more than the confidence interval suggests. Accuracy degrades on
// strongly heterogeneous workload mixes, whose threads progress in
// lockstep during fast-forward; see internal/multicore's package notes.
func WithSampling(unit, window, warmup uint64) Option {
	return func(o *options) {
		o.sampling.Unit = unit
		o.sampling.Window = window
		o.sampling.Warmup = warmup
	}
}

// WithSamplingWarm bounds the functional warming of each skipped gap to
// the final n µops before the next window (the rest of the gap is
// skipped outright in O(1)). This is the experimental speed dial of
// sampled simulation: it caps the fast-forward cost per unit, buying
// 2-4× more speedup on coarse sampling units, at the price of warmup
// bias — under-warming truncates the cache reuse-distance tail (IPC
// biased low), and prefetch-heavy streaming workloads can swing the
// other way. Zero (the default) warms the whole gap. Only meaningful
// together with WithSampling.
func WithSamplingWarm(n uint64) Option {
	return func(o *options) { o.sampling.Warm = n }
}

// wireSampling renders the sampling options for a server submission
// (nil when no sampling option was given, keeping exact submissions
// byte-identical to previous versions).
func (o options) wireSampling() *serve.SampleSpec {
	if o.sampling == (multicore.SamplingSpec{}) {
		return nil
	}
	return &serve.SampleSpec{
		Unit: o.sampling.Unit, Window: o.sampling.Window,
		Warmup: o.sampling.Warmup, Warm: o.sampling.Warm,
	}
}

// convertSampled maps a sampled multicore result into the public Result.
func convertSampled(r multicore.SampledResult) *Result {
	out := convert(r.Result, Detailed)
	out.CIHalf = r.CIHalf
	out.CV = r.CV
	out.Windows = r.Windows
	return out
}
