package mcbench

import (
	"mcbench/internal/cophase"
)

// Cophase is a co-phase matrix simulator (Van Biesbrouck et al., ISPASS
// 2006 — the rigorous multiprogram simulation method the paper's
// footnote 4 points to): per-phase detailed samples fill a matrix of
// co-phase IPCs, and executions of any length are predicted analytically
// from it.
type Cophase = cophase.Simulator

// CophaseConfig parameterises the co-phase matrix method.
type CophaseConfig = cophase.Config

// CophaseResult is a co-phase prediction: per-thread IPCs plus the
// matrix size and detailed-simulation cost behind them.
type CophaseResult = cophase.Result

// NewCophase builds a co-phase simulator for the named workload over the
// given traces — materialised from any benchmark source via
// Source.Trace, or from the fixed-suite helpers GenerateTrace and
// GenerateSuite.
func NewCophase(workload []string, traces map[string]*Trace, cfg CophaseConfig) (*Cophase, error) {
	return cophase.New(workload, traces, cfg)
}
