package main

// mcbench top — a live terminal view of a running server's telemetry,
// rendered from GET /metrics?format=json (and /fleet/metrics when the
// server is a fleet coordinator). The same data a Prometheus scrape
// sees, without standing up a scrape stack: job traffic, sweep counts,
// store activity, per-endpoint HTTP latency, per-phase simulation time.
//
// `-timing` on a batch run prints the same per-phase table for the
// local process (the CLI's lab records into the process-wide registry).

import (
	"context"
	"flag"
	"fmt"
	"io"
	"os"
	"sort"
	"strings"
	"time"

	"mcbench"
)

func topCmd(ctx context.Context, args []string) int {
	fs := flag.NewFlagSet("top", flag.ContinueOnError)
	addr := fs.String("addr", "http://127.0.0.1:8080", "server base URL (http:// is assumed if missing)")
	interval := fs.Duration("interval", 2*time.Second, "refresh interval")
	count := fs.Int("n", 0, "number of refreshes before exiting (0 = until interrupted)")
	fs.Usage = func() {
		fmt.Fprintln(os.Stderr, "usage: mcbench top [-addr URL] [-interval D] [-n N]")
		fs.PrintDefaults()
	}
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if fs.NArg() != 0 {
		fmt.Fprintf(os.Stderr, "mcbench top: unexpected arguments %v\n", fs.Args())
		return 2
	}
	base := *addr
	if !strings.Contains(base, "://") {
		base = "http://" + base
	}
	c, err := mcbench.NewClient(base)
	if err != nil {
		fmt.Fprintln(os.Stderr, "mcbench top:", err)
		return 1
	}
	oneShot := *count == 1
	for i := 0; ; i++ {
		snap, err := c.Metrics(ctx)
		if err != nil {
			if ctx.Err() != nil {
				return 0
			}
			fmt.Fprintln(os.Stderr, "mcbench top:", err)
			return 1
		}
		// The fleet view only exists on a coordinator; a 404 just means
		// this node is a worker or standalone.
		fleet, err := c.FleetMetrics(ctx)
		if err != nil && !mcbench.IsNotFound(err) && ctx.Err() == nil {
			fmt.Fprintln(os.Stderr, "mcbench top: fleet metrics:", err)
		}
		if !oneShot {
			fmt.Print("\x1b[H\x1b[2J") // cursor home + clear: a fresh frame
		}
		renderTop(os.Stdout, base, snap, fleet)
		if *count > 0 && i+1 >= *count {
			return 0
		}
		select {
		case <-ctx.Done():
			return 0
		case <-time.After(*interval):
		}
	}
}

// renderTop draws one frame of the dashboard.
func renderTop(w io.Writer, base string, snap *mcbench.MetricsSnapshot, fleet *mcbench.FleetMetricsView) {
	up := time.Duration(snap.Gauge("mcbench_uptime_seconds") * float64(time.Second))
	fmt.Fprintf(w, "mcbench top — %s — up %s\n\n", base, up.Round(time.Second))

	ctr := snap.Counter
	fmt.Fprintf(w, "jobs    submitted %.0f (coalesced %.0f)  executed %.0f  done %.0f  failed %.0f  canceled %.0f  panics %.0f  timeouts %.0f\n",
		ctr("mcbench_jobs_submitted_total"), ctr("mcbench_jobs_coalesced_total"),
		ctr("mcbench_jobs_executed_total"), ctr("mcbench_jobs_completed_total"),
		ctr("mcbench_jobs_failed_total"), ctr("mcbench_jobs_canceled_total"),
		ctr("mcbench_jobs_panics_total"), ctr("mcbench_jobs_timeout_total"))
	fmt.Fprintf(w, "now     queued %.0f  running %.0f\n",
		snap.Gauge("mcbench_jobs_queued"), snap.Gauge("mcbench_jobs_running"))
	fmt.Fprintf(w, "sweeps  badco %.0f  detailed %.0f\n",
		snap.Counters[`mcbench_sweeps_total{sim="badco"}`],
		snap.Counters[`mcbench_sweeps_total{sim="detailed"}`])
	fmt.Fprintf(w, "store   saves %.0f  load hits %.0f  misses %.0f  fabric read-through %.0f\n",
		ctr("mcbench_store_saves_total"), ctr("mcbench_store_load_hits_total"),
		ctr("mcbench_store_load_misses_total"), ctr("mcbench_store_fabric_readthrough_total"))
	fmt.Fprintf(w, "lab     cache hits %.0f  misses %.0f\n",
		ctr("mcbench_lab_cache_hits_total"), ctr("mcbench_lab_cache_misses_total"))

	if rows := httpRows(snap); len(rows) > 0 {
		fmt.Fprintf(w, "\n%-28s %8s %10s %10s\n", "endpoint", "reqs", "p50", "p95")
		for _, r := range rows {
			fmt.Fprintf(w, "%-28s %8.0f %10s %10s\n", r.endpoint, r.reqs, fsec(r.p50), fsec(r.p95))
		}
	}
	if rows := phaseRows(snap.Histograms); len(rows) > 0 {
		fmt.Fprintf(w, "\n%-10s %-14s %6s %10s %10s\n", "sim", "phase", "runs", "p50", "total")
		for _, r := range rows {
			fmt.Fprintf(w, "%-10s %-14s %6d %10s %10s\n", r.sim, r.phase, r.count, fsec(r.p50), fsec(r.total))
		}
	}
	if fleet != nil {
		fmt.Fprintf(w, "\nfleet   workers %d scraped, %d failed  queued %.0f  running %.0f  sweeps %.0f  shards stolen %d\n",
			fleet.WorkersScraped, fleet.WorkersFailed,
			fleet.TotalQueued, fleet.TotalRunning, fleet.TotalSweeps, fleet.ShardsStolen)
		if len(fleet.Workers) > 0 {
			fmt.Fprintf(w, "%-14s %-22s %8s %6s %6s %8s %8s %10s\n",
				"worker", "addr", "beat", "queued", "run", "sweeps", "uptime", "sweeps/s")
			for _, wm := range fleet.Workers {
				if wm.Error != "" {
					fmt.Fprintf(w, "%-14s %-22s %8s  ! %s\n", wm.ID, wm.Addr, wm.HeartbeatAge, wm.Error)
					continue
				}
				fmt.Fprintf(w, "%-14s %-22s %8s %6.0f %6.0f %8.0f %8s %10.3f\n",
					wm.ID, wm.Addr, wm.HeartbeatAge, wm.Queued, wm.Running,
					wm.SweepsBadco+wm.SweepsDetailed,
					(time.Duration(wm.UptimeSeconds * float64(time.Second))).Round(time.Second),
					wm.SweepsPerSecond)
			}
		}
	}
}

type httpRow struct {
	endpoint string
	reqs     float64
	p50, p95 float64
}

func httpRows(snap *mcbench.MetricsSnapshot) []httpRow {
	var rows []httpRow
	for key, reqs := range snap.Counters {
		name, labels := parseSeries(key)
		if name != "mcbench_http_requests_total" {
			continue
		}
		ep := labels["endpoint"]
		r := httpRow{endpoint: ep, reqs: reqs}
		if h, ok := snap.Histograms[fmt.Sprintf("mcbench_http_request_seconds{endpoint=%q}", ep)]; ok {
			r.p50, r.p95 = h.P50, h.P95
		}
		rows = append(rows, r)
	}
	sort.Slice(rows, func(i, j int) bool { return rows[i].endpoint < rows[j].endpoint })
	return rows
}

type phaseRow struct {
	sim, phase string
	count      int64
	p50, total float64
}

// phaseRows distils the mcbench_lab_phase_seconds histogram family into
// a per-(sim, phase) table, kernel phase order preserved.
func phaseRows(hists map[string]mcbench.HistogramStat) []phaseRow {
	var rows []phaseRow
	for key, h := range hists {
		name, labels := parseSeries(key)
		if name != "mcbench_lab_phase_seconds" || h.Count == 0 {
			continue
		}
		rows = append(rows, phaseRow{
			sim: labels["sim"], phase: labels["phase"],
			count: h.Count, p50: h.P50, total: h.Sum,
		})
	}
	order := map[string]int{"trace_load": 0, "model_build": 1, "warmup": 2, "fast_forward": 3, "measure": 4, "store_save": 5}
	sort.Slice(rows, func(i, j int) bool {
		if rows[i].sim != rows[j].sim {
			return rows[i].sim < rows[j].sim
		}
		oi, oki := order[rows[i].phase]
		oj, okj := order[rows[j].phase]
		if oki && okj && oi != oj {
			return oi < oj
		}
		return rows[i].phase < rows[j].phase
	})
	return rows
}

// printTiming renders the local process's per-phase timing breakdown —
// the batch-mode `-timing` report. The lab records into the
// process-wide registry when no private one is configured, so after a
// campaign this is exactly the run's cost profile.
func printTiming(w io.Writer) {
	snap := mcbench.Telemetry()
	rows := phaseRows(snap.Histograms)
	if len(rows) == 0 {
		fmt.Fprintln(w, "\ntiming: no instrumented products ran (telemetry disabled, or everything came from cache)")
		return
	}
	fmt.Fprintf(w, "\nsimulation phase timing:\n")
	fmt.Fprintf(w, "  %-10s %-14s %6s %10s %10s\n", "sim", "phase", "runs", "p50", "total")
	for _, r := range rows {
		fmt.Fprintf(w, "  %-10s %-14s %6d %10s %10s\n", r.sim, r.phase, r.count, fsec(r.p50), fsec(r.total))
	}
	if prods := productRows(snap.Histograms); len(prods) > 0 {
		fmt.Fprintf(w, "\n  %-40s %6s %10s %10s\n", "product", "runs", "p95", "total")
		for _, r := range prods {
			fmt.Fprintf(w, "  %-40s %6d %10s %10s\n", r.id, r.count, fsec(r.p95), fsec(r.total))
		}
	}
}

type productRow struct {
	id         string
	count      int64
	p95, total float64
}

func productRows(hists map[string]mcbench.HistogramStat) []productRow {
	var rows []productRow
	for key, h := range hists {
		name, labels := parseSeries(key)
		if name != "mcbench_lab_product_seconds" || h.Count == 0 {
			continue
		}
		id := fmt.Sprintf("%s/%s cores=%s (%s)", labels["sim"], labels["policy"], labels["cores"], labels["sampling"])
		rows = append(rows, productRow{id: id, count: h.Count, p95: h.P95, total: h.Sum})
	}
	sort.Slice(rows, func(i, j int) bool { return rows[i].id < rows[j].id })
	return rows
}

// parseSeries splits a snapshot key (`name{k="v",...}` or bare `name`)
// back into name and labels. Label values never contain quotes here —
// they are sims, policies, phases and route patterns.
func parseSeries(key string) (string, map[string]string) {
	open := strings.IndexByte(key, '{')
	if open < 0 {
		return key, nil
	}
	name := key[:open]
	body := strings.TrimSuffix(key[open+1:], "}")
	labels := make(map[string]string)
	for _, pair := range strings.Split(body, ",") {
		k, v, ok := strings.Cut(pair, "=")
		if !ok {
			continue
		}
		labels[k] = strings.Trim(v, `"`)
	}
	return name, labels
}

// fsec formats a duration given in (float) seconds compactly.
func fsec(s float64) string {
	if s == 0 {
		return "0"
	}
	return time.Duration(s * float64(time.Second)).Round(10 * time.Microsecond).String()
}
