// Command mcbench regenerates the tables and figures of "Selecting
// Benchmark Combinations for the Evaluation of Multicore Throughput"
// (Velásquez, Michaud, Seznec — ISPASS 2013) on the reproduction's
// simulators.
//
// Usage:
//
//	mcbench [-quick] [-cores N] [-suite SPEC] <experiment>...
//	mcbench list
//	mcbench benches
//	mcbench sim <policy> <bench,bench,...>
//	mcbench serve [-addr HOST:PORT] [-workers N] [-queue N] [-join HOST:PORT] [-pprof]
//	mcbench top [-addr URL] [-interval D] [-n N]
//	mcbench version
//
// Experiments are dispatched through the registry in
// internal/experiments; `mcbench list` enumerates them. -quick runs a
// reduced campaign (smaller traces, subsampled populations, fewer
// Monte-Carlo trials) that finishes in a few minutes; the default
// campaign matches the paper's scale and may take much longer.
//
// -suite selects the benchmark source the campaign studies: "suite"
// (the paper's fixed 22 benchmarks), "scaled:B[:seed]" (B ∈ [12, 512]
// procedurally derived benchmarks), or "dir:PATH" (stored .mcbt
// traces). `mcbench benches` lists the active source's benchmarks.
//
// A SIGINT/SIGTERM cancels the campaign gracefully: in-flight population
// sweeps stop promptly, and every table completed before the interrupt
// is already persisted when -cache is set, so the next run resumes where
// this one stopped. `mcbench serve` rides the same signal path: a signal
// drains the server (running jobs are cancelled, completed sweeps are
// already persisted) and exits 0.
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"os"
	"runtime"
	"runtime/pprof"
	"strconv"
	"strings"
	"time"

	"mcbench"
	"mcbench/internal/badco"
	"mcbench/internal/bench"
	"mcbench/internal/buildinfo"
	"mcbench/internal/cache"
	"mcbench/internal/experiments"
	"mcbench/internal/multicore"
	"mcbench/internal/sigctx"
	"mcbench/internal/trace"
)

func main() {
	os.Exit(realMain())
}

// realMain is main with an exit code, so profile writers installed by
// startProfiles always run (os.Exit would skip deferred stops).
func realMain() int {
	quick := flag.Bool("quick", false, "reduced campaign (fast, lower resolution)")
	suiteSpec := flag.String("suite", "suite", "benchmark source: suite | scaled:B[:seed] | dir:PATH")
	cores := flag.Int("cores", 4, "core count for the single-core-count experiments (fig4/fig5/fig6/overhead/extensions)")
	cacheDir := flag.String("cache", "", "directory for persisting population sweeps across runs")
	plotFlag := flag.Bool("plot", false, "render figures as text charts in addition to tables")
	cpuProfile := flag.String("cpuprofile", "", "write a CPU profile to this file (pprof)")
	memProfile := flag.String("memprofile", "", "write a heap profile to this file at exit (pprof)")
	timing := flag.Bool("timing", false, "print the per-phase simulation timing breakdown after the campaign")
	flag.Usage = usage
	flag.Parse()

	if *cores < 1 {
		fmt.Fprintf(os.Stderr, "mcbench: -cores must be >= 1 (got %d)\n", *cores)
		return 2
	}

	args := flag.Args()
	if len(args) == 0 {
		usage()
		return 2
	}

	// SIGINT/SIGTERM cancel the campaign context; everything below —
	// warming, sweeps, experiment runs, the server's lifetime — stops
	// promptly when it fires. One signal path, one exit-code convention
	// (sigctx), shared by batch mode and serve.
	ctx, stop := sigctx.Notify(context.Background())
	defer stop()

	stopProfiles, err := startProfiles(*cpuProfile, *memProfile)
	if err != nil {
		fmt.Fprintln(os.Stderr, "mcbench:", err)
		return 1
	}
	defer stopProfiles()

	cfg := experiments.DefaultConfig()
	if *quick {
		cfg = experiments.QuickConfig()
	}
	cfg.CacheDir = *cacheDir
	src, err := bench.Parse(*suiteSpec)
	if err != nil {
		fmt.Fprintln(os.Stderr, "mcbench:", err)
		return 2
	}
	cfg.Source = src
	lab := experiments.NewLab(cfg)
	params := experiments.Params{Cores: *cores}

	switch args[0] {
	case "list":
		listExperiments(os.Stdout)
		return 0
	case "benches":
		listBenches(os.Stdout, src)
		return 0
	case "version":
		fmt.Println(buildinfo.Read())
		return 0
	case "serve":
		return serveCmd(ctx, cfg, args[1:])
	case "top":
		return topCmd(ctx, args[1:])
	case "sim":
		if err := simulate(ctx, cfg, args[1:]); err != nil {
			fmt.Fprintln(os.Stderr, "mcbench:", err)
			return sigctx.ExitCode(err)
		}
		return 0
	}

	// Validate every requested name before any simulation starts, so a
	// typo late in the argument list cannot waste a warmed campaign.
	for _, name := range args {
		if name == "all" {
			continue
		}
		if _, ok := experiments.Lookup(name); !ok {
			msg := fmt.Sprintf("mcbench: unknown experiment %q", name)
			if s := experiments.Suggest(name, "all", "list", "sim", "benches"); s != "" {
				msg += fmt.Sprintf(" (did you mean %q?)", s)
			}
			fmt.Fprintln(os.Stderr, msg)
			fmt.Fprintln(os.Stderr, "run `mcbench list` for the full catalogue")
			return 2
		}
	}

	// Precompute every table the selected experiments declare, with
	// campaign-level parallelism on top of the per-sweep parallelism, so
	// a full reproduction saturates the host's cores. The experiments
	// then read memoized (or -cache persisted) tables.
	if plan := lab.CampaignPlan(args, params); len(plan) > 0 {
		start := time.Now()
		n, err := lab.Warm(ctx, plan, 0)
		if err != nil {
			return campaignErr(err, *cacheDir)
		}
		fmt.Printf("(warmed %d tables/products in %v)\n\n", n, time.Since(start).Round(time.Millisecond))
	}

	for _, name := range args {
		names := []string{name}
		if name == "all" {
			names = experiments.AllExperiments()
		}
		for _, n := range names {
			if err := run(ctx, lab, n, params, *plotFlag); err != nil {
				return campaignErr(err, *cacheDir)
			}
		}
	}
	if *timing {
		printTiming(os.Stdout)
	}
	return 0
}

// campaignErr reports a campaign failure under the shared exit-code
// convention: a cancelled context (the signal path) is the conventional
// 130, everything else a plain failure.
func campaignErr(err error, cacheDir string) int {
	code := sigctx.ExitCode(err)
	if code == sigctx.ExitInterrupted {
		fmt.Fprintln(os.Stderr, "mcbench: interrupted")
		if cacheDir != "" {
			fmt.Fprintln(os.Stderr, "mcbench: completed sweeps are persisted in", cacheDir, "— rerun to resume")
		}
		return code
	}
	fmt.Fprintln(os.Stderr, "mcbench:", err)
	return code
}

// serveCmd runs the experiment service until the shared signal context
// fires, then drains: a SIGTERM'd server exits 0 with every completed
// sweep persisted (when -cache is set), and a restart serves them from
// disk. With -join the server runs as a fleet worker of the coordinator
// at that address; without it the server is itself a coordinator, and
// campaigns submitted to it shard across whatever workers have joined.
func serveCmd(ctx context.Context, cfg experiments.Config, args []string) int {
	fs := flag.NewFlagSet("serve", flag.ContinueOnError)
	addr := fs.String("addr", "127.0.0.1:8080", "listen address")
	workers := fs.Int("workers", 2, "concurrently executing jobs")
	queue := fs.Int("queue", 16, "bounded backlog of accepted jobs")
	keep := fs.Int("keep", 256, "settled jobs retained for querying (oldest evicted beyond)")
	jobTimeout := fs.Duration("job-timeout", 0, "per-job wall-clock bound; a job exceeding it fails (0 = unbounded)")
	join := fs.String("join", "", "coordinator address to join as a fleet worker (empty: run as coordinator)")
	advertise := fs.String("advertise", "", "address fleet peers reach this server at (default: the bound listen address)")
	heartbeat := fs.Duration("heartbeat", 0, "fleet worker heartbeat interval (0 = coordinator default, 5s)")
	stealAfter := fs.Duration("steal-after", 0, "re-issue a dispatched shard after this long on one worker (0 = only on lease lapse)")
	pprofOn := fs.Bool("pprof", false, "mount net/http/pprof under /debug/pprof/ (CPU/heap profiles, goroutine dumps)")
	fs.Usage = func() {
		fmt.Fprintln(os.Stderr, "usage: mcbench [-quick] [-suite SPEC] [-cache DIR] serve [-addr HOST:PORT] [-workers N] [-queue N] [-job-timeout D] [-join HOST:PORT] [-advertise HOST:PORT]")
		fs.PrintDefaults()
	}
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if fs.NArg() > 0 {
		fmt.Fprintf(os.Stderr, "mcbench serve: unexpected arguments %v\n", fs.Args())
		return 2
	}
	role := "coordinator"
	if *join != "" {
		role = "worker of " + *join
	}
	onReady := func(bound string) {
		fmt.Printf("mcbench serve: %s\n", buildinfo.Read())
		fmt.Printf("mcbench serve: listening on http://%s (source %s, %d workers, fleet %s)\n",
			bound, cfg.Source.Name(), *workers, role)
	}
	err := mcbench.Serve(ctx, cfg, mcbench.ServeOptions{
		Addr: *addr, Workers: *workers, QueueDepth: *queue,
		KeepJobs: *keep, JobTimeout: *jobTimeout, OnReady: onReady,
		Join: *join, Advertise: *advertise,
		FleetHeartbeat: *heartbeat, StealAfter: *stealAfter,
		Pprof: *pprofOn,
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, "mcbench serve:", err)
		return sigctx.ExitCode(err)
	}
	fmt.Println("mcbench serve: drained cleanly")
	return sigctx.ExitOK
}

// startProfiles starts CPU profiling and arranges a heap snapshot at
// stop, so future performance work starts from a profile instead of
// guesses: mcbench -quick -cpuprofile cpu.out all && go tool pprof cpu.out
func startProfiles(cpuPath, memPath string) (stop func(), err error) {
	var cpuFile *os.File
	if cpuPath != "" {
		cpuFile, err = os.Create(cpuPath)
		if err != nil {
			return nil, err
		}
		if err := pprof.StartCPUProfile(cpuFile); err != nil {
			cpuFile.Close()
			return nil, err
		}
	}
	return func() {
		if cpuFile != nil {
			pprof.StopCPUProfile()
			cpuFile.Close()
		}
		if memPath != "" {
			f, err := os.Create(memPath)
			if err != nil {
				fmt.Fprintln(os.Stderr, "mcbench: memprofile:", err)
				return
			}
			defer f.Close()
			runtime.GC() // materialize the final live set
			if err := pprof.WriteHeapProfile(f); err != nil {
				fmt.Fprintln(os.Stderr, "mcbench: memprofile:", err)
			}
		}
	}, nil
}

// simUsage is the sim subcommand synopsis.
const simUsage = "usage: mcbench sim [-warmup N] [-quota N] [-sample U:D:W[:F]] <policy> <bench,bench,...>"

// parseSampleSpec parses the -sample flag: colon-separated
// unit:window:warmup µops with an optional fourth bounded-warming field.
func parseSampleSpec(s string) (multicore.SamplingSpec, error) {
	var spec multicore.SamplingSpec
	parts := strings.Split(s, ":")
	if len(parts) < 3 || len(parts) > 4 {
		return spec, fmt.Errorf("-sample wants unit:window:warmup[:warm], got %q", s)
	}
	dst := []*uint64{&spec.Unit, &spec.Window, &spec.Warmup, &spec.Warm}
	for i, p := range parts {
		v, err := strconv.ParseUint(p, 10, 64)
		if err != nil {
			return spec, fmt.Errorf("-sample field %d: %v", i+1, err)
		}
		*dst[i] = v
	}
	return spec, spec.Validate()
}

// simulate runs one named workload under one policy with both simulators
// and prints the per-thread IPCs: mcbench sim DRRIP mcf,povray
// Benchmark names resolve through the -suite source. With -warmup each
// thread commits N µops before the measurement window opens. With
// -sample the detailed simulator runs under systematic sampling and the
// IPCs become estimates with a 95% confidence column.
func simulate(ctx context.Context, cfg experiments.Config, args []string) error {
	fs := flag.NewFlagSet("sim", flag.ContinueOnError)
	warmup := fs.Uint64("warmup", 0, "µops committed per thread before measurement (warms caches and predictors)")
	quota := fs.Uint64("quota", 0, "µops measured per thread (default: one trace length)")
	sample := fs.String("sample", "", "sampled detailed run: unit:window:warmup[:warm] µops (prints IPC ± 95% CI)")
	fs.Usage = func() {
		fmt.Fprintln(fs.Output(), simUsage)
		fs.PrintDefaults()
	}
	if err := fs.Parse(args); err != nil {
		return err
	}
	args = fs.Args()
	if len(args) != 2 {
		return fmt.Errorf("%s", simUsage)
	}
	policy := cache.PolicyName(args[0])
	if _, err := cache.NewPolicy(policy, 0); err != nil {
		return err
	}
	q := *quota
	if q == 0 {
		q = uint64(cfg.TraceLen)
	}
	if *warmup > q {
		return fmt.Errorf("warmup %d exceeds the instruction quota %d (use -quota to lengthen the measurement window)", *warmup, q)
	}
	src := cfg.Source
	names := strings.Split(args[1], ",")
	distinct, err := bench.CheckNames(src, [][]string{names})
	if err != nil {
		return fmt.Errorf("%w (run `mcbench benches`)", err)
	}
	w := multicore.Workload(names)
	prov := bench.At(src, cfg.TraceLen)

	if *sample != "" {
		spec, err := parseSampleSpec(*sample)
		if err != nil {
			return err
		}
		if *warmup > 0 {
			return fmt.Errorf("-warmup and -sample are mutually exclusive (the sample spec's warmup field plays that role per window)")
		}
		r, err := multicore.DetailedSampled(ctx, w, prov, policy, spec, *quota)
		if err != nil {
			return err
		}
		fmt.Printf("workload %s under %s (sampled %s, %d windows of %d µops)\n",
			w, policy, spec, r.Windows, spec.Window)
		fmt.Printf("%-12s  %10s  %10s  %8s\n", "thread", "IPC(est)", "±95% CI", "cv")
		for i, n := range names {
			fmt.Printf("%-12s  %10.4f  %10.4f  %8.3f\n", n, r.IPC[i], r.CIHalf[i], r.CV[i])
		}
		return nil
	}

	det, err := multicore.DetailedWithWarmup(ctx, w, prov, policy, *warmup, *quota)
	if err != nil {
		return err
	}
	models, err := multicore.BuildModels(ctx, prov, distinct, badco.DefaultBuildConfig())
	if err != nil {
		return err
	}
	app, err := multicore.ApproximateWithWarmup(ctx, w, models, policy, *warmup, *quota)
	if err != nil {
		return err
	}
	window := fmt.Sprintf("%d µops/thread", q)
	if *warmup > 0 {
		window += fmt.Sprintf(" after %d warmup", *warmup)
	}
	fmt.Printf("workload %s under %s (%s)\n", w, policy, window)
	fmt.Printf("%-12s  %10s  %10s\n", "thread", "detailed", "BADCO")
	for i, n := range names {
		fmt.Printf("%-12s  %10.4f  %10.4f\n", n, det.IPC[i], app.IPC[i])
	}
	return nil
}

// listBenches prints the active source's benchmark catalogue.
func listBenches(w io.Writer, src bench.Source) {
	names := src.Names()
	fmt.Fprintf(w, "benchmarks of source %s (%d):\n", src.Name(), len(names))
	type paramsSource interface {
		Params(string) (trace.Params, bool)
	}
	ps, hasParams := src.(paramsSource)
	for i, n := range names {
		line := fmt.Sprintf("  %3d  %-12s", i, n)
		if hasParams {
			if p, ok := ps.Params(n); ok {
				pats := ""
				for j, spec := range p.Patterns {
					if j > 0 {
						pats += "+"
					}
					pats += spec.Kind.String()
				}
				line += fmt.Sprintf("  load %.2f  store %.2f  branch %.2f  fp %.2f  %s",
					p.LoadFrac, p.StoreFrac, p.BranchFrac, p.FPFrac, pats)
			}
		}
		fmt.Fprintln(w, line)
	}
}

// listExperiments prints the registry catalogue, grouped.
func listExperiments(w io.Writer) {
	fmt.Fprintln(w, "experiments (paper):")
	printGroup(w, experiments.GroupPaper)
	fmt.Fprintln(w, "\nextensions (beyond the paper):")
	printGroup(w, experiments.GroupExtension)
	fmt.Fprintln(w, "\ncommands:")
	printEntry(w, "all", "every paper experiment above, in order")
	printEntry(w, "sim", "simulate one workload: mcbench sim [-warmup N] [-sample U:D:W] <policy> <bench,bench,...>")
	printEntry(w, "benches", "list the active -suite source's benchmarks")
	printEntry(w, "serve", "run the experiment service: mcbench serve [-addr HOST:PORT]")
	printEntry(w, "top", "live telemetry view of a server: mcbench top [-addr URL] [-interval D]")
	printEntry(w, "version", "print the build identity")
	printEntry(w, "list", "this catalogue")
}

func printGroup(w io.Writer, g experiments.Group) {
	for _, e := range experiments.ByGroup(g) {
		printEntry(w, e.Name(), e.Synopsis())
	}
}

// printEntry is the one place the catalogue's column layout lives, so
// `mcbench list` and the usage text cannot drift apart.
func printEntry(w io.Writer, name, synopsis string) {
	fmt.Fprintf(w, "  %-18s%s\n", name, synopsis)
}

// usage is generated from the registry, so a newly registered experiment
// shows up without touching the CLI.
func usage() {
	fmt.Fprint(os.Stderr, `usage: mcbench [-quick] [-cores N] [-suite SPEC] <experiment>...

experiments:
`)
	printGroup(os.Stderr, experiments.GroupPaper)
	printEntry(os.Stderr, "all", "everything above")
	fmt.Fprint(os.Stderr, "\nextensions (beyond the paper):\n")
	printGroup(os.Stderr, experiments.GroupExtension)
	printEntry(os.Stderr, "sim", "simulate one workload: mcbench sim [-warmup N] [-sample U:D:W] <policy> <bench,bench,...>")
	printEntry(os.Stderr, "benches", "list the active -suite source's benchmarks")
	printEntry(os.Stderr, "serve", "run the experiment service: mcbench serve [-addr HOST:PORT]")
	printEntry(os.Stderr, "top", "live telemetry view of a server: mcbench top [-addr URL] [-interval D]")
	printEntry(os.Stderr, "version", "print the build identity")
	fmt.Fprint(os.Stderr, `
commands: list enumerates the catalogue with one line per experiment
flags: -suite selects the benchmark source (suite | scaled:B[:seed] | dir:PATH)
       -plot renders figures as text charts in addition to tables
       -timing prints the per-phase simulation timing breakdown after the run
       -cpuprofile/-memprofile write pprof profiles for performance work
`)
}

// run executes one registered experiment and prints its table (and
// chart, with -plot).
func run(ctx context.Context, lab *experiments.Lab, name string, p experiments.Params, plotFlag bool) error {
	e, ok := experiments.Lookup(name)
	if !ok {
		// Unreachable after upfront validation; kept for safety.
		return fmt.Errorf("unknown experiment %q", name)
	}
	start := time.Now()
	t, err := e.Run(ctx, lab, p)
	if err != nil {
		return err
	}
	t.Fprint(os.Stdout)
	if plotFlag {
		if chart, ok, err := experiments.Chart(ctx, e, lab, p); err != nil {
			return err
		} else if ok && chart != "" {
			fmt.Println(chart)
		}
	}
	fmt.Printf("(%s took %v)\n\n", name, time.Since(start).Round(time.Millisecond))
	return nil
}
