// Command mcbench regenerates the tables and figures of "Selecting
// Benchmark Combinations for the Evaluation of Multicore Throughput"
// (Velásquez, Michaud, Seznec — ISPASS 2013) on the reproduction's
// simulators.
//
// Usage:
//
//	mcbench [-quick] [-cores N] <experiment>...
//
// where experiment is one of: fig1, fig2, fig3, fig4, fig5, fig6, fig7,
// table3, table4, overhead, config, all.
//
// -quick runs a reduced campaign (smaller traces, subsampled populations,
// fewer Monte-Carlo trials) that finishes in a few minutes; the default
// campaign matches the paper's scale and may take much longer.
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
	"strings"
	"time"

	"mcbench/internal/badco"
	"mcbench/internal/cache"
	"mcbench/internal/cpu"
	"mcbench/internal/experiments"
	"mcbench/internal/metrics"
	"mcbench/internal/multicore"
	"mcbench/internal/trace"
	"mcbench/internal/uncore"
)

func main() {
	os.Exit(realMain())
}

// realMain is main with an exit code, so profile writers installed by
// startProfiles always run (os.Exit would skip deferred stops).
func realMain() int {
	quick := flag.Bool("quick", false, "reduced campaign (fast, lower resolution)")
	cores := flag.Int("cores", 4, "core count for fig4/fig5/fig6/overhead")
	cacheDir := flag.String("cache", "", "directory for persisting population sweeps across runs")
	plotFlag := flag.Bool("plot", false, "render figures as text charts in addition to tables")
	cpuProfile := flag.String("cpuprofile", "", "write a CPU profile to this file (pprof)")
	memProfile := flag.String("memprofile", "", "write a heap profile to this file at exit (pprof)")
	flag.Usage = usage
	flag.Parse()

	args := flag.Args()
	if len(args) == 0 {
		usage()
		return 2
	}

	stopProfiles, err := startProfiles(*cpuProfile, *memProfile)
	if err != nil {
		fmt.Fprintln(os.Stderr, "mcbench:", err)
		return 1
	}
	defer stopProfiles()

	cfg := experiments.DefaultConfig()
	if *quick {
		cfg = experiments.QuickConfig()
	}
	cfg.CacheDir = *cacheDir
	lab := experiments.NewLab(cfg)

	if args[0] == "sim" {
		if err := simulate(cfg, args[1:]); err != nil {
			fmt.Fprintln(os.Stderr, "mcbench:", err)
			return 1
		}
		return 0
	}

	// Precompute every table the selected experiments declare, with
	// campaign-level parallelism on top of the per-sweep parallelism, so
	// a full reproduction saturates the host's cores. The experiments
	// then read memoized (or -cache persisted) tables.
	if plan := lab.CampaignPlan(args, *cores); len(plan) > 0 {
		start := time.Now()
		n := lab.Warm(plan, 0)
		fmt.Printf("(warmed %d tables/products in %v)\n\n", n, time.Since(start).Round(time.Millisecond))
	}

	for _, name := range args {
		if name == "all" {
			if err := runAll(lab, *cores, *plotFlag); err != nil {
				fmt.Fprintln(os.Stderr, "mcbench:", err)
				return 1
			}
			continue
		}
		if err := run(lab, name, *cores, *plotFlag); err != nil {
			fmt.Fprintln(os.Stderr, "mcbench:", err)
			return 1
		}
	}
	return 0
}

// startProfiles starts CPU profiling and arranges a heap snapshot at
// stop, so future performance work starts from a profile instead of
// guesses: mcbench -quick -cpuprofile cpu.out all && go tool pprof cpu.out
func startProfiles(cpuPath, memPath string) (stop func(), err error) {
	var cpuFile *os.File
	if cpuPath != "" {
		cpuFile, err = os.Create(cpuPath)
		if err != nil {
			return nil, err
		}
		if err := pprof.StartCPUProfile(cpuFile); err != nil {
			cpuFile.Close()
			return nil, err
		}
	}
	return func() {
		if cpuFile != nil {
			pprof.StopCPUProfile()
			cpuFile.Close()
		}
		if memPath != "" {
			f, err := os.Create(memPath)
			if err != nil {
				fmt.Fprintln(os.Stderr, "mcbench: memprofile:", err)
				return
			}
			defer f.Close()
			runtime.GC() // materialize the final live set
			if err := pprof.WriteHeapProfile(f); err != nil {
				fmt.Fprintln(os.Stderr, "mcbench: memprofile:", err)
			}
		}
	}, nil
}

// simulate runs one named workload under one policy with both simulators
// and prints the per-thread IPCs: mcbench sim DRRIP mcf,povray
func simulate(cfg experiments.Config, args []string) error {
	if len(args) != 2 {
		return fmt.Errorf("usage: mcbench sim <policy> <bench,bench,...>")
	}
	policy := cache.PolicyName(args[0])
	if _, err := cache.NewPolicy(policy, 0); err != nil {
		return err
	}
	names := strings.Split(args[1], ",")
	traces := map[string]*trace.Trace{}
	for _, n := range names {
		p, ok := trace.ByName(n)
		if !ok {
			return fmt.Errorf("unknown benchmark %q (see internal/trace Suite)", n)
		}
		traces[n] = trace.MustGenerate(p, cfg.TraceLen)
	}
	w := multicore.Workload(names)

	det, err := multicore.Detailed(w, traces, policy, 0)
	if err != nil {
		return err
	}
	models, err := multicore.BuildModels(traces, badco.DefaultBuildConfig())
	if err != nil {
		return err
	}
	app, err := multicore.Approximate(w, models, policy, 0)
	if err != nil {
		return err
	}
	fmt.Printf("workload %s under %s (%d µops/thread)\n", w, policy, cfg.TraceLen)
	fmt.Printf("%-12s  %10s  %10s\n", "thread", "detailed", "BADCO")
	for i, n := range names {
		fmt.Printf("%-12s  %10.4f  %10.4f\n", n, det.IPC[i], app.IPC[i])
	}
	return nil
}

func usage() {
	fmt.Fprintf(os.Stderr, `usage: mcbench [-quick] [-cores N] <experiment>...

experiments:
  fig1      confidence vs (1/cv)sqrt(W/2), the analytic model curve
  fig2      detailed vs BADCO CPI/speedup accuracy
  fig3      confidence vs sample size: experiment vs model (DRRIP>DIP, WSU)
  fig4      1/cv per policy pair x metric: samples vs population (4 cores)
  fig5      1/cv on the full population per metric
  fig6      confidence for 4 sampling methods (IPCT)
  fig7      actual (detailed-simulator) confidence for DIP>LRU
  table3    simulation speed (MIPS) and BADCO speedup
  table4    benchmark MPKI classification
  overhead  Section VII-A simulation-overhead example
  config    print the simulated core/uncore configurations
  all       everything above

extensions (beyond the paper):
  ablation-strata   WT/TSD sensitivity of workload stratification
  ablation-classes  value of the MPKI classes for benchmark stratification
  ablation-metrics  required sample size per throughput metric (incl. GMSU)
  speedup           accuracy of sample speedup estimates (paper's open problem)
  guideline         Sec. VII decision procedure applied to every pair
  methods           six selection methods incl. cluster-based (Sec. II-B refs [6,7])
  cophase           co-phase matrix method vs detailed simulation (footnote 4)
  predictors        branch predictor ablation (bimodal/gshare/tournament/TAGE)
  normality         CLT premise: KS distance of mean(d) from normal vs W
  profiles          microarchitecture-independent benchmark profiles
  policies          SRRIP/PLRU/SHiP placed in the paper's 1/cv framework
  sim               simulate one workload: mcbench sim <policy> <bench,bench,...>

flags: -plot renders figures as text charts in addition to tables
       -cpuprofile/-memprofile write pprof profiles for performance work
`)
}

func runAll(lab *experiments.Lab, cores int, plotFlag bool) error {
	for _, name := range experiments.AllExperiments() {
		if err := run(lab, name, cores, plotFlag); err != nil {
			return err
		}
	}
	return nil
}

func run(lab *experiments.Lab, name string, cores int, plotFlag bool) error {
	start := time.Now()
	var t *experiments.Table
	switch name {
	case "fig1":
		t = experiments.Fig1()
	case "fig2":
		t = lab.Fig2Table(nil)
	case "fig3":
		t = lab.Fig3Table(nil)
	case "fig4":
		t = lab.Fig4Table(cores)
	case "fig5":
		t = lab.Fig5Table(cores)
	case "fig6":
		t = lab.Fig6Table(cores)
	case "fig7":
		t = lab.Fig7Table(nil)
	case "table3":
		t = lab.TableIIITable(3)
	case "table4":
		t = lab.TableIV()
	case "overhead":
		t = lab.OverheadTable(cores)
	case "ablation-strata":
		t = lab.AblationStrataParams(cores, 20)
	case "ablation-classes":
		t = lab.AblationClassification(cores, 20)
	case "ablation-metrics":
		t = lab.AblationMetricChoice(cores)
	case "speedup":
		t = lab.SpeedupAccuracyTable(cores)
	case "guideline":
		t = lab.GuidelineTable(cores, metrics.WSU)
	case "methods":
		t = lab.ExtMethodsTable(cores)
	case "cophase":
		t = lab.CophaseTable()
	case "predictors":
		t = lab.PredictorTable()
	case "normality":
		t = lab.NormalityTable(cores)
	case "profiles":
		t = lab.ProfileTable()
	case "policies":
		t = lab.ExtPoliciesTable(cores)
	case "config":
		t = configTable()
	default:
		return fmt.Errorf("unknown experiment %q", name)
	}
	t.Fprint(os.Stdout)
	if plotFlag {
		if chart := chartFor(lab, name, cores); chart != "" {
			fmt.Println(chart)
		}
	}
	fmt.Printf("(%s took %v)\n\n", name, time.Since(start).Round(time.Millisecond))
	return nil
}

// chartFor renders the text chart of figures that have one.
func chartFor(lab *experiments.Lab, name string, cores int) string {
	switch name {
	case "fig1":
		return experiments.Fig1Chart()
	case "fig2":
		return lab.Fig2Chart(nil)
	case "fig3":
		return lab.Fig3Chart(nil)
	case "fig5":
		return lab.Fig5Chart(cores)
	case "fig6":
		return lab.Fig6Chart(cores)
	}
	return ""
}

// configTable prints the Table I / Table II configurations in force.
func configTable() *experiments.Table {
	core := cpu.DefaultConfig()
	t := &experiments.Table{
		Title:   "Tables I & II: simulated configurations",
		Columns: []string{"parameter", "value"},
		Notes: []string{
			"LLC capacities are the paper's scaled by 1/4, matching the 10^-3 trace-length scale (see DESIGN.md)",
		},
	}
	t.AddRow("decode/issue/commit", fmt.Sprintf("%d/%d/%d", core.DecodeWidth, core.IssueWidth, core.CommitWidth))
	t.AddRow("RS/LDQ/STQ/ROB", fmt.Sprintf("%d/%d/%d/%d", core.RS, core.LDQ, core.STQ, core.ROB))
	t.AddRow("IL1", fmt.Sprintf("%d kB, %d-way, %d cycles", core.IL1Bytes>>10, core.IL1Ways, core.IL1Lat))
	t.AddRow("DL1", fmt.Sprintf("%d kB, %d-way, %d cycles, %d MSHRs", core.DL1Bytes>>10, core.DL1Ways, core.DL1Lat, core.DL1MSHRs))
	t.AddRow("ITLB/DTLB", fmt.Sprintf("%d/%d entries, %d-cycle walk", core.ITLBEntries, core.DTLBEntries, core.TLBWalkLat))
	t.AddRow("branch predictor", fmt.Sprintf("bimodal 2^%d, %d-cycle redirect", core.BPIndexBits, core.MispredictPenalty))
	for _, k := range []int{2, 4, 8} {
		u := uncore.ConfigFor(k, "LRU")
		t.AddRow(fmt.Sprintf("uncore %d cores", k),
			fmt.Sprintf("LLC %d kB/%d-way/%d cycles, %d MSHRs, %d-entry WB, DRAM %d cycles",
				u.LLCBytes>>10, u.LLCWays, u.LLCLatency, u.MSHRs, u.WriteBufEnts, u.DRAMLatency))
	}
	return t
}
