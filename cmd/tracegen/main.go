// Command tracegen generates, stores and inspects the synthetic benchmark
// traces that stand in for the paper's SimpleScalar EIO traces.
//
// Usage:
//
//	tracegen -out DIR [-len N] [benchmark...]   generate traces to DIR
//	tracegen -info FILE...                      summarise stored traces
//	tracegen -list                              list the 22-benchmark suite
//
// Without a benchmark list, -out generates the whole suite. Stored traces
// use the compact delta/varint format of internal/trace (one .mcbt file
// per benchmark) and are verified by checksum on load.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"

	"mcbench/internal/profile"
	"mcbench/internal/trace"
)

func main() {
	out := flag.String("out", "", "output directory for generated traces")
	length := flag.Int("len", trace.DefaultTraceLen, "µops per trace")
	info := flag.Bool("info", false, "summarise stored trace files")
	list := flag.Bool("list", false, "list the benchmark suite")
	flag.Parse()

	switch {
	case *list:
		listSuite()
	case *info:
		if err := describe(flag.Args()); err != nil {
			fail(err)
		}
	case *out != "":
		if err := generate(*out, *length, flag.Args()); err != nil {
			fail(err)
		}
	default:
		flag.Usage()
		os.Exit(2)
	}
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, "tracegen:", err)
	os.Exit(1)
}

func listSuite() {
	fmt.Printf("%-12s %6s %6s %6s %6s  %s\n", "benchmark", "load", "store", "branch", "fp", "patterns")
	for _, name := range trace.SuiteNames() {
		p, _ := trace.ByName(name)
		pats := ""
		for i, ps := range p.Patterns {
			if i > 0 {
				pats += "+"
			}
			pats += ps.Kind.String()
		}
		fmt.Printf("%-12s %6.2f %6.2f %6.2f %6.2f  %s\n",
			name, p.LoadFrac, p.StoreFrac, p.BranchFrac, p.FPFrac, pats)
	}
}

func generate(dir string, length int, names []string) error {
	if len(names) == 0 {
		names = trace.SuiteNames()
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	for _, name := range names {
		params, ok := trace.ByName(name)
		if !ok {
			return fmt.Errorf("unknown benchmark %q (try -list)", name)
		}
		tr, err := trace.Generate(params, length)
		if err != nil {
			return err
		}
		path := filepath.Join(dir, name+".mcbt")
		if err := tr.SaveFile(path); err != nil {
			return err
		}
		st, err := os.Stat(path)
		if err != nil {
			return err
		}
		fmt.Printf("%-12s %8d µops  %8d bytes  (%.1f bytes/µop)  %s\n",
			name, tr.Len(), st.Size(), float64(st.Size())/float64(tr.Len()), path)
	}
	return nil
}

func describe(paths []string) error {
	if len(paths) == 0 {
		return fmt.Errorf("usage: tracegen -info FILE...")
	}
	for _, path := range paths {
		tr, err := trace.LoadFile(path)
		if err != nil {
			return fmt.Errorf("%s: %w", path, err)
		}
		p, err := profile.Compute(tr)
		if err != nil {
			return fmt.Errorf("%s: %w", path, err)
		}
		fmt.Printf("%s: %s, %d µops\n", path, tr.Name, tr.Len())
		fmt.Printf("  mix: %.2f load, %.2f store, %.2f branch, %.2f fp, %.2f call/ret\n",
			p.LoadFrac, p.StoreFrac, p.BranchFrac, p.FPFrac, p.CallFrac)
		fmt.Printf("  footprint: %d code lines, %d data lines; %.0f%% sequential refs\n",
			p.CodeLines, p.DataLines, p.SeqFrac*100)
		fmt.Printf("  est. miss ratio: %.3f @16kB, %.3f @256kB, %.3f @1MB; est. MPKI @512kB: %.2f\n",
			p.MissRatio(1<<8), p.MissRatio(1<<12), p.MissRatio(1<<14), p.EstMPKI(512<<10))
	}
	return nil
}
