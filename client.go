package mcbench

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"strings"
	"time"

	"mcbench/internal/serve"
)

// Client talks to an mcbench serve instance: submit experiment,
// simulate and sweep jobs, follow their progress, fetch results, and
// browse the server's catalogues and persistent cache.
//
//	c, err := mcbench.NewClient("http://127.0.0.1:8080")
//	st, err := c.SubmitExperiment(ctx, "fig6", 4)
//	res, err := c.Wait(ctx, st.ID)
//	fmt.Print(res.Text)
//
// Identical in-flight submissions coalesce server-side: submitting a
// job another client already has running returns the same job ID with
// Deduped set, and both clients follow one computation.
type Client struct {
	base string
	hc   *http.Client
}

// NewClient validates the base URL ("http://host:port") and returns a
// client over http.DefaultClient semantics (no request timeout; pass
// deadline contexts to the calls instead — Events long-polls are
// expected to dwell).
func NewClient(baseURL string) (*Client, error) {
	u, err := url.Parse(baseURL)
	if err != nil {
		return nil, fmt.Errorf("mcbench: bad server URL %q: %w", baseURL, err)
	}
	if u.Scheme != "http" && u.Scheme != "https" {
		return nil, fmt.Errorf("mcbench: server URL %q needs an http(s) scheme", baseURL)
	}
	return &Client{base: strings.TrimRight(u.String(), "/"), hc: &http.Client{}}, nil
}

// apiError is a non-2xx server response.
type apiError struct {
	status  int
	message string
}

func (e *apiError) Error() string {
	return fmt.Sprintf("mcbench: server %d: %s", e.status, e.message)
}

// do performs one JSON exchange. A nil in means no body; a nil out
// discards the response payload.
func (c *Client) do(ctx context.Context, method, path string, in, out any) error {
	var body io.Reader
	if in != nil {
		data, err := json.Marshal(in)
		if err != nil {
			return fmt.Errorf("mcbench: %w", err)
		}
		body = bytes.NewReader(data)
	}
	req, err := http.NewRequestWithContext(ctx, method, c.base+path, body)
	if err != nil {
		return fmt.Errorf("mcbench: %w", err)
	}
	if in != nil {
		req.Header.Set("Content-Type", "application/json")
	}
	resp, err := c.hc.Do(req)
	if err != nil {
		return fmt.Errorf("mcbench: %w", err)
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		return fmt.Errorf("mcbench: %w", err)
	}
	if resp.StatusCode >= 300 {
		var payload struct {
			Error string `json:"error"`
		}
		msg := strings.TrimSpace(string(data))
		if json.Unmarshal(data, &payload) == nil && payload.Error != "" {
			msg = payload.Error
		}
		return &apiError{status: resp.StatusCode, message: msg}
	}
	if out == nil {
		return nil
	}
	if err := json.Unmarshal(data, out); err != nil {
		return fmt.Errorf("mcbench: decoding %s: %w", path, err)
	}
	return nil
}

// Health fetches /healthz: build identity, uptime, source, job stats.
func (c *Client) Health(ctx context.Context) (*ServerHealth, error) {
	var h ServerHealth
	if err := c.do(ctx, http.MethodGet, "/healthz", nil, &h); err != nil {
		return nil, err
	}
	return &h, nil
}

// ServerExperiments fetches the server's registry catalogue.
func (c *Client) ServerExperiments(ctx context.Context) ([]ServeExperimentInfo, error) {
	var payload struct {
		Experiments []ServeExperimentInfo `json:"experiments"`
	}
	if err := c.do(ctx, http.MethodGet, "/experiments", nil, &payload); err != nil {
		return nil, err
	}
	return payload.Experiments, nil
}

// Benches fetches the server's benchmark catalogue and source name.
func (c *Client) Benches(ctx context.Context) (source string, benches []BenchInfo, err error) {
	var payload struct {
		Source     string      `json:"source"`
		Benchmarks []BenchInfo `json:"benchmarks"`
	}
	if err := c.do(ctx, http.MethodGet, "/benches", nil, &payload); err != nil {
		return "", nil, err
	}
	return payload.Source, payload.Benchmarks, nil
}

// Cache lists the server's persistent result store, identities
// preserved (empty when the server runs without a cache directory).
func (c *Client) Cache(ctx context.Context) ([]CacheEntry, error) {
	var payload struct {
		Entries []CacheEntry `json:"entries"`
	}
	if err := c.do(ctx, http.MethodGet, "/cache", nil, &payload); err != nil {
		return nil, err
	}
	return payload.Entries, nil
}

// SubmitExperiment submits a registered experiment (cores 0 = the
// experiment's paper default). The returned status carries the job ID;
// Deduped is set when an identical in-flight job absorbed the
// submission.
func (c *Client) SubmitExperiment(ctx context.Context, name string, cores int) (*JobStatus, error) {
	return c.submit(ctx, serve.SubmitRequest{
		Kind:       serve.KindExperiment,
		Experiment: &serve.ExperimentRequest{Name: name, Cores: cores},
	})
}

// SubmitSimulate submits one ad-hoc workload. The options mirror
// Simulate: WithPolicy, WithSimulator, WithQuota, WithCores.
// WithTraceLen and WithSuite are rejected — the server's lab fixes both.
func (c *Client) SubmitSimulate(ctx context.Context, workload []string, opts ...Option) (*JobStatus, error) {
	o, err := serverOptions(opts)
	if err != nil {
		return nil, err
	}
	return c.submit(ctx, serve.SubmitRequest{
		Kind: serve.KindSimulate,
		Simulate: &serve.SimulateRequest{
			Workload: workload, Policy: string(o.policy), Engine: o.engine.String(),
			Quota: o.quota, Cores: o.cores,
		},
	})
}

// SubmitSweep submits many ad-hoc workloads under one configuration.
func (c *Client) SubmitSweep(ctx context.Context, workloads [][]string, opts ...Option) (*JobStatus, error) {
	o, err := serverOptions(opts)
	if err != nil {
		return nil, err
	}
	return c.submit(ctx, serve.SubmitRequest{
		Kind: serve.KindSweep,
		Sweep: &serve.SweepRequest{
			Workloads: workloads, Policy: string(o.policy), Engine: o.engine.String(),
			Quota: o.quota, Cores: o.cores,
		},
	})
}

// serverOptions resolves the public options into a server submission,
// rejecting the ones a remote lab cannot honour.
func serverOptions(opts []Option) (options, error) {
	o := buildOptions(opts)
	if o.fixedLen {
		return o, fmt.Errorf("mcbench: WithTraceLen applies to local simulation; a server's trace length is its lab's Config.TraceLen")
	}
	if o.suite != nil {
		return o, fmt.Errorf("mcbench: WithSuite applies to local simulation; a server's source is its lab's Config.Source")
	}
	return o, nil
}

func (c *Client) submit(ctx context.Context, req serve.SubmitRequest) (*JobStatus, error) {
	var st JobStatus
	if err := c.do(ctx, http.MethodPost, "/jobs", req, &st); err != nil {
		return nil, err
	}
	return &st, nil
}

// Job fetches one job's status.
func (c *Client) Job(ctx context.Context, id string) (*JobStatus, error) {
	var st JobStatus
	if err := c.do(ctx, http.MethodGet, "/jobs/"+url.PathEscape(id), nil, &st); err != nil {
		return nil, err
	}
	return &st, nil
}

// Jobs lists every job the server knows, in submission order.
func (c *Client) Jobs(ctx context.Context) ([]JobStatus, error) {
	var payload struct {
		Jobs []JobStatus `json:"jobs"`
	}
	if err := c.do(ctx, http.MethodGet, "/jobs", nil, &payload); err != nil {
		return nil, err
	}
	return payload.Jobs, nil
}

// Cancel cancels a queued or running job. Cancelling a settled job is a
// no-op; the returned status reports where it ended up.
func (c *Client) Cancel(ctx context.Context, id string) (*JobStatus, error) {
	var st JobStatus
	if err := c.do(ctx, http.MethodPost, "/jobs/"+url.PathEscape(id)+"/cancel", struct{}{}, &st); err != nil {
		return nil, err
	}
	return &st, nil
}

// Result fetches a done job's result. While the job is still queued or
// running it returns (nil, false, nil); a failed or cancelled job is an
// error carrying the server's reason.
func (c *Client) Result(ctx context.Context, id string) (*JobResult, bool, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, c.base+"/jobs/"+url.PathEscape(id)+"/result", nil)
	if err != nil {
		return nil, false, fmt.Errorf("mcbench: %w", err)
	}
	resp, err := c.hc.Do(req)
	if err != nil {
		return nil, false, fmt.Errorf("mcbench: %w", err)
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		return nil, false, fmt.Errorf("mcbench: %w", err)
	}
	switch resp.StatusCode {
	case http.StatusAccepted:
		return nil, false, nil
	case http.StatusOK:
	default:
		return nil, false, &apiError{status: resp.StatusCode, message: strings.TrimSpace(string(data))}
	}
	// A terminal non-done job answers 200 with its status wrapped.
	var settled struct {
		Status *JobStatus `json:"status"`
	}
	if json.Unmarshal(data, &settled) == nil && settled.Status != nil {
		return nil, true, fmt.Errorf("mcbench: job %s %s: %s", id, settled.Status.State, settled.Status.Error)
	}
	var res JobResult
	if err := json.Unmarshal(data, &res); err != nil {
		return nil, true, fmt.Errorf("mcbench: decoding result: %w", err)
	}
	return &res, true, nil
}

// Events long-polls the job's progress log from the cursor (0 = start),
// invoking fn for each event in order, until the job settles, fn
// returns false, or ctx dies. It returns the final state.
func (c *Client) Events(ctx context.Context, id string, after int, fn func(JobEvent) bool) (JobState, error) {
	for {
		var page struct {
			State  JobState   `json:"state"`
			Events []JobEvent `json:"events"`
		}
		path := fmt.Sprintf("/jobs/%s/events?after=%d&wait=30s", url.PathEscape(id), after)
		if err := c.do(ctx, http.MethodGet, path, nil, &page); err != nil {
			return "", err
		}
		for _, ev := range page.Events {
			after = ev.Seq
			if fn != nil && !fn(ev) {
				return page.State, nil
			}
		}
		if page.State.Terminal() {
			return page.State, nil
		}
	}
}

// waitPollFloor is the slowest Wait falls back to between status polls.
const waitPollFloor = 500 * time.Millisecond

// Wait follows the job until it settles and returns its result. A
// failed or cancelled job is an error carrying the server's reason.
func (c *Client) Wait(ctx context.Context, id string) (*JobResult, error) {
	state, err := c.Events(ctx, id, 0, nil)
	if err != nil {
		return nil, err
	}
	if state != JobDone {
		st, serr := c.Job(ctx, id)
		if serr != nil {
			return nil, serr
		}
		return nil, fmt.Errorf("mcbench: job %s %s: %s", id, st.State, st.Error)
	}
	// Settled done: the result is already published (the server stores
	// it before flipping the state), so one fetch suffices — with a
	// small retry for proxies that reorder.
	for {
		res, done, err := c.Result(ctx, id)
		if err != nil || done {
			return res, err
		}
		select {
		case <-ctx.Done():
			return nil, ctx.Err()
		case <-time.After(waitPollFloor):
		}
	}
}
