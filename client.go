package mcbench

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math/rand/v2"
	"net/http"
	"net/url"
	"strconv"
	"strings"
	"time"

	"mcbench/internal/serve"
	"mcbench/internal/telemetry"
)

// Client talks to an mcbench serve instance: submit experiment,
// simulate and sweep jobs, follow their progress, fetch results, and
// browse the server's catalogues and persistent cache.
//
//	c, err := mcbench.NewClient("http://127.0.0.1:8080")
//	st, err := c.SubmitExperiment(ctx, "fig6", 4)
//	res, err := c.Wait(ctx, st.ID)
//	fmt.Print(res.Text)
//
// Identical in-flight submissions coalesce server-side: submitting a
// job another client already has running returns the same job ID with
// Deduped set, and both clients follow one computation.
type Client struct {
	base       string
	hc         *http.Client
	maxRetries int
	baseDelay  time.Duration

	// Transport telemetry, snapshotted by Stats. Standalone instruments
	// (registered in no registry — a client is not a scrape target):
	// every HTTP attempt counts and times itself, the retry loops count
	// re-attempts and honoured Retry-After hints, and exchanges that
	// exhaust their retries count as failures.
	reqCount   telemetry.Counter
	reqLatency telemetry.Histogram
	retries    telemetry.Counter
	retryAfter telemetry.Counter
	failures   telemetry.Counter
}

// ClientStats is a snapshot of a Client's transport counters (see
// Client.Stats). Latency quantiles are in seconds, over every HTTP
// attempt the client made (retries included).
type ClientStats struct {
	// Requests counts HTTP attempts (each retry is its own attempt).
	Requests int64 `json:"requests"`
	// Retries counts re-attempts after a retryable failure.
	Retries int64 `json:"retries"`
	// RetryAfterHonored counts retry pauses that used a server
	// Retry-After hint instead of computed backoff.
	RetryAfterHonored int64 `json:"retry_after_honored"`
	// Failures counts exchanges that returned an error to the caller
	// (retries exhausted, non-retryable status, or context death).
	Failures   int64   `json:"failures"`
	LatencyP50 float64 `json:"latency_p50_seconds"`
	LatencyP95 float64 `json:"latency_p95_seconds"`
	LatencyP99 float64 `json:"latency_p99_seconds"`
}

// Stats snapshots the client's transport counters: how many HTTP
// attempts it made, how many were retries, whether server backpressure
// hints (503 + Retry-After) were honoured, and the attempt latency
// distribution. Safe for concurrent use with in-flight calls.
func (c *Client) Stats() ClientStats {
	return ClientStats{
		Requests:          c.reqCount.Value(),
		Retries:           c.retries.Value(),
		RetryAfterHonored: c.retryAfter.Value(),
		Failures:          c.failures.Value(),
		LatencyP50:        c.reqLatency.Quantile(0.50) * 1e-9,
		LatencyP95:        c.reqLatency.Quantile(0.95) * 1e-9,
		LatencyP99:        c.reqLatency.Quantile(0.99) * 1e-9,
	}
}

// ClientOptions tunes a Client's resilience. The zero value means
// defaults (4 retries, 100ms base delay, a fresh http.Client).
type ClientOptions struct {
	// MaxRetries bounds how many times a failed request is re-attempted
	// (each request runs at most MaxRetries+1 times). 0 means the
	// default (4); negative disables retries entirely. Connection errors
	// and 503 rejections retry for every method — a 503 from the server
	// means the submission was rejected before it was enqueued, and
	// submissions are idempotent anyway (identical in-flight submissions
	// coalesce server-side, completed sweeps are served from cache) —
	// while 429/502/504 retry only idempotent GETs.
	MaxRetries int
	// BaseDelay seeds the exponential backoff between attempts
	// (default 100ms): delay n is BaseDelay·2ⁿ⁻¹, jittered ±50% and
	// capped at 5s. A server 503's Retry-After header overrides the
	// computed delay.
	BaseDelay time.Duration
	// HTTPClient replaces the underlying transport (proxies, test
	// doubles, custom TLS). nil means a fresh &http.Client{} with no
	// request timeout — pass deadline contexts to the calls instead;
	// Events long-polls are expected to dwell.
	HTTPClient *http.Client
}

// defaults for the zero ClientOptions.
const (
	defaultMaxRetries = 4
	defaultBaseDelay  = 100 * time.Millisecond
	maxRetryDelay     = 5 * time.Second
)

// NewClient validates the base URL ("http://host:port") and returns a
// client. With no options the client retries transient failures
// (connection errors, 503 queue-full rejections, and 429/502/504 on
// GETs) with exponential backoff and jitter; see ClientOptions.
func NewClient(baseURL string, opts ...ClientOptions) (*Client, error) {
	u, err := url.Parse(baseURL)
	if err != nil {
		return nil, fmt.Errorf("mcbench: bad server URL %q: %w", baseURL, err)
	}
	if u.Scheme != "http" && u.Scheme != "https" {
		return nil, fmt.Errorf("mcbench: server URL %q needs an http(s) scheme", baseURL)
	}
	var o ClientOptions
	if len(opts) > 0 {
		o = opts[0]
	}
	c := &Client{
		base:       strings.TrimRight(u.String(), "/"),
		hc:         o.HTTPClient,
		maxRetries: o.MaxRetries,
		baseDelay:  o.BaseDelay,
	}
	if c.hc == nil {
		c.hc = &http.Client{}
	}
	switch {
	case c.maxRetries == 0:
		c.maxRetries = defaultMaxRetries
	case c.maxRetries < 0:
		c.maxRetries = 0
	}
	if c.baseDelay <= 0 {
		c.baseDelay = defaultBaseDelay
	}
	return c, nil
}

// APIError is a non-2xx response from an mcbench server, inspectable
// via errors.As:
//
//	var ae *mcbench.APIError
//	if errors.As(err, &ae) && ae.StatusCode == http.StatusNotFound { ... }
//
// (or just mcbench.IsNotFound(err) for that case).
type APIError struct {
	// StatusCode is the HTTP status the server answered with.
	StatusCode int
	// Message is the server's error text.
	Message string
	// RetryAfter is the server's Retry-After hint, when it sent one
	// (503 rejections do); zero otherwise.
	RetryAfter time.Duration
}

func (e *APIError) Error() string {
	return fmt.Sprintf("mcbench: server %d: %s", e.StatusCode, e.Message)
}

// IsNotFound reports whether err is a server 404 — an unknown job ID
// (e.g. after a server restart: job IDs do not survive restarts, only
// cached results do) or an unknown route.
func IsNotFound(err error) bool {
	var ae *APIError
	return errors.As(err, &ae) && ae.StatusCode == http.StatusNotFound
}

// connError marks a failure that never produced a server response —
// connection refused, reset, timeout. Always safe to retry against this
// server: either the request never arrived, or its effects are
// idempotent (submissions coalesce, results are cached).
type connError struct{ err error }

func (e *connError) Error() string { return fmt.Sprintf("mcbench: %v", e.err) }
func (e *connError) Unwrap() error { return e.err }

// newAPIError builds the typed error from a non-2xx response.
func newAPIError(resp *http.Response, body []byte) *APIError {
	var payload struct {
		Error string `json:"error"`
	}
	msg := strings.TrimSpace(string(body))
	if json.Unmarshal(body, &payload) == nil && payload.Error != "" {
		msg = payload.Error
	}
	ae := &APIError{StatusCode: resp.StatusCode, Message: msg}
	if v := resp.Header.Get("Retry-After"); v != "" {
		if secs, err := strconv.Atoi(v); err == nil && secs >= 0 {
			ae.RetryAfter = time.Duration(secs) * time.Second
		}
	}
	return ae
}

// retryable reports whether the error is worth re-attempting for the
// method. Connection errors and 503s retry for every method (see
// ClientOptions.MaxRetries for why that is safe); 429/502/504 retry
// idempotent GETs only.
func retryable(method string, err error) bool {
	var ce *connError
	if errors.As(err, &ce) {
		return true
	}
	var ae *APIError
	if !errors.As(err, &ae) {
		return false
	}
	switch ae.StatusCode {
	case http.StatusServiceUnavailable:
		return true
	case http.StatusTooManyRequests, http.StatusBadGateway, http.StatusGatewayTimeout:
		return method == http.MethodGet
	}
	return false
}

// retryDelay computes the pause before attempt n (1-based): the
// server's Retry-After when it sent one, else exponential backoff from
// BaseDelay with ±50% jitter, capped at maxRetryDelay. Jitter keeps a
// thundering herd of clients (every caller rejected by the same full
// queue) from re-converging on the same instant.
func (c *Client) retryDelay(n int, lastErr error) time.Duration {
	var ae *APIError
	if errors.As(lastErr, &ae) && ae.RetryAfter > 0 {
		c.retryAfter.Inc()
		return ae.RetryAfter
	}
	d := c.baseDelay << (n - 1)
	if d > maxRetryDelay || d <= 0 {
		d = maxRetryDelay
	}
	return d/2 + rand.N(d/2+1)
}

// sleepCtx pauses for d or until ctx dies.
func sleepCtx(ctx context.Context, d time.Duration) error {
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-ctx.Done():
		return ctx.Err()
	case <-t.C:
		return nil
	}
}

// do performs one JSON exchange with retries. A nil in means no body; a
// nil out discards the response payload.
func (c *Client) do(ctx context.Context, method, path string, in, out any) error {
	var payload []byte
	if in != nil {
		data, err := json.Marshal(in)
		if err != nil {
			return fmt.Errorf("mcbench: %w", err)
		}
		payload = data
	}
	var lastErr error
	for attempt := 0; ; attempt++ {
		if attempt > 0 {
			c.retries.Inc()
			if err := sleepCtx(ctx, c.retryDelay(attempt, lastErr)); err != nil {
				c.failures.Inc()
				return lastErr
			}
		}
		err := c.once(ctx, method, path, payload, out)
		if err == nil {
			return nil
		}
		lastErr = err
		if attempt >= c.maxRetries || !retryable(method, err) || ctx.Err() != nil {
			c.failures.Inc()
			return err
		}
	}
}

// once performs a single JSON exchange.
func (c *Client) once(ctx context.Context, method, path string, payload []byte, out any) error {
	var body io.Reader
	if payload != nil {
		body = bytes.NewReader(payload)
	}
	req, err := http.NewRequestWithContext(ctx, method, c.base+path, body)
	if err != nil {
		return fmt.Errorf("mcbench: %w", err)
	}
	if payload != nil {
		req.Header.Set("Content-Type", "application/json")
	}
	start := time.Now()
	defer func() {
		c.reqCount.Inc()
		c.reqLatency.ObserveDuration(time.Since(start))
	}()
	resp, err := c.hc.Do(req)
	if err != nil {
		return &connError{err}
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		return &connError{err}
	}
	if resp.StatusCode >= 300 {
		return newAPIError(resp, data)
	}
	if out == nil {
		return nil
	}
	if err := json.Unmarshal(data, out); err != nil {
		return fmt.Errorf("mcbench: decoding %s: %w", path, err)
	}
	return nil
}

// Metrics fetches the server's telemetry snapshot
// (GET /metrics?format=json): job counters, queue gauges, sweep counts,
// per-endpoint request latencies, lab phase breakdowns. For the
// Prometheus text form, scrape GET /metrics directly.
func (c *Client) Metrics(ctx context.Context) (*MetricsSnapshot, error) {
	var snap MetricsSnapshot
	if err := c.do(ctx, http.MethodGet, "/metrics?format=json", nil, &snap); err != nil {
		return nil, err
	}
	return &snap, nil
}

// FleetMetrics fetches a coordinator's aggregated per-worker telemetry
// view (GET /fleet/metrics): each live worker's queue depth, sweep
// counts and throughput, scraped by the coordinator in parallel. A 404
// means the server is not a fleet coordinator.
func (c *Client) FleetMetrics(ctx context.Context) (*FleetMetricsView, error) {
	var fm FleetMetricsView
	if err := c.do(ctx, http.MethodGet, "/fleet/metrics", nil, &fm); err != nil {
		return nil, err
	}
	return &fm, nil
}

// Health fetches /healthz: build identity, uptime, source, job stats.
func (c *Client) Health(ctx context.Context) (*ServerHealth, error) {
	var h ServerHealth
	if err := c.do(ctx, http.MethodGet, "/healthz", nil, &h); err != nil {
		return nil, err
	}
	return &h, nil
}

// ServerExperiments fetches the server's registry catalogue.
func (c *Client) ServerExperiments(ctx context.Context) ([]ServeExperimentInfo, error) {
	var payload struct {
		Experiments []ServeExperimentInfo `json:"experiments"`
	}
	if err := c.do(ctx, http.MethodGet, "/experiments", nil, &payload); err != nil {
		return nil, err
	}
	return payload.Experiments, nil
}

// Benches fetches the server's benchmark catalogue and source name.
func (c *Client) Benches(ctx context.Context) (source string, benches []BenchInfo, err error) {
	var payload struct {
		Source     string      `json:"source"`
		Benchmarks []BenchInfo `json:"benchmarks"`
	}
	if err := c.do(ctx, http.MethodGet, "/benches", nil, &payload); err != nil {
		return "", nil, err
	}
	return payload.Source, payload.Benchmarks, nil
}

// Cache lists the server's persistent result store, identities
// preserved (empty when the server runs without a cache directory).
func (c *Client) Cache(ctx context.Context) ([]CacheEntry, error) {
	var payload struct {
		Entries []CacheEntry `json:"entries"`
	}
	if err := c.do(ctx, http.MethodGet, "/cache", nil, &payload); err != nil {
		return nil, err
	}
	return payload.Entries, nil
}

// SubmitExperiment submits a registered experiment (cores 0 = the
// experiment's paper default). The returned status carries the job ID;
// Deduped is set when an identical in-flight job absorbed the
// submission.
func (c *Client) SubmitExperiment(ctx context.Context, name string, cores int) (*JobStatus, error) {
	return c.submit(ctx, serve.SubmitRequest{
		Kind:       serve.KindExperiment,
		Experiment: &serve.ExperimentRequest{Name: name, Cores: cores},
	})
}

// SubmitSimulate submits one ad-hoc workload. The options mirror
// Simulate: WithPolicy, WithSimulator, WithQuota, WithWarmup, WithCores
// and WithSampling (the server rejects invalid combinations exactly as
// the local driver would). WithTraceLen and WithSuite are rejected — the
// server's lab fixes both.
func (c *Client) SubmitSimulate(ctx context.Context, workload []string, opts ...Option) (*JobStatus, error) {
	o, err := serverOptions(opts)
	if err != nil {
		return nil, err
	}
	return c.submit(ctx, serve.SubmitRequest{
		Kind: serve.KindSimulate,
		Simulate: &serve.SimulateRequest{
			Workload: workload, Policy: string(o.policy), Engine: o.engine.String(),
			Quota: o.quota, Warmup: o.warmup, Cores: o.cores,
			Sampling: o.wireSampling(),
		},
	})
}

// SubmitSweep submits many ad-hoc workloads under one configuration.
func (c *Client) SubmitSweep(ctx context.Context, workloads [][]string, opts ...Option) (*JobStatus, error) {
	o, err := serverOptions(opts)
	if err != nil {
		return nil, err
	}
	return c.submit(ctx, serve.SubmitRequest{
		Kind: serve.KindSweep,
		Sweep: &serve.SweepRequest{
			Workloads: workloads, Policy: string(o.policy), Engine: o.engine.String(),
			Quota: o.quota, Warmup: o.warmup, Cores: o.cores,
			Sampling: o.wireSampling(),
		},
	})
}

// serverOptions resolves the public options into a server submission,
// rejecting the ones a remote lab cannot honour.
func serverOptions(opts []Option) (options, error) {
	o := buildOptions(opts)
	if o.fixedLen {
		return o, fmt.Errorf("mcbench: WithTraceLen applies to local simulation; a server's trace length is its lab's Config.TraceLen")
	}
	if o.suite != nil {
		return o, fmt.Errorf("mcbench: WithSuite applies to local simulation; a server's source is its lab's Config.Source")
	}
	return o, nil
}

func (c *Client) submit(ctx context.Context, req serve.SubmitRequest) (*JobStatus, error) {
	var st JobStatus
	if err := c.do(ctx, http.MethodPost, "/jobs", req, &st); err != nil {
		return nil, err
	}
	return &st, nil
}

// Job fetches one job's status.
func (c *Client) Job(ctx context.Context, id string) (*JobStatus, error) {
	var st JobStatus
	if err := c.do(ctx, http.MethodGet, "/jobs/"+url.PathEscape(id), nil, &st); err != nil {
		return nil, err
	}
	return &st, nil
}

// Jobs lists every job the server knows, in submission order.
func (c *Client) Jobs(ctx context.Context) ([]JobStatus, error) {
	var payload struct {
		Jobs []JobStatus `json:"jobs"`
	}
	if err := c.do(ctx, http.MethodGet, "/jobs", nil, &payload); err != nil {
		return nil, err
	}
	return payload.Jobs, nil
}

// Cancel cancels a queued or running job. Cancelling a settled job is a
// no-op; the returned status reports where it ended up.
func (c *Client) Cancel(ctx context.Context, id string) (*JobStatus, error) {
	var st JobStatus
	if err := c.do(ctx, http.MethodPost, "/jobs/"+url.PathEscape(id)+"/cancel", struct{}{}, &st); err != nil {
		return nil, err
	}
	return &st, nil
}

// Result fetches a done job's result. While the job is still queued or
// running it returns (nil, false, nil); a failed or cancelled job is an
// error carrying the server's reason.
func (c *Client) Result(ctx context.Context, id string) (*JobResult, bool, error) {
	status, data, err := c.getRaw(ctx, "/jobs/"+url.PathEscape(id)+"/result")
	if err != nil {
		return nil, false, err
	}
	switch status {
	case http.StatusAccepted:
		return nil, false, nil
	case http.StatusOK:
	default: // unreachable: getRaw converts non-2xx into *APIError
		return nil, false, &APIError{StatusCode: status, Message: strings.TrimSpace(string(data))}
	}
	// A terminal non-done job answers 200 with its status wrapped.
	var settled struct {
		Status *JobStatus `json:"status"`
	}
	if json.Unmarshal(data, &settled) == nil && settled.Status != nil {
		return nil, true, fmt.Errorf("mcbench: job %s %s: %s", id, settled.Status.State, settled.Status.Error)
	}
	var res JobResult
	if err := json.Unmarshal(data, &res); err != nil {
		return nil, true, fmt.Errorf("mcbench: decoding result: %w", err)
	}
	return &res, true, nil
}

// getRaw performs a retrying GET and returns the 2xx status and body;
// non-2xx responses come back as *APIError (and 503/429/502/504 and
// connection errors were retried first, like do).
func (c *Client) getRaw(ctx context.Context, path string) (int, []byte, error) {
	var lastErr error
	for attempt := 0; ; attempt++ {
		if attempt > 0 {
			c.retries.Inc()
			if err := sleepCtx(ctx, c.retryDelay(attempt, lastErr)); err != nil {
				c.failures.Inc()
				return 0, nil, lastErr
			}
		}
		status, data, err := c.onceRaw(ctx, path)
		if err == nil {
			return status, data, nil
		}
		lastErr = err
		if attempt >= c.maxRetries || !retryable(http.MethodGet, err) || ctx.Err() != nil {
			c.failures.Inc()
			return 0, nil, err
		}
	}
}

// onceRaw performs a single GET, preserving the status for callers that
// dispatch on it (Result's 202-while-running).
func (c *Client) onceRaw(ctx context.Context, path string) (int, []byte, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, c.base+path, nil)
	if err != nil {
		return 0, nil, fmt.Errorf("mcbench: %w", err)
	}
	start := time.Now()
	defer func() {
		c.reqCount.Inc()
		c.reqLatency.ObserveDuration(time.Since(start))
	}()
	resp, err := c.hc.Do(req)
	if err != nil {
		return 0, nil, &connError{err}
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		return 0, nil, &connError{err}
	}
	if resp.StatusCode >= 300 {
		return 0, nil, newAPIError(resp, data)
	}
	return resp.StatusCode, data, nil
}

// Events long-polls the job's progress log from the cursor (0 = start),
// invoking fn for each event in order, until the job settles, fn
// returns false, or ctx dies. It returns the final state.
//
// The follower is resilient: when a poll fails transiently (a dropped
// connection, a restarting reverse proxy) it reconnects and resumes
// from its last-seen cursor, so fn never sees an event twice and never
// skips one. Only MaxRetries consecutive failed polls — each of which
// already retried internally — or a non-transient error (a 404 for the
// job, say) end the follow.
func (c *Client) Events(ctx context.Context, id string, after int, fn func(JobEvent) bool) (JobState, error) {
	fails := 0
	for {
		var page struct {
			State  JobState   `json:"state"`
			Events []JobEvent `json:"events"`
		}
		path := fmt.Sprintf("/jobs/%s/events?after=%d&wait=30s", url.PathEscape(id), after)
		if err := c.do(ctx, http.MethodGet, path, nil, &page); err != nil {
			fails++
			if fails > c.maxRetries || !retryable(http.MethodGet, err) || ctx.Err() != nil {
				return "", err
			}
			if sleepCtx(ctx, c.retryDelay(fails, err)) != nil {
				return "", err
			}
			continue // reconnect; the cursor picks up where we left off
		}
		fails = 0
		for _, ev := range page.Events {
			after = ev.Seq
			if fn != nil && !fn(ev) {
				return page.State, nil
			}
		}
		if page.State.Terminal() {
			return page.State, nil
		}
	}
}

// waitPollFloor is the slowest Wait falls back to between status polls.
const waitPollFloor = 500 * time.Millisecond

// Wait follows the job until it settles and returns its result. A
// failed or cancelled job is an error carrying the server's reason.
//
// Wait rides the same resilience as Events and the retrying transport:
// it survives transient outages (including a server restart window) by
// re-polling from its last-seen cursor with backoff. If the server
// comes back having genuinely forgotten the job — job IDs do not
// survive restarts — Wait returns a 404 APIError; resubmitting is then
// cheap, since every sweep completed before the restart is served from
// the persistent cache.
func (c *Client) Wait(ctx context.Context, id string) (*JobResult, error) {
	state, err := c.Events(ctx, id, 0, nil)
	if err != nil {
		return nil, err
	}
	if state != JobDone {
		st, serr := c.Job(ctx, id)
		if serr != nil {
			return nil, serr
		}
		return nil, fmt.Errorf("mcbench: job %s %s: %s", id, st.State, st.Error)
	}
	// Settled done: the result is already published (the server stores
	// it before flipping the state), so one fetch suffices — with a
	// small retry for proxies that reorder.
	for {
		res, done, err := c.Result(ctx, id)
		if err != nil || done {
			return res, err
		}
		select {
		case <-ctx.Done():
			return nil, ctx.Err()
		case <-time.After(waitPollFloor):
		}
	}
}
