package mcbench

import (
	"context"
	"time"

	"mcbench/internal/fleet"
	"mcbench/internal/results"
	"mcbench/internal/serve"
)

// ServeOptions configures Serve.
type ServeOptions struct {
	// Addr is the listen address (default "127.0.0.1:8080"). Use ":0"
	// with OnReady to bind an ephemeral port.
	Addr string
	// Workers bounds the number of concurrently executing jobs
	// (default 2). Each job's sweeps already parallelise internally
	// across the process-wide simulation budget; Workers is the
	// campaign-level axis.
	Workers int
	// QueueDepth bounds the backlog of accepted-but-not-started jobs
	// (default 16); submissions beyond it are rejected with 503.
	QueueDepth int
	// KeepJobs bounds how many settled jobs stay queryable with their
	// event logs and results (default 256); beyond it the oldest are
	// evicted, so a long-running server cannot grow without bound.
	KeepJobs int
	// JobTimeout bounds each job's wall-clock run time. A job exceeding
	// it is cancelled and marked failed (not canceled: the timeout is the
	// server refusing further work, not the client withdrawing it), with
	// the timeout recorded in the job's error and counted in
	// ServerStats.TimedOut. 0 means no bound.
	JobTimeout time.Duration
	// OnReady, when non-nil, is called once with the bound address as
	// soon as the server is listening.
	OnReady func(addr string)

	// Join, when set, runs this server as a fleet worker: it registers
	// with the coordinator at that address ("host:port" or a full
	// http(s) URL), heartbeats, and serves the campaign shards the
	// coordinator dispatches. Empty means the server is itself a
	// coordinator — campaigns submitted to it are sharded across
	// whatever workers have joined (none joined: plain single-node
	// serving). A worker whose build or lab configuration differs from
	// the coordinator's is rejected at join and Serve returns the error.
	Join string
	// Advertise is the address fleet peers should reach this server at;
	// empty defaults to the bound listen address.
	Advertise string
	// FleetHeartbeat is the worker heartbeat interval the coordinator
	// grants (default 5s); a worker missing three consecutive beats is
	// considered dead and its unfinished shards are re-issued.
	FleetHeartbeat time.Duration
	// StealAfter bounds how long a dispatched shard may run before the
	// coordinator steals it from the straggling worker and re-issues it
	// (0: steal only when a worker's heartbeat lease lapses).
	StealAfter time.Duration

	// Pprof mounts net/http/pprof under /debug/pprof/ — CPU and heap
	// profiles, goroutine dumps, execution traces. Opt-in: profiling
	// endpoints expose implementation detail and cost CPU when scraped.
	Pprof bool
}

// Serve runs the experiment service until ctx is cancelled, then drains
// gracefully: new submissions are rejected, running jobs are cancelled,
// and every population sweep completed before the cancellation is
// already persisted when Config.CacheDir is set — a restarted server
// over the same cache directory serves them from disk. A drain is a
// clean shutdown: Serve returns nil, so a SIGTERM'd process exits 0.
//
// One shared Lab (built from cfg) backs every job, so concurrent
// requests ride its single-flight memoization: identical in-flight
// submissions coalesce onto one job, and M clients asking for the same
// sweep cost one computation. See Client for the matching API consumer,
// and the README's "Serving" section for the HTTP surface.
// When fleet options are set, Serve is also one node of a distributed
// lab: run one coordinator and any number of `Join`ed workers, submit
// campaigns to the coordinator, and the expensive population sweeps
// shard across the fleet by content key, converging through the shared
// result fabric (GET /cache/{key} with checksum-verified read-through).
// See the README's "Distributed lab" section for a 3-node quickstart.
func Serve(ctx context.Context, cfg Config, opts ServeOptions) error {
	srv := serve.New(serve.Config{
		Lab: cfg, Workers: opts.Workers, QueueDepth: opts.QueueDepth,
		KeepJobs: opts.KeepJobs, JobTimeout: opts.JobTimeout,
		Pprof: opts.Pprof,
		Fleet: &serve.FleetConfig{
			Join: opts.Join, Advertise: opts.Advertise,
			Heartbeat: opts.FleetHeartbeat, StealAfter: opts.StealAfter,
			Dial: dialPeer,
		},
	})
	return srv.ListenAndServe(ctx, opts.Addr, opts.OnReady)
}

// Wire types of the serve API, shared by the server and Client.
type (
	// JobState is a job's lifecycle state: "queued", "running", "done",
	// "failed" or "canceled".
	JobState = serve.State
	// JobStatus describes a submitted job (GET /jobs/{id}).
	JobStatus = serve.JobStatus
	// JobResult is a completed job's payload (GET /jobs/{id}/result).
	JobResult = serve.JobResult
	// JobEvent is one entry of a job's progress log.
	JobEvent = serve.Event
	// ServerHealth is the /healthz payload.
	ServerHealth = serve.Health
	// ServerStats counts the job manager's traffic.
	ServerStats = serve.Stats
	// CacheEntry is one identity-preserving /cache listing entry.
	CacheEntry = results.Entry
	// ServeExperimentInfo is one /experiments catalogue entry.
	ServeExperimentInfo = serve.ExperimentInfo
	// BenchInfo is one /benches catalogue entry.
	BenchInfo = serve.BenchInfo
	// ProductRef names one campaign product in a warm submission
	// (POST /jobs with kind "warm").
	ProductRef = serve.ProductRef
	// SweepCounts reports how many full population sweeps a node
	// actually ran (/healthz "sweeps"); fleet dedup tests sum it.
	SweepCounts = serve.SweepCounts
	// FleetHealth is the fleet section of /healthz.
	FleetHealth = serve.FleetHealth
	// FleetJoinRequest is a worker's registration handshake
	// (POST /fleet/join).
	FleetJoinRequest = fleet.JoinRequest
	// FleetJoinResponse grants fleet membership.
	FleetJoinResponse = fleet.JoinResponse
	// FleetMetricsView is the coordinator's aggregated per-worker
	// telemetry view (GET /fleet/metrics).
	FleetMetricsView = serve.FleetMetrics
	// WorkerMetrics is one worker's row of a FleetMetricsView.
	WorkerMetrics = serve.WorkerMetrics
)

// Job lifecycle states.
const (
	JobQueued   = serve.StateQueued
	JobRunning  = serve.StateRunning
	JobDone     = serve.StateDone
	JobFailed   = serve.StateFailed
	JobCanceled = serve.StateCanceled
)
