// Package cluster provides the cluster analysis used by the class-based
// workload selection methods the paper surveys in Section II-B:
// Vandierendonck & Seznec derive benchmark classes by clustering ([6]),
// and Van Biesbrouck, Eeckhout & Calder cluster workloads directly and
// simulate one representative per cluster ([7]).
//
// The package implements k-means with k-means++ seeding, agglomerative
// hierarchical clustering (average linkage), z-score normalisation,
// silhouette scoring for choosing k, principal component projection, and
// medoid extraction. Everything is deterministic given the caller's
// *rand.Rand.
package cluster

import (
	"fmt"
	"math"
	"math/rand"
	"sort"
)

// Result is a clustering of n points into k clusters.
type Result struct {
	// Assign maps each point to its cluster in [0, K).
	Assign []int
	// Centroids holds the cluster centres (k-means) or cluster means
	// (hierarchical), one per cluster.
	Centroids [][]float64
	// K is the number of clusters.
	K int
}

// Sizes returns the number of points per cluster.
func (r *Result) Sizes() []int {
	sizes := make([]int, r.K)
	for _, c := range r.Assign {
		sizes[c]++
	}
	return sizes
}

// Members returns the point indices of each cluster, in ascending order.
func (r *Result) Members() [][]int {
	m := make([][]int, r.K)
	for i, c := range r.Assign {
		m[c] = append(m[c], i)
	}
	return m
}

// Medoids returns, for each cluster, the member point closest to the
// centroid — the natural "representative" of the cluster.
func (r *Result) Medoids(points [][]float64) []int {
	med := make([]int, r.K)
	best := make([]float64, r.K)
	for c := range med {
		med[c] = -1
	}
	for i, c := range r.Assign {
		d := sqDist(points[i], r.Centroids[c])
		if med[c] < 0 || d < best[c] {
			med[c], best[c] = i, d
		}
	}
	return med
}

// validate checks a point matrix for shape problems.
func validate(points [][]float64, k int) error {
	if len(points) == 0 {
		return fmt.Errorf("cluster: no points")
	}
	if k < 1 || k > len(points) {
		return fmt.Errorf("cluster: k=%d with %d points", k, len(points))
	}
	dim := len(points[0])
	if dim == 0 {
		return fmt.Errorf("cluster: zero-dimensional points")
	}
	for i, p := range points {
		if len(p) != dim {
			return fmt.Errorf("cluster: point %d has dimension %d, want %d", i, len(p), dim)
		}
		for _, v := range p {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				return fmt.Errorf("cluster: point %d contains NaN/Inf", i)
			}
		}
	}
	return nil
}

// ---------------------------------------------------------------------------
// k-means

// KMeans clusters points into k clusters with k-means++ seeding and Lloyd
// iterations until convergence (or maxIter). rng drives seeding only; the
// iterations themselves are deterministic.
func KMeans(rng *rand.Rand, points [][]float64, k, maxIter int) (*Result, error) {
	if err := validate(points, k); err != nil {
		return nil, err
	}
	if maxIter <= 0 {
		maxIter = 100
	}
	centroids := seedPlusPlus(rng, points, k)
	assign := make([]int, len(points))
	for iter := 0; iter < maxIter; iter++ {
		changed := false
		for i, p := range points {
			best, bd := 0, math.Inf(1)
			for c, cent := range centroids {
				if d := sqDist(p, cent); d < bd {
					best, bd = c, d
				}
			}
			if assign[i] != best {
				assign[i] = best
				changed = true
			}
		}
		if !changed && iter > 0 {
			break
		}
		recompute(centroids, points, assign, rng)
	}
	return &Result{Assign: assign, Centroids: centroids, K: k}, nil
}

// seedPlusPlus picks k initial centroids: the first uniformly, each next
// with probability proportional to the squared distance from the nearest
// chosen centroid (k-means++).
func seedPlusPlus(rng *rand.Rand, points [][]float64, k int) [][]float64 {
	centroids := make([][]float64, 0, k)
	first := points[rng.Intn(len(points))]
	centroids = append(centroids, append([]float64(nil), first...))
	d2 := make([]float64, len(points))
	for len(centroids) < k {
		total := 0.0
		for i, p := range points {
			d2[i] = math.Inf(1)
			for _, c := range centroids {
				if d := sqDist(p, c); d < d2[i] {
					d2[i] = d
				}
			}
			total += d2[i]
		}
		var next int
		if total == 0 {
			next = rng.Intn(len(points)) // all points coincide with centroids
		} else {
			r := rng.Float64() * total
			acc := 0.0
			next = len(points) - 1
			for i, d := range d2 {
				acc += d
				if r < acc {
					next = i
					break
				}
			}
		}
		centroids = append(centroids, append([]float64(nil), points[next]...))
	}
	return centroids
}

// recompute moves each centroid to the mean of its members; an emptied
// cluster is re-seeded on the point farthest from its nearest centroid.
func recompute(centroids [][]float64, points [][]float64, assign []int, rng *rand.Rand) {
	dim := len(points[0])
	counts := make([]int, len(centroids))
	for c := range centroids {
		for j := 0; j < dim; j++ {
			centroids[c][j] = 0
		}
	}
	for i, p := range points {
		c := assign[i]
		counts[c]++
		for j, v := range p {
			centroids[c][j] += v
		}
	}
	for c := range centroids {
		if counts[c] == 0 {
			// Re-seed deterministically on the worst-covered point.
			worst, wd := 0, -1.0
			for i, p := range points {
				d := math.Inf(1)
				for c2 := range centroids {
					if counts[c2] == 0 {
						continue
					}
					if dd := sqDist(p, centroids[c2]); dd < d {
						d = dd
					}
				}
				if d > wd {
					worst, wd = i, d
				}
			}
			copy(centroids[c], points[worst])
			continue
		}
		for j := 0; j < dim; j++ {
			centroids[c][j] /= float64(counts[c])
		}
	}
	_ = rng
}

// ---------------------------------------------------------------------------
// Hierarchical agglomerative clustering

// Hierarchical clusters points into k clusters by average-linkage
// agglomeration: start with singletons, repeatedly merge the pair of
// clusters with the smallest mean inter-point distance.
func Hierarchical(points [][]float64, k int) (*Result, error) {
	if err := validate(points, k); err != nil {
		return nil, err
	}
	n := len(points)
	// Pairwise distances once.
	dist := make([][]float64, n)
	for i := range dist {
		dist[i] = make([]float64, n)
		for j := range dist[i] {
			dist[i][j] = math.Sqrt(sqDist(points[i], points[j]))
		}
	}
	clusters := make([][]int, n)
	for i := range clusters {
		clusters[i] = []int{i}
	}
	for len(clusters) > k {
		bi, bj, bd := -1, -1, math.Inf(1)
		for i := 0; i < len(clusters); i++ {
			for j := i + 1; j < len(clusters); j++ {
				d := avgLink(dist, clusters[i], clusters[j])
				if d < bd {
					bi, bj, bd = i, j, d
				}
			}
		}
		clusters[bi] = append(clusters[bi], clusters[bj]...)
		clusters = append(clusters[:bj], clusters[bj+1:]...)
	}
	res := &Result{Assign: make([]int, n), K: k}
	dim := len(points[0])
	for c, members := range clusters {
		cent := make([]float64, dim)
		for _, i := range members {
			res.Assign[i] = c
			for j, v := range points[i] {
				cent[j] += v
			}
		}
		for j := range cent {
			cent[j] /= float64(len(members))
		}
		res.Centroids = append(res.Centroids, cent)
	}
	return res, nil
}

func avgLink(dist [][]float64, a, b []int) float64 {
	sum := 0.0
	for _, i := range a {
		for _, j := range b {
			sum += dist[i][j]
		}
	}
	return sum / float64(len(a)*len(b))
}

// ---------------------------------------------------------------------------
// Normalisation, silhouette, model selection

// Normalize z-scores each feature dimension in place-free fashion: the
// returned matrix has zero mean and unit variance per dimension (constant
// dimensions become all-zero).
func Normalize(points [][]float64) [][]float64 {
	if len(points) == 0 {
		return nil
	}
	dim := len(points[0])
	mean := make([]float64, dim)
	for _, p := range points {
		for j, v := range p {
			mean[j] += v
		}
	}
	for j := range mean {
		mean[j] /= float64(len(points))
	}
	std := make([]float64, dim)
	for _, p := range points {
		for j, v := range p {
			d := v - mean[j]
			std[j] += d * d
		}
	}
	for j := range std {
		std[j] = math.Sqrt(std[j] / float64(len(points)))
	}
	out := make([][]float64, len(points))
	for i, p := range points {
		out[i] = make([]float64, dim)
		for j, v := range p {
			if std[j] > 0 {
				out[i][j] = (v - mean[j]) / std[j]
			}
		}
	}
	return out
}

// Silhouette returns the mean silhouette coefficient of a clustering in
// [-1, 1]; higher is better. Singleton clusters contribute 0, as is
// conventional.
func Silhouette(points [][]float64, r *Result) float64 {
	n := len(points)
	if n == 0 || r.K < 2 {
		return 0
	}
	members := r.Members()
	total := 0.0
	for i, p := range points {
		own := members[r.Assign[i]]
		if len(own) <= 1 {
			continue
		}
		a := 0.0
		for _, j := range own {
			if j != i {
				a += math.Sqrt(sqDist(p, points[j]))
			}
		}
		a /= float64(len(own) - 1)
		b := math.Inf(1)
		for c, mem := range members {
			if c == r.Assign[i] || len(mem) == 0 {
				continue
			}
			d := 0.0
			for _, j := range mem {
				d += math.Sqrt(sqDist(p, points[j]))
			}
			d /= float64(len(mem))
			if d < b {
				b = d
			}
		}
		if m := math.Max(a, b); m > 0 {
			total += (b - a) / m
		}
	}
	return total / float64(n)
}

// BestK runs k-means for each k in [kMin, kMax] and returns the result
// with the highest silhouette score, along with the chosen k.
func BestK(rng *rand.Rand, points [][]float64, kMin, kMax int) (*Result, error) {
	if kMin < 2 {
		kMin = 2
	}
	if kMax >= len(points) {
		kMax = len(points) - 1
	}
	if kMax < kMin {
		return nil, fmt.Errorf("cluster: empty k range [%d,%d] for %d points", kMin, kMax, len(points))
	}
	var best *Result
	bestScore := math.Inf(-1)
	for k := kMin; k <= kMax; k++ {
		r, err := KMeans(rng, points, k, 100)
		if err != nil {
			return nil, err
		}
		if s := Silhouette(points, r); s > bestScore {
			best, bestScore = r, s
		}
	}
	return best, nil
}

// ---------------------------------------------------------------------------
// Principal components

// PCA projects points onto their top-ncomp principal components using
// power iteration with deflation on the covariance matrix. The input
// should be normalised. Returned rows align with points.
func PCA(points [][]float64, ncomp int) ([][]float64, error) {
	if len(points) == 0 {
		return nil, fmt.Errorf("cluster: no points")
	}
	dim := len(points[0])
	if ncomp < 1 || ncomp > dim {
		return nil, fmt.Errorf("cluster: %d components of %d dims", ncomp, dim)
	}
	// Covariance matrix (points assumed centred by Normalize).
	cov := make([][]float64, dim)
	for i := range cov {
		cov[i] = make([]float64, dim)
	}
	for _, p := range points {
		for i := 0; i < dim; i++ {
			for j := 0; j < dim; j++ {
				cov[i][j] += p[i] * p[j]
			}
		}
	}
	for i := range cov {
		for j := range cov[i] {
			cov[i][j] /= float64(len(points))
		}
	}
	comps := make([][]float64, 0, ncomp)
	for c := 0; c < ncomp; c++ {
		v := powerIterate(cov, 200)
		comps = append(comps, v)
		// Deflate: cov -= lambda v v^T.
		lambda := rayleigh(cov, v)
		for i := 0; i < dim; i++ {
			for j := 0; j < dim; j++ {
				cov[i][j] -= lambda * v[i] * v[j]
			}
		}
	}
	out := make([][]float64, len(points))
	for i, p := range points {
		out[i] = make([]float64, ncomp)
		for c, v := range comps {
			s := 0.0
			for j := range p {
				s += p[j] * v[j]
			}
			out[i][c] = s
		}
	}
	return out, nil
}

// powerIterate returns the dominant eigenvector of m.
func powerIterate(m [][]float64, iters int) []float64 {
	dim := len(m)
	v := make([]float64, dim)
	// Deterministic start: spread over all dimensions.
	for i := range v {
		v[i] = 1 / math.Sqrt(float64(dim))
	}
	tmp := make([]float64, dim)
	for it := 0; it < iters; it++ {
		for i := 0; i < dim; i++ {
			s := 0.0
			for j := 0; j < dim; j++ {
				s += m[i][j] * v[j]
			}
			tmp[i] = s
		}
		norm := 0.0
		for _, x := range tmp {
			norm += x * x
		}
		norm = math.Sqrt(norm)
		if norm == 0 {
			return v // zero matrix: any vector is fine
		}
		for i := range v {
			v[i] = tmp[i] / norm
		}
	}
	return v
}

func rayleigh(m [][]float64, v []float64) float64 {
	dim := len(m)
	num := 0.0
	for i := 0; i < dim; i++ {
		s := 0.0
		for j := 0; j < dim; j++ {
			s += m[i][j] * v[j]
		}
		num += v[i] * s
	}
	return num
}

// ---------------------------------------------------------------------------

func sqDist(a, b []float64) float64 {
	s := 0.0
	for i := range a {
		d := a[i] - b[i]
		s += d * d
	}
	return s
}

// SortedAssign relabels clusters canonically (by their smallest member
// index) so results can be compared across runs regardless of arbitrary
// cluster numbering.
func SortedAssign(r *Result) []int {
	firstSeen := make([]int, r.K)
	for c := range firstSeen {
		firstSeen[c] = math.MaxInt32
	}
	for i, c := range r.Assign {
		if i < firstSeen[c] {
			firstSeen[c] = i
		}
	}
	order := make([]int, r.K)
	for i := range order {
		order[i] = i
	}
	sort.Slice(order, func(a, b int) bool { return firstSeen[order[a]] < firstSeen[order[b]] })
	relabel := make([]int, r.K)
	for newID, oldID := range order {
		relabel[oldID] = newID
	}
	out := make([]int, len(r.Assign))
	for i, c := range r.Assign {
		out[i] = relabel[c]
	}
	return out
}
