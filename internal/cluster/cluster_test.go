package cluster

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

// blobs generates n points around each of the given centres with the
// given spread.
func blobs(rng *rand.Rand, centres [][]float64, n int, spread float64) ([][]float64, []int) {
	var pts [][]float64
	var truth []int
	for c, centre := range centres {
		for i := 0; i < n; i++ {
			p := make([]float64, len(centre))
			for j, v := range centre {
				p[j] = v + rng.NormFloat64()*spread
			}
			pts = append(pts, p)
			truth = append(truth, c)
		}
	}
	return pts, truth
}

// agrees reports whether a clustering matches ground truth up to label
// permutation (checked pairwise: same-cluster relations must coincide).
func agrees(assign, truth []int) bool {
	for i := range assign {
		for j := i + 1; j < len(assign); j++ {
			if (assign[i] == assign[j]) != (truth[i] == truth[j]) {
				return false
			}
		}
	}
	return true
}

func wellSeparated() ([][]float64, []int) {
	rng := rand.New(rand.NewSource(42))
	return blobs(rng, [][]float64{{0, 0}, {10, 0}, {0, 10}}, 12, 0.3)
}

func TestKMeansRecoversBlobs(t *testing.T) {
	pts, truth := wellSeparated()
	r, err := KMeans(rand.New(rand.NewSource(1)), pts, 3, 100)
	if err != nil {
		t.Fatal(err)
	}
	if !agrees(r.Assign, truth) {
		t.Fatalf("k-means failed to recover 3 well-separated blobs: %v", r.Assign)
	}
	sizes := r.Sizes()
	for c, s := range sizes {
		if s != 12 {
			t.Errorf("cluster %d has %d members, want 12", c, s)
		}
	}
}

func TestHierarchicalRecoversBlobs(t *testing.T) {
	pts, truth := wellSeparated()
	r, err := Hierarchical(pts, 3)
	if err != nil {
		t.Fatal(err)
	}
	if !agrees(r.Assign, truth) {
		t.Fatalf("hierarchical clustering failed on well-separated blobs")
	}
}

func TestKMeansAndHierarchicalAgree(t *testing.T) {
	pts, _ := wellSeparated()
	km, _ := KMeans(rand.New(rand.NewSource(2)), pts, 3, 100)
	hc, _ := Hierarchical(pts, 3)
	if !agrees(km.Assign, hc.Assign) {
		t.Error("k-means and hierarchical disagree on trivially separable data")
	}
}

func TestMedoidsAreMembers(t *testing.T) {
	pts, _ := wellSeparated()
	r, _ := KMeans(rand.New(rand.NewSource(3)), pts, 3, 100)
	meds := r.Medoids(pts)
	if len(meds) != 3 {
		t.Fatalf("medoids: %v", meds)
	}
	for c, m := range meds {
		if m < 0 || m >= len(pts) {
			t.Fatalf("medoid %d out of range", m)
		}
		if r.Assign[m] != c {
			t.Errorf("medoid %d of cluster %d is assigned to %d", m, c, r.Assign[m])
		}
		// No other member of the cluster is closer to the centroid.
		for i, a := range r.Assign {
			if a == c && sqDist(pts[i], r.Centroids[c]) < sqDist(pts[m], r.Centroids[c])-1e-12 {
				t.Errorf("cluster %d: member %d closer to centroid than medoid %d", c, i, m)
			}
		}
	}
}

func TestSilhouettePicksTrueK(t *testing.T) {
	pts, _ := wellSeparated()
	r, err := BestK(rand.New(rand.NewSource(4)), pts, 2, 8)
	if err != nil {
		t.Fatal(err)
	}
	if r.K != 3 {
		t.Errorf("BestK chose %d clusters, want 3", r.K)
	}
}

func TestSilhouetteOrdersGoodVsBad(t *testing.T) {
	pts, truth := wellSeparated()
	good := &Result{Assign: truth, K: 3}
	// Bad clustering: stripes across the blobs.
	badAssign := make([]int, len(pts))
	for i := range badAssign {
		badAssign[i] = i % 3
	}
	bad := &Result{Assign: badAssign, K: 3}
	if sg, sb := Silhouette(pts, good), Silhouette(pts, bad); sg <= sb {
		t.Errorf("silhouette good %.3f <= bad %.3f", sg, sb)
	}
}

func TestNormalize(t *testing.T) {
	pts := [][]float64{{1, 100, 5}, {2, 200, 5}, {3, 300, 5}}
	norm := Normalize(pts)
	for j := 0; j < 3; j++ {
		mean, varsum := 0.0, 0.0
		for i := range norm {
			mean += norm[i][j]
		}
		mean /= 3
		for i := range norm {
			d := norm[i][j] - mean
			varsum += d * d
		}
		if math.Abs(mean) > 1e-9 {
			t.Errorf("dim %d mean %g", j, mean)
		}
		if j < 2 && math.Abs(varsum/3-1) > 1e-9 {
			t.Errorf("dim %d variance %g", j, varsum/3)
		}
		if j == 2 && varsum != 0 {
			t.Errorf("constant dim normalised to nonzero variance")
		}
	}
	// Input untouched.
	if pts[0][0] != 1 || pts[2][1] != 300 {
		t.Error("Normalize mutated its input")
	}
}

func TestPCAOnAnisotropicData(t *testing.T) {
	// Points spread along the (1,1) diagonal with small noise: the first
	// principal component must capture the diagonal.
	rng := rand.New(rand.NewSource(5))
	var pts [][]float64
	for i := 0; i < 200; i++ {
		tval := rng.NormFloat64() * 5
		pts = append(pts, []float64{tval + rng.NormFloat64()*0.1, tval + rng.NormFloat64()*0.1})
	}
	proj, err := PCA(Normalize(pts), 2)
	if err != nil {
		t.Fatal(err)
	}
	// Variance along component 1 must dominate component 2.
	var v1, v2 float64
	for _, p := range proj {
		v1 += p[0] * p[0]
		v2 += p[1] * p[1]
	}
	if v1 < 10*v2 {
		t.Errorf("PCA variance ratio %.2f; first component should dominate", v1/v2)
	}
}

func TestValidation(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	if _, err := KMeans(rng, nil, 2, 10); err == nil {
		t.Error("empty points accepted")
	}
	if _, err := KMeans(rng, [][]float64{{1}, {2}}, 3, 10); err == nil {
		t.Error("k > n accepted")
	}
	if _, err := KMeans(rng, [][]float64{{1}, {1, 2}}, 1, 10); err == nil {
		t.Error("ragged matrix accepted")
	}
	if _, err := KMeans(rng, [][]float64{{math.NaN()}}, 1, 10); err == nil {
		t.Error("NaN accepted")
	}
	if _, err := Hierarchical([][]float64{{1}, {2}}, 0); err == nil {
		t.Error("k=0 accepted")
	}
	if _, err := PCA(nil, 1); err == nil {
		t.Error("PCA on empty input accepted")
	}
	if _, err := PCA([][]float64{{1, 2}}, 3); err == nil {
		t.Error("PCA with ncomp > dim accepted")
	}
}

// Property: k-means always returns a valid partition — every point
// assigned, cluster ids in range, centroids finite, and total
// within-cluster distance no worse than assigning everything to one
// random centroid.
func TestKMeansPartitionProperty(t *testing.T) {
	f := func(seed int64, kRaw uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 20 + rng.Intn(30)
		pts := make([][]float64, n)
		for i := range pts {
			pts[i] = []float64{rng.Float64() * 10, rng.Float64() * 10, rng.Float64()}
		}
		k := int(kRaw%8) + 1
		r, err := KMeans(rng, pts, k, 50)
		if err != nil {
			return false
		}
		if len(r.Assign) != n || r.K != k || len(r.Centroids) != k {
			return false
		}
		for _, c := range r.Assign {
			if c < 0 || c >= k {
				return false
			}
		}
		for _, cent := range r.Centroids {
			for _, v := range cent {
				if math.IsNaN(v) || math.IsInf(v, 0) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

// Property: each point is assigned to its nearest centroid on return
// (Lloyd post-condition).
func TestKMeansNearestCentroidProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		pts := make([][]float64, 30)
		for i := range pts {
			pts[i] = []float64{rng.Float64() * 4, rng.Float64() * 4}
		}
		r, err := KMeans(rng, pts, 4, 100)
		if err != nil {
			return false
		}
		for i, p := range pts {
			d := sqDist(p, r.Centroids[r.Assign[i]])
			for _, cent := range r.Centroids {
				if sqDist(p, cent) < d-1e-9 {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}

func TestSortedAssignCanonical(t *testing.T) {
	r := &Result{Assign: []int{2, 2, 0, 1, 0}, K: 3}
	got := SortedAssign(r)
	want := []int{0, 0, 1, 2, 1}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("SortedAssign = %v, want %v", got, want)
		}
	}
}

func TestKMeansSingleCluster(t *testing.T) {
	pts := [][]float64{{1, 2}, {3, 4}, {5, 6}}
	r, err := KMeans(rand.New(rand.NewSource(7)), pts, 1, 50)
	if err != nil {
		t.Fatal(err)
	}
	for j, want := range []float64{3, 4} {
		if math.Abs(r.Centroids[0][j]-want) > 1e-9 {
			t.Errorf("centroid[%d] = %g, want %g", j, r.Centroids[0][j], want)
		}
	}
}
