package buildinfo

import (
	"runtime"
	"strings"
	"testing"
)

func TestReadReportsToolchain(t *testing.T) {
	i := Read()
	if i.GoVersion != runtime.Version() {
		t.Errorf("GoVersion = %q, want %q", i.GoVersion, runtime.Version())
	}
	if i.Platform != runtime.GOOS+"/"+runtime.GOARCH {
		t.Errorf("Platform = %q", i.Platform)
	}
	if i.Module == "" || i.Version == "" {
		t.Errorf("empty module/version: %+v", i)
	}
}

func TestStringOneLine(t *testing.T) {
	s := Read().String()
	if strings.Contains(s, "\n") {
		t.Errorf("String() is not one line: %q", s)
	}
	for _, want := range []string{"mcbench", runtime.Version()} {
		if !strings.Contains(s, want) {
			t.Errorf("String() = %q missing %q", s, want)
		}
	}
}
