// Package buildinfo reports what build of mcbench is running, from the
// module metadata the Go toolchain embeds in every binary. It is the one
// source the `mcbench version` subcommand and the server's /healthz
// endpoint share, so a deployed server is identifiable without shipping
// a hand-maintained version constant.
package buildinfo

import (
	"fmt"
	"runtime"
	"runtime/debug"
	"strings"
)

// Info is the build identity of the running binary.
type Info struct {
	// Module is the main module path ("mcbench").
	Module string `json:"module"`
	// Version is the module version, or "(devel)" for a local build.
	Version string `json:"version"`
	// Revision is the VCS revision the binary was built from, when the
	// toolchain recorded one (empty otherwise). Dirty working trees are
	// suffixed with "+dirty".
	Revision string `json:"revision,omitempty"`
	// GoVersion is the toolchain that built the binary.
	GoVersion string `json:"go_version"`
	// Platform is GOOS/GOARCH.
	Platform string `json:"platform"`
}

// Read extracts the build identity via debug.ReadBuildInfo. It degrades
// gracefully: binaries built without module support still report the
// toolchain and platform.
func Read() Info {
	info := Info{
		Module:    "mcbench",
		Version:   "(devel)",
		GoVersion: runtime.Version(),
		Platform:  runtime.GOOS + "/" + runtime.GOARCH,
	}
	bi, ok := debug.ReadBuildInfo()
	if !ok {
		return info
	}
	if bi.Main.Path != "" {
		info.Module = bi.Main.Path
	}
	if bi.Main.Version != "" {
		info.Version = bi.Main.Version
	}
	var revision string
	dirty := false
	for _, s := range bi.Settings {
		switch s.Key {
		case "vcs.revision":
			revision = s.Value
		case "vcs.modified":
			dirty = s.Value == "true"
		}
	}
	if len(revision) > 12 {
		revision = revision[:12]
	}
	if dirty && revision != "" {
		revision += "+dirty"
	}
	info.Revision = revision
	return info
}

// String renders the identity on one line:
//
//	mcbench (devel) go1.24.0 linux/amd64 [rev 0123abcd4567]
func (i Info) String() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "%s %s %s %s", i.Module, i.Version, i.GoVersion, i.Platform)
	if i.Revision != "" {
		fmt.Fprintf(&sb, " rev %s", i.Revision)
	}
	return sb.String()
}
