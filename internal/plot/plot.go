// Package plot renders the paper's figures as monospace text charts and
// CSV files. The experiments (package experiments) compute the data; this
// package makes `mcbench figN` output directly comparable to the figures
// in the PDF: line charts for the confidence curves (Figures 1, 3, 6, 7),
// a scatter for the CPI correlation (Figure 2) and grouped bars for the
// 1/cv comparisons (Figures 4 and 5).
package plot

import (
	"fmt"
	"io"
	"math"
	"sort"
	"strings"
)

// Series is one named line of (X, Y) points.
type Series struct {
	Name string
	X    []float64
	Y    []float64
}

// Config controls chart geometry.
type Config struct {
	Width  int // plot area columns (default 64)
	Height int // plot area rows (default 16)
	Title  string
	XLabel string
	YLabel string
	LogX   bool // logarithmic x axis (sample-size axes in the paper)
	YMin   float64
	YMax   float64
	FixedY bool // use YMin/YMax instead of data range
}

func (c *Config) defaults() {
	if c.Width <= 0 {
		c.Width = 64
	}
	if c.Height <= 0 {
		c.Height = 16
	}
}

// markers cycles per series.
var markers = []byte{'*', 'o', '+', 'x', '#', '@', '%', '&'}

// Line renders a multi-series line chart.
func Line(cfg Config, series ...Series) string {
	cfg.defaults()
	var xs, ys []float64
	for _, s := range series {
		for i := range s.X {
			xs = append(xs, txX(cfg, s.X[i]))
			ys = append(ys, s.Y[i])
		}
	}
	if len(xs) == 0 {
		return "(empty plot)\n"
	}
	xmin, xmax := minMax(xs)
	ymin, ymax := minMax(ys)
	if cfg.FixedY {
		ymin, ymax = cfg.YMin, cfg.YMax
	}
	if xmax == xmin {
		xmax = xmin + 1
	}
	if ymax == ymin {
		ymax = ymin + 1
	}

	grid := newGrid(cfg.Width, cfg.Height)
	for si, s := range series {
		m := markers[si%len(markers)]
		var prevC, prevR int
		havePrev := false
		for i := range s.X {
			c := scale(txX(cfg, s.X[i]), xmin, xmax, cfg.Width-1)
			r := cfg.Height - 1 - scale(s.Y[i], ymin, ymax, cfg.Height-1)
			if r < 0 || r >= cfg.Height {
				havePrev = false
				continue
			}
			if havePrev {
				grid.segment(prevC, prevR, c, r, '.')
			}
			grid.set(c, r, m)
			prevC, prevR, havePrev = c, r, true
		}
	}
	return render(cfg, grid, xmin, xmax, ymin, ymax, legend(series))
}

// Scatter renders an (X, Y) point cloud; when bisector is set, the y=x
// diagonal is drawn (Figure 2 compares simulator CPIs against it).
func Scatter(cfg Config, bisector bool, series ...Series) string {
	cfg.defaults()
	var all []float64
	for _, s := range series {
		all = append(all, s.X...)
		all = append(all, s.Y...)
	}
	if len(all) == 0 {
		return "(empty plot)\n"
	}
	lo, hi := minMax(all)
	if hi == lo {
		hi = lo + 1
	}
	grid := newGrid(cfg.Width, cfg.Height)
	if bisector {
		for c := 0; c < cfg.Width; c++ {
			v := lo + (hi-lo)*float64(c)/float64(cfg.Width-1)
			r := cfg.Height - 1 - scale(v, lo, hi, cfg.Height-1)
			grid.set(c, r, '\\')
		}
	}
	for si, s := range series {
		m := markers[si%len(markers)]
		for i := range s.X {
			c := scale(s.X[i], lo, hi, cfg.Width-1)
			r := cfg.Height - 1 - scale(s.Y[i], lo, hi, cfg.Height-1)
			grid.set(c, r, m)
		}
	}
	return render(cfg, grid, lo, hi, lo, hi, legend(series))
}

// BarGroup is one labelled group of bars (e.g. one policy pair), with one
// value per series (e.g. one per metric).
type BarGroup struct {
	Label  string
	Values []float64
}

// Bars renders horizontally labelled grouped bars, with negative values
// extending left of the zero axis — the shape of Figures 4 and 5.
func Bars(cfg Config, seriesNames []string, groups []BarGroup) string {
	cfg.defaults()
	var all []float64
	for _, g := range groups {
		all = append(all, g.Values...)
	}
	if len(all) == 0 {
		return "(empty plot)\n"
	}
	lo, hi := minMax(all)
	if lo > 0 {
		lo = 0
	}
	if hi < 0 {
		hi = 0
	}
	if hi == lo {
		hi = lo + 1
	}
	span := hi - lo
	zero := scale(0, lo, hi, cfg.Width-1)

	var b strings.Builder
	if cfg.Title != "" {
		fmt.Fprintf(&b, "%s\n", cfg.Title)
	}
	labelW := 0
	for _, g := range groups {
		if len(g.Label) > labelW {
			labelW = len(g.Label)
		}
	}
	for _, g := range groups {
		for si, v := range g.Values {
			label := ""
			if si == 0 {
				label = g.Label
			}
			row := make([]byte, cfg.Width)
			for i := range row {
				row[i] = ' '
			}
			row[zero] = '|'
			pos := scale(v, lo, hi, cfg.Width-1)
			m := markers[si%len(markers)]
			if pos >= zero {
				for c := zero + 1; c <= pos; c++ {
					row[c] = m
				}
			} else {
				for c := pos; c < zero; c++ {
					row[c] = m
				}
			}
			fmt.Fprintf(&b, "%-*s %s %8.3f %s\n", labelW, label, string(row), v, seriesNames[si%len(seriesNames)])
		}
	}
	fmt.Fprintf(&b, "%-*s %s\n", labelW, "", axisLine(lo, hi, cfg.Width))
	fmt.Fprintf(&b, "scale: %.3g .. %.3g (span %.3g)\n", lo, hi, span)
	return b.String()
}

// WriteCSV emits a header row and data rows.
func WriteCSV(w io.Writer, header []string, rows [][]float64) error {
	if _, err := fmt.Fprintln(w, strings.Join(header, ",")); err != nil {
		return err
	}
	for _, row := range rows {
		parts := make([]string, len(row))
		for i, v := range row {
			parts[i] = fmt.Sprintf("%g", v)
		}
		if _, err := fmt.Fprintln(w, strings.Join(parts, ",")); err != nil {
			return err
		}
	}
	return nil
}

// ---------------------------------------------------------------------------

type charGrid struct {
	w, h  int
	cells []byte
}

func newGrid(w, h int) *charGrid {
	g := &charGrid{w: w, h: h, cells: make([]byte, w*h)}
	for i := range g.cells {
		g.cells[i] = ' '
	}
	return g
}

func (g *charGrid) set(c, r int, m byte) {
	if c < 0 || c >= g.w || r < 0 || r >= g.h {
		return
	}
	g.cells[r*g.w+c] = m
}

// segment draws a shallow connector between consecutive points so lines
// read as lines; data markers overwrite it.
func (g *charGrid) segment(c0, r0, c1, r1 int, m byte) {
	steps := abs(c1-c0) + abs(r1-r0)
	if steps == 0 {
		return
	}
	for s := 1; s < steps; s++ {
		c := c0 + (c1-c0)*s/steps
		r := r0 + (r1-r0)*s/steps
		if g.cells[r*g.w+c] == ' ' {
			g.set(c, r, m)
		}
	}
}

func (g *charGrid) row(r int) string { return string(g.cells[r*g.w : (r+1)*g.w]) }

func render(cfg Config, g *charGrid, xmin, xmax, ymin, ymax float64, legend string) string {
	var b strings.Builder
	if cfg.Title != "" {
		fmt.Fprintf(&b, "%s\n", cfg.Title)
	}
	ylab := cfg.YLabel
	for r := 0; r < g.h; r++ {
		yv := ymax - (ymax-ymin)*float64(r)/float64(g.h-1)
		tag := ""
		if r == 0 || r == g.h-1 || r == g.h/2 {
			tag = fmt.Sprintf("%8.3g", yv)
		}
		fmt.Fprintf(&b, "%8s |%s\n", tag, g.row(r))
	}
	fmt.Fprintf(&b, "%8s +%s\n", "", strings.Repeat("-", g.w))
	lo, hi := xmin, xmax
	if cfg.LogX {
		lo, hi = math.Exp(xmin), math.Exp(xmax)
	}
	fmt.Fprintf(&b, "%8s  %-*.4g%*.4g  %s\n", "", g.w/2, lo, g.w/2, hi, cfg.XLabel)
	if ylab != "" {
		fmt.Fprintf(&b, "y: %s\n", ylab)
	}
	if legend != "" {
		fmt.Fprintf(&b, "%s\n", legend)
	}
	return b.String()
}

func legend(series []Series) string {
	if len(series) == 0 {
		return ""
	}
	parts := make([]string, len(series))
	for i, s := range series {
		parts[i] = fmt.Sprintf("%c %s", markers[i%len(markers)], s.Name)
	}
	return "legend: " + strings.Join(parts, "   ")
}

func axisLine(lo, hi float64, width int) string {
	row := make([]byte, width)
	for i := range row {
		row[i] = '-'
	}
	row[scale(0, lo, hi, width-1)] = '+'
	return string(row)
}

func txX(cfg Config, x float64) float64 {
	if cfg.LogX {
		if x <= 0 {
			return math.Log(1e-9)
		}
		return math.Log(x)
	}
	return x
}

func scale(v, lo, hi float64, max int) int {
	p := int(math.Round((v - lo) / (hi - lo) * float64(max)))
	if p < 0 {
		p = 0
	}
	if p > max {
		p = max
	}
	return p
}

func minMax(xs []float64) (lo, hi float64) {
	lo, hi = xs[0], xs[0]
	for _, x := range xs[1:] {
		lo = math.Min(lo, x)
		hi = math.Max(hi, x)
	}
	return lo, hi
}

func abs(x int) int {
	if x < 0 {
		return -x
	}
	return x
}

// SortSeriesByX returns a copy of s with points sorted by X (line charts
// assume ascending X).
func SortSeriesByX(s Series) Series {
	idx := make([]int, len(s.X))
	for i := range idx {
		idx[i] = i
	}
	sort.Slice(idx, func(a, b int) bool { return s.X[idx[a]] < s.X[idx[b]] })
	out := Series{Name: s.Name, X: make([]float64, len(s.X)), Y: make([]float64, len(s.Y))}
	for i, j := range idx {
		out.X[i], out.Y[i] = s.X[j], s.Y[j]
	}
	return out
}
