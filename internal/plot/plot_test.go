package plot

import (
	"math"
	"strings"
	"testing"
)

func confidenceCurve() Series {
	s := Series{Name: "model"}
	for w := 10; w <= 800; w *= 2 {
		s.X = append(s.X, float64(w))
		s.Y = append(s.Y, 1-math.Exp(-float64(w)/100))
	}
	return s
}

func TestLineBasicStructure(t *testing.T) {
	out := Line(Config{Title: "confidence", XLabel: "sample size", YLabel: "conf", LogX: true},
		confidenceCurve())
	if !strings.Contains(out, "confidence") {
		t.Error("title missing")
	}
	if !strings.Contains(out, "sample size") || !strings.Contains(out, "conf") {
		t.Error("axis labels missing")
	}
	if !strings.Contains(out, "legend: * model") {
		t.Error("legend missing")
	}
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	// title + height rows + axis + xlabels + ylabel + legend
	if len(lines) != 1+16+1+1+1+1 {
		t.Errorf("unexpected line count %d:\n%s", len(lines), out)
	}
	if !strings.Contains(out, "*") {
		t.Error("no data markers plotted")
	}
}

func TestLineMultiSeriesMarkers(t *testing.T) {
	a := confidenceCurve()
	b := confidenceCurve()
	b.Name = "experiment"
	for i := range b.Y {
		b.Y[i] *= 0.9
	}
	out := Line(Config{}, a, b)
	if !strings.Contains(out, "*") || !strings.Contains(out, "o") {
		t.Error("series markers missing")
	}
	if !strings.Contains(out, "* model") || !strings.Contains(out, "o experiment") {
		t.Errorf("legend incomplete:\n%s", out)
	}
}

func TestLineEmpty(t *testing.T) {
	if out := Line(Config{}); !strings.Contains(out, "empty") {
		t.Errorf("empty plot output: %q", out)
	}
}

func TestLineFixedYRange(t *testing.T) {
	s := Series{Name: "s", X: []float64{1, 2}, Y: []float64{0.5, 0.6}}
	out := Line(Config{FixedY: true, YMin: 0, YMax: 1, Height: 10}, s)
	if !strings.Contains(out, "1") || !strings.Contains(out, "0") {
		t.Errorf("fixed axis bounds not rendered:\n%s", out)
	}
}

func TestScatterBisector(t *testing.T) {
	s := Series{Name: "cpi", X: []float64{1, 2, 3, 4}, Y: []float64{1.1, 1.9, 3.2, 4.0}}
	out := Scatter(Config{Title: "fig2"}, true, s)
	if !strings.Contains(out, "\\") {
		t.Error("bisector missing")
	}
	if !strings.Contains(out, "*") {
		t.Error("points missing")
	}
}

func TestBarsNegativeAndPositive(t *testing.T) {
	out := Bars(Config{Title: "1/cv"}, []string{"IPCT", "WSU"}, []BarGroup{
		{Label: "LRU>RND", Values: []float64{0.8, 0.9}},
		{Label: "LRU>DIP", Values: []float64{-0.2, -0.1}},
	})
	if !strings.Contains(out, "LRU>RND") || !strings.Contains(out, "LRU>DIP") {
		t.Error("group labels missing")
	}
	if !strings.Contains(out, "IPCT") || !strings.Contains(out, "WSU") {
		t.Error("series names missing")
	}
	if !strings.Contains(out, "0.800") || !strings.Contains(out, "-0.200") {
		t.Errorf("values missing:\n%s", out)
	}
	// Zero axis marker present on every bar row.
	for _, line := range strings.Split(out, "\n") {
		if strings.Contains(line, "IPCT") && !strings.Contains(line, "|") {
			t.Errorf("bar row without zero axis: %q", line)
		}
	}
}

func TestWriteCSV(t *testing.T) {
	var b strings.Builder
	err := WriteCSV(&b, []string{"w", "conf"}, [][]float64{{10, 0.75}, {20, 0.9}})
	if err != nil {
		t.Fatal(err)
	}
	want := "w,conf\n10,0.75\n20,0.9\n"
	if b.String() != want {
		t.Errorf("CSV = %q, want %q", b.String(), want)
	}
}

func TestSortSeriesByX(t *testing.T) {
	s := Series{Name: "s", X: []float64{3, 1, 2}, Y: []float64{30, 10, 20}}
	got := SortSeriesByX(s)
	for i, wantX := range []float64{1, 2, 3} {
		if got.X[i] != wantX || got.Y[i] != wantX*10 {
			t.Fatalf("sorted = %v/%v", got.X, got.Y)
		}
	}
	// Original untouched.
	if s.X[0] != 3 {
		t.Error("SortSeriesByX mutated input")
	}
}

func TestScaleClamps(t *testing.T) {
	if scale(-5, 0, 10, 63) != 0 {
		t.Error("below-range not clamped to 0")
	}
	if scale(50, 0, 10, 63) != 63 {
		t.Error("above-range not clamped to max")
	}
	if scale(5, 0, 10, 10) != 5 {
		t.Error("midpoint wrong")
	}
}

func TestLogXHandlesNonPositive(t *testing.T) {
	s := Series{Name: "s", X: []float64{0, 10, 100}, Y: []float64{1, 2, 3}}
	out := Line(Config{LogX: true}, s)
	if strings.Contains(out, "NaN") || strings.Contains(out, "Inf") {
		t.Errorf("log axis produced NaN/Inf:\n%s", out)
	}
}
