package trace

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestSuiteHas22UniqueBenchmarks(t *testing.T) {
	ps := Suite()
	if len(ps) != 22 {
		t.Fatalf("suite has %d benchmarks, want 22", len(ps))
	}
	seen := map[string]bool{}
	for _, p := range ps {
		if seen[p.Name] {
			t.Errorf("duplicate benchmark %q", p.Name)
		}
		seen[p.Name] = true
		if err := p.Validate(); err != nil {
			t.Errorf("benchmark %q invalid: %v", p.Name, err)
		}
	}
}

func TestByName(t *testing.T) {
	p, ok := ByName("mcf")
	if !ok || p.Name != "mcf" {
		t.Fatalf("ByName(mcf) = %v, %v", p.Name, ok)
	}
	if _, ok := ByName("not-a-benchmark"); ok {
		t.Fatal("ByName should fail for unknown benchmark")
	}
}

func TestGenerateDeterministic(t *testing.T) {
	p, _ := ByName("gcc")
	a := MustGenerate(p, 5000)
	b := MustGenerate(p, 5000)
	if len(a.Ops) != len(b.Ops) {
		t.Fatal("length mismatch")
	}
	for i := range a.Ops {
		if a.Ops[i] != b.Ops[i] {
			t.Fatalf("op %d differs between identical generations", i)
		}
	}
}

func TestGenerateDistinctSeeds(t *testing.T) {
	p, _ := ByName("gcc")
	a := MustGenerate(p, 2000)
	p.Seed++
	b := MustGenerate(p, 2000)
	same := 0
	for i := range a.Ops {
		if a.Ops[i] == b.Ops[i] {
			same++
		}
	}
	if same == len(a.Ops) {
		t.Fatal("different seeds produced identical traces")
	}
}

func TestInstructionMixMatchesParams(t *testing.T) {
	for _, p := range Suite() {
		tr := MustGenerate(p, 20000)
		counts := map[Kind]int{}
		for _, op := range tr.Ops {
			counts[op.Kind]++
		}
		n := float64(len(tr.Ops))
		check := func(kind Kind, want float64) {
			got := float64(counts[kind]) / n
			if math.Abs(got-want) > 0.02 {
				t.Errorf("%s: %v fraction %g, want %g±0.02", p.Name, kind, got, want)
			}
		}
		check(Load, p.LoadFrac)
		check(Store, p.StoreFrac)
		check(Branch, p.BranchFrac)
		check(FP, p.FPFrac)
	}
}

func TestMemoryOpsHaveAddresses(t *testing.T) {
	for _, name := range []string{"mcf", "povray", "libquantum"} {
		p, _ := ByName(name)
		tr := MustGenerate(p, 10000)
		for i, op := range tr.Ops {
			switch op.Kind {
			case Load, Store:
				if op.Addr == 0 {
					t.Fatalf("%s: op %d is %v with zero address", name, i, op.Kind)
				}
			default:
				if op.Addr != 0 {
					t.Fatalf("%s: op %d is %v with address %#x", name, i, op.Kind, op.Addr)
				}
			}
		}
	}
}

func TestDependencyDistancesInRange(t *testing.T) {
	p, _ := ByName("hmmer")
	tr := MustGenerate(p, 10000)
	for i, op := range tr.Ops {
		if int(op.Dep1) > i || int(op.Dep2) > i {
			t.Fatalf("op %d has dependency beyond trace start (%d,%d)", i, op.Dep1, op.Dep2)
		}
	}
}

func TestBranchBiasRealised(t *testing.T) {
	// A highly biased benchmark should have branches dominated by one
	// outcome per site; a weakly biased one should not.
	p, _ := ByName("libquantum") // bias 0.99
	tr := MustGenerate(p, 50000)
	taken := map[uint64][2]int{}
	for _, op := range tr.Ops {
		if op.Kind != Branch {
			continue
		}
		c := taken[op.PC]
		if op.Taken {
			c[1]++
		} else {
			c[0]++
		}
		taken[op.PC] = c
	}
	if len(taken) == 0 {
		t.Fatal("no branches generated")
	}
	for pc, c := range taken {
		tot := c[0] + c[1]
		if tot < 20 {
			continue
		}
		dom := c[0]
		if c[1] > dom {
			dom = c[1]
		}
		if frac := float64(dom) / float64(tot); frac < 0.9 {
			t.Errorf("site %#x dominant outcome fraction %g, want >= 0.9 for bias 0.99", pc, frac)
		}
	}
}

func TestChasePatternVisitsAllLines(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for _, n := range []int{2, 3, 10, 257} {
		perm := randomCycle(rng, n)
		// Follow the cycle and verify it is a single cycle covering all
		// elements.
		seen := make([]bool, n)
		cur := uint32(0)
		for i := 0; i < n; i++ {
			if seen[cur] {
				t.Fatalf("n=%d: revisited %d after %d steps", n, cur, i)
			}
			seen[cur] = true
			cur = perm[cur]
		}
		if cur != 0 {
			t.Fatalf("n=%d: cycle did not close", n)
		}
	}
}

func TestPatternFootprints(t *testing.T) {
	// Every address from a HotSet/Scan/Chase/Stride pattern must stay
	// within its declared region.
	p := Params{
		Name: "probe", LoadFrac: 1, BranchBias: 0.9, CodeBytes: 4 * KB,
		DepMean: 4, Seed: 3,
		Patterns: []PatternSpec{{Kind: Scan, Bytes: 64 * KB, Weight: 1}},
	}
	tr := MustGenerate(p, 8000)
	var min, max uint64 = math.MaxUint64, 0
	for _, op := range tr.Ops {
		if op.Kind != Load {
			continue
		}
		if op.Addr < min {
			min = op.Addr
		}
		if op.Addr > max {
			max = op.Addr
		}
	}
	if span := max - min; span >= 64*KB {
		t.Errorf("scan span %d exceeds declared 64KB footprint", span)
	}
}

func TestStreamNeverRepeatsLines(t *testing.T) {
	p := Params{
		Name: "probe", LoadFrac: 1, BranchBias: 0.9, CodeBytes: 4 * KB,
		DepMean: 4, Seed: 3,
		Patterns: []PatternSpec{{Kind: Stream, Weight: 1}},
	}
	tr := MustGenerate(p, 5000)
	seen := map[uint64]bool{}
	for _, op := range tr.Ops {
		if op.Kind != Load {
			continue
		}
		line := op.Addr / CacheLine
		if seen[line] {
			t.Fatalf("stream revisited line %#x", line)
		}
		seen[line] = true
	}
}

func TestValidateRejectsBadParams(t *testing.T) {
	good := Params{
		Name: "x", LoadFrac: 0.3, BranchBias: 0.9, CodeBytes: 4 * KB,
		Patterns: []PatternSpec{{Kind: HotSet, Bytes: KB, Weight: 1}},
	}
	cases := []struct {
		mutate func(*Params)
		desc   string
	}{
		{func(p *Params) { p.Name = "" }, "empty name"},
		{func(p *Params) { p.LoadFrac = 1.2 }, "mix > 1"},
		{func(p *Params) { p.BranchBias = 0.3 }, "bias < 0.5"},
		{func(p *Params) { p.LoadDepFrac = 1.5 }, "load-dep fraction > 1"},
		{func(p *Params) { p.LoadDepFrac = -0.1 }, "negative load-dep fraction"},
		{func(p *Params) { p.Patterns = nil }, "no patterns"},
		{func(p *Params) { p.Patterns[0].Weight = 0 }, "zero weights"},
		{func(p *Params) { p.CodeBytes = 0 }, "no code"},
	}
	for _, c := range cases {
		p := good
		p.Patterns = append([]PatternSpec(nil), good.Patterns...)
		c.mutate(&p)
		if err := p.Validate(); err == nil {
			t.Errorf("Validate accepted %s", c.desc)
		}
	}
	if err := good.Validate(); err != nil {
		t.Errorf("Validate rejected good params: %v", err)
	}
}

func TestGenerateErrors(t *testing.T) {
	p, _ := ByName("mcf")
	if _, err := Generate(p, 0); err == nil {
		t.Error("Generate accepted n=0")
	}
	p.Name = ""
	if _, err := Generate(p, 100); err == nil {
		t.Error("Generate accepted invalid params")
	}
}

// Property: generated dependency distances never exceed the op index and
// traces have exactly the requested length.
func TestGenerateProperty(t *testing.T) {
	f := func(seed int64, rawLen uint16) bool {
		n := int(rawLen)%3000 + 1
		p, _ := ByName("astar")
		p.Seed = seed
		tr, err := Generate(p, n)
		if err != nil || tr.Len() != n {
			return false
		}
		for i, op := range tr.Ops {
			if int(op.Dep1) > i || int(op.Dep2) > i {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}
