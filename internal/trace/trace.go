// Package trace defines the synthetic benchmark suite that stands in for
// the 22 SPEC CPU2006 benchmarks of the paper, and generates deterministic
// µop traces from per-benchmark behaviour parameters.
//
// Each benchmark is a parameterised generator of a µop stream: an
// instruction mix (ALU, long-latency FP, load, store, branch), register
// dependency distances (instruction-level parallelism), branch behaviour
// (per-site outcome bias), a code footprint (instruction-fetch locality)
// and a mixture of data access patterns (hot sets, cyclic scans, streams,
// pointer chases, strided walks). The mixture weights and footprint sizes
// are calibrated so that the measured memory intensity (LLC misses per
// kilo-instruction) of each benchmark falls in the class assigned to it by
// Table IV of the paper.
package trace

import (
	"fmt"
	"math/rand"
)

// Kind is a µop category.
type Kind uint8

// µop kinds. Latencies are assigned by the core model, not here.
const (
	ALU Kind = iota // single-cycle integer operation
	FP              // long-latency floating-point operation
	Load
	Store
	Branch
	Call // direct or indirect call: exercises the BTAC / indirect predictor and pushes the RAS
	Ret  // return: pops the RAS
)

// String returns a short human-readable kind name.
func (k Kind) String() string {
	switch k {
	case ALU:
		return "alu"
	case FP:
		return "fp"
	case Load:
		return "load"
	case Store:
		return "store"
	case Branch:
		return "branch"
	case Call:
		return "call"
	case Ret:
		return "ret"
	}
	return fmt.Sprintf("kind(%d)", uint8(k))
}

// Op is one µop of a benchmark trace.
//
// PC identifies the instruction for the branch predictor and the
// IP-indexed data prefetchers. ILine is the instruction-cache line index
// the op was fetched from (the code-walk position); it is kept separate
// from PC so that stable per-site branch/load PCs do not perturb the
// instruction-fetch stream.
type Op struct {
	PC       uint64 // instruction address (synthetic)
	Addr     uint64 // data address for Load/Store, call target for Call, 0 otherwise
	ILine    uint32 // instruction-cache line index within the code footprint
	Dep1     uint16 // register dependency distance (ops back), 0 = none
	Dep2     uint16 // second dependency distance, 0 = none
	Kind     Kind
	Taken    bool // branch outcome (Branch only)
	Indirect bool // Call through a function pointer (Call only)
}

// Trace is an immutable µop sequence for one benchmark. Traces are built
// once per benchmark and shared read-only by all simulations.
type Trace struct {
	Name string
	Ops  []Op
}

// Len returns the number of µops in the trace.
func (t *Trace) Len() int { return len(t.Ops) }

// CacheLine is the line size assumed by the generators, matching the
// simulated caches (64 bytes).
const CacheLine = 64

// PatternKind selects a data access pattern generator.
type PatternKind uint8

// Supported access patterns.
const (
	// HotSet draws uniformly from a small region, giving temporal reuse.
	HotSet PatternKind = iota
	// Scan sweeps cyclically through a region with a fixed stride. A
	// region larger than the cache thrashes LRU but is BIP/DIP friendly.
	Scan
	// Stream walks ever-forward, never reusing a line (prefetch friendly,
	// zero temporal reuse).
	Stream
	// Chase follows a fixed random permutation of lines in a region,
	// defeating stride prefetchers and serialising misses.
	Chase
	// Stride jumps by a fixed non-unit stride within a region
	// (IP-stride-prefetcher friendly, low spatial reuse).
	Stride
)

// String returns the pattern name.
func (p PatternKind) String() string {
	switch p {
	case HotSet:
		return "hotset"
	case Scan:
		return "scan"
	case Stream:
		return "stream"
	case Chase:
		return "chase"
	case Stride:
		return "stride"
	}
	return fmt.Sprintf("pattern(%d)", uint8(p))
}

// PatternSpec is one component of a benchmark's data access mixture.
type PatternSpec struct {
	Kind   PatternKind
	Bytes  int     // region footprint in bytes (ignored by Stream)
	Stride int     // stride in bytes for Scan/Stride (default CacheLine)
	Weight float64 // relative probability a memory op uses this pattern
}

// Params describes a synthetic benchmark.
type Params struct {
	Name string

	// Instruction mix. The remaining fraction is ALU.
	LoadFrac   float64
	StoreFrac  float64
	BranchFrac float64
	FPFrac     float64

	// DepMean is the geometric-ish mean register dependency distance.
	// Small values serialise execution (low ILP), large values expose
	// parallelism.
	DepMean float64

	// LoadDepFrac is the probability that a dependency landing on a Load
	// is kept. Streaming code computes addresses from induction
	// variables, not loaded data, so its loads stay independent (high
	// memory-level parallelism); pointer-chasing code keeps such
	// dependencies and serialises its misses.
	LoadDepFrac float64

	// BranchBias is the per-site probability of the dominant outcome in
	// [0.5, 1]. 1.0 means perfectly predictable branches.
	BranchBias float64

	// LoopFrac is the fraction of branch µops drawn from loop-exit sites,
	// whose outcome follows a strict period (taken p-1 times, then
	// not-taken once). These branches defeat per-site predictors but are
	// perfectly learnable from history (TAGE territory). Zero disables
	// loop sites and keeps the generator byte-compatible with traces
	// produced before this knob existed.
	LoopFrac float64

	// CorrFrac is the fraction of branch µops drawn from correlated
	// sites, whose outcome repeats the most recent outcome of a paired
	// biased "driver" site. Zero disables them (see LoopFrac).
	CorrFrac float64

	// CallFrac is the fraction of µops that are calls or returns
	// (balanced nesting, bounded depth). A quarter of the call sites are
	// indirect (several possible targets), exercising the indirect
	// predictor; returns exercise the RAS. Zero (the default and the
	// value for the 22-benchmark suite) keeps the generator
	// byte-compatible with traces produced before this knob existed.
	CallFrac float64

	// CodeBytes is the instruction footprint driving IL1 behaviour.
	CodeBytes int

	// Patterns is the data access mixture.
	Patterns []PatternSpec

	// Seed makes the benchmark deterministic and distinct from others.
	Seed int64
}

// Validate reports structural problems in the parameters.
func (p *Params) Validate() error {
	if p.Name == "" {
		return fmt.Errorf("trace: benchmark with empty name")
	}
	frac := p.LoadFrac + p.StoreFrac + p.BranchFrac + p.FPFrac
	if frac < 0 || frac > 1 {
		return fmt.Errorf("trace: %s: instruction-mix fractions sum to %g, want [0,1]", p.Name, frac)
	}
	if p.BranchBias < 0.5 || p.BranchBias > 1 {
		return fmt.Errorf("trace: %s: branch bias %g outside [0.5,1]", p.Name, p.BranchBias)
	}
	if p.LoopFrac < 0 || p.CorrFrac < 0 || p.LoopFrac+p.CorrFrac > 1 {
		return fmt.Errorf("trace: %s: loop/correlated branch fractions %g/%g invalid", p.Name, p.LoopFrac, p.CorrFrac)
	}
	if p.CallFrac < 0 || frac+p.CallFrac > 1 {
		return fmt.Errorf("trace: %s: call fraction %g overflows the instruction mix", p.Name, p.CallFrac)
	}
	if p.LoadDepFrac < 0 || p.LoadDepFrac > 1 {
		return fmt.Errorf("trace: %s: load-dep fraction %g outside [0,1]", p.Name, p.LoadDepFrac)
	}
	if len(p.Patterns) == 0 {
		return fmt.Errorf("trace: %s: no access patterns", p.Name)
	}
	total := 0.0
	for _, ps := range p.Patterns {
		if ps.Weight < 0 {
			return fmt.Errorf("trace: %s: negative pattern weight", p.Name)
		}
		total += ps.Weight
	}
	if total == 0 {
		return fmt.Errorf("trace: %s: all pattern weights zero", p.Name)
	}
	if p.CodeBytes <= 0 {
		return fmt.Errorf("trace: %s: code footprint %d", p.Name, p.CodeBytes)
	}
	return nil
}

// patternState is the run-time state of one pattern generator.
type patternState struct {
	spec PatternSpec
	base uint64 // region base address
	pc   uint64 // synthetic PC owning this pattern's accesses
	pos  uint64 // cursor for Scan/Stream/Stride
	perm []uint32
	cur  uint32 // cursor for Chase
}

func (ps *patternState) next(rng *rand.Rand) uint64 {
	switch ps.spec.Kind {
	case HotSet:
		lines := uint64(ps.spec.Bytes / CacheLine)
		if lines == 0 {
			lines = 1
		}
		// Two-level locality: most accesses go to a hot core that fits in
		// an L1, the rest spread over the whole footprint. This keeps L1
		// hit rates realistic while the tail still exercises the full
		// region (which is what determines the LLC footprint).
		coreLines := uint64(hotCoreBytes / CacheLine)
		if coreLines > lines {
			coreLines = lines
		}
		if rng.Float64() < hotCoreFrac {
			return ps.base + (rng.Uint64()%coreLines)*CacheLine
		}
		return ps.base + (rng.Uint64()%lines)*CacheLine
	case Scan:
		stride := uint64(ps.spec.Stride)
		if stride == 0 {
			stride = CacheLine
		}
		span := uint64(ps.spec.Bytes)
		if span < stride {
			span = stride
		}
		a := ps.base + ps.pos%span
		ps.pos += stride
		return a
	case Stream:
		a := ps.base + ps.pos
		ps.pos += CacheLine
		return a
	case Chase:
		a := ps.base + uint64(ps.perm[ps.cur])*CacheLine
		ps.cur = ps.perm[ps.cur]
		return a
	case Stride:
		stride := uint64(ps.spec.Stride)
		if stride == 0 {
			stride = 4 * CacheLine
		}
		span := uint64(ps.spec.Bytes)
		if span < stride {
			span = stride
		}
		a := ps.base + ps.pos%span
		ps.pos += stride
		return a
	}
	panic("trace: unknown pattern kind")
}

// regionGap separates pattern regions in the benchmark's virtual address
// space so distinct patterns never alias.
const regionGap = 1 << 28

// hotCoreBytes and hotCoreFrac shape HotSet locality: hotCoreFrac of the
// accesses hit the first hotCoreBytes of the region.
const (
	hotCoreBytes = 16 * KB
	hotCoreFrac  = 0.85
)

// branchSites is the number of distinct biased branch PCs per benchmark;
// loopSites and corrSitesN size the optional loop-exit and correlated
// site pools (used only when LoopFrac/CorrFrac are nonzero).
const (
	branchSites = 64
	loopSites   = 16
	corrSitesN  = 16
)

// Call/return generation limits: callSitesN distinct call sites, nesting
// bounded at maxCallDepth (deep enough to overflow a 16-entry RAS now and
// then, as real call-heavy code does). calleeBase is the synthetic target
// address space; retPC is the single synthetic return-instruction PC.
const (
	callSitesN   = 16
	maxCallDepth = 24
	calleeBase   = 0x20000000
	retPC        = 0x6FFFF0
)

// Generate builds a deterministic trace of n µops from p.
func Generate(p Params, n int) (*Trace, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	if n <= 0 {
		return nil, fmt.Errorf("trace: %s: non-positive trace length %d", p.Name, n)
	}
	rng := rand.New(rand.NewSource(p.Seed))

	// Pattern states, each in its own region with its own synthetic PC.
	states := make([]*patternState, len(p.Patterns))
	cum := make([]float64, len(p.Patterns))
	total := 0.0
	for i, spec := range p.Patterns {
		st := &patternState{
			spec: spec,
			base: uint64(i+1) * regionGap,
			pc:   0x400000 + uint64(i)*64, // stable per-pattern load/store PC
		}
		if spec.Kind == Chase {
			lines := spec.Bytes / CacheLine
			if lines < 2 {
				lines = 2
			}
			st.perm = randomCycle(rng, lines)
		}
		total += spec.Weight
		cum[i] = total
		states[i] = st
	}

	// Branch sites with per-site dominant outcome and bias.
	type site struct {
		pc       uint64
		dominant bool
	}
	sites := make([]site, branchSites)
	for i := range sites {
		sites[i] = site{pc: 0x500000 + uint64(i)*16, dominant: rng.Intn(2) == 0}
	}

	// Loop-exit sites: strict period p, taken p-1 times then not-taken.
	// A loop, once entered, runs to completion (its branch is emitted for
	// every loop-kind draw until the exit), mirroring how a real backedge
	// branch executes consecutively — this is what makes the pattern
	// recoverable from global history.
	type loopSite struct {
		pc        uint64
		period    int
		remaining int
	}
	var loops []loopSite
	activeLoop := -1
	if p.LoopFrac > 0 {
		loops = make([]loopSite, loopSites)
		for i := range loops {
			loops[i] = loopSite{pc: 0x510000 + uint64(i)*16, period: 4 + rng.Intn(13)}
		}
	}
	// Correlated sites: each repeats the outcome of the immediately
	// preceding branch (an if/else chain re-testing the same condition);
	// the signal sits in the first global-history bit.
	var corrPCs []uint64
	lastOutcome := false
	if p.CorrFrac > 0 {
		corrPCs = make([]uint64, corrSitesN)
		for i := range corrPCs {
			corrPCs[i] = 0x520000 + uint64(i)*16
		}
	}

	// Call sites: fixed return-free targets; a quarter are indirect with
	// several possible callees. Calls and returns nest with bounded depth.
	type callSite struct {
		pc       uint64
		targets  []uint64
		indirect bool
	}
	var callsTbl []callSite
	callDepth := 0
	if p.CallFrac > 0 {
		callsTbl = make([]callSite, callSitesN)
		for i := range callsTbl {
			cs := callSite{pc: 0x600000 + uint64(i)*32}
			if i%4 == 0 {
				cs.indirect = true
				cs.targets = make([]uint64, 4)
				for j := range cs.targets {
					cs.targets[j] = calleeBase + uint64(i*8+j)*256
				}
			} else {
				cs.targets = []uint64{calleeBase + uint64(i*8)*256}
			}
			callsTbl[i] = cs
		}
	}

	codeLines := uint64(p.CodeBytes / CacheLine)
	if codeLines == 0 {
		codeLines = 1
	}

	ops := make([]Op, n)
	var codePos uint64
	for i := range ops {
		op := &ops[i]
		// The code walk packs four µops per instruction line and cycles
		// through the footprint (16 bytes of x86 per µop after cracking).
		iline := (codePos / 4) % codeLines
		op.ILine = uint32(iline)
		op.PC = 0x10000000 + iline*CacheLine + (codePos%4)*16
		codePos++

		r := rng.Float64()
		switch {
		case r < p.LoadFrac:
			op.Kind = Load
		case r < p.LoadFrac+p.StoreFrac:
			op.Kind = Store
		case r < p.LoadFrac+p.StoreFrac+p.BranchFrac:
			op.Kind = Branch
		case r < p.LoadFrac+p.StoreFrac+p.BranchFrac+p.FPFrac:
			op.Kind = FP
		case r < p.LoadFrac+p.StoreFrac+p.BranchFrac+p.FPFrac+p.CallFrac:
			// Unreachable when CallFrac == 0, preserving the RNG stream
			// of pre-existing parameter sets.
			op.Kind = Call
			if callDepth > 0 && (callDepth >= maxCallDepth || rng.Intn(2) == 1) {
				op.Kind = Ret
			}
		default:
			op.Kind = ALU
		}

		switch op.Kind {
		case Load, Store:
			st := states[pick(cum, total, rng)]
			op.Addr = st.next(rng)
			op.PC = st.pc // stable PC enables IP-stride prefetching
		case Branch:
			plainBranch := func() {
				s := sites[rng.Intn(branchSites)]
				op.PC = s.pc
				op.Taken = s.dominant
				if rng.Float64() > p.BranchBias {
					op.Taken = !op.Taken
				}
			}
			if p.LoopFrac == 0 && p.CorrFrac == 0 {
				// Exactly the pre-knob RNG consumption: traces generated
				// by old parameter sets stay byte-identical.
				plainBranch()
				break
			}
			switch kind := rng.Float64(); {
			case kind < p.LoopFrac:
				if activeLoop < 0 {
					activeLoop = rng.Intn(len(loops))
					loops[activeLoop].remaining = loops[activeLoop].period
				}
				ls := &loops[activeLoop]
				op.PC = ls.pc
				ls.remaining--
				op.Taken = ls.remaining > 0
				if ls.remaining == 0 {
					activeLoop = -1
				}
			case kind < p.LoopFrac+p.CorrFrac:
				op.PC = corrPCs[rng.Intn(len(corrPCs))]
				op.Taken = lastOutcome
			default:
				plainBranch()
			}
			lastOutcome = op.Taken
		case Call:
			cs := &callsTbl[rng.Intn(len(callsTbl))]
			op.PC = cs.pc
			op.Indirect = cs.indirect
			op.Addr = cs.targets[0]
			if cs.indirect {
				op.Addr = cs.targets[rng.Intn(len(cs.targets))]
			}
			callDepth++
		case Ret:
			op.PC = retPC
			callDepth--
		}

		// Register dependencies: geometric-ish distances around DepMean.
		// Dependencies landing on loads are kept only with probability
		// LoadDepFrac (see the Params field).
		op.Dep1 = depDistance(rng, p.DepMean, i)
		if op.Dep1 > 0 && ops[i-int(op.Dep1)].Kind == Load && rng.Float64() >= p.LoadDepFrac {
			op.Dep1 = 0
		}
		if rng.Float64() < 0.5 {
			op.Dep2 = depDistance(rng, p.DepMean, i)
			if op.Dep2 > 0 && ops[i-int(op.Dep2)].Kind == Load && rng.Float64() >= p.LoadDepFrac {
				op.Dep2 = 0
			}
		}
	}
	return &Trace{Name: p.Name, Ops: ops}, nil
}

// MustGenerate is Generate for known-good parameters (the built-in suite).
func MustGenerate(p Params, n int) *Trace {
	t, err := Generate(p, n)
	if err != nil {
		panic(err)
	}
	return t
}

// pick returns the index of the pattern selected by a cumulative-weight
// draw.
func pick(cum []float64, total float64, rng *rand.Rand) int {
	r := rng.Float64() * total
	for i, c := range cum {
		if r < c {
			return i
		}
	}
	return len(cum) - 1
}

// depDistance draws a dependency distance with mean roughly mean, clamped
// to the number of preceding ops. Zero means no dependency.
func depDistance(rng *rand.Rand, mean float64, i int) uint16 {
	if mean <= 0 || i == 0 {
		return 0
	}
	// Geometric distribution with the requested mean; distance 0 is
	// remapped to "no dependency" which also thins serialisation.
	d := int(rng.ExpFloat64() * mean)
	if d <= 0 {
		return 0
	}
	if d > i {
		d = i
	}
	if d > 60000 {
		d = 60000
	}
	return uint16(d)
}

// randomCycle builds a single-cycle permutation of [0,n) (a random
// Hamiltonian cycle), so a pointer chase visits every line.
func randomCycle(rng *rand.Rand, n int) []uint32 {
	order := rng.Perm(n)
	next := make([]uint32, n)
	for i := 0; i < n; i++ {
		next[order[i]] = uint32(order[(i+1)%n])
	}
	return next
}
