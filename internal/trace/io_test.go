package trace

import (
	"bytes"
	"os"
	"path/filepath"
	"testing"
	"testing/quick"
)

func ioParams() Params {
	return Params{
		Name:        "roundtrip",
		LoadFrac:    0.25,
		StoreFrac:   0.1,
		BranchFrac:  0.12,
		FPFrac:      0.05,
		CallFrac:    0.04,
		LoopFrac:    0.3,
		CorrFrac:    0.2,
		DepMean:     7,
		LoadDepFrac: 0.5,
		BranchBias:  0.9,
		CodeBytes:   16 << 10,
		Patterns: []PatternSpec{
			{Kind: HotSet, Bytes: 64 << 10, Weight: 1},
			{Kind: Stream, Weight: 0.5},
			{Kind: Chase, Bytes: 32 << 10, Weight: 0.3},
		},
		Seed: 99,
	}
}

func TestRoundTripExact(t *testing.T) {
	tr := MustGenerate(ioParams(), 20000)
	var buf bytes.Buffer
	n, err := tr.WriteTo(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if n != int64(buf.Len()) {
		t.Errorf("WriteTo reported %d bytes, wrote %d", n, buf.Len())
	}
	got, err := Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.Name != tr.Name {
		t.Fatalf("name %q != %q", got.Name, tr.Name)
	}
	if len(got.Ops) != len(tr.Ops) {
		t.Fatalf("op count %d != %d", len(got.Ops), len(tr.Ops))
	}
	for i := range tr.Ops {
		if got.Ops[i] != tr.Ops[i] {
			t.Fatalf("op %d differs: %+v != %+v", i, got.Ops[i], tr.Ops[i])
		}
	}
}

func TestEncodingIsCompact(t *testing.T) {
	tr := MustGenerate(ioParams(), 50000)
	var buf bytes.Buffer
	if _, err := tr.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	perOp := float64(buf.Len()) / float64(tr.Len())
	// In-memory ops are 32+ bytes; the wire format must be far denser.
	if perOp > 8 {
		t.Errorf("%.1f bytes/op on the wire; expected < 8", perOp)
	}
}

func TestChecksumDetectsCorruption(t *testing.T) {
	tr := MustGenerate(ioParams(), 5000)
	var buf bytes.Buffer
	if _, err := tr.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	for _, flip := range []int{len(traceMagic) + 3, buf.Len() / 2, buf.Len() - 9} {
		data := append([]byte(nil), buf.Bytes()...)
		data[flip] ^= 0x40
		if _, err := Read(bytes.NewReader(data)); err == nil {
			t.Errorf("corruption at byte %d not detected", flip)
		}
	}
}

func TestTruncationDetected(t *testing.T) {
	tr := MustGenerate(ioParams(), 5000)
	var buf bytes.Buffer
	if _, err := tr.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	for _, cut := range []int{0, 3, len(traceMagic), buf.Len() / 3, buf.Len() - 1} {
		if _, err := Read(bytes.NewReader(buf.Bytes()[:cut])); err == nil {
			t.Errorf("truncation at %d of %d not detected", cut, buf.Len())
		}
	}
}

func TestBadMagicAndVersion(t *testing.T) {
	if _, err := Read(bytes.NewReader([]byte("NOPE12345678xxxxxxxx"))); err == nil {
		t.Error("bad magic accepted")
	}
}

func TestSaveLoadFile(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "bench.mcbt")
	tr := MustGenerate(ioParams(), 8000)
	if err := tr.SaveFile(path); err != nil {
		t.Fatal(err)
	}
	// The temp file must not linger.
	if _, err := os.Stat(path + ".tmp"); !os.IsNotExist(err) {
		t.Error("temp file left behind")
	}
	got, err := LoadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if got.Name != tr.Name || len(got.Ops) != len(tr.Ops) {
		t.Fatalf("loaded %s/%d, want %s/%d", got.Name, len(got.Ops), tr.Name, len(tr.Ops))
	}
	for i := range tr.Ops {
		if got.Ops[i] != tr.Ops[i] {
			t.Fatalf("op %d differs after file round trip", i)
		}
	}
}

func TestLoadFileMissing(t *testing.T) {
	if _, err := LoadFile(filepath.Join(t.TempDir(), "absent.mcbt")); err == nil {
		t.Error("missing file did not error")
	}
}

// Property: zigzag is a bijection on int64.
func TestZigzagProperty(t *testing.T) {
	f := func(v int64) bool { return unzigzag(zigzag(v)) == v }
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
	for _, v := range []int64{0, 1, -1, 1 << 62, -(1 << 62)} {
		if unzigzag(zigzag(v)) != v {
			t.Errorf("zigzag not bijective at %d", v)
		}
	}
}

// Property: round trip preserves arbitrary generated traces across the
// whole parameter space the suite uses.
func TestRoundTripProperty(t *testing.T) {
	f := func(seed int64) bool {
		p := ioParams()
		p.Seed = seed
		tr := MustGenerate(p, 2000)
		var buf bytes.Buffer
		if _, err := tr.WriteTo(&buf); err != nil {
			return false
		}
		got, err := Read(&buf)
		if err != nil {
			return false
		}
		if len(got.Ops) != len(tr.Ops) {
			return false
		}
		for i := range tr.Ops {
			if got.Ops[i] != tr.Ops[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}
