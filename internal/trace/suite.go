package trace

import "sort"

// DefaultTraceLen is the per-benchmark trace length in µops. It stands in
// for the paper's 100 M instructions per thread at a uniform 10⁻³ scale.
const DefaultTraceLen = 100_000

// KB and MB are byte-size helpers for footprint parameters.
const (
	KB = 1 << 10
	MB = 1 << 20
)

// Suite returns the parameters of the 22 synthetic benchmarks, named after
// the 22 SPEC CPU2006 benchmarks the paper simulates.
//
// The mixtures are calibrated against the scaled reference configuration
// (256 kB 1-core LLC, see uncore.ConfigFor) so that steady-state memory
// intensity reproduces the three classes of Table IV. What matters is the
// footprint a trace actually touches per iteration, not the nominal
// region size:
//
//   - Low: everything the trace touches (data + code) fits in the LLC, so
//     steady-state traffic is near zero.
//   - Medium: a large HotSet whose cold tail exceeds the LLC — a moderate,
//     partially-cached miss stream (plus small chases for flavour).
//   - High: cyclic scans/chases/streams whose per-iteration touched
//     footprint exceeds the LLC several-fold, missing massively. Scans
//     are the LRU-hostile, DIP/DRRIP-friendly component.
func Suite() []Params {
	mk := func(seed int64, name string, p Params) Params {
		p.Name = name
		p.Seed = seed
		return p
	}
	return []Params{
		// ---- Low memory intensity (touched footprint fits the LLC) ----
		mk(101, "povray", Params{
			LoadFrac: 0.26, StoreFrac: 0.10, BranchFrac: 0.12, FPFrac: 0.30,
			DepMean: 12, LoadDepFrac: 0.3, BranchBias: 0.97, CodeBytes: 48 * KB,
			Patterns: []PatternSpec{
				{Kind: HotSet, Bytes: 64 * KB, Weight: 1},
			},
		}),
		mk(102, "gromacs", Params{
			LoadFrac: 0.28, StoreFrac: 0.12, BranchFrac: 0.08, FPFrac: 0.35,
			DepMean: 14, LoadDepFrac: 0.2, BranchBias: 0.96, CodeBytes: 64 * KB,
			Patterns: []PatternSpec{
				{Kind: HotSet, Bytes: 96 * KB, Weight: 3},
				{Kind: Stride, Bytes: 48 * KB, Stride: 2 * CacheLine, Weight: 1},
			},
		}),
		mk(103, "milc", Params{
			LoadFrac: 0.30, StoreFrac: 0.14, BranchFrac: 0.05, FPFrac: 0.35,
			DepMean: 16, LoadDepFrac: 0.15, BranchBias: 0.98, CodeBytes: 32 * KB,
			Patterns: []PatternSpec{
				{Kind: HotSet, Bytes: 96 * KB, Weight: 2},
				{Kind: Scan, Bytes: 96 * KB, Stride: 16, Weight: 1},
			},
		}),
		mk(104, "calculix", Params{
			LoadFrac: 0.27, StoreFrac: 0.11, BranchFrac: 0.07, FPFrac: 0.38,
			DepMean: 10, LoadDepFrac: 0.25, BranchBias: 0.97, CodeBytes: 96 * KB,
			Patterns: []PatternSpec{
				{Kind: HotSet, Bytes: 96 * KB, Weight: 1},
			},
		}),
		mk(105, "namd", Params{
			LoadFrac: 0.29, StoreFrac: 0.10, BranchFrac: 0.06, FPFrac: 0.40,
			DepMean: 20, LoadDepFrac: 0.15, BranchBias: 0.98, CodeBytes: 48 * KB,
			Patterns: []PatternSpec{
				{Kind: HotSet, Bytes: 128 * KB, Weight: 1},
			},
		}),
		mk(106, "dealII", Params{
			LoadFrac: 0.31, StoreFrac: 0.13, BranchFrac: 0.10, FPFrac: 0.25,
			DepMean: 9, LoadDepFrac: 0.5, BranchBias: 0.94, CodeBytes: 96 * KB,
			Patterns: []PatternSpec{
				{Kind: HotSet, Bytes: 96 * KB, Weight: 4},
				{Kind: Chase, Bytes: 32 * KB, Weight: 1},
			},
		}),
		mk(107, "perlbench", Params{
			LoadFrac: 0.27, StoreFrac: 0.15, BranchFrac: 0.18, FPFrac: 0.02,
			DepMean: 7, LoadDepFrac: 0.6, BranchBias: 0.90, CodeBytes: 128 * KB,
			Patterns: []PatternSpec{
				{Kind: HotSet, Bytes: 64 * KB, Weight: 3},
				{Kind: Chase, Bytes: 48 * KB, Weight: 1},
			},
		}),
		mk(108, "gobmk", Params{
			LoadFrac: 0.26, StoreFrac: 0.12, BranchFrac: 0.20, FPFrac: 0.01,
			DepMean: 6, LoadDepFrac: 0.5, BranchBias: 0.86, CodeBytes: 96 * KB,
			Patterns: []PatternSpec{
				{Kind: HotSet, Bytes: 96 * KB, Weight: 1},
			},
		}),
		mk(109, "h264ref", Params{
			LoadFrac: 0.33, StoreFrac: 0.14, BranchFrac: 0.09, FPFrac: 0.08,
			DepMean: 15, LoadDepFrac: 0.2, BranchBias: 0.94, CodeBytes: 64 * KB,
			Patterns: []PatternSpec{
				{Kind: Stride, Bytes: 64 * KB, Stride: CacheLine, Weight: 2},
				{Kind: HotSet, Bytes: 64 * KB, Weight: 3},
			},
		}),
		mk(110, "hmmer", Params{
			LoadFrac: 0.30, StoreFrac: 0.16, BranchFrac: 0.10, FPFrac: 0.02,
			DepMean: 22, LoadDepFrac: 0.2, BranchBias: 0.95, CodeBytes: 32 * KB,
			Patterns: []PatternSpec{
				{Kind: HotSet, Bytes: 64 * KB, Weight: 1},
			},
		}),
		mk(111, "sjeng", Params{
			LoadFrac: 0.25, StoreFrac: 0.11, BranchFrac: 0.19, FPFrac: 0.01,
			DepMean: 6, LoadDepFrac: 0.55, BranchBias: 0.88, CodeBytes: 96 * KB,
			Patterns: []PatternSpec{
				{Kind: HotSet, Bytes: 96 * KB, Weight: 3},
				{Kind: Chase, Bytes: 32 * KB, Weight: 1},
			},
		}),

		// ---- Medium memory intensity (hot-set tails beyond the LLC) ----
		mk(201, "bzip2", Params{
			LoadFrac: 0.30, StoreFrac: 0.14, BranchFrac: 0.13, FPFrac: 0.01,
			DepMean: 8, LoadDepFrac: 0.35, BranchBias: 0.90, CodeBytes: 64 * KB,
			Patterns: []PatternSpec{
				{Kind: HotSet, Bytes: 320 * KB, Weight: 1},
			},
		}),
		mk(202, "gcc", Params{
			LoadFrac: 0.28, StoreFrac: 0.16, BranchFrac: 0.16, FPFrac: 0.01,
			DepMean: 7, LoadDepFrac: 0.6, BranchBias: 0.91, CodeBytes: 128 * KB,
			Patterns: []PatternSpec{
				{Kind: HotSet, Bytes: 224 * KB, Weight: 12},
				{Kind: Chase, Bytes: 96 * KB, Weight: 1},
			},
		}),
		mk(203, "astar", Params{
			LoadFrac: 0.32, StoreFrac: 0.10, BranchFrac: 0.15, FPFrac: 0.02,
			DepMean: 5, LoadDepFrac: 0.75, BranchBias: 0.87, CodeBytes: 48 * KB,
			Patterns: []PatternSpec{
				{Kind: HotSet, Bytes: 224 * KB, Weight: 19},
				{Kind: Chase, Bytes: 256 * KB, Weight: 1},
			},
		}),
		mk(204, "zeusmp", Params{
			LoadFrac: 0.31, StoreFrac: 0.15, BranchFrac: 0.04, FPFrac: 0.34,
			DepMean: 16, LoadDepFrac: 0.1, BranchBias: 0.98, CodeBytes: 96 * KB,
			Patterns: []PatternSpec{
				{Kind: HotSet, Bytes: 320 * KB, Weight: 9},
				{Kind: Scan, Bytes: 64 * KB, Stride: 16, Weight: 1},
			},
		}),
		mk(205, "cactusADM", Params{
			LoadFrac: 0.33, StoreFrac: 0.16, BranchFrac: 0.03, FPFrac: 0.33,
			DepMean: 18, LoadDepFrac: 0.1, BranchBias: 0.99, CodeBytes: 96 * KB,
			Patterns: []PatternSpec{
				{Kind: HotSet, Bytes: 192 * KB, Weight: 19},
				{Kind: Stride, Bytes: 1 * MB, Stride: 3 * CacheLine, Weight: 1},
			},
		}),

		// ---- High memory intensity (touched footprint >> LLC) ----
		mk(301, "libquantum", Params{
			LoadFrac: 0.34, StoreFrac: 0.16, BranchFrac: 0.12, FPFrac: 0.02,
			DepMean: 18, LoadDepFrac: 0.05, BranchBias: 0.99, CodeBytes: 16 * KB,
			Patterns: []PatternSpec{
				{Kind: Scan, Bytes: 256 * KB, Stride: 16, Weight: 3},
				{Kind: HotSet, Bytes: 32 * KB, Weight: 1},
			},
		}),
		mk(302, "omnetpp", Params{
			LoadFrac: 0.31, StoreFrac: 0.17, BranchFrac: 0.15, FPFrac: 0.02,
			DepMean: 6, LoadDepFrac: 0.8, BranchBias: 0.88, CodeBytes: 96 * KB,
			Patterns: []PatternSpec{
				{Kind: Chase, Bytes: 4 * MB, Weight: 1},
				{Kind: HotSet, Bytes: 192 * KB, Weight: 3},
			},
		}),
		mk(303, "leslie3d", Params{
			LoadFrac: 0.33, StoreFrac: 0.15, BranchFrac: 0.04, FPFrac: 0.34,
			DepMean: 17, LoadDepFrac: 0.08, BranchBias: 0.98, CodeBytes: 64 * KB,
			Patterns: []PatternSpec{
				{Kind: Scan, Bytes: 192 * KB, Stride: 16, Weight: 4},
				{Kind: Stream, Weight: 1},
				{Kind: HotSet, Bytes: 128 * KB, Weight: 5},
			},
		}),
		mk(304, "bwaves", Params{
			LoadFrac: 0.35, StoreFrac: 0.14, BranchFrac: 0.03, FPFrac: 0.36,
			DepMean: 20, LoadDepFrac: 0.05, BranchBias: 0.99, CodeBytes: 32 * KB,
			Patterns: []PatternSpec{
				{Kind: Stream, Weight: 2},
				{Kind: Stride, Bytes: 8 * MB, Stride: 5 * CacheLine, Weight: 1},
				{Kind: HotSet, Bytes: 128 * KB, Weight: 7},
			},
		}),
		mk(305, "mcf", Params{
			LoadFrac: 0.35, StoreFrac: 0.10, BranchFrac: 0.17, FPFrac: 0.01,
			DepMean: 4, LoadDepFrac: 0.9, BranchBias: 0.89, CodeBytes: 24 * KB,
			Patterns: []PatternSpec{
				{Kind: Chase, Bytes: 24 * MB, Weight: 3},
				{Kind: HotSet, Bytes: 64 * KB, Weight: 7},
			},
		}),
		mk(306, "soplex", Params{
			LoadFrac: 0.32, StoreFrac: 0.12, BranchFrac: 0.11, FPFrac: 0.18,
			DepMean: 9, LoadDepFrac: 0.25, BranchBias: 0.93, CodeBytes: 96 * KB,
			Patterns: []PatternSpec{
				{Kind: Scan, Bytes: 224 * KB, Stride: 16, Weight: 9},
				{Kind: Stride, Bytes: 4 * MB, Stride: 7 * CacheLine, Weight: 2},
				{Kind: HotSet, Bytes: 192 * KB, Weight: 9},
			},
		}),
	}
}

// SuiteNames returns the benchmark names in suite order.
func SuiteNames() []string {
	ps := Suite()
	names := make([]string, len(ps))
	for i, p := range ps {
		names[i] = p.Name
	}
	return names
}

// ByName returns the parameters of the named benchmark.
func ByName(name string) (Params, bool) {
	for _, p := range Suite() {
		if p.Name == name {
			return p, true
		}
	}
	return Params{}, false
}

// NewSuite builds traces of n µops for every benchmark in the suite,
// keyed by name. It is the non-panicking constructor library paths use;
// the only runtime failure mode is a non-positive n.
func NewSuite(n int) (map[string]*Trace, error) {
	out := make(map[string]*Trace, 22)
	for _, p := range Suite() {
		t, err := Generate(p, n)
		if err != nil {
			return nil, err
		}
		out[p.Name] = t
	}
	return out, nil
}

// GenerateSuite is NewSuite for known-good lengths (tests, examples); it
// panics on error.
func GenerateSuite(n int) map[string]*Trace {
	out, err := NewSuite(n)
	if err != nil {
		panic(err)
	}
	return out
}

// SortedNames returns the suite benchmark names in lexicographic order,
// useful for deterministic iteration over GenerateSuite results.
func SortedNames() []string {
	names := SuiteNames()
	sort.Strings(names)
	return names
}
