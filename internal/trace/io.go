package trace

// Binary trace serialisation, standing in for the SimpleScalar EIO traces
// the paper generates with Zesto ([18]). The format is a compact
// delta/varint encoding: ~3-4 bytes per µop instead of the 32 in memory,
// so a full 22-benchmark suite fits comfortably on disk and model
// building can skip regeneration.
//
// Layout (all integers are unsigned varints unless noted):
//
//	magic "MCBT" | version | name length | name bytes | op count
//	per op: tag byte | [pc delta] | [addr delta] | [iline delta] | deps
//
// The tag byte packs the op kind (3 bits), the branch outcome, the
// indirect flag and "dependency present" bits. PC, Addr and ILine are
// delta-encoded (zigzag) against the previous op, which makes the hot
// code-walk and stride patterns nearly free. A trailing FNV-1a checksum
// over the payload detects truncation and corruption.

import (
	"bufio"
	"bytes"
	"encoding/binary"
	"fmt"
	"hash/fnv"
	"io"
	"os"
)

const (
	traceMagic   = "MCBT"
	traceVersion = 1
)

// tag byte layout.
const (
	tagKindMask = 0x07
	tagTaken    = 0x08
	tagIndirect = 0x10
	tagHasDep1  = 0x20
	tagHasDep2  = 0x40
)

// zigzag encodes a signed delta as an unsigned varint-friendly value.
func zigzag(v int64) uint64 { return uint64(v<<1) ^ uint64(v>>63) }

func unzigzag(u uint64) int64 { return int64(u>>1) ^ -int64(u&1) }

// pcClass buckets op kinds into PC delta contexts: memory ops use stable
// per-pattern PCs, control ops use branch/call-site PCs, everything else
// walks the code segment.
func pcClass(k Kind) int {
	switch k {
	case Load, Store:
		return 0
	case Branch, Call, Ret:
		return 1
	}
	return 2
}

// addrClass returns the Addr delta context for kinds that carry one:
// data addresses (loads/stores) and call targets live in disjoint
// regions.
func addrClass(k Kind) (int, bool) {
	switch k {
	case Load, Store:
		return 0, true
	case Call:
		return 1, true
	}
	return 0, false
}

// WriteTo serialises the trace. It implements io.WriterTo.
func (t *Trace) WriteTo(w io.Writer) (int64, error) {
	h := fnv.New64a()
	cw := &countingWriter{w: io.MultiWriter(w, h)}
	bw := bufio.NewWriter(cw)

	var buf [binary.MaxVarintLen64]byte
	putUvarint := func(v uint64) error {
		n := binary.PutUvarint(buf[:], v)
		_, err := bw.Write(buf[:n])
		return err
	}

	if _, err := bw.WriteString(traceMagic); err != nil {
		return cw.n, err
	}
	if err := putUvarint(traceVersion); err != nil {
		return cw.n, err
	}
	if err := putUvarint(uint64(len(t.Name))); err != nil {
		return cw.n, err
	}
	if _, err := bw.WriteString(t.Name); err != nil {
		return cw.n, err
	}
	if err := putUvarint(uint64(len(t.Ops))); err != nil {
		return cw.n, err
	}

	// Per-class delta contexts: PCs cluster by op class (code walk,
	// data-access sites, branch sites) and addresses only exist for
	// memory ops and call targets, so separate contexts keep deltas tiny.
	var prevPC [3]uint64
	var prevAddr [2]uint64
	var prevILine uint32
	for i := range t.Ops {
		op := &t.Ops[i]
		tag := byte(op.Kind) & tagKindMask
		if op.Taken {
			tag |= tagTaken
		}
		if op.Indirect {
			tag |= tagIndirect
		}
		if op.Dep1 > 0 {
			tag |= tagHasDep1
		}
		if op.Dep2 > 0 {
			tag |= tagHasDep2
		}
		if err := bw.WriteByte(tag); err != nil {
			return cw.n, err
		}
		pcl := pcClass(op.Kind)
		if err := putUvarint(zigzag(int64(op.PC) - int64(prevPC[pcl]))); err != nil {
			return cw.n, err
		}
		prevPC[pcl] = op.PC
		if acl, ok := addrClass(op.Kind); ok {
			if err := putUvarint(zigzag(int64(op.Addr) - int64(prevAddr[acl]))); err != nil {
				return cw.n, err
			}
			prevAddr[acl] = op.Addr
		}
		if err := putUvarint(zigzag(int64(op.ILine) - int64(prevILine))); err != nil {
			return cw.n, err
		}
		prevILine = op.ILine
		if op.Dep1 > 0 {
			if err := putUvarint(uint64(op.Dep1)); err != nil {
				return cw.n, err
			}
		}
		if op.Dep2 > 0 {
			if err := putUvarint(uint64(op.Dep2)); err != nil {
				return cw.n, err
			}
		}
	}
	if err := bw.Flush(); err != nil {
		return cw.n, err
	}
	// Checksum goes after the payload, outside the hashed region.
	var sum [8]byte
	binary.LittleEndian.PutUint64(sum[:], h.Sum64())
	n, err := w.Write(sum[:])
	return cw.n + int64(n), err
}

// Read deserialises a trace written by WriteTo, verifying the checksum.
func Read(r io.Reader) (*Trace, error) {
	data, err := io.ReadAll(r)
	if err != nil {
		return nil, fmt.Errorf("trace: reading: %w", err)
	}
	if len(data) < len(traceMagic)+8 {
		return nil, fmt.Errorf("trace: truncated (%d bytes)", len(data))
	}
	payload, sum := data[:len(data)-8], data[len(data)-8:]
	h := fnv.New64a()
	h.Write(payload)
	if got, want := binary.LittleEndian.Uint64(sum), h.Sum64(); got != want {
		return nil, fmt.Errorf("trace: checksum mismatch (%#x != %#x)", got, want)
	}
	br := bytes.NewReader(payload)

	magic := make([]byte, len(traceMagic))
	if _, err := io.ReadFull(br, magic); err != nil {
		return nil, fmt.Errorf("trace: reading magic: %w", err)
	}
	if string(magic) != traceMagic {
		return nil, fmt.Errorf("trace: bad magic %q", magic)
	}
	version, err := binary.ReadUvarint(br)
	if err != nil {
		return nil, fmt.Errorf("trace: reading version: %w", err)
	}
	if version != traceVersion {
		return nil, fmt.Errorf("trace: unsupported version %d", version)
	}
	nameLen, err := binary.ReadUvarint(br)
	if err != nil {
		return nil, fmt.Errorf("trace: reading name length: %w", err)
	}
	if nameLen > 4096 {
		return nil, fmt.Errorf("trace: implausible name length %d", nameLen)
	}
	name := make([]byte, nameLen)
	if _, err := io.ReadFull(br, name); err != nil {
		return nil, fmt.Errorf("trace: reading name: %w", err)
	}
	count, err := binary.ReadUvarint(br)
	if err != nil {
		return nil, fmt.Errorf("trace: reading op count: %w", err)
	}
	if count == 0 || count > 1<<31 {
		return nil, fmt.Errorf("trace: implausible op count %d", count)
	}

	ops := make([]Op, count)
	var prevPC [3]uint64
	var prevAddr [2]uint64
	var prevILine uint32
	for i := range ops {
		tag, err := br.ReadByte()
		if err != nil {
			return nil, fmt.Errorf("trace: op %d: %w", i, err)
		}
		kind := Kind(tag & tagKindMask)
		if kind > Ret {
			return nil, fmt.Errorf("trace: op %d: bad kind %d", i, kind)
		}
		op := &ops[i]
		op.Kind = kind
		op.Taken = tag&tagTaken != 0
		op.Indirect = tag&tagIndirect != 0

		d, err := binary.ReadUvarint(br)
		if err != nil {
			return nil, fmt.Errorf("trace: op %d pc: %w", i, err)
		}
		pcl := pcClass(kind)
		prevPC[pcl] = uint64(int64(prevPC[pcl]) + unzigzag(d))
		op.PC = prevPC[pcl]
		if acl, ok := addrClass(kind); ok {
			d, err = binary.ReadUvarint(br)
			if err != nil {
				return nil, fmt.Errorf("trace: op %d addr: %w", i, err)
			}
			prevAddr[acl] = uint64(int64(prevAddr[acl]) + unzigzag(d))
			op.Addr = prevAddr[acl]
		}
		d, err = binary.ReadUvarint(br)
		if err != nil {
			return nil, fmt.Errorf("trace: op %d iline: %w", i, err)
		}
		prevILine = uint32(int64(prevILine) + unzigzag(d))
		op.ILine = prevILine

		if tag&tagHasDep1 != 0 {
			d, err = binary.ReadUvarint(br)
			if err != nil || d == 0 || d > 65535 {
				return nil, fmt.Errorf("trace: op %d dep1 invalid", i)
			}
			op.Dep1 = uint16(d)
		}
		if tag&tagHasDep2 != 0 {
			d, err = binary.ReadUvarint(br)
			if err != nil || d == 0 || d > 65535 {
				return nil, fmt.Errorf("trace: op %d dep2 invalid", i)
			}
			op.Dep2 = uint16(d)
		}
	}
	if br.Len() != 0 {
		return nil, fmt.Errorf("trace: %d trailing bytes", br.Len())
	}
	return &Trace{Name: string(name), Ops: ops}, nil
}

// SaveFile writes the trace to path (atomically via a temp file).
func (t *Trace) SaveFile(path string) error {
	tmp := path + ".tmp"
	f, err := os.Create(tmp)
	if err != nil {
		return err
	}
	if _, err := t.WriteTo(f); err != nil {
		f.Close()
		os.Remove(tmp)
		return err
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return err
	}
	return os.Rename(tmp, path)
}

// LoadFile reads a trace from path.
func LoadFile(path string) (*Trace, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return Read(f)
}

// countingWriter counts bytes written through it.
type countingWriter struct {
	w io.Writer
	n int64
}

func (c *countingWriter) Write(p []byte) (int, error) {
	n, err := c.w.Write(p)
	c.n += int64(n)
	return n, err
}
