// Package telemetry is a dependency-free metrics layer: atomic
// counters, gauges and bounded-bucket histograms collected in a
// registry that renders Prometheus text exposition or a JSON-friendly
// Snapshot, plus lightweight timing spans (span.go) for phase
// breakdowns of long computations.
//
// Design constraints, in order:
//
//   - Zero allocations and no locks on the hot recording path
//     (Counter.Inc, Gauge.Set, Histogram.Observe are single atomic
//     ops; pinned by AllocsPerRun in the tests). Registration is the
//     slow path and may allocate.
//   - Standard library only, so the simulation kernel can be
//     instrumented without pulling a dependency into every import.
//   - Recording can be disabled process-wide (SetEnabled / Disabled)
//     to measure the instrumentation's own overhead A/B; scripts/
//     bench.sh drives this via the MCBENCH_TELEMETRY=off environment
//     variable, honoured at init.
//
// Histograms record int64 values into power-of-two buckets. By
// convention a histogram whose name ends in "_seconds" is fed
// nanoseconds (ObserveDuration) and is scaled to seconds on export,
// matching Prometheus base-unit practice while keeping the hot path
// integer-only.
package telemetry

import (
	"fmt"
	"io"
	"math"
	"math/bits"
	"os"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

var enabled atomic.Bool

func init() {
	switch os.Getenv("MCBENCH_TELEMETRY") {
	case "off", "0", "false":
		enabled.Store(false)
	default:
		enabled.Store(true)
	}
}

// Enabled reports whether recording is currently on.
func Enabled() bool { return enabled.Load() }

// SetEnabled turns recording on or off process-wide. Existing values
// are retained; only new observations are dropped while off.
func SetEnabled(on bool) { enabled.Store(on) }

// Disabled turns recording off and returns a func restoring the
// previous state — `defer telemetry.Disabled()()` brackets a region.
func Disabled() (restore func()) {
	prev := enabled.Swap(false)
	return func() { enabled.Store(prev) }
}

// Counter is a monotonically increasing counter. The zero value is
// ready to use standalone; Registry.Counter hands out registered ones.
type Counter struct{ v atomic.Int64 }

// Inc adds one.
func (c *Counter) Inc() { c.Add(1) }

// Add adds n (n must be >= 0 to keep the counter monotone).
func (c *Counter) Add(n int64) {
	if enabled.Load() {
		c.v.Add(n)
	}
}

// Value returns the current count.
func (c *Counter) Value() int64 { return c.v.Load() }

// Gauge is an integer value that can go up and down. The zero value
// is ready to use.
type Gauge struct{ v atomic.Int64 }

// Set replaces the value.
func (g *Gauge) Set(v int64) {
	if enabled.Load() {
		g.v.Store(v)
	}
}

// Add adjusts the value by delta (may be negative).
func (g *Gauge) Add(delta int64) {
	if enabled.Load() {
		g.v.Add(delta)
	}
}

// Value returns the current value.
func (g *Gauge) Value() int64 { return g.v.Load() }

// numBuckets covers the full positive int64 range in powers of two:
// bucket 0 holds zero, bucket i holds values in [2^(i-1), 2^i).
const numBuckets = 64

// Histogram is a fixed-size power-of-two-bucket histogram of int64
// values (negative observations clamp to zero). The zero value is
// ready to use. Observe is a handful of atomic adds — no locks, no
// allocations — so it is safe on hot paths; quantiles are estimated
// at read time by linear interpolation inside the landing bucket.
type Histogram struct {
	count   atomic.Int64
	sum     atomic.Int64
	buckets [numBuckets]atomic.Int64
}

// Observe records one value.
func (h *Histogram) Observe(v int64) {
	if !enabled.Load() {
		return
	}
	if v < 0 {
		v = 0
	}
	h.buckets[bits.Len64(uint64(v))].Add(1)
	h.sum.Add(v)
	h.count.Add(1)
}

// ObserveDuration records a duration in nanoseconds.
func (h *Histogram) ObserveDuration(d time.Duration) { h.Observe(int64(d)) }

// Count returns the number of observations.
func (h *Histogram) Count() int64 { return h.count.Load() }

// Sum returns the sum of all observed values.
func (h *Histogram) Sum() int64 { return h.sum.Load() }

// bucketBounds returns the inclusive value range covered by bucket i.
func bucketBounds(i int) (lo, hi int64) {
	switch i {
	case 0:
		return 0, 0
	case numBuckets - 1:
		return 1 << (numBuckets - 2), math.MaxInt64
	}
	return 1 << (i - 1), 1<<i - 1
}

// Quantile estimates the q-th quantile (0 <= q <= 1) of the observed
// values by interpolating linearly within the landing bucket. Returns
// 0 when the histogram is empty.
func (h *Histogram) Quantile(q float64) float64 {
	total := h.count.Load()
	if total == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	rank := q * float64(total)
	var cum float64
	for i := 0; i < numBuckets; i++ {
		n := float64(h.buckets[i].Load())
		if n == 0 {
			continue
		}
		if cum+n >= rank {
			lo, hi := bucketBounds(i)
			frac := (rank - cum) / n
			return float64(lo) + frac*float64(hi-lo)
		}
		cum += n
	}
	_, hi := bucketBounds(numBuckets - 1)
	return float64(hi)
}

// Label is one name/value pair attached to a metric series.
type Label struct{ Key, Value string }

// L is shorthand for constructing a Label.
func L(key, value string) Label { return Label{Key: key, Value: value} }

type metricKind int

const (
	kindCounter metricKind = iota
	kindGauge
	kindHistogram
	kindCounterFunc
	kindGaugeFunc
)

func (k metricKind) promType() string {
	switch k {
	case kindCounter, kindCounterFunc:
		return "counter"
	case kindHistogram:
		return "histogram"
	default:
		return "gauge"
	}
}

// series is one registered metric sample set (a family name plus one
// concrete label combination).
type series struct {
	name   string // family name
	labels string // rendered {k="v",...} or ""
	help   string
	kind   metricKind
	scale  float64 // export multiplier (1e-9 for *_seconds histograms)

	counter *Counter
	gauge   *Gauge
	hist    *Histogram
	fn      func() float64
}

func (s *series) key() string { return s.name + s.labels }

// Registry holds a set of named metrics. Registration memoizes by
// name+labels, so calling Counter twice with the same identity
// returns the same handle; registering the same identity with a
// different kind panics (a programming error).
type Registry struct {
	mu   sync.Mutex
	byID map[string]*series
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{byID: make(map[string]*series)}
}

var defaultRegistry = NewRegistry()

// Default returns the process-wide registry. Library and CLI use
// lands here; a serve node builds its own registry per server so
// concurrent servers in one process (tests) stay isolated.
func Default() *Registry { return defaultRegistry }

// renderLabels produces the canonical `{k="v",...}` form, sorted by
// key, with Prometheus escaping; empty for no labels.
func renderLabels(labels []Label) string {
	if len(labels) == 0 {
		return ""
	}
	ls := append([]Label(nil), labels...)
	sort.Slice(ls, func(i, j int) bool { return ls[i].Key < ls[j].Key })
	var b strings.Builder
	b.WriteByte('{')
	for i, l := range ls {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(l.Key)
		b.WriteString(`="`)
		b.WriteString(escapeLabel(l.Value))
		b.WriteByte('"')
	}
	b.WriteByte('}')
	return b.String()
}

func escapeLabel(v string) string {
	if !strings.ContainsAny(v, "\\\"\n") {
		return v
	}
	r := strings.NewReplacer(`\`, `\\`, `"`, `\"`, "\n", `\n`)
	return r.Replace(v)
}

func (r *Registry) register(name, help string, kind metricKind, labels []Label) *series {
	s := &series{name: name, labels: renderLabels(labels), help: help, kind: kind, scale: 1}
	if kind == kindHistogram && strings.HasSuffix(name, "_seconds") {
		s.scale = 1e-9
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if prev, ok := r.byID[s.key()]; ok {
		if prev.kind != kind {
			panic(fmt.Sprintf("telemetry: %s re-registered as %s (was %s)",
				s.key(), kind.promType(), prev.kind.promType()))
		}
		return prev
	}
	switch kind {
	case kindCounter:
		s.counter = new(Counter)
	case kindGauge:
		s.gauge = new(Gauge)
	case kindHistogram:
		s.hist = new(Histogram)
	}
	r.byID[s.key()] = s
	return s
}

// Counter registers (or finds) a counter series and returns its handle.
func (r *Registry) Counter(name, help string, labels ...Label) *Counter {
	return r.register(name, help, kindCounter, labels).counter
}

// Gauge registers (or finds) a gauge series and returns its handle.
func (r *Registry) Gauge(name, help string, labels ...Label) *Gauge {
	return r.register(name, help, kindGauge, labels).gauge
}

// Histogram registers (or finds) a histogram series. Names ending in
// "_seconds" are fed nanoseconds and exported scaled to seconds.
func (r *Registry) Histogram(name, help string, labels ...Label) *Histogram {
	return r.register(name, help, kindHistogram, labels).hist
}

// CounterFunc registers a counter whose value is collected at scrape
// time from fn. Use it to mirror an existing authoritative counter
// (e.g. the job manager's stats) without double bookkeeping. fn must
// be safe for concurrent calls and monotone.
func (r *Registry) CounterFunc(name, help string, fn func() float64, labels ...Label) {
	r.register(name, help, kindCounterFunc, labels).fn = fn
}

// GaugeFunc registers a gauge collected at scrape time from fn.
func (r *Registry) GaugeFunc(name, help string, fn func() float64, labels ...Label) {
	r.register(name, help, kindGaugeFunc, labels).fn = fn
}

// sorted returns all series ordered by (family, labels) under the lock.
func (r *Registry) sorted() []*series {
	r.mu.Lock()
	all := make([]*series, 0, len(r.byID))
	for _, s := range r.byID {
		all = append(all, s)
	}
	r.mu.Unlock()
	sort.Slice(all, func(i, j int) bool {
		if all[i].name != all[j].name {
			return all[i].name < all[j].name
		}
		return all[i].labels < all[j].labels
	})
	return all
}

func formatFloat(v float64) string {
	if v == math.Trunc(v) && math.Abs(v) < 1e15 {
		return strconv.FormatInt(int64(v), 10)
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// sampleValue returns the current scalar value of a non-histogram series.
func (s *series) sampleValue() float64 {
	switch s.kind {
	case kindCounter:
		return float64(s.counter.Value())
	case kindGauge:
		return float64(s.gauge.Value())
	default:
		return s.fn()
	}
}

// withLE splices an le label into a rendered label set.
func withLE(labels, le string) string {
	if labels == "" {
		return `{le="` + le + `"}`
	}
	return labels[:len(labels)-1] + `,le="` + le + `"}`
}

// WritePrometheus renders the registry in Prometheus text exposition
// format (version 0.0.4). Output is deterministic: families sorted by
// name, series by label set, histogram buckets ascending with only
// occupied buckets emitted (plus +Inf).
func (r *Registry) WritePrometheus(w io.Writer) error {
	var b strings.Builder
	prevFamily := ""
	for _, s := range r.sorted() {
		if s.name != prevFamily {
			prevFamily = s.name
			fmt.Fprintf(&b, "# HELP %s %s\n", s.name, s.help)
			fmt.Fprintf(&b, "# TYPE %s %s\n", s.name, s.kind.promType())
		}
		if s.kind != kindHistogram {
			fmt.Fprintf(&b, "%s%s %s\n", s.name, s.labels, formatFloat(s.sampleValue()))
			continue
		}
		h := s.hist
		var cum int64
		for i := 0; i < numBuckets; i++ {
			n := h.buckets[i].Load()
			if n == 0 {
				continue
			}
			cum += n
			_, hi := bucketBounds(i)
			le := formatFloat(float64(hi) * s.scale)
			fmt.Fprintf(&b, "%s_bucket%s %d\n", s.name, withLE(s.labels, le), cum)
		}
		fmt.Fprintf(&b, "%s_bucket%s %d\n", s.name, withLE(s.labels, "+Inf"), h.Count())
		fmt.Fprintf(&b, "%s_sum%s %s\n", s.name, s.labels, formatFloat(float64(h.Sum())*s.scale))
		fmt.Fprintf(&b, "%s_count%s %d\n", s.name, s.labels, h.Count())
	}
	_, err := io.WriteString(w, b.String())
	return err
}

// HistogramSnapshot is the JSON summary of one histogram series.
// Values are in the exported unit (seconds for *_seconds histograms).
type HistogramSnapshot struct {
	Count int64   `json:"count"`
	Sum   float64 `json:"sum"`
	P50   float64 `json:"p50"`
	P95   float64 `json:"p95"`
	P99   float64 `json:"p99"`
}

// Snapshot is a point-in-time JSON-serializable view of a registry,
// keyed by the full series identity (name plus rendered labels). It
// is the wire format for fleet metric scrapes, /metrics?format=json
// and mcbench.Metrics().
type Snapshot struct {
	Counters   map[string]float64           `json:"counters,omitempty"`
	Gauges     map[string]float64           `json:"gauges,omitempty"`
	Histograms map[string]HistogramSnapshot `json:"histograms,omitempty"`
}

// Snapshot collects the current value of every series.
func (r *Registry) Snapshot() Snapshot {
	snap := Snapshot{
		Counters:   map[string]float64{},
		Gauges:     map[string]float64{},
		Histograms: map[string]HistogramSnapshot{},
	}
	for _, s := range r.sorted() {
		switch s.kind {
		case kindCounter, kindCounterFunc:
			snap.Counters[s.key()] = s.sampleValue()
		case kindGauge, kindGaugeFunc:
			snap.Gauges[s.key()] = s.sampleValue()
		case kindHistogram:
			h := s.hist
			snap.Histograms[s.key()] = HistogramSnapshot{
				Count: h.Count(),
				Sum:   float64(h.Sum()) * s.scale,
				P50:   h.Quantile(0.50) * s.scale,
				P95:   h.Quantile(0.95) * s.scale,
				P99:   h.Quantile(0.99) * s.scale,
			}
		}
	}
	return snap
}

// familyMatch reports whether a series key belongs to family name
// (exact match or name followed by a label set).
func familyMatch(key, name string) bool {
	return key == name || (strings.HasPrefix(key, name) && len(key) > len(name) && key[len(name)] == '{')
}

// Counter sums every series of the named counter family (all label
// combinations). Returns 0 when absent.
func (s Snapshot) Counter(name string) float64 {
	var sum float64
	for k, v := range s.Counters {
		if familyMatch(k, name) {
			sum += v
		}
	}
	return sum
}

// Gauge sums every series of the named gauge family.
func (s Snapshot) Gauge(name string) float64 {
	var sum float64
	for k, v := range s.Gauges {
		if familyMatch(k, name) {
			sum += v
		}
	}
	return sum
}
