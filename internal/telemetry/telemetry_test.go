package telemetry

import (
	"context"
	"encoding/json"
	"math"
	"strconv"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestCounterGauge(t *testing.T) {
	var c Counter
	c.Inc()
	c.Add(41)
	if got := c.Value(); got != 42 {
		t.Fatalf("counter = %d, want 42", got)
	}
	var g Gauge
	g.Set(7)
	g.Add(-3)
	if got := g.Value(); got != 4 {
		t.Fatalf("gauge = %d, want 4", got)
	}
}

func TestHistogramQuantiles(t *testing.T) {
	var hist Histogram
	// 1000 observations uniform over [0, 1000): the q-th quantile
	// must land in the right power-of-two bucket.
	for i := int64(0); i < 1000; i++ {
		hist.Observe(i)
	}
	if hist.Count() != 1000 {
		t.Fatalf("count = %d", hist.Count())
	}
	if hist.Sum() != 999*1000/2 {
		t.Fatalf("sum = %d", hist.Sum())
	}
	p50 := hist.Quantile(0.50)
	if p50 < 256 || p50 > 1023 {
		t.Fatalf("p50 = %g, want within [256,1023]", p50)
	}
	p99 := hist.Quantile(0.99)
	if p99 < 512 || p99 > 1023 {
		t.Fatalf("p99 = %g, want within [512,1023]", p99)
	}
	if q := hist.Quantile(0); q < 0 || q > 1 {
		t.Fatalf("q0 = %g", q)
	}
	var empty Histogram
	if got := empty.Quantile(0.5); got != 0 {
		t.Fatalf("empty quantile = %g", got)
	}
	// Negative observations clamp to zero rather than corrupting a bucket.
	empty.Observe(-5)
	if got, want := empty.Quantile(1), 0.0; got != want {
		t.Fatalf("clamped quantile = %g, want %g", got, want)
	}
	// Extremes stay in range.
	empty.Observe(math.MaxInt64)
	if got := empty.Quantile(1); got != float64(math.MaxInt64) {
		t.Fatalf("max quantile = %g", got)
	}
}

func TestZeroAllocHotPath(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("t_total", "test counter")
	g := r.Gauge("t_gauge", "test gauge")
	h := r.Histogram("t_seconds", "test histogram")
	sp := StartSpan()
	sp.Add("warm", time.Millisecond) // pre-create the phase entry

	if n := testing.AllocsPerRun(1000, func() { c.Inc() }); n != 0 {
		t.Errorf("Counter.Inc allocates %v/op", n)
	}
	if n := testing.AllocsPerRun(1000, func() { g.Set(3) }); n != 0 {
		t.Errorf("Gauge.Set allocates %v/op", n)
	}
	if n := testing.AllocsPerRun(1000, func() { h.Observe(12345) }); n != 0 {
		t.Errorf("Histogram.Observe allocates %v/op", n)
	}
	if n := testing.AllocsPerRun(1000, func() { sp.Add("warm", time.Microsecond) }); n != 0 {
		t.Errorf("Span.Add (existing phase) allocates %v/op", n)
	}
	var nilSpan *Span
	if n := testing.AllocsPerRun(1000, func() { nilSpan.Time("x")() }); n != 0 {
		t.Errorf("nil Span.Time allocates %v/op", n)
	}
}

func TestConcurrentWriters(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("cc_total", "c")
	h := r.Histogram("cc_seconds", "h")
	sp := StartSpan()
	const workers, per = 8, 1000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				c.Inc()
				h.Observe(int64(i))
				sp.Add("work", time.Nanosecond)
				// Concurrent registration of the same identity must
				// return the same handle, not a fresh series.
				if got := r.Counter("cc_total", "c"); got != c {
					t.Error("re-registration returned a different handle")
					return
				}
			}
		}(w)
	}
	wg.Wait()
	if got := c.Value(); got != workers*per {
		t.Fatalf("counter = %d, want %d", got, workers*per)
	}
	if got := h.Count(); got != workers*per {
		t.Fatalf("histogram count = %d, want %d", got, workers*per)
	}
	bd := sp.Breakdown()
	if len(bd) != 1 || bd[0].Count != workers*per || bd[0].Total != workers*per*time.Nanosecond {
		t.Fatalf("span breakdown = %+v", bd)
	}
}

func TestRegistryKindMismatchPanics(t *testing.T) {
	r := NewRegistry()
	r.Counter("x_total", "x")
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on kind mismatch")
		}
	}()
	r.Gauge("x_total", "x")
}

func TestWritePrometheus(t *testing.T) {
	r := NewRegistry()
	r.Counter("app_requests_total", "requests", L("endpoint", "/jobs")).Add(3)
	r.Counter("app_requests_total", "requests", L("endpoint", "/healthz")).Add(1)
	r.Gauge("app_queue", "queue depth").Set(5)
	r.GaugeFunc("app_uptime_seconds", "uptime", func() float64 { return 1.5 })
	r.CounterFunc("app_done_total", "done", func() float64 { return 9 })
	h := r.Histogram("app_latency_seconds", "latency", L("endpoint", "/jobs"))
	h.ObserveDuration(500 * time.Millisecond)
	h.ObserveDuration(time.Second)
	h.ObserveDuration(2 * time.Second)

	var b strings.Builder
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()

	for _, want := range []string{
		"# HELP app_requests_total requests\n",
		"# TYPE app_requests_total counter\n",
		`app_requests_total{endpoint="/healthz"} 1`,
		`app_requests_total{endpoint="/jobs"} 3`,
		"# TYPE app_queue gauge\napp_queue 5\n",
		"# TYPE app_uptime_seconds gauge\napp_uptime_seconds 1.5\n",
		"# TYPE app_done_total counter\napp_done_total 9\n",
		"# TYPE app_latency_seconds histogram\n",
		`app_latency_seconds_bucket{endpoint="/jobs",le="+Inf"} 3`,
		`app_latency_seconds_count{endpoint="/jobs"} 3`,
		`app_latency_seconds_sum{endpoint="/jobs"} 3.5`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q\n%s", want, out)
		}
	}
	// Exactly one HELP/TYPE pair per family even with multiple series.
	if got := strings.Count(out, "# TYPE app_requests_total"); got != 1 {
		t.Errorf("TYPE emitted %d times", got)
	}
	// Bucket counts must be cumulative and monotone.
	var last int64 = -1
	for _, line := range strings.Split(out, "\n") {
		if !strings.HasPrefix(line, "app_latency_seconds_bucket") {
			continue
		}
		v, err := strconv.ParseInt(line[strings.LastIndexByte(line, ' ')+1:], 10, 64)
		if err != nil {
			t.Fatalf("parse %q: %v", line, err)
		}
		if v < last {
			t.Fatalf("bucket counts not monotone: %q after %d", line, last)
		}
		last = v
	}
	if !strings.HasSuffix(out, "\n") {
		t.Error("output must end with a newline")
	}
}

func TestSecondsScaling(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("op_seconds", "op latency")
	h.ObserveDuration(1500 * time.Millisecond)
	snap := r.Snapshot()
	hs, ok := snap.Histograms["op_seconds"]
	if !ok {
		t.Fatalf("histogram missing from snapshot: %+v", snap)
	}
	if hs.Sum != 1.5 {
		t.Fatalf("sum = %g, want 1.5 (seconds)", hs.Sum)
	}
	// The p50 estimate must be in seconds too: the landing bucket for
	// 1.5e9 ns is [2^30, 2^31), i.e. roughly [1.07, 2.15] s.
	if hs.P50 < 1 || hs.P50 > 2.2 {
		t.Fatalf("p50 = %g s, want ~1.5", hs.P50)
	}
	var b strings.Builder
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(b.String(), "op_seconds_sum 1.5\n") {
		t.Fatalf("exposition not scaled to seconds:\n%s", b.String())
	}
}

func TestSnapshotJSONAndFamilies(t *testing.T) {
	r := NewRegistry()
	r.Counter("sweeps_total", "sweeps", L("sim", "badco")).Add(5)
	r.Counter("sweeps_total", "sweeps", L("sim", "detailed")).Add(2)
	r.Counter("sweeps_total_other", "unrelated").Add(100)
	r.Gauge("depth", "d").Set(3)
	snap := r.Snapshot()
	if got := snap.Counter("sweeps_total"); got != 7 {
		t.Fatalf("family sum = %g, want 7 (must not include sweeps_total_other)", got)
	}
	if got := snap.Gauge("depth"); got != 3 {
		t.Fatalf("gauge = %g", got)
	}
	raw, err := json.Marshal(snap)
	if err != nil {
		t.Fatal(err)
	}
	var back Snapshot
	if err := json.Unmarshal(raw, &back); err != nil {
		t.Fatal(err)
	}
	if back.Counter("sweeps_total") != 7 || back.Gauge("depth") != 3 {
		t.Fatalf("roundtrip mismatch: %+v", back)
	}
}

func TestDisabled(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("d_total", "d")
	h := r.Histogram("d_seconds", "d")
	restore := Disabled()
	c.Inc()
	h.Observe(5)
	if sp := StartSpan(); sp != nil {
		t.Error("StartSpan must return nil while disabled")
	}
	restore()
	if c.Value() != 0 || h.Count() != 0 {
		t.Fatalf("recorded while disabled: c=%d h=%d", c.Value(), h.Count())
	}
	c.Inc()
	if c.Value() != 1 {
		t.Fatal("recording not restored")
	}
	if !Enabled() {
		t.Fatal("Enabled() = false after restore")
	}
}

func TestSpanContext(t *testing.T) {
	if got := FromContext(context.Background()); got != nil {
		t.Fatalf("FromContext(background) = %v", got)
	}
	sp := StartSpan()
	ctx := NewContext(context.Background(), sp)
	if got := FromContext(ctx); got != sp {
		t.Fatal("span not carried by context")
	}
	// nil span: context unchanged, methods are no-ops.
	if got := NewContext(context.Background(), nil); got != context.Background() {
		t.Fatal("nil span must not wrap the context")
	}
	var nilSpan *Span
	nilSpan.Add("x", time.Second)
	nilSpan.Time("y")()
	if bd := nilSpan.Breakdown(); bd != nil {
		t.Fatalf("nil breakdown = %v", bd)
	}

	done := sp.Time("measure")
	time.Sleep(time.Millisecond)
	done()
	sp.Add("measure", 2*time.Millisecond)
	sp.Add("store_save", time.Millisecond)
	bd := sp.Breakdown()
	if len(bd) != 2 || bd[0].Name != "measure" || bd[1].Name != "store_save" {
		t.Fatalf("breakdown order = %+v", bd)
	}
	if bd[0].Count != 2 || bd[0].Total < 3*time.Millisecond {
		t.Fatalf("measure phase = %+v", bd[0])
	}
}
