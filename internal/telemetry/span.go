package telemetry

import (
	"context"
	"sync"
	"time"
)

// Span accumulates wall-clock time per named phase of one logical
// operation (a lab product compute, say). It is carried through a
// context so deep layers (the simulation kernel) can charge time to
// phases without knowing who is listening, and it is safe for
// concurrent use — a sweep runs many workloads at once against one
// span, so Add serializes on a mutex. That cost is paid per phase
// boundary (microseconds apart at worst), never per simulated µop.
//
// All methods are nil-receiver safe: FromContext returns nil when no
// span is attached (or telemetry is disabled), and the instrumented
// code need not check.
type Span struct {
	mu     sync.Mutex
	order  []string
	phases map[string]*Phase
}

// Phase is the accumulated time of one span phase.
type Phase struct {
	Name  string        `json:"name"`
	Count int64         `json:"count"`
	Total time.Duration `json:"total"`
}

// StartSpan returns a new empty span, or nil when telemetry is
// disabled (the nil span records nothing, at no cost).
func StartSpan() *Span {
	if !enabled.Load() {
		return nil
	}
	return &Span{phases: make(map[string]*Phase)}
}

// nop is the closer returned by Time on a nil span; a shared func
// value so the nil path does not allocate.
var nop = func() {}

// Time starts timing the named phase and returns a closer that
// charges the elapsed time to it:
//
//	defer span.Time("model_build")()
func (s *Span) Time(phase string) func() {
	if s == nil {
		return nop
	}
	start := time.Now()
	return func() { s.Add(phase, time.Since(start)) }
}

// Add charges d to the named phase.
func (s *Span) Add(phase string, d time.Duration) {
	if s == nil {
		return
	}
	s.mu.Lock()
	p, ok := s.phases[phase]
	if !ok {
		p = &Phase{Name: phase}
		s.phases[phase] = p
		s.order = append(s.order, phase)
	}
	p.Count++
	p.Total += d
	s.mu.Unlock()
}

// Breakdown returns the phases in first-use order.
func (s *Span) Breakdown() []Phase {
	if s == nil {
		return nil
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]Phase, 0, len(s.order))
	for _, name := range s.order {
		out = append(out, *s.phases[name])
	}
	return out
}

type spanKey struct{}

// NewContext returns ctx carrying the span. A nil span returns ctx
// unchanged.
func NewContext(ctx context.Context, s *Span) context.Context {
	if s == nil {
		return ctx
	}
	return context.WithValue(ctx, spanKey{}, s)
}

// FromContext returns the span carried by ctx, or nil.
func FromContext(ctx context.Context) *Span {
	s, _ := ctx.Value(spanKey{}).(*Span)
	return s
}
