package cache

import "testing"

func TestPLRURejectsNonPowerOfTwoWays(t *testing.T) {
	p := NewPLRUPolicy()
	if err := p.Attach(4, 3); err == nil {
		t.Error("PLRU accepted 3 ways")
	}
	if err := NewPLRUPolicy().Attach(4, 8); err != nil {
		t.Errorf("PLRU rejected 8 ways: %v", err)
	}
}

func TestPLRUNeverEvictsJustTouched(t *testing.T) {
	p := NewPLRUPolicy()
	if err := p.Attach(1, 8); err != nil {
		t.Fatal(err)
	}
	for w := 0; w < 8; w++ {
		p.OnFill(0, w)
	}
	for w := 0; w < 8; w++ {
		p.OnHit(0, w)
		if v := p.Victim(0); v == w {
			t.Fatalf("PLRU evicted just-touched way %d", w)
		}
	}
}

func TestPLRUCyclesThroughWays(t *testing.T) {
	// Touch the victim repeatedly: every way must eventually be chosen.
	p := NewPLRUPolicy()
	if err := p.Attach(1, 8); err != nil {
		t.Fatal(err)
	}
	seen := map[int]bool{}
	for i := 0; i < 64; i++ {
		v := p.Victim(0)
		if v < 0 || v >= 8 {
			t.Fatalf("victim %d out of range", v)
		}
		seen[v] = true
		p.OnFill(0, v)
	}
	if len(seen) != 8 {
		t.Errorf("PLRU only ever evicted %d of 8 ways", len(seen))
	}
}

func TestPLRUApproximatesLRUOnReuse(t *testing.T) {
	// On a fitting working set PLRU should behave like LRU (high hit
	// rate), clearly better than thrashing.
	c := MustNew("x", 64*1024, 16, NewPLRUPolicy())
	lines := (64 * 1024 / LineSize) / 2
	for pass := 0; pass < 10; pass++ {
		for i := 0; i < lines; i++ {
			addr := uint64(i) * LineSize
			if !c.Access(addr, false) {
				c.Fill(addr, false, false)
			}
		}
	}
	s := c.Stats()
	if rate := float64(s.Hits) / float64(s.Accesses); rate < 0.85 {
		t.Errorf("PLRU hit rate %.3f on fitting set, want >= 0.85", rate)
	}
}

func TestPLRUViaNewPolicy(t *testing.T) {
	p, err := NewPolicy(PLRU, 0)
	if err != nil || p.Name() != "PLRU" {
		t.Fatalf("NewPolicy(PLRU) = %v, %v", p, err)
	}
}
