package cache

import "fmt"

// RRIP policies (Jaleel et al., ISCA 2010) predict re-reference intervals
// with a 2-bit RRPV per line. SRRIP inserts at "long" (RRPV = max-1) and
// promotes to "near-immediate" (0) on a hit. BRRIP inserts at "distant"
// (max) except for a 1/32 probability of "long". DRRIP set-duels between
// the two with a PSEL counter, like DIP.

// rripMaxRRPV is the distant re-reference value for 2-bit RRPV.
const rripMaxRRPV = 3

// rripLeaderPeriod and rripPSELMax mirror the DIP dueling parameters.
const (
	rripLeaderPeriod = 32
	rripPSELMax      = 1023
	brripEpsilonDen  = 32
)

// rripCore holds the RRPV array shared by SRRIP/BRRIP/DRRIP.
type rripCore struct {
	sets, ways int
	rrpv       []uint8
}

func (c *rripCore) attach(sets, ways int) error {
	if sets <= 0 || ways <= 0 {
		return fmt.Errorf("rrip: bad geometry %dx%d", sets, ways)
	}
	c.sets, c.ways = sets, ways
	c.rrpv = make([]uint8, sets*ways)
	return nil
}

func (c *rripCore) hit(set, way int) { c.rrpv[set*c.ways+way] = 0 }

// victim finds the first way at distant RRPV, aging the set until one
// exists (guaranteed to terminate: each pass increments all values).
func (c *rripCore) victim(set int) int {
	base := set * c.ways
	for {
		for w := 0; w < c.ways; w++ {
			if c.rrpv[base+w] == rripMaxRRPV {
				return w
			}
		}
		for w := 0; w < c.ways; w++ {
			c.rrpv[base+w]++
		}
	}
}

// ---------------------------------------------------------------------------
// SRRIP

type srripPolicy struct {
	rripCore
}

// NewSRRIPPolicy returns a static RRIP policy (hit-priority, 2-bit).
func NewSRRIPPolicy() Policy { return &srripPolicy{} }

func (p *srripPolicy) Name() string                { return string(SRRIP) }
func (p *srripPolicy) Attach(sets, ways int) error { return p.attach(sets, ways) }
func (p *srripPolicy) OnHit(set, way int)          { p.hit(set, way) }
func (p *srripPolicy) OnMiss(int)                  {}
func (p *srripPolicy) Victim(set int) int          { return p.victim(set) }

func (p *srripPolicy) OnFill(set, way int) {
	p.rrpv[set*p.ways+way] = rripMaxRRPV - 1
}

// ---------------------------------------------------------------------------
// DRRIP

type drripPolicy struct {
	rripCore
	psel int
	rng  *seededRand
}

// NewDRRIPPolicy returns a dynamic RRIP policy dueling SRRIP vs BRRIP.
func NewDRRIPPolicy(seed int64) Policy {
	return &drripPolicy{rng: newSeededRand(seed), psel: (rripPSELMax + 1) / 2}
}

func (p *drripPolicy) Name() string                { return string(DRRIP) }
func (p *drripPolicy) Attach(sets, ways int) error { return p.attach(sets, ways) }
func (p *drripPolicy) OnHit(set, way int)          { p.hit(set, way) }
func (p *drripPolicy) Victim(set int) int          { return p.victim(set) }

// leaderKind: 0 = follower, 1 = SRRIP leader, 2 = BRRIP leader.
func (p *drripPolicy) leaderKind(set int) int {
	switch set % rripLeaderPeriod {
	case 0:
		return 1
	case rripLeaderPeriod / 2:
		return 2
	}
	return 0
}

func (p *drripPolicy) OnMiss(set int) {
	switch p.leaderKind(set) {
	case 1: // miss under SRRIP: evidence for BRRIP
		if p.psel < rripPSELMax {
			p.psel++
		}
	case 2:
		if p.psel > 0 {
			p.psel--
		}
	}
}

func (p *drripPolicy) useBRRIP(set int) bool {
	switch p.leaderKind(set) {
	case 1:
		return false
	case 2:
		return true
	}
	return p.psel >= (rripPSELMax+1)/2
}

func (p *drripPolicy) OnFill(set, way int) {
	idx := set*p.ways + way
	if p.useBRRIP(set) && p.rng.Intn(brripEpsilonDen) != 0 {
		p.rrpv[idx] = rripMaxRRPV
		return
	}
	p.rrpv[idx] = rripMaxRRPV - 1
}

// PSEL exposes the selector for tests and ablation studies.
func (p *drripPolicy) PSEL() int { return p.psel }
