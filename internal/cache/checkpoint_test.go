package cache

import (
	"math/rand"
	"testing"
)

// allPolicies lists every shipped replacement policy, including the ones
// the paper sweep does not touch (SRRIP, PLRU, SHiP), so the checkpoint
// layer is pinned for all of them.
var allPolicies = []PolicyName{LRU, Random, FIFO, DIP, DRRIP, SRRIP, PLRU, SHIP}

// drive performs n deterministic mixed accesses against c, returning a
// value folded from every observable outcome so divergence is loud.
func drive(c *Cache, rng *rand.Rand, n int) uint64 {
	var sig uint64
	for i := 0; i < n; i++ {
		addr := uint64(rng.Intn(1<<14)) * LineSize
		switch i % 5 {
		case 0:
			ev := c.Fill(addr, rng.Intn(3) == 0, rng.Intn(4) == 0)
			if ev.Valid {
				sig = sig*1099511628211 + ev.Addr + 1
				if ev.Dirty {
					sig++
				}
			}
		case 4:
			if c.Probe(addr) {
				sig = sig*1099511628211 + 7
			}
		default:
			if c.Access(addr, i%2 == 0) {
				sig = sig*1099511628211 + 3
			}
		}
	}
	return sig
}

// TestPolicyCheckpointRoundTrip drives a cache under every policy,
// snapshots mid-stream, restores into a fresh cache and replays the
// remainder on both: outcomes and statistics must match exactly. The
// restore target is then dirtied and restored again to check snapshots
// overwrite rather than merge.
func TestPolicyCheckpointRoundTrip(t *testing.T) {
	for _, name := range allPolicies {
		c, err := New("LLC", 64<<10, 16, MustNewPolicy(name, 42))
		if err != nil {
			t.Fatal(err)
		}
		rng := rand.New(rand.NewSource(99))
		drive(c, rng, 20000)

		var st State
		c.Snapshot(&st)
		tailSeed := rng.Int63()
		want := drive(c, rand.New(rand.NewSource(tailSeed)), 20000)

		fresh, err := New("LLC", 64<<10, 16, MustNewPolicy(name, 42))
		if err != nil {
			t.Fatal(err)
		}
		fresh.Restore(&st)
		if got := drive(fresh, rand.New(rand.NewSource(tailSeed)), 20000); got != want {
			t.Errorf("%s: fresh restore diverges: signature %x, want %x", name, got, want)
		}
		if fresh.Stats() != c.Stats() {
			t.Errorf("%s: stats diverge: %+v vs %+v", name, fresh.Stats(), c.Stats())
		}

		// Dirty restore: run the restored cache further, restore again,
		// and replay the same tail.
		drive(fresh, rand.New(rand.NewSource(5)), 5000)
		fresh.Restore(&st)
		if got := drive(fresh, rand.New(rand.NewSource(tailSeed)), 20000); got != want {
			t.Errorf("%s: dirty restore diverges", name)
		}
	}
}

// TestSnapshotAllocationFree pins Snapshot into a warmed buffer and
// Restore at zero allocations for every policy.
func TestSnapshotAllocationFree(t *testing.T) {
	for _, name := range allPolicies {
		c, err := New("LLC", 64<<10, 16, MustNewPolicy(name, 42))
		if err != nil {
			t.Fatal(err)
		}
		drive(c, rand.New(rand.NewSource(1)), 20000)
		var st State
		c.Snapshot(&st)
		if avg := testing.AllocsPerRun(10, func() { c.Snapshot(&st) }); avg != 0 {
			t.Errorf("%s: steady-state Snapshot allocates %.2f times, want 0", name, avg)
		}
		if avg := testing.AllocsPerRun(10, func() { c.Restore(&st) }); avg != 0 {
			t.Errorf("%s: steady-state Restore allocates %.2f times, want 0", name, avg)
		}
	}
}

// TestSetPolicyKeepsContents checks the fan-out hook: after SetPolicy
// the lines (tags, dirtiness) and stats survive while the replacement
// metadata restarts fresh and fully functional.
func TestSetPolicyKeepsContents(t *testing.T) {
	c, err := New("LLC", 64<<10, 16, MustNewPolicy(LRU, 42))
	if err != nil {
		t.Fatal(err)
	}
	drive(c, rand.New(rand.NewSource(99)), 20000)
	statsBefore := c.Stats()

	resident := make([]uint64, 0, 64)
	for a := uint64(0); a < 1<<14; a++ {
		if addr := a * LineSize; c.Probe(addr) {
			resident = append(resident, addr)
		}
	}
	if len(resident) == 0 {
		t.Fatal("no resident lines after warmup")
	}
	if err := c.SetPolicy(MustNewPolicy(DRRIP, 7)); err != nil {
		t.Fatal(err)
	}
	if got := c.Policy().Name(); got != string(DRRIP) {
		t.Fatalf("policy after swap: %s", got)
	}
	for _, addr := range resident {
		if !c.Probe(addr) {
			t.Fatalf("line %#x evicted by SetPolicy", addr)
		}
	}
	if c.Stats() != statsBefore {
		t.Errorf("stats changed by SetPolicy: %+v vs %+v", c.Stats(), statsBefore)
	}
	// The swapped-in policy must drive further traffic without issue.
	drive(c, rand.New(rand.NewSource(3)), 20000)
}

// TestSeededRandStateRoundTrip pins the RNG position checkpointing that
// DIP/DRRIP/Random replacement depend on: a restored generator continues
// the exact draw sequence, even restored into a generator at a different
// position.
func TestSeededRandStateRoundTrip(t *testing.T) {
	r := newSeededRand(12345)
	for i := 0; i < 1000; i++ {
		r.Intn(32)
	}
	st := r.state()
	want := make([]int, 100)
	for i := range want {
		want[i] = r.Intn(32)
	}
	other := newSeededRand(12345)
	for i := 0; i < 123; i++ {
		other.Intn(16)
	}
	other.setState(st)
	for i := range want {
		if got := other.Intn(32); got != want[i] {
			t.Fatalf("draw %d after restore: %d, want %d", i, got, want[i])
		}
	}
}
