// Package cache implements set-associative caches with pluggable
// replacement policies (LRU, RANDOM, FIFO, DIP, DRRIP, SRRIP) and the
// hardware prefetchers of the paper's configuration tables (next-line,
// IP-based stride, stream).
//
// A Cache models state only (tags, dirtiness, replacement metadata);
// timing (latencies, MSHRs, buses) belongs to the uncore and core models
// that drive it.
package cache

import (
	"fmt"
	"math/bits"
)

// LineSize is the cache line size in bytes for every cache in the system.
const LineSize = 64

// line is one cache line's bookkeeping, packed into a single 32-bit
// word: the tag in the high 29 bits and the valid/dirty/prefetch flags
// in the low three. The prefetch bit lives in the line itself (rather
// than a parallel slice) and a whole 16-way set scans as one 64-byte
// strip — a single cache line of bookkeeping per lookup. The packing
// constrains addresses to < 2^(29+log2(LineSize*sets)) — at least 2^41
// for the smallest simulated cache, far above both the synthetic
// virtual address space and the bump-allocated physical one; Fill
// panics if an address ever exceeds it.
type line uint32

const (
	lineValid    line = 1 << 0
	lineDirty    line = 1 << 1
	linePref     line = 1 << 2 // filled by prefetch and not yet demanded
	lineTagShift      = 3
	lineTagMax        = 1 << (32 - lineTagShift) // first tag that does not fit
)

func (l line) tag() uint64 { return uint64(l) >> lineTagShift }
func (l line) valid() bool { return l&lineValid != 0 }
func (l line) dirty() bool { return l&lineDirty != 0 }
func (l line) pref() bool  { return l&linePref != 0 }

// lineKey builds the packed compare key of a valid line with the given
// tag; masking a line's dirty/pref bits off makes it directly comparable.
func lineKey(tag uint64) line { return line(tag<<lineTagShift) | lineValid }

// Stats counts cache events. Demand accesses only; prefetch fills are
// counted separately so MPKI reflects demand misses as in the paper.
type Stats struct {
	Accesses      uint64 // demand accesses
	Hits          uint64 // demand hits
	Misses        uint64 // demand misses
	Writebacks    uint64 // dirty evictions
	PrefetchFills uint64 // lines installed by prefetch
	PrefetchHits  uint64 // demand hits on prefetched-not-yet-touched lines
}

// MPK returns misses per kilo-event given an instruction count.
func (s Stats) MPK(instructions uint64) float64 {
	if instructions == 0 {
		return 0
	}
	return float64(s.Misses) * 1000 / float64(instructions)
}

// Cache is a set-associative, write-back, write-allocate cache.
type Cache struct {
	name     string
	sets     int
	ways     int
	setShift uint
	tagShift uint // precomputed log2(sets): tag = lineAddr >> tagShift
	setMask  uint64
	lines    []line // sets*ways, row-major by set
	policy   Policy
	lru      *lruPolicy   // policy devirtualized, when it is plain LRU
	addrObs  AddressAware // non-nil if the policy wants addresses
	gen      uint64       // bumped whenever contents change (see Generation)
	stats    Stats
}

// AddressAware is an optional Policy extension: policies that key their
// metadata on the accessed address (e.g. SHiP's region signatures)
// implement it, and the cache calls ObserveAddr with the line address
// immediately before the OnHit/OnMiss/OnFill hook it belongs to.
type AddressAware interface {
	ObserveAddr(addr uint64)
}

// New builds a cache of the given total size in bytes and associativity,
// with the supplied replacement policy. Size must be a power-of-two
// multiple of ways*LineSize.
func New(name string, sizeBytes, ways int, policy Policy) (*Cache, error) {
	if sizeBytes <= 0 || ways <= 0 {
		return nil, fmt.Errorf("cache %s: non-positive geometry", name)
	}
	lines := sizeBytes / LineSize
	if lines*LineSize != sizeBytes {
		return nil, fmt.Errorf("cache %s: size %d not a multiple of line size", name, sizeBytes)
	}
	sets := lines / ways
	if sets*ways != lines {
		return nil, fmt.Errorf("cache %s: %d lines not divisible by %d ways", name, lines, ways)
	}
	if sets&(sets-1) != 0 {
		return nil, fmt.Errorf("cache %s: %d sets is not a power of two", name, sets)
	}
	if err := policy.Attach(sets, ways); err != nil {
		return nil, fmt.Errorf("cache %s: %w", name, err)
	}
	c := &Cache{
		name:     name,
		sets:     sets,
		ways:     ways,
		setShift: uint(bits.TrailingZeros(uint(LineSize))),
		tagShift: uint(bits.TrailingZeros(uint(sets))),
		setMask:  uint64(sets - 1),
		lines:    make([]line, sets*ways),
		policy:   policy,
	}
	c.addrObs, _ = policy.(AddressAware)
	// Plain LRU (every L1, and the LLC in much of the campaign) gets its
	// hooks called directly: touch on hits and fills, nothing on misses.
	c.lru, _ = policy.(*lruPolicy)
	return c, nil
}

// MustNew is New for static configurations.
func MustNew(name string, sizeBytes, ways int, policy Policy) *Cache {
	c, err := New(name, sizeBytes, ways, policy)
	if err != nil {
		panic(err)
	}
	return c
}

// Name returns the cache's name.
func (c *Cache) Name() string { return c.name }

// Sets returns the number of sets.
func (c *Cache) Sets() int { return c.sets }

// Ways returns the associativity.
func (c *Cache) Ways() int { return c.ways }

// SizeBytes returns the capacity in bytes.
func (c *Cache) SizeBytes() int { return c.sets * c.ways * LineSize }

// Stats returns a copy of the event counters.
func (c *Cache) Stats() Stats { return c.stats }

// ResetStats zeroes the event counters without touching cache contents.
func (c *Cache) ResetStats() { c.stats = Stats{} }

// Policy returns the attached replacement policy.
func (c *Cache) Policy() Policy { return c.policy }

// Generation counts content changes: it advances every time a line is
// installed, invalidated or flushed (never on hits or misses alone). A
// line observed resident is therefore still resident while Generation
// is unchanged — the contract behind the uncore's prefetch-proposal
// filter.
func (c *Cache) Generation() uint64 { return c.gen }

func (c *Cache) index(addr uint64) (set int, tag uint64) {
	lineAddr := addr >> c.setShift
	return int(lineAddr & c.setMask), lineAddr >> c.tagShift
}

// set returns the ways of one set as a sub-slice, which lets the per-way
// scans run with a single bounds check.
func (c *Cache) set(set int) []line {
	base := set * c.ways
	return c.lines[base : base+c.ways]
}

// Probe reports whether addr is present without updating replacement
// state or statistics.
func (c *Cache) Probe(addr uint64) bool {
	set, tag := c.index(addr)
	want := lineKey(tag)
	for _, l := range c.set(set) {
		if l&^(lineDirty|linePref) == want {
			return true
		}
	}
	return false
}

// Access performs a demand access. On a hit it updates replacement state
// and returns hit=true. On a miss it updates miss statistics and the
// policy's miss hook but does NOT fill; the caller fills after the miss
// has been serviced (see Fill).
func (c *Cache) Access(addr uint64, write bool) (hit bool) {
	set, tag := c.index(addr)
	c.stats.Accesses++
	if c.addrObs != nil {
		c.addrObs.ObserveAddr(addr)
	}
	ways := c.set(set)
	want := lineKey(tag)
	for w := range ways {
		l := ways[w]
		if l&^(lineDirty|linePref) == want {
			c.stats.Hits++
			if write {
				l |= lineDirty
			}
			if l&linePref != 0 {
				c.stats.PrefetchHits++
				l &^= linePref
			}
			ways[w] = l
			if c.lru != nil {
				c.lru.touch(set, w)
			} else {
				c.policy.OnHit(set, w)
			}
			return true
		}
	}
	c.stats.Misses++
	if c.lru == nil {
		c.policy.OnMiss(set)
	}
	return false
}

// Eviction describes the line displaced by a fill.
type Eviction struct {
	Valid bool   // an actual line was evicted
	Dirty bool   // it requires a writeback
	Addr  uint64 // its line-aligned address
}

// Fill installs addr, evicting a victim if the set is full. write marks
// the new line dirty (write-allocate). prefetch marks the fill as
// prefetch-initiated for statistics. The returned Eviction tells the
// caller whether a writeback must be modelled.
func (c *Cache) Fill(addr uint64, write, prefetch bool) Eviction {
	set, tag := c.index(addr)
	if tag >= lineTagMax {
		panic(fmt.Sprintf("cache %s: address %#x exceeds the packed-tag range", c.name, addr))
	}
	if c.addrObs != nil {
		c.addrObs.ObserveAddr(addr)
	}
	// Already present (e.g. a prefetch raced a demand fill): refresh state.
	ways := c.set(set)
	want := lineKey(tag)
	for w := range ways {
		if ways[w]&^(lineDirty|linePref) == want {
			if write {
				ways[w] |= lineDirty
			}
			return Eviction{}
		}
	}
	way := -1
	for w := range ways {
		if !ways[w].valid() {
			way = w
			break
		}
	}
	var ev Eviction
	if way < 0 {
		if c.lru != nil {
			way = c.lru.Victim(set)
		} else {
			way = c.policy.Victim(set)
		}
		if way < 0 || way >= c.ways {
			panic(fmt.Sprintf("cache %s: policy %s returned invalid victim %d", c.name, c.policy.Name(), way))
		}
		v := ways[way]
		ev = Eviction{Valid: true, Dirty: v.dirty(), Addr: c.lineAddr(set, v.tag())}
		if v.dirty() {
			c.stats.Writebacks++
		}
	}
	nl := want
	if write {
		nl |= lineDirty
	}
	if prefetch {
		nl |= linePref
		c.stats.PrefetchFills++
	}
	ways[way] = nl
	c.gen++
	if c.lru != nil {
		c.lru.touch(set, way)
	} else {
		c.policy.OnFill(set, way)
	}
	return ev
}

// lineAddr reconstructs the line-aligned address of a (set, tag) pair.
func (c *Cache) lineAddr(set int, tag uint64) uint64 {
	return (tag<<c.tagShift | uint64(set)) << c.setShift
}

// Invalidate drops addr if present, returning whether it was dirty.
func (c *Cache) Invalidate(addr uint64) (present, dirty bool) {
	set, tag := c.index(addr)
	ways := c.set(set)
	want := lineKey(tag)
	for w := range ways {
		if ways[w]&^(lineDirty|linePref) == want {
			dirty = ways[w].dirty()
			ways[w] &^= lineValid
			c.gen++
			return true, dirty
		}
	}
	return false, false
}

// Flush invalidates every line, returning the number of dirty lines
// dropped. Statistics are preserved.
func (c *Cache) Flush() (dirty int) {
	for i := range c.lines {
		if c.lines[i].valid() && c.lines[i].dirty() {
			dirty++
		}
		c.lines[i] = 0
	}
	c.gen++
	return dirty
}

// AlignLine returns addr rounded down to its cache line.
func AlignLine(addr uint64) uint64 { return addr &^ uint64(LineSize-1) }
