// Package cache implements set-associative caches with pluggable
// replacement policies (LRU, RANDOM, FIFO, DIP, DRRIP, SRRIP) and the
// hardware prefetchers of the paper's configuration tables (next-line,
// IP-based stride, stream).
//
// A Cache models state only (tags, dirtiness, replacement metadata);
// timing (latencies, MSHRs, buses) belongs to the uncore and core models
// that drive it.
package cache

import (
	"fmt"
	"math/bits"
)

// LineSize is the cache line size in bytes for every cache in the system.
const LineSize = 64

// line is one cache line's bookkeeping.
type line struct {
	tag   uint64
	valid bool
	dirty bool
}

// Stats counts cache events. Demand accesses only; prefetch fills are
// counted separately so MPKI reflects demand misses as in the paper.
type Stats struct {
	Accesses      uint64 // demand accesses
	Hits          uint64 // demand hits
	Misses        uint64 // demand misses
	Writebacks    uint64 // dirty evictions
	PrefetchFills uint64 // lines installed by prefetch
	PrefetchHits  uint64 // demand hits on prefetched-not-yet-touched lines
}

// MPK returns misses per kilo-event given an instruction count.
func (s Stats) MPK(instructions uint64) float64 {
	if instructions == 0 {
		return 0
	}
	return float64(s.Misses) * 1000 / float64(instructions)
}

// Cache is a set-associative, write-back, write-allocate cache.
type Cache struct {
	name     string
	sets     int
	ways     int
	setShift uint
	setMask  uint64
	lines    []line // sets*ways, row-major by set
	prefBit  []bool // line was filled by prefetch and not yet demanded
	policy   Policy
	addrObs  AddressAware // non-nil if the policy wants addresses
	stats    Stats
}

// AddressAware is an optional Policy extension: policies that key their
// metadata on the accessed address (e.g. SHiP's region signatures)
// implement it, and the cache calls ObserveAddr with the line address
// immediately before the OnHit/OnMiss/OnFill hook it belongs to.
type AddressAware interface {
	ObserveAddr(addr uint64)
}

// New builds a cache of the given total size in bytes and associativity,
// with the supplied replacement policy. Size must be a power-of-two
// multiple of ways*LineSize.
func New(name string, sizeBytes, ways int, policy Policy) (*Cache, error) {
	if sizeBytes <= 0 || ways <= 0 {
		return nil, fmt.Errorf("cache %s: non-positive geometry", name)
	}
	lines := sizeBytes / LineSize
	if lines*LineSize != sizeBytes {
		return nil, fmt.Errorf("cache %s: size %d not a multiple of line size", name, sizeBytes)
	}
	sets := lines / ways
	if sets*ways != lines {
		return nil, fmt.Errorf("cache %s: %d lines not divisible by %d ways", name, lines, ways)
	}
	if sets&(sets-1) != 0 {
		return nil, fmt.Errorf("cache %s: %d sets is not a power of two", name, sets)
	}
	if err := policy.Attach(sets, ways); err != nil {
		return nil, fmt.Errorf("cache %s: %w", name, err)
	}
	c := &Cache{
		name:     name,
		sets:     sets,
		ways:     ways,
		setShift: uint(bits.TrailingZeros(uint(LineSize))),
		setMask:  uint64(sets - 1),
		lines:    make([]line, sets*ways),
		prefBit:  make([]bool, sets*ways),
		policy:   policy,
	}
	c.addrObs, _ = policy.(AddressAware)
	return c, nil
}

// MustNew is New for static configurations.
func MustNew(name string, sizeBytes, ways int, policy Policy) *Cache {
	c, err := New(name, sizeBytes, ways, policy)
	if err != nil {
		panic(err)
	}
	return c
}

// Name returns the cache's name.
func (c *Cache) Name() string { return c.name }

// Sets returns the number of sets.
func (c *Cache) Sets() int { return c.sets }

// Ways returns the associativity.
func (c *Cache) Ways() int { return c.ways }

// SizeBytes returns the capacity in bytes.
func (c *Cache) SizeBytes() int { return c.sets * c.ways * LineSize }

// Stats returns a copy of the event counters.
func (c *Cache) Stats() Stats { return c.stats }

// ResetStats zeroes the event counters without touching cache contents.
func (c *Cache) ResetStats() { c.stats = Stats{} }

// Policy returns the attached replacement policy.
func (c *Cache) Policy() Policy { return c.policy }

func (c *Cache) index(addr uint64) (set int, tag uint64) {
	lineAddr := addr >> c.setShift
	return int(lineAddr & c.setMask), lineAddr >> uint(bits.TrailingZeros(uint(c.sets)))
}

func (c *Cache) at(set, way int) *line { return &c.lines[set*c.ways+way] }

// Probe reports whether addr is present without updating replacement
// state or statistics.
func (c *Cache) Probe(addr uint64) bool {
	set, tag := c.index(addr)
	for w := 0; w < c.ways; w++ {
		if l := c.at(set, w); l.valid && l.tag == tag {
			return true
		}
	}
	return false
}

// Access performs a demand access. On a hit it updates replacement state
// and returns hit=true. On a miss it updates miss statistics and the
// policy's miss hook but does NOT fill; the caller fills after the miss
// has been serviced (see Fill).
func (c *Cache) Access(addr uint64, write bool) (hit bool) {
	set, tag := c.index(addr)
	c.stats.Accesses++
	if c.addrObs != nil {
		c.addrObs.ObserveAddr(addr)
	}
	for w := 0; w < c.ways; w++ {
		l := c.at(set, w)
		if l.valid && l.tag == tag {
			c.stats.Hits++
			if write {
				l.dirty = true
			}
			if c.prefBit[set*c.ways+w] {
				c.stats.PrefetchHits++
				c.prefBit[set*c.ways+w] = false
			}
			c.policy.OnHit(set, w)
			return true
		}
	}
	c.stats.Misses++
	c.policy.OnMiss(set)
	return false
}

// Eviction describes the line displaced by a fill.
type Eviction struct {
	Valid bool   // an actual line was evicted
	Dirty bool   // it requires a writeback
	Addr  uint64 // its line-aligned address
}

// Fill installs addr, evicting a victim if the set is full. write marks
// the new line dirty (write-allocate). prefetch marks the fill as
// prefetch-initiated for statistics. The returned Eviction tells the
// caller whether a writeback must be modelled.
func (c *Cache) Fill(addr uint64, write, prefetch bool) Eviction {
	set, tag := c.index(addr)
	if c.addrObs != nil {
		c.addrObs.ObserveAddr(addr)
	}
	// Already present (e.g. a prefetch raced a demand fill): refresh state.
	for w := 0; w < c.ways; w++ {
		l := c.at(set, w)
		if l.valid && l.tag == tag {
			if write {
				l.dirty = true
			}
			return Eviction{}
		}
	}
	way := -1
	for w := 0; w < c.ways; w++ {
		if !c.at(set, w).valid {
			way = w
			break
		}
	}
	var ev Eviction
	if way < 0 {
		way = c.policy.Victim(set)
		if way < 0 || way >= c.ways {
			panic(fmt.Sprintf("cache %s: policy %s returned invalid victim %d", c.name, c.policy.Name(), way))
		}
		v := c.at(set, way)
		ev = Eviction{Valid: true, Dirty: v.dirty, Addr: c.lineAddr(set, v.tag)}
		if v.dirty {
			c.stats.Writebacks++
		}
	}
	*c.at(set, way) = line{tag: tag, valid: true, dirty: write}
	c.prefBit[set*c.ways+way] = prefetch
	if prefetch {
		c.stats.PrefetchFills++
	}
	c.policy.OnFill(set, way)
	return ev
}

// lineAddr reconstructs the line-aligned address of a (set, tag) pair.
func (c *Cache) lineAddr(set int, tag uint64) uint64 {
	setBits := uint(bits.TrailingZeros(uint(c.sets)))
	return (tag<<setBits | uint64(set)) << c.setShift
}

// Invalidate drops addr if present, returning whether it was dirty.
func (c *Cache) Invalidate(addr uint64) (present, dirty bool) {
	set, tag := c.index(addr)
	for w := 0; w < c.ways; w++ {
		l := c.at(set, w)
		if l.valid && l.tag == tag {
			l.valid = false
			return true, l.dirty
		}
	}
	return false, false
}

// Flush invalidates every line, returning the number of dirty lines
// dropped. Statistics are preserved.
func (c *Cache) Flush() (dirty int) {
	for i := range c.lines {
		if c.lines[i].valid && c.lines[i].dirty {
			dirty++
		}
		c.lines[i] = line{}
		c.prefBit[i] = false
	}
	return dirty
}

// AlignLine returns addr rounded down to its cache line.
func AlignLine(addr uint64) uint64 { return addr &^ uint64(LineSize-1) }
