package cache

import "fmt"

// PLRU implements tree-based pseudo-LRU, the cheap LRU approximation used
// by many real LLCs. It is not part of the paper's case study; it ships
// as an ablation policy (how much of LRU's advantage over RND survives
// the tree approximation?). Associativity must be a power of two.

// PLRU is the policy name for tree pseudo-LRU.
const PLRU PolicyName = "PLRU"

type plruPolicy struct {
	ways int
	// bits holds ways-1 tree bits per set: bit 0 is the root; the
	// children of node i are 2i+1 and 2i+2. A bit of 0 points left.
	bits [][]bool
}

// NewPLRUPolicy returns a tree pseudo-LRU policy.
func NewPLRUPolicy() Policy { return &plruPolicy{} }

func (p *plruPolicy) Name() string { return string(PLRU) }

func (p *plruPolicy) Attach(sets, ways int) error {
	if sets <= 0 || ways <= 0 {
		return fmt.Errorf("plru: bad geometry %dx%d", sets, ways)
	}
	if ways&(ways-1) != 0 {
		return fmt.Errorf("plru: associativity %d is not a power of two", ways)
	}
	p.ways = ways
	p.bits = make([][]bool, sets)
	for i := range p.bits {
		p.bits[i] = make([]bool, ways-1)
	}
	return nil
}

// touch flips the tree bits on the path to way so they point away from
// it (the MRU promotion).
func (p *plruPolicy) touch(set, way int) {
	bits := p.bits[set]
	node := 0
	lo, hi := 0, p.ways
	for hi-lo > 1 {
		mid := (lo + hi) / 2
		if way < mid {
			bits[node] = true // point right, away from the touched half
			node = 2*node + 1
			hi = mid
		} else {
			bits[node] = false // point left
			node = 2*node + 2
			lo = mid
		}
	}
}

func (p *plruPolicy) OnHit(set, way int)  { p.touch(set, way) }
func (p *plruPolicy) OnMiss(int)          {}
func (p *plruPolicy) OnFill(set, way int) { p.touch(set, way) }

// Victim follows the tree bits to the pseudo-least-recently-used way.
func (p *plruPolicy) Victim(set int) int {
	bits := p.bits[set]
	node := 0
	lo, hi := 0, p.ways
	for hi-lo > 1 {
		mid := (lo + hi) / 2
		if !bits[node] { // points left
			node = 2*node + 1
			hi = mid
		} else {
			node = 2*node + 2
			lo = mid
		}
	}
	return lo
}
