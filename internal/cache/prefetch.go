package cache

// Prefetchers observe the demand access stream of a cache and propose
// line-aligned addresses to fetch ahead of demand. The paper's core uses a
// next-line prefetcher on the IL1 and IP-stride + next-line on the DL1;
// the LLC uses IP-stride + stream prefetchers (Tables I and II).

// Prefetcher proposes prefetch addresses from observed demand accesses.
type Prefetcher interface {
	// Name identifies the prefetcher.
	Name() string
	// Observe is called on every demand access with the instruction
	// address, the data address and whether the access missed. It returns
	// line-aligned addresses to prefetch (possibly none). The returned
	// slice is only valid until the next Observe call; callers that keep
	// proposals across observations must copy them.
	Observe(pc, addr uint64, miss bool) []uint64
}

// ---------------------------------------------------------------------------
// Next-line

type nextLinePrefetcher struct {
	onMissOnly bool
	buf        [1]uint64
}

// NewNextLine returns a next-line prefetcher. If onMissOnly is true it
// fires only on misses (the usual configuration for L1 caches).
func NewNextLine(onMissOnly bool) Prefetcher {
	return &nextLinePrefetcher{onMissOnly: onMissOnly}
}

func (p *nextLinePrefetcher) Name() string { return "next-line" }

func (p *nextLinePrefetcher) Observe(_, addr uint64, miss bool) []uint64 {
	if p.onMissOnly && !miss {
		return nil
	}
	p.buf[0] = AlignLine(addr) + LineSize
	return p.buf[:]
}

// ---------------------------------------------------------------------------
// IP-based stride

// ipStrideEntry tracks the last address and stride observed for one
// instruction address. Fields are exported so prefetcher snapshots
// survive encoding/gob persistence (see checkpoint.go).
type ipStrideEntry struct {
	Tag      uint64
	LastAddr uint64
	Stride   int64
	Conf     uint8 // 2-bit saturating confidence
}

const (
	ipStrideTableSize = 256
	ipStrideConfMax   = 3
	ipStrideThreshold = 2
)

type ipStridePrefetcher struct {
	table  [ipStrideTableSize]ipStrideEntry
	degree int
	buf    []uint64
}

// NewIPStride returns an IP-based stride prefetcher issuing up to degree
// prefetches ahead on a confident stride.
func NewIPStride(degree int) Prefetcher {
	if degree < 1 {
		degree = 1
	}
	return &ipStridePrefetcher{degree: degree, buf: make([]uint64, 0, degree)}
}

func (p *ipStridePrefetcher) Name() string { return "ip-stride" }

func (p *ipStridePrefetcher) Observe(pc, addr uint64, _ bool) []uint64 {
	idx := (pc ^ pc>>8) % ipStrideTableSize
	e := &p.table[idx]
	p.buf = p.buf[:0]
	if e.Tag != pc {
		*e = ipStrideEntry{Tag: pc, LastAddr: addr}
		return nil
	}
	stride := int64(addr) - int64(e.LastAddr)
	if stride == e.Stride && stride != 0 {
		if e.Conf < ipStrideConfMax {
			e.Conf++
		}
	} else {
		e.Stride = stride
		e.Conf = 0
	}
	e.LastAddr = addr
	if e.Conf >= ipStrideThreshold && e.Stride != 0 {
		next := int64(addr)
		for d := 0; d < p.degree; d++ {
			next += e.Stride
			if next <= 0 {
				break
			}
			p.buf = append(p.buf, AlignLine(uint64(next)))
		}
	}
	return p.buf
}

// ---------------------------------------------------------------------------
// Stream

const (
	streamTableSize = 16
	streamTrainHits = 2
	streamIdxBits   = 4 // log2(streamTableSize), for the victim-scan packing
)

// The victim scan packs (clock, index) into one word, so the table size
// must stay in sync with streamIdxBits.
var _ [streamTableSize - 1<<streamIdxBits]struct{}
var _ [1<<streamIdxBits - streamTableSize]struct{}

// streamPrefetcher stores its table as parallel strips so each scan reads
// one dense 128-byte run of words:
//
//   - keys[i] holds the stream's lastLine+2 (0 = no stream), so
//     keys[i] == line+2 is a repeat access and keys[i] == line+1 extends
//     the stream, and an empty slot matches neither;
//   - clocks[i] is the entry's LRU clock (0 = empty slot, the allocation
//     scan's strip);
//   - hits[i] counts consecutive sequential observations.
type streamPrefetcher struct {
	keys   [streamTableSize]uint64
	clocks [streamTableSize]uint64
	hits   [streamTableSize]uint8
	clock  uint64
	degree int
	buf    []uint64
}

// NewStream returns a stream prefetcher tracking up to 16 ascending
// streams and prefetching degree lines ahead once trained.
func NewStream(degree int) Prefetcher {
	if degree < 1 {
		degree = 1
	}
	return &streamPrefetcher{degree: degree, buf: make([]uint64, 0, degree)}
}

func (p *streamPrefetcher) Name() string { return "stream" }

func (p *streamPrefetcher) Observe(_, addr uint64, _ bool) []uint64 {
	line := addr / LineSize
	p.clock++
	p.buf = p.buf[:0]

	// Find a stream this access extends (same line or the next one); the
	// mostly-not-taken compares predict well, so the scan stays a plain
	// early-out loop over the dense key strip.
	// (&p.keys: ranging over the array value would copy it each call.)
	rk := line + 2
	for i, k := range &p.keys {
		if k == rk { // repeat access: keep the stream warm
			p.clocks[i] = p.clock
			return nil
		}
		if k == line+1 { // sequential: extend the stream
			p.keys[i] = rk
			p.clocks[i] = p.clock
			if p.hits[i] < streamTrainHits {
				p.hits[i]++
			}
			if p.hits[i] >= streamTrainHits {
				for d := 1; d <= p.degree; d++ {
					p.buf = append(p.buf, (line+uint64(d))*LineSize)
				}
			}
			return p.buf
		}
	}

	// Allocate for a potential new stream: the first empty slot, else the
	// least recently used. Packing (clock, index) into one word makes the
	// scan a plain min: an empty slot's key is its bare index, which
	// undercuts every real clock, and unique clocks break ties exactly
	// like the index order of a first-minimum scan.
	best := ^uint64(0)
	for i, c := range &p.clocks {
		if v := c<<streamIdxBits | uint64(i); v < best {
			best = v
		}
	}
	victim := int(best & (streamTableSize - 1))
	p.keys[victim] = rk
	p.clocks[victim] = p.clock
	p.hits[victim] = 0
	return nil
}

// ---------------------------------------------------------------------------
// Composition

type multiPrefetcher struct {
	parts []Prefetcher
	buf   []uint64
}

// Combine merges several prefetchers into one; duplicate proposals are
// deduplicated per observation. The two pairings the simulators actually
// build (IP-stride + stream for LLCs, IP-stride + next-line for DL1s)
// get devirtualized combiners whose parts are called directly on the
// hot path; any other combination falls back to the generic form.
func Combine(parts ...Prefetcher) Prefetcher {
	if len(parts) == 2 {
		if a, ok := parts[0].(*ipStridePrefetcher); ok {
			switch b := parts[1].(type) {
			case *streamPrefetcher:
				return &StrideStreamPrefetcher{stride: a, stream: b}
			case *nextLinePrefetcher:
				return &StrideNextPrefetcher{stride: a, next: b}
			}
		}
	}
	return &multiPrefetcher{parts: parts}
}

func (p *multiPrefetcher) Name() string { return "combined" }

func (p *multiPrefetcher) Observe(pc, addr uint64, miss bool) []uint64 {
	p.buf = p.buf[:0]
	for _, part := range p.parts {
		p.buf = appendDedup(p.buf, part.Observe(pc, addr, miss))
	}
	return p.buf
}

// appendDedup appends the proposals not already present in buf.
func appendDedup(buf, proposals []uint64) []uint64 {
	for _, a := range proposals {
		dup := false
		for _, b := range buf {
			if a == b {
				dup = true
				break
			}
		}
		if !dup {
			buf = append(buf, a)
		}
	}
	return buf
}

// NewStrideStream builds the LLC pairing (IP-stride + stream, equal
// degrees) as its concrete type, so callers hold a devirtualized
// reference on their hot path.
func NewStrideStream(degree int) *StrideStreamPrefetcher {
	return Combine(NewIPStride(degree), NewStream(degree)).(*StrideStreamPrefetcher)
}

// NewStrideNext builds the DL1 pairing (IP-stride + next-line) as its
// concrete type (see NewStrideStream).
func NewStrideNext(degree int, onMissOnly bool) *StrideNextPrefetcher {
	return Combine(NewIPStride(degree), NewNextLine(onMissOnly)).(*StrideNextPrefetcher)
}

// StrideStreamPrefetcher is Combine(ip-stride, stream) with direct calls.
type StrideStreamPrefetcher struct {
	stride *ipStridePrefetcher
	stream *streamPrefetcher
	buf    []uint64
}

func (p *StrideStreamPrefetcher) Name() string { return "combined" }

func (p *StrideStreamPrefetcher) Observe(pc, addr uint64, miss bool) []uint64 {
	p.buf = appendDedup(p.buf[:0], p.stride.Observe(pc, addr, miss))
	p.buf = appendDedup(p.buf, p.stream.Observe(pc, addr, miss))
	return p.buf
}

// StrideNextPrefetcher is Combine(ip-stride, next-line) with direct calls.
type StrideNextPrefetcher struct {
	stride *ipStridePrefetcher
	next   *nextLinePrefetcher
	buf    []uint64
}

func (p *StrideNextPrefetcher) Name() string { return "combined" }

func (p *StrideNextPrefetcher) Observe(pc, addr uint64, miss bool) []uint64 {
	p.buf = appendDedup(p.buf[:0], p.stride.Observe(pc, addr, miss))
	p.buf = appendDedup(p.buf, p.next.Observe(pc, addr, miss))
	return p.buf
}

// None is a Prefetcher that never prefetches.
type None struct{}

// Name identifies the null prefetcher.
func (None) Name() string { return "none" }

// Observe always returns no prefetches.
func (None) Observe(uint64, uint64, bool) []uint64 { return nil }
