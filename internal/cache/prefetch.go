package cache

// Prefetchers observe the demand access stream of a cache and propose
// line-aligned addresses to fetch ahead of demand. The paper's core uses a
// next-line prefetcher on the IL1 and IP-stride + next-line on the DL1;
// the LLC uses IP-stride + stream prefetchers (Tables I and II).

// Prefetcher proposes prefetch addresses from observed demand accesses.
type Prefetcher interface {
	// Name identifies the prefetcher.
	Name() string
	// Observe is called on every demand access with the instruction
	// address, the data address and whether the access missed. It returns
	// line-aligned addresses to prefetch (possibly none). The returned
	// slice is only valid until the next Observe call; callers that keep
	// proposals across observations must copy them.
	Observe(pc, addr uint64, miss bool) []uint64
}

// ---------------------------------------------------------------------------
// Next-line

type nextLinePrefetcher struct {
	onMissOnly bool
	buf        [1]uint64
}

// NewNextLine returns a next-line prefetcher. If onMissOnly is true it
// fires only on misses (the usual configuration for L1 caches).
func NewNextLine(onMissOnly bool) Prefetcher {
	return &nextLinePrefetcher{onMissOnly: onMissOnly}
}

func (p *nextLinePrefetcher) Name() string { return "next-line" }

func (p *nextLinePrefetcher) Observe(_, addr uint64, miss bool) []uint64 {
	if p.onMissOnly && !miss {
		return nil
	}
	p.buf[0] = AlignLine(addr) + LineSize
	return p.buf[:]
}

// ---------------------------------------------------------------------------
// IP-based stride

// ipStrideEntry tracks the last address and stride observed for one
// instruction address.
type ipStrideEntry struct {
	tag      uint64
	lastAddr uint64
	stride   int64
	conf     uint8 // 2-bit saturating confidence
}

const (
	ipStrideTableSize = 256
	ipStrideConfMax   = 3
	ipStrideThreshold = 2
)

type ipStridePrefetcher struct {
	table  [ipStrideTableSize]ipStrideEntry
	degree int
	buf    []uint64
}

// NewIPStride returns an IP-based stride prefetcher issuing up to degree
// prefetches ahead on a confident stride.
func NewIPStride(degree int) Prefetcher {
	if degree < 1 {
		degree = 1
	}
	return &ipStridePrefetcher{degree: degree, buf: make([]uint64, 0, degree)}
}

func (p *ipStridePrefetcher) Name() string { return "ip-stride" }

func (p *ipStridePrefetcher) Observe(pc, addr uint64, _ bool) []uint64 {
	idx := (pc ^ pc>>8) % ipStrideTableSize
	e := &p.table[idx]
	p.buf = p.buf[:0]
	if e.tag != pc {
		*e = ipStrideEntry{tag: pc, lastAddr: addr}
		return nil
	}
	stride := int64(addr) - int64(e.lastAddr)
	if stride == e.stride && stride != 0 {
		if e.conf < ipStrideConfMax {
			e.conf++
		}
	} else {
		e.stride = stride
		e.conf = 0
	}
	e.lastAddr = addr
	if e.conf >= ipStrideThreshold && e.stride != 0 {
		next := int64(addr)
		for d := 0; d < p.degree; d++ {
			next += e.stride
			if next <= 0 {
				break
			}
			p.buf = append(p.buf, AlignLine(uint64(next)))
		}
	}
	return p.buf
}

// ---------------------------------------------------------------------------
// Stream

// streamEntry tracks one detected sequential stream of cache lines.
type streamEntry struct {
	lastLine uint64
	hits     uint8 // consecutive sequential observations
	valid    bool
	lruClock uint64
}

const (
	streamTableSize = 16
	streamTrainHits = 2
)

type streamPrefetcher struct {
	table  [streamTableSize]streamEntry
	clock  uint64
	degree int
	buf    []uint64
}

// NewStream returns a stream prefetcher tracking up to 16 ascending
// streams and prefetching degree lines ahead once trained.
func NewStream(degree int) Prefetcher {
	if degree < 1 {
		degree = 1
	}
	return &streamPrefetcher{degree: degree, buf: make([]uint64, 0, degree)}
}

func (p *streamPrefetcher) Name() string { return "stream" }

func (p *streamPrefetcher) Observe(_, addr uint64, _ bool) []uint64 {
	line := addr / LineSize
	p.clock++
	p.buf = p.buf[:0]

	// Find a stream this access extends (same line or the next one).
	for i := range p.table {
		e := &p.table[i]
		if !e.valid {
			continue
		}
		switch line {
		case e.lastLine: // repeat access: keep the stream warm
			e.lruClock = p.clock
			return nil
		case e.lastLine + 1:
			e.lastLine = line
			e.lruClock = p.clock
			if e.hits < streamTrainHits {
				e.hits++
			}
			if e.hits >= streamTrainHits {
				for d := 1; d <= p.degree; d++ {
					p.buf = append(p.buf, (line+uint64(d))*LineSize)
				}
			}
			return p.buf
		}
	}

	// Allocate (replace the LRU entry) for a potential new stream.
	victim := 0
	var oldest uint64 = ^uint64(0)
	for i := range p.table {
		e := &p.table[i]
		if !e.valid {
			victim = i
			break
		}
		if e.lruClock < oldest {
			oldest = e.lruClock
			victim = i
		}
	}
	p.table[victim] = streamEntry{lastLine: line, valid: true, lruClock: p.clock}
	return nil
}

// ---------------------------------------------------------------------------
// Composition

type multiPrefetcher struct {
	parts []Prefetcher
	buf   []uint64
}

// Combine merges several prefetchers into one; duplicate proposals are
// deduplicated per observation.
func Combine(parts ...Prefetcher) Prefetcher {
	return &multiPrefetcher{parts: parts}
}

func (p *multiPrefetcher) Name() string { return "combined" }

func (p *multiPrefetcher) Observe(pc, addr uint64, miss bool) []uint64 {
	p.buf = p.buf[:0]
	for _, part := range p.parts {
		for _, a := range part.Observe(pc, addr, miss) {
			dup := false
			for _, b := range p.buf {
				if a == b {
					dup = true
					break
				}
			}
			if !dup {
				p.buf = append(p.buf, a)
			}
		}
	}
	return p.buf
}

// None is a Prefetcher that never prefetches.
type None struct{}

// Name identifies the null prefetcher.
func (None) Name() string { return "none" }

// Observe always returns no prefetches.
func (None) Observe(uint64, uint64, bool) []uint64 { return nil }
