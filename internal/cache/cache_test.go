package cache

import (
	"math/rand"
	"testing"
	"testing/quick"
)

// tiny builds a small cache for focused tests: 4 sets x 2 ways.
func tiny(t *testing.T, p Policy) *Cache {
	t.Helper()
	c, err := New("t", 4*2*LineSize, 2, p)
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func addrFor(set, tag int) uint64 {
	// 4 sets -> 2 set bits above the 6 line-offset bits.
	return uint64(tag)<<8 | uint64(set)<<6
}

func TestNewRejectsBadGeometry(t *testing.T) {
	cases := []struct {
		size, ways int
	}{
		{0, 4},
		{1024, 0},
		{100, 2},          // not a line multiple
		{6 * LineSize, 2}, // 3 sets, not a power of two
	}
	for _, c := range cases {
		if _, err := New("bad", c.size, c.ways, NewLRUPolicy()); err == nil {
			t.Errorf("New(%d,%d) accepted bad geometry", c.size, c.ways)
		}
	}
}

func TestGeometryAccessors(t *testing.T) {
	c := MustNew("llc", 2*1024*1024, 16, NewLRUPolicy())
	if c.Ways() != 16 {
		t.Errorf("ways %d", c.Ways())
	}
	if got, want := c.Sets(), 2*1024*1024/(16*LineSize); got != want {
		t.Errorf("sets %d, want %d", got, want)
	}
	if c.SizeBytes() != 2*1024*1024 {
		t.Errorf("size %d", c.SizeBytes())
	}
	if c.Name() != "llc" {
		t.Errorf("name %q", c.Name())
	}
}

func TestBasicHitMiss(t *testing.T) {
	c := tiny(t, NewLRUPolicy())
	a := addrFor(1, 5)
	if c.Access(a, false) {
		t.Fatal("cold access hit")
	}
	c.Fill(a, false, false)
	if !c.Access(a, false) {
		t.Fatal("post-fill access missed")
	}
	// Another address in the same line hits too.
	if !c.Access(a+63, false) {
		t.Fatal("same-line access missed")
	}
	s := c.Stats()
	if s.Accesses != 3 || s.Hits != 2 || s.Misses != 1 {
		t.Fatalf("stats %+v", s)
	}
}

func TestProbeDoesNotPerturb(t *testing.T) {
	c := tiny(t, NewLRUPolicy())
	a := addrFor(0, 1)
	c.Fill(a, false, false)
	before := c.Stats()
	if !c.Probe(a) {
		t.Fatal("probe missed resident line")
	}
	if c.Probe(addrFor(0, 9)) {
		t.Fatal("probe hit absent line")
	}
	if c.Stats() != before {
		t.Fatal("probe changed statistics")
	}
}

func TestLRUEviction(t *testing.T) {
	c := tiny(t, NewLRUPolicy())
	a, b, x := addrFor(2, 1), addrFor(2, 2), addrFor(2, 3)
	c.Fill(a, false, false)
	c.Fill(b, false, false)
	c.Access(a, false) // a is now MRU
	ev := c.Fill(x, false, false)
	if !ev.Valid || ev.Addr != AlignLine(b) {
		t.Fatalf("LRU evicted %+v, want %#x", ev, b)
	}
	if !c.Probe(a) || c.Probe(b) || !c.Probe(x) {
		t.Fatal("LRU contents wrong after eviction")
	}
}

func TestFIFOEvictsFirstInEvenIfHit(t *testing.T) {
	c := tiny(t, NewFIFOPolicy())
	a, b, x := addrFor(2, 1), addrFor(2, 2), addrFor(2, 3)
	c.Fill(a, false, false)
	c.Fill(b, false, false)
	c.Access(a, false) // hit must NOT protect a under FIFO
	ev := c.Fill(x, false, false)
	if !ev.Valid || ev.Addr != AlignLine(a) {
		t.Fatalf("FIFO evicted %+v, want %#x", ev, a)
	}
}

func TestRandomPolicyVictimRange(t *testing.T) {
	p := NewRandomPolicy(1)
	if err := p.Attach(4, 8); err != nil {
		t.Fatal(err)
	}
	seen := map[int]bool{}
	for i := 0; i < 400; i++ {
		v := p.Victim(0)
		if v < 0 || v >= 8 {
			t.Fatalf("victim %d out of range", v)
		}
		seen[v] = true
	}
	if len(seen) < 6 {
		t.Errorf("random victims covered only %d ways of 8", len(seen))
	}
}

func TestDirtyEvictionCountsWriteback(t *testing.T) {
	c := tiny(t, NewLRUPolicy())
	a, b, x := addrFor(3, 1), addrFor(3, 2), addrFor(3, 3)
	c.Fill(a, true, false) // dirty fill (write-allocate)
	c.Fill(b, false, false)
	ev := c.Fill(x, false, false)
	if !ev.Valid || !ev.Dirty || ev.Addr != AlignLine(a) {
		t.Fatalf("eviction %+v, want dirty %#x", ev, a)
	}
	if c.Stats().Writebacks != 1 {
		t.Fatalf("writebacks %d, want 1", c.Stats().Writebacks)
	}
}

func TestWriteHitDirties(t *testing.T) {
	c := tiny(t, NewLRUPolicy())
	a, b, x := addrFor(3, 1), addrFor(3, 2), addrFor(3, 3)
	c.Fill(a, false, false)
	c.Access(a, true) // write hit dirties the line
	c.Fill(b, false, false)
	c.Access(b, false)
	ev := c.Fill(x, false, false)
	if !ev.Dirty {
		t.Fatal("write-hit line evicted clean")
	}
}

func TestFillExistingLineIsNoEviction(t *testing.T) {
	c := tiny(t, NewLRUPolicy())
	a := addrFor(0, 1)
	c.Fill(a, false, false)
	ev := c.Fill(a, false, false)
	if ev.Valid {
		t.Fatalf("refill of resident line evicted %+v", ev)
	}
}

func TestInvalidateAndFlush(t *testing.T) {
	c := tiny(t, NewLRUPolicy())
	a, b := addrFor(0, 1), addrFor(1, 1)
	c.Fill(a, true, false)
	c.Fill(b, false, false)
	present, dirty := c.Invalidate(a)
	if !present || !dirty {
		t.Fatalf("invalidate = (%v,%v)", present, dirty)
	}
	if c.Probe(a) {
		t.Fatal("line survives invalidate")
	}
	c.Fill(a, true, false)
	if got := c.Flush(); got != 1 {
		t.Fatalf("flush dropped %d dirty lines, want 1", got)
	}
	if c.Probe(a) || c.Probe(b) {
		t.Fatal("lines survive flush")
	}
}

func TestPrefetchStats(t *testing.T) {
	c := tiny(t, NewLRUPolicy())
	a := addrFor(0, 1)
	c.Fill(a, false, true) // prefetch fill
	s := c.Stats()
	if s.PrefetchFills != 1 {
		t.Fatalf("prefetch fills %d", s.PrefetchFills)
	}
	c.Access(a, false)
	if c.Stats().PrefetchHits != 1 {
		t.Fatalf("prefetch hits %d", c.Stats().PrefetchHits)
	}
	// A second access is an ordinary hit.
	c.Access(a, false)
	if c.Stats().PrefetchHits != 1 {
		t.Fatal("prefetch hit counted twice")
	}
}

func TestMPK(t *testing.T) {
	s := Stats{Misses: 50}
	if got := s.MPK(10000); got != 5 {
		t.Errorf("MPK = %g, want 5", got)
	}
	if got := s.MPK(0); got != 0 {
		t.Errorf("MPK(0 instructions) = %g", got)
	}
}

func TestNewPolicyByName(t *testing.T) {
	for _, name := range append(PaperPolicies(), SRRIP, PLRU, SHIP) {
		p, err := NewPolicy(name, 1)
		if err != nil {
			t.Fatalf("NewPolicy(%s): %v", name, err)
		}
		if p.Name() != string(name) {
			t.Errorf("policy name %q, want %q", p.Name(), name)
		}
	}
	if _, err := NewPolicy("CLOCK", 1); err == nil {
		t.Error("NewPolicy accepted unknown name")
	}
}

func TestPaperPoliciesOrder(t *testing.T) {
	want := []PolicyName{LRU, Random, FIFO, DIP, DRRIP}
	got := PaperPolicies()
	if len(got) != len(want) {
		t.Fatalf("%d policies", len(got))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("policy %d = %s, want %s", i, got[i], want[i])
		}
	}
}

// A cyclic scan over a working set slightly larger than the cache is the
// canonical LRU pathology: LRU gets ~0 hits while BIP-style insertion
// (DIP) retains part of the set. DIP must beat LRU here.
func TestDIPBeatsLRUOnThrash(t *testing.T) {
	run := func(p Policy) Stats {
		c := MustNew("x", 64*1024, 16, p)       // 64 KB
		lines := (64 * 1024 / LineSize) * 5 / 4 // 1.25x capacity
		for pass := 0; pass < 30; pass++ {
			for i := 0; i < lines; i++ {
				addr := uint64(i) * LineSize
				if !c.Access(addr, false) {
					c.Fill(addr, false, false)
				}
			}
		}
		return c.Stats()
	}
	lru := run(NewLRUPolicy())
	dip := run(NewDIPPolicy(1))
	if lru.Hits >= lru.Accesses/10 {
		t.Fatalf("LRU unexpectedly hit %d/%d on thrash", lru.Hits, lru.Accesses)
	}
	if dip.Hits <= lru.Hits*2 {
		t.Errorf("DIP hits %d not clearly above LRU hits %d on thrashing scan", dip.Hits, lru.Hits)
	}
}

// DRRIP should likewise outperform LRU on a thrashing scan.
func TestDRRIPBeatsLRUOnThrash(t *testing.T) {
	run := func(p Policy) Stats {
		c := MustNew("x", 64*1024, 16, p)
		lines := (64 * 1024 / LineSize) * 5 / 4
		for pass := 0; pass < 30; pass++ {
			for i := 0; i < lines; i++ {
				addr := uint64(i) * LineSize
				if !c.Access(addr, false) {
					c.Fill(addr, false, false)
				}
			}
		}
		return c.Stats()
	}
	lru := run(NewLRUPolicy())
	drrip := run(NewDRRIPPolicy(1))
	if drrip.Hits <= lru.Hits*2 {
		t.Errorf("DRRIP hits %d not clearly above LRU hits %d", drrip.Hits, lru.Hits)
	}
}

// On a reuse-friendly working set that fits, all policies should converge
// to near-100% hits; LRU must not lose to RND.
func TestPoliciesOnFittingWorkingSet(t *testing.T) {
	for _, name := range PaperPolicies() {
		c := MustNew("x", 64*1024, 16, MustNewPolicy(name, 2))
		lines := (64 * 1024 / LineSize) / 2
		for pass := 0; pass < 20; pass++ {
			for i := 0; i < lines; i++ {
				addr := uint64(i) * LineSize
				if !c.Access(addr, false) {
					c.Fill(addr, false, false)
				}
			}
		}
		s := c.Stats()
		hitRate := float64(s.Hits) / float64(s.Accesses)
		if hitRate < 0.9 {
			t.Errorf("%s: hit rate %.3f on fitting working set, want > 0.9", name, hitRate)
		}
	}
}

// SRRIP core invariant: victim always has distant RRPV after aging.
func TestRRIPVictimTerminates(t *testing.T) {
	p := NewSRRIPPolicy().(*srripPolicy)
	if err := p.Attach(2, 4); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 4; i++ {
		p.OnFill(0, i)
	}
	p.OnHit(0, 2) // rrpv[2] = 0
	v := p.Victim(0)
	if v == 2 {
		t.Error("SRRIP evicted the just-hit line")
	}
	if v < 0 || v >= 4 {
		t.Errorf("victim %d out of range", v)
	}
}

func TestDIPLeaderSetsDriveSelector(t *testing.T) {
	p := NewDIPPolicy(3).(*dipPolicy)
	if err := p.Attach(64, 4); err != nil {
		t.Fatal(err)
	}
	start := p.PSEL()
	// Misses in LRU leader sets (set 0, 32) push PSEL up.
	for i := 0; i < 100; i++ {
		p.OnMiss(0)
	}
	if p.PSEL() <= start {
		t.Error("PSEL did not increase on LRU-leader misses")
	}
	// Misses in BIP leader sets (set 16, 48) push PSEL down.
	for i := 0; i < 300; i++ {
		p.OnMiss(16)
	}
	if p.PSEL() >= start {
		t.Error("PSEL did not decrease on BIP-leader misses")
	}
	// Follower misses leave PSEL alone.
	mid := p.PSEL()
	p.OnMiss(5)
	if p.PSEL() != mid {
		t.Error("follower miss moved PSEL")
	}
}

func TestVictimAlwaysInRangeProperty(t *testing.T) {
	f := func(seed int64, ops []byte) bool {
		for _, name := range append(PaperPolicies(), SRRIP) {
			p := MustNewPolicy(name, seed)
			if err := p.Attach(8, 4); err != nil {
				return false
			}
			// Fill everything, then replay random hit/miss/fill traffic.
			for s := 0; s < 8; s++ {
				for w := 0; w < 4; w++ {
					p.OnFill(s, w)
				}
			}
			for _, b := range ops {
				set := int(b) % 8
				switch b % 3 {
				case 0:
					p.OnHit(set, int(b/8)%4)
				case 1:
					p.OnMiss(set)
				case 2:
					v := p.Victim(set)
					if v < 0 || v >= 4 {
						return false
					}
					p.OnFill(set, v)
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

// Property: cache contents after random traffic contain every address the
// last fill installed, and Access/Fill keep hit+miss == accesses.
func TestCacheAccountingProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	for trial := 0; trial < 30; trial++ {
		c := MustNew("x", 8*1024, 4, MustNewPolicy(PaperPolicies()[trial%5], int64(trial)))
		for i := 0; i < 3000; i++ {
			addr := uint64(rng.Intn(1 << 16))
			if !c.Access(addr, rng.Intn(4) == 0) {
				c.Fill(addr, false, false)
				if !c.Probe(addr) {
					t.Fatal("line absent right after fill")
				}
			}
		}
		s := c.Stats()
		if s.Hits+s.Misses != s.Accesses {
			t.Fatalf("accounting broken: %+v", s)
		}
	}
}
