package cache

import (
	"testing"
)

// shipCache builds a small cache with a SHiP policy for direct driving.
func shipCache(t *testing.T) (*Cache, *shipPolicy) {
	t.Helper()
	p := NewSHIPPolicy().(*shipPolicy)
	c, err := New("L", 16<<10, 4, p) // 64 sets x 4 ways
	if err != nil {
		t.Fatal(err)
	}
	return c, p
}

// access simulates a demand access with fill-on-miss.
func access(c *Cache, addr uint64) bool {
	hit := c.Access(addr, false)
	if !hit {
		c.Fill(addr, false, false)
	}
	return hit
}

// Lines that conflict within a set and are never re-referenced must drive
// their region's SHCT counter to zero (dead-on-arrival prediction).
func TestSHIPLearnsStreamingSignature(t *testing.T) {
	c, p := shipCache(t)
	region := uint64(2 << 30)
	// Same set every time (stride = sets*LineSize), never re-referenced
	// before eviction: each eviction sees outcome=false.
	for i := 0; i < 2048; i++ {
		access(c, region+uint64(i)*LineSize*uint64(c.Sets()))
	}
	if got := p.SHCTCounter(region); got != 0 {
		t.Errorf("streaming signature counter = %d, want 0", got)
	}
}

func TestSHIPProtectsReusedSignature(t *testing.T) {
	c, p := shipCache(t)
	// A small hot set, re-referenced constantly: its signature must
	// saturate high.
	hot := uint64(3 << 30)
	for rep := 0; rep < 50; rep++ {
		for i := 0; i < 8; i++ {
			access(c, hot+uint64(i)*LineSize)
		}
	}
	if got := p.SHCTCounter(hot); got < shipCtrMax {
		t.Errorf("hot signature counter = %d, want saturated %d", got, shipCtrMax)
	}
}

// Mixed workload: a hot working set plus a one-use scan through the same
// sets. SHiP must keep the hot lines alive better than SRRIP.
func TestSHIPBeatsSRRIPOnMixedScan(t *testing.T) {
	run := func(pol Policy) float64 {
		c, err := New("L", 16<<10, 4, pol)
		if err != nil {
			t.Fatal(err)
		}
		hot := uint64(4 << 30)  // 32 hot lines, fits easily
		scan := uint64(8 << 30) // endless one-use scan
		scanPos := uint64(0)
		var hotAcc, hotHits uint64
		for rep := 0; rep < 6000; rep++ {
			h := hot + (uint64(rep)%32)*LineSize
			if c.Access(h, false) {
				hotHits++
			} else {
				c.Fill(h, false, false)
			}
			hotAcc++
			// Eight scan accesses per hot access: between two touches of
			// a given hot line its set sees ~4 scan fills, enough to
			// evict a 4-way LRU set but not a scan-resistant one.
			for s := 0; s < 8; s++ {
				a := scan + scanPos*LineSize
				scanPos++
				if !c.Access(a, false) {
					c.Fill(a, false, false)
				}
			}
		}
		return float64(hotHits) / float64(hotAcc)
	}
	srrip := run(NewSRRIPPolicy())
	ship := run(NewSHIPPolicy())
	lru := run(NewLRUPolicy())
	// At this pollution level the hot set thrashes completely under LRU
	// and even under SRRIP (the scan keeps every set aged); SHiP's
	// dead-on-arrival insertion is the only thing that keeps the hot
	// lines resident. This is exactly the access pattern the SHiP paper
	// motivates.
	if ship < srrip+0.5 {
		t.Errorf("SHiP hot-set hit rate %.3f not clearly above SRRIP %.3f under scan pollution", ship, srrip)
	}
	if ship < lru+0.5 {
		t.Errorf("SHiP hot-set hit rate %.3f not clearly above LRU %.3f under scan pollution", ship, lru)
	}
	if ship < 0.8 {
		t.Errorf("SHiP hot-set hit rate %.3f; the hot set should be mostly resident", ship)
	}
}

func TestSHIPConstructibleByName(t *testing.T) {
	p, err := NewPolicy(SHIP, 0)
	if err != nil {
		t.Fatal(err)
	}
	if p.Name() != "SHiP" {
		t.Errorf("Name = %q", p.Name())
	}
	if _, ok := p.(AddressAware); !ok {
		t.Error("SHiP must be AddressAware")
	}
	// And usable end to end in a cache.
	c := MustNew("L", 8<<10, 4, p)
	for i := 0; i < 1000; i++ {
		access(c, uint64(i%100)*LineSize)
	}
	if st := c.Stats(); st.Hits == 0 {
		t.Error("no hits on a reusing stream")
	}
}

func TestSHIPVictimAlwaysValid(t *testing.T) {
	p := NewSHIPPolicy().(*shipPolicy)
	c := MustNew("L", 4<<10, 4, p)
	for i := 0; i < 5000; i++ {
		access(c, uint64(i*97)*LineSize)
	}
	// The rripCore victim loop guarantees termination; reaching here
	// without a panic and with sane stats is the assertion.
	st := c.Stats()
	if st.Accesses != 5000 {
		t.Fatalf("accesses %d", st.Accesses)
	}
}
