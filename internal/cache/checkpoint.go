package cache

// Checkpoint support: every piece of mutable cache state — the packed
// line strips, the replacement policy metadata (including the position
// of seeded random streams) and the prefetcher tables — can be deep-
// copied into a reusable State buffer and restored bit-exactly later.
// Snapshot and Restore are allocation-free once the buffer has grown to
// its steady-state size, so periodic checkpoints do not perturb the
// allocation-free simulation hot paths they interleave with.
//
// All State fields are exported so a checkpoint can be persisted with
// encoding/gob for crash-resume; the types themselves stay internal.

import "math/rand"

// RNGState records the position of a policy's seeded pseudo-random
// stream: the seed and the number of draws consumed from the underlying
// source. Restoring re-seeds the source in place and replays the draws,
// reproducing the stream position without copying rand internals.
type RNGState struct {
	Seed  int64
	Draws uint64
}

// countingSource wraps a rand source and counts the values drawn from
// it. Counting at the source level (rather than per Intn call) makes
// the count exact regardless of how many source draws a derived method
// consumes, so replaying Draws source steps always lands on the same
// position.
type countingSource struct {
	src   rand.Source64
	draws uint64
}

func (s *countingSource) Int63() int64    { s.draws++; return s.src.Int63() }
func (s *countingSource) Uint64() uint64  { s.draws++; return s.src.Uint64() }
func (s *countingSource) Seed(seed int64) { s.src.Seed(seed) }

// seededRand is the rand.Rand the randomized policies draw from, with a
// snapshot/restore handle on its position.
type seededRand struct {
	*rand.Rand
	seed int64
	cs   countingSource
}

func newSeededRand(seed int64) *seededRand {
	r := &seededRand{seed: seed}
	r.cs.src = rand.NewSource(seed).(rand.Source64)
	r.Rand = rand.New(&r.cs)
	return r
}

func (r *seededRand) state() RNGState { return RNGState{Seed: r.seed, Draws: r.cs.draws} }

// setState re-seeds the source in place (no allocation) and burns draws
// to reach the recorded position. Policy RNG consumption is a small
// fraction of fills, so the replay is far cheaper than the simulation
// that produced it.
func (r *seededRand) setState(s RNGState) {
	r.cs.src.Seed(s.Seed)
	r.seed = s.Seed
	for i := uint64(0); i < s.Draws; i++ {
		r.cs.src.Int63()
	}
	r.cs.draws = s.Draws
}

// PolicyState is a reusable snapshot buffer covering every built-in
// replacement policy. It is a union: each policy uses the fields its
// metadata needs and ignores the rest, so one buffer type serves LRU
// stamps, DIP's signed stamps and selector, RRIP's re-reference values,
// PLRU's tree bits and SHiP's signature tables alike.
type PolicyState struct {
	U64   []uint64 // LRU/FIFO stamps
	I64   []int64  // DIP stamps
	U8    []uint8  // RRPV arrays (SRRIP/DRRIP/SHiP)
	U8b   []uint8  // SHiP SHCT
	U16   []uint16 // SHiP per-line signatures
	Bools []bool   // PLRU tree bits (flattened) / SHiP outcome bits
	Clock uint64
	Floor int64
	PSEL  int
	Pend  uint64 // SHiP's pending observed address
	RNG   RNGState
}

// policyCheckpointer is implemented by every built-in policy. The
// methods are unexported: checkpointing flows through Cache.Snapshot /
// Cache.Restore, which require the attached policy to implement this.
type policyCheckpointer interface {
	snapshotState(into *PolicyState)
	restoreState(from *PolicyState)
}

// ---------------------------------------------------------------------------
// Per-policy implementations

func (p *lruPolicy) snapshotState(into *PolicyState) {
	into.Clock = p.clock
	into.U64 = append(into.U64[:0], p.stamps...)
}

func (p *lruPolicy) restoreState(from *PolicyState) {
	p.clock = from.Clock
	copy(p.stamps, from.U64)
}

func (p *fifoPolicy) snapshotState(into *PolicyState) {
	into.Clock = p.clock
	into.U64 = append(into.U64[:0], p.stamps...)
}

func (p *fifoPolicy) restoreState(from *PolicyState) {
	p.clock = from.Clock
	copy(p.stamps, from.U64)
}

func (p *randomPolicy) snapshotState(into *PolicyState) {
	into.RNG = p.rng.state()
}

func (p *randomPolicy) restoreState(from *PolicyState) {
	p.rng.setState(from.RNG)
}

func (p *dipPolicy) snapshotState(into *PolicyState) {
	into.Clock = uint64(p.clock)
	into.Floor = p.floor
	into.PSEL = p.psel
	into.I64 = append(into.I64[:0], p.stamps...)
	into.RNG = p.rng.state()
}

func (p *dipPolicy) restoreState(from *PolicyState) {
	p.clock = int64(from.Clock)
	p.floor = from.Floor
	p.psel = from.PSEL
	copy(p.stamps, from.I64)
	p.rng.setState(from.RNG)
}

func (p *srripPolicy) snapshotState(into *PolicyState) {
	into.U8 = append(into.U8[:0], p.rrpv...)
}

func (p *srripPolicy) restoreState(from *PolicyState) {
	copy(p.rrpv, from.U8)
}

func (p *drripPolicy) snapshotState(into *PolicyState) {
	into.U8 = append(into.U8[:0], p.rrpv...)
	into.PSEL = p.psel
	into.RNG = p.rng.state()
}

func (p *drripPolicy) restoreState(from *PolicyState) {
	copy(p.rrpv, from.U8)
	p.psel = from.PSEL
	p.rng.setState(from.RNG)
}

func (p *plruPolicy) snapshotState(into *PolicyState) {
	into.Bools = into.Bools[:0]
	for _, set := range p.bits {
		into.Bools = append(into.Bools, set...)
	}
}

func (p *plruPolicy) restoreState(from *PolicyState) {
	off := 0
	for _, set := range p.bits {
		copy(set, from.Bools[off:off+len(set)])
		off += len(set)
	}
}

func (p *shipPolicy) snapshotState(into *PolicyState) {
	into.U8 = append(into.U8[:0], p.rrpv...)
	into.U8b = append(into.U8b[:0], p.shct...)
	into.U16 = append(into.U16[:0], p.sig...)
	into.Bools = append(into.Bools[:0], p.reRef...)
	into.Pend = p.pending
}

func (p *shipPolicy) restoreState(from *PolicyState) {
	copy(p.rrpv, from.U8)
	copy(p.shct, from.U8b)
	copy(p.sig, from.U16)
	copy(p.reRef, from.Bools)
	p.pending = from.Pend
}

// ---------------------------------------------------------------------------
// Cache snapshot/restore

// State is a reusable deep-copy buffer for one Cache: line strips,
// content generation, statistics and the attached policy's metadata.
type State struct {
	Lines  []line
	Gen    uint64
	Stats  Stats
	Policy PolicyState
}

// Snapshot deep-copies the cache's mutable state into the buffer,
// reusing its backing arrays (zero allocations once grown). The attached
// policy must be one of the built-ins; a foreign policy panics, because
// a silently partial snapshot would corrupt restored runs.
func (c *Cache) Snapshot(into *State) {
	into.Lines = append(into.Lines[:0], c.lines...)
	into.Gen = c.gen
	into.Stats = c.stats
	cp, ok := c.policy.(policyCheckpointer)
	if !ok {
		panic("cache " + c.name + ": policy " + c.policy.Name() + " does not support checkpointing")
	}
	cp.snapshotState(&into.Policy)
}

// Restore overwrites the cache's mutable state from a snapshot taken
// from a cache of identical geometry and policy kind. It allocates
// nothing: contents are copied into the existing arrays.
func (c *Cache) Restore(from *State) {
	if len(from.Lines) != len(c.lines) {
		panic("cache " + c.name + ": restoring a snapshot of different geometry")
	}
	copy(c.lines, from.Lines)
	c.gen = from.Gen
	c.stats = from.Stats
	cp, ok := c.policy.(policyCheckpointer)
	if !ok {
		panic("cache " + c.name + ": policy " + c.policy.Name() + " does not support checkpointing")
	}
	cp.restoreState(&from.Policy)
}

// SetPolicy replaces the replacement policy with a freshly attached one,
// leaving cache contents (lines, dirtiness, statistics) untouched. This
// is the policy-variant fan-out primitive: a sweep restores a shared
// warmup snapshot and swaps in each candidate policy's virgin metadata,
// keeping the warmed working set.
func (c *Cache) SetPolicy(p Policy) error {
	if err := p.Attach(c.sets, c.ways); err != nil {
		return err
	}
	c.policy = p
	c.addrObs, _ = p.(AddressAware)
	c.lru, _ = p.(*lruPolicy)
	return nil
}

// ---------------------------------------------------------------------------
// Prefetcher snapshot/restore
//
// The prefetchers' scratch proposal buffers are deliberately not part of
// the state: their contents never survive an Observe call. The training
// tables are the state.

// StrideNextState snapshots the DL1 pairing (IP-stride + next-line; the
// next-line part is stateless).
type StrideNextState struct {
	Stride [ipStrideTableSize]ipStrideEntry
}

// Snapshot copies the training tables into the buffer.
func (p *StrideNextPrefetcher) Snapshot(into *StrideNextState) {
	into.Stride = p.stride.table
}

// Restore overwrites the training tables from the buffer.
func (p *StrideNextPrefetcher) Restore(from *StrideNextState) {
	p.stride.table = from.Stride
}

// StrideStreamState snapshots the LLC pairing (IP-stride + stream).
type StrideStreamState struct {
	Stride [ipStrideTableSize]ipStrideEntry
	Keys   [streamTableSize]uint64
	Clocks [streamTableSize]uint64
	Hits   [streamTableSize]uint8
	Clock  uint64
}

// Snapshot copies the training tables into the buffer.
func (p *StrideStreamPrefetcher) Snapshot(into *StrideStreamState) {
	into.Stride = p.stride.table
	into.Keys = p.stream.keys
	into.Clocks = p.stream.clocks
	into.Hits = p.stream.hits
	into.Clock = p.stream.clock
}

// Restore overwrites the training tables from the buffer.
func (p *StrideStreamPrefetcher) Restore(from *StrideStreamState) {
	p.stride.table = from.Stride
	p.stream.keys = from.Keys
	p.stream.clocks = from.Clocks
	p.stream.hits = from.Hits
	p.stream.clock = from.Clock
}
