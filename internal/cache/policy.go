package cache

import "fmt"

// Policy is a replacement policy attached to one cache. Implementations
// keep per-set metadata; the cache calls the hooks on demand hits, demand
// misses and fills. Victim is only called when every way of the set is
// valid.
type Policy interface {
	// Name identifies the policy ("LRU", "DIP", ...).
	Name() string
	// Attach sizes the metadata. It is called exactly once, by New.
	Attach(sets, ways int) error
	// OnHit records a demand hit on (set, way).
	OnHit(set, way int)
	// OnMiss records a demand miss in set (used by set-dueling policies).
	OnMiss(set int)
	// Victim selects the way to evict from a full set.
	Victim(set int) int
	// OnFill records that a new line was installed at (set, way).
	OnFill(set, way int)
}

// PolicyName enumerates the shipped policies.
type PolicyName string

// The five policies compared in the paper, plus SRRIP which DRRIP builds
// on and which is useful for ablations.
const (
	LRU    PolicyName = "LRU"
	Random PolicyName = "RND"
	FIFO   PolicyName = "FIFO"
	DIP    PolicyName = "DIP"
	DRRIP  PolicyName = "DRRIP"
	SRRIP  PolicyName = "SRRIP"
)

// PaperPolicies lists the five policies of the paper's case study, in the
// paper's order.
func PaperPolicies() []PolicyName {
	return []PolicyName{LRU, Random, FIFO, DIP, DRRIP}
}

// NewPolicy constructs a policy by name. seed feeds policies that need
// randomness (RND, and the BIP/BRRIP throttles of DIP/DRRIP).
func NewPolicy(name PolicyName, seed int64) (Policy, error) {
	switch name {
	case LRU:
		return NewLRUPolicy(), nil
	case Random:
		return NewRandomPolicy(seed), nil
	case FIFO:
		return NewFIFOPolicy(), nil
	case DIP:
		return NewDIPPolicy(seed), nil
	case DRRIP:
		return NewDRRIPPolicy(seed), nil
	case SRRIP:
		return NewSRRIPPolicy(), nil
	case PLRU:
		return NewPLRUPolicy(), nil
	case SHIP:
		return NewSHIPPolicy(), nil
	}
	return nil, fmt.Errorf("cache: unknown policy %q", name)
}

// MustNewPolicy is NewPolicy for known-valid names.
func MustNewPolicy(name PolicyName, seed int64) Policy {
	p, err := NewPolicy(name, seed)
	if err != nil {
		panic(err)
	}
	return p
}

// ---------------------------------------------------------------------------
// LRU

// lruPolicy tracks a global use counter per line; the victim is the line
// with the smallest stamp. Touches vastly outnumber victim selections
// (every hit touches; only evictions scan), so the stamp write is the
// operation to keep cheap.
type lruPolicy struct {
	ways   int
	clock  uint64
	stamps []uint64
}

// NewLRUPolicy returns a least-recently-used policy.
func NewLRUPolicy() Policy { return &lruPolicy{} }

func (p *lruPolicy) Name() string { return string(LRU) }

func (p *lruPolicy) Attach(sets, ways int) error {
	if sets <= 0 || ways <= 0 {
		return fmt.Errorf("lru: bad geometry %dx%d", sets, ways)
	}
	p.ways = ways
	p.stamps = make([]uint64, sets*ways)
	return nil
}

func (p *lruPolicy) touch(set, way int) {
	p.clock++
	p.stamps[set*p.ways+way] = p.clock
}

func (p *lruPolicy) OnHit(set, way int)  { p.touch(set, way) }
func (p *lruPolicy) OnMiss(int)          {}
func (p *lruPolicy) OnFill(set, way int) { p.touch(set, way) }

func (p *lruPolicy) Victim(set int) int {
	base := set * p.ways
	best, bestStamp := 0, p.stamps[base]
	for w := 1; w < p.ways; w++ {
		if s := p.stamps[base+w]; s < bestStamp {
			best, bestStamp = w, s
		}
	}
	return best
}

// ---------------------------------------------------------------------------
// Random

type randomPolicy struct {
	ways int
	rng  *seededRand
}

// NewRandomPolicy returns a policy that evicts a uniformly random way.
func NewRandomPolicy(seed int64) Policy {
	return &randomPolicy{rng: newSeededRand(seed)}
}

func (p *randomPolicy) Name() string { return string(Random) }

func (p *randomPolicy) Attach(sets, ways int) error {
	if sets <= 0 || ways <= 0 {
		return fmt.Errorf("rnd: bad geometry %dx%d", sets, ways)
	}
	p.ways = ways
	return nil
}

func (p *randomPolicy) OnHit(int, int)  {}
func (p *randomPolicy) OnMiss(int)      {}
func (p *randomPolicy) OnFill(int, int) {}
func (p *randomPolicy) Victim(int) int  { return p.rng.Intn(p.ways) }

// ---------------------------------------------------------------------------
// FIFO

type fifoPolicy struct {
	ways   int
	clock  uint64
	stamps []uint64 // fill order; hits do not refresh
}

// NewFIFOPolicy returns a first-in-first-out policy.
func NewFIFOPolicy() Policy { return &fifoPolicy{} }

func (p *fifoPolicy) Name() string { return string(FIFO) }

func (p *fifoPolicy) Attach(sets, ways int) error {
	if sets <= 0 || ways <= 0 {
		return fmt.Errorf("fifo: bad geometry %dx%d", sets, ways)
	}
	p.ways = ways
	p.stamps = make([]uint64, sets*ways)
	return nil
}

func (p *fifoPolicy) OnHit(int, int) {}
func (p *fifoPolicy) OnMiss(int)     {}

func (p *fifoPolicy) OnFill(set, way int) {
	p.clock++
	p.stamps[set*p.ways+way] = p.clock
}

func (p *fifoPolicy) Victim(set int) int {
	base := set * p.ways
	best, bestStamp := 0, p.stamps[base]
	for w := 1; w < p.ways; w++ {
		if s := p.stamps[base+w]; s < bestStamp {
			best, bestStamp = w, s
		}
	}
	return best
}
