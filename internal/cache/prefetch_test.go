package cache

import "testing"

func TestNextLine(t *testing.T) {
	p := NewNextLine(true)
	if got := p.Observe(0, 0x1000, false); len(got) != 0 {
		t.Errorf("miss-only next-line fired on hit: %v", got)
	}
	got := p.Observe(0, 0x1010, true)
	if len(got) != 1 || got[0] != 0x1040 {
		t.Errorf("next-line proposed %v, want [0x1040]", got)
	}
	p2 := NewNextLine(false)
	if got := p2.Observe(0, 0x2000, false); len(got) != 1 || got[0] != 0x2040 {
		t.Errorf("always next-line proposed %v", got)
	}
}

func TestIPStrideLocksOntoStride(t *testing.T) {
	p := NewIPStride(2)
	pc := uint64(0x400100)
	var got []uint64
	addr := uint64(0x10000)
	for i := 0; i < 6; i++ {
		got = p.Observe(pc, addr, true)
		addr += 128
	}
	// After several constant-stride observations, prefetches fire 2 ahead.
	if len(got) != 2 {
		t.Fatalf("stride prefetcher proposed %v, want 2 addresses", got)
	}
	last := addr - 128 // address of the final observation
	if got[0] != AlignLine(last+128) || got[1] != AlignLine(last+256) {
		t.Errorf("stride proposals %#x,%#x want %#x,%#x", got[0], got[1], last+128, last+256)
	}
}

func TestIPStrideDistinguishesPCs(t *testing.T) {
	p := NewIPStride(1)
	// Interleave two PCs with different strides; both must train.
	a, b := uint64(0x1000), uint64(0x900000)
	var gotA, gotB []uint64
	for i := 0; i < 8; i++ {
		// Observe's result aliases an internal buffer, so copy before the
		// next call.
		gotA = append(gotA[:0], p.Observe(0x400100, a, true)...)
		gotB = append(gotB[:0], p.Observe(0x400200, b, true)...)
		a += 64
		b += 256
	}
	if len(gotA) != 1 || gotA[0] != AlignLine(a-64+64) {
		t.Errorf("PC A proposals %v", gotA)
	}
	if len(gotB) != 1 || gotB[0] != AlignLine(b-256+256) {
		t.Errorf("PC B proposals %v", gotB)
	}
}

func TestIPStrideResetsOnIrregular(t *testing.T) {
	p := NewIPStride(1)
	pc := uint64(0x400100)
	addr := uint64(0x10000)
	for i := 0; i < 5; i++ {
		p.Observe(pc, addr, true)
		addr += 64
	}
	// Break the pattern: confidence must drop, no immediate prefetch on
	// the next (new-stride) access.
	if got := p.Observe(pc, 0x999999, true); len(got) != 0 {
		t.Errorf("prefetch after pattern break: %v", got)
	}
	if got := p.Observe(pc, 0x99A000, true); len(got) != 0 {
		t.Errorf("prefetch before re-training: %v", got)
	}
}

func TestStreamDetectsAscendingLines(t *testing.T) {
	p := NewStream(4)
	base := uint64(0x40000)
	var got []uint64
	for i := 0; i < 5; i++ {
		got = p.Observe(0, base+uint64(i)*LineSize, true)
	}
	if len(got) != 4 {
		t.Fatalf("stream proposed %d addresses, want 4", len(got))
	}
	wantFirst := base + 5*LineSize
	if got[0] != wantFirst {
		t.Errorf("first stream proposal %#x, want %#x", got[0], wantFirst)
	}
}

func TestStreamIgnoresRandomTraffic(t *testing.T) {
	p := NewStream(4)
	addrs := []uint64{0x1000, 0x88000, 0x3000, 0xF2000, 0x51000}
	for _, a := range addrs {
		if got := p.Observe(0, a, true); len(got) != 0 {
			t.Errorf("stream fired on random access %#x: %v", a, got)
		}
	}
}

func TestStreamTracksMultipleStreams(t *testing.T) {
	p := NewStream(1)
	a, b := uint64(0x10000), uint64(0x900000)
	var gotA, gotB []uint64
	for i := 0; i < 4; i++ {
		gotA = p.Observe(0, a, true)
		gotB = p.Observe(0, b, true)
		a += LineSize
		b += LineSize
	}
	if len(gotA) != 1 || len(gotB) != 1 {
		t.Errorf("concurrent streams proposals: %v / %v", gotA, gotB)
	}
}

func TestCombineDeduplicates(t *testing.T) {
	p := Combine(NewNextLine(false), NewNextLine(false))
	got := p.Observe(0, 0x1000, true)
	if len(got) != 1 {
		t.Errorf("combined proposals %v, want deduplicated single", got)
	}
}

func TestNone(t *testing.T) {
	var p None
	if got := p.Observe(1, 2, true); got != nil {
		t.Errorf("None proposed %v", got)
	}
	if p.Name() != "none" {
		t.Errorf("None name %q", p.Name())
	}
}
