package cache

// SHiP — Signature-based Hit Predictor (Wu et al., MICRO 2011), the
// natural successor of the paper's DRRIP and a useful seventh policy for
// replacement ablations. This is the SHiP-mem variant: the signature is
// the memory region of the line (16 kB regions), hashed into a table of
// saturating counters (SHCT). Lines from signatures whose history says
// "never re-referenced" are inserted at distant RRPV and fall out
// quickly; everything else inserts like SRRIP.
//
// Per line, SHiP stores the filling signature and an outcome bit: a hit
// sets the bit and strengthens the signature's counter; an eviction with
// the bit still clear weakens it.

const (
	shipSHCTBits   = 14 // 16 k counters
	shipCtrMax     = 7  // 3-bit counters
	shipRegionBits = 14 // signature = line address / 16 kB region
)

// SHIP is the policy name of the SHiP-mem replacement policy.
const SHIP PolicyName = "SHiP"

type shipPolicy struct {
	rripCore
	shct     []uint8
	sig      []uint16 // filling signature per line
	reRef    []bool   // outcome bit per line
	pending  uint64   // line address observed before the next hook
	shctMask uint64
}

// NewSHIPPolicy returns a SHiP-mem policy over an SRRIP backbone.
func NewSHIPPolicy() Policy {
	return &shipPolicy{
		shct:     make([]uint8, 1<<shipSHCTBits),
		shctMask: 1<<shipSHCTBits - 1,
	}
}

func (p *shipPolicy) Name() string { return string(SHIP) }

func (p *shipPolicy) Attach(sets, ways int) error {
	if err := p.attach(sets, ways); err != nil {
		return err
	}
	p.sig = make([]uint16, sets*ways)
	p.reRef = make([]bool, sets*ways)
	// Start counters at a weakly-reused midpoint so cold signatures
	// insert conservatively (like SRRIP) until evidence accumulates.
	for i := range p.shct {
		p.shct[i] = 1
	}
	return nil
}

// ObserveAddr implements AddressAware: the cache announces the line
// address involved in the next hook.
func (p *shipPolicy) ObserveAddr(addr uint64) { p.pending = addr }

// signature maps the pending address to its SHCT index.
func (p *shipPolicy) signature() uint16 {
	region := p.pending >> shipRegionBits
	h := region * 0x9E3779B97F4A7C15
	return uint16(h >> (64 - shipSHCTBits))
}

func (p *shipPolicy) OnHit(set, way int) {
	p.hit(set, way)
	idx := set*p.ways + way
	if !p.reRef[idx] {
		p.reRef[idx] = true
		if ctr := &p.shct[p.sig[idx]]; *ctr < shipCtrMax {
			*ctr++
		}
	}
}

func (p *shipPolicy) OnMiss(int) {}

func (p *shipPolicy) Victim(set int) int {
	way := p.victim(set)
	// The evicted line trains its signature: never re-referenced means
	// the signature's lines are single-use.
	idx := set*p.ways + way
	if !p.reRef[idx] {
		if ctr := &p.shct[p.sig[idx]]; *ctr > 0 {
			*ctr--
		}
	}
	return way
}

func (p *shipPolicy) OnFill(set, way int) {
	idx := set*p.ways + way
	sig := p.signature()
	p.sig[idx] = sig
	p.reRef[idx] = false
	if p.shct[sig] == 0 {
		p.rrpv[idx] = rripMaxRRPV // predicted dead on arrival
	} else {
		p.rrpv[idx] = rripMaxRRPV - 1 // SRRIP insertion
	}
}

// SHCTCounter exposes one counter for tests.
func (p *shipPolicy) SHCTCounter(addr uint64) uint8 {
	p.pending = addr
	return p.shct[p.signature()]
}
