package cache

import "fmt"

// DIP implements Dynamic Insertion Policy (Qureshi et al., ISCA 2007):
// set-dueling between traditional LRU insertion (at MRU) and Bimodal
// Insertion (BIP, which inserts at the LRU position except for a 1/32
// probability of MRU insertion). A saturating PSEL counter driven by
// misses in dedicated leader sets picks the winner for follower sets.

// dipLeaderPeriod spaces the leader sets: within every 32-set
// constituency, one set leads for LRU insertion and one for BIP.
const dipLeaderPeriod = 32

// dipPSELMax is the saturating limit of the 10-bit policy selector.
const dipPSELMax = 1023

// bipEpsilonDenominator gives BIP's 1/32 MRU-insertion probability.
const bipEpsilonDenominator = 32

type dipPolicy struct {
	sets, ways int
	clock      int64   // increments for MRU stamps
	floor      int64   // decrements for LRU-position stamps
	stamps     []int64 // recency stamps; larger = more recent
	psel       int     // >= (max+1)/2 selects BIP in follower sets
	rng        *seededRand
}

// NewDIPPolicy returns a DIP replacement policy.
func NewDIPPolicy(seed int64) Policy {
	return &dipPolicy{rng: newSeededRand(seed), psel: (dipPSELMax + 1) / 2}
}

func (p *dipPolicy) Name() string { return string(DIP) }

func (p *dipPolicy) Attach(sets, ways int) error {
	if sets <= 0 || ways <= 0 {
		return fmt.Errorf("dip: bad geometry %dx%d", sets, ways)
	}
	p.sets, p.ways = sets, ways
	p.stamps = make([]int64, sets*ways)
	p.floor = -1
	return nil
}

// leaderKind classifies a set: 0 = follower, 1 = LRU leader, 2 = BIP leader.
func (p *dipPolicy) leaderKind(set int) int {
	switch set % dipLeaderPeriod {
	case 0:
		return 1
	case dipLeaderPeriod / 2:
		return 2
	}
	return 0
}

func (p *dipPolicy) OnHit(set, way int) {
	p.clock++
	p.stamps[set*p.ways+way] = p.clock
}

func (p *dipPolicy) OnMiss(set int) {
	switch p.leaderKind(set) {
	case 1: // miss under LRU insertion: evidence for BIP
		if p.psel < dipPSELMax {
			p.psel++
		}
	case 2: // miss under BIP insertion: evidence for LRU
		if p.psel > 0 {
			p.psel--
		}
	}
}

func (p *dipPolicy) Victim(set int) int {
	base := set * p.ways
	best, bestStamp := 0, p.stamps[base]
	for w := 1; w < p.ways; w++ {
		if s := p.stamps[base+w]; s < bestStamp {
			best, bestStamp = w, s
		}
	}
	return best
}

// useBIP decides the insertion flavour for a fill into set.
func (p *dipPolicy) useBIP(set int) bool {
	switch p.leaderKind(set) {
	case 1:
		return false
	case 2:
		return true
	}
	return p.psel >= (dipPSELMax+1)/2
}

func (p *dipPolicy) OnFill(set, way int) {
	idx := set*p.ways + way
	if p.useBIP(set) && p.rng.Intn(bipEpsilonDenominator) != 0 {
		// Insert at the LRU position: older than everything resident.
		p.stamps[idx] = p.floor
		p.floor--
		return
	}
	p.clock++
	p.stamps[idx] = p.clock
}

// PSEL exposes the selector for tests and ablation studies.
func (p *dipPolicy) PSEL() int { return p.psel }
