package results

import (
	"os"
	"path/filepath"
	"testing"
)

func table() *IPCTable {
	return &IPCTable{
		Simulator:  "badco",
		Cores:      2,
		Policy:     "LRU",
		TraceLen:   1000,
		Population: 3,
		Seed:       7,
		IPC:        [][]float64{{1, 2}, {0.5, 1.5}, {2, 2}},
	}
}

func TestSaveLoadRoundTrip(t *testing.T) {
	s, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	want := table()
	if err := s.Save(want); err != nil {
		t.Fatal(err)
	}
	got, ok, err := s.Load(IPCTable{
		Simulator: "badco", Cores: 2, Policy: "LRU", TraceLen: 1000, Population: 3, Seed: 7,
	})
	if err != nil || !ok {
		t.Fatalf("Load: ok=%v err=%v", ok, err)
	}
	for i := range want.IPC {
		for k := range want.IPC[i] {
			if got.IPC[i][k] != want.IPC[i][k] {
				t.Fatalf("IPC[%d][%d] = %g, want %g", i, k, got.IPC[i][k], want.IPC[i][k])
			}
		}
	}
}

func TestLoadAbsent(t *testing.T) {
	s, _ := Open(t.TempDir())
	_, ok, err := s.Load(IPCTable{Simulator: "x", Cores: 1, Policy: "LRU", TraceLen: 1, Population: 0})
	if err != nil || ok {
		t.Fatalf("absent load: ok=%v err=%v", ok, err)
	}
}

func TestKeyDistinguishesParameters(t *testing.T) {
	a := table()
	b := table()
	b.Policy = "DIP"
	if a.Key() == b.Key() {
		t.Error("different policies share a key")
	}
	c := table()
	c.TraceLen = 2000
	if a.Key() == c.Key() {
		t.Error("different trace lengths share a key")
	}
}

func TestValidateRejectsBadTables(t *testing.T) {
	cases := []func(*IPCTable){
		func(t *IPCTable) { t.Simulator = "" },
		func(t *IPCTable) { t.Cores = 0 },
		func(t *IPCTable) { t.Population = 5 },             // row mismatch
		func(t *IPCTable) { t.IPC[1] = []float64{1} },      // core mismatch
		func(t *IPCTable) { t.IPC[0] = []float64{0, 1} },   // non-positive IPC
		func(t *IPCTable) { t.IPC[2] = []float64{-1, -1} }, // negative
	}
	for i, mutate := range cases {
		tab := table()
		mutate(tab)
		if err := tab.Validate(); err == nil {
			t.Errorf("case %d: Validate accepted bad table", i)
		}
	}
	if err := table().Validate(); err != nil {
		t.Errorf("Validate rejected good table: %v", err)
	}
}

func TestSaveRejectsInvalid(t *testing.T) {
	s, _ := Open(t.TempDir())
	bad := table()
	bad.Cores = 0
	if err := s.Save(bad); err == nil {
		t.Error("Save accepted invalid table")
	}
}

func TestCorruptFile(t *testing.T) {
	dir := t.TempDir()
	s, _ := Open(dir)
	want := table()
	if err := s.Save(want); err != nil {
		t.Fatal(err)
	}
	// Corrupt the file on disk.
	path := filepath.Join(dir, want.Key()+".json")
	if err := os.WriteFile(path, []byte("{not json"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, _, err := s.Load(*want); err == nil {
		t.Error("Load accepted corrupt file")
	}
}

func TestKeysAndDelete(t *testing.T) {
	s, _ := Open(t.TempDir())
	a := table()
	b := table()
	b.Policy = "DIP"
	if err := s.Save(a); err != nil {
		t.Fatal(err)
	}
	if err := s.Save(b); err != nil {
		t.Fatal(err)
	}
	keys, err := s.Keys()
	if err != nil || len(keys) != 2 {
		t.Fatalf("keys %v err %v", keys, err)
	}
	if err := s.Delete(a.Key()); err != nil {
		t.Fatal(err)
	}
	keys, _ = s.Keys()
	if len(keys) != 1 || keys[0] != b.Key() {
		t.Fatalf("keys after delete %v", keys)
	}
	// Deleting again is a no-op.
	if err := s.Delete(a.Key()); err != nil {
		t.Fatal(err)
	}
}

func TestOpenErrors(t *testing.T) {
	if _, err := Open(""); err == nil {
		t.Error("Open accepted empty dir")
	}
}
