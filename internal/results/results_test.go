package results

import (
	"encoding/json"
	"os"
	"path/filepath"
	"sync"
	"testing"
	"time"
)

func table() *IPCTable {
	return &IPCTable{
		Simulator:  "badco",
		Cores:      2,
		Policy:     "LRU",
		TraceLen:   1000,
		Population: 3,
		Seed:       7,
		IPC:        [][]float64{{1, 2}, {0.5, 1.5}, {2, 2}},
	}
}

func TestSaveLoadRoundTrip(t *testing.T) {
	s, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	want := table()
	if err := s.Save(want); err != nil {
		t.Fatal(err)
	}
	got, ok, err := s.Load(IPCTable{
		Simulator: "badco", Cores: 2, Policy: "LRU", TraceLen: 1000, Population: 3, Seed: 7,
	})
	if err != nil || !ok {
		t.Fatalf("Load: ok=%v err=%v", ok, err)
	}
	for i := range want.IPC {
		for k := range want.IPC[i] {
			if got.IPC[i][k] != want.IPC[i][k] {
				t.Fatalf("IPC[%d][%d] = %g, want %g", i, k, got.IPC[i][k], want.IPC[i][k])
			}
		}
	}
}

func TestLoadAbsent(t *testing.T) {
	s, _ := Open(t.TempDir())
	_, ok, err := s.Load(IPCTable{Simulator: "x", Cores: 1, Policy: "LRU", TraceLen: 1, Population: 0})
	if err != nil || ok {
		t.Fatalf("absent load: ok=%v err=%v", ok, err)
	}
}

func TestKeyDistinguishesParameters(t *testing.T) {
	a := table()
	b := table()
	b.Policy = "DIP"
	if a.Key() == b.Key() {
		t.Error("different policies share a key")
	}
	c := table()
	c.TraceLen = 2000
	if a.Key() == c.Key() {
		t.Error("different trace lengths share a key")
	}
}

func TestValidateRejectsBadTables(t *testing.T) {
	cases := []func(*IPCTable){
		func(t *IPCTable) { t.Simulator = "" },
		func(t *IPCTable) { t.Cores = 0 },
		func(t *IPCTable) { t.Population = 5 },             // row mismatch
		func(t *IPCTable) { t.IPC[1] = []float64{1} },      // core mismatch
		func(t *IPCTable) { t.IPC[0] = []float64{0, 1} },   // non-positive IPC
		func(t *IPCTable) { t.IPC[2] = []float64{-1, -1} }, // negative
	}
	for i, mutate := range cases {
		tab := table()
		mutate(tab)
		if err := tab.Validate(); err == nil {
			t.Errorf("case %d: Validate accepted bad table", i)
		}
	}
	if err := table().Validate(); err != nil {
		t.Errorf("Validate rejected good table: %v", err)
	}
}

func TestSaveRejectsInvalid(t *testing.T) {
	s, _ := Open(t.TempDir())
	bad := table()
	bad.Cores = 0
	if err := s.Save(bad); err == nil {
		t.Error("Save accepted invalid table")
	}
}

func TestCorruptFile(t *testing.T) {
	dir := t.TempDir()
	s, _ := Open(dir)
	want := table()
	if err := s.Save(want); err != nil {
		t.Fatal(err)
	}
	// Corrupt the file on disk.
	path := filepath.Join(dir, want.Key()+".json")
	if err := os.WriteFile(path, []byte("{not json"), 0o644); err != nil {
		t.Fatal(err)
	}
	// Corruption is a miss, never an error and never a wrong table: the
	// caller recomputes while the bad file moves to quarantine.
	got, ok, err := s.Load(*want)
	if err != nil || ok || got != nil {
		t.Fatalf("Load(corrupt) = %v, %v, %v; want miss", got, ok, err)
	}
	if _, err := os.Stat(path); !os.IsNotExist(err) {
		t.Error("corrupt file left live after Load")
	}
	q := filepath.Join(dir, QuarantineDir, want.Key()+".json")
	if _, err := os.Stat(q); err != nil {
		t.Errorf("corrupt file not quarantined: %v", err)
	}
	// A recompute republishes cleanly over the quarantined name.
	if err := s.Save(want); err != nil {
		t.Fatal(err)
	}
	if got, ok, err := s.Load(*want); err != nil || !ok || got == nil {
		t.Fatalf("reload after recompute = %v, %v, %v", got, ok, err)
	}
}

func TestKeysAndDelete(t *testing.T) {
	s, _ := Open(t.TempDir())
	a := table()
	b := table()
	b.Policy = "DIP"
	if err := s.Save(a); err != nil {
		t.Fatal(err)
	}
	if err := s.Save(b); err != nil {
		t.Fatal(err)
	}
	keys, err := s.Keys()
	if err != nil || len(keys) != 2 {
		t.Fatalf("keys %v err %v", keys, err)
	}
	if err := s.Delete(a.Key()); err != nil {
		t.Fatal(err)
	}
	keys, _ = s.Keys()
	if len(keys) != 1 || keys[0] != b.Key() {
		t.Fatalf("keys after delete %v", keys)
	}
	// Deleting again is a no-op.
	if err := s.Delete(a.Key()); err != nil {
		t.Fatal(err)
	}
}

func TestOpenErrors(t *testing.T) {
	if _, err := Open(""); err == nil {
		t.Error("Open accepted empty dir")
	}
}

// TestConcurrentSaveLoadSameKey exercises the store the way a concurrent
// campaign does: many goroutines saving and loading one IPCTable key at
// once. Every load must observe either "absent" or a complete, valid
// table — never a torn or partially renamed file.
func TestConcurrentSaveLoadSameKey(t *testing.T) {
	s, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	want := table()
	proto := IPCTable{
		Simulator: want.Simulator, Cores: want.Cores, Policy: want.Policy,
		TraceLen: want.TraceLen, Population: want.Population, Seed: want.Seed,
	}
	var wg sync.WaitGroup
	for g := 0; g < 16; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 25; i++ {
				if err := s.Save(table()); err != nil {
					t.Errorf("Save: %v", err)
					return
				}
				got, ok, err := s.Load(proto)
				if err != nil {
					t.Errorf("Load: %v", err)
					return
				}
				if !ok {
					continue // another writer's rename not landed yet
				}
				for r := range want.IPC {
					for c := range want.IPC[r] {
						if got.IPC[r][c] != want.IPC[r][c] {
							t.Errorf("IPC[%d][%d] = %g, want %g", r, c, got.IPC[r][c], want.IPC[r][c])
							return
						}
					}
				}
			}
		}()
	}
	wg.Wait()
	// The store directory must hold exactly the one key — no stranded
	// staging files counted as tables.
	keys, err := s.Keys()
	if err != nil || len(keys) != 1 || keys[0] != want.Key() {
		t.Fatalf("keys after concurrent saves: %v (err %v)", keys, err)
	}
}

func TestOpenReclaimsStaleTempFiles(t *testing.T) {
	dir := t.TempDir()
	stale := filepath.Join(dir, "badco-c2-LRU-l1000-p3-s7-12345.tmp")
	fresh := filepath.Join(dir, "badco-c2-DIP-l1000-p3-s7-67890.tmp")
	for _, p := range []string{stale, fresh} {
		if err := os.WriteFile(p, []byte("{"), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	old := time.Now().Add(-2 * staleTempAge)
	if err := os.Chtimes(stale, old, old); err != nil {
		t.Fatal(err)
	}
	if _, err := Open(dir); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(stale); !os.IsNotExist(err) {
		t.Error("stale staging file not reclaimed")
	}
	if _, err := os.Stat(fresh); err != nil {
		t.Error("fresh staging file must survive (may belong to a live writer)")
	}
}

func TestUniverseDistinguishesKeys(t *testing.T) {
	a := table()
	b := table()
	b.Universe = 40 // same sample size drawn from a different population
	if a.Key() == b.Key() {
		t.Error("sampled table shares a key with a full-population table")
	}
	c := table()
	c.Universe = 80
	if b.Key() == c.Key() {
		t.Error("samples from different universes share a key")
	}
	// A sample larger than its universe is structurally invalid.
	bad := table()
	bad.Universe = 2 // population is 3
	if err := bad.Validate(); err == nil {
		t.Error("Validate accepted population above universe")
	}
	if b.Validate() != nil {
		t.Errorf("Validate rejected sampled table: %v", b.Validate())
	}
}

func TestSavedFilesAreWorldReadable(t *testing.T) {
	dir := t.TempDir()
	s, _ := Open(dir)
	want := table()
	if err := s.Save(want); err != nil {
		t.Fatal(err)
	}
	info, err := os.Stat(filepath.Join(dir, want.Key()+".json"))
	if err != nil {
		t.Fatal(err)
	}
	// Shared cache directories need group/other read bits (modulo umask).
	if info.Mode().Perm()&0o044 == 0 {
		t.Errorf("saved table mode %v lacks group/other read bits", info.Mode().Perm())
	}
}

// TestListPreservesIdentity is the satellite contract of the /cache
// endpoint: List must report the raw identity fields of every stored
// table — including source specs whose sanitized filenames cannot be
// mapped back — and surface corrupt files instead of hiding them.
func TestListPreservesIdentity(t *testing.T) {
	dir := t.TempDir()
	s, _ := Open(dir)
	a := table()
	b := table()
	b.Policy = "DIP"
	b.Source = "dir:/traces/a b" // sanitization is lossy for this spec
	for _, tab := range []*IPCTable{a, b} {
		if err := s.Save(tab); err != nil {
			t.Fatal(err)
		}
	}
	// A file that is not a table at all.
	if err := os.WriteFile(filepath.Join(dir, "junk.json"), []byte("{not json"), 0o644); err != nil {
		t.Fatal(err)
	}

	entries, err := s.List()
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 3 {
		t.Fatalf("List returned %d entries, want 3: %+v", len(entries), entries)
	}
	byKey := map[string]Entry{}
	for _, e := range entries {
		byKey[e.Key] = e
	}
	got, ok := byKey[b.Key()]
	if !ok {
		t.Fatalf("List missing key %s", b.Key())
	}
	if got.Corrupt {
		t.Fatal("valid table listed as corrupt")
	}
	// The raw identity survives, even though the filename sanitized it.
	if got.Table.Source != b.Source || got.Table.Policy != "DIP" ||
		got.Table.Cores != b.Cores || got.Table.Population != b.Population ||
		got.Table.Seed != b.Seed || got.Table.TraceLen != b.TraceLen {
		t.Errorf("listed identity %+v does not match saved table", got.Table)
	}
	if got.Table.IPC != nil {
		t.Error("List kept the IPC rows; identity-only listing expected")
	}
	if got.Bytes <= 0 || got.ModTime.IsZero() {
		t.Errorf("file metadata missing: bytes=%d mod=%v", got.Bytes, got.ModTime)
	}
	junk, ok := byKey["junk"]
	if !ok || !junk.Corrupt {
		t.Errorf("corrupt file not surfaced: %+v", junk)
	}
	// A decodable table stored under the wrong filename is corrupt too:
	// serving it under its filename identity would be a lie.
	wrong := table()
	wrong.Policy = "RND"
	data, _ := json.Marshal(wrong)
	if err := os.WriteFile(filepath.Join(dir, "badco-c9-LRU-l1-p1-s1.json"), data, 0o644); err != nil {
		t.Fatal(err)
	}
	entries, _ = s.List()
	found := false
	for _, e := range entries {
		if e.Key == "badco-c9-LRU-l1-p1-s1" {
			found = true
			if !e.Corrupt {
				t.Error("mismatched filename/content not marked corrupt")
			}
		}
	}
	if !found {
		t.Error("mismatched entry missing from listing")
	}
}

// sampledTable is table() with a sampling identity and CI/CV columns.
func sampledTable() *IPCTable {
	tab := table()
	tab.SampleUnit = 10000
	tab.SampleWindow = 1000
	tab.SampleWarmup = 1000
	tab.CI = [][]float64{{0.1, 0.2}, {0.1, 0.1}, {0.2, 0.2}}
	tab.CV = [][]float64{{0.3, 0.4}, {0.3, 0.3}, {0.4, 0.4}}
	return tab
}

func TestSampledKeyDistinguishesSpecs(t *testing.T) {
	exact := table()
	a := sampledTable()
	if exact.Key() == a.Key() {
		t.Error("sampled and exact tables share a key")
	}
	b := sampledTable()
	b.SampleWindow = 2000
	if a.Key() == b.Key() {
		t.Error("different windows share a key")
	}
	c := sampledTable()
	c.SampleWarm = 4000
	if a.Key() == c.Key() {
		t.Error("bounded and full warming share a key")
	}
}

func TestSampledTableRoundTrip(t *testing.T) {
	s, _ := Open(t.TempDir())
	want := sampledTable()
	want.SampleWarm = 4000
	if err := s.Save(want); err != nil {
		t.Fatal(err)
	}
	// An exact request must miss the sampled entry.
	if _, ok, err := s.Load(*table()); err != nil || ok {
		t.Fatalf("exact request served a sampled table: ok=%v err=%v", ok, err)
	}
	got, ok, err := s.Load(*want)
	if err != nil || !ok {
		t.Fatalf("Load: ok=%v err=%v", ok, err)
	}
	for i := range want.CI {
		for k := range want.CI[i] {
			if got.CI[i][k] != want.CI[i][k] || got.CV[i][k] != want.CV[i][k] {
				t.Fatalf("CI/CV[%d][%d] did not survive the round trip", i, k)
			}
		}
	}
	// The sampling identity survives a listing (and the file is not
	// flagged corrupt, i.e. the identity decode covers these fields).
	entries, err := s.List()
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for _, e := range entries {
		if e.Key == want.Key() {
			found = true
			if e.Corrupt {
				t.Fatal("sampled table listed as corrupt")
			}
			if e.Table.SampleUnit != want.SampleUnit || e.Table.SampleWindow != want.SampleWindow ||
				e.Table.SampleWarmup != want.SampleWarmup || e.Table.SampleWarm != want.SampleWarm {
				t.Errorf("listed sampling identity %+v does not match saved table", e.Table)
			}
		}
	}
	if !found {
		t.Fatalf("List missing sampled key %s", want.Key())
	}
}

func TestWarmedTableListsClean(t *testing.T) {
	s, _ := Open(t.TempDir())
	tab := table()
	tab.Warmup = 5000
	if err := s.Save(tab); err != nil {
		t.Fatal(err)
	}
	entries, err := s.List()
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 1 || entries[0].Corrupt {
		t.Fatalf("warmed table listing: %+v", entries)
	}
	if entries[0].Table.Warmup != tab.Warmup {
		t.Errorf("listed warmup %d, want %d", entries[0].Table.Warmup, tab.Warmup)
	}
}

func TestValidateRejectsBadSampledTables(t *testing.T) {
	cases := []func(*IPCTable){
		func(t *IPCTable) { t.SampleWindow = 0 },                // unit without window
		func(t *IPCTable) { t.SampleWindow = 9500 },             // window+warmup > unit
		func(t *IPCTable) { t.SampleWarm = 9000 },               // warm > gap
		func(t *IPCTable) { t.SampleUnit = -1 },                 // negative
		func(t *IPCTable) { t.SampleUnit = 0; t.CI = nil },      // warmup without unit
		func(t *IPCTable) { t.CI = [][]float64{{1, 2}} },        // CI row mismatch
		func(t *IPCTable) { t.CV = [][]float64{{1}, {1}, {1}} }, // CV core mismatch
	}
	for i, mutate := range cases {
		tab := sampledTable()
		mutate(tab)
		if err := tab.Validate(); err == nil {
			t.Errorf("case %d: Validate accepted bad sampled table", i)
		}
	}
	exact := table()
	exact.CI = [][]float64{{1, 2}, {1, 2}, {1, 2}}
	if err := exact.Validate(); err == nil {
		t.Error("Validate accepted CI column on an exact table")
	}
	if err := sampledTable().Validate(); err != nil {
		t.Errorf("Validate rejected good sampled table: %v", err)
	}
}
