package results

// Checkpoint persistence. A long sweep captures multicore.Checkpoint
// values at periodic schedule boundaries; persisting the latest one next
// to the staged IPC tables lets a killed campaign resume mid-trace
// instead of replaying the whole run. Checkpoints are stored as gob —
// they are dense binary machine state, not human-facing results — and
// staged through the same atomic temp-file rename as the JSON tables, so
// a crash mid-save leaves the previous checkpoint intact.

import (
	"encoding/gob"
	"fmt"
	"os"
	"path/filepath"
	"sort"

	"mcbench/internal/multicore"
)

// checkpointExt distinguishes checkpoint files from the ".json" tables
// sharing the store directory; List and Keys skip them by extension.
const checkpointExt = ".ckpt"

// checkpointPath returns the file path for a checkpoint name.
func (s *Store) checkpointPath(name string) string {
	return filepath.Join(s.dir, sanitize(name)+checkpointExt)
}

// SaveCheckpoint persists a simulation checkpoint under the given name,
// replacing any previous version atomically. The name is sanitized onto
// the filename-safe alphabet; callers that need collision-freedom across
// exotic names should pre-hash like IPCTable.Key does for sources.
func (s *Store) SaveCheckpoint(name string, cp *multicore.Checkpoint) error {
	if name == "" {
		return fmt.Errorf("results: empty checkpoint name")
	}
	if cp == nil || len(cp.Workload) == 0 {
		return fmt.Errorf("results: empty checkpoint")
	}
	tmp, err := os.CreateTemp(s.dir, sanitize(name)+"-*.tmp")
	if err != nil {
		return fmt.Errorf("results: %w", err)
	}
	if err := gob.NewEncoder(tmp).Encode(cp); err != nil {
		tmp.Close()
		os.Remove(tmp.Name())
		return fmt.Errorf("results: %w", err)
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmp.Name())
		return fmt.Errorf("results: %w", err)
	}
	// Same reasoning as Save: shared cache directories need the file
	// readable beyond the creating user.
	if err := os.Chmod(tmp.Name(), 0o644); err != nil {
		os.Remove(tmp.Name())
		return fmt.Errorf("results: %w", err)
	}
	if err := os.Rename(tmp.Name(), s.checkpointPath(name)); err != nil {
		os.Remove(tmp.Name())
		return fmt.Errorf("results: %w", err)
	}
	return nil
}

// LoadCheckpoint reads a persisted checkpoint; ok is false when no
// checkpoint of that name exists.
func (s *Store) LoadCheckpoint(name string) (*multicore.Checkpoint, bool, error) {
	f, err := os.Open(s.checkpointPath(name))
	if os.IsNotExist(err) {
		return nil, false, nil
	}
	if err != nil {
		return nil, false, fmt.Errorf("results: %w", err)
	}
	defer f.Close()
	cp := new(multicore.Checkpoint)
	if err := gob.NewDecoder(f).Decode(cp); err != nil {
		return nil, false, fmt.Errorf("results: checkpoint %s: %w", name, err)
	}
	return cp, true, nil
}

// Checkpoints lists the names of the persisted checkpoints, sorted.
func (s *Store) Checkpoints() ([]string, error) {
	entries, err := os.ReadDir(s.dir)
	if err != nil {
		return nil, fmt.Errorf("results: %w", err)
	}
	var names []string
	for _, e := range entries {
		if name := e.Name(); filepath.Ext(name) == checkpointExt {
			names = append(names, name[:len(name)-len(checkpointExt)])
		}
	}
	sort.Strings(names)
	return names, nil
}

// DeleteCheckpoint removes a persisted checkpoint (no error if absent) —
// the natural call once the run it belonged to completes.
func (s *Store) DeleteCheckpoint(name string) error {
	err := os.Remove(s.checkpointPath(name))
	if os.IsNotExist(err) {
		return nil
	}
	return err
}
