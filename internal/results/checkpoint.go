package results

// Checkpoint persistence. A long sweep captures multicore.Checkpoint
// values at periodic schedule boundaries; persisting the latest one next
// to the staged IPC tables lets a killed campaign resume mid-trace
// instead of replaying the whole run. Checkpoints are stored as gob —
// they are dense binary machine state, not human-facing results — and
// staged through the same atomic temp-file rename as the JSON tables, so
// a crash mid-save leaves the previous checkpoint intact.

import (
	"bytes"
	"encoding/gob"
	"fmt"
	"os"
	"path/filepath"
	"sort"

	"mcbench/internal/multicore"
)

// checkpointExt distinguishes checkpoint files from the ".json" tables
// sharing the store directory; List and Keys skip them by extension.
const checkpointExt = ".ckpt"

// checkpointPath returns the file path for a checkpoint name.
func (s *Store) checkpointPath(name string) string {
	return filepath.Join(s.dir, sanitize(name)+checkpointExt)
}

// SaveCheckpoint persists a simulation checkpoint under the given name,
// replacing any previous version atomically and durably (integrity
// footer, fsync before and after the rename — the same contract as
// Save). The name is sanitized onto the filename-safe alphabet; callers
// that need collision-freedom across exotic names should pre-hash like
// IPCTable.Key does for sources.
//
// Fault-injection site: "results.ckpt.write" (tear the staged write).
func (s *Store) SaveCheckpoint(name string, cp *multicore.Checkpoint) error {
	if name == "" {
		return fmt.Errorf("results: empty checkpoint name")
	}
	if cp == nil || len(cp.Workload) == 0 {
		return fmt.Errorf("results: empty checkpoint")
	}
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(cp); err != nil {
		return fmt.Errorf("results: %w", err)
	}
	return s.publish(sanitize(name)+"-*.tmp", s.checkpointPath(name),
		appendFooter(buf.Bytes()), "results.ckpt.write")
}

// LoadCheckpoint reads a persisted checkpoint; ok is false when no
// checkpoint of that name exists. A corrupt checkpoint — torn write,
// failed footer, undecodable gob — is quarantined and reported as
// absent: resuming from scratch is always safe, resuming from garbage
// machine state never is. Footer-less files from older versions load
// unchanged.
func (s *Store) LoadCheckpoint(name string) (*multicore.Checkpoint, bool, error) {
	path := s.checkpointPath(name)
	data, err := os.ReadFile(path)
	if os.IsNotExist(err) {
		return nil, false, nil
	}
	if err != nil {
		return nil, false, fmt.Errorf("results: %w", err)
	}
	payload, hasFooter, valid := splitFooter(data)
	if hasFooter && !valid {
		s.quarantine(path)
		return nil, false, nil
	}
	cp := new(multicore.Checkpoint)
	if err := gob.NewDecoder(bytes.NewReader(payload)).Decode(cp); err != nil {
		s.quarantine(path)
		return nil, false, nil
	}
	if len(cp.Workload) == 0 {
		s.quarantine(path)
		return nil, false, nil
	}
	return cp, true, nil
}

// Checkpoints lists the names of the persisted checkpoints, sorted.
func (s *Store) Checkpoints() ([]string, error) {
	entries, err := os.ReadDir(s.dir)
	if err != nil {
		return nil, fmt.Errorf("results: %w", err)
	}
	var names []string
	for _, e := range entries {
		if name := e.Name(); filepath.Ext(name) == checkpointExt {
			names = append(names, name[:len(name)-len(checkpointExt)])
		}
	}
	sort.Strings(names)
	return names, nil
}

// DeleteCheckpoint removes a persisted checkpoint (no error if absent) —
// the natural call once the run it belonged to completes.
func (s *Store) DeleteCheckpoint(name string) error {
	err := os.Remove(s.checkpointPath(name))
	if os.IsNotExist(err) {
		return nil
	}
	return err
}
