package results

// Tests for the durability layer: the CRC32 integrity footer, the
// quarantine of corrupt files, torn-write recovery at every byte
// boundary, and the fault-injection hooks on the store's filesystem
// ops.

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"testing"

	"mcbench/internal/faultinject"
	"mcbench/internal/multicore"
)

// TestFooterRoundTrip pins the footer codec on itself.
func TestFooterRoundTrip(t *testing.T) {
	for _, payload := range [][]byte{
		[]byte(""), []byte("x"), []byte(`{"a":1}`), bytes.Repeat([]byte("mcbench"), 1000),
	} {
		framed := appendFooter(append([]byte(nil), payload...))
		got, hasFooter, valid := splitFooter(framed)
		if !hasFooter || !valid {
			t.Fatalf("round trip lost the footer: has=%v valid=%v", hasFooter, valid)
		}
		if !bytes.Equal(got, payload) {
			t.Fatalf("payload changed through the footer: %q != %q", got, payload)
		}
		// Any single flipped bit — payload or footer — must invalidate.
		for _, i := range []int{0, len(framed) / 2, len(framed) - 2} {
			if len(framed) == footerLen && i == 0 {
				i = len(framed) - 2 // empty payload: only footer bytes exist
			}
			mut := append([]byte(nil), framed...)
			mut[i] ^= 0x40
			if _, has, valid := splitFooter(mut); has && valid {
				t.Fatalf("bit flip at %d of %d went undetected", i, len(framed))
			}
		}
	}
}

// TestSavedFilesCarryFooter pins that Save writes the footer and that
// the payload before it is plain JSON a legacy reader would accept.
func TestSavedFilesCarryFooter(t *testing.T) {
	dir := t.TempDir()
	s, _ := Open(dir)
	want := table()
	if err := s.Save(want); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(filepath.Join(dir, want.Key()+".json"))
	if err != nil {
		t.Fatal(err)
	}
	payload, hasFooter, valid := splitFooter(data)
	if !hasFooter || !valid {
		t.Fatalf("saved file footer: has=%v valid=%v", hasFooter, valid)
	}
	var got IPCTable
	if err := json.Unmarshal(payload, &got); err != nil {
		t.Fatalf("payload before footer is not plain JSON: %v", err)
	}
	if !got.sameIdentity(want) {
		t.Error("payload identity changed through Save")
	}
}

// TestLegacyFileWithoutFooterLoads pins backward compatibility: a file
// written by an older version — raw JSON, no footer — still loads.
func TestLegacyFileWithoutFooterLoads(t *testing.T) {
	dir := t.TempDir()
	s, _ := Open(dir)
	want := table()
	data, err := json.Marshal(want)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, want.Key()+".json"), data, 0o644); err != nil {
		t.Fatal(err)
	}
	got, ok, err := s.Load(*want)
	if err != nil || !ok {
		t.Fatalf("legacy file did not load: ok=%v err=%v", ok, err)
	}
	if !got.sameIdentity(want) {
		t.Error("legacy load changed identity")
	}
	// And List must not call it corrupt.
	entries, err := s.List()
	if err != nil || len(entries) != 1 || entries[0].Corrupt {
		t.Fatalf("legacy file listed wrong: %+v err=%v", entries, err)
	}
}

// TestTornWriteEveryBoundary is the satellite contract: truncate a
// staged table at every byte boundary, reopen the store, and assert the
// torn file is quarantined — never decoded into a wrong table and never
// fatal to Open or List. The only truncations allowed to load are the
// two that happen to leave the complete payload (the footer cut off at
// or just after the payload's end, i.e. a well-formed legacy file whose
// content is exactly right).
func TestTornWriteEveryBoundary(t *testing.T) {
	want := table()
	payload, err := json.Marshal(want)
	if err != nil {
		t.Fatal(err)
	}
	full := appendFooter(append([]byte(nil), payload...))
	path := want.Key() + ".json"
	for n := 0; n < len(full); n++ {
		dir := t.TempDir()
		if err := os.WriteFile(filepath.Join(dir, path), full[:n], 0o644); err != nil {
			t.Fatal(err)
		}
		s, err := Open(dir)
		if err != nil {
			t.Fatalf("torn file at %d bytes broke Open: %v", n, err)
		}
		got, ok, err := s.Load(*want)
		if err != nil {
			t.Fatalf("torn file at %d bytes made Load error: %v", n, err)
		}
		if ok {
			// Tolerable only when the cut preserved the full payload
			// (n == len(payload): intact JSON; +1: plus the footer's
			// leading newline, which JSON treats as trailing whitespace).
			if n != len(payload) && n != len(payload)+1 {
				t.Fatalf("torn file at %d of %d bytes served a table", n, len(full))
			}
			if !got.sameIdentity(want) {
				t.Fatalf("torn file at %d bytes served a WRONG table", n)
			}
			continue
		}
		if _, err := os.Stat(filepath.Join(dir, QuarantineDir, path)); err != nil {
			t.Fatalf("torn file at %d bytes not quarantined: %v", n, err)
		}
		if _, err := s.List(); err != nil {
			t.Fatalf("List errored after quarantine at %d bytes: %v", n, err)
		}
	}
}

// TestListReportsQuarantined pins the operator surface: after Load
// quarantines a corrupt file, List reports it — Corrupt and
// Quarantined, under the quarantine/ key prefix — alongside the live
// tables.
func TestListReportsQuarantined(t *testing.T) {
	dir := t.TempDir()
	s, _ := Open(dir)
	good := table()
	if err := s.Save(good); err != nil {
		t.Fatal(err)
	}
	bad := table()
	bad.Policy = "DIP"
	if err := os.WriteFile(filepath.Join(dir, bad.Key()+".json"), []byte("garbage"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, ok, err := s.Load(*bad); ok || err != nil {
		t.Fatalf("corrupt load: ok=%v err=%v", ok, err)
	}
	entries, err := s.List()
	if err != nil {
		t.Fatal(err)
	}
	var qn, live int
	for _, e := range entries {
		if e.Quarantined {
			qn++
			if !e.Corrupt {
				t.Errorf("quarantined entry %s not marked corrupt", e.Key)
			}
			if e.Key != QuarantineDir+"/"+bad.Key() {
				t.Errorf("quarantined key %q", e.Key)
			}
		} else {
			live++
			if e.Key != good.Key() || e.Corrupt {
				t.Errorf("live entry wrong: %+v", e)
			}
		}
	}
	if qn != 1 || live != 1 {
		t.Fatalf("List: %d quarantined, %d live; want 1 and 1: %+v", qn, live, entries)
	}
}

// TestQuarantineKeepsGenerations pins that a second corruption of the
// same key does not clobber the first quarantined file.
func TestQuarantineKeepsGenerations(t *testing.T) {
	dir := t.TempDir()
	s, _ := Open(dir)
	want := table()
	path := filepath.Join(dir, want.Key()+".json")
	for i := 0; i < 2; i++ {
		if err := os.WriteFile(path, []byte("garbage"), 0o644); err != nil {
			t.Fatal(err)
		}
		if _, ok, _ := s.Load(*want); ok {
			t.Fatal("corrupt file served")
		}
	}
	qdir := filepath.Join(dir, QuarantineDir)
	entries, err := os.ReadDir(qdir)
	if err != nil || len(entries) != 2 {
		t.Fatalf("quarantine holds %d files, want 2 (err %v)", len(entries), err)
	}
}

// checkpoint returns a minimal valid checkpoint for persistence tests.
func checkpoint() *multicore.Checkpoint {
	return &multicore.Checkpoint{Workload: []string{"a", "b"}}
}

// TestCheckpointFooterRoundTrip pins SaveCheckpoint/LoadCheckpoint
// through the footer.
func TestCheckpointFooterRoundTrip(t *testing.T) {
	dir := t.TempDir()
	s, _ := Open(dir)
	if err := s.SaveCheckpoint("run", checkpoint()); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(filepath.Join(dir, "run"+checkpointExt))
	if err != nil {
		t.Fatal(err)
	}
	if _, hasFooter, valid := splitFooter(data); !hasFooter || !valid {
		t.Fatalf("checkpoint footer: has=%v valid=%v", hasFooter, valid)
	}
	cp, ok, err := s.LoadCheckpoint("run")
	if err != nil || !ok || len(cp.Workload) != 2 {
		t.Fatalf("LoadCheckpoint = %+v, %v, %v", cp, ok, err)
	}
}

// TestCorruptCheckpointQuarantined pins the resume-safety contract: a
// torn or garbled checkpoint reports absent (resume from scratch), never
// an error and never garbage machine state, and moves to quarantine.
func TestCorruptCheckpointQuarantined(t *testing.T) {
	dir := t.TempDir()
	s, _ := Open(dir)
	if err := s.SaveCheckpoint("run", checkpoint()); err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(dir, "run"+checkpointExt)
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, data[:len(data)/2], 0o644); err != nil {
		t.Fatal(err)
	}
	cp, ok, err := s.LoadCheckpoint("run")
	if err != nil || ok || cp != nil {
		t.Fatalf("corrupt checkpoint: %+v, %v, %v; want miss", cp, ok, err)
	}
	if _, err := os.Stat(filepath.Join(dir, QuarantineDir, "run"+checkpointExt)); err != nil {
		t.Errorf("corrupt checkpoint not quarantined: %v", err)
	}
	// Re-save and reload cleanly.
	if err := s.SaveCheckpoint("run", checkpoint()); err != nil {
		t.Fatal(err)
	}
	if _, ok, err := s.LoadCheckpoint("run"); err != nil || !ok {
		t.Fatalf("reload after recompute: %v, %v", ok, err)
	}
}

// TestLegacyCheckpointLoads pins that a footer-less gob checkpoint from
// an older version still loads.
func TestLegacyCheckpointLoads(t *testing.T) {
	dir := t.TempDir()
	s, _ := Open(dir)
	if err := s.SaveCheckpoint("run", checkpoint()); err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(dir, "run"+checkpointExt)
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	payload, hasFooter, _ := splitFooter(data)
	if !hasFooter {
		t.Fatal("fresh checkpoint has no footer")
	}
	if err := os.WriteFile(path, payload, 0o644); err != nil {
		t.Fatal(err)
	}
	if cp, ok, err := s.LoadCheckpoint("run"); err != nil || !ok || len(cp.Workload) != 2 {
		t.Fatalf("legacy checkpoint: %+v, %v, %v", cp, ok, err)
	}
}

// TestInjectedSaveFaults pins the store's fault hooks: an injected save
// error surfaces as an error (the lab treats it as cache-miss traffic),
// and an injected torn write publishes a file Load then quarantines —
// the exact recovery path the chaos harness leans on.
func TestInjectedSaveFaults(t *testing.T) {
	dir := t.TempDir()
	s, _ := Open(dir)
	want := table()

	p := faultinject.NewPlan(11)
	p.Rule("results.save", faultinject.Rule{ErrorRate: 1})
	faultinject.Enable(p)
	if err := s.Save(want); err == nil {
		faultinject.Disable()
		t.Fatal("injected save error did not surface")
	}
	faultinject.Disable()

	p = faultinject.NewPlan(11)
	p.Rule("results.save.write", faultinject.Rule{TruncRate: 1})
	faultinject.Enable(p)
	if err := s.Save(want); err != nil {
		faultinject.Disable()
		t.Fatalf("torn save errored: %v", err)
	}
	faultinject.Disable()
	if p.Injected("results.save.write") == 0 {
		t.Fatal("torn-write fault did not fire")
	}
	got, ok, err := s.Load(*want)
	if err != nil || ok || got != nil {
		t.Fatalf("torn file served: %v, %v, %v", got, ok, err)
	}
	if _, err := os.Stat(filepath.Join(dir, QuarantineDir, want.Key()+".json")); err != nil {
		t.Errorf("torn file not quarantined: %v", err)
	}
	// Faults off: the store heals on the next save.
	if err := s.Save(want); err != nil {
		t.Fatal(err)
	}
	if _, ok, err := s.Load(*want); err != nil || !ok {
		t.Fatalf("heal failed: %v, %v", ok, err)
	}
}
