package results

import (
	"context"
	"testing"

	"mcbench/internal/cache"
	"mcbench/internal/multicore"
	"mcbench/internal/trace"
)

// TestCheckpointPersistRoundTrip captures a real mid-run checkpoint,
// persists it through the store, loads it back in and resumes: the
// resumed run must be bit-identical to the uninterrupted one. This pins
// the whole persistence path — in particular that every field reachable
// from multicore.Checkpoint survives gob (which silently drops
// unexported struct fields).
func TestCheckpointPersistRoundTrip(t *testing.T) {
	ctx := context.Background()
	trs := multicore.TraceMap(trace.GenerateSuite(12000))
	w := multicore.Workload{"mcf", "soplex"}
	const quota = 6000

	uninterrupted, err := multicore.Detailed(ctx, w, trs, cache.DRRIP, quota)
	if err != nil {
		t.Fatal(err)
	}

	s, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	const name = "sweep:drrip/2c" // exercises sanitization too
	if _, err := multicore.DetailedCheckpointed(ctx, w, trs, cache.DRRIP, quota, 1500, func(cp *multicore.Checkpoint) error {
		return s.SaveCheckpoint(name, cp)
	}); err != nil {
		t.Fatal(err)
	}

	cp, ok, err := s.LoadCheckpoint(name)
	if err != nil {
		t.Fatal(err)
	}
	if !ok {
		t.Fatal("checkpoint not found after save")
	}
	resumed, err := multicore.DetailedResume(ctx, cp, trs)
	if err != nil {
		t.Fatal(err)
	}
	if resumed.Instructions != uninterrupted.Instructions {
		t.Fatalf("instructions %d, want %d", resumed.Instructions, uninterrupted.Instructions)
	}
	for i := range uninterrupted.Cycles {
		if resumed.Cycles[i] != uninterrupted.Cycles[i] {
			t.Errorf("core %d: resumed at %d cycles, uninterrupted %d", i, resumed.Cycles[i], uninterrupted.Cycles[i])
		}
		if resumed.IPC[i] != uninterrupted.IPC[i] {
			t.Errorf("core %d: resumed IPC %v, uninterrupted %v", i, resumed.IPC[i], uninterrupted.IPC[i])
		}
	}

	names, err := s.Checkpoints()
	if err != nil {
		t.Fatal(err)
	}
	if len(names) != 1 || names[0] != sanitize(name) {
		t.Fatalf("Checkpoints() = %v, want [%s]", names, sanitize(name))
	}
	if err := s.DeleteCheckpoint(name); err != nil {
		t.Fatal(err)
	}
	if _, ok, _ := s.LoadCheckpoint(name); ok {
		t.Fatal("checkpoint still loadable after delete")
	}
}

// TestWarmupKeyedSeparately pins that warmed tables live under their own
// cache keys while zero-warmup keys keep the historic format, so files
// persisted before warmup existed stay loadable.
func TestWarmupKeyedSeparately(t *testing.T) {
	a := table()
	if got, want := a.Key(), "badco-c2-LRU-l1000-p3-s7"; got != want {
		t.Fatalf("zero-warmup key %q, want historic %q", got, want)
	}
	b := table()
	b.Warmup = 500
	if a.Key() == b.Key() {
		t.Fatalf("warmed and unwarmed tables share key %q", a.Key())
	}

	s, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Save(a); err != nil {
		t.Fatal(err)
	}
	if _, ok, err := s.Load(*b); err != nil || ok {
		t.Fatalf("warmed proto loaded the unwarmed table (ok=%v, err=%v)", ok, err)
	}
}

// TestCheckpointListSkipsTables pins that the two kinds of files share
// one directory without polluting each other's listings.
func TestCheckpointListSkipsTables(t *testing.T) {
	s, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Save(table()); err != nil {
		t.Fatal(err)
	}
	names, err := s.Checkpoints()
	if err != nil {
		t.Fatal(err)
	}
	if len(names) != 0 {
		t.Fatalf("Checkpoints() sees JSON tables: %v", names)
	}
	keys, err := s.Keys()
	if err != nil {
		t.Fatal(err)
	}
	if len(keys) != 1 {
		t.Fatalf("Keys() = %v, want one table", keys)
	}
}
