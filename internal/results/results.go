// Package results persists the expensive intermediate products of the
// experimental campaign — per-workload per-core IPC tables — as JSON, so
// population sweeps survive across process runs. A Store is keyed by
// (simulator, core count, policy, trace length, population size); any
// parameter change invalidates the entry by construction of the key.
package results

import (
	"encoding/json"
	"errors"
	"fmt"
	"hash/crc32"
	"hash/fnv"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"mcbench/internal/faultinject"
	"mcbench/internal/telemetry"
)

// IPCTable is one sweep result: row per workload, column per core.
type IPCTable struct {
	Simulator  string `json:"simulator"` // "detailed" or "badco"
	Cores      int    `json:"cores"`
	Policy     string `json:"policy"`
	TraceLen   int    `json:"trace_len"`
	Population int    `json:"population"`
	Seed       int64  `json:"seed"`
	// Universe is the size of the population the rows were sampled
	// from, when the table covers only a sample (e.g. the detailed
	// simulator's subset). 0 means the rows are the whole population.
	// Without it, two configurations whose populations differ but whose
	// sample sizes coincide would collide on one key and serve each
	// other stale tables.
	Universe int `json:"universe,omitempty"`
	// Source identifies the benchmark source the table was swept over
	// ("scaled:64:7", "dir:..."). Empty means the default fixed suite,
	// keeping tables persisted before sources existed loadable.
	Source string `json:"source,omitempty"`
	// Warmup is the per-core µop count each workload ran before its
	// measurement began (see experiments.Config.Warmup). 0 — measurement
	// from reset — leaves keys identical to pre-warmup versions, so
	// existing cache files stay loadable.
	Warmup int `json:"warmup,omitempty"`
	// SampleUnit/SampleWindow/SampleWarmup/SampleWarm record the
	// systematic-sampling spec the sweep ran under
	// (multicore.SamplingSpec); all zero means an exact sweep, keeping
	// pre-sampling keys and files unchanged. A sampled table is an
	// *estimate*, so the spec is identity: an exact and a sampled sweep
	// of the same configuration must never share a cache entry.
	SampleUnit   int         `json:"sample_unit,omitempty"`
	SampleWindow int         `json:"sample_window,omitempty"`
	SampleWarmup int         `json:"sample_warmup,omitempty"`
	SampleWarm   int         `json:"sample_warm,omitempty"`
	IPC          [][]float64 `json:"ipc"`
	// CI and CV carry the per-workload per-core confidence half-interval
	// and coefficient of variation of sampled sweeps (same shape as IPC);
	// both are empty for exact sweeps, whose IPC is not an estimate.
	CI [][]float64 `json:"ci,omitempty"`
	CV [][]float64 `json:"cv,omitempty"`
}

// Key returns the table's filename-safe identity. Non-default sources
// append their sanitized name plus a short hash of the raw name:
// sanitization is lossy ("dir:a/b" and "dir:a_b" collapse), and
// without the hash two such sources would alternately clobber each
// other's cache file.
func (t *IPCTable) Key() string {
	key := fmt.Sprintf("%s-c%d-%s-l%d-p%d-s%d",
		t.Simulator, t.Cores, t.Policy, t.TraceLen, t.Population, t.Seed)
	if t.Universe > 0 {
		key += fmt.Sprintf("-u%d", t.Universe)
	}
	if t.Warmup > 0 {
		key += fmt.Sprintf("-w%d", t.Warmup)
	}
	if t.SampleUnit > 0 {
		key += fmt.Sprintf("-smpu%dd%dw%d", t.SampleUnit, t.SampleWindow, t.SampleWarmup)
		if t.SampleWarm > 0 {
			key += fmt.Sprintf("f%d", t.SampleWarm)
		}
	}
	if t.Source != "" {
		h := fnv.New32a()
		h.Write([]byte(t.Source))
		key += fmt.Sprintf("-%s-%08x", sanitize(t.Source), h.Sum32())
	}
	return key
}

// sanitize maps a source name onto the filename-safe alphabet (source
// specs carry ':' and, for dir sources, path separators).
func sanitize(s string) string {
	out := []byte(s)
	for i, c := range out {
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c >= '0' && c <= '9',
			c == '.', c == '-', c == '_':
		default:
			out[i] = '_'
		}
	}
	return string(out)
}

// Validate reports structural problems.
func (t *IPCTable) Validate() error {
	if t.Simulator == "" || t.Policy == "" {
		return fmt.Errorf("results: empty simulator or policy")
	}
	if t.Cores <= 0 || t.TraceLen <= 0 {
		return fmt.Errorf("results: non-positive cores or trace length")
	}
	if len(t.IPC) != t.Population {
		return fmt.Errorf("results: %d rows for population %d", len(t.IPC), t.Population)
	}
	if t.Universe > 0 && t.Population > t.Universe {
		return fmt.Errorf("results: population %d above universe %d", t.Population, t.Universe)
	}
	for i, row := range t.IPC {
		if len(row) != t.Cores {
			return fmt.Errorf("results: row %d has %d cores, want %d", i, len(row), t.Cores)
		}
		for k, v := range row {
			if v <= 0 {
				return fmt.Errorf("results: non-positive IPC at [%d][%d]", i, k)
			}
		}
	}
	if t.SampleUnit < 0 || t.SampleWindow < 0 || t.SampleWarmup < 0 || t.SampleWarm < 0 {
		return fmt.Errorf("results: negative sampling field")
	}
	if t.SampleUnit > 0 {
		if t.SampleWindow == 0 {
			return fmt.Errorf("results: sampled table without a window")
		}
		if t.SampleWindow+t.SampleWarmup > t.SampleUnit {
			return fmt.Errorf("results: sampling window %d + warmup %d exceed unit %d",
				t.SampleWindow, t.SampleWarmup, t.SampleUnit)
		}
		if t.SampleWarm > t.SampleUnit-t.SampleWindow-t.SampleWarmup {
			return fmt.Errorf("results: sampling warm %d exceeds gap %d",
				t.SampleWarm, t.SampleUnit-t.SampleWindow-t.SampleWarmup)
		}
	} else if t.SampleWindow != 0 || t.SampleWarmup != 0 || t.SampleWarm != 0 {
		return fmt.Errorf("results: sampling window/warmup set without a unit")
	}
	for name, col := range map[string][][]float64{"ci": t.CI, "cv": t.CV} {
		if len(col) == 0 {
			continue
		}
		if t.SampleUnit == 0 {
			return fmt.Errorf("results: %s column on an exact table", name)
		}
		if len(col) != t.Population {
			return fmt.Errorf("results: %d %s rows for population %d", len(col), name, t.Population)
		}
		for i, row := range col {
			if len(row) != t.Cores {
				return fmt.Errorf("results: %s row %d has %d cores, want %d", name, i, len(row), t.Cores)
			}
		}
	}
	return nil
}

// Store is a directory of JSON result files.
type Store struct {
	dir string

	// listCache memoizes decoded List entries per file, keyed by
	// (size, mtime): repeated listings of a big cache directory (the
	// serve /cache endpoint) re-read only files that changed instead of
	// every table on every call.
	mu        sync.Mutex
	listCache map[string]listCached

	// fetch, when set, is the read-through hook Load consults on a local
	// miss before reporting absence (see SetFetch).
	fetch Fetcher

	// tel holds the store's operation counters (an atomic pointer so
	// Instrument can rebind them without racing in-flight operations).
	tel atomic.Pointer[storeMetrics]
}

// storeMetrics are the per-registry operation counters of one store.
type storeMetrics struct {
	saves       *telemetry.Counter
	saveSeconds *telemetry.Histogram
	loadHits    *telemetry.Counter
	loadMisses  *telemetry.Counter
	readThrough *telemetry.Counter
	quarantines *telemetry.Counter
}

func newStoreMetrics(r *telemetry.Registry) *storeMetrics {
	return &storeMetrics{
		saves:       r.Counter("mcbench_store_saves_total", "Tables persisted by the results store."),
		saveSeconds: r.Histogram("mcbench_store_save_seconds", "Latency of staged fsync-rename table saves."),
		loadHits:    r.Counter("mcbench_store_load_hits_total", "Loads satisfied from the local store directory."),
		loadMisses:  r.Counter("mcbench_store_load_misses_total", "Loads that found no usable table anywhere."),
		readThrough: r.Counter("mcbench_store_fabric_readthrough_total", "Loads satisfied by the fleet's remote result fabric."),
		quarantines: r.Counter("mcbench_store_quarantines_total", "Corrupt files moved into the quarantine directory."),
	}
}

// Instrument rebinds the store's operation counters to the given
// registry (they start on telemetry.Default). A serve node calls this
// so its /metrics reflects its own store, isolated from any other
// store in the process.
func (s *Store) Instrument(r *telemetry.Registry) {
	s.tel.Store(newStoreMetrics(r))
}

// Fetcher retrieves the raw stored bytes of a content key from a remote
// peer: ok is false on a plain miss, err only on infrastructure failure
// (both make Load fall back to local compute — remote reads are an
// optimisation, never a correctness dependency). The returned bytes must
// be a whole stored file, integrity footer included; Load verifies the
// CRC32-C footer and the table identity before trusting them.
type Fetcher func(key string) (data []byte, ok bool, err error)

// SetFetch installs the read-through fetcher consulted by Load on local
// misses. The fleet wires a coordinator's store to fetch from its
// workers (and each worker's store to fetch from the coordinator), so
// any node can serve any table whichever node computed it.
func (s *Store) SetFetch(f Fetcher) {
	s.mu.Lock()
	s.fetch = f
	s.mu.Unlock()
}

// listCached is one memoized List entry with the stat that validated it.
type listCached struct {
	size  int64
	mod   time.Time
	entry Entry
}

// staleTempAge is how old a staging file must be before Open reclaims
// it. Fresh temp files may belong to a concurrent writer mid-Save;
// anything this old is an orphan from an interrupted run.
const staleTempAge = time.Hour

// Open creates (if needed) and opens a store rooted at dir, reclaiming
// staging files stranded by interrupted runs.
func Open(dir string) (*Store, error) {
	if dir == "" {
		return nil, fmt.Errorf("results: empty directory")
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("results: %w", err)
	}
	s := &Store{dir: dir}
	s.tel.Store(newStoreMetrics(telemetry.Default()))
	s.removeStaleTemp()
	return s, nil
}

// removeStaleTemp deletes orphaned staging files (best-effort): each
// Save stages through a uniquely named *.tmp file, so a crash between
// create and rename strands it forever unless someone sweeps.
func (s *Store) removeStaleTemp() {
	entries, err := os.ReadDir(s.dir)
	if err != nil {
		return
	}
	for _, e := range entries {
		if filepath.Ext(e.Name()) != ".tmp" {
			continue
		}
		info, err := e.Info()
		if err != nil || time.Since(info.ModTime()) < staleTempAge {
			continue
		}
		os.Remove(filepath.Join(s.dir, e.Name()))
	}
}

// path returns the file path of a key.
func (s *Store) path(key string) string {
	return filepath.Join(s.dir, key+".json")
}

// Integrity footer. Every file the store writes ends with a fixed-width
// CRC32-C line over the payload that precedes it, so Load can tell a
// complete table from a torn or bit-flipped one before decoding. The
// footer sits *after* the payload (a trailing line a JSON or gob decoder
// never reaches), so files written by older versions — no footer at all —
// keep loading unchanged; only a present-but-wrong footer is corruption.
const (
	footerMagic = "\nmcbench-crc32:"
	footerLen   = len(footerMagic) + 8 + 1 // magic + 8 hex digits + "\n"
)

// crcTable is Castagnoli (CRC32-C), hardware-accelerated on amd64/arm64.
var crcTable = crc32.MakeTable(crc32.Castagnoli)

// appendFooter returns the payload with its integrity footer.
func appendFooter(payload []byte) []byte {
	sum := crc32.Checksum(payload, crcTable)
	return fmt.Appendf(payload, "%s%08x\n", footerMagic, sum)
}

// splitFooter detects and verifies the integrity footer. hasFooter is
// false for legacy footer-less files (payload is then the whole input);
// valid is meaningful only when hasFooter is true.
func splitFooter(data []byte) (payload []byte, hasFooter, valid bool) {
	if len(data) < footerLen {
		return data, false, false
	}
	tail := data[len(data)-footerLen:]
	if string(tail[:len(footerMagic)]) != footerMagic || tail[footerLen-1] != '\n' {
		return data, false, false
	}
	// Strict parse: all 8 digits must be hex, or this is not a footer.
	sum, err := strconv.ParseUint(string(tail[len(footerMagic):footerLen-1]), 16, 32)
	if err != nil {
		return data, false, false
	}
	payload = data[:len(data)-footerLen]
	return payload, true, crc32.Checksum(payload, crcTable) == uint32(sum)
}

// QuarantineDir is the store subdirectory corrupt files are moved into.
const QuarantineDir = "quarantine"

// quarantine moves a corrupt file out of the live directory instead of
// letting it poison every future Load (or silently serving garbage).
// The original base name survives so operators can tell which key was
// hit; a numeric suffix avoids clobbering an earlier quarantined
// generation of the same file. Best-effort: if the move fails the file
// is removed outright — a corrupt file must never stay live.
func (s *Store) quarantine(path string) {
	s.tel.Load().quarantines.Inc()
	qdir := filepath.Join(s.dir, QuarantineDir)
	if err := os.MkdirAll(qdir, 0o755); err != nil {
		os.Remove(path)
		return
	}
	base := filepath.Base(path)
	dst := filepath.Join(qdir, base)
	for i := 1; ; i++ {
		if _, err := os.Lstat(dst); os.IsNotExist(err) {
			break
		}
		dst = filepath.Join(qdir, fmt.Sprintf("%s.%d", base, i))
	}
	if err := os.Rename(path, dst); err != nil {
		os.Remove(path)
	}
}

// syncDir fsyncs the store directory, making a just-renamed file's
// directory entry durable. Without it a power loss shortly after Save
// returns can roll the rename back — the rename is atomic, not durable.
func (s *Store) syncDir() error {
	d, err := os.Open(s.dir)
	if err != nil {
		return err
	}
	defer d.Close()
	return d.Sync()
}

// Save writes the table, replacing any previous version atomically and
// durably. Each writer stages through its own uniquely named temporary
// file, so concurrent saves of the same key (parallel campaign workers,
// or several processes sharing one cache directory) never clobber each
// other's staging data: whichever rename lands last wins, and readers
// always see a complete file. The staged bytes carry an integrity
// footer and are fsynced (file, then directory) before and after the
// rename, so a power loss after Save returns cannot lose or tear the
// published table.
//
// Fault-injection sites: "results.save" (fail the save outright),
// "results.save.write" (tear the staged write — the published file then
// fails its checksum and Load quarantines it).
func (s *Store) Save(t *IPCTable) error {
	if err := t.Validate(); err != nil {
		return err
	}
	if err := faultinject.Error("results.save"); err != nil {
		return fmt.Errorf("results: %w", err)
	}
	data, err := json.Marshal(t)
	if err != nil {
		return fmt.Errorf("results: %w", err)
	}
	start := time.Now()
	if err := s.publish(t.Key()+"-*.tmp", s.path(t.Key()), appendFooter(data), "results.save.write"); err != nil {
		return err
	}
	tel := s.tel.Load()
	tel.saves.Inc()
	tel.saveSeconds.ObserveDuration(time.Since(start))
	return nil
}

// publish stages buf through a uniquely named temp file and renames it
// onto dst, fsyncing the file before and the directory after the rename.
// tornSite names the fault-injection point that may tear the write.
func (s *Store) publish(tmpPattern, dst string, buf []byte, tornSite string) error {
	tmp, err := os.CreateTemp(s.dir, tmpPattern)
	if err != nil {
		return fmt.Errorf("results: %w", err)
	}
	if _, err := tmp.Write(buf[:faultinject.Truncate(tornSite, len(buf))]); err != nil {
		tmp.Close()
		os.Remove(tmp.Name())
		return fmt.Errorf("results: %w", err)
	}
	// fsync the payload before rename: rename is atomic with respect to
	// readers but says nothing about durability — without the sync a
	// power loss can publish a name pointing at unwritten blocks.
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		os.Remove(tmp.Name())
		return fmt.Errorf("results: %w", err)
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmp.Name())
		return fmt.Errorf("results: %w", err)
	}
	// CreateTemp makes the file 0600; published tables must stay
	// group/world-readable so several users can share a cache directory.
	if err := os.Chmod(tmp.Name(), 0o644); err != nil {
		os.Remove(tmp.Name())
		return fmt.Errorf("results: %w", err)
	}
	if err := os.Rename(tmp.Name(), dst); err != nil {
		os.Remove(tmp.Name())
		return fmt.Errorf("results: %w", err)
	}
	if err := s.syncDir(); err != nil {
		return fmt.Errorf("results: %w", err)
	}
	return nil
}

// Load reads the table with the given identity; ok is false when absent.
// A corrupt file — torn write, bit flip, failed checksum, undecodable or
// structurally invalid content — is quarantined into QuarantineDir and
// reported as absent, never as an error and never as a wrong table: the
// caller recomputes and the next Save republishes a good file.
//
// Fault-injection site: "results.load" (fail the read as an I/O error).
func (s *Store) Load(proto IPCTable) (*IPCTable, bool, error) {
	path := s.path(proto.Key())
	data, err := os.ReadFile(path)
	if os.IsNotExist(err) {
		return s.loadRemote(proto)
	}
	if err != nil {
		return nil, false, fmt.Errorf("results: %w", err)
	}
	if err := faultinject.Error("results.load"); err != nil {
		return nil, false, fmt.Errorf("results: %w", err)
	}
	payload, hasFooter, valid := splitFooter(data)
	if hasFooter && !valid {
		s.quarantine(path)
		return s.loadRemote(proto)
	}
	var t IPCTable
	if err := json.Unmarshal(payload, &t); err != nil {
		s.quarantine(path)
		return s.loadRemote(proto)
	}
	if err := t.Validate(); err != nil {
		s.quarantine(path)
		return s.loadRemote(proto)
	}
	if !t.sameIdentity(&proto) {
		// Not corruption: sanitize collapses distinct source names onto
		// one filename, and this file is the *other* source's valid
		// table. Report a miss; the recompute will overwrite it.
		return s.loadRemote(proto)
	}
	s.tel.Load().loadHits.Inc()
	return &t, true, nil
}

// loadRemote consults the read-through fetcher after a local miss. Every
// failure mode — no fetcher, remote miss, transport error, bad checksum,
// identity mismatch — reports a plain miss so the caller recomputes
// locally: the fleet fabric is an optimisation, never a correctness
// dependency. A verified fetch is republished locally (best-effort)
// through the same staged fsync-rename path as Save, so the next load is
// a local hit.
//
// Fault-injection site: "results.fetch.write" (tear the local republish).
func (s *Store) loadRemote(proto IPCTable) (*IPCTable, bool, error) {
	t, ok := s.fetchRemote(proto)
	tel := s.tel.Load()
	if ok {
		tel.readThrough.Inc()
		return t, true, nil
	}
	tel.loadMisses.Inc()
	return nil, false, nil
}

// fetchRemote is loadRemote's uncounted body: fetch, verify, republish.
func (s *Store) fetchRemote(proto IPCTable) (*IPCTable, bool) {
	s.mu.Lock()
	fetch := s.fetch
	s.mu.Unlock()
	if fetch == nil {
		return nil, false
	}
	key := proto.Key()
	data, ok, err := fetch(key)
	if err != nil || !ok {
		return nil, false
	}
	// Stricter than local loads: ReadRaw stamps a footer on every wire
	// response, so footer-less remote bytes are not legacy files — they
	// are truncation or a non-store response, and are rejected.
	payload, hasFooter, valid := splitFooter(data)
	if !hasFooter || !valid {
		return nil, false
	}
	var t IPCTable
	if err := json.Unmarshal(payload, &t); err != nil {
		return nil, false
	}
	if t.Validate() != nil || !t.sameIdentity(&proto) {
		return nil, false
	}
	s.publish(key+"-*.tmp", s.path(key), data, "results.fetch.write")
	return &t, true
}

// ErrBadKey reports a ReadRaw key outside the store's filename-safe
// alphabet (an HTTP handler maps it to 400, distinct from a 404 miss).
var ErrBadKey = errors.New("results: invalid key")

// validKey reports whether key is a plausible store key: non-empty and
// confined to the same alphabet sanitize emits, which by construction
// excludes path separators and dot-traversal.
func validKey(key string) bool {
	if key == "" || key == "." || key == ".." {
		return false
	}
	for i := 0; i < len(key); i++ {
		c := key[i]
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c >= '0' && c <= '9',
			c == '.', c == '-', c == '_':
		default:
			return false
		}
	}
	return true
}

// ReadRaw returns the stored bytes of key exactly as a remote peer must
// receive them: payload plus integrity footer. It is strictly local — it
// never consults the read-through fetcher — so two stores fetching from
// each other cannot loop. Legacy footer-less files are stamped with a
// footer on the way out, keeping every wire response verifiable; a file
// with a present-but-wrong footer is quarantined and reported absent.
func (s *Store) ReadRaw(key string) ([]byte, bool, error) {
	if !validKey(key) {
		return nil, false, ErrBadKey
	}
	path := s.path(key)
	data, err := os.ReadFile(path)
	if os.IsNotExist(err) {
		return nil, false, nil
	}
	if err != nil {
		return nil, false, fmt.Errorf("results: %w", err)
	}
	payload, hasFooter, valid := splitFooter(data)
	if hasFooter && !valid {
		s.quarantine(path)
		return nil, false, nil
	}
	if !hasFooter {
		return appendFooter(payload), true, nil
	}
	return data, true, nil
}

// sameIdentity compares the raw identity fields, not the filename-safe
// key: sanitize collapses distinct source names ("dir:a/b" and
// "dir:a_b") onto one file name, and the raw comparison is what keeps
// such a collision from silently serving the other source's table.
func (t *IPCTable) sameIdentity(o *IPCTable) bool {
	return t.Simulator == o.Simulator && t.Cores == o.Cores &&
		t.Policy == o.Policy && t.TraceLen == o.TraceLen &&
		t.Population == o.Population && t.Seed == o.Seed &&
		t.Universe == o.Universe && t.Source == o.Source &&
		t.Warmup == o.Warmup &&
		t.SampleUnit == o.SampleUnit && t.SampleWindow == o.SampleWindow &&
		t.SampleWarmup == o.SampleWarmup && t.SampleWarm == o.SampleWarm
}

// Entry describes one stored table for listings: the filename key plus
// the raw identity fields, so a cache browser can report what a
// directory actually holds. Keys() alone cannot — sanitize is lossy, so
// a sanitized name cannot be mapped back to its source spec.
type Entry struct {
	// Key is the filename-safe identity (the stored file is Key+".json").
	Key string `json:"key"`
	// Table carries the identity fields of the stored table — simulator,
	// cores, policy, trace length, population, seed, universe, source —
	// with the IPC rows dropped (Population still records the row count).
	Table IPCTable `json:"table"`
	// Bytes and ModTime describe the file itself.
	Bytes   int64     `json:"bytes"`
	ModTime time.Time `json:"mod_time"`
	// Corrupt marks a file that exists but does not decode, fails its
	// integrity footer, or whose content does not match its filename;
	// its Table is zero. Listing surfaces it instead of hiding it so
	// operators can clean up.
	Corrupt bool `json:"corrupt,omitempty"`
	// Quarantined marks a file Load moved into the quarantine
	// subdirectory after it failed verification. Quarantined entries are
	// listed (they tell an operator data was lost to corruption and
	// recomputed) but never served.
	Quarantined bool `json:"quarantined,omitempty"`
}

// tableIdentity mirrors IPCTable's identity fields without the IPC
// rows, so listing a store never materialises the (potentially
// multi-megabyte) row arrays of every table it describes.
type tableIdentity struct {
	Simulator    string `json:"simulator"`
	Cores        int    `json:"cores"`
	Policy       string `json:"policy"`
	TraceLen     int    `json:"trace_len"`
	Population   int    `json:"population"`
	Seed         int64  `json:"seed"`
	Universe     int    `json:"universe,omitempty"`
	Source       string `json:"source,omitempty"`
	Warmup       int    `json:"warmup,omitempty"`
	SampleUnit   int    `json:"sample_unit,omitempty"`
	SampleWindow int    `json:"sample_window,omitempty"`
	SampleWarmup int    `json:"sample_warmup,omitempty"`
	SampleWarm   int    `json:"sample_warm,omitempty"`
}

// List returns one identity-preserving entry per stored table, sorted by
// key. Unlike Keys, it reports the raw identity fields (spec, cores,
// policy, source, ...), which is what the serve /cache endpoint and
// list-style tooling show. Only the identity fields are decoded — the
// IPC rows are skipped — an entry whose content does not match its
// filename identity is marked Corrupt rather than served as something
// it is not, and unchanged files (same size and mtime) are served from
// a per-store memo instead of being re-read on every call.
func (s *Store) List() ([]Entry, error) {
	entries, err := os.ReadDir(s.dir)
	if err != nil {
		return nil, fmt.Errorf("results: %w", err)
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	fresh := make(map[string]listCached, len(entries))
	var out []Entry
	for _, de := range entries {
		name := de.Name()
		if filepath.Ext(name) != ".json" {
			continue
		}
		e := Entry{Key: name[:len(name)-len(".json")]}
		info, statErr := de.Info()
		if statErr == nil {
			e.Bytes = info.Size()
			e.ModTime = info.ModTime()
			// An unchanged file keeps its memoized entry: no re-read.
			if c, ok := s.listCache[name]; ok && c.size == info.Size() && c.mod.Equal(info.ModTime()) {
				fresh[name] = c
				out = append(out, c.entry)
				continue
			}
		}
		e.decodeIdentity(filepath.Join(s.dir, name))
		out = append(out, e)
		if statErr == nil {
			fresh[name] = listCached{size: e.Bytes, mod: e.ModTime, entry: e}
		}
	}
	// Entries for files that vanished fall out of the cache here.
	s.listCache = fresh
	out = append(out, s.listQuarantine()...)
	sort.Slice(out, func(i, j int) bool { return out[i].Key < out[j].Key })
	return out, nil
}

// listQuarantine reports the quarantined files as entries: Corrupt and
// Quarantined set, identity zero (the content already failed
// verification — decoding it again would lend it false credibility).
func (s *Store) listQuarantine() []Entry {
	entries, err := os.ReadDir(filepath.Join(s.dir, QuarantineDir))
	if err != nil {
		return nil
	}
	var out []Entry
	for _, de := range entries {
		name := de.Name()
		e := Entry{
			Key:         QuarantineDir + "/" + strings.TrimSuffix(name, ".json"),
			Corrupt:     true,
			Quarantined: true,
		}
		if info, err := de.Info(); err == nil {
			e.Bytes = info.Size()
			e.ModTime = info.ModTime()
		}
		out = append(out, e)
	}
	return out
}

// decodeIdentity fills the entry's identity (or Corrupt flag) from one
// stored file, decoding only the identity fields and verifying the
// integrity footer when present.
func (e *Entry) decodeIdentity(path string) {
	data, err := os.ReadFile(path)
	if err != nil {
		e.Corrupt = true
		return
	}
	payload, hasFooter, valid := splitFooter(data)
	if hasFooter && !valid {
		e.Corrupt = true
		return
	}
	var id tableIdentity
	t := IPCTable{}
	if json.Unmarshal(payload, &id) == nil {
		t = IPCTable{
			Simulator: id.Simulator, Cores: id.Cores, Policy: id.Policy,
			TraceLen: id.TraceLen, Population: id.Population, Seed: id.Seed,
			Universe: id.Universe, Source: id.Source, Warmup: id.Warmup,
			SampleUnit: id.SampleUnit, SampleWindow: id.SampleWindow,
			SampleWarmup: id.SampleWarmup, SampleWarm: id.SampleWarm,
		}
	}
	if t.Simulator == "" || t.Key() != e.Key {
		e.Corrupt = true
		return
	}
	e.Table = t
}

// Keys lists the stored table keys, sorted.
func (s *Store) Keys() ([]string, error) {
	entries, err := os.ReadDir(s.dir)
	if err != nil {
		return nil, fmt.Errorf("results: %w", err)
	}
	var keys []string
	for _, e := range entries {
		name := e.Name()
		if filepath.Ext(name) == ".json" {
			keys = append(keys, name[:len(name)-len(".json")])
		}
	}
	sort.Strings(keys)
	return keys, nil
}

// Delete removes a stored table (no error if absent).
func (s *Store) Delete(key string) error {
	err := os.Remove(s.path(key))
	if os.IsNotExist(err) {
		return nil
	}
	return err
}
