// Package results persists the expensive intermediate products of the
// experimental campaign — per-workload per-core IPC tables — as JSON, so
// population sweeps survive across process runs. A Store is keyed by
// (simulator, core count, policy, trace length, population size); any
// parameter change invalidates the entry by construction of the key.
package results

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sort"
)

// IPCTable is one sweep result: row per workload, column per core.
type IPCTable struct {
	Simulator  string      `json:"simulator"` // "detailed" or "badco"
	Cores      int         `json:"cores"`
	Policy     string      `json:"policy"`
	TraceLen   int         `json:"trace_len"`
	Population int         `json:"population"`
	Seed       int64       `json:"seed"`
	IPC        [][]float64 `json:"ipc"`
}

// Key returns the table's filename-safe identity.
func (t *IPCTable) Key() string {
	return fmt.Sprintf("%s-c%d-%s-l%d-p%d-s%d",
		t.Simulator, t.Cores, t.Policy, t.TraceLen, t.Population, t.Seed)
}

// Validate reports structural problems.
func (t *IPCTable) Validate() error {
	if t.Simulator == "" || t.Policy == "" {
		return fmt.Errorf("results: empty simulator or policy")
	}
	if t.Cores <= 0 || t.TraceLen <= 0 {
		return fmt.Errorf("results: non-positive cores or trace length")
	}
	if len(t.IPC) != t.Population {
		return fmt.Errorf("results: %d rows for population %d", len(t.IPC), t.Population)
	}
	for i, row := range t.IPC {
		if len(row) != t.Cores {
			return fmt.Errorf("results: row %d has %d cores, want %d", i, len(row), t.Cores)
		}
		for k, v := range row {
			if v <= 0 {
				return fmt.Errorf("results: non-positive IPC at [%d][%d]", i, k)
			}
		}
	}
	return nil
}

// Store is a directory of JSON result files.
type Store struct {
	dir string
}

// Open creates (if needed) and opens a store rooted at dir.
func Open(dir string) (*Store, error) {
	if dir == "" {
		return nil, fmt.Errorf("results: empty directory")
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("results: %w", err)
	}
	return &Store{dir: dir}, nil
}

// path returns the file path of a key.
func (s *Store) path(key string) string {
	return filepath.Join(s.dir, key+".json")
}

// Save writes the table, replacing any previous version atomically.
func (s *Store) Save(t *IPCTable) error {
	if err := t.Validate(); err != nil {
		return err
	}
	data, err := json.Marshal(t)
	if err != nil {
		return fmt.Errorf("results: %w", err)
	}
	tmp := s.path(t.Key()) + ".tmp"
	if err := os.WriteFile(tmp, data, 0o644); err != nil {
		return fmt.Errorf("results: %w", err)
	}
	if err := os.Rename(tmp, s.path(t.Key())); err != nil {
		os.Remove(tmp)
		return fmt.Errorf("results: %w", err)
	}
	return nil
}

// Load reads the table with the given identity; ok is false when absent.
func (s *Store) Load(proto IPCTable) (*IPCTable, bool, error) {
	data, err := os.ReadFile(s.path(proto.Key()))
	if os.IsNotExist(err) {
		return nil, false, nil
	}
	if err != nil {
		return nil, false, fmt.Errorf("results: %w", err)
	}
	var t IPCTable
	if err := json.Unmarshal(data, &t); err != nil {
		return nil, false, fmt.Errorf("results: corrupt %s: %w", proto.Key(), err)
	}
	if err := t.Validate(); err != nil {
		return nil, false, err
	}
	if t.Key() != proto.Key() {
		return nil, false, fmt.Errorf("results: %s holds mismatching table %s", proto.Key(), t.Key())
	}
	return &t, true, nil
}

// Keys lists the stored table keys, sorted.
func (s *Store) Keys() ([]string, error) {
	entries, err := os.ReadDir(s.dir)
	if err != nil {
		return nil, fmt.Errorf("results: %w", err)
	}
	var keys []string
	for _, e := range entries {
		name := e.Name()
		if filepath.Ext(name) == ".json" {
			keys = append(keys, name[:len(name)-len(".json")])
		}
	}
	sort.Strings(keys)
	return keys, nil
}

// Delete removes a stored table (no error if absent).
func (s *Store) Delete(key string) error {
	err := os.Remove(s.path(key))
	if os.IsNotExist(err) {
		return nil
	}
	return err
}
