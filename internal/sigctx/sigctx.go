// Package sigctx is the one signal path of cmd/mcbench: both the batch
// campaign runner and the long-running server derive their lifetime from
// Notify, and both map their final error onto a process exit code with
// ExitCode. Keeping the convention in one tested place means an
// interrupted batch run and a drained server cannot drift apart on what
// SIGTERM means.
package sigctx

import (
	"context"
	"errors"
	"os"
	"os/signal"
	"syscall"
)

// Notify returns a context cancelled by SIGINT or SIGTERM (and by the
// returned stop function). It is signal.NotifyContext pinned to the two
// signals mcbench handles everywhere.
func Notify(parent context.Context) (context.Context, context.CancelFunc) {
	return signal.NotifyContext(parent, os.Interrupt, syscall.SIGTERM)
}

// Exit codes of the shared convention.
const (
	// ExitOK is a clean exit — including a server that drained
	// gracefully after a signal.
	ExitOK = 0
	// ExitErr is a real failure.
	ExitErr = 1
	// ExitInterrupted is the conventional 128+SIGINT code of a run cut
	// short by a signal before it could finish its work.
	ExitInterrupted = 130
)

// ExitCode maps a command's final error onto the process exit code:
// nil is success, context cancellation (the signal path) is the
// conventional 130, anything else is a plain failure. A component that
// treats a signal as a clean shutdown (the draining server) returns nil
// and therefore exits 0.
func ExitCode(err error) int {
	switch {
	case err == nil:
		return ExitOK
	case errors.Is(err, context.Canceled), errors.Is(err, context.DeadlineExceeded):
		return ExitInterrupted
	default:
		return ExitErr
	}
}
