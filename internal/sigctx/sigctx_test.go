package sigctx

import (
	"context"
	"errors"
	"fmt"
	"syscall"
	"testing"
	"time"
)

func TestExitCodeConvention(t *testing.T) {
	cases := []struct {
		err  error
		want int
	}{
		{nil, ExitOK},
		{context.Canceled, ExitInterrupted},
		{context.DeadlineExceeded, ExitInterrupted},
		{fmt.Errorf("wrapped: %w", context.Canceled), ExitInterrupted},
		{errors.New("boom"), ExitErr},
	}
	for _, c := range cases {
		if got := ExitCode(c.err); got != c.want {
			t.Errorf("ExitCode(%v) = %d, want %d", c.err, got, c.want)
		}
	}
}

// TestNotifyCancelsOnSIGTERM sends the process a real SIGTERM and
// asserts the context dies — the exact path a deployed server's drain
// rides.
func TestNotifyCancelsOnSIGTERM(t *testing.T) {
	ctx, stop := Notify(context.Background())
	defer stop()
	if err := syscall.Kill(syscall.Getpid(), syscall.SIGTERM); err != nil {
		t.Fatalf("self-signal: %v", err)
	}
	select {
	case <-ctx.Done():
	case <-time.After(5 * time.Second):
		t.Fatal("context not cancelled by SIGTERM")
	}
	if !errors.Is(ctx.Err(), context.Canceled) {
		t.Fatalf("ctx.Err() = %v", ctx.Err())
	}
}

func TestNotifyStopReleases(t *testing.T) {
	ctx, stop := Notify(context.Background())
	stop()
	select {
	case <-ctx.Done():
	case <-time.After(time.Second):
		t.Fatal("stop did not cancel the context")
	}
}
