// Package workload provides the combinatorics of multiprogrammed
// workloads: a workload is a multiset of K benchmarks out of B (cores are
// identical and interchangeable and a benchmark may be replicated), so
// the population has C(B+K-1, K) members (Section II of the paper).
package workload

import (
	"fmt"
	"math/bits"
	"math/rand"
	"sort"
	"strconv"
	"strings"
)

// PopulationSize returns C(B+K-1, K), the number of distinct workloads of
// K benchmarks drawn with repetition from B. It panics on overflow (far
// beyond any practical configuration here).
func PopulationSize(b, k int) uint64 {
	if b <= 0 || k <= 0 {
		return 0
	}
	return binomial(uint64(b+k-1), uint64(k))
}

// binomial computes C(n, k) in uint64, panicking on overflow.
func binomial(n, k uint64) uint64 {
	if k > n {
		return 0
	}
	if k > n-k {
		k = n - k
	}
	var c uint64 = 1
	for i := uint64(0); i < k; i++ {
		// c = c * (n-i) / (i+1), keeping exact integer arithmetic.
		num := n - i
		den := i + 1
		// Divide by gcd-style simplification through the running value.
		if c%den == 0 {
			c = c / den * num
		} else if num%den == 0 {
			c = c * (num / den)
		} else {
			hi, lo := bits.Mul64(c, num)
			if hi != 0 {
				panic("workload: binomial overflow")
			}
			c = lo / den
		}
	}
	return c
}

// Workload is a multiset of benchmark indices in [0, B), kept sorted.
type Workload []int

// Key returns a canonical string form usable as a map key.
func (w Workload) Key() string {
	parts := make([]string, len(w))
	for i, b := range w {
		parts[i] = strconv.Itoa(b)
	}
	return strings.Join(parts, ",")
}

// Names maps the workload's indices through the benchmark name table.
func (w Workload) Names(names []string) []string {
	out := make([]string, len(w))
	for i, b := range w {
		out[i] = names[b]
	}
	return out
}

// Population is a concrete set of workloads under study: either the full
// enumeration (2 and 4 cores in the paper) or a large uniform sample when
// the full population is impractical (8 cores).
type Population struct {
	B, K      int
	Workloads []Workload
	index     map[string]int
}

// Enumerate builds the full population of multisets of K out of B in
// lexicographic order.
func Enumerate(b, k int) *Population {
	if b <= 0 || k <= 0 {
		panic(fmt.Sprintf("workload: Enumerate(%d,%d)", b, k))
	}
	var all []Workload
	cur := make([]int, k)
	var rec func(pos, min int)
	rec = func(pos, min int) {
		if pos == k {
			all = append(all, append(Workload(nil), cur...))
			return
		}
		for v := min; v < b; v++ {
			cur[pos] = v
			rec(pos+1, v)
		}
	}
	rec(0, 0)
	return newPopulation(b, k, all)
}

// SampleUniform builds a population of n workloads drawn uniformly at
// random (without replacement) from the full multiset population, for
// cases where enumeration is impractical. Duplicated draws are rejected,
// so n must be at most the population size.
func SampleUniform(rng *rand.Rand, b, k, n int) *Population {
	total := PopulationSize(b, k)
	if uint64(n) > total {
		panic(fmt.Sprintf("workload: sample %d exceeds population %d", n, total))
	}
	seen := make(map[string]bool, n)
	var all []Workload
	for len(all) < n {
		w := Random(rng, b, k)
		key := w.Key()
		if seen[key] {
			continue
		}
		seen[key] = true
		all = append(all, w)
	}
	return newPopulation(b, k, all)
}

// FromWorkloads builds a Population from an explicit workload list (e.g.
// the subset of workloads simulated with a detailed simulator). Workloads
// must already be sorted multisets over [0, b).
func FromWorkloads(b, k int, ws []Workload) *Population {
	if b <= 0 || k <= 0 {
		panic(fmt.Sprintf("workload: FromWorkloads(%d,%d)", b, k))
	}
	for _, w := range ws {
		if len(w) != k {
			panic(fmt.Sprintf("workload: workload %v has size %d, want %d", w, len(w), k))
		}
	}
	return newPopulation(b, k, ws)
}

func newPopulation(b, k int, all []Workload) *Population {
	idx := make(map[string]int, len(all))
	for i, w := range all {
		idx[w.Key()] = i
	}
	return &Population{B: b, K: k, Workloads: all, index: idx}
}

// Size returns the number of workloads in the population.
func (p *Population) Size() int { return len(p.Workloads) }

// IndexOf returns the position of w in the population, or -1.
func (p *Population) IndexOf(w Workload) int {
	sorted := append(Workload(nil), w...)
	sort.Ints(sorted)
	if i, ok := p.index[sorted.Key()]; ok {
		return i
	}
	return -1
}

// Random draws one workload uniformly from the full multiset population
// (every multiset equally likely), by unranking a uniform rank.
func Random(rng *rand.Rand, b, k int) Workload {
	total := PopulationSize(b, k)
	rank := uint64(rng.Int63n(int64(total)))
	return Unrank(rank, b, k)
}

// Unrank returns the workload at the given lexicographic rank (matching
// Enumerate order).
func Unrank(rank uint64, b, k int) Workload {
	w := make(Workload, 0, k)
	min := 0
	for pos := 0; pos < k; pos++ {
		for v := min; v < b; v++ {
			// Workloads starting (at this position) with v: multisets of
			// size k-pos-1 from values >= v.
			cnt := PopulationSize(b-v, k-pos-1)
			if k-pos-1 == 0 {
				cnt = 1
			}
			if rank < cnt {
				w = append(w, v)
				min = v
				break
			}
			rank -= cnt
		}
	}
	if len(w) != k {
		panic("workload: Unrank rank out of range")
	}
	return w
}

// Rank is the inverse of Unrank.
func Rank(w Workload, b int) uint64 {
	var rank uint64
	min := 0
	k := len(w)
	for pos, val := range w {
		for v := min; v < val; v++ {
			cnt := PopulationSize(b-v, k-pos-1)
			if k-pos-1 == 0 {
				cnt = 1
			}
			rank += cnt
		}
		min = val
	}
	return rank
}

// Occurrences counts how many times each benchmark appears across the
// given workloads.
func Occurrences(ws []Workload, b int) []int {
	counts := make([]int, b)
	for _, w := range ws {
		for _, bench := range w {
			counts[bench]++
		}
	}
	return counts
}

// ClassCounts returns, for a workload and a benchmark-class assignment,
// the number of occurrences of each class (the stratum signature of
// benchmark stratification).
func ClassCounts(w Workload, class []int, numClasses int) []int {
	counts := make([]int, numClasses)
	for _, bench := range w {
		counts[class[bench]]++
	}
	return counts
}
