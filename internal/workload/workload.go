// Package workload provides the combinatorics of multiprogrammed
// workloads: a workload is a multiset of K benchmarks out of B (cores are
// identical and interchangeable and a benchmark may be replicated), so
// the population has C(B+K-1, K) members (Section II of the paper).
package workload

import (
	"fmt"
	"math/bits"
	"math/rand"
	"sort"
	"strconv"
	"strings"
)

// Saturated is the value PopulationSize reports for populations whose
// exact size does not fit in a uint64.
const Saturated = ^uint64(0)

// PopulationSize returns C(B+K-1, K), the number of distinct workloads of
// K benchmarks drawn with repetition from B. ok is false when the exact
// count overflows uint64, in which case the returned value saturates at
// Saturated. Large benchmark sources (a ScaledSource near B=512 combined
// with large K) reach this territory, so callers must treat the count as
// potentially saturated rather than exact.
func PopulationSize(b, k int) (size uint64, ok bool) {
	if b <= 0 || k <= 0 {
		return 0, true
	}
	return binomial(uint64(b+k-1), uint64(k))
}

// binomial computes C(n, k) in uint64 exactly, saturating (ok=false)
// when the result does not fit.
func binomial(n, k uint64) (uint64, bool) {
	if k > n {
		return 0, true
	}
	if k > n-k {
		k = n - k
	}
	var c uint64 = 1
	for i := uint64(0); i < k; i++ {
		// c = c * (n-i) / (i+1) in 128-bit intermediate arithmetic. The
		// running value is always an exact binomial coefficient, so the
		// division is exact; only the final quotient can overflow.
		num := n - i
		den := i + 1
		hi, lo := bits.Mul64(c, num)
		if hi >= den {
			// The quotient needs more than 64 bits: saturate.
			return Saturated, false
		}
		c, _ = bits.Div64(hi, lo, den)
	}
	return c, true
}

// Workload is a multiset of benchmark indices in [0, B), kept sorted.
type Workload []int

// Key returns a canonical string form usable as a map key.
func (w Workload) Key() string {
	parts := make([]string, len(w))
	for i, b := range w {
		parts[i] = strconv.Itoa(b)
	}
	return strings.Join(parts, ",")
}

// Names maps the workload's indices through the benchmark name table.
func (w Workload) Names(names []string) []string {
	out := make([]string, len(w))
	for i, b := range w {
		out[i] = names[b]
	}
	return out
}

// Population is a concrete set of workloads under study: either the full
// enumeration (2 and 4 cores in the paper) or a large uniform sample when
// the full population is impractical (8 cores).
type Population struct {
	B, K      int
	Workloads []Workload
	index     map[string]int
}

// Enumerate builds the full population of multisets of K out of B in
// lexicographic order.
func Enumerate(b, k int) *Population {
	if b <= 0 || k <= 0 {
		panic(fmt.Sprintf("workload: Enumerate(%d,%d)", b, k))
	}
	var all []Workload
	cur := make([]int, k)
	var rec func(pos, min int)
	rec = func(pos, min int) {
		if pos == k {
			all = append(all, append(Workload(nil), cur...))
			return
		}
		for v := min; v < b; v++ {
			cur[pos] = v
			rec(pos+1, v)
		}
	}
	rec(0, 0)
	return newPopulation(b, k, all)
}

// SampleUniform builds a population of n workloads drawn uniformly at
// random (without replacement) from the full multiset population, for
// cases where enumeration is impractical. Duplicated draws are rejected,
// so n must be at most the population size.
func SampleUniform(rng *rand.Rand, b, k, n int) *Population {
	total, ok := PopulationSize(b, k)
	if ok && uint64(n) > total {
		panic(fmt.Sprintf("workload: sample %d exceeds population %d", n, total))
	}
	seen := make(map[string]bool, n)
	var all []Workload
	for len(all) < n {
		w := Random(rng, b, k)
		key := w.Key()
		if seen[key] {
			continue
		}
		seen[key] = true
		all = append(all, w)
	}
	return newPopulation(b, k, all)
}

// FromWorkloads builds a Population from an explicit workload list (e.g.
// the subset of workloads simulated with a detailed simulator). Workloads
// must already be sorted multisets over [0, b).
func FromWorkloads(b, k int, ws []Workload) *Population {
	if b <= 0 || k <= 0 {
		panic(fmt.Sprintf("workload: FromWorkloads(%d,%d)", b, k))
	}
	for _, w := range ws {
		if len(w) != k {
			panic(fmt.Sprintf("workload: workload %v has size %d, want %d", w, len(w), k))
		}
	}
	return newPopulation(b, k, ws)
}

func newPopulation(b, k int, all []Workload) *Population {
	idx := make(map[string]int, len(all))
	for i, w := range all {
		idx[w.Key()] = i
	}
	return &Population{B: b, K: k, Workloads: all, index: idx}
}

// Size returns the number of workloads in the population.
func (p *Population) Size() int { return len(p.Workloads) }

// IndexOf returns the position of w in the population, or -1.
func (p *Population) IndexOf(w Workload) int {
	sorted := append(Workload(nil), w...)
	sort.Ints(sorted)
	if i, ok := p.index[sorted.Key()]; ok {
		return i
	}
	return -1
}

// Random draws one workload uniformly from the full multiset population
// (every multiset equally likely). Populations whose size fits an int63
// draw by unranking a uniform rank (the historical path, preserving
// seeded draw sequences); larger — including saturated — populations
// use a rank-free combination sampler, so no geometry panics.
func Random(rng *rand.Rand, b, k int) Workload {
	total, ok := PopulationSize(b, k)
	if !ok || total >= 1<<63 {
		return randomMultiset(rng, b, k)
	}
	rank := uint64(rng.Int63n(int64(total)))
	return Unrank(rank, b, k)
}

// randomMultiset draws a uniform multiset of k values from [0, b) via
// the stars-and-bars bijection: multisets of size k over b values
// correspond one-to-one with k-combinations of [0, b+k-1), which
// Floyd's algorithm samples uniformly without ever touching the
// (possibly > 2^64) population size.
func randomMultiset(rng *rand.Rand, b, k int) Workload {
	n := b + k - 1
	chosen := make(map[int]bool, k)
	for j := n - k; j < n; j++ {
		t := rng.Intn(j + 1)
		if chosen[t] {
			t = j
		}
		chosen[t] = true
	}
	comb := make([]int, 0, k)
	for v := range chosen {
		comb = append(comb, v)
	}
	sort.Ints(comb)
	w := make(Workload, k)
	for i, c := range comb {
		w[i] = c - i // undo the stars-and-bars offset; result stays sorted
	}
	return w
}

// Unrank returns the workload at the given lexicographic rank (matching
// Enumerate order).
func Unrank(rank uint64, b, k int) Workload {
	w := make(Workload, 0, k)
	min := 0
	for pos := 0; pos < k; pos++ {
		for v := min; v < b; v++ {
			// Workloads starting (at this position) with v: multisets of
			// size k-pos-1 from values >= v. The counts are bounded by the
			// caller-checked total, so they cannot saturate here.
			cnt, _ := PopulationSize(b-v, k-pos-1)
			if k-pos-1 == 0 {
				cnt = 1
			}
			if rank < cnt {
				w = append(w, v)
				min = v
				break
			}
			rank -= cnt
		}
	}
	if len(w) != k {
		panic("workload: Unrank rank out of range")
	}
	return w
}

// Rank is the inverse of Unrank.
func Rank(w Workload, b int) uint64 {
	var rank uint64
	min := 0
	k := len(w)
	for pos, val := range w {
		for v := min; v < val; v++ {
			cnt, _ := PopulationSize(b-v, k-pos-1)
			if k-pos-1 == 0 {
				cnt = 1
			}
			rank += cnt
		}
		min = val
	}
	return rank
}

// Occurrences counts how many times each benchmark appears across the
// given workloads.
func Occurrences(ws []Workload, b int) []int {
	counts := make([]int, b)
	for _, w := range ws {
		for _, bench := range w {
			counts[bench]++
		}
	}
	return counts
}

// ClassCounts returns, for a workload and a benchmark-class assignment,
// the number of occurrences of each class (the stratum signature of
// benchmark stratification).
func ClassCounts(w Workload, class []int, numClasses int) []int {
	counts := make([]int, numClasses)
	for _, bench := range w {
		counts[class[bench]]++
	}
	return counts
}
