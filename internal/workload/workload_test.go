package workload

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestPopulationSizeMatchesPaper(t *testing.T) {
	// The paper's counts for 22 benchmarks: 253 workloads for 2 cores,
	// 12650 for 4 cores.
	if got := PopulationSize(22, 2); got != 253 {
		t.Errorf("PopulationSize(22,2) = %d, want 253", got)
	}
	if got := PopulationSize(22, 4); got != 12650 {
		t.Errorf("PopulationSize(22,4) = %d, want 12650", got)
	}
	// 8 cores: C(29,8) = 4292145 (too large to simulate, hence sampling).
	if got := PopulationSize(22, 8); got != 4292145 {
		t.Errorf("PopulationSize(22,8) = %d, want 4292145", got)
	}
	if got := PopulationSize(0, 2); got != 0 {
		t.Errorf("PopulationSize(0,2) = %d", got)
	}
	if got := PopulationSize(5, 1); got != 5 {
		t.Errorf("PopulationSize(5,1) = %d", got)
	}
}

func TestEnumerateSmall(t *testing.T) {
	p := Enumerate(3, 2)
	want := []string{"0,0", "0,1", "0,2", "1,1", "1,2", "2,2"}
	if p.Size() != len(want) {
		t.Fatalf("size %d, want %d", p.Size(), len(want))
	}
	for i, w := range p.Workloads {
		if w.Key() != want[i] {
			t.Errorf("workload %d = %s, want %s", i, w.Key(), want[i])
		}
	}
}

func TestEnumerateMatchesPopulationSize(t *testing.T) {
	for _, c := range []struct{ b, k int }{{22, 2}, {10, 3}, {5, 4}, {22, 4}} {
		p := Enumerate(c.b, c.k)
		if uint64(p.Size()) != PopulationSize(c.b, c.k) {
			t.Errorf("Enumerate(%d,%d) size %d != %d", c.b, c.k, p.Size(), PopulationSize(c.b, c.k))
		}
	}
}

func TestWorkloadsSortedAndUnique(t *testing.T) {
	p := Enumerate(6, 3)
	seen := map[string]bool{}
	for _, w := range p.Workloads {
		for i := 1; i < len(w); i++ {
			if w[i] < w[i-1] {
				t.Fatalf("workload %v not sorted", w)
			}
		}
		if seen[w.Key()] {
			t.Fatalf("duplicate workload %v", w)
		}
		seen[w.Key()] = true
	}
}

func TestIndexOf(t *testing.T) {
	p := Enumerate(5, 3)
	for i, w := range p.Workloads {
		if got := p.IndexOf(w); got != i {
			t.Fatalf("IndexOf(%v) = %d, want %d", w, got, i)
		}
	}
	// Unsorted query must still resolve.
	if got := p.IndexOf(Workload{3, 1, 2}); got < 0 {
		t.Error("IndexOf failed on unsorted workload")
	}
	if got := p.IndexOf(Workload{0, 0, 9}); got != -1 {
		t.Errorf("IndexOf(out of range) = %d, want -1", got)
	}
}

func TestRankUnrankRoundTrip(t *testing.T) {
	const b, k = 22, 4
	p := Enumerate(b, k)
	for i, w := range p.Workloads {
		if got := Rank(w, b); got != uint64(i) {
			t.Fatalf("Rank(%v) = %d, want %d", w, got, i)
		}
	}
	for _, rank := range []uint64{0, 1, 100, 12649} {
		w := Unrank(rank, b, k)
		if got := p.IndexOf(w); uint64(got) != rank {
			t.Fatalf("Unrank(%d) = %v which has index %d", rank, w, got)
		}
	}
}

func TestRandomIsUniform(t *testing.T) {
	// Chi-squared-ish check on a small population: all 15 workloads of
	// (4 benchmarks, 2 cores) should appear with similar frequency.
	rng := rand.New(rand.NewSource(11))
	p := Enumerate(4, 2)
	counts := make([]int, p.Size())
	const draws = 15000
	for i := 0; i < draws; i++ {
		w := Random(rng, 4, 2)
		counts[p.IndexOf(w)]++
	}
	want := draws / p.Size()
	for i, c := range counts {
		if c < want*7/10 || c > want*13/10 {
			t.Errorf("workload %d drawn %d times, want about %d", i, c, want)
		}
	}
}

func TestSampleUniform(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	p := SampleUniform(rng, 22, 8, 1000)
	if p.Size() != 1000 {
		t.Fatalf("sample size %d", p.Size())
	}
	seen := map[string]bool{}
	for _, w := range p.Workloads {
		if len(w) != 8 {
			t.Fatalf("workload %v has wrong K", w)
		}
		if seen[w.Key()] {
			t.Fatalf("duplicate %v in uniform sample", w)
		}
		seen[w.Key()] = true
	}
}

func TestOccurrences(t *testing.T) {
	ws := []Workload{{0, 1}, {1, 1}, {0, 2}}
	got := Occurrences(ws, 3)
	want := []int{2, 3, 1}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("occurrences[%d] = %d, want %d", i, got[i], want[i])
		}
	}
}

func TestClassCounts(t *testing.T) {
	// Benchmarks 0,1 in class 0; 2 in class 1; 3 in class 2.
	class := []int{0, 0, 1, 2}
	got := ClassCounts(Workload{0, 1, 2, 2}, class, 3)
	want := []int{2, 2, 0}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("class count %d = %d, want %d", i, got[i], want[i])
		}
	}
}

func TestKeyAndNames(t *testing.T) {
	w := Workload{0, 2}
	if w.Key() != "0,2" {
		t.Errorf("Key = %q", w.Key())
	}
	names := w.Names([]string{"a", "b", "c"})
	if names[0] != "a" || names[1] != "c" {
		t.Errorf("Names = %v", names)
	}
}

// Property: rank/unrank are inverse for random ranks across geometries.
func TestRankUnrankProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		b := 2 + rng.Intn(21)
		k := 1 + rng.Intn(6)
		total := PopulationSize(b, k)
		rank := uint64(rng.Int63n(int64(total)))
		w := Unrank(rank, b, k)
		return Rank(w, b) == rank && len(w) == k
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}
