package workload

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestPopulationSizeMatchesPaper(t *testing.T) {
	// The paper's counts for 22 benchmarks: 253 workloads for 2 cores,
	// 12650 for 4 cores.
	if got, ok := PopulationSize(22, 2); got != 253 || !ok {
		t.Errorf("PopulationSize(22,2) = %d,%v, want 253", got, ok)
	}
	if got, ok := PopulationSize(22, 4); got != 12650 || !ok {
		t.Errorf("PopulationSize(22,4) = %d,%v, want 12650", got, ok)
	}
	// 8 cores: C(29,8) = 4292145 (too large to simulate, hence sampling).
	if got, ok := PopulationSize(22, 8); got != 4292145 || !ok {
		t.Errorf("PopulationSize(22,8) = %d,%v, want 4292145", got, ok)
	}
	if got, ok := PopulationSize(0, 2); got != 0 || !ok {
		t.Errorf("PopulationSize(0,2) = %d,%v", got, ok)
	}
	if got, ok := PopulationSize(5, 1); got != 5 || !ok {
		t.Errorf("PopulationSize(5,1) = %d,%v", got, ok)
	}
}

func TestEnumerateSmall(t *testing.T) {
	p := Enumerate(3, 2)
	want := []string{"0,0", "0,1", "0,2", "1,1", "1,2", "2,2"}
	if p.Size() != len(want) {
		t.Fatalf("size %d, want %d", p.Size(), len(want))
	}
	for i, w := range p.Workloads {
		if w.Key() != want[i] {
			t.Errorf("workload %d = %s, want %s", i, w.Key(), want[i])
		}
	}
}

func TestEnumerateMatchesPopulationSize(t *testing.T) {
	for _, c := range []struct{ b, k int }{{22, 2}, {10, 3}, {5, 4}, {22, 4}} {
		p := Enumerate(c.b, c.k)
		if size, ok := PopulationSize(c.b, c.k); uint64(p.Size()) != size || !ok {
			t.Errorf("Enumerate(%d,%d) size %d != %d (ok=%v)", c.b, c.k, p.Size(), size, ok)
		}
	}
}

func TestWorkloadsSortedAndUnique(t *testing.T) {
	p := Enumerate(6, 3)
	seen := map[string]bool{}
	for _, w := range p.Workloads {
		for i := 1; i < len(w); i++ {
			if w[i] < w[i-1] {
				t.Fatalf("workload %v not sorted", w)
			}
		}
		if seen[w.Key()] {
			t.Fatalf("duplicate workload %v", w)
		}
		seen[w.Key()] = true
	}
}

func TestIndexOf(t *testing.T) {
	p := Enumerate(5, 3)
	for i, w := range p.Workloads {
		if got := p.IndexOf(w); got != i {
			t.Fatalf("IndexOf(%v) = %d, want %d", w, got, i)
		}
	}
	// Unsorted query must still resolve.
	if got := p.IndexOf(Workload{3, 1, 2}); got < 0 {
		t.Error("IndexOf failed on unsorted workload")
	}
	if got := p.IndexOf(Workload{0, 0, 9}); got != -1 {
		t.Errorf("IndexOf(out of range) = %d, want -1", got)
	}
}

func TestRankUnrankRoundTrip(t *testing.T) {
	const b, k = 22, 4
	p := Enumerate(b, k)
	for i, w := range p.Workloads {
		if got := Rank(w, b); got != uint64(i) {
			t.Fatalf("Rank(%v) = %d, want %d", w, got, i)
		}
	}
	for _, rank := range []uint64{0, 1, 100, 12649} {
		w := Unrank(rank, b, k)
		if got := p.IndexOf(w); uint64(got) != rank {
			t.Fatalf("Unrank(%d) = %v which has index %d", rank, w, got)
		}
	}
}

func TestRandomIsUniform(t *testing.T) {
	// Chi-squared-ish check on a small population: all 15 workloads of
	// (4 benchmarks, 2 cores) should appear with similar frequency.
	rng := rand.New(rand.NewSource(11))
	p := Enumerate(4, 2)
	counts := make([]int, p.Size())
	const draws = 15000
	for i := 0; i < draws; i++ {
		w := Random(rng, 4, 2)
		counts[p.IndexOf(w)]++
	}
	want := draws / p.Size()
	for i, c := range counts {
		if c < want*7/10 || c > want*13/10 {
			t.Errorf("workload %d drawn %d times, want about %d", i, c, want)
		}
	}
}

func TestSampleUniform(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	p := SampleUniform(rng, 22, 8, 1000)
	if p.Size() != 1000 {
		t.Fatalf("sample size %d", p.Size())
	}
	seen := map[string]bool{}
	for _, w := range p.Workloads {
		if len(w) != 8 {
			t.Fatalf("workload %v has wrong K", w)
		}
		if seen[w.Key()] {
			t.Fatalf("duplicate %v in uniform sample", w)
		}
		seen[w.Key()] = true
	}
}

func TestOccurrences(t *testing.T) {
	ws := []Workload{{0, 1}, {1, 1}, {0, 2}}
	got := Occurrences(ws, 3)
	want := []int{2, 3, 1}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("occurrences[%d] = %d, want %d", i, got[i], want[i])
		}
	}
}

func TestClassCounts(t *testing.T) {
	// Benchmarks 0,1 in class 0; 2 in class 1; 3 in class 2.
	class := []int{0, 0, 1, 2}
	got := ClassCounts(Workload{0, 1, 2, 2}, class, 3)
	want := []int{2, 2, 0}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("class count %d = %d, want %d", i, got[i], want[i])
		}
	}
}

func TestKeyAndNames(t *testing.T) {
	w := Workload{0, 2}
	if w.Key() != "0,2" {
		t.Errorf("Key = %q", w.Key())
	}
	names := w.Names([]string{"a", "b", "c"})
	if names[0] != "a" || names[1] != "c" {
		t.Errorf("Names = %v", names)
	}
}

// Property: rank/unrank are inverse for random ranks across geometries.
func TestRankUnrankProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		b := 2 + rng.Intn(21)
		k := 1 + rng.Intn(6)
		total, _ := PopulationSize(b, k)
		rank := uint64(rng.Int63n(int64(total)))
		w := Unrank(rank, b, k)
		return Rank(w, b) == rank && len(w) == k
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// Boundary behaviour of the saturating PopulationSize: the counts a
// ScaledSource can reach (up to B=512 at K=8) stay exact, and anything
// beyond uint64 saturates with ok=false instead of panicking.
func TestPopulationSizeSaturation(t *testing.T) {
	// C(519, 8): the largest configuration the source layer supports.
	got, ok := PopulationSize(512, 8)
	const want = 123672890985095232 // C(519,8)
	if !ok || got != want {
		t.Errorf("PopulationSize(512,8) = %d,%v, want %d,true", got, ok, want)
	}
	// PopulationSize(65, 64) = C(128, 64) ≈ 2.4e37, far past uint64.
	if got, ok := PopulationSize(65, 64); ok || got != Saturated {
		t.Errorf("PopulationSize(65,64) = %d,%v, want Saturated,false", got, ok)
	}
	if got, ok := PopulationSize(512, 64); ok || got != Saturated {
		t.Errorf("PopulationSize(512,64) = %d,%v, want Saturated,false", got, ok)
	}
	// The largest K at B=512 that still fits must stay exact: walk up
	// until the first saturation and check monotonic consistency.
	sawSaturated := false
	var prev uint64
	for k := 1; k <= 64; k++ {
		size, ok := PopulationSize(512, k)
		if sawSaturated && ok {
			t.Fatalf("PopulationSize(512,%d) un-saturated after a saturated smaller K", k)
		}
		if !ok {
			sawSaturated = true
			if size != Saturated {
				t.Fatalf("PopulationSize(512,%d) = %d with ok=false", k, size)
			}
			continue
		}
		if size <= prev {
			t.Fatalf("PopulationSize(512,%d) = %d not increasing (prev %d)", k, size, prev)
		}
		prev = size
	}
	if !sawSaturated {
		t.Error("PopulationSize(512,64) never saturated")
	}
}

// SampleUniform must keep working when the universe saturates: the
// sample bound check is skipped (the universe is astronomically larger
// than any sample) and draws switch to the rank-free multiset sampler.
func TestSampleUniformSaturatedUniverse(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	const b, k, n = 512, 16, 25 // C(527,16) overflows uint64
	if _, ok := PopulationSize(b, k); ok {
		t.Fatalf("PopulationSize(%d,%d) unexpectedly fits uint64", b, k)
	}
	p := SampleUniform(rng, b, k, n)
	if p.Size() != n {
		t.Fatalf("sampled %d workloads, want %d", p.Size(), n)
	}
	seen := map[string]bool{}
	for _, w := range p.Workloads {
		if len(w) != k {
			t.Fatalf("workload %v has size %d, want %d", w, len(w), k)
		}
		for i, v := range w {
			if v < 0 || v >= b || (i > 0 && v < w[i-1]) {
				t.Fatalf("workload %v not a sorted multiset over [0,%d)", w, b)
			}
		}
		if seen[w.Key()] {
			t.Fatalf("duplicate draw %v survived rejection", w)
		}
		seen[w.Key()] = true
	}
}

// Property: the rank-free sampler agrees with Unrank territory — every
// draw is a valid sorted multiset, and over many draws on a small
// geometry the distribution covers the whole population.
func TestRandomMultisetCoversSmallPopulation(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	const b, k = 4, 3 // population C(6,3) = 20
	counts := map[string]int{}
	for i := 0; i < 4000; i++ {
		w := randomMultiset(rng, b, k)
		counts[w.Key()]++
	}
	if len(counts) != 20 {
		t.Fatalf("saw %d distinct multisets, want all 20", len(counts))
	}
	for key, c := range counts {
		// Uniform mean is 200 draws; allow a generous band.
		if c < 120 || c > 300 {
			t.Errorf("multiset %s drawn %d times, implausible for uniform", key, c)
		}
	}
}

func TestExactBinomialAgainstBigComputation(t *testing.T) {
	// Cross-check binomial against Pascal-triangle addition in a range
	// that exercises the 128-bit multiply path.
	for n := uint64(60); n <= 66; n++ {
		for k := uint64(2); k < n; k++ {
			a, aok := binomial(n-1, k-1)
			b, bok := binomial(n-1, k)
			c, cok := binomial(n, k)
			if !aok || !bok {
				continue
			}
			sum, carry := a+b, a+b < a
			if carry {
				if cok {
					t.Fatalf("C(%d,%d) claimed exact but Pascal sum overflows", n, k)
				}
				continue
			}
			if cok && c != sum {
				t.Fatalf("C(%d,%d) = %d, Pascal sum %d", n, k, c, sum)
			}
			if !cok && sum != 0 {
				// Saturated result must only happen when the true value
				// exceeds uint64; the Pascal sum fitting contradicts that.
				t.Fatalf("C(%d,%d) saturated but Pascal sum %d fits", n, k, sum)
			}
		}
	}
}
