// Package sampling implements the workload sampling methods compared in
// the paper (Sections III and VI): simple random sampling, balanced
// random sampling, benchmark stratification and workload stratification,
// together with the empirical confidence machinery used to evaluate them
// and the MPKI-based benchmark classification of Table IV.
//
// All samplers draw workload indices into a fixed population and return
// estimator weights. The weights are chosen so that, for values v in the
// metric's CLT domain (per-workload throughputs t(w) or differences
// d(w)), the estimate sum(weight_i * v_i) is the method's throughput
// estimator: a plain mean for the random methods, the stratified weighted
// mean of formula (9) for the stratified methods.
package sampling

import (
	"fmt"
	"math"
	"math/rand"
	"sort"

	"mcbench/internal/stats"
	"mcbench/internal/workload"
)

// Sampler draws weighted workload samples from a population.
type Sampler interface {
	// Name identifies the method.
	Name() string
	// Draw returns w workload indices (repeats allowed) and their
	// estimator weights, which sum to 1.
	Draw(rng *rand.Rand, w int) (idx []int, weights []float64)
}

// ---------------------------------------------------------------------------
// Simple random sampling

type simpleRandom struct {
	n int
}

// NewSimpleRandom samples uniformly with replacement from a population of
// n workloads (Section III).
func NewSimpleRandom(n int) Sampler {
	if n <= 0 {
		panic("sampling: empty population")
	}
	return &simpleRandom{n: n}
}

func (s *simpleRandom) Name() string { return "random" }

func (s *simpleRandom) Draw(rng *rand.Rand, w int) ([]int, []float64) {
	idx := make([]int, w)
	for i := range idx {
		idx[i] = rng.Intn(s.n)
	}
	return idx, equalWeights(w)
}

func equalWeights(w int) []float64 {
	ws := make([]float64, w)
	for i := range ws {
		ws[i] = 1 / float64(w)
	}
	return ws
}

// ---------------------------------------------------------------------------
// Balanced random sampling

type balancedRandom struct {
	pop *workload.Population
}

// NewBalancedRandom samples workloads such that every benchmark occurs
// (as nearly as possible) the same number of times across the sample
// (Section VI-A). It requires the full workload population, since the
// construction composes workloads freely.
func NewBalancedRandom(pop *workload.Population) Sampler {
	if pop == nil || pop.Size() == 0 {
		panic("sampling: nil or empty population")
	}
	return &balancedRandom{pop: pop}
}

func (s *balancedRandom) Name() string { return "bal-random" }

func (s *balancedRandom) Draw(rng *rand.Rand, w int) ([]int, []float64) {
	b, k := s.pop.B, s.pop.K
	slots := w * k
	// Fill slots with each benchmark repeated slots/b times; the
	// remainder goes to a random subset of benchmarks.
	fill := make([]int, 0, slots)
	base := slots / b
	for bench := 0; bench < b; bench++ {
		for c := 0; c < base; c++ {
			fill = append(fill, bench)
		}
	}
	for _, bench := range rng.Perm(b)[:slots-base*b] {
		fill = append(fill, bench)
	}
	rng.Shuffle(len(fill), func(i, j int) { fill[i], fill[j] = fill[j], fill[i] })

	idx := make([]int, w)
	for i := 0; i < w; i++ {
		wl := workload.Workload(fill[i*k : (i+1)*k])
		pos := s.pop.IndexOf(wl)
		if pos < 0 {
			panic(fmt.Sprintf("sampling: balanced workload %v not in population", wl))
		}
		idx[i] = pos
	}
	return idx, equalWeights(w)
}

// ---------------------------------------------------------------------------
// Stratified sampling (common machinery)

// stratified samples Wh workloads from each stratum with proportional
// allocation and weights Nh/(N*Wh) (Section VI-B, formula 9).
type stratified struct {
	name   string
	strata [][]int // population indices per stratum
	total  int
}

func newStratified(name string, strata [][]int) *stratified {
	total := 0
	var keep [][]int
	for _, s := range strata {
		if len(s) == 0 {
			continue
		}
		keep = append(keep, s)
		total += len(s)
	}
	if total == 0 {
		panic("sampling: empty strata")
	}
	return &stratified{name: name, strata: keep, total: total}
}

// NumStrata returns the number of (non-empty) strata.
func (s *stratified) NumStrata() int { return len(s.strata) }

func (s *stratified) Name() string { return s.name }

// allocate distributes w draws across strata proportionally to their
// sizes, with at least one draw per stratum (stratified sampling cannot
// draw fewer workloads than strata; callers should use w >= NumStrata).
func (s *stratified) allocate(w int) []int {
	l := len(s.strata)
	if w < l {
		w = l
	}
	alloc := make([]int, l)
	type frac struct {
		i int
		f float64
	}
	fracs := make([]frac, l)
	used := 0
	for i, st := range s.strata {
		share := float64(w) * float64(len(st)) / float64(s.total)
		alloc[i] = int(share)
		if alloc[i] < 1 {
			alloc[i] = 1
		}
		fracs[i] = frac{i, share - float64(int(share))}
		used += alloc[i]
	}
	// Largest-remainder correction toward exactly w draws.
	sort.Slice(fracs, func(a, b int) bool { return fracs[a].f > fracs[b].f })
	for j := 0; used < w; j = (j + 1) % l {
		alloc[fracs[j].i]++
		used++
	}
	for j := l - 1; used > w; j-- {
		if j < 0 {
			j = l - 1
		}
		i := fracs[j].i
		if alloc[i] > 1 {
			alloc[i]--
			used--
		}
	}
	return alloc
}

func (s *stratified) Draw(rng *rand.Rand, w int) ([]int, []float64) {
	alloc := s.allocate(w)
	var idx []int
	var weights []float64
	for h, st := range s.strata {
		wh := alloc[h]
		weight := float64(len(st)) / float64(s.total) / float64(wh)
		for c := 0; c < wh; c++ {
			idx = append(idx, st[rng.Intn(len(st))])
			weights = append(weights, weight)
		}
	}
	return idx, weights
}

// ---------------------------------------------------------------------------
// Benchmark stratification

// NewBenchmarkStrata stratifies the population by the class-occurrence
// signature of each workload (Section VI-B-1): workloads with the same
// number of benchmarks of each class form one stratum. class[b] gives the
// class of benchmark b, with numClasses classes.
func NewBenchmarkStrata(pop *workload.Population, class []int, numClasses int) Sampler {
	if len(class) != pop.B {
		panic("sampling: class table size mismatch")
	}
	groups := map[string][]int{}
	var order []string
	for i, w := range pop.Workloads {
		counts := workload.ClassCounts(w, class, numClasses)
		key := fmt.Sprint(counts)
		if _, ok := groups[key]; !ok {
			order = append(order, key)
		}
		groups[key] = append(groups[key], i)
	}
	strata := make([][]int, 0, len(order))
	for _, key := range order {
		strata = append(strata, groups[key])
	}
	return newStratified("bench-strata", strata)
}

// ---------------------------------------------------------------------------
// Workload stratification

// WorkloadStrataConfig holds the two knobs of the paper's algorithm.
type WorkloadStrataConfig struct {
	// MinSize (WT) is the minimum number of workloads per stratum.
	MinSize int
	// MaxStdDev (TSD) closes a stratum once its standard deviation of
	// d(w) exceeds this threshold (checked only after MinSize).
	MaxStdDev float64
}

// DefaultWorkloadStrataConfig returns the parameters used in Figure 6
// (TSD = 0.001, WT = 50).
func DefaultWorkloadStrataConfig() WorkloadStrataConfig {
	return WorkloadStrataConfig{MinSize: 50, MaxStdDev: 0.001}
}

// NewWorkloadStrata implements the paper's main proposal (Section
// VI-B-2): strata are built directly from the per-workload differences
// d(w) measured with the fast approximate simulator. Workloads are sorted
// by d(w) and split greedily: a stratum closes once it holds at least
// MinSize workloads and its standard deviation exceeds MaxStdDev.
//
// The resulting sampler is valid only for the pair of microarchitectures
// and the metric that produced d — as the paper stresses.
func NewWorkloadStrata(d []float64, cfg WorkloadStrataConfig) Sampler {
	if len(d) == 0 {
		panic("sampling: no differences")
	}
	if cfg.MinSize < 1 {
		cfg.MinSize = 1
	}
	order := make([]int, len(d))
	for i := range order {
		order[i] = i
	}
	sort.Slice(order, func(a, b int) bool { return d[order[a]] < d[order[b]] })

	var strata [][]int
	var cur []int
	var mean, m2 float64 // Welford running variance
	for _, i := range order {
		// Close the stratum if it is big enough and adding would keep
		// its spread above the threshold.
		if len(cur) >= cfg.MinSize {
			variance := m2 / float64(len(cur))
			if math.Sqrt(variance) > cfg.MaxStdDev {
				strata = append(strata, cur)
				cur = nil
				mean, m2 = 0, 0
			}
		}
		cur = append(cur, i)
		delta := d[i] - mean
		mean += delta / float64(len(cur))
		m2 += delta * (d[i] - mean)
	}
	if len(cur) > 0 {
		strata = append(strata, cur)
	}
	return newStratified("workload-strata", strata)
}

// NumStrata reports the stratum count of a stratified sampler, or 1 for
// non-stratified samplers.
func NumStrata(s Sampler) int {
	if st, ok := s.(*stratified); ok {
		return st.NumStrata()
	}
	return 1
}

// ---------------------------------------------------------------------------
// Empirical confidence

// EmpiricalConfidence estimates, by Monte-Carlo over trials sample draws,
// the probability that the sampler's estimate of the mean of values is
// positive — the experimental degree of confidence of Figures 3, 6 and 7.
// values are in the metric's CLT domain (use Metric.Diffs).
func EmpiricalConfidence(rng *rand.Rand, values []float64, s Sampler, w, trials int) float64 {
	if trials <= 0 {
		panic("sampling: non-positive trial count")
	}
	hits := 0
	for t := 0; t < trials; t++ {
		idx, weights := s.Draw(rng, w)
		est := 0.0
		for i, j := range idx {
			est += weights[i] * values[j]
		}
		if est > 0 {
			hits++
		}
	}
	return float64(hits) / float64(trials)
}

// ModelConfidence evaluates the paper's analytical model (equation 5) on
// the same values: the confidence from the coefficient of variation of
// the full population under simple random sampling of size w.
func ModelConfidence(values []float64, w int) float64 {
	return stats.Confidence(stats.CoefVar(values), w)
}

// RequiredSampleSize applies formula (8) to population differences.
func RequiredSampleSize(values []float64) int {
	return stats.RequiredSampleSize(stats.CoefVar(values))
}
