package sampling

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"mcbench/internal/stats"
	"mcbench/internal/workload"
)

// synthPopulation builds a synthetic d(w) vector over the full (B,K)
// population where d depends on workload composition: benchmarks below
// split have positive contributions, others negative, plus deterministic
// jitter. This mimics the heterogeneous policy-difference landscape.
func synthPopulation(b, k, split int, scale float64) (*workload.Population, []float64) {
	pop := workload.Enumerate(b, k)
	d := make([]float64, pop.Size())
	rng := rand.New(rand.NewSource(99))
	for i, w := range pop.Workloads {
		v := 0.0
		for _, bench := range w {
			if bench < split {
				v += scale
			} else {
				v -= scale / 4
			}
		}
		d[i] = v + rng.NormFloat64()*scale/10
	}
	return pop, d
}

func weightsSumToOne(t *testing.T, weights []float64) {
	t.Helper()
	sum := 0.0
	for _, w := range weights {
		sum += w
	}
	if math.Abs(sum-1) > 1e-9 {
		t.Fatalf("weights sum to %g, want 1", sum)
	}
}

func TestSimpleRandomDraw(t *testing.T) {
	s := NewSimpleRandom(100)
	rng := rand.New(rand.NewSource(1))
	idx, w := s.Draw(rng, 30)
	if len(idx) != 30 || len(w) != 30 {
		t.Fatalf("draw sizes %d/%d", len(idx), len(w))
	}
	for _, i := range idx {
		if i < 0 || i >= 100 {
			t.Fatalf("index %d out of range", i)
		}
	}
	weightsSumToOne(t, w)
	if s.Name() != "random" {
		t.Errorf("name %q", s.Name())
	}
}

func TestBalancedRandomEqualOccurrences(t *testing.T) {
	pop := workload.Enumerate(8, 2)
	s := NewBalancedRandom(pop)
	rng := rand.New(rand.NewSource(2))
	// 8 benchmarks, K=2: a sample of 12 workloads has 24 slots -> every
	// benchmark must occur exactly 3 times.
	idx, w := s.Draw(rng, 12)
	weightsSumToOne(t, w)
	var ws []workload.Workload
	for _, i := range idx {
		ws = append(ws, pop.Workloads[i])
	}
	occ := workload.Occurrences(ws, 8)
	for bench, c := range occ {
		if c != 3 {
			t.Errorf("benchmark %d occurs %d times, want 3", bench, c)
		}
	}
}

func TestBalancedRandomUnevenSlots(t *testing.T) {
	pop := workload.Enumerate(5, 2)
	s := NewBalancedRandom(pop)
	rng := rand.New(rand.NewSource(3))
	// 7 workloads x 2 slots = 14 slots over 5 benchmarks: occurrences
	// must be 2 or 3 (as equal as possible).
	idx, _ := s.Draw(rng, 7)
	var ws []workload.Workload
	for _, i := range idx {
		ws = append(ws, pop.Workloads[i])
	}
	for bench, c := range workload.Occurrences(ws, 5) {
		if c < 2 || c > 3 {
			t.Errorf("benchmark %d occurs %d times, want 2 or 3", bench, c)
		}
	}
}

func TestBenchmarkStrataGrouping(t *testing.T) {
	pop := workload.Enumerate(4, 2)
	// Classes: benchmarks 0,1 -> class 0; 2,3 -> class 1.
	class := []int{0, 0, 1, 1}
	s := NewBenchmarkStrata(pop, class, 2)
	// Class-count signatures for K=2 over 2 classes: (2,0), (1,1), (0,2)
	// -> 3 strata.
	if got := NumStrata(s); got != 3 {
		t.Errorf("strata %d, want 3", got)
	}
	rng := rand.New(rand.NewSource(4))
	idx, w := s.Draw(rng, 9)
	if len(idx) != 9 {
		t.Fatalf("drew %d", len(idx))
	}
	weightsSumToOne(t, w)
}

func TestBenchmarkStrataCountMatchesPaperFormula(t *testing.T) {
	// For M=3 classes and K=4 cores the paper counts L = C(M+K-1,K) = 15
	// strata (assuming all signatures realisable, which holds for the
	// suite: every class has >= 4 benchmarks... classes need >= count).
	pop := workload.Enumerate(22, 4)
	// Table IV sizes: 11 low, 5 medium, 6 high.
	class := make([]int, 22)
	for i := range class {
		switch {
		case i < 11:
			class[i] = 0
		case i < 16:
			class[i] = 1
		default:
			class[i] = 2
		}
	}
	s := NewBenchmarkStrata(pop, class, 3)
	if got := NumStrata(s); got != 15 {
		t.Errorf("strata %d, want 15", got)
	}
}

func TestWorkloadStrataRespectsConfig(t *testing.T) {
	_, d := synthPopulation(10, 3, 5, 0.1)
	cfg := WorkloadStrataConfig{MinSize: 20, MaxStdDev: 0.01}
	s := NewWorkloadStrata(d, cfg)
	ns := NumStrata(s)
	if ns < 2 {
		t.Fatalf("only %d strata", ns)
	}
	if ns > len(d)/cfg.MinSize+1 {
		t.Fatalf("%d strata violates minimum size %d over %d workloads", ns, cfg.MinSize, len(d))
	}
}

func TestWorkloadStrataSingleStratumWhenHomogeneous(t *testing.T) {
	d := make([]float64, 500)
	for i := range d {
		d[i] = 1.0 // zero variance
	}
	s := NewWorkloadStrata(d, WorkloadStrataConfig{MinSize: 50, MaxStdDev: 0.001})
	if got := NumStrata(s); got != 1 {
		t.Errorf("homogeneous population split into %d strata", got)
	}
}

func TestStratifiedEstimatorUnbiased(t *testing.T) {
	// The weighted estimate must average to the population mean.
	_, d := synthPopulation(8, 2, 4, 0.2)
	popMean := stats.Mean(d)
	s := NewWorkloadStrata(d, WorkloadStrataConfig{MinSize: 5, MaxStdDev: 0.01})
	rng := rand.New(rand.NewSource(7))
	const trials = 4000
	sum := 0.0
	for i := 0; i < trials; i++ {
		idx, w := s.Draw(rng, 12)
		weightsSumToOne(t, w)
		for j, k := range idx {
			sum += w[j] * d[k]
		}
	}
	got := sum / trials
	if math.Abs(got-popMean) > math.Abs(popMean)*0.05+1e-6 {
		t.Errorf("stratified estimator mean %g, population mean %g", got, popMean)
	}
}

func TestEmpiricalConfidenceExtremes(t *testing.T) {
	pos := []float64{1, 2, 3, 4}
	neg := []float64{-1, -2, -3}
	rng := rand.New(rand.NewSource(8))
	if got := EmpiricalConfidence(rng, pos, NewSimpleRandom(len(pos)), 5, 200); got != 1 {
		t.Errorf("all-positive confidence %g, want 1", got)
	}
	if got := EmpiricalConfidence(rng, neg, NewSimpleRandom(len(neg)), 5, 200); got != 0 {
		t.Errorf("all-negative confidence %g, want 0", got)
	}
}

func TestEmpiricalMatchesModelForRandom(t *testing.T) {
	// On a large synthetic population, the empirical confidence of simple
	// random sampling must track the analytical model (Figure 3's match).
	_, d := synthPopulation(12, 3, 4, 0.05)
	rng := rand.New(rand.NewSource(9))
	s := NewSimpleRandom(len(d))
	for _, w := range []int{5, 10, 20, 40} {
		emp := EmpiricalConfidence(rng, d, s, w, 4000)
		model := ModelConfidence(d, w)
		if math.Abs(emp-model) > 0.05 {
			t.Errorf("W=%d: empirical %g vs model %g", w, emp, model)
		}
	}
}

func TestWorkloadStrataBeatsRandom(t *testing.T) {
	// The paper's headline result: at small sample sizes, workload
	// stratification reaches much higher confidence than simple random
	// sampling when the policy difference is subtle.
	_, d := synthPopulation(12, 3, 6, 0.02)
	// Make the mean small relative to spread so random sampling struggles.
	m := stats.Mean(d)
	for i := range d {
		d[i] -= m * 0.92
	}
	rng := rand.New(rand.NewSource(10))
	random := EmpiricalConfidence(rng, d, NewSimpleRandom(len(d)), 10, 3000)
	strata := EmpiricalConfidence(rng, d,
		NewWorkloadStrata(d, WorkloadStrataConfig{MinSize: 30, MaxStdDev: 0.001}), 10, 3000)
	if strata <= random {
		t.Errorf("workload stratification (%.3f) not above random (%.3f) at W=10", strata, random)
	}
	if strata < 0.9 {
		t.Errorf("workload stratification confidence %.3f, want >= 0.9", strata)
	}
}

func TestBalancedAtLeastAsGoodOnBalancedMetric(t *testing.T) {
	// Balanced sampling reduces variance when d depends on benchmark
	// occurrences, which is exactly how synthPopulation builds d.
	pop, d := synthPopulation(8, 2, 4, 0.05)
	m := stats.Mean(d)
	for i := range d {
		d[i] -= m * 0.9
	}
	rng := rand.New(rand.NewSource(11))
	random := EmpiricalConfidence(rng, d, NewSimpleRandom(len(d)), 8, 4000)
	balanced := EmpiricalConfidence(rng, d, NewBalancedRandom(pop), 8, 4000)
	if balanced < random-0.02 {
		t.Errorf("balanced (%.3f) clearly worse than random (%.3f)", balanced, random)
	}
}

func TestClassify(t *testing.T) {
	th := PaperThresholds()
	cases := []struct {
		mpki float64
		want Class
	}{
		{0, LowMPKI}, {0.99, LowMPKI}, {1, MediumMPKI}, {4.9, MediumMPKI},
		{5, HighMPKI}, {50, HighMPKI},
	}
	for _, c := range cases {
		if got := th.Classify(c.mpki); got != c.want {
			t.Errorf("Classify(%g) = %v, want %v", c.mpki, got, c.want)
		}
	}
	all := th.ClassifyAll([]float64{0.5, 2, 10})
	if all[0] != 0 || all[1] != 1 || all[2] != 2 {
		t.Errorf("ClassifyAll = %v", all)
	}
	if LowMPKI.String() != "Low" || MediumMPKI.String() != "Medium" || HighMPKI.String() != "High" {
		t.Error("class labels wrong")
	}
}

func TestModelConfidenceAndRequiredSize(t *testing.T) {
	d := []float64{1, 1.2, 0.8, 1.1, 0.9}
	cv := stats.CoefVar(d)
	if got, want := ModelConfidence(d, 10), stats.Confidence(cv, 10); got != want {
		t.Errorf("ModelConfidence = %g, want %g", got, want)
	}
	if got, want := RequiredSampleSize(d), stats.RequiredSampleSize(cv); got != want {
		t.Errorf("RequiredSampleSize = %d, want %d", got, want)
	}
}

// Property: every sampler returns indices in range and weights summing to
// one, for arbitrary sample sizes.
func TestSamplerContractsProperty(t *testing.T) {
	pop, d := synthPopulation(6, 2, 3, 0.1)
	class := []int{0, 0, 1, 1, 2, 2}
	samplers := []Sampler{
		NewSimpleRandom(pop.Size()),
		NewBalancedRandom(pop),
		NewBenchmarkStrata(pop, class, 3),
		NewWorkloadStrata(d, WorkloadStrataConfig{MinSize: 3, MaxStdDev: 0.01}),
	}
	f := func(seed int64, rawW uint8) bool {
		w := int(rawW)%40 + 1
		rng := rand.New(rand.NewSource(seed))
		for _, s := range samplers {
			idx, weights := s.Draw(rng, w)
			if len(idx) != len(weights) || len(idx) == 0 {
				return false
			}
			sum := 0.0
			for i, j := range idx {
				if j < 0 || j >= pop.Size() {
					return false
				}
				sum += weights[i]
			}
			if math.Abs(sum-1) > 1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}
