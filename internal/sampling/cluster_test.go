package sampling

import (
	"math"
	"math/rand"
	"testing"

	"mcbench/internal/workload"
)

// twoFamilies builds feature vectors for b benchmarks split into two
// clearly distinct behavioural families.
func twoFamilies(b int) [][]float64 {
	feats := make([][]float64, b)
	for i := range feats {
		if i < b/2 {
			feats[i] = []float64{0.1, 1.0, 0.0} // cache-friendly family
		} else {
			feats[i] = []float64{0.9, 0.1, 5.0} // memory-intensive family
		}
		// Small per-benchmark wiggle keeps points distinct.
		feats[i][0] += float64(i) * 1e-3
	}
	return feats
}

func TestBenchmarkClassesRecoverFamilies(t *testing.T) {
	const b = 8
	classes, err := BenchmarkClasses(rand.New(rand.NewSource(1)), twoFamilies(b), 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(classes) != b {
		t.Fatalf("classes len %d", len(classes))
	}
	for i := 1; i < b/2; i++ {
		if classes[i] != classes[0] {
			t.Errorf("benchmark %d not with its family: %v", i, classes)
		}
	}
	for i := b/2 + 1; i < b; i++ {
		if classes[i] != classes[b/2] {
			t.Errorf("benchmark %d not with its family: %v", i, classes)
		}
	}
	if classes[0] == classes[b-1] {
		t.Errorf("families merged: %v", classes)
	}
}

func TestClusterBenchStrataSamplerValid(t *testing.T) {
	const b, k = 8, 2
	pop := workload.Enumerate(b, k)
	s, classes, err := NewClusterBenchStrata(rand.New(rand.NewSource(2)), pop, twoFamilies(b), 2)
	if err != nil {
		t.Fatal(err)
	}
	if s.Name() != "cluster-strata" {
		t.Errorf("Name = %q", s.Name())
	}
	if len(classes) != b {
		t.Fatalf("classes %v", classes)
	}
	// With 2 classes and 2 cores there are 3 strata (AA, AB, BB).
	if n := NumStrata(s); n != 3 {
		t.Errorf("strata = %d, want 3", n)
	}
	rng := rand.New(rand.NewSource(3))
	idx, weights := s.Draw(rng, 30)
	if len(idx) != len(weights) {
		t.Fatal("length mismatch")
	}
	sum := 0.0
	for i, w := range weights {
		if idx[i] < 0 || idx[i] >= pop.Size() {
			t.Fatalf("index %d out of population", idx[i])
		}
		sum += w
	}
	if math.Abs(sum-1) > 1e-9 {
		t.Errorf("weights sum to %g", sum)
	}
}

func TestWorkloadFeaturesShape(t *testing.T) {
	const b, k = 6, 3
	pop := workload.Enumerate(b, k)
	feats := twoFamilies(b)
	wf, err := WorkloadFeatures(pop, feats)
	if err != nil {
		t.Fatal(err)
	}
	if len(wf) != pop.Size() {
		t.Fatalf("rows %d, want %d", len(wf), pop.Size())
	}
	dim := len(feats[0])
	for w, v := range wf {
		if len(v) != 2*dim {
			t.Fatalf("workload %d feature dim %d, want %d", w, len(v), 2*dim)
		}
		// Mean part must lie within [min, max] of member features; max
		// part must equal the member max.
		wl := pop.Workloads[w]
		for j := 0; j < dim; j++ {
			lo, hi := math.Inf(1), math.Inf(-1)
			for _, bench := range wl {
				x := feats[bench][j]
				lo = math.Min(lo, x)
				hi = math.Max(hi, x)
			}
			if v[j] < lo-1e-9 || v[j] > hi+1e-9 {
				t.Fatalf("workload %d mean feature %d = %g outside [%g,%g]", w, j, v[j], lo, hi)
			}
			if math.Abs(v[dim+j]-hi) > 1e-9 {
				t.Fatalf("workload %d max feature %d = %g, want %g", w, j, v[dim+j], hi)
			}
		}
	}
	// Order invariance is implied by the population being multisets, but
	// identical multisets must produce identical vectors.
	if pop.Size() > 1 {
		wf2, _ := WorkloadFeatures(pop, feats)
		for w := range wf {
			for j := range wf[w] {
				if wf[w][j] != wf2[w][j] {
					t.Fatal("WorkloadFeatures not deterministic")
				}
			}
		}
	}
}

func TestRepresentativeDraw(t *testing.T) {
	const b, k = 6, 2
	pop := workload.Enumerate(b, k)
	wf, err := WorkloadFeatures(pop, twoFamilies(b))
	if err != nil {
		t.Fatal(err)
	}
	s := NewRepresentative(wf, 30)
	if s.Name() != "workload-cluster" {
		t.Errorf("Name = %q", s.Name())
	}
	rng := rand.New(rand.NewSource(4))
	for _, w := range []int{1, 3, 5, 10} {
		idx, weights := s.Draw(rng, w)
		if len(idx) != w || len(weights) != w {
			t.Fatalf("Draw(%d) returned %d/%d", w, len(idx), len(weights))
		}
		sum := 0.0
		seen := map[int]bool{}
		for i, ix := range idx {
			if ix < 0 || ix >= pop.Size() {
				t.Fatalf("medoid index %d out of range", ix)
			}
			if seen[ix] {
				t.Errorf("Draw(%d): duplicate medoid %d", w, ix)
			}
			seen[ix] = true
			if weights[i] <= 0 {
				t.Errorf("medoid weight %g not positive", weights[i])
			}
			sum += weights[i]
		}
		if math.Abs(sum-1) > 1e-9 {
			t.Errorf("Draw(%d) weights sum %g", w, sum)
		}
	}
	// Requesting more representatives than workloads clips to the
	// population size.
	idx, _ := s.Draw(rng, pop.Size()+5)
	if len(idx) != pop.Size() {
		t.Errorf("oversized draw returned %d medoids", len(idx))
	}
}

// The representative estimator must be far more accurate than a single
// random workload when the population mean is dominated by cluster
// structure: estimate the mean of a value that depends only on the
// workload's family composition.
func TestRepresentativeEstimatesStructuredMean(t *testing.T) {
	const b, k = 8, 2
	pop := workload.Enumerate(b, k)
	feats := twoFamilies(b)
	wf, err := WorkloadFeatures(pop, feats)
	if err != nil {
		t.Fatal(err)
	}
	// Value of a workload: number of memory-intensive members (family 2).
	values := make([]float64, pop.Size())
	var popMean float64
	for w, wl := range pop.Workloads {
		for _, bench := range wl {
			if bench >= b/2 {
				values[w]++
			}
		}
		popMean += values[w]
	}
	popMean /= float64(pop.Size())

	s := NewRepresentative(wf, 30)
	rng := rand.New(rand.NewSource(5))
	idx, weights := s.Draw(rng, 3)
	est := 0.0
	for i, ix := range idx {
		est += weights[i] * values[ix]
	}
	if math.Abs(est-popMean) > 0.15 {
		t.Errorf("representative estimate %.3f vs population mean %.3f", est, popMean)
	}
}

func TestClusterAPIMisuse(t *testing.T) {
	pop := workload.Enumerate(4, 2)
	rng := rand.New(rand.NewSource(6))
	if _, err := BenchmarkClasses(rng, twoFamilies(4), 9); err == nil {
		t.Error("k > benchmarks accepted")
	}
	if _, _, err := NewClusterBenchStrata(rng, pop, twoFamilies(6), 2); err == nil {
		t.Error("feature/benchmark mismatch accepted")
	}
	if _, err := WorkloadFeatures(pop, twoFamilies(6)); err == nil {
		t.Error("feature/benchmark mismatch accepted")
	}
}
