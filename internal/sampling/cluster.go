package sampling

// Cluster-analysis-based selection methods surveyed in Section II-B of
// the paper, built on package cluster:
//
//   - Vandierendonck & Seznec [6] derive benchmark classes by cluster
//     analysis instead of a manual MPKI split; NewClusterBenchStrata
//     clusters benchmark feature vectors (package profile) and feeds the
//     classes to the benchmark-stratification sampler of Section VI-B-1.
//
//   - Van Biesbrouck, Eeckhout & Calder [7] cluster the *workloads*
//     directly on microarchitecture-independent profile data and simulate
//     one representative per cluster; NewRepresentative implements this
//     with k-means medoids weighted by cluster size.

import (
	"fmt"
	"math/rand"

	"mcbench/internal/cluster"
	"mcbench/internal/workload"
)

// BenchmarkClasses clusters per-benchmark feature vectors into k classes
// and returns the class of each benchmark. Features are z-scored
// internally; rows must align with the population's benchmark indices.
func BenchmarkClasses(rng *rand.Rand, benchFeatures [][]float64, k int) ([]int, error) {
	if k < 1 || k > len(benchFeatures) {
		return nil, fmt.Errorf("sampling: %d classes for %d benchmarks", k, len(benchFeatures))
	}
	res, err := cluster.KMeans(rng, cluster.Normalize(benchFeatures), k, 100)
	if err != nil {
		return nil, err
	}
	return cluster.SortedAssign(res), nil
}

// NewClusterBenchStrata builds a benchmark-stratification sampler whose
// classes come from cluster analysis of benchmark features rather than a
// manual classification (the fully-automatic variant of Section II-B).
func NewClusterBenchStrata(rng *rand.Rand, pop *workload.Population, benchFeatures [][]float64, k int) (Sampler, []int, error) {
	if len(benchFeatures) != pop.B {
		return nil, nil, fmt.Errorf("sampling: %d feature rows for %d benchmarks", len(benchFeatures), pop.B)
	}
	classes, err := BenchmarkClasses(rng, benchFeatures, k)
	if err != nil {
		return nil, nil, err
	}
	s := NewBenchmarkStrata(pop, classes, k)
	if st, ok := s.(*stratified); ok {
		st.name = "cluster-strata"
	}
	return s, classes, nil
}

// WorkloadFeatures builds one order-invariant feature vector per workload
// in the population: the element-wise mean and maximum of the member
// benchmarks' feature vectors, concatenated. Mean captures the aggregate
// resource demand; max captures the most aggressive co-runner, which is
// what determines LLC contention.
func WorkloadFeatures(pop *workload.Population, benchFeatures [][]float64) ([][]float64, error) {
	if len(benchFeatures) != pop.B {
		return nil, fmt.Errorf("sampling: %d feature rows for %d benchmarks", len(benchFeatures), pop.B)
	}
	if pop.B == 0 || len(benchFeatures[0]) == 0 {
		return nil, fmt.Errorf("sampling: empty features")
	}
	dim := len(benchFeatures[0])
	out := make([][]float64, pop.Size())
	for w, wl := range pop.Workloads {
		v := make([]float64, 2*dim)
		for slot, b := range wl {
			bf := benchFeatures[b]
			for j, x := range bf {
				v[j] += x / float64(len(wl))
				if slot == 0 || x > v[dim+j] {
					v[dim+j] = x
				}
			}
		}
		out[w] = v
	}
	return out, nil
}

// representative implements Van Biesbrouck et al.'s workload-cluster
// selection: Draw(w) k-means-clusters the workload feature matrix into w
// clusters (seeded by rng) and returns the medoid workload of each
// cluster, weighted by its cluster's share of the population. A single
// detailed simulation of the w medoids then estimates population
// throughput via the weighted mean.
type representative struct {
	features [][]float64 // normalised
	maxIter  int
}

// NewRepresentative builds the workload-clustering sampler over the full
// population's feature matrix (see WorkloadFeatures). maxIter bounds the
// k-means iterations per draw (clustering happens on every Draw, seeded
// by the caller's rng; 30 iterations is plenty for selection purposes).
func NewRepresentative(features [][]float64, maxIter int) Sampler {
	if len(features) == 0 {
		panic("sampling: no workload features")
	}
	if maxIter <= 0 {
		maxIter = 30
	}
	return &representative{features: cluster.Normalize(features), maxIter: maxIter}
}

func (r *representative) Name() string { return "workload-cluster" }

func (r *representative) Draw(rng *rand.Rand, w int) ([]int, []float64) {
	if w > len(r.features) {
		w = len(r.features)
	}
	if w < 1 {
		w = 1
	}
	res, err := cluster.KMeans(rng, r.features, w, r.maxIter)
	if err != nil {
		panic(fmt.Sprintf("sampling: representative draw: %v", err))
	}
	idx := res.Medoids(r.features)
	sizes := res.Sizes()
	weights := make([]float64, len(idx))
	n := float64(len(r.features))
	for c := range idx {
		weights[c] = float64(sizes[c]) / n
	}
	return idx, weights
}
