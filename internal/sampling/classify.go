package sampling

// Benchmark classification by memory intensity (Table IV of the paper):
// Low (MPKI < 1), Medium (1 <= MPKI < 5), High (MPKI >= 5), where MPKI is
// last-level-cache misses per kilo-instruction measured with the
// benchmark running alone on the reference configuration.

// Class is a memory-intensity class.
type Class int

// The three Table IV classes.
const (
	LowMPKI Class = iota
	MediumMPKI
	HighMPKI
)

// NumClasses is the number of memory-intensity classes.
const NumClasses = 3

// String returns the class label used in Table IV.
func (c Class) String() string {
	switch c {
	case LowMPKI:
		return "Low"
	case MediumMPKI:
		return "Medium"
	case HighMPKI:
		return "High"
	}
	return "?"
}

// Thresholds hold the class boundaries in misses per kilo-instruction.
type Thresholds struct {
	LowBelow float64 // MPKI below this is Low
	HighFrom float64 // MPKI at or above this is High
}

// PaperThresholds returns the Table IV boundaries (1 and 5 MPKI) on the
// paper's absolute scale.
func PaperThresholds() Thresholds { return Thresholds{LowBelow: 1, HighFrom: 5} }

// ScaledThresholds returns the class boundaries calibrated to this
// reproduction's scale. The synthetic traces run against a 4x-smaller LLC
// with 10^-3-length traces, so absolute memory-traffic rates are higher
// than the paper's MPKI numbers; these boundaries sit in the measured
// gaps between the suite's Low/Medium/High groups (see
// experiments.TableIV), playing the role the paper's 1 and 5 play.
func ScaledThresholds() Thresholds { return Thresholds{LowBelow: 5, HighFrom: 80} }

// Classify assigns a class to one MPKI value.
func (t Thresholds) Classify(mpki float64) Class {
	switch {
	case mpki < t.LowBelow:
		return LowMPKI
	case mpki < t.HighFrom:
		return MediumMPKI
	}
	return HighMPKI
}

// ClassifyAll maps per-benchmark MPKI values to class indices usable with
// NewBenchmarkStrata.
func (t Thresholds) ClassifyAll(mpki []float64) []int {
	out := make([]int, len(mpki))
	for i, v := range mpki {
		out[i] = int(t.Classify(v))
	}
	return out
}
