package cpu

import (
	"testing"

	"mcbench/internal/trace"
	"mcbench/internal/uncore"
)

// TestSnapshotRestoreRoundTrip runs a core, snapshots it mid-trace,
// lets the original run on, restores a fresh core from the snapshot and
// replays: both must commit the remaining µops at identical cycles.
func TestSnapshotRestoreRoundTrip(t *testing.T) {
	traces := trace.GenerateSuite(5000)
	for _, bench := range []string{"mcf", "povray", "gcc"} {
		tr := traces[bench]
		unc := uncore.MustNew(uncore.ConfigFor(1, "LRU"))
		c := MustNew(0, DefaultConfig(), tr, unc)
		c.Run(tr.Len() / 2)

		var cs State
		var us uncore.State
		c.Snapshot(&cs)
		unc.Snapshot(&us)

		want := make([]uint64, tr.Len())
		for i := range want {
			want[i] = c.Step()
		}

		unc2 := uncore.MustNew(uncore.ConfigFor(1, "LRU"))
		c2 := MustNew(0, DefaultConfig(), tr, unc2)
		c2.Restore(&cs)
		unc2.Restore(&us)
		for i := range want {
			if got := c2.Step(); got != want[i] {
				t.Fatalf("%s: step %d after restore commits at %d, original at %d", bench, i, got, want[i])
			}
		}
		if c2.Stats() != c.Stats() {
			t.Errorf("%s: stats diverge after restore:\n  restored %+v\n  original %+v", bench, c2.Stats(), c.Stats())
		}
	}
}

// TestSnapshotRestoreAllocationFree pins Snapshot into a warmed buffer
// and Restore at zero steady-state allocations, alongside the Step pin.
func TestSnapshotRestoreAllocationFree(t *testing.T) {
	tr := trace.GenerateSuite(5000)["mcf"]
	unc := uncore.MustNew(uncore.ConfigFor(1, "LRU"))
	c := MustNew(0, DefaultConfig(), tr, unc)
	c.Run(tr.Len())

	var cs State
	var us uncore.State
	c.Snapshot(&cs) // first call grows the buffer
	unc.Snapshot(&us)
	if avg := testing.AllocsPerRun(10, func() { c.Snapshot(&cs); unc.Snapshot(&us) }); avg != 0 {
		t.Errorf("steady-state Snapshot allocates %.2f times, want 0", avg)
	}
	if avg := testing.AllocsPerRun(10, func() { c.Restore(&cs); unc.Restore(&us) }); avg != 0 {
		t.Errorf("steady-state Restore allocates %.2f times, want 0", avg)
	}
}
