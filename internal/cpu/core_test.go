package cpu

import (
	"math"
	"testing"

	"mcbench/internal/trace"
	"mcbench/internal/uncore"
)

// fastMem is a fixed-latency memory for isolated core tests.
func fastMem(lat uint64) *uncore.FixedLatency { return &uncore.FixedLatency{Lat: lat} }

func mkTrace(t *testing.T, name string, n int) *trace.Trace {
	t.Helper()
	p, ok := trace.ByName(name)
	if !ok {
		t.Fatalf("unknown benchmark %s", name)
	}
	return trace.MustGenerate(p, n)
}

func TestNewValidation(t *testing.T) {
	tr := mkTrace(t, "hmmer", 100)
	if _, err := New(0, DefaultConfig(), nil, fastMem(10)); err == nil {
		t.Error("New accepted nil trace")
	}
	if _, err := New(0, DefaultConfig(), tr, nil); err == nil {
		t.Error("New accepted nil memory")
	}
	cfg := DefaultConfig()
	cfg.ROB = ring + 1
	if _, err := New(0, cfg, tr, fastMem(10)); err == nil {
		t.Error("New accepted oversized ROB")
	}
}

func TestIPCWithinSuperscalarBounds(t *testing.T) {
	for _, name := range []string{"hmmer", "mcf", "povray"} {
		tr := mkTrace(t, name, 20000)
		c := MustNew(0, DefaultConfig(), tr, fastMem(20))
		s := c.Run(tr.Len())
		ipc := s.IPC()
		if ipc <= 0 || ipc > float64(DefaultConfig().CommitWidth) {
			t.Errorf("%s: IPC %g outside (0, %d]", name, ipc, DefaultConfig().CommitWidth)
		}
	}
}

func TestDeterminism(t *testing.T) {
	tr := mkTrace(t, "gcc", 10000)
	run := func() uint64 {
		c := MustNew(0, DefaultConfig(), tr, fastMem(25))
		c.Run(tr.Len())
		return c.Cycles()
	}
	if a, b := run(), run(); a != b {
		t.Fatalf("nondeterministic: %d vs %d cycles", a, b)
	}
}

func TestMemoryLatencySlowsExecution(t *testing.T) {
	tr := mkTrace(t, "mcf", 20000) // memory-bound benchmark
	fast := MustNew(0, DefaultConfig(), tr, fastMem(10))
	slow := MustNew(0, DefaultConfig(), tr, fastMem(400))
	fast.Run(tr.Len())
	slow.Run(tr.Len())
	if slow.Cycles() <= fast.Cycles() {
		t.Fatalf("400-cycle memory (%d cyc) not slower than 10-cycle (%d cyc)",
			slow.Cycles(), fast.Cycles())
	}
	// A memory-bound chase should be strongly latency sensitive.
	ratio := float64(slow.Cycles()) / float64(fast.Cycles())
	if ratio < 1.5 {
		t.Errorf("mcf latency sensitivity only %.2fx, want > 1.5x", ratio)
	}
}

func TestComputeBoundInsensitiveToMemory(t *testing.T) {
	// A working set that fits in the DL1 and code that fits in the IL1:
	// the core should barely notice uncore latency.
	p := trace.Params{
		Name: "l1fit", LoadFrac: 0.25, StoreFrac: 0.1, BranchFrac: 0.1,
		BranchBias: 0.98, DepMean: 10, CodeBytes: 8 * trace.KB, Seed: 4,
		Patterns: []trace.PatternSpec{{Kind: trace.HotSet, Bytes: 8 * trace.KB, Weight: 1}},
	}
	tr := trace.MustGenerate(p, 20000)
	// Warm the L1s with a full pass, then measure a second pass so cold
	// misses do not dominate.
	secondPass := func(lat uint64) uint64 {
		c := MustNew(0, DefaultConfig(), tr, fastMem(lat))
		c.Run(tr.Len())
		warm := c.Cycles()
		c.Run(tr.Len())
		return c.Cycles() - warm
	}
	fast := secondPass(10)
	slow := secondPass(400)
	ratio := float64(slow) / float64(fast)
	if ratio > 1.3 {
		t.Errorf("L1-resident trace slowed %.2fx by memory latency, want < 1.3x", ratio)
	}
}

func TestILPSensitivity(t *testing.T) {
	// A fully serial dependency chain must run at ~1 µop/cycle while the
	// same ops without dependencies run at the machine width.
	const n = 20000
	mk := func(dep uint16) *trace.Trace {
		ops := make([]trace.Op, n)
		for i := range ops {
			ops[i] = trace.Op{Kind: trace.ALU, PC: 0x10000000, ILine: 0}
			if i > 0 {
				ops[i].Dep1 = dep
			}
		}
		return &trace.Trace{Name: "chain", Ops: ops}
	}
	run := func(tr *trace.Trace) uint64 {
		c := MustNew(0, DefaultConfig(), tr, fastMem(20))
		c.Run(tr.Len())
		return c.Cycles()
	}
	serial := run(mk(1))
	parallel := run(mk(0))
	if serial < n {
		t.Errorf("serial chain finished in %d cycles, want >= %d (1 op/cycle)", serial, n)
	}
	if parallel*2 >= serial {
		t.Errorf("independent ops (%d cyc) not clearly faster than serial chain (%d cyc)",
			parallel, serial)
	}
}

func TestBranchyCodePaysMispredictions(t *testing.T) {
	mk := func(bias float64) uint64 {
		p := trace.Params{
			Name: "br", LoadFrac: 0.05, BranchFrac: 0.3, BranchBias: bias,
			DepMean: 8, CodeBytes: 16 * trace.KB, Seed: 6,
			Patterns: []trace.PatternSpec{{Kind: trace.HotSet, Bytes: 8 * trace.KB, Weight: 1}},
		}
		tr := trace.MustGenerate(p, 20000)
		c := MustNew(0, DefaultConfig(), tr, fastMem(20))
		c.Run(tr.Len())
		return c.Cycles()
	}
	predictable := mk(0.995)
	unpredictable := mk(0.6)
	if unpredictable <= predictable {
		t.Errorf("60%%-biased branches (%d cyc) not slower than 99.5%%-biased (%d cyc)",
			unpredictable, predictable)
	}
}

func TestBranchPredictorLearnsBiasedBranches(t *testing.T) {
	tr := mkTrace(t, "libquantum", 30000) // bias 0.99
	c := MustNew(0, DefaultConfig(), tr, fastMem(20))
	s := c.Run(tr.Len())
	if s.BranchLookups == 0 {
		t.Fatal("no branches predicted")
	}
	rate := float64(s.BranchMisses) / float64(s.BranchLookups)
	if rate > 0.05 {
		t.Errorf("mispredict rate %.3f on 0.99-biased branches, want < 0.05", rate)
	}
}

func TestStatsAccounting(t *testing.T) {
	tr := mkTrace(t, "soplex", 20000)
	c := MustNew(0, DefaultConfig(), tr, fastMem(50))
	s := c.Run(tr.Len())
	if s.Committed != uint64(tr.Len()) {
		t.Errorf("committed %d, want %d", s.Committed, tr.Len())
	}
	if s.Cycles == 0 {
		t.Error("zero cycles")
	}
	if s.DL1.Accesses == 0 || s.DL1.Misses == 0 {
		t.Errorf("soplex DL1 stats implausible: %+v", s.DL1)
	}
	if s.UncoreDemand == 0 {
		t.Error("no uncore demand requests from a high-MPKI benchmark")
	}
	if math.Abs(s.IPC()*s.CPI()-1) > 1e-9 {
		t.Errorf("IPC*CPI = %g, want 1", s.IPC()*s.CPI())
	}
}

func TestTraceWrapsAround(t *testing.T) {
	tr := mkTrace(t, "hmmer", 500)
	c := MustNew(0, DefaultConfig(), tr, fastMem(20))
	c.Run(1200) // 2.4 traversals
	if c.Committed() != 1200 {
		t.Errorf("committed %d, want 1200", c.Committed())
	}
}

func TestRecorderCapturesRequests(t *testing.T) {
	tr := mkTrace(t, "mcf", 10000)
	c := MustNew(0, DefaultConfig(), tr, fastMem(100))
	var reqs []UncoreRequest
	c.SetRecorder(&reqs)
	c.Run(tr.Len())
	if len(reqs) == 0 {
		t.Fatal("recorder captured nothing for a memory-bound benchmark")
	}
	demand := 0
	for i, r := range reqs {
		if r.OpIndex < 0 || r.OpIndex >= tr.Len() {
			t.Fatalf("request %d has op index %d out of range", i, r.OpIndex)
		}
		if r.Complete < r.Issue {
			t.Fatalf("request %d completes (%d) before issue (%d)", i, r.Complete, r.Issue)
		}
		if !r.Prefetch && r.Kind == ReqData {
			demand++
		}
	}
	if demand == 0 {
		t.Fatal("no demand data requests recorded")
	}
	// Stopping the recorder stops appends.
	c.SetRecorder(nil)
	n := len(reqs)
	c.Run(1000)
	if len(reqs) != n {
		t.Error("recorder still appending after SetRecorder(nil)")
	}
}

func TestCommitTimesMonotonic(t *testing.T) {
	tr := mkTrace(t, "astar", 5000)
	c := MustNew(0, DefaultConfig(), tr, fastMem(30))
	prev := uint64(0)
	for i := 0; i < tr.Len(); i++ {
		ct := c.Step()
		if ct < prev {
			t.Fatalf("commit time went backwards at op %d: %d < %d", i, ct, prev)
		}
		prev = ct
	}
}

func TestCommitBandwidthRespected(t *testing.T) {
	// With a 4-wide commit, N µops need at least N/4 cycles.
	tr := mkTrace(t, "hmmer", 20000)
	cfg := DefaultConfig()
	c := MustNew(0, cfg, tr, fastMem(10))
	c.Run(tr.Len())
	minCycles := uint64(tr.Len() / cfg.CommitWidth)
	if c.Cycles() < minCycles {
		t.Errorf("cycles %d below commit-width bound %d", c.Cycles(), minCycles)
	}
}

func TestNarrowerCoreIsSlower(t *testing.T) {
	tr := mkTrace(t, "hmmer", 20000)
	wide := DefaultConfig()
	narrow := DefaultConfig()
	narrow.DecodeWidth, narrow.IssueWidth, narrow.CommitWidth = 1, 1, 1
	cw := MustNew(0, wide, tr, fastMem(20))
	cn := MustNew(0, narrow, tr, fastMem(20))
	cw.Run(tr.Len())
	cn.Run(tr.Len())
	if cn.Cycles() <= cw.Cycles() {
		t.Errorf("scalar core (%d cyc) not slower than 4-wide core (%d cyc)", cn.Cycles(), cw.Cycles())
	}
}

func TestSmallROBIsSlower(t *testing.T) {
	tr := mkTrace(t, "mcf", 20000)
	big := DefaultConfig()
	small := DefaultConfig()
	small.ROB = 16
	cb := MustNew(0, big, tr, fastMem(200))
	cs := MustNew(0, small, tr, fastMem(200))
	cb.Run(tr.Len())
	cs.Run(tr.Len())
	if cs.Cycles() <= cb.Cycles() {
		t.Errorf("16-entry ROB (%d cyc) not slower than 128-entry (%d cyc) on memory-bound code",
			cs.Cycles(), cb.Cycles())
	}
}
