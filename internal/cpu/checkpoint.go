package cpu

// Checkpoint support: a Core's State captures every field that evolves
// during execution — trace position, the per-µop time rings, issue-slot
// bookings, MSHRs, caches, TLBs, all predictors and the DL1 prefetcher —
// while leaving the identity fields (id, config, trace, memory binding)
// to the owner that rebuilds the core. Scratch (pfBuf, the prefetchers'
// proposal buffers) and the recorder hook are deliberately not state:
// scratch is dead between Steps, and recording is an observation channel,
// not simulated machinery. Fields are exported so snapshots survive
// encoding/gob persistence; Snapshot into a warmed buffer and Restore are
// allocation-free.

import (
	"mcbench/internal/bpred"
	"mcbench/internal/cache"
)

// TLBState is a reusable snapshot of one translation cache.
type TLBState struct {
	Tags   []uint64
	Misses uint64
	Hits   uint64
}

func (t *tlb) snapshot(into *TLBState) {
	into.Tags = append(into.Tags[:0], t.tags...)
	into.Misses = t.misses
	into.Hits = t.hits
}

func (t *tlb) restore(from *TLBState) {
	copy(t.tags, from.Tags)
	t.misses = from.Misses
	t.hits = from.Hits
}

// State is a reusable deep snapshot of a Core.
type State struct {
	Pos int
	Seq uint64

	ShadowRAS []uint64

	IssueT    [ring]uint64
	CompleteT [ring]uint64
	CommitT   [ring]uint64

	LoadSeq   uint64
	StoreSeq  uint64
	LoadDone  [64]uint64
	StoreDone [32]uint64

	FetchCycle   uint64
	FetchInCycle int
	RedirectAt   uint64
	LastILine    uint32
	HaveILine    bool

	Slots [issueSlots]uint64

	LastCommit     uint64
	LastCommitCyc  uint64
	CommitsInCycle int

	DL1MissLine [maxDL1MSHRs]uint64
	DL1MissDone [maxDL1MSHRs]uint64
	DL1MissN    int

	Stats Stats

	IL1  cache.State
	DL1  cache.State
	ITLB TLBState
	DTLB TLBState
	BP   bpred.PredictorState
	BTAC bpred.BTACState
	Ind  bpred.IndirectState
	RAS  bpred.RASState
	DPF  cache.StrideNextState
}

// Snapshot deep-copies the core's mutable state into the buffer. The
// first call grows the buffer's slices; subsequent calls into the same
// buffer allocate nothing.
func (c *Core) Snapshot(into *State) {
	into.Pos = c.pos
	into.Seq = c.seq
	into.ShadowRAS = append(into.ShadowRAS[:0], c.shadowRAS...)
	into.IssueT = c.issueT
	into.CompleteT = c.completeT
	into.CommitT = c.commitT
	into.LoadSeq = c.loadSeq
	into.StoreSeq = c.storeSeq
	into.LoadDone = c.loadDone
	into.StoreDone = c.storeDone
	into.FetchCycle = c.fetchCycle
	into.FetchInCycle = c.fetchInCycle
	into.RedirectAt = c.redirectAt
	into.LastILine = c.lastILine
	into.HaveILine = c.haveILine
	into.Slots = c.slots
	into.LastCommit = c.lastCommit
	into.LastCommitCyc = c.lastCommitCyc
	into.CommitsInCycle = c.commitsInCycle
	for i := range c.dl1Miss {
		into.DL1MissLine[i] = c.dl1Miss[i].line
		into.DL1MissDone[i] = c.dl1Miss[i].done
	}
	into.DL1MissN = c.dl1MissN
	into.Stats = c.stats

	c.il1.Snapshot(&into.IL1)
	c.dl1.Snapshot(&into.DL1)
	c.itlb.snapshot(&into.ITLB)
	c.dtlb.snapshot(&into.DTLB)
	bpred.Snapshot(c.bp, &into.BP)
	c.btac.Snapshot(&into.BTAC)
	c.ind.Snapshot(&into.Ind)
	c.ras.Snapshot(&into.RAS)
	c.dpf.Snapshot(&into.DPF)
}

// Restore overwrites the core's mutable state from the buffer. The target
// core must have the same configuration (and therefore geometry) as the
// snapshot's source; it may otherwise be fresh or mid-run.
func (c *Core) Restore(from *State) {
	c.pos = from.Pos
	c.seq = from.Seq
	c.shadowRAS = append(c.shadowRAS[:0], from.ShadowRAS...)
	c.issueT = from.IssueT
	c.completeT = from.CompleteT
	c.commitT = from.CommitT
	c.loadSeq = from.LoadSeq
	c.storeSeq = from.StoreSeq
	c.loadDone = from.LoadDone
	c.storeDone = from.StoreDone
	c.fetchCycle = from.FetchCycle
	c.fetchInCycle = from.FetchInCycle
	c.redirectAt = from.RedirectAt
	c.lastILine = from.LastILine
	c.haveILine = from.HaveILine
	c.slots = from.Slots
	c.lastCommit = from.LastCommit
	c.lastCommitCyc = from.LastCommitCyc
	c.commitsInCycle = from.CommitsInCycle
	for i := range c.dl1Miss {
		c.dl1Miss[i] = mshrEntry{line: from.DL1MissLine[i], done: from.DL1MissDone[i]}
	}
	c.dl1MissN = from.DL1MissN
	c.stats = from.Stats

	c.il1.Restore(&from.IL1)
	c.dl1.Restore(&from.DL1)
	c.itlb.restore(&from.ITLB)
	c.dtlb.restore(&from.DTLB)
	bpred.Restore(c.bp, &from.BP)
	c.btac.Restore(&from.BTAC)
	c.ind.Restore(&from.Ind)
	c.ras.Restore(&from.RAS)
	c.dpf.Restore(&from.DPF)
}
