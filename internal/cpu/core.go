package cpu

import (
	"fmt"

	"mcbench/internal/bpred"
	"mcbench/internal/cache"
	"mcbench/internal/trace"
	"mcbench/internal/uncore"
)

// ring is the power-of-two window for per-µop time bookkeeping; it must
// be at least as large as the biggest structural window (the ROB).
const ring = 256

// issueSlots is the power-of-two cycle-ring used to enforce issue
// bandwidth; slots are tagged with their cycle so arbitrarily distant
// cycles can share the ring.
const issueSlots = 1 << 15

// RequestKind distinguishes the uncore request sources.
type RequestKind uint8

// Request sources.
const (
	ReqData  RequestKind = iota // DL1 demand miss
	ReqInstr                    // IL1 demand miss
	ReqWB                       // DL1 dirty-line writeback
)

// UncoreRequest is one request the core sent below its L1s. Recordings of
// these (see SetRecorder) are the raw material for BADCO model building.
type UncoreRequest struct {
	OpIndex  int    // position in the trace of the µop that caused it
	VAddr    uint64 // virtual line address
	PC       uint64 // requesting instruction address
	Kind     RequestKind
	Write    bool
	Prefetch bool
	Issue    uint64 // cycle the request left the core
	Complete uint64 // cycle the data returned
}

// Stats summarises one core's execution.
type Stats struct {
	Committed     uint64
	Cycles        uint64
	UncoreDemand  uint64 // demand requests sent to the uncore
	UncorePref    uint64 // prefetch requests sent to the uncore
	DL1           cache.Stats
	IL1           cache.Stats
	BranchMisses  uint64
	BranchLookups uint64
	TargetMisses  uint64 // BTAC + indirect + RAS target mispredictions
	DTLBMisses    uint64
	ITLBMisses    uint64
}

// IPC returns committed instructions per cycle.
func (s Stats) IPC() float64 {
	if s.Cycles == 0 {
		return 0
	}
	return float64(s.Committed) / float64(s.Cycles)
}

// CPI returns cycles per committed instruction.
func (s Stats) CPI() float64 {
	if s.Committed == 0 {
		return 0
	}
	return float64(s.Cycles) / float64(s.Committed)
}

// Core is a detailed out-of-order core bound to one trace and one memory
// hierarchy.
type Core struct {
	id  int
	cfg Config
	tr  *trace.Trace
	mem uncore.Memory

	il1  *cache.Cache
	dl1  *cache.Cache
	itlb *tlb
	dtlb *tlb
	bp   bpred.Predictor
	btac *bpred.BTAC
	ind  *bpred.Indirect
	ras  *bpred.RAS
	dpf  *cache.StrideNextPrefetcher // DL1 prefetcher (ip-stride + next-line)
	ipf  cache.Prefetcher            // IL1 prefetcher (next-line)

	// shadowRAS is the architectural call stack (ground truth for return
	// targets); the 16-entry ras above is the predictor being modelled.
	shadowRAS []uint64

	pos int    // next op in the trace
	seq uint64 // µops executed across restarts

	// Per-µop time rings indexed by seq%ring.
	issueT    [ring]uint64
	completeT [ring]uint64
	commitT   [ring]uint64

	// Load/store queue completion rings indexed by per-kind sequence.
	loadSeq   uint64
	storeSeq  uint64
	loadDone  [64]uint64 // LDQ frees at load completion
	storeDone [32]uint64 // STQ frees at store commit

	// Fetch state.
	fetchCycle   uint64
	fetchInCycle int
	redirectAt   uint64
	lastILine    uint32
	haveILine    bool

	// Issue bandwidth booking: one packed word per slot, the cycle tag in
	// the high 60 bits and the booked count in the low 4 (IssueWidth is
	// far below 16), so probing a slot touches one cache line, not two
	// parallel arrays.
	slots [issueSlots]uint64

	// Commit bandwidth.
	lastCommit     uint64
	lastCommitCyc  uint64
	commitsInCycle int

	// DL1 MSHRs: a fixed array of in-flight fills (line address -> fill
	// completion), scanned linearly like the uncore's MSHR file — the
	// fixed array keeps the hot path free of map traffic. The first
	// dl1MissN entries are live; as with the map this replaced, expired
	// entries linger until a pruneDL1 call, and all operations are
	// order-independent, so swap-removal preserves the exact semantics.
	dl1Miss  [maxDL1MSHRs]mshrEntry
	dl1MissN int

	// MSHR-pressure prefetch-drop calibration (see ffPrefetchObserve):
	// the detailed path counts proposals reaching its pressure check and
	// those that issue; the fast-forward replays the observed rate
	// through the ffPfAcc accumulator.
	pfCand   uint64
	pfIssued uint64
	ffPfAcc  float64

	// pfBuf detaches DL1 prefetch proposals from the prefetcher's reused
	// buffer before they are issued (dl1Prefetch feeds the uncore, whose
	// own prefetchers have their own buffers, so pfBuf is never reused
	// re-entrantly).
	pfBuf []uint64

	stats    Stats
	recorder *[]UncoreRequest
}

// maxDL1MSHRs bounds Config.DL1MSHRs so the MSHR file can be a fixed
// array inside Core.
const maxDL1MSHRs = 64

// mshrEntry is one in-flight DL1 fill.
type mshrEntry struct {
	line uint64
	done uint64
}

// New builds a core with the given id, executing tr against mem.
func New(id int, cfg Config, tr *trace.Trace, mem uncore.Memory) (*Core, error) {
	if tr == nil || tr.Len() == 0 {
		return nil, fmt.Errorf("cpu: empty trace")
	}
	if mem == nil {
		return nil, fmt.Errorf("cpu: nil memory")
	}
	if cfg.ROB > ring {
		return nil, fmt.Errorf("cpu: ROB %d exceeds window limit %d", cfg.ROB, ring)
	}
	if cfg.LDQ > len((&Core{}).loadDone) || cfg.STQ > len((&Core{}).storeDone) {
		return nil, fmt.Errorf("cpu: LDQ/STQ exceed ring sizes")
	}
	if cfg.DL1MSHRs > maxDL1MSHRs {
		return nil, fmt.Errorf("cpu: DL1MSHRs %d exceeds MSHR file size %d", cfg.DL1MSHRs, maxDL1MSHRs)
	}
	if cfg.IssueWidth >= 16 {
		return nil, fmt.Errorf("cpu: IssueWidth %d exceeds issue-slot count field", cfg.IssueWidth)
	}
	il1, err := cache.New("IL1", cfg.IL1Bytes, cfg.IL1Ways, cache.NewLRUPolicy())
	if err != nil {
		return nil, err
	}
	dl1, err := cache.New("DL1", cfg.DL1Bytes, cfg.DL1Ways, cache.NewLRUPolicy())
	if err != nil {
		return nil, err
	}
	kind := cfg.Predictor
	if kind == "" {
		kind = bpred.Bimodal
	}
	bp, err := bpred.New(kind, cfg.BPIndexBits, cfg.BPHistoryBits)
	if err != nil {
		return nil, err
	}
	ras := cfg.RASEntries
	if ras <= 0 {
		ras = 16
	}
	btacEnts := cfg.BTACEntries
	if btacEnts <= 0 {
		btacEnts = 512
	}
	return &Core{
		id:   id,
		cfg:  cfg,
		tr:   tr,
		mem:  mem,
		il1:  il1,
		dl1:  dl1,
		itlb: newTLB(cfg.ITLBEntries),
		dtlb: newTLB(cfg.DTLBEntries),
		bp:   bp,
		btac: bpred.NewBTAC(btacEnts, 4),
		ind:  bpred.DefaultIndirect(),
		ras:  bpred.NewRAS(ras),
		dpf:  cache.NewStrideNext(cfg.PrefetchDegree, true),
		// The IL1 next-line prefetcher fires on every access so that
		// sequential code fetch stays ahead of demand.
		ipf:   cache.NewNextLine(false),
		pfBuf: make([]uint64, 0, 8),
	}, nil
}

// MustNew is New for known-good arguments.
func MustNew(id int, cfg Config, tr *trace.Trace, mem uncore.Memory) *Core {
	c, err := New(id, cfg, tr, mem)
	if err != nil {
		panic(err)
	}
	return c
}

// SetRecorder directs the core to append every uncore request it issues
// to dst. Pass nil to stop recording.
func (c *Core) SetRecorder(dst *[]UncoreRequest) { c.recorder = dst }

// ID returns the core's identifier (its uncore port).
func (c *Core) ID() int { return c.id }

// Committed returns the number of µops committed so far.
func (c *Core) Committed() uint64 { return c.seq }

// Now returns the core's local clock: the commit time of the last µop.
// The multicore driver steps the core with the smallest Now.
func (c *Core) Now() uint64 { return c.lastCommit }

// Cycles returns the commit cycle of the last committed µop.
func (c *Core) Cycles() uint64 { return c.lastCommit }

// Stats returns a snapshot of the core's statistics.
func (c *Core) Stats() Stats {
	s := c.stats
	s.Committed = c.seq
	s.Cycles = c.lastCommit
	s.DL1 = c.dl1.Stats()
	s.IL1 = c.il1.Stats()
	bs := c.bp.Stats()
	s.BranchMisses = bs.Misses
	s.BranchLookups = bs.Lookups
	s.TargetMisses = c.btac.Stats().Misses + c.ind.Stats().Misses + c.ras.Stats().Misses
	s.DTLBMisses = c.dtlb.misses
	s.ITLBMisses = c.itlb.misses
	return s
}

// Step executes one µop; the trace wraps around at the end (thread
// restart semantics). It returns the op's commit time.
func (c *Core) Step() uint64 {
	op := &c.tr.Ops[c.pos]
	i := c.seq

	fetch := c.fetch(op, i)
	issue := c.issue(op, i, fetch)
	complete := c.execute(op, issue)

	switch op.Kind {
	case trace.Branch:
		if predicted := c.bp.Predict(op.PC, op.Taken); predicted != op.Taken {
			c.redirectAt = complete + c.cfg.MispredictPenalty
		}
	case trace.Call:
		c.doCall(op, complete)
	case trace.Ret:
		c.doReturn(complete)
	}

	commit := c.commit(complete)

	c.issueT[i%ring] = issue
	c.completeT[i%ring] = complete
	c.commitT[i%ring] = commit
	switch op.Kind {
	case trace.Load:
		c.loadDone[c.loadSeq%uint64(len(c.loadDone))] = complete
		c.loadSeq++
	case trace.Store:
		c.storeDone[c.storeSeq%uint64(len(c.storeDone))] = commit
		c.storeSeq++
	}

	c.seq++
	c.pos++
	if c.pos == c.tr.Len() {
		c.pos = 0
		// Thread restart: the architectural call stack starts empty again.
		// The RAS keeps its (now stale) contents, as hardware would.
		c.shadowRAS = c.shadowRAS[:0]
	}
	return commit
}

// StepUntil executes µops until the local clock reaches limit or the
// committed count reaches quota, whichever comes first, and returns the
// number of µops executed. It is the batch form of Step used by the
// multicore driver: because Now is nondecreasing and the other cores'
// clocks cannot change while this core runs, stepping until the clock
// reaches the runner-up core's clock reproduces the per-step
// smallest-clock-first schedule exactly, with one dispatch per batch.
func (c *Core) StepUntil(limit, quota uint64) (steps uint64) {
	for c.lastCommit < limit && c.seq < quota {
		c.Step()
		steps++
	}
	return steps
}

// fetch computes the cycle the µop leaves the front end.
func (c *Core) fetch(op *trace.Op, i uint64) uint64 {
	// New decode group when the current cycle's slots are exhausted.
	if c.fetchInCycle >= c.cfg.DecodeWidth {
		c.fetchCycle++
		c.fetchInCycle = 0
	}
	ft := c.fetchCycle
	if c.redirectAt > ft {
		ft = c.redirectAt
	}
	// ROB occupancy: the op cannot enter until op i-ROB has committed.
	if i >= uint64(c.cfg.ROB) {
		if t := c.commitT[(i-uint64(c.cfg.ROB))%ring]; t > ft {
			ft = t
		}
	}
	// Instruction delivery: one IL1 access per new code line.
	if !c.haveILine || op.ILine != c.lastILine {
		c.lastILine = op.ILine
		c.haveILine = true
		line := codeBase + uint64(op.ILine)*cache.LineSize
		ft = c.instrFetch(line, line, ft)
	}
	if ft > c.fetchCycle {
		c.fetchCycle = ft
		c.fetchInCycle = 0
	}
	c.fetchInCycle++
	return c.fetchCycle
}

// codeBase is the virtual base address of the synthetic code segment,
// disjoint from the trace generator's data regions.
const codeBase = 0x10000000

// instrFetch models ITLB + IL1 access at cycle t, returning when the
// instruction bytes are available. Sequential IL1 hits are fully
// pipelined and do not stall the front end; only misses (and TLB walks)
// do.
func (c *Core) instrFetch(pc, line uint64, t uint64) uint64 {
	if !c.itlb.lookup(pc / uncore.PageSize) {
		t += c.cfg.TLBWalkLat
	}
	hit := c.il1.Access(line, false)
	if !hit {
		miss := t + c.cfg.IL1Lat
		done := c.mem.Access(c.id, pc, line, false, false, miss)
		c.record(UncoreRequest{OpIndex: c.pos, VAddr: line, PC: pc, Kind: ReqInstr, Issue: miss, Complete: done})
		c.stats.UncoreDemand++
		c.il1.Fill(line, false, false)
		t = done
	}
	for _, a := range c.ipf.Observe(pc, line, !hit) {
		c.il1Prefetch(pc, a, t)
	}
	return t
}

// il1Prefetch issues a next-line instruction prefetch.
func (c *Core) il1Prefetch(pc, line uint64, t uint64) {
	if c.il1.Probe(line) {
		return
	}
	done := c.mem.Access(c.id, pc, line, false, true, t)
	c.record(UncoreRequest{OpIndex: c.pos, VAddr: line, PC: pc, Kind: ReqInstr, Prefetch: true, Issue: t, Complete: done})
	c.stats.UncorePref++
	c.il1.Fill(line, false, true)
}

// issue computes the op's issue cycle: operands ready, reservation
// station free, load/store queue entry free, issue slot free.
func (c *Core) issue(op *trace.Op, i, fetch uint64) uint64 {
	ready := fetch + c.cfg.FetchToIssue
	if op.Dep1 > 0 {
		if t := c.completeT[(i-uint64(op.Dep1))%ring]; t > ready {
			ready = t
		}
	}
	if op.Dep2 > 0 {
		if t := c.completeT[(i-uint64(op.Dep2))%ring]; t > ready {
			ready = t
		}
	}
	// RS occupancy (approximated in program order: entry i-RS freed at
	// its issue).
	if i >= uint64(c.cfg.RS) {
		if t := c.issueT[(i-uint64(c.cfg.RS))%ring]; t > ready {
			ready = t
		}
	}
	switch op.Kind {
	case trace.Load:
		if c.loadSeq >= uint64(c.cfg.LDQ) {
			if t := c.loadDone[(c.loadSeq-uint64(c.cfg.LDQ))%uint64(len(c.loadDone))]; t > ready {
				ready = t
			}
		}
	case trace.Store:
		if c.storeSeq >= uint64(c.cfg.STQ) {
			if t := c.storeDone[(c.storeSeq-uint64(c.cfg.STQ))%uint64(len(c.storeDone))]; t > ready {
				ready = t
			}
		}
	}
	return c.bookIssueSlot(ready)
}

// bookIssueSlot finds the first cycle >= earliest with spare issue
// bandwidth and books it.
func (c *Core) bookIssueSlot(earliest uint64) uint64 {
	t := earliest
	for {
		idx := t % issueSlots
		s := c.slots[idx]
		if s>>4 != t {
			s = t << 4 // stale slot: re-tag with a zero count
		}
		if int(s&15) < c.cfg.IssueWidth {
			c.slots[idx] = s + 1
			return t
		}
		t++
	}
}

// doCall models target prediction for a call: direct calls hit the BTAC,
// indirect calls the indirect predictor; a wrong or missing target costs
// the redirect penalty. The return address is pushed on both the
// 16-entry RAS (the predictor) and the unbounded shadow stack (the
// architectural truth).
func (c *Core) doCall(op *trace.Op, complete uint64) {
	target := op.Addr
	var predicted uint64
	var ok bool
	if op.Indirect {
		predicted, ok = c.ind.Predict(op.PC)
		c.ind.Update(op.PC, target)
	} else {
		predicted, ok = c.btac.Predict(op.PC)
		c.btac.Update(op.PC, target)
	}
	if !ok || predicted != target {
		c.redirectAt = complete + c.cfg.MispredictPenalty
	}
	// Return address: the µop after the call (synthetic 16-byte slots).
	ret := op.PC + 16
	c.ras.Push(ret)
	c.shadowRAS = append(c.shadowRAS, ret)
}

// doReturn pops the RAS against the shadow stack; a wrong prediction
// (RAS overflow dropped the matching push, or a trace restart emptied the
// shadow stack) costs the redirect penalty.
func (c *Core) doReturn(complete uint64) {
	var want uint64
	if n := len(c.shadowRAS); n > 0 {
		want = c.shadowRAS[n-1]
		c.shadowRAS = c.shadowRAS[:n-1]
	}
	if got := c.ras.Pop(want); got != want {
		c.redirectAt = complete + c.cfg.MispredictPenalty
	}
}

// execute returns the op's completion time.
func (c *Core) execute(op *trace.Op, issue uint64) uint64 {
	switch op.Kind {
	case trace.ALU, trace.Branch, trace.Call, trace.Ret:
		return issue + 1
	case trace.FP:
		return issue + c.cfg.FPLat
	case trace.Load:
		return c.load(op, issue)
	case trace.Store:
		c.store(op, issue)
		return issue + 1
	}
	panic(fmt.Sprintf("cpu: unknown op kind %v", op.Kind))
}

// load models DTLB + DL1 access (with MSHRs and prefetch) for a load.
func (c *Core) load(op *trace.Op, issue uint64) uint64 {
	t := issue
	if !c.dtlb.lookup(op.Addr / uncore.PageSize) {
		t += c.cfg.TLBWalkLat
	}
	t += c.cfg.DL1Lat
	line := cache.AlignLine(op.Addr)
	hit := c.dl1.Access(line, false)
	var done uint64
	if hit {
		done = t
		if fill, ok := c.dl1MissLookup(line); ok && fill > done {
			done = fill // late fill (e.g. in-flight prefetch)
		}
	} else {
		done = c.dl1FillMiss(op.PC, line, false, t)
	}
	c.dl1PrefetchObserve(op.PC, op.Addr, !hit, t)
	return done
}

// store models the DL1 write path: stores retire through the store
// buffer without blocking; a write miss allocates the line in the
// background (RFO).
func (c *Core) store(op *trace.Op, issue uint64) {
	t := issue
	if !c.dtlb.lookup(op.Addr / uncore.PageSize) {
		t += c.cfg.TLBWalkLat
	}
	t += c.cfg.DL1Lat
	line := cache.AlignLine(op.Addr)
	if hit := c.dl1.Access(line, true); !hit {
		c.dl1FillMiss(op.PC, line, true, t)
	}
	c.dl1PrefetchObserve(op.PC, op.Addr, false, t)
}

// dl1FillMiss services a DL1 demand miss at time t through the MSHRs and
// the uncore; it returns the fill completion time.
func (c *Core) dl1FillMiss(pc, line uint64, write bool, t uint64) uint64 {
	if done, ok := c.dl1MissLookup(line); ok {
		if done < t {
			return t
		}
		return done // merged into an in-flight fill
	}
	c.pruneDL1(t)
	if c.dl1MissN >= c.cfg.DL1MSHRs {
		if e := c.earliestDL1(); e > t {
			t = e
		}
		c.pruneDL1(t)
	}
	done := c.mem.Access(c.id, pc, line, write, false, t)
	c.record(UncoreRequest{OpIndex: c.pos, VAddr: line, PC: pc, Kind: ReqData, Write: write, Issue: t, Complete: done})
	c.stats.UncoreDemand++
	c.dl1MissInsert(line, done)
	ev := c.dl1.Fill(line, write, false)
	if ev.Valid && ev.Dirty {
		// Write the dirty victim back to the LLC at fill time.
		c.mem.Access(c.id, pc, ev.Addr, true, false, done)
		c.record(UncoreRequest{OpIndex: c.pos, VAddr: ev.Addr, PC: pc, Kind: ReqWB, Write: true, Issue: done, Complete: done})
		c.stats.UncoreDemand++
	}
	return done
}

// dl1Prefetch issues one DL1 prefetch if the line is not resident or in
// flight, dropping it when the MSHRs are full.
func (c *Core) dl1Prefetch(pc, line uint64, t uint64) {
	if c.dl1.Probe(line) {
		return
	}
	if _, ok := c.dl1MissLookup(line); ok {
		return
	}
	// Prefetches only use spare MSHR capacity: demand traffic keeps
	// priority under pressure. The candidate/issued counts calibrate the
	// fast-forward path's replay of this drop rate.
	c.pfCand++
	if c.dl1MissN >= c.cfg.DL1MSHRs/2 {
		return
	}
	c.pfIssued++
	done := c.mem.Access(c.id, pc, line, false, true, t)
	c.record(UncoreRequest{OpIndex: c.pos, VAddr: line, PC: pc, Kind: ReqData, Prefetch: true, Issue: t, Complete: done})
	c.stats.UncorePref++
	c.dl1MissInsert(line, done)
	ev := c.dl1.Fill(line, false, true)
	if ev.Valid && ev.Dirty {
		c.mem.Access(c.id, pc, ev.Addr, true, false, done)
		c.record(UncoreRequest{OpIndex: c.pos, VAddr: ev.Addr, PC: pc, Kind: ReqWB, Write: true, Issue: done, Complete: done})
		c.stats.UncoreDemand++
	}
}

// dl1PrefetchObserve trains the DL1 prefetchers and issues proposals.
func (c *Core) dl1PrefetchObserve(pc, addr uint64, miss bool, t uint64) {
	props := c.dpf.Observe(pc, addr, miss)
	if len(props) == 0 {
		return
	}
	// Stage through the reusable per-core scratch: props aliases the
	// prefetcher's internal buffer, which the next Observe overwrites.
	// (Element-wise: proposals are 1-2 entries, below memmove's worth.)
	c.pfBuf = c.pfBuf[:0]
	for _, a := range props {
		c.pfBuf = append(c.pfBuf, a)
	}
	for _, a := range c.pfBuf {
		c.dl1Prefetch(pc, cache.AlignLine(a), t)
	}
}

// dl1MissLookup returns the completion time of the fill of line, if one
// is booked (possibly already expired — entries persist until pruned).
func (c *Core) dl1MissLookup(line uint64) (uint64, bool) {
	for i := 0; i < c.dl1MissN; i++ {
		if c.dl1Miss[i].line == line {
			return c.dl1Miss[i].done, true
		}
	}
	return 0, false
}

// dl1MissInsert books an MSHR for a fill of line completing at done.
// Callers ensure capacity beforehand; if the file is somehow full, the
// earliest-completing entry is replaced (unreachable through the normal
// paths; keeps the model robust).
func (c *Core) dl1MissInsert(line, done uint64) {
	if c.dl1MissN == len(c.dl1Miss) {
		min := 0
		for i := 1; i < c.dl1MissN; i++ {
			if c.dl1Miss[i].done < c.dl1Miss[min].done {
				min = i
			}
		}
		c.dl1Miss[min] = mshrEntry{line: line, done: done}
		return
	}
	c.dl1Miss[c.dl1MissN] = mshrEntry{line: line, done: done}
	c.dl1MissN++
}

func (c *Core) pruneDL1(now uint64) {
	for i := 0; i < c.dl1MissN; {
		if c.dl1Miss[i].done <= now {
			c.dl1MissN--
			c.dl1Miss[i] = c.dl1Miss[c.dl1MissN]
		} else {
			i++
		}
	}
}

func (c *Core) earliestDL1() uint64 {
	first := true
	var min uint64
	for i := 0; i < c.dl1MissN; i++ {
		if done := c.dl1Miss[i].done; first || done < min {
			min = done
			first = false
		}
	}
	return min
}

// commit retires the op in order with commit-width bandwidth.
func (c *Core) commit(complete uint64) uint64 {
	ct := complete
	if c.lastCommit > ct {
		ct = c.lastCommit
	}
	if ct == c.lastCommitCyc {
		if c.commitsInCycle >= c.cfg.CommitWidth {
			ct++
			c.lastCommitCyc = ct
			c.commitsInCycle = 1
		} else {
			c.commitsInCycle++
		}
	} else {
		c.lastCommitCyc = ct
		c.commitsInCycle = 1
	}
	c.lastCommit = ct
	return ct
}

func (c *Core) record(r UncoreRequest) {
	if c.recorder != nil {
		*c.recorder = append(*c.recorder, r)
	}
}

// Run executes n µops and returns the resulting statistics snapshot.
func (c *Core) Run(n int) Stats {
	for i := 0; i < n; i++ {
		c.Step()
	}
	return c.Stats()
}
