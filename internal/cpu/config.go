// Package cpu implements the detailed out-of-order core timing model that
// plays the role of the paper's Zesto simulator. It executes a synthetic
// µop trace (package trace) against a memory hierarchy (package uncore),
// modelling the Table I core: 4-wide decode, 6-wide issue, 4-wide commit,
// 128-entry ROB, 36 reservation stations, 36/24-entry load/store queues,
// 32 kB IL1 and DL1 with prefetchers, I/D TLBs, a selectable branch
// predictor (bimodal/gshare/tournament/TAGE, package bpred), a BTAC, an
// indirect-call predictor and a 16-entry return address stack.
//
// The model is a scoreboard simulator: each µop is assigned fetch, issue,
// completion and commit times subject to structural constraints
// (pipeline widths, window occupancies, cache and memory latencies).
// It can record every uncore request it issues; package badco consumes
// two such recordings to build its behavioural core models.
package cpu

import "mcbench/internal/bpred"

// Config holds the core parameters of Table I.
type Config struct {
	DecodeWidth int // instructions fetched/decoded per cycle (4)
	IssueWidth  int // µops issued per cycle (6)
	CommitWidth int // µops committed per cycle (4)

	ROB int // reorder buffer entries (128)
	RS  int // reservation stations (36)
	LDQ int // load queue entries (36)
	STQ int // store queue entries (24)

	IL1Bytes int    // 32 kB
	IL1Ways  int    // 4
	IL1Lat   uint64 // 2 cycles
	DL1Bytes int    // 32 kB
	DL1Ways  int    // 8
	DL1Lat   uint64 // 2 cycles
	DL1MSHRs int    // 16 outstanding DL1 misses

	ITLBEntries int    // 128
	DTLBEntries int    // 512
	TLBWalkLat  uint64 // page-walk penalty in cycles

	FPLat             uint64 // long-latency FP µop execution latency
	FetchToIssue      uint64 // front-end depth: min cycles from fetch to issue
	MispredictPenalty uint64 // redirect penalty after branch resolution

	BPIndexBits   int        // branch predictor table index bits
	BPHistoryBits int        // global history length
	Predictor     bpred.Kind // direction predictor ("" selects bimodal)

	RASEntries  int // return address stack depth (16 in Table I)
	BTACEntries int // branch target address cache entries

	PrefetchDegree int // DL1 prefetcher degree
}

// DefaultConfig returns the Table I core configuration.
func DefaultConfig() Config {
	return Config{
		DecodeWidth: 4,
		IssueWidth:  6,
		CommitWidth: 4,
		ROB:         128,
		RS:          36,
		LDQ:         36,
		STQ:         24,

		IL1Bytes: 32 << 10,
		IL1Ways:  4,
		IL1Lat:   2,
		DL1Bytes: 32 << 10,
		DL1Ways:  8,
		DL1Lat:   2,
		DL1MSHRs: 16,

		ITLBEntries: 128,
		DTLBEntries: 512,
		TLBWalkLat:  30,

		FPLat:             4,
		FetchToIssue:      4,
		MispredictPenalty: 12,

		BPIndexBits:   14,
		BPHistoryBits: 10,
		Predictor:     bpred.Bimodal,

		RASEntries:  16,
		BTACEntries: 512,

		PrefetchDegree: 1,
	}
}
