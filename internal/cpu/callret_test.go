package cpu

import (
	"testing"

	"mcbench/internal/bpred"
	"mcbench/internal/trace"
	"mcbench/internal/uncore"
)

// callParams returns a call-heavy benchmark parameter set.
func callParams(callFrac float64) trace.Params {
	return trace.Params{
		Name:        "callheavy",
		LoadFrac:    0.2,
		StoreFrac:   0.1,
		BranchFrac:  0.1,
		FPFrac:      0.05,
		CallFrac:    callFrac,
		DepMean:     6,
		LoadDepFrac: 0.4,
		BranchBias:  0.95,
		CodeBytes:   8 << 10,
		Patterns:    []trace.PatternSpec{{Kind: trace.HotSet, Bytes: 32 << 10, Weight: 1}},
		Seed:        41,
	}
}

func TestCallReturnOpsExecute(t *testing.T) {
	tr := trace.MustGenerate(callParams(0.08), 30000)
	calls, rets := 0, 0
	for _, op := range tr.Ops {
		switch op.Kind {
		case trace.Call:
			calls++
			if op.Addr == 0 {
				t.Fatal("call op without target")
			}
		case trace.Ret:
			rets++
		}
	}
	if calls == 0 || rets == 0 {
		t.Fatalf("trace has %d calls / %d returns; generator knob inert", calls, rets)
	}
	if rets > calls {
		t.Fatalf("more returns (%d) than calls (%d): nesting broken", rets, calls)
	}

	c := MustNew(0, DefaultConfig(), tr, &uncore.FixedLatency{Lat: 40})
	st := c.Run(tr.Len())
	if st.Committed != uint64(tr.Len()) {
		t.Fatalf("committed %d of %d", st.Committed, tr.Len())
	}
	if st.IPC() <= 0 || st.IPC() > float64(DefaultConfig().CommitWidth) {
		t.Fatalf("IPC %.2f out of range", st.IPC())
	}
}

// Target mispredictions must be visible in the stats and must cost
// cycles: the same trace with calls runs slower than with the target
// structures always right (first iteration warms them; the second should
// be nearly clean for direct calls).
func TestTargetMissesCounted(t *testing.T) {
	tr := trace.MustGenerate(callParams(0.10), 20000)
	c := MustNew(0, DefaultConfig(), tr, &uncore.FixedLatency{Lat: 40})
	st := c.Run(tr.Len())
	if st.TargetMisses == 0 {
		t.Fatal("no target misses recorded on a call-heavy trace (compulsory BTAC misses expected)")
	}
	// Second pass: direct-call targets are warm; misses should grow far
	// slower than in the first pass.
	first := st.TargetMisses
	st2 := c.Run(tr.Len())
	second := st2.TargetMisses - first
	if second > first {
		t.Errorf("target misses grew after warm-up: first pass %d, second pass %d", first, second)
	}
}

// A trace without calls must never touch the target predictors.
func TestNoCallsNoTargetMisses(t *testing.T) {
	p := callParams(0)
	p.Name = "nocalls"
	tr := trace.MustGenerate(p, 10000)
	c := MustNew(0, DefaultConfig(), tr, &uncore.FixedLatency{Lat: 40})
	if st := c.Run(tr.Len()); st.TargetMisses != 0 {
		t.Errorf("TargetMisses = %d on a call-free trace", st.TargetMisses)
	}
}

// Predictor selection: on a loop-branch-heavy trace TAGE must mispredict
// substantially less than bimodal, and the IPC must not get worse.
func TestTAGEBeatsBimodalOnLoopBranches(t *testing.T) {
	p := callParams(0)
	p.Name = "loopy"
	p.BranchFrac = 0.18
	p.LoopFrac = 0.95
	tr := trace.MustGenerate(p, 60000)

	// Steady-state miss rate: second pass over the trace, after the
	// predictor tables (and TAGE's allocation churn) have warmed.
	missRate := func(kind bpred.Kind) float64 {
		cfg := DefaultConfig()
		cfg.Predictor = kind
		c := MustNew(0, cfg, tr, &uncore.FixedLatency{Lat: 40})
		warm := c.Run(tr.Len())
		st := c.Run(tr.Len())
		return float64(st.BranchMisses-warm.BranchMisses) /
			float64(st.BranchLookups-warm.BranchLookups)
	}
	bm := missRate(bpred.Bimodal)
	tg := missRate(bpred.TAGE)
	if bm < 0.04 {
		t.Fatalf("bimodal unexpectedly good (%.3f) on loop branches; test premise broken", bm)
	}
	// Interleaved non-loop branches inject noise bits into the global
	// history, so TAGE cannot reach zero; it must still be clearly ahead
	// of the per-site predictor, which is blind to the loop position.
	if tg > bm*0.75 {
		t.Errorf("TAGE miss rate %.3f not clearly better than bimodal %.3f", tg, bm)
	}
}

// Correlated branches: same expectation as loops.
func TestTAGEBeatsBimodalOnCorrelatedBranches(t *testing.T) {
	p := callParams(0)
	p.Name = "corr"
	p.BranchFrac = 0.18
	p.BranchBias = 0.6 // drivers near-random: correlation is the only signal
	p.CorrFrac = 0.5
	tr := trace.MustGenerate(p, 60000)

	missRate := func(kind bpred.Kind) float64 {
		cfg := DefaultConfig()
		cfg.Predictor = kind
		c := MustNew(0, cfg, tr, &uncore.FixedLatency{Lat: 40})
		warm := c.Run(tr.Len())
		st := c.Run(tr.Len())
		return float64(st.BranchMisses-warm.BranchMisses) /
			float64(st.BranchLookups-warm.BranchLookups)
	}
	bm := missRate(bpred.Bimodal)
	tg := missRate(bpred.TAGE)
	// Half the branches carry a pure history signal bimodal cannot see:
	// TAGE must be clearly ahead, not marginally.
	if tg > bm-0.10 {
		t.Errorf("TAGE miss rate %.3f not clearly better than bimodal %.3f on correlated branches", tg, bm)
	}
}

// An unknown predictor kind must be rejected at construction.
func TestUnknownPredictorRejected(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Predictor = "neural"
	tr := trace.MustGenerate(callParams(0), 1000)
	if _, err := New(0, cfg, tr, &uncore.FixedLatency{Lat: 10}); err == nil {
		t.Fatal("unknown predictor kind accepted")
	}
}

// The default (empty) predictor kind must behave exactly like bimodal so
// that configurations predating the knob reproduce identical results.
func TestDefaultPredictorIsBimodal(t *testing.T) {
	tr := trace.MustGenerate(callParams(0.05), 20000)
	cfgA := DefaultConfig()
	cfgA.Predictor = ""
	cfgB := DefaultConfig()
	cfgB.Predictor = bpred.Bimodal
	a := MustNew(0, cfgA, tr, &uncore.FixedLatency{Lat: 40}).Run(tr.Len())
	b := MustNew(0, cfgB, tr, &uncore.FixedLatency{Lat: 40}).Run(tr.Len())
	if a.Cycles != b.Cycles || a.BranchMisses != b.BranchMisses {
		t.Errorf("empty kind differs from bimodal: %+v vs %+v", a, b)
	}
}
