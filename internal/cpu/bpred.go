package cpu

// The direction predictor lives in package bpred (TAGE, tournament,
// gshare, bimodal — Config.Predictor selects one). The default is bimodal:
// the baseline synthetic traces give each branch site an independent
// outcome bias with no cross-branch correlation, so a history-based
// predictor gains nothing over a per-site table there; traces generated
// with loop or correlated branch sites (trace.Params.LoopFrac/CorrFrac)
// are where TAGE pulls ahead — see the predictor ablation experiment.
//
// This file keeps the core-private TLB model.

// tlb is a direct-mapped translation cache of virtual page numbers.
type tlb struct {
	tags   []uint64 // vpage+1 so zero means empty
	mask   uint64
	misses uint64
	hits   uint64
}

func newTLB(entries int) *tlb {
	if entries < 1 {
		entries = 1
	}
	// Round up to a power of two for cheap indexing.
	n := 1
	for n < entries {
		n <<= 1
	}
	return &tlb{tags: make([]uint64, n), mask: uint64(n - 1)}
}

// lookup returns true on a TLB hit and installs the page on a miss.
func (t *tlb) lookup(vpage uint64) bool {
	idx := vpage & t.mask
	if t.tags[idx] == vpage+1 {
		t.hits++
		return true
	}
	t.tags[idx] = vpage + 1
	t.misses++
	return false
}
