package cpu

import (
	"mcbench/internal/cache"
	"mcbench/internal/trace"
	"mcbench/internal/uncore"
)

// functionalMemory is the optional uncore capability FastForward uses:
// a state-only access with no timing side effects. The real
// *uncore.Uncore implements it; stubs (e.g. FixedLatency) need not —
// they fall back to a timed access at the frozen clock, which for a
// stateless stub is equivalent.
type functionalMemory interface {
	AccessFunctional(core int, pc, vaddr uint64, write, prefetch bool)
}

// FastForward executes n µops in functional-warming mode: every
// microarchitectural *state* update of Step happens — IL1/DL1 and TLB
// contents, branch/target predictor tables, the RAS and shadow call
// stack, prefetcher training, and the shared hierarchy below the L1s —
// but none of the *timing* machinery (pipeline rings, issue slots,
// MSHR completion times, commit bandwidth, bus and DRAM bookings). The
// local clock does not advance, and Committed() still does, so drivers
// can position sampling windows by µop count.
//
// The point is SMARTS-style sampled simulation: fast-forward the gap
// between measurement windows under this cheap path, then run a short
// detailed warmup to refill the timing state before measuring. Uncore
// requests are not recorded (SetRecorder is a model-building concern
// of detailed runs), and queue/ring contents left behind by a prior
// detailed stretch are simply ignored — their stale times sit at or
// before the frozen clock, so the next detailed warmup restarts from
// an effectively drained pipeline.
func (c *Core) FastForward(n uint64) {
	fm, _ := c.mem.(functionalMemory)
	for k := uint64(0); k < n; k++ {
		c.ffStep(fm)
	}
}

// SyncClock advances the core's local clock (and front-end cycle) to at
// least t; it never moves time backwards. Sampled simulation calls it at
// each window start so all cores measure from a common time origin:
// per-core clocks drift apart across windows (frozen during the
// fast-forward, advancing by different amounts per window), but the
// shared uncore books its resources in absolute time, so a core whose
// clock lags the others would see the bus reserved far into its own
// future and pay the skew as fake queueing.
func (c *Core) SyncClock(t uint64) {
	if t > c.lastCommit {
		c.lastCommit = t
	}
	if t > c.fetchCycle {
		c.fetchCycle = t
		c.fetchInCycle = 0
	}
}

// Skip advances the core's trace position by n µops with no state
// updates at all — no cache, predictor, or prefetcher warming. It is
// the cheapest gap traversal for sampled simulation: O(1) whatever the
// distance, which is what makes the detailed work per sampling unit
// independent of trace length. The cost is staleness — every structure
// keeps the contents the last executed µop left — so drivers follow a
// skip with a bounded functional-warming stretch (FastForward) sized to
// re-establish recency in the caches before the detailed warmup runs.
// The shadow call stack is cleared (the skipped region's call structure
// is unknown); the RAS keeps its now-stale contents, as hardware would.
func (c *Core) Skip(n uint64) {
	c.seq += n
	p := uint64(c.pos) + n
	if l := uint64(c.tr.Len()); p >= l {
		p %= l
	}
	c.pos = int(p)
	c.haveILine = false
	c.shadowRAS = c.shadowRAS[:0]
}

// ffAccess issues one functional uncore access, falling back to a timed
// access at the frozen clock (result discarded) when the backend has no
// functional path.
func (c *Core) ffAccess(fm functionalMemory, pc, line uint64, write, prefetch bool) {
	if fm != nil {
		fm.AccessFunctional(c.id, pc, line, write, prefetch)
		return
	}
	c.mem.Access(c.id, pc, line, write, prefetch, c.lastCommit)
}

// ffStep functionally executes one µop. It mirrors Step's state-update
// order exactly (fetch side first, then the op's own accesses) so the
// warmed contents match what a detailed execution would have left,
// differing only where timing feeds back into state (MSHR-pressure
// prefetch drops, late-fill merges).
func (c *Core) ffStep(fm functionalMemory) {
	op := &c.tr.Ops[c.pos]

	// Instruction delivery: one IL1 access per new code line.
	if !c.haveILine || op.ILine != c.lastILine {
		c.lastILine = op.ILine
		c.haveILine = true
		line := codeBase + uint64(op.ILine)*cache.LineSize
		c.itlb.lookup(line / uncore.PageSize)
		hit := c.il1.Access(line, false)
		if !hit {
			c.ffAccess(fm, line, line, false, false)
			c.stats.UncoreDemand++
			c.il1.Fill(line, false, false)
		}
		for _, a := range c.ipf.Observe(line, line, !hit) {
			if c.il1.Probe(a) {
				continue
			}
			c.ffAccess(fm, line, a, false, true)
			c.stats.UncorePref++
			c.il1.Fill(a, false, true)
		}
	}

	switch op.Kind {
	case trace.Branch:
		c.bp.Predict(op.PC, op.Taken)
	case trace.Call:
		if op.Indirect {
			c.ind.Predict(op.PC)
			c.ind.Update(op.PC, op.Addr)
		} else {
			c.btac.Predict(op.PC)
			c.btac.Update(op.PC, op.Addr)
		}
		ret := op.PC + 16
		c.ras.Push(ret)
		c.shadowRAS = append(c.shadowRAS, ret)
	case trace.Ret:
		var want uint64
		if n := len(c.shadowRAS); n > 0 {
			want = c.shadowRAS[n-1]
			c.shadowRAS = c.shadowRAS[:n-1]
		}
		c.ras.Pop(want)
	case trace.Load:
		c.dtlb.lookup(op.Addr / uncore.PageSize)
		line := cache.AlignLine(op.Addr)
		hit := c.dl1.Access(line, false)
		if !hit {
			c.ffFill(fm, op.PC, line, false)
		}
		c.ffPrefetchObserve(fm, op.PC, op.Addr, !hit)
	case trace.Store:
		c.dtlb.lookup(op.Addr / uncore.PageSize)
		line := cache.AlignLine(op.Addr)
		if !c.dl1.Access(line, true) {
			c.ffFill(fm, op.PC, line, true)
		}
		c.ffPrefetchObserve(fm, op.PC, op.Addr, false)
	}

	c.seq++
	c.pos++
	if c.pos == c.tr.Len() {
		c.pos = 0
		// Thread restart: the architectural call stack starts empty again
		// (same semantics as Step).
		c.shadowRAS = c.shadowRAS[:0]
	}
}

// ffFill functionally services a DL1 miss: uncore access for the line,
// fill, and dirty-victim writeback — no MSHR booking.
func (c *Core) ffFill(fm functionalMemory, pc, line uint64, write bool) {
	c.ffAccess(fm, pc, line, write, false)
	c.stats.UncoreDemand++
	ev := c.dl1.Fill(line, write, false)
	if ev.Valid && ev.Dirty {
		c.ffAccess(fm, pc, ev.Addr, true, false)
		c.stats.UncoreDemand++
	}
}

// ffPrefetchObserve trains the DL1 prefetchers and functionally issues
// their proposals at the drop rate the detailed path exhibits.
//
// The detailed pipeline drops a proposal while half the DL1 MSHRs are
// busy — a timing decision the clockless functional path cannot
// reproduce (occupancy depends on fill latencies and burst overlap).
// Issuing every proposal instead warms the shared cache beyond what any
// timed execution reaches: measured windows then see as little as half
// the true LLC miss rate and overestimate IPC by tens of percent. So
// the detailed path counts its own pressure decisions (pfCand/pfIssued,
// maintained in dl1Prefetch), and the fast-forward replays that
// observed issue rate with a deterministic accumulator — the sampled
// run's warmup and measure phases keep the calibration current.
func (c *Core) ffPrefetchObserve(fm functionalMemory, pc, addr uint64, miss bool) {
	props := c.dpf.Observe(pc, addr, miss)
	if len(props) == 0 {
		return
	}
	rate := 1.0
	if c.pfCand > 0 {
		rate = float64(c.pfIssued) / float64(c.pfCand)
	}
	c.pfBuf = c.pfBuf[:0]
	c.pfBuf = append(c.pfBuf, props...)
	for _, a := range c.pfBuf {
		line := cache.AlignLine(a)
		if c.dl1.Probe(line) {
			continue
		}
		c.ffPfAcc += rate
		if c.ffPfAcc < 1 {
			continue
		}
		c.ffPfAcc--
		c.ffAccess(fm, pc, line, false, true)
		c.stats.UncorePref++
		ev := c.dl1.Fill(line, false, true)
		if ev.Valid && ev.Dirty {
			c.ffAccess(fm, pc, ev.Addr, true, false)
			c.stats.UncoreDemand++
		}
	}
}
