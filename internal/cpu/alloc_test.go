package cpu

import (
	"testing"

	"mcbench/internal/trace"
	"mcbench/internal/uncore"
)

// TestStepAllocationFree pins the core's per-µop hot path at zero
// steady-state allocations (recorder detached): the MSHR file is a fixed
// array and prefetch staging reuses a per-core scratch, so the only
// allocations happen at construction and during warm-up growth of the
// shadow call stack.
func TestStepAllocationFree(t *testing.T) {
	traces := trace.GenerateSuite(5000)
	for _, bench := range []string{"mcf", "povray", "gcc"} {
		tr := traces[bench]
		unc := uncore.MustNew(uncore.ConfigFor(1, "LRU"))
		c := MustNew(0, DefaultConfig(), tr, unc)
		// Warm up: one full trace iteration grows the shadow RAS and any
		// lazily-sized scratch to steady state.
		c.Run(tr.Len())
		if avg := testing.AllocsPerRun(2000, func() { c.Step() }); avg != 0 {
			t.Errorf("%s: steady-state Step allocates %.2f times per µop, want 0", bench, avg)
		}
	}
}

// TestFastForwardAllocationFree pins the functional-warming path at zero
// steady-state allocations: sampled simulation fast-forwards billions of
// µops through it, so it must be as clean as Step.
func TestFastForwardAllocationFree(t *testing.T) {
	traces := trace.GenerateSuite(5000)
	for _, bench := range []string{"mcf", "povray", "gcc"} {
		tr := traces[bench]
		unc := uncore.MustNew(uncore.ConfigFor(1, "LRU"))
		c := MustNew(0, DefaultConfig(), tr, unc)
		// One full iteration grows the shadow RAS to steady state.
		c.FastForward(uint64(tr.Len()))
		if avg := testing.AllocsPerRun(2000, func() { c.FastForward(1) }); avg != 0 {
			t.Errorf("%s: steady-state FastForward allocates %.2f times per µop, want 0", bench, avg)
		}
	}
}
