// Package metrics implements the multiprogram throughput metrics of the
// paper (Section II-D): IPC throughput (IPCT), weighted speedup (WSU) and
// harmonic mean of speedups (HSU), unified by formula (1)
//
//	t(w) = X-mean_k IPC_wk / IPCref[b_wk]
//
// with X-mean ∈ {arithmetic, harmonic}; the sample throughput (formula 2)
// is the same X-mean across workloads; and the per-workload difference
// d(w) used by the confidence model (formulas 4 and 7). The geometric
// mean of speedups (GMSU, footnote 3) is included as an extension.
package metrics

import (
	"fmt"
	"math"

	"mcbench/internal/stats"
)

// Metric selects a throughput metric.
type Metric int

// The three metrics of the paper plus the geometric-mean extension.
const (
	IPCT Metric = iota // arithmetic mean of raw IPCs
	WSU                // arithmetic mean of speedups (weighted speedup)
	HSU                // harmonic mean of speedups
	GMSU               // geometric mean of speedups (footnote 3)
)

// All returns the paper's three metrics in presentation order.
func All() []Metric { return []Metric{IPCT, WSU, HSU} }

// String returns the metric's conventional abbreviation.
func (m Metric) String() string {
	switch m {
	case IPCT:
		return "IPCT"
	case WSU:
		return "WSU"
	case HSU:
		return "HSU"
	case GMSU:
		return "GMSU"
	}
	return fmt.Sprintf("Metric(%d)", int(m))
}

// PerWorkload computes t(w) (formula 1) from per-core IPCs and the
// per-core reference IPCs (the IPC of each benchmark running alone on the
// reference machine). For IPCT the reference is ignored (ref 1).
func (m Metric) PerWorkload(ipc, ref []float64) float64 {
	if len(ipc) == 0 || (m != IPCT && len(ref) != len(ipc)) {
		panic("metrics: PerWorkload length mismatch")
	}
	sp := make([]float64, len(ipc))
	for k := range ipc {
		switch m {
		case IPCT:
			sp[k] = ipc[k]
		default:
			if ref[k] <= 0 {
				panic("metrics: non-positive reference IPC")
			}
			sp[k] = ipc[k] / ref[k]
		}
	}
	switch m {
	case IPCT, WSU:
		return stats.Mean(sp)
	case HSU:
		return stats.HarmonicMean(sp)
	case GMSU:
		return stats.GeometricMean(sp)
	}
	panic("metrics: unknown metric")
}

// Sample reduces per-workload throughputs to the sample throughput
// (formula 2) with the metric's X-mean.
func (m Metric) Sample(ts []float64) float64 {
	switch m {
	case IPCT, WSU:
		return stats.Mean(ts)
	case HSU:
		return stats.HarmonicMean(ts)
	case GMSU:
		return stats.GeometricMean(ts)
	}
	panic("metrics: unknown metric")
}

// WeightedSample reduces per-workload throughputs with stratum weights
// (formula 9): a weighted arithmetic or harmonic (or geometric) mean.
func (m Metric) WeightedSample(ts, weights []float64) float64 {
	switch m {
	case IPCT, WSU:
		return stats.WeightedMean(ts, weights)
	case HSU:
		return stats.WeightedHarmonicMean(ts, weights)
	case GMSU:
		// Weighted geometric mean via the log domain.
		logs := make([]float64, len(ts))
		for i, t := range ts {
			logs[i] = math.Log(t)
		}
		return math.Exp(stats.WeightedMean(logs, weights))
	}
	panic("metrics: unknown metric")
}

// Diff computes the per-workload difference d(w) between
// microarchitectures X and Y for this metric: tY - tX for metrics reduced
// by an arithmetic mean (formula 4), the reciprocal difference
// 1/tX - 1/tY for the HSU (formula 7) and log tY - log tX for the GMSU
// (footnote 3). The Central Limit Theorem applies to the arithmetic mean
// of these d(w), whatever the metric.
func (m Metric) Diff(tX, tY float64) float64 {
	switch m {
	case IPCT, WSU:
		return tY - tX
	case HSU:
		return 1/tX - 1/tY
	case GMSU:
		return math.Log(tY) - math.Log(tX)
	}
	panic("metrics: unknown metric")
}

// Diffs applies Diff element-wise over per-workload throughputs.
func (m Metric) Diffs(tX, tY []float64) []float64 {
	if len(tX) != len(tY) {
		panic("metrics: Diffs length mismatch")
	}
	out := make([]float64, len(tX))
	for i := range tX {
		out[i] = m.Diff(tX[i], tY[i])
	}
	return out
}

// Throughputs computes t(w) for every workload given per-workload
// per-core IPCs and per-workload per-core references.
func (m Metric) Throughputs(ipc, ref [][]float64) []float64 {
	if m != IPCT && len(ipc) != len(ref) {
		panic("metrics: Throughputs length mismatch")
	}
	out := make([]float64, len(ipc))
	for i := range ipc {
		var r []float64
		if m != IPCT {
			r = ref[i]
		} else {
			r = ipc[i] // ignored
		}
		out[i] = m.PerWorkload(ipc[i], r)
	}
	return out
}
