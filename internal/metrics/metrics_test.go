package metrics

import (
	"math"
	"testing"
)

func almostEqual(a, b float64) bool { return math.Abs(a-b) < 1e-12 }

func TestStrings(t *testing.T) {
	cases := map[Metric]string{IPCT: "IPCT", WSU: "WSU", HSU: "HSU", GMSU: "GMSU"}
	for m, want := range cases {
		if m.String() != want {
			t.Errorf("%v.String() = %q", int(m), m.String())
		}
	}
	if len(All()) != 3 {
		t.Errorf("All() has %d metrics, want 3", len(All()))
	}
}

func TestPerWorkloadIPCT(t *testing.T) {
	// IPCT ignores references: plain arithmetic mean of IPCs.
	got := IPCT.PerWorkload([]float64{1, 2, 3}, nil)
	if !almostEqual(got, 2) {
		t.Errorf("IPCT = %g, want 2", got)
	}
}

func TestPerWorkloadWSU(t *testing.T) {
	ipc := []float64{1, 1}
	ref := []float64{2, 4}
	// speedups 0.5, 0.25 -> A-mean 0.375
	if got := WSU.PerWorkload(ipc, ref); !almostEqual(got, 0.375) {
		t.Errorf("WSU = %g, want 0.375", got)
	}
}

func TestPerWorkloadHSU(t *testing.T) {
	ipc := []float64{1, 1}
	ref := []float64{2, 4}
	// speedups 0.5, 0.25 -> H-mean 2/(2+4) = 1/3
	if got := HSU.PerWorkload(ipc, ref); !almostEqual(got, 1.0/3) {
		t.Errorf("HSU = %g, want 1/3", got)
	}
}

func TestPerWorkloadGMSU(t *testing.T) {
	ipc := []float64{1, 1}
	ref := []float64{2, 8}
	// speedups 0.5, 0.125 -> G-mean 0.25
	if got := GMSU.PerWorkload(ipc, ref); !almostEqual(got, 0.25) {
		t.Errorf("GMSU = %g, want 0.25", got)
	}
}

func TestHSUBelowWSU(t *testing.T) {
	// Harmonic mean <= arithmetic mean, always.
	ipc := []float64{1.2, 0.3, 2.1}
	ref := []float64{2.0, 1.0, 2.5}
	if HSU.PerWorkload(ipc, ref) > WSU.PerWorkload(ipc, ref) {
		t.Error("HSU above WSU")
	}
}

func TestSampleReduction(t *testing.T) {
	ts := []float64{1, 2, 4}
	if got := WSU.Sample(ts); !almostEqual(got, 7.0/3) {
		t.Errorf("WSU sample = %g", got)
	}
	if got := HSU.Sample(ts); !almostEqual(got, 3/(1+0.5+0.25)) {
		t.Errorf("HSU sample = %g", got)
	}
	if got := GMSU.Sample(ts); !almostEqual(got, 2) {
		t.Errorf("GMSU sample = %g", got)
	}
}

func TestWeightedSampleMatchesUnweighted(t *testing.T) {
	ts := []float64{1, 2, 4}
	eq := []float64{1, 1, 1}
	for _, m := range []Metric{IPCT, WSU, HSU, GMSU} {
		if got, want := m.WeightedSample(ts, eq), m.Sample(ts); !almostEqual(got, want) {
			t.Errorf("%v weighted(eq) = %g, want %g", m, got, want)
		}
	}
}

func TestWeightedSampleStrata(t *testing.T) {
	// Formula 9: two strata with weights 0.8/0.2.
	ts := []float64{2, 10}
	ws := []float64{0.8, 0.2}
	if got := WSU.WeightedSample(ts, ws); !almostEqual(got, 0.8*2+0.2*10) {
		t.Errorf("weighted WSU = %g", got)
	}
	if got := HSU.WeightedSample(ts, ws); !almostEqual(got, 1/(0.8/2+0.2/10)) {
		t.Errorf("weighted HSU = %g", got)
	}
}

func TestDiffDirections(t *testing.T) {
	// Y better than X must give positive d(w) for every metric.
	tX, tY := 1.0, 1.5
	for _, m := range []Metric{IPCT, WSU, HSU, GMSU} {
		if d := m.Diff(tX, tY); d <= 0 {
			t.Errorf("%v.Diff with Y better = %g, want > 0", m, d)
		}
		if d := m.Diff(tY, tX); d >= 0 {
			t.Errorf("%v.Diff with Y worse = %g, want < 0", m, d)
		}
		if d := m.Diff(tX, tX); d != 0 {
			t.Errorf("%v.Diff equal = %g, want 0", m, d)
		}
	}
}

func TestDiffHSUIsReciprocal(t *testing.T) {
	// Formula 7: d(w) = 1/tX - 1/tY.
	if got := HSU.Diff(2, 4); !almostEqual(got, 0.25) {
		t.Errorf("HSU.Diff(2,4) = %g, want 0.25", got)
	}
}

func TestDiffs(t *testing.T) {
	tX := []float64{1, 2}
	tY := []float64{2, 1}
	got := WSU.Diffs(tX, tY)
	if !almostEqual(got[0], 1) || !almostEqual(got[1], -1) {
		t.Errorf("Diffs = %v", got)
	}
}

func TestThroughputs(t *testing.T) {
	ipc := [][]float64{{1, 1}, {2, 2}}
	ref := [][]float64{{2, 2}, {2, 2}}
	got := WSU.Throughputs(ipc, ref)
	if !almostEqual(got[0], 0.5) || !almostEqual(got[1], 1) {
		t.Errorf("Throughputs = %v", got)
	}
	// IPCT path ignores ref entirely.
	got = IPCT.Throughputs(ipc, nil)
	if !almostEqual(got[0], 1) || !almostEqual(got[1], 2) {
		t.Errorf("IPCT Throughputs = %v", got)
	}
}

func TestPanics(t *testing.T) {
	mustPanic := func(name string, f func()) {
		defer func() {
			if recover() == nil {
				t.Errorf("%s did not panic", name)
			}
		}()
		f()
	}
	mustPanic("empty ipc", func() { WSU.PerWorkload(nil, nil) })
	mustPanic("ref mismatch", func() { WSU.PerWorkload([]float64{1}, []float64{1, 2}) })
	mustPanic("zero ref", func() { WSU.PerWorkload([]float64{1}, []float64{0}) })
	mustPanic("diffs mismatch", func() { WSU.Diffs([]float64{1}, nil) })
}
