package experiments

import (
	"context"
	"fmt"
	"math"

	"mcbench/internal/cache"
	"mcbench/internal/metrics"
	"mcbench/internal/sampling"
	"mcbench/internal/stats"
)

func init() {
	Register(Spec{
		Name:     "guideline",
		Synopsis: "Sec. VII decision procedure applied to every pair",
		Group:    GroupExtension,
		Requests: func(l *Lab, p Params) []Request { return l.GuidelineRequests(p.cores()) },
		Run: func(ctx context.Context, l *Lab, p Params) (*Table, error) {
			return l.GuidelineTable(ctx, p.cores(), metrics.WSU)
		},
	})
}

// Recommendation is the outcome of the paper's Section VII decision
// procedure for one pair of microarchitectures and one metric.
type Recommendation struct {
	Pair   [2]cache.PolicyName
	Metric metrics.Metric
	CV     float64
	// Strategy is one of "equivalent", "random", "stratify".
	Strategy string
	// SampleSize is the recommended detailed-simulation sample size:
	// W = 8cv^2 for random sampling, the number of strata (minimum
	// feasible stratified sample) for stratification, 0 for equivalent.
	SampleSize int
	// Strata is the stratum count when Strategy is "stratify".
	Strata int
}

// Guideline implements the paper's Section VII practical guideline as an
// executable procedure:
//
//  1. simulate a large workload sample with the fast simulator for both
//     microarchitectures (the lab's population sweep);
//  2. estimate the coefficient of variation cv of d(w);
//  3. if |cv| > 10: declare the machines equivalent on average;
//     if |cv| < 2: random sampling with W = 8cv² suffices (use balanced
//     random for small samples);
//     otherwise (cv in [2, 10]): use workload stratification, whose
//     sample can be as small as the stratum count.
func (l *Lab) Guideline(ctx context.Context, cores int, m metrics.Metric, x, y cache.PolicyName) (Recommendation, error) {
	d, err := l.Diffs(ctx, cores, m, x, y)
	if err != nil {
		return Recommendation{}, err
	}
	cv := stats.CoefVar(d)
	rec := Recommendation{Pair: [2]cache.PolicyName{x, y}, Metric: m, CV: cv}
	switch abs := math.Abs(cv); {
	case abs > 10:
		rec.Strategy = "equivalent"
	case abs < 2:
		rec.Strategy = "random"
		rec.SampleSize = stats.RequiredSampleSize(cv)
	default:
		rec.Strategy = "stratify"
		s := sampling.NewWorkloadStrata(d, sampling.DefaultWorkloadStrataConfig())
		rec.Strata = sampling.NumStrata(s)
		rec.SampleSize = rec.Strata
	}
	return rec, nil
}

// GuidelineRequests declares the guideline's inputs over every policy
// pair: all case-study BADCO tables plus the reference IPCs.
func (l *Lab) GuidelineRequests(cores int) []Request {
	return append(badcoSet(cores, Policies()), Request{Sim: SimRef, Cores: cores})
}

// GuidelineTable applies the guideline to every policy pair.
func (l *Lab) GuidelineTable(ctx context.Context, cores int, m metrics.Metric) (*Table, error) {
	t := &Table{
		Title:   fmt.Sprintf("Section VII guideline applied to every pair (%s, %d cores)", m, cores),
		Columns: []string{"pair (X,Y)", "cv", "strategy", "recommended W", "strata"},
		Notes: []string{
			"|cv| > 10: equivalent on average; |cv| < 2: random sampling with W = 8cv^2;",
			"cv in [2,10]: workload stratification (sample >= stratum count)",
		},
	}
	for _, pair := range PolicyPairs() {
		r, err := l.Guideline(ctx, cores, m, pair[0], pair[1])
		if err != nil {
			return nil, err
		}
		strata := "-"
		if r.Strata > 0 {
			strata = fmt.Sprint(r.Strata)
		}
		w := "-"
		if r.SampleSize > 0 {
			w = fmt.Sprint(r.SampleSize)
		}
		t.AddRow(fmt.Sprintf("%s,%s", pair[0], pair[1]), f2(r.CV), r.Strategy, w, strata)
	}
	return t, nil
}
