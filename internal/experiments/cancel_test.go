package experiments

import (
	"context"
	"errors"
	"runtime"
	"testing"
	"time"

	"mcbench/internal/cache"
)

// waitGoroutines polls until the goroutine count returns to (near) the
// baseline, proving cancelled campaigns leave nothing running.
func waitGoroutines(t *testing.T, baseline int) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		if runtime.NumGoroutine() <= baseline+2 {
			return
		}
		time.Sleep(10 * time.Millisecond)
	}
	t.Errorf("goroutines did not drain: %d, baseline %d", runtime.NumGoroutine(), baseline)
}

// TestWarmCancelPromptAndRetryable proves the tentpole's cancellation
// contract end to end: a cancelled context aborts a whole campaign warm
// mid-sweep well before it could finish, leaks no goroutines, does not
// poison the memoization (the cancelled product is retried, not served
// as a broken cache hit), and a later uncancelled Warm completes.
func TestWarmCancelPromptAndRetryable(t *testing.T) {
	if testing.Short() {
		t.Skip("population sweep")
	}
	l := tinyLab()
	plan := []Request{
		{Sim: SimBadco, Cores: 2, Policy: cache.LRU},
		{Sim: SimBadco, Cores: 2, Policy: cache.FIFO},
		{Sim: SimDetailed, Cores: 2, Policy: cache.LRU},
		{Sim: SimRef, Cores: 2},
		{Sim: SimMPKI},
	}
	baseline := runtime.NumGoroutine()

	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan struct{})
	var warmErr error
	start := time.Now()
	go func() {
		defer close(done)
		_, warmErr = l.Warm(ctx, plan, 0)
	}()
	// Let the campaign get into real simulation work, then pull the plug.
	time.Sleep(50 * time.Millisecond)
	cancel()
	select {
	case <-done:
	case <-time.After(30 * time.Second):
		t.Fatal("Warm did not return after cancellation")
	}
	if !errors.Is(warmErr, context.Canceled) {
		t.Fatalf("Warm error = %v, want context.Canceled", warmErr)
	}
	t.Logf("cancelled warm returned in %v", time.Since(start).Round(time.Millisecond))
	waitGoroutines(t, baseline)

	// The cancelled products were not memoized as failures: a fresh,
	// uncancelled Warm of the same plan completes and the tables read
	// back consistent.
	if _, err := l.Warm(context.Background(), plan, 0); err != nil {
		t.Fatalf("Warm after cancel: %v", err)
	}
	tab := must(l.BadcoIPC(tctx, 2, cache.LRU))
	if len(tab) != 253 {
		t.Fatalf("post-cancel table has %d rows", len(tab))
	}
}

// TestSweepCancelledBeforeStart: a pre-cancelled context fails fast
// without touching the simulators.
func TestSweepCancelledBeforeStart(t *testing.T) {
	l := tinyLab()
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := l.BadcoIPC(ctx, 2, cache.LRU); !errors.Is(err, context.Canceled) {
		t.Fatalf("error = %v, want context.Canceled", err)
	}
	if got := l.badcoSweeps.Load(); got != 0 {
		t.Errorf("%d sweeps ran under a cancelled context", got)
	}
}

// TestFlightGroupDropsFailures pins the retry semantics the cancellation
// story depends on: a failed computation is reported to its waiters but
// not memoized, and the next caller recomputes.
func TestFlightGroupDropsFailures(t *testing.T) {
	var g flightGroup[string, int]
	calls := 0
	boom := errors.New("boom")
	compute := func() (int, error) {
		calls++
		if calls == 1 {
			return 0, boom
		}
		return 42, nil
	}
	if _, err := g.do(context.Background(), "k", compute); !errors.Is(err, boom) {
		t.Fatalf("first do: %v", err)
	}
	v, err := g.do(context.Background(), "k", compute)
	if err != nil || v != 42 {
		t.Fatalf("retry: %v %v", v, err)
	}
	if calls != 2 {
		t.Fatalf("compute ran %d times, want 2", calls)
	}
	// Memoized now: no third call.
	if v, _ := g.do(context.Background(), "k", compute); v != 42 || calls != 2 {
		t.Fatalf("memoization broken: v=%d calls=%d", v, calls)
	}
}

// TestFlightGroupWaiterRetriesAfterCreatorCancelled: when the caller
// that owns the computation is cancelled, a waiter with a live context
// must not inherit the foreign cancellation — it retries the
// computation under its own context.
func TestFlightGroupWaiterRetriesAfterCreatorCancelled(t *testing.T) {
	var g flightGroup[string, int]
	creatorCtx, cancelCreator := context.WithCancel(context.Background())
	started := make(chan struct{})
	release := make(chan struct{})
	creatorDone := make(chan error, 1)
	go func() {
		_, err := g.do(creatorCtx, "k", func() (int, error) {
			close(started)
			<-release
			return 0, creatorCtx.Err() // cancelled mid-compute
		})
		creatorDone <- err
	}()
	<-started
	waiterDone := make(chan struct{})
	var v int
	var err error
	go func() {
		defer close(waiterDone)
		v, err = g.do(context.Background(), "k", func() (int, error) { return 99, nil })
	}()
	cancelCreator()
	close(release)
	if cerr := <-creatorDone; !errors.Is(cerr, context.Canceled) {
		t.Fatalf("creator error = %v", cerr)
	}
	select {
	case <-waiterDone:
	case <-time.After(10 * time.Second):
		t.Fatal("waiter did not retry")
	}
	if err != nil || v != 99 {
		t.Fatalf("waiter got %v, %v; want 99 via retry", v, err)
	}
}

// TestFlightGroupWaiterCancellation: a waiter whose own context dies
// stops waiting with ctx.Err() while the computation proceeds for the
// original caller.
func TestFlightGroupWaiterCancellation(t *testing.T) {
	var g flightGroup[string, int]
	started := make(chan struct{})
	release := make(chan struct{})
	go g.do(context.Background(), "k", func() (int, error) {
		close(started)
		<-release
		return 7, nil
	})
	<-started
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := g.do(ctx, "k", func() (int, error) { return 0, nil }); !errors.Is(err, context.Canceled) {
		t.Fatalf("waiter error = %v, want context.Canceled", err)
	}
	close(release)
	if v, err := g.do(context.Background(), "k", nil); err != nil || v != 7 {
		t.Fatalf("original computation lost: %v %v", v, err)
	}
}
