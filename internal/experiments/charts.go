package experiments

// Text-chart renderings of the paper's figures (package plot), so
// `mcbench -plot figN` shows the same curves the PDF does. Tables remain
// the precise record; charts give the shape at a glance. Charts are
// wired to their experiments through the registry's Chart hook.

import (
	"context"
	"fmt"

	"mcbench/internal/metrics"
	"mcbench/internal/plot"
	"mcbench/internal/stats"
)

func init() {
	Register(Spec{
		Name:     "profiles",
		Synopsis: "microarchitecture-independent benchmark profiles",
		Group:    GroupExtension,
		Run: func(ctx context.Context, l *Lab, p Params) (*Table, error) {
			return l.ProfileTable(ctx)
		},
	})
}

// metricsAll aliases metrics.All for the chart code.
func metricsAll() []metrics.Metric { return metrics.All() }

// Fig1Chart renders the analytic confidence curve of Figure 1.
func Fig1Chart() string {
	xs, ys := stats.ConfidenceCurve(-2, 2, 40)
	s := plot.Series{Name: "conf", X: xs, Y: ys}
	return plot.Line(plot.Config{
		Title:  "Figure 1: degree of confidence vs (1/cv)·sqrt(W/2)",
		XLabel: "(1/cv)sqrt(W/2)",
		YLabel: "confidence",
		FixedY: true, YMin: 0, YMax: 1,
	}, s)
}

// Fig2Chart renders the CPI scatter of Figure 2 (detailed vs BADCO, all
// core counts pooled; the bisector is perfect agreement).
func (l *Lab) Fig2Chart(ctx context.Context, coreCounts []int) (string, error) {
	results, err := l.Fig2(ctx, coreCounts)
	if err != nil {
		return "", err
	}
	var series []plot.Series
	for _, r := range results {
		s := plot.Series{Name: fmt.Sprintf("%d cores", r.Cores)}
		for _, p := range r.Points {
			s.X = append(s.X, p.BadcoCPI)
			s.Y = append(s.Y, p.DetailCPI)
		}
		series = append(series, s)
	}
	return plot.Scatter(plot.Config{
		Title:  "Figure 2: detailed CPI vs BADCO CPI (diagonal = perfect)",
		XLabel: "BADCO CPI",
		YLabel: "detailed CPI",
		Height: 20,
	}, true, series...), nil
}

// Fig3Chart renders the model-vs-experiment confidence curves.
func (l *Lab) Fig3Chart(ctx context.Context, coreCounts []int) (string, error) {
	points, err := l.Fig3(ctx, coreCounts)
	if err != nil {
		return "", err
	}
	bySeries := map[string]*plot.Series{}
	var order []string
	add := func(name string, w int, y float64) {
		s, ok := bySeries[name]
		if !ok {
			s = &plot.Series{Name: name}
			bySeries[name] = s
			order = append(order, name)
		}
		s.X = append(s.X, float64(w))
		s.Y = append(s.Y, y)
	}
	for _, p := range points {
		add(fmt.Sprintf("%dc-exp", p.Cores), p.SampleSize, p.Empirical)
		add(fmt.Sprintf("%dc-model", p.Cores), p.SampleSize, p.Model)
	}
	series := make([]plot.Series, 0, len(order))
	for _, name := range order {
		series = append(series, plot.SortSeriesByX(*bySeries[name]))
	}
	return plot.Line(plot.Config{
		Title:  "Figure 3: confidence DRRIP>DIP (WSU) vs sample size — experiment vs model",
		XLabel: "sample size (log)",
		YLabel: "confidence",
		LogX:   true,
		FixedY: true, YMin: 0.5, YMax: 1,
		Height: 20,
	}, series...), nil
}

// Fig5Chart renders the grouped 1/cv bars of Figure 5 (population
// column).
func (l *Lab) Fig5Chart(ctx context.Context, cores int) (string, error) {
	rows, err := l.Fig5(ctx, cores)
	if err != nil {
		return "", err
	}
	names := []string{"IPCT", "WSU", "HSU"}
	out := make([]plot.BarGroup, 0, len(rows))
	for _, r := range rows {
		g := plot.BarGroup{Label: fmt.Sprintf("%s>%s", r.Pair[0], r.Pair[1])}
		for _, m := range metricsAll() {
			g.Values = append(g.Values, r.Inv[m])
		}
		out = append(out, g)
	}
	return plot.Bars(plot.Config{
		Title: fmt.Sprintf("Figure 5: 1/cv per policy pair and metric (%d cores, full population)", cores),
		Width: 48,
	}, names, out), nil
}

// Fig6Chart renders the per-pair confidence curves of Figure 6.
func (l *Lab) Fig6Chart(ctx context.Context, cores int) (string, error) {
	points, err := l.Fig6(ctx, cores)
	if err != nil {
		return "", err
	}
	type pairKey string
	byPair := map[pairKey]map[string]*plot.Series{}
	var pairOrder []pairKey
	for _, p := range points {
		pk := pairKey(fmt.Sprintf("%s > %s", p.Pair[1], p.Pair[0]))
		if byPair[pk] == nil {
			byPair[pk] = map[string]*plot.Series{}
			pairOrder = append(pairOrder, pk)
		}
		s, ok := byPair[pk][p.Method]
		if !ok {
			s = &plot.Series{Name: p.Method}
			byPair[pk][p.Method] = s
		}
		s.X = append(s.X, float64(p.SampleSize))
		s.Y = append(s.Y, p.Confidence)
	}
	out := ""
	for _, pk := range pairOrder {
		var series []plot.Series
		for _, m := range []string{"random", "bal-random", "bench-strata", "workload-strata"} {
			if s, ok := byPair[pk][m]; ok {
				series = append(series, plot.SortSeriesByX(*s))
			}
		}
		out += plot.Line(plot.Config{
			Title:  fmt.Sprintf("Figure 6 (%s): confidence vs sample size, IPCT, %d cores", pk, cores),
			XLabel: "sample size (log)",
			YLabel: "confidence",
			LogX:   true,
			FixedY: true, YMin: 0.5, YMax: 1,
		}, series...)
		out += "\n"
	}
	return out, nil
}

// ProfileTable renders the per-benchmark microarchitecture-independent
// profiles (an extension table backing the clustering methods).
func (l *Lab) ProfileTable(ctx context.Context) (*Table, error) {
	profs, err := l.Profiles(ctx)
	if err != nil {
		return nil, err
	}
	t := &Table{
		Title: "Extension: microarchitecture-independent benchmark profiles",
		Columns: []string{"benchmark", "load", "store", "branch", "taken",
			"code lines", "data lines", "seq", "log-reuse", "miss@256k"},
		Notes: []string{"features feed the cluster-based selection methods (see `mcbench methods`)"},
	}
	for _, p := range profs {
		t.AddRow(p.Name, f3(p.LoadFrac), f3(p.StoreFrac), f3(p.BranchFrac),
			f3(p.TakenRate), fmt.Sprint(p.CodeLines), fmt.Sprint(p.DataLines),
			f3(p.SeqFrac), f2(p.MeanLogDist), f3(p.MissRatio(1<<12)))
	}
	return t, nil
}
