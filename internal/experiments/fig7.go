package experiments

import (
	"fmt"
	"math/rand"

	"mcbench/internal/cache"
	"mcbench/internal/metrics"
	"mcbench/internal/sampling"
	"mcbench/internal/workload"
)

// Fig7SampleSizes is the figure's small-sample sweep.
var Fig7SampleSizes = []int{10, 20, 30, 40, 50}

// Fig7Point is one (cores, method, sample size) confidence measurement
// with the detailed simulator.
type Fig7Point struct {
	Cores      int
	Method     string
	SampleSize int
	Confidence float64
}

// Fig7 reproduces Figure 7: the *actual* degree of confidence that DIP
// outperforms LRU (IPCT), measured with the detailed simulator's
// throughputs, while the strata are defined with BADCO — so the figure
// includes the approximate simulator's error, unlike Figure 6. For 2
// cores the full 253-workload population is simulated in detail; for 4
// (and 8) cores only the detailed sample is available, and sampling is
// performed within it. Balanced random sampling is only applicable when
// the sampled set is the full population (2 cores), as in the paper.
func (l *Lab) Fig7(coreCounts []int) []Fig7Point {
	if len(coreCounts) == 0 {
		coreCounts = []int{2, 4}
	}
	var out []Fig7Point
	for _, cores := range coreCounts {
		pop := l.Population(cores)
		sample := l.DetSample(cores)

		// Detailed-simulator differences over the sample: the values the
		// confidence is measured on.
		dDet := l.DetailedDiffs(cores, metrics.IPCT, cache.LRU, cache.DIP)
		// BADCO differences over the same workloads: what the strata are
		// built from.
		dBadco := l.BadcoDiffsAt(cores, metrics.IPCT, cache.LRU, cache.DIP, sample)

		// The sampled workloads, as their own population for the
		// class-based and balanced methods.
		ws := make([]workload.Workload, len(sample))
		for i, wi := range sample {
			ws[i] = pop.Workloads[wi]
		}
		subPop := workload.FromWorkloads(pop.B, pop.K, ws)

		samplers := []sampling.Sampler{sampling.NewSimpleRandom(len(dDet))}
		if uint64(len(sample)) == popSizeFor(cores) {
			samplers = append(samplers, sampling.NewBalancedRandom(subPop))
		}
		samplers = append(samplers,
			sampling.NewBenchmarkStrata(subPop, l.Classes(), sampling.NumClasses),
			sampling.NewWorkloadStrata(dBadco, sampling.DefaultWorkloadStrataConfig()),
		)

		for si, s := range samplers {
			rng := rand.New(rand.NewSource(l.cfg.Seed + 700 + int64(cores*10+si)))
			for _, w := range Fig7SampleSizes {
				if w > len(dDet) {
					break
				}
				out = append(out, Fig7Point{
					Cores:      cores,
					Method:     s.Name(),
					SampleSize: w,
					Confidence: sampling.EmpiricalConfidence(rng, dDet, s, w, l.cfg.Fig7Trials),
				})
			}
		}
	}
	return out
}

// Fig7Requests declares the tables Fig7 reads: LRU and DIP with both
// simulators, the reference IPCs and the MPKI classification, at each
// core count.
func (l *Lab) Fig7Requests(coreCounts []int) []Request {
	if len(coreCounts) == 0 {
		coreCounts = []int{2, 4}
	}
	pols := []cache.PolicyName{cache.LRU, cache.DIP}
	plan := []Request{{Sim: SimMPKI}}
	for _, cores := range coreCounts {
		plan = append(plan, badcoSet(cores, pols)...)
		plan = append(plan, detailedSet(cores, pols)...)
		plan = append(plan, Request{Sim: SimRef, Cores: cores})
	}
	return plan
}

// Fig7Table renders Figure 7.
func (l *Lab) Fig7Table(coreCounts []int) *Table {
	points := l.Fig7(coreCounts)
	methods := []string{"random", "bal-random", "bench-strata", "workload-strata"}
	t := &Table{
		Title:   "Figure 7: actual confidence that DIP > LRU (IPCT), measured with the detailed simulator",
		Columns: append([]string{"cores", "W"}, methods...),
		Notes: []string{
			"paper: workload stratification still dominates, though its detailed-sim confidence can be",
			"below the BADCO-estimated one (the approximate simulator is itself a source of error)",
		},
	}
	type key struct {
		cores, w int
	}
	cell := map[key]map[string]float64{}
	var order []key
	for _, p := range points {
		k := key{p.Cores, p.SampleSize}
		if cell[k] == nil {
			cell[k] = map[string]float64{}
			order = append(order, k)
		}
		cell[k][p.Method] = p.Confidence
	}
	for _, k := range order {
		row := []string{fmt.Sprint(k.cores), fmt.Sprint(k.w)}
		for _, m := range methods {
			if v, ok := cell[k][m]; ok {
				row = append(row, f3(v))
			} else {
				row = append(row, "n/a")
			}
		}
		t.AddRow(row...)
	}
	return t
}
