package experiments

import (
	"context"
	"fmt"
	"math/rand"

	"mcbench/internal/cache"
	"mcbench/internal/metrics"
	"mcbench/internal/sampling"
	"mcbench/internal/workload"
)

func init() {
	Register(Spec{
		Name:     "fig7",
		Synopsis: "actual (detailed-simulator) confidence for DIP>LRU",
		Group:    GroupPaper,
		Requests: func(l *Lab, p Params) []Request { return l.Fig7Requests(p.CoreCounts) },
		Run: func(ctx context.Context, l *Lab, p Params) (*Table, error) {
			return l.fig7Table(ctx, p.CoreCounts)
		},
	})
}

// Fig7SampleSizes is the figure's small-sample sweep.
var Fig7SampleSizes = []int{10, 20, 30, 40, 50}

// fig7CoreCounts resolves the figure's core-count sweep.
func fig7CoreCounts(coreCounts []int) []int {
	if len(coreCounts) == 0 {
		return []int{2, 4}
	}
	return coreCounts
}

// Fig7Point is one (cores, method, sample size) confidence measurement
// with the detailed simulator.
type Fig7Point struct {
	Cores      int
	Method     string
	SampleSize int
	Confidence float64
}

// Fig7 reproduces Figure 7: the *actual* degree of confidence that DIP
// outperforms LRU (IPCT), measured with the detailed simulator's
// throughputs, while the strata are defined with BADCO — so the figure
// includes the approximate simulator's error, unlike Figure 6. For 2
// cores the full 253-workload population is simulated in detail; for 4
// (and 8) cores only the detailed sample is available, and sampling is
// performed within it. Balanced random sampling is only applicable when
// the sampled set is the full population (2 cores), as in the paper.
func (l *Lab) Fig7(ctx context.Context, coreCounts []int) ([]Fig7Point, error) {
	var out []Fig7Point
	for _, cores := range fig7CoreCounts(coreCounts) {
		pop := l.Population(cores)
		sample := l.DetSample(cores)

		// Detailed-simulator differences over the sample: the values the
		// confidence is measured on.
		dDet, err := l.DetailedDiffs(ctx, cores, metrics.IPCT, cache.LRU, cache.DIP)
		if err != nil {
			return nil, err
		}
		// BADCO differences over the same workloads: what the strata are
		// built from.
		dBadco, err := l.BadcoDiffsAt(ctx, cores, metrics.IPCT, cache.LRU, cache.DIP, sample)
		if err != nil {
			return nil, err
		}
		classes, err := l.Classes(ctx)
		if err != nil {
			return nil, err
		}

		// The sampled workloads, as their own population for the
		// class-based and balanced methods.
		ws := make([]workload.Workload, len(sample))
		for i, wi := range sample {
			ws[i] = pop.Workloads[wi]
		}
		subPop := workload.FromWorkloads(pop.B, pop.K, ws)

		samplers := []sampling.Sampler{sampling.NewSimpleRandom(len(dDet))}
		if l.isFullPopulation(len(sample), cores) {
			samplers = append(samplers, sampling.NewBalancedRandom(subPop))
		}
		samplers = append(samplers,
			sampling.NewBenchmarkStrata(subPop, classes, sampling.NumClasses),
			sampling.NewWorkloadStrata(dBadco, sampling.DefaultWorkloadStrataConfig()),
		)

		for si, s := range samplers {
			rng := rand.New(rand.NewSource(l.cfg.Seed + 700 + int64(cores*10+si)))
			for _, w := range Fig7SampleSizes {
				if w > len(dDet) {
					break
				}
				out = append(out, Fig7Point{
					Cores:      cores,
					Method:     s.Name(),
					SampleSize: w,
					Confidence: sampling.EmpiricalConfidence(rng, dDet, s, w, l.cfg.Fig7Trials),
				})
			}
		}
	}
	return out, nil
}

// Fig7Requests declares the tables Fig7 reads: LRU and DIP with both
// simulators, the reference IPCs and the MPKI classification, at each
// core count.
func (l *Lab) Fig7Requests(coreCounts []int) []Request {
	pols := []cache.PolicyName{cache.LRU, cache.DIP}
	plan := []Request{{Sim: SimMPKI}}
	for _, cores := range fig7CoreCounts(coreCounts) {
		plan = append(plan, badcoSet(cores, pols)...)
		plan = append(plan, detailedSet(cores, pols)...)
		plan = append(plan, Request{Sim: SimRef, Cores: cores})
	}
	return plan
}

// fig7Table renders Figure 7.
func (l *Lab) fig7Table(ctx context.Context, coreCounts []int) (*Table, error) {
	points, err := l.Fig7(ctx, coreCounts)
	if err != nil {
		return nil, err
	}
	methods := []string{"random", "bal-random", "bench-strata", "workload-strata"}
	t := &Table{
		Title:   "Figure 7: actual confidence that DIP > LRU (IPCT), measured with the detailed simulator",
		Columns: append([]string{"cores", "W"}, methods...),
		Notes: []string{
			"paper: workload stratification still dominates, though its detailed-sim confidence can be",
			"below the BADCO-estimated one (the approximate simulator is itself a source of error)",
		},
	}
	type key struct {
		cores, w int
	}
	cell := map[key]map[string]float64{}
	var order []key
	for _, p := range points {
		k := key{p.Cores, p.SampleSize}
		if cell[k] == nil {
			cell[k] = map[string]float64{}
			order = append(order, k)
		}
		cell[k][p.Method] = p.Confidence
	}
	for _, k := range order {
		row := []string{fmt.Sprint(k.cores), fmt.Sprint(k.w)}
		for _, m := range methods {
			if v, ok := cell[k][m]; ok {
				row = append(row, f3(v))
			} else {
				row = append(row, "n/a")
			}
		}
		t.AddRow(row...)
	}
	return t, nil
}
