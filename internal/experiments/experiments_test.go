package experiments

import (
	"context"
	"flag"
	"math"
	"strings"
	"sync"
	"testing"

	"mcbench/internal/cache"
	"mcbench/internal/metrics"
	"mcbench/internal/sampling"
	"mcbench/internal/stats"
)

// tctx is the background context of tests that do not exercise
// cancellation.
var tctx = context.Background()

// must unwraps a (value, error) pair in tests; an error fails the test
// via panic (which the testing runner reports with a stack).
func must[T any](v T, err error) T {
	if err != nil {
		panic(err)
	}
	return v
}

// sharedLab caches one quick lab across tests (population sweeps are the
// expensive part; the lab memoizes them).
var (
	labOnce   sync.Once
	sharedLab *Lab
)

// testPlan is every memoized product the test suite reads: the paper
// experiments at 2 cores plus the extension experiments at 4. Warming it
// up front builds distinct tables concurrently (bounded by GOMAXPROCS),
// so the package's wall-clock approaches the cost of its slowest single
// table instead of the sum of all of them.
func testPlan(l *Lab) []Request {
	var plan []Request
	plan = append(plan, l.Fig2Requests([]int{2})...)
	plan = append(plan, l.Fig3Requests([]int{2})...)
	plan = append(plan, l.Fig4Requests(2)...)
	plan = append(plan, l.Fig5Requests(2)...)
	plan = append(plan, l.Fig6Requests(2)...)
	plan = append(plan, l.Fig7Requests([]int{2})...)
	plan = append(plan, l.TableIIIRequests()...)
	plan = append(plan, l.TableIVRequests()...)
	plan = append(plan, l.OverheadRequests(2)...)
	plan = append(plan, l.AblationRequests(2)...)
	plan = append(plan, l.SpeedupRequests(2)...)
	plan = append(plan, l.GuidelineRequests(2)...)
	plan = append(plan, l.ExtPoliciesRequests(2)...)
	plan = append(plan, l.ExtMethodsRequests(4)...)
	plan = append(plan, l.NormalityRequests(4)...)
	return plan
}

func quickLab(t *testing.T) *Lab {
	t.Helper()
	if testing.Short() {
		t.Skip("experiments need population sweeps; skipped with -short")
	}
	labOnce.Do(func() {
		sharedLab = NewLab(QuickConfig())
		// Warm the whole plan only for full-suite runs; a targeted
		// `go test -run X` should pay just for the tables X reads
		// (which the lab then builds lazily).
		if f := flag.Lookup("test.run"); f == nil || f.Value.String() == "" {
			if _, err := sharedLab.Warm(tctx, testPlan(sharedLab), 0); err != nil {
				panic(err)
			}
		}
	})
	return sharedLab
}

func TestFig1CurveShape(t *testing.T) {
	tab := Fig1()
	if len(tab.Rows) == 0 {
		t.Fatal("empty table")
	}
	// First ~0, middle 0.5, last ~1.
	first := tab.Rows[0][1]
	mid := tab.Rows[len(tab.Rows)/2][1]
	last := tab.Rows[len(tab.Rows)-1][1]
	if first != "0.0023" || mid != "0.5000" || last != "0.9977" {
		t.Errorf("curve anchors %s/%s/%s", first, mid, last)
	}
}

func TestPolicyPairsCount(t *testing.T) {
	pairs := PolicyPairs()
	if len(pairs) != 10 {
		t.Fatalf("%d pairs, want 10 (paper)", len(pairs))
	}
	seen := map[string]bool{}
	for _, p := range pairs {
		key := string(p[0]) + ">" + string(p[1])
		if seen[key] {
			t.Errorf("duplicate pair %s", key)
		}
		seen[key] = true
	}
}

func TestLabBasics(t *testing.T) {
	l := quickLab(t)
	if got := len(l.Names()); got != 22 {
		t.Fatalf("%d benchmarks", got)
	}
	if got := l.Population(2).Size(); got != 253 {
		t.Fatalf("2-core population %d, want 253", got)
	}
	p4 := l.Population(4)
	if p4.Size() != l.Config().Pop4Limit {
		t.Fatalf("4-core population %d, want %d", p4.Size(), l.Config().Pop4Limit)
	}
	if got := l.Population(8).Size(); got != l.Config().Pop8Size {
		t.Fatalf("8-core population %d", got)
	}
}

func TestRefIPCPositive(t *testing.T) {
	l := quickLab(t)
	for _, cores := range []int{2, 4} {
		ref := must(l.RefIPC(tctx, cores))
		for i, v := range ref {
			if v <= 0 || v > 4 {
				t.Errorf("cores=%d: ref IPC of %s = %g implausible", cores, l.Names()[i], v)
			}
		}
	}
}

func TestBadcoIPCTableShape(t *testing.T) {
	l := quickLab(t)
	tab := must(l.BadcoIPC(tctx, 2, cache.LRU))
	if len(tab) != 253 {
		t.Fatalf("table rows %d", len(tab))
	}
	for i, row := range tab {
		if len(row) != 2 {
			t.Fatalf("row %d has %d cores", i, len(row))
		}
		for k, v := range row {
			if v <= 0 || v > 4 {
				t.Fatalf("IPC[%d][%d] = %g", i, k, v)
			}
		}
	}
	// Memoized: second call returns identical slice.
	tab2 := must(l.BadcoIPC(tctx, 2, cache.LRU))
	if &tab[0] != &tab2[0] {
		t.Error("BadcoIPC not memoized")
	}
}

func TestDiffsConsistentAcrossMetrics(t *testing.T) {
	l := quickLab(t)
	// LRU vs FIFO is decisive: every metric must agree LRU wins
	// (negative mean with our d = tY - tX and (X=LRU, Y=FIFO)).
	for _, m := range metrics.All() {
		d := must(l.Diffs(tctx, 2, m, cache.LRU, cache.FIFO))
		if mean := stats.Mean(d); mean >= 0 {
			t.Errorf("%v: mean d(LRU->FIFO) = %g, want < 0 (LRU clearly better)", m, mean)
		}
	}
}

func TestFig3ModelMatchesExperiment(t *testing.T) {
	l := quickLab(t)
	points := must(l.Fig3(tctx, []int{2}))
	if len(points) == 0 {
		t.Fatal("no points")
	}
	for _, p := range points {
		if math.Abs(p.Empirical-p.Model) > 0.12 {
			t.Errorf("W=%d: empirical %.3f vs model %.3f", p.SampleSize, p.Empirical, p.Model)
		}
	}
}

func TestFig4SampleTracksPopulation(t *testing.T) {
	l := quickLab(t)
	rows := must(l.Fig4(tctx, 2))
	if len(rows) != 30 { // 10 pairs x 3 metrics
		t.Fatalf("%d rows", len(rows))
	}
	agree := 0
	for _, r := range rows {
		if (r.BadcoS > 0) == (r.BadcoPop > 0) {
			agree++
		}
	}
	// BADCO sample and population must agree in sign for the vast
	// majority of (pair, metric) combinations.
	if agree < len(rows)*8/10 {
		t.Errorf("sample/population sign agreement only %d/%d", agree, len(rows))
	}
}

func TestFig5SignsConsistent(t *testing.T) {
	l := quickLab(t)
	rows := must(l.Fig5(tctx, 2))
	if len(rows) != 10 {
		t.Fatalf("%d rows", len(rows))
	}
	consistent := 0
	for _, r := range rows {
		if sameSign(r.Inv[metrics.IPCT], r.Inv[metrics.WSU], r.Inv[metrics.HSU]) {
			consistent++
		}
	}
	// The paper: all three metrics rank policies identically. Allow one
	// near-tie exception at quick scale.
	if consistent < 9 {
		t.Errorf("only %d/10 pairs have metric-consistent signs", consistent)
	}
	// LRU >> FIFO decisively: |1/cv| large.
	for _, r := range rows {
		if r.Pair[0] == cache.LRU && r.Pair[1] == cache.FIFO {
			if v := math.Abs(r.Inv[metrics.IPCT]); v < 0.5 {
				t.Errorf("LRU vs FIFO |1/cv| = %.3f, want >= 0.5 (decisive)", v)
			}
		}
	}
}

func TestFig6StratificationWins(t *testing.T) {
	l := quickLab(t)
	points := must(l.Fig6(tctx, 2)) // 2 cores: full population, all 4 methods present
	if len(points) == 0 {
		t.Fatal("no points")
	}
	byKey := map[string]map[string]float64{}
	for _, p := range points {
		k := string(p.Pair[0]) + ">" + string(p.Pair[1])
		if p.SampleSize != 10 {
			continue
		}
		if byKey[k] == nil {
			byKey[k] = map[string]float64{}
		}
		byKey[k][p.Method] = p.Confidence
	}
	// At W=10, workload stratification must dominate simple random
	// sampling on every pair (confidence further from 0.5 in the same
	// direction, i.e. more decisive).
	for pair, conf := range byKey {
		r, okR := conf["random"]
		s, okS := conf["workload-strata"]
		if !okR || !okS {
			t.Fatalf("%s: missing methods %v", pair, conf)
		}
		if decisive(s) < decisive(r)-0.02 {
			t.Errorf("%s at W=10: workload-strata %.3f less decisive than random %.3f", pair, s, r)
		}
	}
}

// decisive maps a confidence to how far it is from a coin flip.
func decisive(c float64) float64 { return math.Abs(c - 0.5) }

func TestFig7DetailedConfidence(t *testing.T) {
	l := quickLab(t)
	points := must(l.Fig7(tctx, []int{2}))
	if len(points) == 0 {
		t.Fatal("no points")
	}
	methods := map[string]bool{}
	for _, p := range points {
		methods[p.Method] = true
		if p.Confidence < 0 || p.Confidence > 1 {
			t.Fatalf("confidence %g out of range", p.Confidence)
		}
	}
	// 2 cores simulates the full population in detail, so all four
	// methods (including balanced) must be present.
	for _, m := range []string{"random", "bal-random", "bench-strata", "workload-strata"} {
		if !methods[m] {
			t.Errorf("method %s missing from Fig7", m)
		}
	}
}

func TestTableIVClassesSeparate(t *testing.T) {
	l := quickLab(t)
	tab := must(l.TableIV(tctx))
	if len(tab.Rows) != 22 {
		t.Fatalf("%d rows", len(tab.Rows))
	}
	// At quick scale the absolute classes shift (touched footprints
	// shrink with the trace), so only check the table renders and the
	// MPKI column parses.
	for _, row := range tab.Rows {
		if len(row) != 5 {
			t.Fatalf("row %v", row)
		}
	}
}

func TestTableIIIBadcoFaster(t *testing.T) {
	l := quickLab(t)
	rows := must(l.TableIII(tctx, 2))
	if len(rows) != 4 {
		t.Fatalf("%d rows", len(rows))
	}
	for _, r := range rows {
		if r.BadcoMIPS <= r.DetMIPS {
			t.Errorf("cores=%d: BADCO %.3f MIPS not above detailed %.3f", r.Cores, r.BadcoMIPS, r.DetMIPS)
		}
		if r.Speedup < 1.2 {
			t.Errorf("cores=%d: speedup %.2f implausibly low", r.Cores, r.Speedup)
		}
	}
}

func TestFig2AccuracyWithinBounds(t *testing.T) {
	l := quickLab(t)
	res := must(l.Fig2(tctx, []int{2}))
	if len(res) != 1 {
		t.Fatalf("%d results", len(res))
	}
	r := res[0]
	if r.AvgCPIErr > 0.20 {
		t.Errorf("avg CPI error %.1f%%, want <= 20%% (paper: ~4.6%%)", r.AvgCPIErr*100)
	}
	if r.AvgSpeedupErr > r.AvgCPIErr {
		t.Errorf("speedup error %.1f%% above CPI error %.1f%% — paper has the opposite",
			r.AvgSpeedupErr*100, r.AvgCPIErr*100)
	}
	if len(r.Points) == 0 {
		t.Fatal("no scatter points")
	}
}

func TestOverheadStory(t *testing.T) {
	l := quickLab(t)
	r := must(l.Overhead(tctx, 2))
	if r.DetMIPS <= 0 || r.BadcoMIPS <= r.DetMIPS {
		t.Fatalf("speeds %.3f/%.3f", r.DetMIPS, r.BadcoMIPS)
	}
	if r.StrataWorkloads <= 0 {
		t.Fatal("no stratified sample size")
	}
	if len(r.Random) != 3 {
		t.Fatalf("%d random lines", len(r.Random))
	}
}

func TestTableRendering(t *testing.T) {
	tab := &Table{
		Title:   "T",
		Columns: []string{"a", "bb"},
		Notes:   []string{"n"},
	}
	tab.AddRow("1", "2")
	s := tab.String()
	for _, want := range []string{"== T ==", "a", "bb", "note: n", "1"} {
		if !strings.Contains(s, want) {
			t.Errorf("rendered table missing %q:\n%s", want, s)
		}
	}
}

func TestPaperClassTable(t *testing.T) {
	if PaperClass("mcf") != sampling.HighMPKI {
		t.Error("mcf should be High")
	}
	if PaperClass("povray") != sampling.LowMPKI {
		t.Error("povray should be Low")
	}
	if len(paperClasses) != 22 {
		t.Errorf("%d paper classes", len(paperClasses))
	}
}

func TestAblationTables(t *testing.T) {
	l := quickLab(t)
	strata := must(l.AblationStrataParams(tctx, 2, 20))
	if len(strata.Rows) != 16 {
		t.Errorf("strata ablation rows %d, want 16", len(strata.Rows))
	}
	classes := must(l.AblationClassification(tctx, 2, 20))
	if len(classes.Rows) != 3 {
		t.Errorf("classification ablation rows %d, want 3", len(classes.Rows))
	}
	met := must(l.AblationMetricChoice(tctx, 2))
	if len(met.Rows) != 10 {
		t.Errorf("metric ablation rows %d, want 10", len(met.Rows))
	}
}

func TestSpeedupAccuracyShrinksWithW(t *testing.T) {
	l := quickLab(t)
	pts := must(l.SpeedupAccuracy(tctx, 2, metrics.WSU, cache.LRU, cache.FIFO, []int{10, 100}, 300))
	byMethod := map[string]map[int]float64{}
	for _, p := range pts {
		if byMethod[p.Method] == nil {
			byMethod[p.Method] = map[int]float64{}
		}
		byMethod[p.Method][p.SampleSize] = p.MeanAbsErr
		if p.MeanAbsErr < 0 || p.P95AbsErr < p.MeanAbsErr/2 {
			t.Errorf("%s W=%d: implausible errors mean=%g p95=%g",
				p.Method, p.SampleSize, p.MeanAbsErr, p.P95AbsErr)
		}
	}
	// Larger samples must shrink the speedup error for every method.
	for m, errs := range byMethod {
		if errs[100] >= errs[10] {
			t.Errorf("%s: error at W=100 (%g) not below W=10 (%g)", m, errs[100], errs[10])
		}
	}
}

func TestLabCachePersistsSweeps(t *testing.T) {
	if testing.Short() {
		t.Skip("sweep")
	}
	cfg := QuickConfig()
	cfg.TraceLen = 4000 // tiny: this test runs its own lab
	cfg.CacheDir = t.TempDir()
	l1 := NewLab(cfg)
	a := must(l1.BadcoIPC(tctx, 2, cache.FIFO))
	// A fresh lab with the same config must load the persisted table
	// (bitwise identical) without resimulating.
	l2 := NewLab(cfg)
	b := must(l2.BadcoIPC(tctx, 2, cache.FIFO))
	if len(a) != len(b) {
		t.Fatalf("row counts %d vs %d", len(a), len(b))
	}
	for i := range a {
		for k := range a[i] {
			if a[i][k] != b[i][k] {
				t.Fatalf("cached table differs at [%d][%d]", i, k)
			}
		}
	}
}

func TestGuidelineRecommendations(t *testing.T) {
	l := quickLab(t)
	// The decisive pair must be "random" with a small W.
	r := must(l.Guideline(tctx, 2, metrics.WSU, cache.LRU, cache.FIFO))
	if r.Strategy != "random" {
		t.Errorf("LRU/FIFO strategy %q, want random (decisive pair)", r.Strategy)
	}
	if r.Strategy == "random" && (r.SampleSize < 1 || r.SampleSize > 200) {
		t.Errorf("LRU/FIFO recommended W=%d implausible", r.SampleSize)
	}
	// Every pair must yield a well-formed recommendation.
	tab := must(l.GuidelineTable(tctx, 2, metrics.WSU))
	if len(tab.Rows) != 10 {
		t.Fatalf("%d guideline rows", len(tab.Rows))
	}
	for _, row := range tab.Rows {
		switch row[2] {
		case "equivalent", "random", "stratify":
		default:
			t.Errorf("unknown strategy %q", row[2])
		}
	}
}
