package experiments

import (
	"context"
	"fmt"

	"mcbench/internal/cache"
	"mcbench/internal/metrics"
	"mcbench/internal/stats"
)

func init() {
	Register(Spec{
		Name:     "policies",
		Synopsis: "SRRIP/PLRU/SHiP placed in the paper's 1/cv framework",
		Group:    GroupExtension,
		Requests: func(l *Lab, p Params) []Request { return l.ExtPoliciesRequests(p.cores()) },
		Run: func(ctx context.Context, l *Lab, p Params) (*Table, error) {
			return l.extPoliciesTable(ctx, p.cores())
		},
	})
}

// ExtPolicyRow is one extension-policy pair's population statistics.
type ExtPolicyRow struct {
	Pair      [2]cache.PolicyName
	InvCV     float64 // 1/cv of d(w), IPCT, population
	RequiredW int     // W = 8cv^2
}

// ExtPolicies extends the paper's five-policy case study with SRRIP,
// PLRU and SHiP: for each extension policy it measures 1/cv of the
// population throughput difference against LRU and against DRRIP (IPCT),
// placing the new policies in the paper's decisive/near-tie spectrum and
// showing how the required random-sample size W = 8cv² shifts with the
// pair.
func (l *Lab) ExtPolicies(ctx context.Context, cores int) ([]ExtPolicyRow, error) {
	var rows []ExtPolicyRow
	for _, ext := range []cache.PolicyName{cache.SRRIP, cache.PLRU, cache.SHIP} {
		for _, base := range []cache.PolicyName{cache.LRU, cache.DRRIP} {
			d, err := l.Diffs(ctx, cores, metrics.IPCT, base, ext)
			if err != nil {
				return nil, err
			}
			rows = append(rows, ExtPolicyRow{
				Pair:      [2]cache.PolicyName{base, ext},
				InvCV:     stats.InvCoefVar(d),
				RequiredW: stats.RequiredSampleSize(stats.CoefVar(d)),
			})
		}
	}
	return rows, nil
}

// ExtPoliciesRequests declares the tables ExtPolicies reads: the two
// baselines and three extension policies' BADCO tables plus the
// reference IPCs.
func (l *Lab) ExtPoliciesRequests(cores int) []Request {
	pols := []cache.PolicyName{cache.LRU, cache.DRRIP, cache.SRRIP, cache.PLRU, cache.SHIP}
	return append(badcoSet(cores, pols), Request{Sim: SimRef, Cores: cores})
}

// extPoliciesTable renders the extension-policy comparison.
func (l *Lab) extPoliciesTable(ctx context.Context, cores int) (*Table, error) {
	t := &Table{
		Title:   fmt.Sprintf("Extension: SRRIP / PLRU / SHiP in the paper's 1/cv framework (IPCT, %d cores)", cores),
		Columns: []string{"pair (X>Y)", "1/cv", "required W"},
		Notes: []string{
			"positive 1/cv: Y beats X on the population; |1/cv| >= 1 is the ~8-workload regime,",
			"|1/cv| << 1 the hundreds-of-workloads regime (paper Sec. V-B)",
		},
	}
	rows, err := l.ExtPolicies(ctx, cores)
	if err != nil {
		return nil, err
	}
	for _, r := range rows {
		w := fmt.Sprint(r.RequiredW)
		if r.RequiredW > 1<<20 {
			w = "equal (cv > 10)"
		}
		t.AddRow(fmt.Sprintf("%s>%s", r.Pair[0], r.Pair[1]), f3(r.InvCV), w)
	}
	return t, nil
}
