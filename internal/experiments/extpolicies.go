package experiments

import (
	"fmt"

	"mcbench/internal/cache"
	"mcbench/internal/metrics"
	"mcbench/internal/stats"
)

// ExtPolicyRow is one extension-policy pair's population statistics.
type ExtPolicyRow struct {
	Pair      [2]cache.PolicyName
	InvCV     float64 // 1/cv of d(w), IPCT, population
	RequiredW int     // W = 8cv^2
}

// ExtPolicies extends the paper's five-policy case study with SRRIP,
// PLRU and SHiP: for each extension policy it measures 1/cv of the
// population throughput difference against LRU and against DRRIP (IPCT),
// placing the new policies in the paper's decisive/near-tie spectrum and
// showing how the required random-sample size W = 8cv² shifts with the
// pair.
func (l *Lab) ExtPolicies(cores int) []ExtPolicyRow {
	var rows []ExtPolicyRow
	for _, ext := range []cache.PolicyName{cache.SRRIP, cache.PLRU, cache.SHIP} {
		for _, base := range []cache.PolicyName{cache.LRU, cache.DRRIP} {
			d := l.Diffs(cores, metrics.IPCT, base, ext)
			rows = append(rows, ExtPolicyRow{
				Pair:      [2]cache.PolicyName{base, ext},
				InvCV:     stats.InvCoefVar(d),
				RequiredW: stats.RequiredSampleSize(stats.CoefVar(d)),
			})
		}
	}
	return rows
}

// ExtPoliciesRequests declares the tables ExtPolicies reads: the two
// baselines and three extension policies' BADCO tables plus the
// reference IPCs.
func (l *Lab) ExtPoliciesRequests(cores int) []Request {
	pols := []cache.PolicyName{cache.LRU, cache.DRRIP, cache.SRRIP, cache.PLRU, cache.SHIP}
	return append(badcoSet(cores, pols), Request{Sim: SimRef, Cores: cores})
}

// ExtPoliciesTable renders the extension-policy comparison.
func (l *Lab) ExtPoliciesTable(cores int) *Table {
	t := &Table{
		Title:   fmt.Sprintf("Extension: SRRIP / PLRU / SHiP in the paper's 1/cv framework (IPCT, %d cores)", cores),
		Columns: []string{"pair (X>Y)", "1/cv", "required W"},
		Notes: []string{
			"positive 1/cv: Y beats X on the population; |1/cv| >= 1 is the ~8-workload regime,",
			"|1/cv| << 1 the hundreds-of-workloads regime (paper Sec. V-B)",
		},
	}
	for _, r := range l.ExtPolicies(cores) {
		w := fmt.Sprint(r.RequiredW)
		if r.RequiredW > 1<<20 {
			w = "equal (cv > 10)"
		}
		t.AddRow(fmt.Sprintf("%s>%s", r.Pair[0], r.Pair[1]), f3(r.InvCV), w)
	}
	return t
}
