package experiments

// Extension experiments beyond the paper's own tables and figures,
// exercising the systematic selection methods that Section II-B only
// surveys, the co-phase matrix method of footnote 4, the Table I branch
// predictor, and the CLT premise behind equation (5):
//
//   - ExtMethods: six selection methods side by side, adding
//     cluster-derived benchmark classes (Vandierendonck & Seznec [6]) and
//     Van Biesbrouck et al.'s representative workload clustering [7] to
//     the paper's four.
//   - CophaseValidation: co-phase matrix accuracy and cost against direct
//     detailed simulation.
//   - PredictorAblation: bimodal/gshare/tournament/TAGE on branchy
//     synthetic workloads.
//   - Normality: Kolmogorov–Smirnov distance of the sample-mean
//     distribution of d(w) from a fitted normal, as the sample size grows.

import (
	"context"
	"fmt"
	"math/rand"

	"mcbench/internal/bpred"
	"mcbench/internal/cache"
	"mcbench/internal/cophase"
	"mcbench/internal/cpu"
	"mcbench/internal/metrics"
	"mcbench/internal/multicore"
	"mcbench/internal/profile"
	"mcbench/internal/sampling"
	"mcbench/internal/stats"
	"mcbench/internal/trace"
	"mcbench/internal/uncore"
)

func init() {
	Register(Spec{
		Name:     "methods",
		Synopsis: "six selection methods incl. cluster-based (Sec. II-B refs [6,7])",
		Group:    GroupExtension,
		Requests: func(l *Lab, p Params) []Request { return l.ExtMethodsRequests(p.cores()) },
		Run: func(ctx context.Context, l *Lab, p Params) (*Table, error) {
			return l.extMethodsTable(ctx, p.cores())
		},
	})
	Register(Spec{
		Name:     "cophase",
		Synopsis: "co-phase matrix method vs detailed simulation (footnote 4)",
		Group:    GroupExtension,
		Run: func(ctx context.Context, l *Lab, p Params) (*Table, error) {
			return l.cophaseTable(ctx)
		},
	})
	Register(Spec{
		Name:     "predictors",
		Synopsis: "branch predictor ablation (bimodal/gshare/tournament/TAGE)",
		Group:    GroupExtension,
		Run: func(ctx context.Context, l *Lab, p Params) (*Table, error) {
			return l.predictorTable()
		},
	})
	Register(Spec{
		Name:     "normality",
		Synopsis: "CLT premise: KS distance of mean(d) from normal vs W",
		Group:    GroupExtension,
		Requests: func(l *Lab, p Params) []Request { return l.NormalityRequests(p.cores()) },
		Run: func(ctx context.Context, l *Lab, p Params) (*Table, error) {
			return l.normalityTable(ctx, p.cores())
		},
	})
}

// Profiles returns the microarchitecture-independent profile of every
// benchmark, indexed like Names().
func (l *Lab) Profiles(ctx context.Context) ([]*profile.Profile, error) {
	return l.profiles.get(ctx, func() ([]*profile.Profile, error) {
		names := l.Names()
		prov := l.Provider()
		out := make([]*profile.Profile, len(names))
		for i, n := range names {
			// One benchmark at a time: resolve, profile, release. The
			// profiles are tiny; the traces need not stay resident.
			tr, err := prov.Trace(ctx, n)
			if err != nil {
				return nil, err
			}
			p, err := profile.Compute(tr)
			prov.Release(n)
			if err != nil {
				return nil, err
			}
			out[i] = p
		}
		return out, nil
	})
}

// BenchFeatures returns the benchmark feature matrix for clustering.
func (l *Lab) BenchFeatures(ctx context.Context) ([][]float64, error) {
	profs, err := l.Profiles(ctx)
	if err != nil {
		return nil, err
	}
	out := make([][]float64, len(profs))
	for i, p := range profs {
		out[i] = p.Features()
	}
	return out, nil
}

// ExtMethodsSampleSizes is the (small) sample-size sweep of the extended
// comparison; the interesting regime is exactly where detailed
// simulation budgets live.
var ExtMethodsSampleSizes = []int{10, 20, 30, 50}

// ExtMethodsPoint is one (method, sample size) confidence measurement of
// the extended comparison.
type ExtMethodsPoint struct {
	Method     string
	SampleSize int
	Confidence float64
	Trials     int
}

// ExtMethods compares six selection methods on this reproduction's
// near-tie pair, DRRIP vs DIP (the analogue of the paper's hardest
// Figure 6 case; see EXPERIMENTS.md for why the near-tie pair shifts),
// with the IPCT metric: the paper's four, benchmark stratification with
// cluster-derived classes, and representative workload clustering. The
// representative method re-clusters per draw, so its Monte-Carlo trial
// count is reduced.
func (l *Lab) ExtMethods(ctx context.Context, cores int) ([]ExtMethodsPoint, error) {
	pop := l.Population(cores)
	d, err := l.Diffs(ctx, cores, metrics.IPCT, cache.DIP, cache.DRRIP)
	if err != nil {
		return nil, err
	}
	feats, err := l.BenchFeatures(ctx)
	if err != nil {
		return nil, err
	}
	classes, err := l.Classes(ctx)
	if err != nil {
		return nil, err
	}

	full := l.isFullPopulation(pop.Size(), cores)
	samplers := []struct {
		s      sampling.Sampler
		trials int
	}{
		{sampling.NewSimpleRandom(len(d)), l.cfg.Fig6Trials},
	}
	if full {
		samplers = append(samplers, struct {
			s      sampling.Sampler
			trials int
		}{sampling.NewBalancedRandom(pop), l.cfg.Fig6Trials})
	}
	samplers = append(samplers, struct {
		s      sampling.Sampler
		trials int
	}{sampling.NewBenchmarkStrata(pop, classes, sampling.NumClasses), l.cfg.Fig6Trials})

	clusterRng := rand.New(rand.NewSource(l.cfg.Seed + 9001))
	if cs, _, err := sampling.NewClusterBenchStrata(clusterRng, pop, feats, sampling.NumClasses); err == nil {
		samplers = append(samplers, struct {
			s      sampling.Sampler
			trials int
		}{cs, l.cfg.Fig6Trials})
	}
	samplers = append(samplers, struct {
		s      sampling.Sampler
		trials int
	}{sampling.NewWorkloadStrata(d, sampling.DefaultWorkloadStrataConfig()), l.cfg.Fig6Trials})

	if wf, err := sampling.WorkloadFeatures(pop, feats); err == nil {
		trials := l.cfg.Fig6Trials / 40
		if trials < 10 {
			trials = 10
		}
		samplers = append(samplers, struct {
			s      sampling.Sampler
			trials int
		}{sampling.NewRepresentative(wf, 25), trials})
	}

	var out []ExtMethodsPoint
	for si, sp := range samplers {
		rng := rand.New(rand.NewSource(l.cfg.Seed + 700 + int64(si)))
		for _, w := range ExtMethodsSampleSizes {
			if w > len(d) {
				break
			}
			out = append(out, ExtMethodsPoint{
				Method:     sp.s.Name(),
				SampleSize: w,
				Confidence: sampling.EmpiricalConfidence(rng, d, sp.s, w, sp.trials),
				Trials:     sp.trials,
			})
		}
	}
	return out, nil
}

// ExtMethodsRequests declares the tables ExtMethods reads: the near-tie
// pair's BADCO tables, the reference IPCs and the MPKI classification.
func (l *Lab) ExtMethodsRequests(cores int) []Request {
	return append(badcoSet(cores, []cache.PolicyName{cache.DIP, cache.DRRIP}),
		Request{Sim: SimRef, Cores: cores},
		Request{Sim: SimMPKI})
}

// extMethodsTable renders the extended comparison.
func (l *Lab) extMethodsTable(ctx context.Context, cores int) (*Table, error) {
	points, err := l.ExtMethods(ctx, cores)
	if err != nil {
		return nil, err
	}
	t := &Table{
		Title:   fmt.Sprintf("Extension: six selection methods on the near-tie pair DRRIP vs DIP (IPCT, %d cores)", cores),
		Columns: []string{"method", "W", "confidence", "trials"},
		Notes: []string{
			"cluster-strata derives classes by k-means on profile features instead of MPKI thresholds;",
			"workload-cluster simulates k-means medoids weighted by cluster size (Van Biesbrouck [7])",
		},
	}
	for _, p := range points {
		t.AddRow(p.Method, fmt.Sprint(p.SampleSize), f3(p.Confidence), fmt.Sprint(p.Trials))
	}
	return t, nil
}

// ---------------------------------------------------------------------------
// Co-phase matrix validation

// CophaseRow is the validation result for one workload.
type CophaseRow struct {
	Workload string
	IPCErr   float64 // mean relative per-thread IPC error vs detailed
	RankOK   bool    // thread IPC ranking preserved
	Entries  int     // co-phase matrix entries measured
	CostFrac float64 // detailed µops simulated / direct-simulation µops
}

// CophaseValidation runs the co-phase matrix method on a handful of
// 2-core workloads and compares it against direct detailed simulation.
func (l *Lab) CophaseValidation(ctx context.Context) ([]CophaseRow, error) {
	names := l.Names()
	prov := l.Provider()
	quota := uint64(l.cfg.TraceLen)
	// Mixed-intensity pairs exercise the interesting co-phase coupling.
	// Indices are taken modulo the source size, so smaller-than-suite
	// sources still validate (the suite keeps the exact paper pairs).
	pairs := [][2]int{{0, 21}, {5, 16}, {11, 18}, {2, 2}}

	var rows []CophaseRow
	for _, pr := range pairs {
		w := multicore.Workload{names[pr[0]%len(names)], names[pr[1]%len(names)]}
		// The co-phase machinery takes an explicit map; materialise just
		// this pair's traces through the source.
		traces := map[string]*trace.Trace{}
		for _, n := range w {
			tr, err := prov.Trace(ctx, n)
			if err != nil {
				return nil, err
			}
			traces[n] = tr
		}
		ref, err := multicore.Detailed(ctx, w, multicore.TraceMap(traces), cache.LRU, quota)
		if err != nil {
			return nil, err
		}
		cfg := cophase.Config{
			Phases:    10,
			SampleOps: l.cfg.TraceLen / 20,
			WarmOps:   l.cfg.TraceLen / 5,
			Policy:    cache.LRU,
		}
		sim, err := cophase.New([]string(w), traces, cfg)
		if err != nil {
			return nil, err
		}
		pred, err := sim.Run(quota)
		if err != nil {
			return nil, err
		}
		errSum := 0.0
		for k := range ref.IPC {
			e := (pred.IPC[k] - ref.IPC[k]) / ref.IPC[k]
			if e < 0 {
				e = -e
			}
			errSum += e
		}
		rows = append(rows, CophaseRow{
			Workload: w.String(),
			IPCErr:   errSum / float64(len(ref.IPC)),
			RankOK:   (pred.IPC[0] >= pred.IPC[1]) == (ref.IPC[0] >= ref.IPC[1]),
			Entries:  pred.MatrixEntries,
			CostFrac: float64(pred.SimulatedOps) / float64(quota*uint64(len(w))),
		})
	}
	return rows, nil
}

// cophaseTable renders the validation.
func (l *Lab) cophaseTable(ctx context.Context) (*Table, error) {
	t := &Table{
		Title:   "Extension: co-phase matrix method (footnote 4 / ref [19]) vs detailed simulation, 2 cores, LRU",
		Columns: []string{"workload", "mean IPC err", "rank ok", "matrix entries", "cost fraction"},
		Notes: []string{
			"cost fraction = detailed µops spent filling the matrix / µops of one direct simulation;",
			"the matrix amortises further over repeated or longer runs",
		},
	}
	rows, err := l.CophaseValidation(ctx)
	if err != nil {
		return nil, err
	}
	for _, r := range rows {
		t.AddRow(r.Workload, fmt.Sprintf("%.1f%%", r.IPCErr*100), fmt.Sprint(r.RankOK),
			fmt.Sprint(r.Entries), f3(r.CostFrac))
	}
	return t, nil
}

// ---------------------------------------------------------------------------
// Branch predictor ablation

// PredictorRow is one (workload flavour, predictor) measurement.
type PredictorRow struct {
	Flavour   string
	Predictor bpred.Kind
	MissRate  float64
	IPC       float64
}

// PredictorAblation measures the Table I predictor choices on three
// single-core workload flavours: the suite's uncorrelated biased
// branches, loop-dominated control flow, and correlated if/else chains.
// It justifies the core model's default (bimodal matches TAGE on the
// suite's traces) and shows where TAGE pays off.
func (l *Lab) PredictorAblation() ([]PredictorRow, error) {
	base := trace.Params{
		Name:        "ablation",
		LoadFrac:    0.22,
		StoreFrac:   0.08,
		BranchFrac:  0.16,
		FPFrac:      0.06,
		DepMean:     7,
		LoadDepFrac: 0.4,
		BranchBias:  0.92,
		CodeBytes:   16 << 10,
		Patterns:    []trace.PatternSpec{{Kind: trace.HotSet, Bytes: 24 << 10, Weight: 1}},
		Seed:        77,
	}
	flavours := []struct {
		name string
		mod  func(*trace.Params)
	}{
		{"biased (suite-like)", func(*trace.Params) {}},
		{"loop-dominated", func(p *trace.Params) { p.LoopFrac = 0.9 }},
		{"correlated", func(p *trace.Params) { p.CorrFrac = 0.6; p.BranchBias = 0.65 }},
	}
	kinds := []bpred.Kind{bpred.Bimodal, bpred.GShare, bpred.Tournament, bpred.TAGE}

	var rows []PredictorRow
	n := l.cfg.TraceLen
	for _, fl := range flavours {
		params := base
		params.Name = fl.name
		fl.mod(&params)
		tr, err := trace.Generate(params, n)
		if err != nil {
			return nil, err
		}
		for _, kind := range kinds {
			cfg := cpu.DefaultConfig()
			cfg.Predictor = kind
			unc, err := uncore.New(uncore.ConfigFor(1, cache.LRU))
			if err != nil {
				return nil, err
			}
			core, err := cpu.New(0, cfg, tr, unc)
			if err != nil {
				return nil, err
			}
			warm := core.Run(tr.Len())
			st := core.Run(tr.Len())
			rows = append(rows, PredictorRow{
				Flavour:   fl.name,
				Predictor: kind,
				MissRate: float64(st.BranchMisses-warm.BranchMisses) /
					float64(st.BranchLookups-warm.BranchLookups),
				IPC: float64(st.Committed-warm.Committed) / float64(st.Cycles-warm.Cycles),
			})
		}
	}
	return rows, nil
}

// predictorTable renders the ablation.
func (l *Lab) predictorTable() (*Table, error) {
	t := &Table{
		Title:   "Extension: branch predictor ablation (Table I front end), steady state, 1 core",
		Columns: []string{"workload flavour", "predictor", "miss rate", "IPC"},
		Notes: []string{
			"on uncorrelated biased branches all predictors sit at the bias floor (gshare above it);",
			"loop and correlated control flow is where TAGE's tagged geometric histories pay",
		},
	}
	rows, err := l.PredictorAblation()
	if err != nil {
		return nil, err
	}
	for _, r := range rows {
		t.AddRow(r.Flavour, string(r.Predictor), f4(r.MissRate), f3(r.IPC))
	}
	return t, nil
}

// ---------------------------------------------------------------------------
// CLT normality check

// NormalityPoint is the KS distance of the sample-mean distribution of
// d(w) from a fitted normal at one sample size.
type NormalityPoint struct {
	SampleSize int
	KS         float64
}

// Normality validates the premise of equation (5): as W grows, the
// distribution of the sample mean of d(w) (DIP vs LRU, IPCT) approaches a
// normal distribution. Each point Monte-Carlos cfg.Fig3Trials sample
// means and reports their Kolmogorov–Smirnov distance from normality.
func (l *Lab) Normality(ctx context.Context, cores int) ([]NormalityPoint, error) {
	d, err := l.Diffs(ctx, cores, metrics.IPCT, cache.LRU, cache.DIP)
	if err != nil {
		return nil, err
	}
	rng := rand.New(rand.NewSource(l.cfg.Seed + 424242))
	trials := l.cfg.Fig3Trials
	if trials < 200 {
		trials = 200
	}
	var out []NormalityPoint
	for _, w := range []int{1, 2, 4, 8, 16, 32, 64} {
		means := make([]float64, trials)
		for i := range means {
			sum := 0.0
			for j := 0; j < w; j++ {
				sum += d[rng.Intn(len(d))]
			}
			means[i] = sum / float64(w)
		}
		out = append(out, NormalityPoint{SampleSize: w, KS: stats.KSNormal(means)})
	}
	return out, nil
}

// NormalityRequests declares the tables Normality reads: the LRU and DIP
// BADCO tables plus the reference IPCs.
func (l *Lab) NormalityRequests(cores int) []Request {
	return append(badcoSet(cores, []cache.PolicyName{cache.LRU, cache.DIP}),
		Request{Sim: SimRef, Cores: cores})
}

// normalityTable renders the CLT check.
func (l *Lab) normalityTable(ctx context.Context, cores int) (*Table, error) {
	t := &Table{
		Title:   fmt.Sprintf("Extension: CLT premise of eq. (5) — KS distance of mean(d) from normal (%d cores, DIP vs LRU, IPCT)", cores),
		Columns: []string{"W", "KS distance"},
		Notes:   []string{"monotone-ish decrease towards 0 justifies the normal approximation behind W = 8cv^2"},
	}
	points, err := l.Normality(ctx, cores)
	if err != nil {
		return nil, err
	}
	for _, p := range points {
		t.AddRow(fmt.Sprint(p.SampleSize), f4(p.KS))
	}
	return t, nil
}
