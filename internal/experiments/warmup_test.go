package experiments

import (
	"math"
	"testing"

	"mcbench/internal/cache"
	"mcbench/internal/multicore"
)

// warmupConfig is a deliberately tiny campaign: the warmed sweeps run
// every workload through warmup once per policy-group, so the test pins
// exact bits, not statistics.
func warmupConfig() Config {
	cfg := QuickConfig()
	cfg.TraceLen = 6000
	cfg.PopLimit = 5
	cfg.DetailedCount = 5
	cfg.Warmup = 1500
	return cfg
}

// TestDetailedIPCSharedWarmup pins the lab's grouped shared-warmup sweep
// to the per-workload checkpoint protocol it rides on: warm once under
// the first case-study policy, fan every policy out from the restored
// state. Row order must follow the detailed sample.
func TestDetailedIPCSharedWarmup(t *testing.T) {
	l := NewLab(warmupConfig())
	pols := Policies()
	pop := l.Population(2)
	sample := l.DetSample(2)
	prov := l.Provider()
	warm := uint64(l.Config().Warmup)

	want := make(map[cache.PolicyName][][]float64, len(pols))
	for _, p := range pols {
		want[p] = make([][]float64, len(sample))
	}
	for i, wi := range sample {
		w := l.toMulticore(pop.Workloads[wi])
		cp := must(multicore.DetailedWarmup(tctx, w, prov, pols[0], warm))
		for _, p := range pols {
			want[p][i] = must(multicore.DetailedFrom(tctx, cp, prov, p, 0)).IPC
		}
	}

	for _, p := range pols {
		got := must(l.DetailedIPC(tctx, 2, p))
		if len(got) != len(sample) {
			t.Fatalf("%s: %d rows, want %d", p, len(got), len(sample))
		}
		for i := range got {
			for k := range got[i] {
				if math.Float64bits(got[i][k]) != math.Float64bits(want[p][i][k]) {
					t.Errorf("%s: workload %d core %d: IPC %v, want %v", p, i, k, got[i][k], want[p][i][k])
				}
			}
		}
	}
	// The whole policy group rode one grouped sweep.
	if _, det := l.SweepCounts(); det != 1 {
		t.Errorf("detailed sweeps = %d, want 1 for the shared group", det)
	}

	// The base policy's warmed table must also match the uninterrupted
	// two-stage run — no snapshot, no restore — closing the loop between
	// the lab protocol and live machines.
	for i, wi := range sample {
		w := l.toMulticore(pop.Workloads[wi])
		direct := must(multicore.DetailedWithWarmup(tctx, w, prov, pols[0], warm, 0))
		row := must(l.DetailedIPC(tctx, 2, pols[0]))[i]
		for k := range row {
			if math.Float64bits(row[k]) != math.Float64bits(direct.IPC[k]) {
				t.Errorf("workload %d core %d: table IPC %v, live two-stage %v", i, k, row[k], direct.IPC[k])
			}
		}
	}
}

// TestBadcoIPCWarmup pins the warmed BADCO sweep to per-workload
// uninterrupted two-stage runs.
func TestBadcoIPCWarmup(t *testing.T) {
	l := NewLab(warmupConfig())
	pop := l.Population(2)
	models := must(l.Models(tctx))
	warm := uint64(l.Config().Warmup)

	got := must(l.BadcoIPC(tctx, 2, cache.DRRIP))
	if len(got) != pop.Size() {
		t.Fatalf("%d rows, want %d", len(got), pop.Size())
	}
	for i, w := range pop.Workloads {
		want := must(multicore.ApproximateWithWarmup(tctx, l.toMulticore(w), models, cache.DRRIP, warm, 0))
		for k := range got[i] {
			if math.Float64bits(got[i][k]) != math.Float64bits(want.IPC[k]) {
				t.Errorf("workload %d core %d: IPC %v, want %v", i, k, got[i][k], want.IPC[k])
			}
		}
	}
}
