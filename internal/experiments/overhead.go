package experiments

import (
	"context"
	"fmt"
	"sort"

	"mcbench/internal/cache"
)

func init() {
	Register(Spec{
		Name:     "overhead",
		Synopsis: "Section VII-A simulation-overhead example",
		Group:    GroupPaper,
		Requests: func(l *Lab, p Params) []Request { return l.OverheadRequests(p.cores()) },
		Run: func(ctx context.Context, l *Lab, p Params) (*Table, error) {
			return l.overheadTable(ctx, p.cores())
		},
	})
}

// OverheadResult is the Section VII-A worked example computed from this
// reproduction's own measurements: the detailed-simulation cost of
// reaching a given confidence that DIP > LRU (4 cores, IPCT) under
// balanced random sampling vs workload stratification.
type OverheadResult struct {
	Cores int

	DetMIPS   float64 // measured detailed-simulator speed
	BadcoMIPS float64 // measured BADCO speed

	// Random/balanced sampling: workloads needed for each confidence
	// target, with the detailed-simulation CPU time they imply (two
	// policies simulated per workload).
	Random []OverheadLine

	// Workload stratification: sample size for its (near-certain)
	// confidence, plus the BADCO preparation overhead.
	StrataWorkloads  int
	StrataConfidence float64
	StrataDetHours   float64
	ModelBuildHours  float64 // 22 models, 2 calibration runs each
	BadcoSweepHours  float64 // population sweep for 2 policies
}

// OverheadLine is one (confidence target, sample size, cpu-hours) row.
type OverheadLine struct {
	Target   float64
	W        int
	DetHours float64
}

// Overhead reproduces the Section VII-A example using measured speeds and
// measured confidence curves. cores should be 4 to match the paper.
func (l *Lab) Overhead(ctx context.Context, cores int) (OverheadResult, error) {
	// Measured speeds (MIPS) from the Table III machinery.
	var det, badco float64
	rows, err := l.TableIII(ctx, 2)
	if err != nil {
		return OverheadResult{}, err
	}
	for _, r := range rows {
		if r.Cores == cores {
			det, badco = r.DetMIPS, r.BadcoMIPS
		}
	}

	points, err := l.Fig6(ctx, cores)
	if err != nil {
		return OverheadResult{}, err
	}
	best := func(method string) (conf map[int]float64) {
		conf = map[int]float64{}
		for _, p := range points {
			// DIP > LRU pair only.
			if p.Pair[0] == cache.LRU && p.Pair[1] == cache.DIP && p.Method == method {
				conf[p.SampleSize] = p.Confidence
			}
		}
		return conf
	}
	// Balanced random when available, else simple random (subsampled
	// populations).
	randomConf := best("bal-random")
	if len(randomConf) == 0 {
		randomConf = best("random")
	}
	strataConf := best("workload-strata")

	quota := float64(l.cfg.TraceLen)
	instrPerWorkload := quota * float64(cores)
	detHoursPer := instrPerWorkload / (det * 1e6) / 3600
	badcoHoursPer := instrPerWorkload / (badco * 1e6) / 3600

	res := OverheadResult{Cores: cores, DetMIPS: det, BadcoMIPS: badco}

	smallestW := func(conf map[int]float64, target float64) int {
		var sizes []int
		for w := range conf {
			sizes = append(sizes, w)
		}
		sort.Ints(sizes)
		for _, w := range sizes {
			if conf[w] >= target {
				return w
			}
		}
		return -1
	}
	for _, target := range []float64{0.75, 0.90, 0.99} {
		w := smallestW(randomConf, target)
		line := OverheadLine{Target: target, W: w}
		if w > 0 {
			line.DetHours = 2 * float64(w) * detHoursPer
		}
		res.Random = append(res.Random, line)
	}

	// Workload stratification: the paper uses 30 workloads; take the
	// smallest measured size reaching 0.99 (or the smallest size if none
	// does).
	w := smallestW(strataConf, 0.99)
	if w < 0 {
		w = Fig6SampleSizes[0]
	}
	res.StrataWorkloads = w
	res.StrataConfidence = strataConf[w]
	res.StrataDetHours = 2 * float64(w) * detHoursPer

	// Preparation: 22 models x 2 calibration runs of one trace each on
	// the detailed simulator, plus a BADCO sweep of the population for
	// two policies.
	res.ModelBuildHours = 22 * 2 * (quota / (det * 1e6)) / 3600
	res.BadcoSweepHours = 2 * float64(l.Population(cores).Size()) * badcoHoursPer
	return res, nil
}

// OverheadRequests declares the overhead example's inputs: the Table III
// speed measurement's prerequisites plus everything Figure 6 reads.
func (l *Lab) OverheadRequests(cores int) []Request {
	return append(l.TableIIIRequests(), l.Fig6Requests(cores)...)
}

// overheadTable renders the Section VII-A example.
func (l *Lab) overheadTable(ctx context.Context, cores int) (*Table, error) {
	r, err := l.Overhead(ctx, cores)
	if err != nil {
		return nil, err
	}
	t := &Table{
		Title:   fmt.Sprintf("Section VII-A: simulation overhead example (DIP vs LRU, IPCT, %d cores)", cores),
		Columns: []string{"approach", "confidence", "workloads", "detailed cpu-h", "prep cpu-h"},
		Notes: []string{
			fmt.Sprintf("measured speeds: detailed %.3f MIPS, BADCO %.3f MIPS", r.DetMIPS, r.BadcoMIPS),
			"paper: strat. reaches 99% with 30 workloads for ~74% extra simulation, vs +300% for",
			"random sampling to go from 75% to 90% — stratification buys more confidence per cpu-hour",
		},
	}
	for _, line := range r.Random {
		w := "n/a"
		hours := "n/a"
		if line.W > 0 {
			w = fmt.Sprint(line.W)
			hours = f4(line.DetHours)
		}
		t.AddRow("random/balanced", f2(line.Target), w, hours, "0")
	}
	t.AddRow("workload-strata", f2(r.StrataConfidence), fmt.Sprint(r.StrataWorkloads),
		f4(r.StrataDetHours), f4(r.ModelBuildHours+r.BadcoSweepHours))
	return t, nil
}
