package experiments

import (
	"context"
	"fmt"

	"mcbench/internal/cache"
	"mcbench/internal/stats"
)

func init() {
	Register(Spec{
		Name:     "fig2",
		Synopsis: "detailed vs BADCO CPI/speedup accuracy",
		Group:    GroupPaper,
		Requests: func(l *Lab, p Params) []Request { return l.Fig2Requests(p.CoreCounts) },
		Run: func(ctx context.Context, l *Lab, p Params) (*Table, error) {
			return l.fig2Table(ctx, p.CoreCounts)
		},
		Chart: func(ctx context.Context, l *Lab, p Params) (string, error) {
			return l.Fig2Chart(ctx, p.CoreCounts)
		},
	})
}

// fig2CoreCounts resolves the figure's core-count sweep (paper default:
// 2, 4 and 8 cores).
func fig2CoreCounts(coreCounts []int) []int {
	if len(coreCounts) == 0 {
		return []int{2, 4, 8}
	}
	return coreCounts
}

// Fig2Point is one (BADCO CPI, detailed CPI) pair of the scatter plot.
type Fig2Point struct {
	Cores     int
	Workload  int // index into DetSample(cores)
	Core      int
	Policy    cache.PolicyName
	BadcoCPI  float64
	DetailCPI float64
}

// Fig2Result aggregates the scatter per core count.
type Fig2Result struct {
	Cores          int
	AvgCPIErr      float64 // mean |CPI_badco - CPI_det| / CPI_det
	MaxCPIErr      float64
	AvgSpeedupErr  float64 // same over per-thread speedups vs the LRU baseline
	Points         []Fig2Point
	WorkloadsUsed  int
	PoliciesUsed   int
	ThreadsPerLoad int
}

// Fig2 reproduces Figure 2: the detailed-vs-BADCO CPI comparison over the
// detailed-simulator workload sample under all five policies, and the
// derived CPI and speedup error statistics the paper quotes (4.59 %,
// 3.98 %, 4.09 % average CPI error and < 22 % max for 2/4/8 cores;
// speedup errors 0.66 %, 0.61 %, 1.43 %).
func (l *Lab) Fig2(ctx context.Context, coreCounts []int) ([]Fig2Result, error) {
	coreCounts = fig2CoreCounts(coreCounts)
	pols := Policies()
	var out []Fig2Result
	for _, cores := range coreCounts {
		sample := l.DetSample(cores)
		res := Fig2Result{Cores: cores, WorkloadsUsed: len(sample), PoliciesUsed: len(pols), ThreadsPerLoad: cores}

		var badcoCPI, detCPI []float64
		// Per-policy per-thread CPIs.
		perPolicyBadco := map[cache.PolicyName][][]float64{}
		perPolicyDet := map[cache.PolicyName][][]float64{}
		for _, pol := range pols {
			det, err := l.DetailedIPC(ctx, cores, pol)
			if err != nil {
				return nil, err
			}
			badcoAll, err := l.BadcoIPC(ctx, cores, pol)
			if err != nil {
				return nil, err
			}
			badco := make([][]float64, len(sample))
			for i, wi := range sample {
				badco[i] = badcoAll[wi]
			}
			perPolicyBadco[pol] = badco
			perPolicyDet[pol] = det
			for i := range det {
				for k := range det[i] {
					b := 1 / badco[i][k]
					d := 1 / det[i][k]
					badcoCPI = append(badcoCPI, b)
					detCPI = append(detCPI, d)
					res.Points = append(res.Points, Fig2Point{
						Cores: cores, Workload: i, Core: k, Policy: pol,
						BadcoCPI: b, DetailCPI: d,
					})
				}
			}
		}
		res.AvgCPIErr = stats.MeanAbsError(badcoCPI, detCPI)
		res.MaxCPIErr = stats.MaxAbsError(badcoCPI, detCPI)

		// Speedups vs the LRU baseline, per thread.
		var badcoSp, detSp []float64
		for _, pol := range pols {
			if pol == cache.LRU {
				continue
			}
			bBase, dBase := perPolicyBadco[cache.LRU], perPolicyDet[cache.LRU]
			b, d := perPolicyBadco[pol], perPolicyDet[pol]
			for i := range d {
				for k := range d[i] {
					badcoSp = append(badcoSp, b[i][k]/bBase[i][k])
					detSp = append(detSp, d[i][k]/dBase[i][k])
				}
			}
		}
		res.AvgSpeedupErr = stats.MeanAbsError(badcoSp, detSp)
		out = append(out, res)
	}
	return out, nil
}

// Fig2Requests declares the tables Fig2 reads: BADCO and detailed tables
// for every case-study policy at each core count.
func (l *Lab) Fig2Requests(coreCounts []int) []Request {
	var plan []Request
	for _, cores := range fig2CoreCounts(coreCounts) {
		plan = append(plan, badcoSet(cores, Policies())...)
		plan = append(plan, detailedSet(cores, Policies())...)
	}
	return plan
}

// fig2Table renders the Figure 2 error summary.
func (l *Lab) fig2Table(ctx context.Context, coreCounts []int) (*Table, error) {
	t := &Table{
		Title:   "Figure 2: detailed (Zesto-role) vs BADCO CPI and speedup accuracy",
		Columns: []string{"cores", "avg CPI err %", "max CPI err %", "avg speedup err %", "points"},
		Notes: []string{
			"paper: avg CPI err 4.59/3.98/4.09 % for 2/4/8 cores, max < 22 %",
			"paper: avg speedup err 0.66/0.61/1.43 % — speedups predicted better than raw CPIs",
		},
	}
	results, err := l.Fig2(ctx, coreCounts)
	if err != nil {
		return nil, err
	}
	for _, r := range results {
		t.AddRow(fmt.Sprint(r.Cores), f2(r.AvgCPIErr*100), f2(r.MaxCPIErr*100),
			f2(r.AvgSpeedupErr*100), fmt.Sprint(len(r.Points)))
	}
	return t, nil
}
