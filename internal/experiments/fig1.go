package experiments

import (
	"context"

	"mcbench/internal/stats"
)

func init() {
	Register(Spec{
		Name:     "fig1",
		Synopsis: "confidence vs (1/cv)sqrt(W/2), the analytic model curve",
		Group:    GroupPaper,
		Run: func(ctx context.Context, l *Lab, p Params) (*Table, error) {
			return Fig1(), nil
		},
		Chart: func(ctx context.Context, l *Lab, p Params) (string, error) {
			return Fig1Chart(), nil
		},
	})
}

// Fig1 reproduces Figure 1: the analytic degree of confidence as a
// function of the reduced variable x = (1/cv)·sqrt(W/2) (equation 5).
func Fig1() *Table {
	xs, ys := stats.ConfidenceCurve(-2, 2, 16)
	t := &Table{
		Title:   "Figure 1: confidence vs (1/cv)*sqrt(W/2)  [equation 5]",
		Columns: []string{"x", "confidence"},
		Notes: []string{
			"paper: sigmoid through (0, 0.5), saturating at |x| ~ 2 (erf curve)",
		},
	}
	for i := range xs {
		t.AddRow(f2(xs[i]), f4(ys[i]))
	}
	return t
}
