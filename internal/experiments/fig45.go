package experiments

import (
	"context"
	"fmt"

	"mcbench/internal/cache"
	"mcbench/internal/metrics"
	"mcbench/internal/stats"
)

func init() {
	Register(Spec{
		Name:     "fig4",
		Synopsis: "1/cv per policy pair x metric: samples vs population (4 cores)",
		Group:    GroupPaper,
		Requests: func(l *Lab, p Params) []Request { return l.Fig4Requests(p.cores()) },
		Run: func(ctx context.Context, l *Lab, p Params) (*Table, error) {
			return l.fig4Table(ctx, p.cores())
		},
	})
	Register(Spec{
		Name:     "fig5",
		Synopsis: "1/cv on the full population per metric",
		Group:    GroupPaper,
		Requests: func(l *Lab, p Params) []Request { return l.Fig5Requests(p.cores()) },
		Run: func(ctx context.Context, l *Lab, p Params) (*Table, error) {
			return l.fig5Table(ctx, p.cores())
		},
		Chart: func(ctx context.Context, l *Lab, p Params) (string, error) {
			return l.Fig5Chart(ctx, p.cores())
		},
	})
}

// Fig4Row is one policy pair's 1/cv triple for one metric.
type Fig4Row struct {
	Pair     [2]cache.PolicyName
	Metric   metrics.Metric
	DetS     float64 // detailed simulator, workload sample
	BadcoS   float64 // BADCO, same sample
	BadcoPop float64 // BADCO, full population
}

// Fig4 reproduces Figure 4 (4 cores): for each of the 10 policy pairs and
// each metric, the inverse coefficient of variation 1/cv of d(w) measured
// three ways — with the detailed simulator on the workload sample, with
// BADCO on the same sample, and with BADCO on the full population. The
// sign says which policy wins; |1/cv| says how decisively.
func (l *Lab) Fig4(ctx context.Context, cores int) ([]Fig4Row, error) {
	sample := l.DetSample(cores)
	var rows []Fig4Row
	for _, m := range metrics.All() {
		for _, pair := range PolicyPairs() {
			det, err := l.DetailedDiffs(ctx, cores, m, pair[0], pair[1])
			if err != nil {
				return nil, err
			}
			badcoS, err := l.BadcoDiffsAt(ctx, cores, m, pair[0], pair[1], sample)
			if err != nil {
				return nil, err
			}
			badcoPop, err := l.Diffs(ctx, cores, m, pair[0], pair[1])
			if err != nil {
				return nil, err
			}
			rows = append(rows, Fig4Row{
				Pair:     pair,
				Metric:   m,
				DetS:     stats.InvCoefVar(det),
				BadcoS:   stats.InvCoefVar(badcoS),
				BadcoPop: stats.InvCoefVar(badcoPop),
			})
		}
	}
	return rows, nil
}

// Fig4Requests declares the tables Fig4 reads: every policy with both
// simulators plus the reference IPCs.
func (l *Lab) Fig4Requests(cores int) []Request {
	plan := badcoSet(cores, Policies())
	plan = append(plan, detailedSet(cores, Policies())...)
	return append(plan, Request{Sim: SimRef, Cores: cores})
}

// fig4Table renders Figure 4.
func (l *Lab) fig4Table(ctx context.Context, cores int) (*Table, error) {
	t := &Table{
		Title:   fmt.Sprintf("Figure 4: 1/cv per policy pair and metric (%d cores) — detailed sample vs BADCO sample vs BADCO population", cores),
		Columns: []string{"metric", "pair (X>Y)", "1/cv det-sample", "1/cv BADCO-sample", "1/cv BADCO-pop"},
		Notes: []string{
			"positive: Y wins; negative: X wins (d = tY - tX)",
			"paper: LRU >> FIFO/RND (|1/cv| ~ 1); LRU vs DIP nearly tied (|1/cv| << 1); sample and population estimates agree in sign",
		},
	}
	rows, err := l.Fig4(ctx, cores)
	if err != nil {
		return nil, err
	}
	for _, r := range rows {
		t.AddRow(r.Metric.String(), fmt.Sprintf("%s>%s", r.Pair[0], r.Pair[1]),
			f3(r.DetS), f3(r.BadcoS), f3(r.BadcoPop))
	}
	return t, nil
}

// Fig5Row is one policy pair's population 1/cv per metric.
type Fig5Row struct {
	Pair [2]cache.PolicyName
	Inv  map[metrics.Metric]float64
}

// Fig5 reproduces Figure 5: 1/cv on the full population (4 cores) for the
// three throughput metrics.
func (l *Lab) Fig5(ctx context.Context, cores int) ([]Fig5Row, error) {
	var rows []Fig5Row
	for _, pair := range PolicyPairs() {
		inv := make(map[metrics.Metric]float64, 3)
		for _, m := range metrics.All() {
			d, err := l.Diffs(ctx, cores, m, pair[0], pair[1])
			if err != nil {
				return nil, err
			}
			inv[m] = stats.InvCoefVar(d)
		}
		rows = append(rows, Fig5Row{Pair: pair, Inv: inv})
	}
	return rows, nil
}

// Fig5Requests declares the tables Fig5 reads: every policy's BADCO
// table plus the reference IPCs.
func (l *Lab) Fig5Requests(cores int) []Request {
	return append(badcoSet(cores, Policies()), Request{Sim: SimRef, Cores: cores})
}

// fig5Table renders Figure 5.
func (l *Lab) fig5Table(ctx context.Context, cores int) (*Table, error) {
	t := &Table{
		Title:   fmt.Sprintf("Figure 5: 1/cv on the full population (%d cores), per metric", cores),
		Columns: []string{"pair (X>Y)", "IPCT", "WSU", "HSU", "same sign"},
		Notes: []string{
			"paper: all 3 metrics rank policies identically (signs agree) but |1/cv| differs across metrics,",
			"so different metrics may require different sample sizes (e.g. RND vs FIFO: ~0.4 IPCT vs ~0.5 HSU)",
		},
	}
	rows, err := l.Fig5(ctx, cores)
	if err != nil {
		return nil, err
	}
	for _, r := range rows {
		same := "yes"
		if !sameSign(r.Inv[metrics.IPCT], r.Inv[metrics.WSU], r.Inv[metrics.HSU]) {
			same = "NO"
		}
		t.AddRow(fmt.Sprintf("%s>%s", r.Pair[0], r.Pair[1]),
			f3(r.Inv[metrics.IPCT]), f3(r.Inv[metrics.WSU]), f3(r.Inv[metrics.HSU]), same)
	}
	return t, nil
}

func sameSign(vs ...float64) bool {
	pos, neg := 0, 0
	for _, v := range vs {
		if v > 0 {
			pos++
		}
		if v < 0 {
			neg++
		}
	}
	return pos == len(vs) || neg == len(vs)
}
