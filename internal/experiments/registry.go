package experiments

// The experiment registry. Every figure, table and extension registers
// itself as an Experiment (via Register, from an init function next to
// its implementation), and all dispatch — cmd/mcbench's experiment
// names, campaign planning, the public mcbench package — goes through
// Lookup instead of hard-coded switches. The registry is the single
// source of truth for what the reproduction can compute.

import (
	"context"
	"fmt"
	"sort"
	"sync"
)

// Group classifies an experiment for usage listings.
type Group string

const (
	// GroupPaper marks reproductions of the paper's own figures and
	// tables.
	GroupPaper Group = "paper"
	// GroupExtension marks experiments beyond the paper.
	GroupExtension Group = "extension"
)

// Params carries the per-run knobs an experiment accepts. The zero value
// means "paper defaults".
type Params struct {
	// Cores is the core count for single-core-count experiments
	// (fig4/fig5/fig6/overhead and most extensions); 0 means 4, the
	// paper's main configuration.
	Cores int
	// CoreCounts overrides the core-count sweep of the multi-count
	// experiments (fig2, fig3, fig7); nil means their paper defaults.
	// Single-count experiments ignore it.
	CoreCounts []int
}

// cores resolves the single-count core parameter.
func (p Params) cores() int {
	if p.Cores > 0 {
		return p.Cores
	}
	return 4
}

// ParamsFor maps a bare cores argument onto Params the way every
// dispatcher (the public Lab, the serve subsystem) must: 0 means each
// experiment's paper default, a positive count pins both the
// single-count experiments and the core-count sweeps of fig2, fig3 and
// fig7. Centralised so two entry points cannot drift and key the shared
// memo/cache with different parameters.
func ParamsFor(cores int) Params {
	p := Params{Cores: cores}
	if cores > 0 {
		p.CoreCounts = []int{cores}
	}
	return p
}

// Experiment is one reproducible unit of the evaluation: a named
// computation over a Lab that yields a printable Table. Requests
// declares the expensive memoized Lab products the run will read, so a
// campaign can precompute many experiments' products concurrently
// (Lab.Warm) before running them.
type Experiment interface {
	Name() string
	// Synopsis is the one-line description shown by usage listings and
	// `mcbench list`.
	Synopsis() string
	Group() Group
	Requests(l *Lab, p Params) []Request
	Run(ctx context.Context, l *Lab, p Params) (*Table, error)
}

// Spec is a declarative Experiment implementation: Register wraps it so
// experiments are defined as data next to their computation. Run is
// required; Requests and Chart may be nil.
type Spec struct {
	Name     string
	Synopsis string
	Group    Group
	Requests func(l *Lab, p Params) []Request
	Run      func(ctx context.Context, l *Lab, p Params) (*Table, error)
	// Chart, when non-nil, renders the experiment's text chart (the
	// -plot view). Retrieved via the package-level Chart function.
	Chart func(ctx context.Context, l *Lab, p Params) (string, error)
}

// spec adapts a Spec to the Experiment interface.
type spec struct{ s Spec }

func (e spec) Name() string     { return e.s.Name }
func (e spec) Synopsis() string { return e.s.Synopsis }
func (e spec) Group() Group     { return e.s.Group }

func (e spec) Requests(l *Lab, p Params) []Request {
	if e.s.Requests == nil {
		return nil
	}
	return e.s.Requests(l, p)
}

func (e spec) Run(ctx context.Context, l *Lab, p Params) (*Table, error) {
	return e.s.Run(ctx, l, p)
}

var registry = struct {
	mu sync.RWMutex
	m  map[string]Experiment
}{m: map[string]Experiment{}}

// Register adds an experiment to the registry. It panics on a duplicate
// or invalid registration (registration happens at init time; a broken
// registry is a programming error, not a runtime condition).
func Register(s Spec) {
	if s.Name == "" || s.Run == nil {
		panic("experiments: Register needs a name and a Run function")
	}
	registry.mu.Lock()
	defer registry.mu.Unlock()
	if _, dup := registry.m[s.Name]; dup {
		panic(fmt.Sprintf("experiments: duplicate experiment %q", s.Name))
	}
	registry.m[s.Name] = spec{s}
}

// Lookup returns the named experiment.
func Lookup(name string) (Experiment, bool) {
	registry.mu.RLock()
	defer registry.mu.RUnlock()
	e, ok := registry.m[name]
	return e, ok
}

// Names returns every registered experiment name, sorted.
func Names() []string {
	registry.mu.RLock()
	defer registry.mu.RUnlock()
	names := make([]string, 0, len(registry.m))
	for n := range registry.m {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// ByGroup returns the registered experiments of one group in their
// canonical run order (AllExperiments / ExtensionExperiments), appending
// any stragglers not in the curated lists in sorted order so nothing is
// ever hidden.
func ByGroup(g Group) []Experiment {
	var order []string
	switch g {
	case GroupPaper:
		order = AllExperiments()
	case GroupExtension:
		order = ExtensionExperiments()
	}
	seen := map[string]bool{}
	var out []Experiment
	for _, n := range order {
		if e, ok := Lookup(n); ok && e.Group() == g {
			out = append(out, e)
			seen[n] = true
		}
	}
	for _, n := range Names() {
		if e, ok := Lookup(n); ok && e.Group() == g && !seen[n] {
			out = append(out, e)
		}
	}
	return out
}

// HasChart reports whether the experiment declares a text-chart form.
func HasChart(e Experiment) bool {
	sp, isSpec := e.(spec)
	return isSpec && sp.s.Chart != nil
}

// Chart renders the experiment's text chart if it declares one; ok
// reports whether it does.
func Chart(ctx context.Context, e Experiment, l *Lab, p Params) (chart string, ok bool, err error) {
	sp, isSpec := e.(spec)
	if !isSpec || sp.s.Chart == nil {
		return "", false, nil
	}
	chart, err = sp.s.Chart(ctx, l, p)
	return chart, true, err
}

// Suggest returns the candidate closest to the (unknown) input under
// edit distance — drawn from the registered experiment names plus any
// extra candidates (CLI builtins like "all", "list", "sim") — or ""
// when nothing is plausibly close. It powers the CLI's "did you mean"
// hint.
func Suggest(name string, extra ...string) string {
	best, bestDist := "", len(name)/2+2
	for _, n := range append(Names(), extra...) {
		if d := editDistance(name, n); d < bestDist {
			best, bestDist = n, d
		}
	}
	return best
}

// editDistance is the Levenshtein distance between two short names.
func editDistance(a, b string) int {
	prev := make([]int, len(b)+1)
	cur := make([]int, len(b)+1)
	for j := range prev {
		prev[j] = j
	}
	for i := 1; i <= len(a); i++ {
		cur[0] = i
		for j := 1; j <= len(b); j++ {
			cost := 1
			if a[i-1] == b[j-1] {
				cost = 0
			}
			cur[j] = min3(prev[j]+1, cur[j-1]+1, prev[j-1]+cost)
		}
		prev, cur = cur, prev
	}
	return prev[len(b)]
}

func min3(a, b, c int) int {
	if b < a {
		a = b
	}
	if c < a {
		a = c
	}
	return a
}

// AllExperiments lists the paper experiments "all" expands to, in run
// order.
func AllExperiments() []string {
	return []string{
		"config", "fig1", "table4", "table3", "fig2", "fig3",
		"fig4", "fig5", "fig6", "fig7", "overhead",
	}
}

// ExtensionExperiments lists the beyond-the-paper experiments in their
// canonical usage order.
func ExtensionExperiments() []string {
	return []string{
		"ablation-strata", "ablation-classes", "ablation-metrics",
		"speedup", "guideline", "methods", "cophase", "predictors",
		"normality", "profiles", "policies", "population-scaling",
		"sampling-accuracy",
	}
}
