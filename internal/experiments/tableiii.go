package experiments

import (
	"context"
	"fmt"
	"time"

	"mcbench/internal/badco"
	"mcbench/internal/cache"
	"mcbench/internal/multicore"
)

func init() {
	Register(Spec{
		Name:     "table3",
		Synopsis: "simulation speed (MIPS) and BADCO speedup",
		Group:    GroupPaper,
		Requests: func(l *Lab, p Params) []Request { return l.TableIIIRequests() },
		Run: func(ctx context.Context, l *Lab, p Params) (*Table, error) {
			return l.tableIIITable(ctx, 3)
		},
	})
}

// TableIIIRow reports simulation speed for one core count.
type TableIIIRow struct {
	Cores     int
	DetMIPS   float64 // detailed-simulator speed, million instructions/s
	BadcoMIPS float64
	Speedup   float64
}

// TableIII reproduces Table III: the simulation speed of the detailed
// model vs BADCO in MIPS, and the speedup, for 1/2/4/8 cores. Workloads
// are drawn from the detailed sample of each core count (a fixed small
// number, timed sequentially so the measurement is not confounded by the
// sweep parallelism).
func (l *Lab) TableIII(ctx context.Context, workloadsPerPoint int) ([]TableIIIRow, error) {
	if workloadsPerPoint <= 0 {
		workloadsPerPoint = 3
	}
	prov := l.Provider()
	models, err := l.Models(ctx)
	if err != nil {
		return nil, err
	}
	var rows []TableIIIRow
	for _, cores := range []int{1, 2, 4, 8} {
		var ws []multicore.Workload
		if cores == 1 {
			// Single-benchmark "workloads": a spread of intensities
			// (positions spread across the source for non-suite labs).
			for _, n := range l.spreadNames(workloadsPerPoint) {
				ws = append(ws, multicore.Workload{n})
			}
		} else {
			pop := l.Population(cores)
			for _, wi := range l.DetSample(cores) {
				ws = append(ws, l.toMulticore(pop.Workloads[wi]))
				if len(ws) == workloadsPerPoint {
					break
				}
			}
		}

		quota := uint64(l.cfg.TraceLen)
		instructions := float64(quota) * float64(cores) * float64(len(ws))

		// Resolve every trace before starting the clock, so lazy source
		// builds never pollute the MIPS measurement.
		for _, w := range ws {
			for _, n := range w {
				if _, err := prov.Trace(ctx, n); err != nil {
					return nil, err
				}
			}
		}

		start := time.Now()
		for _, w := range ws {
			if _, err := multicore.Detailed(ctx, w, prov, cache.LRU, quota); err != nil {
				return nil, err
			}
		}
		detDur := time.Since(start)

		start = time.Now()
		for _, w := range ws {
			if _, err := multicore.Approximate(ctx, w, models, cache.LRU, quota); err != nil {
				return nil, err
			}
		}
		badcoDur := time.Since(start)

		det := instructions / detDur.Seconds() / 1e6
		bad := instructions / badcoDur.Seconds() / 1e6
		rows = append(rows, TableIIIRow{
			Cores:     cores,
			DetMIPS:   det,
			BadcoMIPS: bad,
			Speedup:   bad / det,
		})
	}
	return rows, nil
}

// TableIIIRequests declares Table III's prerequisites: it times
// individual simulations itself, so it only needs the BADCO models (and
// the traces they imply) built beforehand, keeping the model-building
// cost out of the timed region.
func (l *Lab) TableIIIRequests() []Request {
	return []Request{{Sim: SimModels}}
}

// tableIIITable renders Table III.
func (l *Lab) tableIIITable(ctx context.Context, workloadsPerPoint int) (*Table, error) {
	t := &Table{
		Title:   "Table III: simulation speed (MIPS) and BADCO speedup",
		Columns: []string{"cores", "MIPS detailed", "MIPS BADCO", "speedup"},
		Notes: []string{
			"paper: Zesto 0.170/0.096/0.049/0.017 MIPS; BADCO 2.52/2.41/1.89/1.19; speedup 14.8/25.2/38.9/68.1",
			"absolute MIPS differ (different host and simulators); the shape to check is BADCO >> detailed",
		},
	}
	rows, err := l.TableIII(ctx, workloadsPerPoint)
	if err != nil {
		return nil, err
	}
	for _, r := range rows {
		t.AddRow(fmt.Sprint(r.Cores), f3(r.DetMIPS), f3(r.BadcoMIPS), f2(r.Speedup))
	}
	return t, nil
}

// ModelBuildCost measures the one-off cost of building a BADCO model for
// one benchmark (two detailed calibration runs), used by the Section
// VII-A overhead example.
func (l *Lab) ModelBuildCost(ctx context.Context, name string) (time.Duration, error) {
	// Resolve the trace before starting the clock: the measured cost is
	// the two calibration runs, not lazy trace generation.
	prov := l.Provider()
	tr, err := prov.Trace(ctx, name)
	if err != nil {
		return 0, err
	}
	defer prov.Release(name)
	start := time.Now()
	if _, err := badco.Build(tr, badco.DefaultBuildConfig()); err != nil {
		return 0, err
	}
	return time.Since(start), nil
}

// spreadNames picks up to k benchmarks spread evenly across the source
// order, giving a mix of intensity classes for the timing workloads on
// any source size. The picks are centred in their strides (positions
// (2i+1)·B/2k), so even small k reaches into every contiguous class
// band rather than clustering at the front of the order.
func (l *Lab) spreadNames(k int) []string {
	names := l.Names()
	if k > len(names) {
		k = len(names)
	}
	out := make([]string, k)
	for i := range out {
		out[i] = names[(2*i+1)*len(names)/(2*k)]
	}
	return out
}
