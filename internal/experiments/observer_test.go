package experiments

import (
	"sync"
	"testing"

	"mcbench/internal/cache"
)

// eventLog is a concurrency-safe ProductEvent collector.
type eventLog struct {
	mu  sync.Mutex
	evs []ProductEvent
}

func (e *eventLog) add(ev ProductEvent) {
	e.mu.Lock()
	e.evs = append(e.evs, ev)
	e.mu.Unlock()
}

func (e *eventLog) filter(sim, phase string) []ProductEvent {
	e.mu.Lock()
	defer e.mu.Unlock()
	var out []ProductEvent
	for _, ev := range e.evs {
		if ev.Sim == sim && ev.Phase == phase {
			out = append(out, ev)
		}
	}
	return out
}

// TestObserverSeesSweepLifecycle pins the progress-hook contract the
// serve subsystem streams to clients: a computed product emits start then
// done (with rows), a memo hit emits nothing, and a persistent-cache hit
// in a fresh lab emits a single done with Cached set.
func TestObserverSeesSweepLifecycle(t *testing.T) {
	if testing.Short() {
		t.Skip("population sweep")
	}
	dir := t.TempDir()
	log := &eventLog{}
	cfg := QuickConfig()
	cfg.TraceLen = 2000
	cfg.CacheDir = dir
	cfg.Observer = log.add
	l := NewLab(cfg)

	tab := must(l.BadcoIPC(tctx, 2, cache.LRU))
	starts := log.filter("badco", "start")
	dones := log.filter("badco", "done")
	if len(starts) != 1 || len(dones) != 1 {
		t.Fatalf("badco events: %d starts, %d dones, want 1/1", len(starts), len(dones))
	}
	d := dones[0]
	if d.Cached || d.Err != nil || d.Rows != len(tab) || d.Cores != 2 || d.Policy != string(cache.LRU) {
		t.Errorf("done event %+v does not describe the sweep (rows %d)", d, len(tab))
	}
	if len(log.filter("models", "done")) != 1 {
		t.Errorf("model build not observed")
	}

	// Memo hit: no new events.
	must(l.BadcoIPC(tctx, 2, cache.LRU))
	if got := log.filter("badco", "done"); len(got) != 1 {
		t.Fatalf("memo hit emitted events: %d dones", len(got))
	}

	// A fresh lab over the same cache dir serves the table from disk and
	// says so.
	log2 := &eventLog{}
	cfg2 := cfg
	cfg2.Observer = log2.add
	l2 := NewLab(cfg2)
	must(l2.BadcoIPC(tctx, 2, cache.LRU))
	if starts := log2.filter("badco", "start"); len(starts) != 0 {
		t.Errorf("cache hit emitted a start event")
	}
	dones2 := log2.filter("badco", "done")
	if len(dones2) != 1 || !dones2[0].Cached || dones2[0].Rows != len(tab) {
		t.Fatalf("cache hit events %+v, want one cached done", dones2)
	}
	if b, _ := l2.SweepCounts(); b != 0 {
		t.Errorf("cache-served lab ran %d sweeps", b)
	}
	if b, _ := l.SweepCounts(); b != 1 {
		t.Errorf("SweepCounts = %d, want 1", b)
	}
}
