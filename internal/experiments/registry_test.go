package experiments

import (
	"testing"
)

// TestRegistryCatalogueComplete pins the registry against the curated
// run-order lists: every curated name is registered with the right
// group, every registered name is curated (nothing hides from `mcbench
// list`), and the catalogue has the full 23 experiments.
func TestRegistryCatalogueComplete(t *testing.T) {
	curated := map[string]Group{}
	for _, n := range AllExperiments() {
		curated[n] = GroupPaper
	}
	for _, n := range ExtensionExperiments() {
		curated[n] = GroupExtension
	}
	for n, g := range curated {
		e, ok := Lookup(n)
		if !ok {
			t.Errorf("curated experiment %q not registered", n)
			continue
		}
		if e.Group() != g {
			t.Errorf("%s: group %q, want %q", n, e.Group(), g)
		}
		if e.Name() != n {
			t.Errorf("%s: Name() = %q", n, e.Name())
		}
		if e.Synopsis() == "" {
			t.Errorf("%s: empty synopsis", n)
		}
	}
	names := Names()
	if len(names) != len(curated) {
		t.Errorf("registry has %d experiments, curated lists name %d", len(names), len(curated))
	}
	if len(names) < 20 {
		t.Errorf("registry shrank to %d experiments, want >= 20", len(names))
	}
	for _, n := range names {
		if _, ok := curated[n]; !ok {
			t.Errorf("registered experiment %q missing from the curated run-order lists", n)
		}
	}
}

func TestRegistryRejectsBadSpecs(t *testing.T) {
	for _, s := range []Spec{
		{},                              // no name, no run
		{Name: "x"},                     // no run
		{Name: "fig1", Run: spec{}.Run}, // duplicate
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("Register(%+v) did not panic", s)
				}
			}()
			Register(s)
		}()
	}
}

func TestSuggest(t *testing.T) {
	cases := map[string]string{
		"fig12":    "fig1",
		"tabel3":   "table3",
		"guidline": "guideline",
		"method":   "methods",
		"zzzzz":    "",
	}
	for in, want := range cases {
		if got := Suggest(in); got != want {
			t.Errorf("Suggest(%q) = %q, want %q", in, got, want)
		}
	}
	// Extra candidates participate.
	if got := Suggest("al", "all", "list", "sim"); got != "all" {
		t.Errorf("Suggest(al, builtins) = %q, want all", got)
	}
}

func TestByGroupOrder(t *testing.T) {
	paper := ByGroup(GroupPaper)
	if len(paper) != len(AllExperiments()) {
		t.Fatalf("%d paper experiments, want %d", len(paper), len(AllExperiments()))
	}
	for i, n := range AllExperiments() {
		if paper[i].Name() != n {
			t.Errorf("paper[%d] = %s, want %s", i, paper[i].Name(), n)
		}
	}
	ext := ByGroup(GroupExtension)
	if len(ext) != len(ExtensionExperiments()) {
		t.Fatalf("%d extensions, want %d", len(ext), len(ExtensionExperiments()))
	}
}

// TestChartsDeclared pins which experiments expose the -plot view.
func TestChartsDeclared(t *testing.T) {
	want := map[string]bool{
		"fig1": true, "fig2": true, "fig3": true, "fig5": true, "fig6": true,
	}
	for _, n := range Names() {
		e, _ := Lookup(n)
		if got := HasChart(e); got != want[n] {
			t.Errorf("%s: chart declared = %v, want %v", n, got, want[n])
		}
	}
}
