package experiments

import (
	"sync"
	"testing"

	"mcbench/internal/cache"
)

// tinyLab returns a lab small enough that a population sweep takes well
// under a second; single-flight tests run their own lab so the shared
// test lab's memoization cannot mask duplicated work.
func tinyLab() *Lab {
	cfg := QuickConfig()
	cfg.TraceLen = 2000
	return NewLab(cfg)
}

// TestBadcoIPCSingleFlight is the regression test for the duplicate-work
// race the coarse-mutex Lab had: the lock was dropped before the sweep,
// so N concurrent callers for one (cores, policy) key each ran the full
// population sweep. With per-key single-flight memoization the sweep must
// run exactly once, and every caller must get the same table.
func TestBadcoIPCSingleFlight(t *testing.T) {
	if testing.Short() {
		t.Skip("population sweep")
	}
	l := tinyLab()
	const callers = 8
	tables := make([][][]float64, callers)
	start := make(chan struct{})
	var wg sync.WaitGroup
	for i := 0; i < callers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			<-start // maximise overlap: all callers ask at once
			tables[i] = must(l.BadcoIPC(tctx, 2, cache.LRU))
		}(i)
	}
	close(start)
	wg.Wait()
	if got := l.badcoSweeps.Load(); got != 1 {
		t.Fatalf("%d sweeps for one key under %d concurrent callers, want exactly 1", got, callers)
	}
	for i := 1; i < callers; i++ {
		if len(tables[i]) == 0 || &tables[i][0] != &tables[0][0] {
			t.Fatal("concurrent callers received different tables")
		}
	}
}

// TestDetailedIPCSingleFlight is the same guarantee for the detailed
// tables.
func TestDetailedIPCSingleFlight(t *testing.T) {
	if testing.Short() {
		t.Skip("population sweep")
	}
	l := tinyLab()
	const callers = 6
	var wg sync.WaitGroup
	start := make(chan struct{})
	for i := 0; i < callers; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			<-start
			must(l.DetailedIPC(tctx, 2, cache.FIFO))
		}()
	}
	close(start)
	wg.Wait()
	if got := l.detSweeps.Load(); got != 1 {
		t.Fatalf("%d detailed sweeps for one key, want exactly 1", got)
	}
}

// TestWarmDeduplicatesPlan checks the campaign runner end to end: a plan
// repeating the same requests warms each product once, a second Warm is
// free, and the warmed tables are the ones later reads return.
func TestWarmDeduplicatesPlan(t *testing.T) {
	if testing.Short() {
		t.Skip("population sweep")
	}
	l := tinyLab()
	plan := []Request{
		{Sim: SimBadco, Cores: 2, Policy: cache.LRU},
		{Sim: SimBadco, Cores: 2, Policy: cache.FIFO},
		{Sim: SimBadco, Cores: 2, Policy: cache.LRU}, // duplicate
		{Sim: SimRef, Cores: 2},
		{Sim: SimRef, Cores: 2, Policy: cache.LRU}, // same as above once normalized
	}
	if n := must(l.Warm(tctx, plan, 2)); n != 3 {
		t.Fatalf("Warm fulfilled %d unique requests, want 3", n)
	}
	if got := l.badcoSweeps.Load(); got != 2 {
		t.Fatalf("%d sweeps after Warm, want 2 (LRU, FIFO)", got)
	}
	warmed := must(l.BadcoIPC(tctx, 2, cache.LRU))
	if must(l.Warm(tctx, plan, 0)) != 3 {
		t.Fatal("re-warming changed the plan size")
	}
	if got := l.badcoSweeps.Load(); got != 2 {
		t.Fatalf("re-warming re-ran sweeps: %d", got)
	}
	if again := must(l.BadcoIPC(tctx, 2, cache.LRU)); &again[0] != &warmed[0] {
		t.Fatal("table rebuilt after warm")
	}
}

// TestRequestNormalize pins the deduplication identity of requests whose
// simulator ignores some fields.
func TestRequestNormalize(t *testing.T) {
	a := Request{Sim: SimMPKI, Cores: 4, Policy: cache.DIP}.normalize()
	if a != (Request{Sim: SimMPKI}) {
		t.Errorf("MPKI request kept irrelevant fields: %+v", a)
	}
	r := Request{Sim: SimRef, Cores: 4, Policy: cache.DIP}.normalize()
	if r != (Request{Sim: SimRef, Cores: 4}) {
		t.Errorf("ref request normalized wrong: %+v", r)
	}
	b := Request{Sim: SimBadco, Cores: 4, Policy: cache.DIP}.normalize()
	if b != (Request{Sim: SimBadco, Cores: 4, Policy: cache.DIP}) {
		t.Errorf("badco request must keep all fields: %+v", b)
	}
}

// TestCampaignPlanCoversExperiments spot-checks that the aggregated plan
// of the full paper campaign names every product family.
func TestCampaignPlanCoversExperiments(t *testing.T) {
	l := tinyLab()
	plan := l.CampaignPlan([]string{"all"}, Params{Cores: 4})
	kinds := map[Simulator]bool{}
	for _, r := range plan {
		kinds[r.Sim] = true
	}
	for _, sim := range []Simulator{SimBadco, SimDetailed, SimRef, SimMPKI, SimModels} {
		if !kinds[sim] {
			t.Errorf("campaign plan missing %s requests", sim)
		}
	}
	if len(plan) == 0 {
		t.Fatal("empty campaign plan")
	}
	// Unknown names contribute nothing rather than failing the warm-up.
	if p := l.CampaignPlan([]string{"nonsense"}, Params{Cores: 4}); len(p) != 0 {
		t.Errorf("unknown experiment produced %d requests", len(p))
	}
}
