package experiments

// The sampling-accuracy study: how much detailed-simulation time does
// systematic sampling buy, and what does it cost in IPC accuracy? Each
// point of the sweep runs the singles ensemble under one SamplingSpec on
// traces samplingTraceScale× the campaign length — the regime sampling
// exists for — and compares the estimate against two exact referents:
//
//   - a cold full run (the speedup referent: the cost a user would
//     actually pay without sampling), and
//   - a warmed exact run (the error baseline: systematic sampling
//     estimates steady-state IPC by construction, and on cache-friendly
//     workloads the cold run's start-up transient is itself a
//     measurable bias — comparing against it would charge the estimator
//     for being right).
//
// The table reports, per spec: window count, detailed fraction, mean
// relative IPC error vs the warmed baseline, the rate at which the
// reported confidence interval covers that baseline, and the measured
// wall-clock speedup over the cold full runs.

import (
	"context"
	"fmt"
	"math"
	"time"

	"mcbench/internal/bench"
	"mcbench/internal/cache"
	"mcbench/internal/multicore"
)

func init() {
	Register(Spec{
		Name:     "sampling-accuracy",
		Synopsis: "sampled-simulation IPC error and speedup vs sampling rate (long traces)",
		Group:    GroupExtension,
		// No Requests: the study runs on stretched traces outside the
		// lab's warm plan, and its exact baselines are deliberately not
		// cached (the timings are the experiment).
		Run: func(ctx context.Context, l *Lab, p Params) (*Table, error) {
			return l.samplingAccuracyTable(ctx)
		},
	})
}

// samplingTraceScale stretches the campaign trace length for the study:
// sampling is pointless on traces short enough to simulate in full, so
// the sweep runs at 10× where the sublinear cost structure shows.
const samplingTraceScale = 10

// samplingEnsembleSize caps the singles ensemble the study averages
// over.
const samplingEnsembleSize = 6

// samplingSpecs is the swept schedule: the sampling rate coarsens left
// to right at a fixed detailed window, and the last point adds bounded
// functional warming (the experimental speed dial — see the multicore
// package's accuracy notes for its bias modes).
var samplingSpecs = []multicore.SamplingSpec{
	{Unit: 10000, Window: 2000, Warmup: 2000},
	{Unit: 20000, Window: 2000, Warmup: 2000},
	{Unit: 50000, Window: 2000, Warmup: 2000},
	{Unit: 50000, Window: 2000, Warmup: 2000, Warm: 16000},
}

// SamplingPoint is one spec of the sampling-accuracy sweep, aggregated
// over the singles ensemble.
type SamplingPoint struct {
	Spec     multicore.SamplingSpec
	Windows  int     // sampled windows per run
	DetFrac  float64 // fraction of µops simulated in detail (warmup+window)/unit
	MeanErr  float64 // mean |IPC error| vs the warmed exact baseline
	Covered  int     // runs whose CI contained the warmed baseline IPC
	Total    int     // runs in the ensemble
	Speedup  float64 // sum(cold exact time) / sum(sampled time)
	ColdGap  float64 // mean |cold - warmed|/warmed: the transient the cold referent carries
	Workload []string
}

// samplingEnsemble picks the singles the study averages over: a
// preferred spread of memory behaviours when the source has them, padded
// from the source's own names otherwise (scaled sources use synthetic
// names).
func (l *Lab) samplingEnsemble() []multicore.Workload {
	preferred := []string{"mcf", "gcc", "soplex", "hmmer", "libquantum", "povray"}
	have := make(map[string]bool, len(l.Names()))
	for _, n := range l.Names() {
		have[n] = true
	}
	var names []string
	for _, n := range preferred {
		if have[n] && len(names) < samplingEnsembleSize {
			names = append(names, n)
		}
	}
	for _, n := range l.Names() {
		if len(names) >= samplingEnsembleSize {
			break
		}
		dup := false
		for _, m := range names {
			dup = dup || m == n
		}
		if !dup {
			names = append(names, n)
		}
	}
	ws := make([]multicore.Workload, len(names))
	for i, n := range names {
		ws[i] = multicore.Workload{n}
	}
	return ws
}

// SamplingAccuracy runs the sweep. Exact baselines are computed once per
// workload and shared across every spec point; all runs of a phase
// execute under the usual simulation-slot bound, with per-run wall time
// summed so the speedup column compares like against like (both sides
// see the same contention).
func (l *Lab) SamplingAccuracy(ctx context.Context) ([]SamplingPoint, error) {
	n := samplingTraceScale * l.cfg.TraceLen
	prov := bench.At(l.src, n)
	ws := l.samplingEnsemble()
	if len(ws) == 0 {
		return nil, fmt.Errorf("experiments: sampling-accuracy: source has no benchmarks")
	}
	warm := samplingSpecs[0].Unit
	for _, s := range samplingSpecs {
		if s.Unit > warm {
			warm = s.Unit
		}
	}

	// Phase 1: the exact referents, one cold (timed) and one warmed
	// (error baseline) per workload.
	coldIPC := make([][]float64, len(ws))
	warmIPC := make([][]float64, len(ws))
	coldDur := make([]time.Duration, len(ws))
	errs := make([]error, len(ws))
	if err := multicore.RunBounded(ctx, len(ws), func(i int) {
		start := time.Now()
		cold, err := multicore.Detailed(ctx, ws[i], prov, cache.LRU, 0)
		coldDur[i] = time.Since(start)
		if err != nil {
			errs[i] = err
			return
		}
		coldIPC[i] = cold.IPC
		warmed, err := multicore.DetailedWithWarmup(ctx, ws[i], prov, cache.LRU, warm, uint64(n)-warm)
		if err != nil {
			errs[i] = err
			return
		}
		warmIPC[i] = warmed.IPC
	}); err != nil {
		return nil, err
	}
	for i, err := range errs {
		if err != nil {
			return nil, fmt.Errorf("experiments: sampling-accuracy baseline %s: %w", ws[i], err)
		}
	}
	var coldTotal time.Duration
	var coldGap float64
	for i := range ws {
		coldTotal += coldDur[i]
		coldGap += math.Abs(coldIPC[i][0]-warmIPC[i][0]) / warmIPC[i][0]
	}
	coldGap /= float64(len(ws))

	// Phase 2: the sampled runs, one per (spec, workload).
	points := make([]SamplingPoint, len(samplingSpecs))
	for k, spec := range samplingSpecs {
		pt := SamplingPoint{
			Spec:    spec,
			DetFrac: float64(spec.Window+spec.Warmup) / float64(spec.Unit),
			ColdGap: coldGap,
		}
		for _, w := range ws {
			pt.Workload = append(pt.Workload, w.String())
		}
		res := make([]multicore.SampledResult, len(ws))
		dur := make([]time.Duration, len(ws))
		if err := multicore.RunBounded(ctx, len(ws), func(i int) {
			start := time.Now()
			r, err := multicore.DetailedSampled(ctx, ws[i], prov, cache.LRU, spec, 0)
			dur[i] = time.Since(start)
			if err != nil {
				errs[i] = err
				return
			}
			res[i] = r
		}); err != nil {
			return nil, err
		}
		var sampledTotal time.Duration
		for i, err := range errs {
			if err != nil {
				return nil, fmt.Errorf("experiments: sampling-accuracy %s %s: %w", spec, ws[i], err)
			}
			sampledTotal += dur[i]
			pt.Windows = res[i].Windows
			diff := math.Abs(res[i].IPC[0] - warmIPC[i][0])
			pt.MeanErr += diff / warmIPC[i][0]
			pt.Total++
			if diff <= res[i].CIHalf[0] {
				pt.Covered++
			}
		}
		pt.MeanErr /= float64(pt.Total)
		pt.Speedup = float64(coldTotal) / float64(sampledTotal)
		points[k] = pt
	}
	return points, nil
}

// samplingAccuracyTable renders the sweep.
func (l *Lab) samplingAccuracyTable(ctx context.Context) (*Table, error) {
	points, err := l.SamplingAccuracy(ctx)
	if err != nil {
		return nil, err
	}
	n := samplingTraceScale * l.cfg.TraceLen
	t := &Table{
		Title: fmt.Sprintf("Extension: sampled-simulation accuracy vs rate (singles, LRU, %d-µop traces)", n),
		Columns: []string{"spec", "windows", "detailed", "mean |err|",
			"CI cover", "speedup"},
		Notes: []string{
			"error and coverage are measured against a warmed exact run: systematic",
			"sampling estimates steady-state IPC, and the cold run's start-up transient",
			fmt.Sprintf("(mean %.1f%% here) would otherwise be charged to the estimator;", 100*points[0].ColdGap),
			"speedup is wall-clock vs the cold full runs (the cost sampling avoids);",
			"the f-suffixed point bounds functional warming of the skipped gap — the",
			"experimental speed dial, with the bias modes documented in internal/multicore",
		},
	}
	for _, p := range points {
		t.AddRow(p.Spec.String(), fmt.Sprint(p.Windows),
			fmt.Sprintf("%.1f%%", 100*p.DetFrac),
			fmt.Sprintf("%.2f%%", 100*p.MeanErr),
			fmt.Sprintf("%d/%d", p.Covered, p.Total),
			f2(p.Speedup)+"x")
	}
	return t, nil
}
