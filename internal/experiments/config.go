package experiments

import (
	"context"
	"fmt"

	"mcbench/internal/cpu"
	"mcbench/internal/uncore"
)

func init() {
	Register(Spec{
		Name:     "config",
		Synopsis: "print the simulated core/uncore configurations",
		Group:    GroupPaper,
		Run: func(ctx context.Context, l *Lab, p Params) (*Table, error) {
			return ConfigTable(), nil
		},
	})
}

// ConfigTable prints the Table I / Table II configurations in force. It
// is static — no simulation — and therefore infallible.
func ConfigTable() *Table {
	core := cpu.DefaultConfig()
	t := &Table{
		Title:   "Tables I & II: simulated configurations",
		Columns: []string{"parameter", "value"},
		Notes: []string{
			"LLC capacities are the paper's scaled by 1/4, matching the 10^-3 trace-length scale (see DESIGN.md)",
		},
	}
	t.AddRow("decode/issue/commit", fmt.Sprintf("%d/%d/%d", core.DecodeWidth, core.IssueWidth, core.CommitWidth))
	t.AddRow("RS/LDQ/STQ/ROB", fmt.Sprintf("%d/%d/%d/%d", core.RS, core.LDQ, core.STQ, core.ROB))
	t.AddRow("IL1", fmt.Sprintf("%d kB, %d-way, %d cycles", core.IL1Bytes>>10, core.IL1Ways, core.IL1Lat))
	t.AddRow("DL1", fmt.Sprintf("%d kB, %d-way, %d cycles, %d MSHRs", core.DL1Bytes>>10, core.DL1Ways, core.DL1Lat, core.DL1MSHRs))
	t.AddRow("ITLB/DTLB", fmt.Sprintf("%d/%d entries, %d-cycle walk", core.ITLBEntries, core.DTLBEntries, core.TLBWalkLat))
	t.AddRow("branch predictor", fmt.Sprintf("bimodal 2^%d, %d-cycle redirect", core.BPIndexBits, core.MispredictPenalty))
	for _, k := range []int{2, 4, 8} {
		u := uncore.ConfigFor(k, "LRU")
		t.AddRow(fmt.Sprintf("uncore %d cores", k),
			fmt.Sprintf("LLC %d kB/%d-way/%d cycles, %d MSHRs, %d-entry WB, DRAM %d cycles",
				u.LLCBytes>>10, u.LLCWays, u.LLCLatency, u.MSHRs, u.WriteBufEnts, u.DRAMLatency))
	}
	return t
}
