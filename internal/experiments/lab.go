// Package experiments reproduces every table and figure of the paper's
// evaluation. A Lab owns the experimental state — benchmark traces, BADCO
// models, workload populations and memoized IPC tables per (core count,
// policy, simulator) — and each experiment (fig1.go … overhead.go) reads
// from it and emits a printable Table.
package experiments

import (
	"fmt"
	"math/rand"
	"sync"

	"mcbench/internal/badco"
	"mcbench/internal/cache"
	"mcbench/internal/metrics"
	"mcbench/internal/multicore"
	"mcbench/internal/profile"
	"mcbench/internal/results"
	"mcbench/internal/trace"
	"mcbench/internal/workload"
)

// Config scales the experimental campaign. DefaultConfig matches the
// paper's counts; QuickConfig shrinks everything for tests and smoke
// runs.
type Config struct {
	TraceLen      int   // µops per benchmark trace
	Pop8Size      int   // sampled population size for 8 cores (paper: 10000)
	Pop4Limit     int   // 0 = full 12650-workload population, else subsample
	DetailedCount int   // workloads simulated with the detailed model (paper: 250)
	Fig3Trials    int   // samples per point in Fig. 3 (paper: 1000)
	Fig6Trials    int   // samples per point in Fig. 6 (paper: 10000)
	Fig7Trials    int   // samples per point in Fig. 7 (paper: 100)
	Seed          int64 // master seed; all randomness derives from it

	// CacheDir, when non-empty, persists IPC tables (the expensive
	// population sweeps) across runs via the results package.
	CacheDir string
}

// DefaultConfig reproduces the paper's experimental scale.
func DefaultConfig() Config {
	return Config{
		TraceLen:      trace.DefaultTraceLen,
		Pop8Size:      10000,
		DetailedCount: 250,
		Fig3Trials:    1000,
		Fig6Trials:    10000,
		Fig7Trials:    100,
		Seed:          20130421, // ISPASS 2013 in Austin
	}
}

// QuickConfig returns a reduced campaign for tests: smaller traces,
// subsampled populations and fewer Monte-Carlo trials. The shapes of the
// results are preserved; only their resolution drops.
func QuickConfig() Config {
	return Config{
		TraceLen:      20000,
		Pop8Size:      400,
		Pop4Limit:     800,
		DetailedCount: 40,
		Fig3Trials:    300,
		Fig6Trials:    400,
		Fig7Trials:    60,
		Seed:          20130421,
	}
}

// Policies returns the case-study policy list (paper order).
func Policies() []cache.PolicyName { return cache.PaperPolicies() }

// PolicyPairs returns the 10 ordered policy pairs of Figures 4 and 5, as
// (X, Y) with the figure's "X>Y" labelling meaning "is Y better than X".
func PolicyPairs() [][2]cache.PolicyName {
	pols := Policies()
	var pairs [][2]cache.PolicyName
	for i := 0; i < len(pols); i++ {
		for j := i + 1; j < len(pols); j++ {
			pairs = append(pairs, [2]cache.PolicyName{pols[i], pols[j]})
		}
	}
	return pairs
}

// ipcKey indexes memoized IPC tables.
type ipcKey struct {
	cores  int
	policy cache.PolicyName
}

// Lab lazily builds and caches all experimental state.
type Lab struct {
	cfg Config

	mu     sync.Mutex
	traces map[string]*trace.Trace
	models map[string]*badco.Model
	names  []string // benchmark order (suite order)

	pops map[int]*workload.Population

	badcoIPC  map[ipcKey][][]float64 // population IPC tables (BADCO)
	detIPC    map[ipcKey][][]float64 // detailed IPC tables over DetSample
	detSample map[int][]int          // population indices simulated in detail

	refIPC map[int][]float64 // per core count: per-benchmark alone IPC (BADCO, LRU)
	mpki   []float64         // per benchmark: alone LLC misses per kilo-op

	profiles []*profile.Profile // per benchmark: microarch-independent profile
}

// NewLab creates a Lab with the given configuration.
func NewLab(cfg Config) *Lab {
	return &Lab{
		cfg:       cfg,
		pops:      make(map[int]*workload.Population),
		badcoIPC:  make(map[ipcKey][][]float64),
		detIPC:    make(map[ipcKey][][]float64),
		detSample: make(map[int][]int),
		refIPC:    make(map[int][]float64),
	}
}

// Config returns the lab's configuration.
func (l *Lab) Config() Config { return l.cfg }

// Names returns the benchmark names in index order.
func (l *Lab) Names() []string {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.ensureTracesLocked()
	return l.names
}

func (l *Lab) ensureTracesLocked() {
	if l.traces != nil {
		return
	}
	l.names = trace.SuiteNames()
	l.traces = trace.GenerateSuite(l.cfg.TraceLen)
}

// Traces returns the benchmark traces, generating them on first use.
func (l *Lab) Traces() map[string]*trace.Trace {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.ensureTracesLocked()
	return l.traces
}

// Models returns the BADCO models, building them on first use (two
// detailed calibration runs per benchmark, in parallel).
func (l *Lab) Models() map[string]*badco.Model {
	traces := l.Traces()
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.models == nil {
		models, err := multicore.BuildModels(traces, badco.DefaultBuildConfig())
		if err != nil {
			panic(err) // deterministic construction; cannot fail at runtime
		}
		l.models = models
	}
	return l.models
}

// Population returns the workload population for the given core count:
// the full enumeration for 2 and 4 cores (optionally subsampled per
// Pop4Limit) and a Pop8Size uniform sample for 8 cores.
func (l *Lab) Population(cores int) *workload.Population {
	l.mu.Lock()
	defer l.mu.Unlock()
	if p, ok := l.pops[cores]; ok {
		return p
	}
	const b = 22
	var p *workload.Population
	switch {
	case cores == 8:
		rng := rand.New(rand.NewSource(l.cfg.Seed + 8))
		p = workload.SampleUniform(rng, b, 8, l.cfg.Pop8Size)
	case cores == 4 && l.cfg.Pop4Limit > 0 && l.cfg.Pop4Limit < 12650:
		rng := rand.New(rand.NewSource(l.cfg.Seed + 4))
		p = workload.SampleUniform(rng, b, 4, l.cfg.Pop4Limit)
	default:
		p = workload.Enumerate(b, cores)
	}
	l.pops[cores] = p
	return p
}

// toMulticore converts a workload of benchmark indices into names.
func (l *Lab) toMulticore(w workload.Workload) multicore.Workload {
	names := l.Names()
	out := make(multicore.Workload, len(w))
	for i, b := range w {
		out[i] = names[b]
	}
	return out
}

// BadcoIPC returns the per-workload per-core IPC table of the population
// for (cores, policy), simulated with BADCO machines. Tables are
// memoized (and persisted when CacheDir is set); the first call per key
// runs the full population sweep.
func (l *Lab) BadcoIPC(cores int, policy cache.PolicyName) [][]float64 {
	key := ipcKey{cores, policy}
	l.mu.Lock()
	if t, ok := l.badcoIPC[key]; ok {
		l.mu.Unlock()
		return t
	}
	l.mu.Unlock()

	pop := l.Population(cores)
	if table, ok := l.loadCached("badco", cores, policy, pop.Size()); ok {
		l.mu.Lock()
		l.badcoIPC[key] = table
		l.mu.Unlock()
		return table
	}

	models := l.Models()
	ws := make([]multicore.Workload, pop.Size())
	for i, w := range pop.Workloads {
		ws[i] = l.toMulticore(w)
	}
	results, err := multicore.SweepApproximate(ws, models, policy, 0)
	if err != nil {
		panic(err)
	}
	table := make([][]float64, len(results))
	for i, r := range results {
		table[i] = r.IPC
	}
	l.saveCached("badco", cores, policy, table)
	l.mu.Lock()
	l.badcoIPC[key] = table
	l.mu.Unlock()
	return table
}

// DetSample returns the population indices of the workloads simulated
// with the detailed model for the given core count: the full population
// for 2 cores (the paper simulates all 253 workloads with Zesto),
// otherwise a DetailedCount random subset (paper: 250 for 4 and 8 cores).
func (l *Lab) DetSample(cores int) []int {
	pop := l.Population(cores)
	l.mu.Lock()
	defer l.mu.Unlock()
	if s, ok := l.detSample[cores]; ok {
		return s
	}
	n := pop.Size()
	var idx []int
	if cores <= 2 || n <= l.cfg.DetailedCount+3 {
		idx = make([]int, n)
		for i := range idx {
			idx[i] = i
		}
	} else {
		rng := rand.New(rand.NewSource(l.cfg.Seed + 100 + int64(cores)))
		idx = rng.Perm(n)[:l.cfg.DetailedCount]
	}
	l.detSample[cores] = idx
	return idx
}

// DetailedIPC returns the per-workload per-core IPC table over the
// DetSample workloads for (cores, policy), simulated with the detailed
// model. Row i corresponds to DetSample(cores)[i].
func (l *Lab) DetailedIPC(cores int, policy cache.PolicyName) [][]float64 {
	key := ipcKey{cores, policy}
	l.mu.Lock()
	if t, ok := l.detIPC[key]; ok {
		l.mu.Unlock()
		return t
	}
	l.mu.Unlock()

	pop := l.Population(cores)
	sample := l.DetSample(cores)
	traces := l.Traces()
	ws := make([]multicore.Workload, len(sample))
	for i, wi := range sample {
		ws[i] = l.toMulticore(pop.Workloads[wi])
	}
	results, err := multicore.SweepDetailed(ws, traces, policy, 0)
	if err != nil {
		panic(err)
	}
	table := make([][]float64, len(results))
	for i, r := range results {
		table[i] = r.IPC
	}
	l.saveCached("detailed", cores, policy, table)
	l.mu.Lock()
	l.detIPC[key] = table
	l.mu.Unlock()
	return table
}

// loadCached fetches a persisted IPC table if CacheDir is configured.
func (l *Lab) loadCached(sim string, cores int, policy cache.PolicyName, population int) ([][]float64, bool) {
	if l.cfg.CacheDir == "" {
		return nil, false
	}
	store, err := results.Open(l.cfg.CacheDir)
	if err != nil {
		return nil, false
	}
	t, ok, err := store.Load(results.IPCTable{
		Simulator: sim, Cores: cores, Policy: string(policy),
		TraceLen: l.cfg.TraceLen, Population: population, Seed: l.cfg.Seed,
	})
	if err != nil || !ok {
		return nil, false
	}
	return t.IPC, true
}

// saveCached persists an IPC table if CacheDir is configured; failures
// are non-fatal (the table is still returned to the caller).
func (l *Lab) saveCached(sim string, cores int, policy cache.PolicyName, table [][]float64) {
	if l.cfg.CacheDir == "" {
		return
	}
	store, err := results.Open(l.cfg.CacheDir)
	if err != nil {
		return
	}
	_ = store.Save(&results.IPCTable{
		Simulator: sim, Cores: cores, Policy: string(policy),
		TraceLen: l.cfg.TraceLen, Population: len(table), Seed: l.cfg.Seed,
		IPC: table,
	})
}

// RefIPC returns the per-benchmark single-thread reference IPC on the
// cores-sized machine (benchmark alone, LRU uncore, BADCO), used by the
// speedup metrics WSU and HSU.
func (l *Lab) RefIPC(cores int) []float64 {
	l.mu.Lock()
	if r, ok := l.refIPC[cores]; ok {
		l.mu.Unlock()
		return r
	}
	l.mu.Unlock()

	models := l.Models()
	names := l.Names()
	ws := make([]multicore.Workload, len(names))
	for i, n := range names {
		ws[i] = multicore.Workload{n}
	}
	// Alone on the same uncore configuration as the K-core machine: the
	// uncore is built for `cores` but only core 0 is populated.
	results := make([]float64, len(names))
	for i, w := range ws {
		r, err := aloneOn(cores, w, models)
		if err != nil {
			panic(err)
		}
		results[i] = r
	}
	l.mu.Lock()
	l.refIPC[cores] = results
	l.mu.Unlock()
	return results
}

// aloneOn runs one benchmark alone against a cores-sized LRU uncore with
// BADCO and returns its IPC.
func aloneOn(cores int, w multicore.Workload, models map[string]*badco.Model) (float64, error) {
	cfg := uncoreConfigFor(cores)
	unc, err := newUncore(cfg)
	if err != nil {
		return 0, err
	}
	m := models[w[0]]
	ma, err := badco.NewMachine(0, m, unc)
	if err != nil {
		return 0, err
	}
	end := ma.RunIterations(1)
	if end == 0 {
		return 0, fmt.Errorf("experiments: zero cycles for %s", w[0])
	}
	return float64(m.TraceLen) / float64(end), nil
}

// RefTable expands per-benchmark reference IPCs into a per-workload
// per-core table aligned with the population.
func (l *Lab) RefTable(cores int) [][]float64 {
	pop := l.Population(cores)
	ref := l.RefIPC(cores)
	table := make([][]float64, pop.Size())
	for i, w := range pop.Workloads {
		row := make([]float64, len(w))
		for k, b := range w {
			row[k] = ref[b]
		}
		table[i] = row
	}
	return table
}

// refRows picks the reference rows for a subset of population indices.
func refRows(ref [][]float64, idx []int) [][]float64 {
	out := make([][]float64, len(idx))
	for i, j := range idx {
		out[i] = ref[j]
	}
	return out
}

// Diffs returns the per-workload differences d(w) between policies X and
// Y under the metric, over the BADCO population table (the CLT-domain
// values driving the confidence machinery).
func (l *Lab) Diffs(cores int, m metrics.Metric, x, y cache.PolicyName) []float64 {
	ref := l.RefTable(cores)
	tX := m.Throughputs(l.BadcoIPC(cores, x), ref)
	tY := m.Throughputs(l.BadcoIPC(cores, y), ref)
	return m.Diffs(tX, tY)
}

// DetailedDiffs is Diffs over the detailed-simulator sample.
func (l *Lab) DetailedDiffs(cores int, m metrics.Metric, x, y cache.PolicyName) []float64 {
	ref := refRows(l.RefTable(cores), l.DetSample(cores))
	tX := m.Throughputs(l.DetailedIPC(cores, x), ref)
	tY := m.Throughputs(l.DetailedIPC(cores, y), ref)
	return m.Diffs(tX, tY)
}

// BadcoDiffsAt is Diffs restricted to a subset of population indices
// (e.g. the detailed sample, for Fig. 4's middle bars).
func (l *Lab) BadcoDiffsAt(cores int, m metrics.Metric, x, y cache.PolicyName, idx []int) []float64 {
	all := l.Diffs(cores, m, x, y)
	out := make([]float64, len(idx))
	for i, j := range idx {
		out[i] = all[j]
	}
	return out
}

// MPKI returns per-benchmark LLC misses per kilo-instruction, measured
// with the detailed simulator running each benchmark alone on the 1-core
// LRU configuration (the Table IV measurement).
func (l *Lab) MPKI() []float64 {
	l.mu.Lock()
	if l.mpki != nil {
		defer l.mu.Unlock()
		return l.mpki
	}
	l.mu.Unlock()

	traces := l.Traces()
	names := l.Names()
	out := make([]float64, len(names))
	var wg sync.WaitGroup
	for i, name := range names {
		wg.Add(1)
		go func(i int, name string) {
			defer wg.Done()
			out[i] = measureMPKI(traces[name])
		}(i, name)
	}
	wg.Wait()
	l.mu.Lock()
	l.mpki = out
	l.mu.Unlock()
	return out
}
