// Package experiments reproduces every table and figure of the paper's
// evaluation, plus the extension experiments beyond it. A Lab owns the
// experimental state — benchmark traces, BADCO models, workload
// populations and memoized IPC tables per (core count, policy,
// simulator) — and each experiment reads from it and emits a printable
// Table.
//
// Experiments are registered implementations of the Experiment interface
// (see registry.go): each declares its name, the expensive Lab products
// it reads as a []Request, and a Run method producing its Table.
// cmd/mcbench and the public mcbench package dispatch through the
// registry instead of hard-coded switches.
//
// All lazy state is memoized with per-key single-flight semantics, so a
// Lab is safe for concurrent use: two goroutines asking for the same
// table block on one computation, while different tables build in
// parallel. Lab.Warm precomputes a whole campaign's plan with bounded
// parallelism. Everything is context-aware: cancelling the context
// aborts in-flight population sweeps promptly, and failed (cancelled)
// computations are not memoized, so a later call retries cleanly.
package experiments

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"mcbench/internal/badco"
	"mcbench/internal/bench"
	"mcbench/internal/cache"
	"mcbench/internal/metrics"
	"mcbench/internal/multicore"
	"mcbench/internal/profile"
	"mcbench/internal/results"
	"mcbench/internal/telemetry"
	"mcbench/internal/trace"
	"mcbench/internal/workload"
)

// Config scales the experimental campaign. DefaultConfig matches the
// paper's counts; QuickConfig shrinks everything for tests and smoke
// runs.
type Config struct {
	TraceLen      int   // µops per benchmark trace
	Pop8Size      int   // sampled population size for 8 cores (paper: 10000)
	Pop4Limit     int   // 0 = full 12650-workload population, else subsample
	DetailedCount int   // workloads simulated with the detailed model (paper: 250)
	Fig3Trials    int   // samples per point in Fig. 3 (paper: 1000)
	Fig6Trials    int   // samples per point in Fig. 6 (paper: 10000)
	Fig7Trials    int   // samples per point in Fig. 7 (paper: 100)
	Seed          int64 // master seed; all randomness derives from it

	// Source selects the benchmark population the lab studies. nil means
	// the paper's fixed 22-benchmark suite. All memoized products and
	// persisted tables are keyed by the source's identity, so labs over
	// different sources never share (or clobber) each other's state.
	Source bench.Source

	// PopLimit, when positive, caps every workload population at a
	// uniform sample of that size regardless of core count. It is the
	// knob for big scaled sources, whose full enumerations are
	// astronomically large; the core-count-specific Pop8Size/Pop4Limit
	// take precedence where they apply.
	PopLimit int

	// PopScaleBs are the benchmark-population sizes B the
	// population-scaling experiment sweeps (each via a scaled:B source
	// derived from Seed); PopScaleSample is the workload sample size per
	// B.
	PopScaleBs     []int
	PopScaleSample int

	// CacheDir, when non-empty, persists IPC tables (the expensive
	// population sweeps) across runs via the results package.
	CacheDir string

	// RemoteFetch, when non-nil (and CacheDir is set), is installed as the
	// store's read-through fetcher: a local cache miss consults it before
	// falling back to compute. The fleet wires it to peer /cache/{key}
	// fetches so any node can serve any table; fetched bytes are
	// checksum-verified before use and any failure is a plain miss.
	RemoteFetch func(key string) (data []byte, ok bool, err error)

	// Warmup, when positive, runs every detailed-simulator workload for
	// that many committed µops per core before its measurement window
	// begins. The detailed population sweeps then share the warmed
	// prefix across the case-study policies: each workload is warmed
	// once, snapshotted, and every policy's measurement fans out from
	// the restored state (multicore.DetailedWarmup / DetailedFrom), so
	// a k-policy sweep pays the warmup once instead of k times. Warmed
	// tables persist under distinct cache keys. The default 0 measures
	// from reset and keeps every result — and every persisted cache
	// file — bit-identical to previous versions.
	Warmup int

	// Sampling, when enabled, runs every detailed-simulator sweep under
	// SMARTS-style systematic sampling (multicore.DetailedSampled)
	// instead of exactly: per spec.Unit µops one window of spec.Window
	// µops is measured in detail after spec.Warmup detailed warmup µops,
	// with the gap fast-forwarded under functional warming. The
	// resulting tables are estimates — they persist under distinct cache
	// keys carrying the spec, with per-workload confidence half-widths
	// and cv columns alongside the IPC. Mutually exclusive with Warmup
	// (the sampled driver owns its own warmup structure). The zero spec
	// keeps every sweep, key and persisted file exactly as before.
	Sampling multicore.SamplingSpec

	// Observer, when non-nil, receives a ProductEvent whenever an
	// expensive memoized product is computed (or loaded from the
	// persistent cache): sweeps starting and finishing, models and
	// reference measurements building. It is the progress feed the serve
	// subsystem streams to clients. Memo hits emit nothing — the product
	// was already observed when it was built. The callback runs on the
	// computing goroutine and must not block.
	Observer func(ProductEvent)

	// Metrics, when non-nil, is the telemetry registry the lab records
	// into: product latencies, per-phase timing breakdowns (trace load,
	// model build, warmup, fast-forward, measured window, store save),
	// persistent-cache hit/miss counters and the store's operation
	// counters. nil records into telemetry.Default(), the process-wide
	// registry that mcbench.Metrics() snapshots; the serve subsystem
	// passes a per-server registry so co-resident servers don't mix
	// series.
	Metrics *telemetry.Registry
}

// ProductEvent reports the lifecycle of one expensive Lab product. Sim
// matches the campaign Simulator names ("badco", "detailed", "ref",
// "mpki", "models"); Cores and Policy are set where the product is keyed
// by them. Phase is "start" when a computation begins and "done" when it
// finishes (Err non-nil on failure); a product served from the
// persistent cache emits a single "done" with Cached set.
type ProductEvent struct {
	Sim     string
	Cores   int
	Policy  string
	Phase   string // "start" | "done"
	Cached  bool
	Rows    int // result rows (table rows, model count, vector length)
	Err     error
	Elapsed time.Duration // set on "done"
}

// DefaultConfig reproduces the paper's experimental scale.
func DefaultConfig() Config {
	return Config{
		TraceLen:       trace.DefaultTraceLen,
		Pop8Size:       10000,
		DetailedCount:  250,
		Fig3Trials:     1000,
		Fig6Trials:     10000,
		Fig7Trials:     100,
		PopScaleBs:     []int{16, 32, 64, 128},
		PopScaleSample: 400,
		Seed:           20130421, // ISPASS 2013 in Austin
	}
}

// QuickConfig returns a reduced campaign for tests: smaller traces,
// subsampled populations and fewer Monte-Carlo trials. The shapes of the
// results are preserved; only their resolution drops.
func QuickConfig() Config {
	return Config{
		TraceLen:       20000,
		Pop8Size:       400,
		Pop4Limit:      800,
		DetailedCount:  40,
		Fig3Trials:     300,
		Fig6Trials:     400,
		Fig7Trials:     60,
		PopScaleBs:     []int{12, 18},
		PopScaleSample: 120,
		Seed:           20130421,
	}
}

// Policies returns the case-study policy list (paper order).
func Policies() []cache.PolicyName { return cache.PaperPolicies() }

// PolicyPairs returns the 10 ordered policy pairs of Figures 4 and 5, as
// (X, Y) with the figure's "X>Y" labelling meaning "is Y better than X".
func PolicyPairs() [][2]cache.PolicyName {
	pols := Policies()
	var pairs [][2]cache.PolicyName
	for i := 0; i < len(pols); i++ {
		for j := i + 1; j < len(pols); j++ {
			pairs = append(pairs, [2]cache.PolicyName{pols[i], pols[j]})
		}
	}
	return pairs
}

// ipcKey indexes memoized IPC tables.
type ipcKey struct {
	cores  int
	policy cache.PolicyName
}

// flight is one in-flight (or completed) computation of a value.
type flight[V any] struct {
	done chan struct{}
	val  V
	err  error
}

// flightGroup memoizes one value per key with single-flight semantics:
// concurrent callers of the same key block on a single computation, while
// different keys compute independently and may run in parallel. The
// mutex only guards the entry map, never a computation.
//
// A computation that fails (most commonly: its context was cancelled) is
// not memoized — the entry is dropped, the failure is reported to every
// caller blocked on it, and the next caller recomputes. A waiter whose
// own context is cancelled stops waiting with that context's error while
// the computation keeps running for the remaining callers.
type flightGroup[K comparable, V any] struct {
	mu sync.Mutex
	m  map[K]*flight[V]
}

// do returns the memoized value for key, computing it at most once.
func (g *flightGroup[K, V]) do(ctx context.Context, key K, compute func() (V, error)) (V, error) {
	for {
		g.mu.Lock()
		if g.m == nil {
			g.m = make(map[K]*flight[V])
		}
		if f, ok := g.m[key]; ok {
			g.mu.Unlock()
			select {
			case <-f.done:
				if isCtxErr(f.err) && ctx.Err() == nil {
					// The computing caller was cancelled, but this
					// waiter is live: retry with our own context
					// instead of inheriting someone else's
					// cancellation. (The failed entry was already
					// dropped, so the loop starts a fresh flight.)
					continue
				}
				return f.val, f.err
			case <-ctx.Done():
				var zero V
				return zero, ctx.Err()
			}
		}
		f := &flight[V]{done: make(chan struct{})}
		g.m[key] = f
		g.mu.Unlock()
		f.val, f.err = compute()
		if f.err != nil {
			g.mu.Lock()
			delete(g.m, key)
			g.mu.Unlock()
		}
		close(f.done)
		return f.val, f.err
	}
}

// isCtxErr reports whether err is a context cancellation/deadline — the
// only failures worth retrying on behalf of a live waiter (a
// deterministic compute error would just fail again).
func isCtxErr(err error) bool {
	return errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded)
}

// lazy is a single-value flightGroup: a memoized computation with the
// same retry-on-failure and cancellation semantics.
type lazy[V any] struct {
	fg flightGroup[struct{}, V]
}

func (z *lazy[V]) get(ctx context.Context, compute func() (V, error)) (V, error) {
	return z.fg.do(ctx, struct{}{}, compute)
}

// Lab lazily builds and caches all experimental state. The pure products
// (benchmark names, populations, detailed-sample indices, the persistent
// store handle) are cheap and infallible; everything that simulates —
// traces, models, IPC tables, reference IPCs, the MPKI measurement,
// profiles — is context-aware and memoized with single-flight semantics.
type Lab struct {
	cfg Config
	src bench.Source // the benchmark population under study

	namesOnce sync.Once
	names     []string // benchmark order (source order)

	models   lazy[map[string]*badco.Model]
	mpki     lazy[[]float64]          // per benchmark: alone LLC misses per kilo-op
	profiles lazy[[]*profile.Profile] // per benchmark: microarch-independent profile

	storeOnce sync.Once
	store     *results.Store // nil: no CacheDir, or the directory is unusable

	pops      flightGroup[int, *workload.Population]
	detSample flightGroup[int, []int]          // population indices simulated in detail
	refIPC    flightGroup[int, []float64]      // per core count: per-benchmark alone IPC
	badcoIPC  flightGroup[ipcKey, [][]float64] // population IPC tables (BADCO)
	detIPC    flightGroup[ipcKey, [][]float64] // detailed IPC tables over DetSample

	// detShared memoizes the shared-warmup grouped sweep per core count:
	// one warmed prefix per workload, every case-study policy measured
	// from it. Only consulted when cfg.Warmup > 0.
	detShared flightGroup[int, map[cache.PolicyName][][]float64]

	// Sweep counters record how many full population sweeps actually ran
	// (persistent-cache hits excluded); the single-flight regression
	// tests assert exactly one sweep per key.
	badcoSweeps atomic.Int64
	detSweeps   atomic.Int64
}

// SweepCounts reports how many full population sweeps this lab actually
// executed (persistent-cache hits excluded), per simulator. The serve
// subsystem's dedup tests assert on it end to end: N coalesced
// submissions must leave these at one.
func (l *Lab) SweepCounts() (badco, detailed int64) {
	return l.badcoSweeps.Load(), l.detSweeps.Load()
}

// observe forwards a product event to the configured Observer, if any.
func (l *Lab) observe(ev ProductEvent) {
	if l.cfg.Observer != nil {
		l.cfg.Observer(ev)
	}
}

// metrics returns the registry the lab's instrumentation records into.
func (l *Lab) metrics() *telemetry.Registry {
	if l.cfg.Metrics != nil {
		return l.cfg.Metrics
	}
	return telemetry.Default()
}

// cacheHit and cacheMiss count persistent-cache outcomes per simulator —
// the lab-level view of whether an IPC table request fell through to a
// full population sweep.
func (l *Lab) cacheHit(sim string) {
	l.metrics().Counter("mcbench_lab_cache_hits_total",
		"IPC tables served from the persistent results cache",
		telemetry.L("sim", sim)).Inc()
}

func (l *Lab) cacheMiss(sim string) {
	l.metrics().Counter("mcbench_lab_cache_misses_total",
		"IPC table cache misses that fell through to a full sweep",
		telemetry.L("sim", sim)).Inc()
}

// observeRun brackets a product computation with start/done events and a
// telemetry span. The span rides the context into the simulation kernel,
// which charges each phase (trace load, model build, warmup,
// fast-forward, measured window, store save) as it crosses the boundary;
// on success the breakdown and the end-to-end latency are recorded into
// the lab's registry.
func observeRun[V any](l *Lab, ctx context.Context, ev ProductEvent, rows func(V) int, compute func(context.Context) (V, error)) (V, error) {
	ev.Phase = "start"
	l.observe(ev)
	sp := telemetry.StartSpan()
	start := time.Now()
	v, err := compute(telemetry.NewContext(ctx, sp))
	ev.Phase, ev.Err, ev.Elapsed = "done", err, time.Since(start)
	if err == nil {
		ev.Rows = rows(v)
		l.recordProduct(ev, sp)
	}
	l.observe(ev)
	return v, err
}

// recordProduct files one successful product computation into the lab
// registry: total latency keyed by the product identity, plus one
// observation per span phase totalling the time that product spent in it.
func (l *Lab) recordProduct(ev ProductEvent, sp *telemetry.Span) {
	r := l.metrics()
	sampling := "exact"
	if ev.Sim == "detailed" && l.cfg.Sampling.Enabled() {
		sampling = "sampled"
	}
	r.Histogram("mcbench_lab_product_seconds",
		"end-to-end latency of expensive lab products",
		telemetry.L("sim", ev.Sim),
		telemetry.L("cores", strconv.Itoa(ev.Cores)),
		telemetry.L("policy", ev.Policy),
		telemetry.L("sampling", sampling)).ObserveDuration(ev.Elapsed)
	for _, ph := range sp.Breakdown() {
		r.Histogram("mcbench_lab_phase_seconds",
			"time spent per simulation phase within a product computation",
			telemetry.L("sim", ev.Sim),
			telemetry.L("phase", ph.Name)).Observe(int64(ph.Total))
	}
}

// NewLab creates a Lab with the given configuration. A nil Config.Source
// means the paper's fixed suite.
func NewLab(cfg Config) *Lab {
	src := cfg.Source
	if src == nil {
		src = bench.NewSuite()
		cfg.Source = src
	}
	return &Lab{cfg: cfg, src: src}
}

// Config returns the lab's configuration.
func (l *Lab) Config() Config { return l.cfg }

// Source returns the benchmark source the lab studies.
func (l *Lab) Source() bench.Source { return l.src }

// Provider returns the lab's source bound to its configured trace
// length — the handle everything that needs a raw trace resolves
// through. Traces build lazily on first use; consumers whose use of a
// trace is one-shot (model building, the alone measurements) release it
// afterwards so resident memory tracks the in-flight working set.
func (l *Lab) Provider() bench.Provider { return bench.At(l.src, l.cfg.TraceLen) }

// sourceKey is the identity the lab's persisted products are keyed by.
// The default suite maps to the empty string so cache files written
// before sources existed stay loadable.
func (l *Lab) sourceKey() string {
	if name := l.src.Name(); name != "suite" {
		return name
	}
	return ""
}

// Names returns the benchmark names in index order. It never builds a
// trace (the order is the source definition order), so it is infallible.
func (l *Lab) Names() []string {
	l.namesOnce.Do(func() { l.names = l.src.Names() })
	return l.names
}

// Models returns the BADCO models, building them on first use (two
// detailed calibration runs per benchmark, in parallel). Each
// benchmark's trace is resolved lazily just before its calibration runs
// and released right after its model is built, so peak trace memory is
// O(parallelism · TraceLen) instead of O(B · TraceLen) — the property
// that makes paper-scale populations (B up to 512) fit a small host.
func (l *Lab) Models(ctx context.Context) (map[string]*badco.Model, error) {
	return l.models.get(ctx, func() (map[string]*badco.Model, error) {
		return observeRun(l, ctx, ProductEvent{Sim: "models"},
			func(m map[string]*badco.Model) int { return len(m) },
			func(ctx context.Context) (map[string]*badco.Model, error) {
				return multicore.BuildModels(ctx, l.Provider(), l.Names(), badco.DefaultBuildConfig())
			})
	})
}

// resultStore returns the persistent store, opened once, or nil when
// CacheDir is unset (or unusable — persistence is best-effort).
func (l *Lab) resultStore() *results.Store {
	l.storeOnce.Do(func() {
		if l.cfg.CacheDir == "" {
			return
		}
		if s, err := results.Open(l.cfg.CacheDir); err == nil {
			if l.cfg.RemoteFetch != nil {
				s.SetFetch(results.Fetcher(l.cfg.RemoteFetch))
			}
			s.Instrument(l.metrics())
			l.store = s
		}
	})
	return l.store
}

// maxEnumerate bounds the population size Population will materialise
// as a full enumeration when no explicit limit is configured; anything
// larger falls back to a fallbackPopulation-sized uniform sample. The
// bound comfortably covers the paper's geometries (12650 workloads at
// 4 cores over the suite) while keeping a large scaled source from
// enumerating billions of workloads into memory.
const (
	maxEnumerate       = 100_000
	fallbackPopulation = 10_000
)

// Population returns the workload population for the given core count:
// the full enumeration where it is tractable (2 and 4 cores over the
// paper's suite) and a uniform sample where it is not — per Pop8Size for
// 8 cores, Pop4Limit for 4, and PopLimit for any count (the scaled-source
// knob); with no limit configured, populations beyond maxEnumerate are
// sampled at fallbackPopulation rather than enumerated. Sampling draws
// from the full C(B+K-1, K) multiset population, whose size may saturate
// uint64 for large sources; populations are pure combinatorics — no
// simulation — so this is infallible.
func (l *Lab) Population(cores int) *workload.Population {
	pop, _ := l.pops.do(context.Background(), cores, func() (*workload.Population, error) {
		b := len(l.Names())
		total, exact := workload.PopulationSize(b, cores)
		limit := 0
		switch {
		case cores == 8:
			limit = l.cfg.Pop8Size
		case cores == 4 && l.cfg.Pop4Limit > 0:
			limit = l.cfg.Pop4Limit
		}
		if limit == 0 {
			limit = l.cfg.PopLimit
		}
		if limit == 0 && (!exact || total > maxEnumerate) {
			limit = fallbackPopulation
		}
		if limit > 0 && (!exact || uint64(limit) < total) {
			rng := rand.New(rand.NewSource(l.cfg.Seed + int64(cores)))
			return workload.SampleUniform(rng, b, cores, limit), nil
		}
		return workload.Enumerate(b, cores), nil
	})
	return pop
}

// isFullPopulation reports whether n workloads cover the whole multiset
// population of the lab's source at the given core count.
func (l *Lab) isFullPopulation(n, cores int) bool {
	size, exact := workload.PopulationSize(len(l.Names()), cores)
	return exact && uint64(n) == size
}

// toMulticore converts a workload of benchmark indices into names.
func (l *Lab) toMulticore(w workload.Workload) multicore.Workload {
	names := l.Names()
	out := make(multicore.Workload, len(w))
	for i, b := range w {
		out[i] = names[b]
	}
	return out
}

// BadcoIPC returns the per-workload per-core IPC table of the population
// for (cores, policy), simulated with BADCO machines. Tables are
// memoized (and persisted when CacheDir is set); the first caller per key
// runs the full population sweep while concurrent callers for the same
// key block on it, and different keys sweep in parallel.
func (l *Lab) BadcoIPC(ctx context.Context, cores int, policy cache.PolicyName) ([][]float64, error) {
	return l.badcoIPC.do(ctx, ipcKey{cores, policy}, func() ([][]float64, error) {
		pop := l.Population(cores)
		if table, ok := l.loadCached("badco", cores, policy, pop.Size(), 0); ok {
			l.cacheHit("badco")
			l.observe(ProductEvent{Sim: "badco", Cores: cores, Policy: string(policy),
				Phase: "done", Cached: true, Rows: len(table)})
			return table, nil
		}
		l.cacheMiss("badco")
		ev := ProductEvent{Sim: "badco", Cores: cores, Policy: string(policy)}
		return observeRun(l, ctx, ev, func(t [][]float64) int { return len(t) }, func(ctx context.Context) ([][]float64, error) {
			models, err := l.Models(ctx)
			if err != nil {
				return nil, err
			}
			l.badcoSweeps.Add(1)
			ws := make([]multicore.Workload, pop.Size())
			for i, w := range pop.Workloads {
				ws[i] = l.toMulticore(w)
			}
			var results []multicore.Result
			if warm := uint64(l.cfg.Warmup); warm > 0 {
				// Warmed protocol: each workload runs warm µops per core
				// before its measurement window (BADCO is cheap enough
				// that sharing the prefix across policies buys nothing).
				results = make([]multicore.Result, len(ws))
				errs := make([]error, len(ws))
				if err := multicore.RunBounded(ctx, len(ws), func(i int) {
					results[i], errs[i] = multicore.ApproximateWithWarmup(ctx, ws[i], models, policy, warm, 0)
				}); err != nil {
					return nil, err
				}
				if err := errors.Join(errs...); err != nil {
					return nil, fmt.Errorf("experiments: BADCO sweep (%d cores, %s): %w", cores, policy, err)
				}
			} else {
				var err error
				results, err = multicore.SweepApproximate(ctx, ws, models, policy, 0)
				if err != nil {
					return nil, fmt.Errorf("experiments: BADCO sweep (%d cores, %s): %w", cores, policy, err)
				}
			}
			table := make([][]float64, len(results))
			for i, r := range results {
				table[i] = r.IPC
			}
			stop := telemetry.FromContext(ctx).Time("store_save")
			l.saveCached("badco", cores, policy, table, 0)
			stop()
			return table, nil
		})
	})
}

// DetSample returns the population indices of the workloads simulated
// with the detailed model for the given core count: the full population
// for 2 cores (the paper simulates all 253 workloads with Zesto),
// otherwise a DetailedCount random subset (paper: 250 for 4 and 8 cores).
func (l *Lab) DetSample(cores int) []int {
	idx, _ := l.detSample.do(context.Background(), cores, func() ([]int, error) {
		n := l.Population(cores).Size()
		if cores <= 2 || n <= l.cfg.DetailedCount+3 {
			idx := make([]int, n)
			for i := range idx {
				idx[i] = i
			}
			return idx, nil
		}
		rng := rand.New(rand.NewSource(l.cfg.Seed + 100 + int64(cores)))
		return rng.Perm(n)[:l.cfg.DetailedCount], nil
	})
	return idx
}

// DetailedIPC returns the per-workload per-core IPC table over the
// DetSample workloads for (cores, policy), simulated with the detailed
// model. Row i corresponds to DetSample(cores)[i].
func (l *Lab) DetailedIPC(ctx context.Context, cores int, policy cache.PolicyName) ([][]float64, error) {
	return l.detIPC.do(ctx, ipcKey{cores, policy}, func() ([][]float64, error) {
		pop := l.Population(cores)
		sample := l.DetSample(cores)
		// Detailed keys always name the population the sample was drawn
		// from (DetSample is deterministic given the seed and
		// population): two configs with equal sample sizes but different
		// Pop4Limit/Pop8Size must not share a table, and stamping even
		// full-population tables keeps legacy un-stamped files — written
		// by versions that never read them back — permanently unloadable.
		universe := pop.Size()
		if table, ok := l.loadCached("detailed", cores, policy, len(sample), universe); ok {
			l.cacheHit("detailed")
			l.observe(ProductEvent{Sim: "detailed", Cores: cores, Policy: string(policy),
				Phase: "done", Cached: true, Rows: len(table)})
			return table, nil
		}
		l.cacheMiss("detailed")
		ev := ProductEvent{Sim: "detailed", Cores: cores, Policy: string(policy)}
		return observeRun(l, ctx, ev, func(t [][]float64) int { return len(t) }, func(ctx context.Context) ([][]float64, error) {
			if l.cfg.Sampling.Enabled() {
				table, ci, cv, err := l.detailedSampledSweep(ctx, cores, policy)
				if err != nil {
					return nil, err
				}
				stop := telemetry.FromContext(ctx).Time("store_save")
				l.saveCachedSampled("detailed", cores, policy, table, ci, cv, universe)
				stop()
				return table, nil
			}
			table, err := l.detailedSweep(ctx, cores, policy)
			if err != nil {
				return nil, err
			}
			stop := telemetry.FromContext(ctx).Time("store_save")
			l.saveCached("detailed", cores, policy, table, universe)
			stop()
			return table, nil
		})
	})
}

// detailedSampledSweep computes one sampled detailed IPC table plus its
// confidence and cv columns (see Config.Sampling).
func (l *Lab) detailedSampledSweep(ctx context.Context, cores int, policy cache.PolicyName) (table, ci, cv [][]float64, err error) {
	if l.cfg.Warmup > 0 {
		return nil, nil, nil, fmt.Errorf("experiments: sampling and warmup are mutually exclusive (the sampled driver owns its warmup structure)")
	}
	l.detSweeps.Add(1)
	pop := l.Population(cores)
	sample := l.DetSample(cores)
	ws := make([]multicore.Workload, len(sample))
	for i, wi := range sample {
		ws[i] = l.toMulticore(pop.Workloads[wi])
	}
	results, err := multicore.SweepDetailedSampled(ctx, ws, l.Provider(), policy, l.cfg.Sampling, 0)
	if err != nil {
		return nil, nil, nil, fmt.Errorf("experiments: sampled detailed sweep (%d cores, %s, %s): %w", cores, policy, l.cfg.Sampling, err)
	}
	table = make([][]float64, len(results))
	ci = make([][]float64, len(results))
	cv = make([][]float64, len(results))
	for i, r := range results {
		table[i] = r.IPC
		ci[i] = r.CIHalf
		cv[i] = r.CV
	}
	return table, ci, cv, nil
}

// detailedSweep computes one detailed IPC table. With a zero warmup it
// is the plain population sweep. With a positive warmup, a case-study
// policy is served from the grouped shared-warmup sweep (all policies at
// once, one warmed prefix per workload); any other policy warms alone.
func (l *Lab) detailedSweep(ctx context.Context, cores int, policy cache.PolicyName) ([][]float64, error) {
	warm := uint64(l.cfg.Warmup)
	if warm == 0 {
		l.detSweeps.Add(1)
		pop := l.Population(cores)
		sample := l.DetSample(cores)
		ws := make([]multicore.Workload, len(sample))
		for i, wi := range sample {
			ws[i] = l.toMulticore(pop.Workloads[wi])
		}
		// The sweep resolves traces lazily through the source: only
		// benchmarks that actually appear in the sample are ever built.
		results, err := multicore.SweepDetailed(ctx, ws, l.Provider(), policy, 0)
		if err != nil {
			return nil, fmt.Errorf("experiments: detailed sweep (%d cores, %s): %w", cores, policy, err)
		}
		table := make([][]float64, len(results))
		for i, r := range results {
			table[i] = r.IPC
		}
		return table, nil
	}
	for _, p := range Policies() {
		if p == policy {
			group, err := l.detShared.do(ctx, cores, func() (map[cache.PolicyName][][]float64, error) {
				return l.detailedSharedSweep(ctx, cores, Policies())
			})
			if err != nil {
				return nil, err
			}
			return group[policy], nil
		}
	}
	// Off the case-study list there is nothing to share the prefix with:
	// warm this policy's runs on their own.
	group, err := l.detailedSharedSweep(ctx, cores, []cache.PolicyName{policy})
	if err != nil {
		return nil, err
	}
	return group[policy], nil
}

// detailedSharedSweep runs the detailed sample once per workload to the
// warmup boundary and measures every requested policy from the shared
// prefix. The whole group counts as one sweep: warmup dominates the cost
// the per-policy tables used to pay k times over.
//
// The per-workload body must not call RunBounded (it already holds a
// slot), so the policy fan-out is sequential within each workload; the
// sample provides the parallelism, and peak memory holds one warmup
// checkpoint per simulation slot rather than per workload.
func (l *Lab) detailedSharedSweep(ctx context.Context, cores int, pols []cache.PolicyName) (map[cache.PolicyName][][]float64, error) {
	l.detSweeps.Add(1)
	pop := l.Population(cores)
	sample := l.DetSample(cores)
	prov := l.Provider()
	warm := uint64(l.cfg.Warmup)
	tables := make(map[cache.PolicyName][][]float64, len(pols))
	for _, p := range pols {
		tables[p] = make([][]float64, len(sample))
	}
	errs := make([]error, len(sample))
	if err := multicore.RunBounded(ctx, len(sample), func(i int) {
		w := l.toMulticore(pop.Workloads[sample[i]])
		cp, err := multicore.DetailedWarmup(ctx, w, prov, pols[0], warm)
		if err != nil {
			errs[i] = err
			return
		}
		for _, p := range pols {
			r, err := multicore.DetailedFrom(ctx, cp, prov, p, 0)
			if err != nil {
				errs[i] = err
				return
			}
			tables[p][i] = r.IPC
		}
	}); err != nil {
		return nil, err
	}
	if err := errors.Join(errs...); err != nil {
		return nil, fmt.Errorf("experiments: shared-warmup detailed sweep (%d cores): %w", cores, err)
	}
	return tables, nil
}

// cacheIdentity builds the identity half of a persisted IPC table. The
// sampling spec is folded in only for the detailed simulator — BADCO and
// reference tables never run sampled, and stamping them would fragment
// their caches for no reason.
func (l *Lab) cacheIdentity(sim string, cores int, policy cache.PolicyName, population, universe int) results.IPCTable {
	t := results.IPCTable{
		Simulator: sim, Cores: cores, Policy: string(policy),
		TraceLen: l.cfg.TraceLen, Population: population, Seed: l.cfg.Seed,
		Universe: universe, Source: l.sourceKey(), Warmup: l.cfg.Warmup,
	}
	if sim == "detailed" && l.cfg.Sampling.Enabled() {
		t.SampleUnit = int(l.cfg.Sampling.Unit)
		t.SampleWindow = int(l.cfg.Sampling.Window)
		t.SampleWarmup = int(l.cfg.Sampling.Warmup)
		t.SampleWarm = int(l.cfg.Sampling.Warm)
	}
	return t
}

// loadCached fetches a persisted IPC table if CacheDir is configured.
// universe is non-zero when the table covers a sample of a larger
// population (see DetailedIPC).
func (l *Lab) loadCached(sim string, cores int, policy cache.PolicyName, population, universe int) ([][]float64, bool) {
	store := l.resultStore()
	if store == nil {
		return nil, false
	}
	t, ok, err := store.Load(l.cacheIdentity(sim, cores, policy, population, universe))
	if err != nil || !ok {
		return nil, false
	}
	return t.IPC, true
}

// saveCached persists an IPC table if CacheDir is configured; failures
// are non-fatal (the table is still returned to the caller).
func (l *Lab) saveCached(sim string, cores int, policy cache.PolicyName, table [][]float64, universe int) {
	store := l.resultStore()
	if store == nil {
		return
	}
	t := l.cacheIdentity(sim, cores, policy, len(table), universe)
	t.IPC = table
	_ = store.Save(&t)
}

// saveCachedSampled persists a sampled IPC table together with its
// confidence and cv columns; like saveCached, failures are non-fatal.
func (l *Lab) saveCachedSampled(sim string, cores int, policy cache.PolicyName, table, ci, cv [][]float64, universe int) {
	store := l.resultStore()
	if store == nil {
		return
	}
	t := l.cacheIdentity(sim, cores, policy, len(table), universe)
	t.IPC, t.CI, t.CV = table, ci, cv
	_ = store.Save(&t)
}

// RefIPC returns the per-benchmark single-thread reference IPC on the
// cores-sized machine (benchmark alone, LRU uncore, BADCO), used by the
// speedup metrics WSU and HSU.
func (l *Lab) RefIPC(ctx context.Context, cores int) ([]float64, error) {
	return l.refIPC.do(ctx, cores, func() ([]float64, error) {
		return observeRun(l, ctx, ProductEvent{Sim: "ref", Cores: cores},
			func(v []float64) int { return len(v) },
			func(ctx context.Context) ([]float64, error) { return l.refIPCCompute(ctx, cores) })
	})
}

// refIPCCompute is the RefIPC computation behind its memo and observer.
func (l *Lab) refIPCCompute(ctx context.Context, cores int) ([]float64, error) {
	models, err := l.Models(ctx)
	if err != nil {
		return nil, err
	}
	names := l.Names()
	// Alone on the same uncore configuration as the K-core machine:
	// the uncore is built for `cores` but only core 0 is populated.
	// The runs are independent, so they draw on the shared
	// simulation budget like the sweeps do.
	out := make([]float64, len(names))
	errs := make([]error, len(names))
	if err := multicore.RunBounded(ctx, len(names), func(i int) {
		out[i], errs[i] = aloneOn(cores, multicore.Workload{names[i]}, models)
	}); err != nil {
		return nil, err
	}
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	return out, nil
}

// aloneOn runs one benchmark alone against a cores-sized LRU uncore with
// BADCO and returns its IPC.
func aloneOn(cores int, w multicore.Workload, models map[string]*badco.Model) (float64, error) {
	cfg := uncoreConfigFor(cores)
	unc, err := newUncore(cfg)
	if err != nil {
		return 0, err
	}
	m := models[w[0]]
	ma, err := badco.NewMachine(0, m, unc)
	if err != nil {
		return 0, err
	}
	end := ma.RunIterations(1)
	if end == 0 {
		return 0, fmt.Errorf("experiments: zero cycles for %s", w[0])
	}
	return float64(m.TraceLen) / float64(end), nil
}

// RefTable expands per-benchmark reference IPCs into a per-workload
// per-core table aligned with the population.
func (l *Lab) RefTable(ctx context.Context, cores int) ([][]float64, error) {
	pop := l.Population(cores)
	ref, err := l.RefIPC(ctx, cores)
	if err != nil {
		return nil, err
	}
	table := make([][]float64, pop.Size())
	for i, w := range pop.Workloads {
		row := make([]float64, len(w))
		for k, b := range w {
			row[k] = ref[b]
		}
		table[i] = row
	}
	return table, nil
}

// refRows picks the reference rows for a subset of population indices.
func refRows(ref [][]float64, idx []int) [][]float64 {
	out := make([][]float64, len(idx))
	for i, j := range idx {
		out[i] = ref[j]
	}
	return out
}

// Diffs returns the per-workload differences d(w) between policies X and
// Y under the metric, over the BADCO population table (the CLT-domain
// values driving the confidence machinery).
func (l *Lab) Diffs(ctx context.Context, cores int, m metrics.Metric, x, y cache.PolicyName) ([]float64, error) {
	ref, err := l.RefTable(ctx, cores)
	if err != nil {
		return nil, err
	}
	ipcX, err := l.BadcoIPC(ctx, cores, x)
	if err != nil {
		return nil, err
	}
	ipcY, err := l.BadcoIPC(ctx, cores, y)
	if err != nil {
		return nil, err
	}
	return m.Diffs(m.Throughputs(ipcX, ref), m.Throughputs(ipcY, ref)), nil
}

// DetailedDiffs is Diffs over the detailed-simulator sample.
func (l *Lab) DetailedDiffs(ctx context.Context, cores int, m metrics.Metric, x, y cache.PolicyName) ([]float64, error) {
	refAll, err := l.RefTable(ctx, cores)
	if err != nil {
		return nil, err
	}
	ref := refRows(refAll, l.DetSample(cores))
	ipcX, err := l.DetailedIPC(ctx, cores, x)
	if err != nil {
		return nil, err
	}
	ipcY, err := l.DetailedIPC(ctx, cores, y)
	if err != nil {
		return nil, err
	}
	return m.Diffs(m.Throughputs(ipcX, ref), m.Throughputs(ipcY, ref)), nil
}

// BadcoDiffsAt is Diffs restricted to a subset of population indices
// (e.g. the detailed sample, for Fig. 4's middle bars).
func (l *Lab) BadcoDiffsAt(ctx context.Context, cores int, m metrics.Metric, x, y cache.PolicyName, idx []int) ([]float64, error) {
	all, err := l.Diffs(ctx, cores, m, x, y)
	if err != nil {
		return nil, err
	}
	out := make([]float64, len(idx))
	for i, j := range idx {
		out[i] = all[j]
	}
	return out, nil
}

// MPKI returns per-benchmark LLC misses per kilo-instruction, measured
// with the detailed simulator running each benchmark alone on the 1-core
// LRU configuration (the Table IV measurement).
func (l *Lab) MPKI(ctx context.Context) ([]float64, error) {
	return l.mpki.get(ctx, func() ([]float64, error) {
		return observeRun(l, ctx, ProductEvent{Sim: "mpki"},
			func(v []float64) int { return len(v) },
			func(ctx context.Context) ([]float64, error) { return l.mpkiCompute(ctx) })
	})
}

// mpkiCompute is the MPKI measurement behind its memo and observer.
func (l *Lab) mpkiCompute(ctx context.Context) ([]float64, error) {
	names := l.Names()
	prov := l.Provider()
	out := make([]float64, len(names))
	errs := make([]error, len(names))
	if err := multicore.RunBounded(ctx, len(names), func(i int) {
		tr, err := prov.Trace(ctx, names[i])
		if err != nil {
			errs[i] = err
			return
		}
		defer prov.Release(names[i])
		out[i], errs[i] = measureMPKI(tr)
	}); err != nil {
		return nil, err
	}
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	return out, nil
}
