package experiments

import (
	"fmt"
	"io"
	"strings"

	"mcbench/internal/cache"
	"mcbench/internal/cpu"
	"mcbench/internal/trace"
	"mcbench/internal/uncore"
)

// Table is a printable experiment result: a title, column headers and
// rows of cells. Cells are pre-formatted strings so each experiment
// controls its own precision.
type Table struct {
	Title   string
	Columns []string
	Rows    [][]string
	// Notes carries paper-vs-measured commentary lines.
	Notes []string
}

// AddRow appends a row from formatted values.
func (t *Table) AddRow(cells ...string) { t.Rows = append(t.Rows, cells) }

// Fprint renders the table with aligned columns.
func (t *Table) Fprint(w io.Writer) {
	fmt.Fprintf(w, "== %s ==\n", t.Title)
	widths := make([]int, len(t.Columns))
	for i, c := range t.Columns {
		widths[i] = len(c)
	}
	for _, row := range t.Rows {
		for i, cell := range row {
			if i < len(widths) && len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	printRow := func(cells []string) {
		parts := make([]string, len(cells))
		for i, c := range cells {
			w := 0
			if i < len(widths) {
				w = widths[i]
			}
			parts[i] = fmt.Sprintf("%-*s", w, c)
		}
		fmt.Fprintln(w, strings.TrimRight(strings.Join(parts, "  "), " "))
	}
	printRow(t.Columns)
	printRow(dashes(widths))
	for _, row := range t.Rows {
		printRow(row)
	}
	for _, n := range t.Notes {
		fmt.Fprintf(w, "note: %s\n", n)
	}
	fmt.Fprintln(w)
}

// String renders the table to a string.
func (t *Table) String() string {
	var sb strings.Builder
	t.Fprint(&sb)
	return sb.String()
}

func dashes(widths []int) []string {
	out := make([]string, len(widths))
	for i, w := range widths {
		out[i] = strings.Repeat("-", w)
	}
	return out
}

// f2, f3, f4 format floats with fixed precision.
func f2(v float64) string { return fmt.Sprintf("%.2f", v) }
func f3(v float64) string { return fmt.Sprintf("%.3f", v) }
func f4(v float64) string { return fmt.Sprintf("%.4f", v) }

// uncoreConfigFor builds the scaled Table II uncore configuration with
// the LRU baseline policy.
func uncoreConfigFor(cores int) uncore.Config {
	return uncore.ConfigFor(cores, cache.LRU)
}

// newUncore wraps uncore.New.
func newUncore(cfg uncore.Config) (*uncore.Uncore, error) { return uncore.New(cfg) }

// measureMPKI runs one benchmark alone on the 1-core LRU uncore with the
// detailed core and returns its steady-state memory intensity: LLC demand
// misses plus prefetch fills (i.e. off-chip line fetches) per
// kilo-instruction, measured on a second, warmed trace iteration so that
// cold misses — which dominate at our reduced trace scale — are excluded.
// Counting fills rather than only demand misses keeps prefetch-friendly
// streams (libquantum-style) classified by their true memory traffic.
func measureMPKI(tr *trace.Trace) (float64, error) {
	unc, err := uncore.New(uncore.ConfigFor(1, cache.LRU))
	if err != nil {
		return 0, err
	}
	core, err := cpu.New(0, cpu.DefaultConfig(), tr, unc)
	if err != nil {
		return 0, err
	}
	core.Run(tr.Len()) // warm-up iteration
	unc.ResetStats()
	core.Run(tr.Len())
	s := unc.Stats()
	return float64(s.DemandMisses+s.PrefetchIssued) * 1000 / float64(tr.Len()), nil
}
