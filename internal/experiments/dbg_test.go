package experiments

import (
	"fmt"
	"testing"

	"mcbench/internal/metrics"
	"mcbench/internal/stats"
)

func TestDebugInvCV(t *testing.T) {
	l := NewLab(QuickConfig())
	for _, pair := range PolicyPairs() {
		d := l.Diffs(4, metrics.WSU, pair[0], pair[1])
		fmt.Printf("%-5s>%-5s  1/cv=%+.3f  mean=%+.5f\n", pair[0], pair[1], stats.InvCoefVar(d), stats.Mean(d))
	}
}
