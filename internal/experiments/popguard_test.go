package experiments

import (
	"testing"

	"mcbench/internal/bench"
)

// TestPopulationFallbackGuard pins the enumeration guard: with no
// explicit population limit configured, a lab over a large scaled
// source samples fallbackPopulation workloads instead of materialising
// an intractable full enumeration (C(513,2) ≈ 131k at 2 cores, billions
// at 4). Pure combinatorics — no simulation — so it runs un-gated.
func TestPopulationFallbackGuard(t *testing.T) {
	cfg := QuickConfig()
	cfg.Pop4Limit = 0
	cfg.PopLimit = 0
	src, err := bench.NewScaled(512, 1)
	if err != nil {
		t.Fatal(err)
	}
	cfg.Source = src
	l := NewLab(cfg)
	for _, cores := range []int{2, 3} {
		if got := l.Population(cores).Size(); got != fallbackPopulation {
			t.Fatalf("scaled:512 %d-core population %d, want fallback %d", cores, got, fallbackPopulation)
		}
	}
	// An explicit PopLimit still wins over the fallback.
	cfg.PopLimit = 77
	if got := NewLab(cfg).Population(2).Size(); got != 77 {
		t.Fatalf("PopLimit ignored: population %d, want 77", got)
	}
	// Tractable populations still enumerate exactly as before.
	suiteCfg := QuickConfig()
	if got := NewLab(suiteCfg).Population(2).Size(); got != 253 {
		t.Fatalf("suite 2-core population %d, want 253", got)
	}
}
