package experiments

import (
	"context"
	"fmt"
	"math/rand"

	"mcbench/internal/cache"
	"mcbench/internal/metrics"
	"mcbench/internal/sampling"
)

// Ablations for the design choices DESIGN.md calls out: the workload-
// stratification parameters (WT, TSD) and the choice of classification
// for benchmark stratification. These go beyond the paper's figures but
// use the same machinery.

// ablationSampleSize is the fixed sample size of the two sampling
// ablations (the regime where detailed-simulation budgets live).
const ablationSampleSize = 20

func init() {
	Register(Spec{
		Name:     "ablation-strata",
		Synopsis: "WT/TSD sensitivity of workload stratification",
		Group:    GroupExtension,
		Requests: func(l *Lab, p Params) []Request { return l.AblationRequests(p.cores()) },
		Run: func(ctx context.Context, l *Lab, p Params) (*Table, error) {
			return l.AblationStrataParams(ctx, p.cores(), ablationSampleSize)
		},
	})
	Register(Spec{
		Name:     "ablation-classes",
		Synopsis: "value of the MPKI classes for benchmark stratification",
		Group:    GroupExtension,
		Requests: func(l *Lab, p Params) []Request { return l.AblationRequests(p.cores()) },
		Run: func(ctx context.Context, l *Lab, p Params) (*Table, error) {
			return l.AblationClassification(ctx, p.cores(), ablationSampleSize)
		},
	})
	Register(Spec{
		Name:     "ablation-metrics",
		Synopsis: "required sample size per throughput metric (incl. GMSU)",
		Group:    GroupExtension,
		Requests: func(l *Lab, p Params) []Request { return l.AblationRequests(p.cores()) },
		Run: func(ctx context.Context, l *Lab, p Params) (*Table, error) {
			return l.AblationMetricChoice(ctx, p.cores())
		},
	})
}

// AblationRequests declares the inputs shared by the three ablation
// tables: every policy pair's BADCO tables (AblationMetricChoice sweeps
// all pairs), the reference IPCs, and the MPKI classes.
func (l *Lab) AblationRequests(cores int) []Request {
	return append(badcoSet(cores, Policies()),
		Request{Sim: SimRef, Cores: cores},
		Request{Sim: SimMPKI})
}

// AblationStrataParams measures, for the near-tie policy pair at a small
// sample size, how the workload-stratification parameters trade stratum
// count against confidence. The paper fixes WT=50, TSD=0.001; this table
// shows the neighbourhood.
func (l *Lab) AblationStrataParams(ctx context.Context, cores, sampleSize int) (*Table, error) {
	d, err := l.Diffs(ctx, cores, metrics.IPCT, cache.DIP, cache.DRRIP)
	if err != nil {
		return nil, err
	}
	t := &Table{
		Title: fmt.Sprintf("Ablation: workload-stratification parameters (DRRIP vs DIP, IPCT, %d cores, W=%d)",
			cores, sampleSize),
		Columns: []string{"WT", "TSD", "strata", "confidence", "vs random"},
		Notes: []string{
			"paper's operating point: WT=50, TSD=0.001",
			"too-large TSD collapses to one stratum (= random); too-small WT wastes draws on tiny strata",
		},
	}
	rng := rand.New(rand.NewSource(l.cfg.Seed + 900))
	random := sampling.EmpiricalConfidence(rng, d,
		sampling.NewSimpleRandom(len(d)), sampleSize, l.cfg.Fig6Trials)
	for _, wt := range []int{10, 25, 50, 100} {
		for _, tsd := range []float64{0.0002, 0.001, 0.005, 0.05} {
			s := sampling.NewWorkloadStrata(d, sampling.WorkloadStrataConfig{MinSize: wt, MaxStdDev: tsd})
			conf := sampling.EmpiricalConfidence(rng, d, s, sampleSize, l.cfg.Fig6Trials)
			t.AddRow(fmt.Sprint(wt), fmt.Sprint(tsd), fmt.Sprint(sampling.NumStrata(s)),
				f3(conf), f3(conf-random))
		}
	}
	return t, nil
}

// AblationClassification compares benchmark stratification built from the
// measured MPKI classes against (a) a random class assignment and (b) no
// classes at all (plain random sampling), quantifying how much the
// "authors' intuition" the paper discusses is worth.
func (l *Lab) AblationClassification(ctx context.Context, cores, sampleSize int) (*Table, error) {
	pop := l.Population(cores)
	d, err := l.Diffs(ctx, cores, metrics.IPCT, cache.LRU, cache.DRRIP)
	if err != nil {
		return nil, err
	}
	classes, err := l.Classes(ctx)
	if err != nil {
		return nil, err
	}
	t := &Table{
		Title: fmt.Sprintf("Ablation: class definitions for benchmark stratification (DRRIP vs LRU, IPCT, %d cores, W=%d)",
			cores, sampleSize),
		Columns: []string{"classes", "strata", "confidence"},
		Notes: []string{
			"the paper: benchmark stratification helps only to the extent the classes predict behaviour",
		},
	}
	rng := rand.New(rand.NewSource(l.cfg.Seed + 901))
	trials := l.cfg.Fig6Trials

	random := sampling.NewSimpleRandom(len(d))
	t.AddRow("none (random)", "1", f3(sampling.EmpiricalConfidence(rng, d, random, sampleSize, trials)))

	mpki := sampling.NewBenchmarkStrata(pop, classes, sampling.NumClasses)
	t.AddRow("measured MPKI", fmt.Sprint(sampling.NumStrata(mpki)),
		f3(sampling.EmpiricalConfidence(rng, d, mpki, sampleSize, trials)))

	shuffled := append([]int(nil), classes...)
	rng.Shuffle(len(shuffled), func(i, j int) { shuffled[i], shuffled[j] = shuffled[j], shuffled[i] })
	scrambled := sampling.NewBenchmarkStrata(pop, shuffled, sampling.NumClasses)
	t.AddRow("shuffled classes", fmt.Sprint(sampling.NumStrata(scrambled)),
		f3(sampling.EmpiricalConfidence(rng, d, scrambled, sampleSize, trials)))

	return t, nil
}

// AblationMetricChoice shows the paper's Section V-C point numerically:
// the same policy pair needs different random-sample sizes under
// different metrics.
func (l *Lab) AblationMetricChoice(ctx context.Context, cores int) (*Table, error) {
	t := &Table{
		Title:   fmt.Sprintf("Ablation: required random-sample size per metric (W = 8*cv^2, %d cores)", cores),
		Columns: []string{"pair (X>Y)", "IPCT", "WSU", "HSU", "GMSU"},
		Notes: []string{
			"paper (Sec. V-C): a fixed random sample must be sized for the most demanding metric in use",
		},
	}
	for _, pair := range PolicyPairs() {
		row := []string{fmt.Sprintf("%s>%s", pair[0], pair[1])}
		for _, m := range []metrics.Metric{metrics.IPCT, metrics.WSU, metrics.HSU, metrics.GMSU} {
			d, err := l.Diffs(ctx, cores, m, pair[0], pair[1])
			if err != nil {
				return nil, err
			}
			row = append(row, fmt.Sprint(sampling.RequiredSampleSize(d)))
		}
		t.AddRow(row...)
	}
	return t, nil
}
