package experiments

import (
	"context"
	"sort"

	"mcbench/internal/sampling"
)

func init() {
	Register(Spec{
		Name:     "table4",
		Synopsis: "benchmark MPKI classification",
		Group:    GroupPaper,
		Requests: func(l *Lab, p Params) []Request { return l.TableIVRequests() },
		Run: func(ctx context.Context, l *Lab, p Params) (*Table, error) {
			return l.TableIV(ctx)
		},
	})
}

// paperClasses is Table IV of the paper: the memory-intensity class of
// each benchmark.
var paperClasses = map[string]sampling.Class{
	"povray": sampling.LowMPKI, "gromacs": sampling.LowMPKI, "milc": sampling.LowMPKI,
	"calculix": sampling.LowMPKI, "namd": sampling.LowMPKI, "dealII": sampling.LowMPKI,
	"perlbench": sampling.LowMPKI, "gobmk": sampling.LowMPKI, "h264ref": sampling.LowMPKI,
	"hmmer": sampling.LowMPKI, "sjeng": sampling.LowMPKI,
	"bzip2": sampling.MediumMPKI, "gcc": sampling.MediumMPKI, "astar": sampling.MediumMPKI,
	"zeusmp": sampling.MediumMPKI, "cactusADM": sampling.MediumMPKI,
	"libquantum": sampling.HighMPKI, "omnetpp": sampling.HighMPKI, "leslie3d": sampling.HighMPKI,
	"bwaves": sampling.HighMPKI, "mcf": sampling.HighMPKI, "soplex": sampling.HighMPKI,
}

// PaperClass returns the Table IV class of a benchmark.
func PaperClass(name string) sampling.Class { return paperClasses[name] }

// Classes returns the measured class of every benchmark (indexed like
// Names()), the classification actually used by benchmark stratification.
func (l *Lab) Classes(ctx context.Context) ([]int, error) {
	mpki, err := l.MPKI(ctx)
	if err != nil {
		return nil, err
	}
	return sampling.ScaledThresholds().ClassifyAll(mpki), nil
}

// TableIVRequests declares Table IV's one expensive product: the MPKI
// measurement (22 detailed alone runs).
func (l *Lab) TableIVRequests() []Request {
	return []Request{{Sim: SimMPKI}}
}

// TableIV reproduces Table IV: the classification of the 22 benchmarks by
// measured LLC MPKI (Low < 1, Medium < 5, High >= 5).
func (l *Lab) TableIV(ctx context.Context) (*Table, error) {
	names := l.Names()
	mpki, err := l.MPKI(ctx)
	if err != nil {
		return nil, err
	}
	th := sampling.ScaledThresholds()

	type row struct {
		name  string
		mpki  float64
		class sampling.Class
	}
	rows := make([]row, len(names))
	for i, n := range names {
		rows[i] = row{n, mpki[i], th.Classify(mpki[i])}
	}
	sort.Slice(rows, func(a, b int) bool {
		if rows[a].class != rows[b].class {
			return rows[a].class < rows[b].class
		}
		return rows[a].mpki < rows[b].mpki
	})

	t := &Table{
		Title:   "Table IV: benchmark classification by LLC MPKI (alone, 1-core, LRU)",
		Columns: []string{"benchmark", "MPKI", "class", "paper class", "match"},
	}
	matches := 0
	for _, r := range rows {
		paper := paperClasses[r.name]
		match := "yes"
		if paper != r.class {
			match = "NO"
		} else {
			matches++
		}
		t.AddRow(r.name, f2(r.mpki), r.class.String(), paper.String(), match)
	}
	t.Notes = append(t.Notes,
		f2(float64(matches)*100/float64(len(rows)))+"% of benchmarks in the paper's class",
		"paper: Low={povray gromacs milc calculix namd dealII perlbench gobmk h264ref hmmer sjeng}, "+
			"Medium={bzip2 gcc astar zeusmp cactusADM}, High={libquantum omnetpp leslie3d bwaves mcf soplex}")
	return t, nil
}
