package experiments

// The campaign runner. Every experiment declares the expensive memoized
// products it reads — population IPC tables, reference IPCs, the MPKI
// measurement — as a []Request (the XxxRequests methods next to each
// experiment), and Warm precomputes a whole plan with bounded
// parallelism. Population sweeps already parallelise across workloads
// internally; Warm adds the campaign-level axis, so different tables
// build concurrently and a full paper reproduction saturates the host.

import (
	"runtime"
	"sync"

	"mcbench/internal/cache"
)

// Simulator names the engine (or measurement) behind a warmed product.
type Simulator string

const (
	// SimBadco is a BADCO population IPC table (BadcoIPC).
	SimBadco Simulator = "badco"
	// SimDetailed is a detailed-model IPC table over the detailed
	// sample (DetailedIPC).
	SimDetailed Simulator = "detailed"
	// SimRef is the per-benchmark alone reference IPC vector (RefIPC).
	SimRef Simulator = "ref"
	// SimMPKI is the per-benchmark alone MPKI measurement (MPKI);
	// Cores and Policy are ignored.
	SimMPKI Simulator = "mpki"
	// SimModels is the BADCO model set (Models); Cores and Policy are
	// ignored. Table III and the sim subcommand need the models without
	// any population table.
	SimModels Simulator = "models"
)

// Request names one memoized Lab product a campaign needs. Policy is
// meaningful only for SimBadco and SimDetailed; Cores only for those and
// SimRef.
type Request struct {
	Sim    Simulator
	Cores  int
	Policy cache.PolicyName
}

// normalize zeroes the fields a request's simulator ignores, so that
// equivalent requests deduplicate.
func (r Request) normalize() Request {
	switch r.Sim {
	case SimMPKI, SimModels:
		r.Cores, r.Policy = 0, ""
	case SimRef:
		r.Policy = ""
	}
	return r
}

// fulfill computes the requested product (blocking until it is memoized).
func (l *Lab) fulfill(r Request) {
	switch r.Sim {
	case SimBadco:
		l.BadcoIPC(r.Cores, r.Policy)
	case SimDetailed:
		l.DetailedIPC(r.Cores, r.Policy)
	case SimRef:
		l.RefIPC(r.Cores)
	case SimMPKI:
		l.MPKI()
	case SimModels:
		l.Models()
	}
}

// Warm precomputes every requested product with at most workers
// concurrent builds (workers <= 0 means GOMAXPROCS). The plan is
// deduplicated, and products already memoized return immediately, so
// warming overlapping plans is free. It returns the number of distinct
// products warmed.
//
// Shared prerequisites (traces, BADCO models) are not built eagerly:
// the first worker to need them builds them behind their single-flight
// guard — internally parallel — while the rest block, and a plan fully
// served by the persistent cache never builds them at all.
//
// The workers are coordinators, not the CPU bound: every sweep they
// trigger draws simulation slots from multicore's process-wide budget
// (see multicore.RunBounded), so campaign-level and per-sweep
// parallelism compose without multiplying.
func (l *Lab) Warm(plan []Request, workers int) int {
	seen := make(map[Request]bool, len(plan))
	var uniq []Request
	for _, r := range plan {
		r = r.normalize()
		if seen[r] {
			continue
		}
		seen[r] = true
		uniq = append(uniq, r)
	}
	if len(uniq) == 0 {
		return 0
	}
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	var wg sync.WaitGroup
	sem := make(chan struct{}, workers)
	for _, r := range uniq {
		sem <- struct{}{} // acquire before spawning: at most `workers` goroutines exist
		wg.Add(1)
		go func(r Request) {
			defer wg.Done()
			defer func() { <-sem }()
			l.fulfill(r)
		}(r)
	}
	wg.Wait()
	return len(uniq)
}

// badcoSet expands a policy list into BADCO table requests at one core
// count.
func badcoSet(cores int, pols []cache.PolicyName) []Request {
	out := make([]Request, 0, len(pols))
	for _, p := range pols {
		out = append(out, Request{Sim: SimBadco, Cores: cores, Policy: p})
	}
	return out
}

// detailedSet expands a policy list into detailed table requests at one
// core count.
func detailedSet(cores int, pols []cache.PolicyName) []Request {
	out := make([]Request, 0, len(pols))
	for _, p := range pols {
		out = append(out, Request{Sim: SimDetailed, Cores: cores, Policy: p})
	}
	return out
}

// pairPolicies flattens policy pairs into the distinct policies they
// mention.
func pairPolicies(pairs [][2]cache.PolicyName) []cache.PolicyName {
	seen := map[cache.PolicyName]bool{}
	var out []cache.PolicyName
	for _, pr := range pairs {
		for _, p := range pr {
			if !seen[p] {
				seen[p] = true
				out = append(out, p)
			}
		}
	}
	return out
}

// CampaignPlan aggregates the requests of the named experiments (the
// names cmd/mcbench accepts; "all" expands to the paper's full set).
// cores is the -cores flag value used by the single-core-count
// experiments. Names without expensive prerequisites (fig1, config,
// cophase, predictors, profiles) contribute nothing; unknown names are
// ignored — running the experiment itself reports them.
func (l *Lab) CampaignPlan(names []string, cores int) []Request {
	var plan []Request
	for _, name := range names {
		switch name {
		case "all":
			plan = append(plan, l.CampaignPlan(AllExperiments(), cores)...)
		case "fig2":
			plan = append(plan, l.Fig2Requests(nil)...)
		case "fig3":
			plan = append(plan, l.Fig3Requests(nil)...)
		case "fig4":
			plan = append(plan, l.Fig4Requests(cores)...)
		case "fig5":
			plan = append(plan, l.Fig5Requests(cores)...)
		case "fig6":
			plan = append(plan, l.Fig6Requests(cores)...)
		case "fig7":
			plan = append(plan, l.Fig7Requests(nil)...)
		case "table3":
			plan = append(plan, l.TableIIIRequests()...)
		case "table4":
			plan = append(plan, l.TableIVRequests()...)
		case "overhead":
			plan = append(plan, l.OverheadRequests(cores)...)
		case "ablation-strata", "ablation-classes", "ablation-metrics":
			plan = append(plan, l.AblationRequests(cores)...)
		case "speedup":
			plan = append(plan, l.SpeedupRequests(cores)...)
		case "guideline":
			plan = append(plan, l.GuidelineRequests(cores)...)
		case "methods":
			plan = append(plan, l.ExtMethodsRequests(cores)...)
		case "normality":
			plan = append(plan, l.NormalityRequests(cores)...)
		case "policies":
			plan = append(plan, l.ExtPoliciesRequests(cores)...)
		}
	}
	return plan
}

// AllExperiments lists the paper experiments "all" expands to, in run
// order.
func AllExperiments() []string {
	return []string{
		"config", "fig1", "table4", "table3", "fig2", "fig3",
		"fig4", "fig5", "fig6", "fig7", "overhead",
	}
}
