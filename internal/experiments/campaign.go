package experiments

// The campaign runner. Every experiment declares the expensive memoized
// products it reads — population IPC tables, reference IPCs, the MPKI
// measurement — via its registry Requests method, and Warm precomputes a
// whole plan with bounded parallelism. Population sweeps already
// parallelise across workloads internally; Warm adds the campaign-level
// axis, so different tables build concurrently and a full paper
// reproduction saturates the host.

import (
	"context"
	"errors"
	"runtime"
	"sync"

	"mcbench/internal/cache"
	"mcbench/internal/results"
)

// Simulator names the engine (or measurement) behind a warmed product.
type Simulator string

const (
	// SimBadco is a BADCO population IPC table (BadcoIPC).
	SimBadco Simulator = "badco"
	// SimDetailed is a detailed-model IPC table over the detailed
	// sample (DetailedIPC).
	SimDetailed Simulator = "detailed"
	// SimRef is the per-benchmark alone reference IPC vector (RefIPC).
	SimRef Simulator = "ref"
	// SimMPKI is the per-benchmark alone MPKI measurement (MPKI);
	// Cores and Policy are ignored.
	SimMPKI Simulator = "mpki"
	// SimModels is the BADCO model set (Models); Cores and Policy are
	// ignored. Table III and the sim subcommand need the models without
	// any population table.
	SimModels Simulator = "models"
)

// Request names one memoized Lab product a campaign needs. Policy is
// meaningful only for SimBadco and SimDetailed; Cores only for those and
// SimRef.
type Request struct {
	Sim    Simulator
	Cores  int
	Policy cache.PolicyName
}

// Normalized returns the request with the fields its simulator ignores
// zeroed — the identity Warm dedups by and ProductEvents report. The
// serve subsystem keys its event routing by it.
func (r Request) Normalized() Request { return r.normalize() }

// normalize zeroes the fields a request's simulator ignores, so that
// equivalent requests deduplicate.
func (r Request) normalize() Request {
	switch r.Sim {
	case SimMPKI, SimModels:
		r.Cores, r.Policy = 0, ""
	case SimRef:
		r.Policy = ""
	}
	return r
}

// fulfill computes the requested product (blocking until it is memoized).
func (l *Lab) fulfill(ctx context.Context, r Request) error {
	var err error
	switch r.Sim {
	case SimBadco:
		_, err = l.BadcoIPC(ctx, r.Cores, r.Policy)
	case SimDetailed:
		_, err = l.DetailedIPC(ctx, r.Cores, r.Policy)
	case SimRef:
		_, err = l.RefIPC(ctx, r.Cores)
	case SimMPKI:
		_, err = l.MPKI(ctx)
	case SimModels:
		_, err = l.Models(ctx)
	}
	return err
}

// Warm precomputes every requested product with at most workers
// concurrent builds (workers <= 0 means GOMAXPROCS). The plan is
// deduplicated, and products already memoized return immediately, so
// warming overlapping plans is free. It returns the number of distinct
// products the plan named.
//
// Cancelling the context stops dispatching new products, interrupts the
// in-flight sweeps, waits for every worker to drain (no goroutine
// leaks), and returns the context's error. Products fully warmed before
// the cancellation stay memoized (and persisted when CacheDir is set),
// so an interrupted campaign resumes where it left off.
//
// Shared prerequisites (traces, BADCO models) are not built eagerly:
// the first worker to need them builds them behind their single-flight
// guard — internally parallel — while the rest block, and a plan fully
// served by the persistent cache never builds them at all.
//
// The workers are coordinators, not the CPU bound: every sweep they
// trigger draws simulation slots from multicore's process-wide budget
// (see multicore.RunBounded), so campaign-level and per-sweep
// parallelism compose without multiplying.
func (l *Lab) Warm(ctx context.Context, plan []Request, workers int) (int, error) {
	seen := make(map[Request]bool, len(plan))
	var uniq []Request
	for _, r := range plan {
		r = r.normalize()
		if seen[r] {
			continue
		}
		seen[r] = true
		uniq = append(uniq, r)
	}
	if len(uniq) == 0 {
		return 0, ctx.Err()
	}
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	var (
		wg   sync.WaitGroup
		mu   sync.Mutex
		errs []error
	)
	sem := make(chan struct{}, workers)
	done := ctx.Done()
loop:
	for _, r := range uniq {
		// Acquire before spawning: at most `workers` goroutines exist.
		select {
		case <-done:
			break loop
		case sem <- struct{}{}:
		}
		wg.Add(1)
		go func(r Request) {
			defer wg.Done()
			defer func() { <-sem }()
			if err := l.fulfill(ctx, r); err != nil {
				mu.Lock()
				errs = append(errs, err)
				mu.Unlock()
			}
		}(r)
	}
	wg.Wait()
	if err := ctx.Err(); err != nil {
		return len(uniq), err
	}
	return len(uniq), errors.Join(errs...)
}

// KeyedRequest pairs a campaign request with the content key of the
// persisted table it produces — the shard key the fleet partitions by.
type KeyedRequest struct {
	Req Request
	Key string
}

// ProductKey returns the persistent-store content key the request's
// product is saved under, given this lab's configuration. Only the
// population IPC tables — SimBadco and SimDetailed with a positive core
// count — have one: the reference/MPKI/model products are in-memory
// memos every node rebuilds cheaply on its own. The key is a pure
// function of the lab config, so every fleet node computes identical
// keys without coordination.
func (l *Lab) ProductKey(r Request) (string, bool) {
	r = r.normalize()
	if r.Cores <= 0 {
		return "", false
	}
	proto := results.IPCTable{
		Cores: r.Cores, Policy: string(r.Policy),
		TraceLen: l.cfg.TraceLen, Seed: l.cfg.Seed,
		Source: l.sourceKey(), Warmup: l.cfg.Warmup,
	}
	switch r.Sim {
	case SimBadco:
		proto.Simulator = "badco"
		proto.Population = l.Population(r.Cores).Size()
	case SimDetailed:
		proto.Simulator = "detailed"
		proto.Population = len(l.DetSample(r.Cores))
		proto.Universe = l.Population(r.Cores).Size()
	default:
		return "", false
	}
	return proto.Key(), true
}

// PartitionPlan reduces a campaign plan to its shardable products:
// normalized, deduplicated, and keyed by content identity. The fleet
// coordinator partitions the result across workers by rendezvous-hashing
// each Key; requests without a content key stay local.
func (l *Lab) PartitionPlan(plan []Request) []KeyedRequest {
	seen := make(map[Request]bool, len(plan))
	var out []KeyedRequest
	for _, r := range plan {
		r = r.normalize()
		if seen[r] {
			continue
		}
		seen[r] = true
		if key, ok := l.ProductKey(r); ok {
			out = append(out, KeyedRequest{Req: r, Key: key})
		}
	}
	return out
}

// badcoSet expands a policy list into BADCO table requests at one core
// count.
func badcoSet(cores int, pols []cache.PolicyName) []Request {
	out := make([]Request, 0, len(pols))
	for _, p := range pols {
		out = append(out, Request{Sim: SimBadco, Cores: cores, Policy: p})
	}
	return out
}

// detailedSet expands a policy list into detailed table requests at one
// core count.
func detailedSet(cores int, pols []cache.PolicyName) []Request {
	out := make([]Request, 0, len(pols))
	for _, p := range pols {
		out = append(out, Request{Sim: SimDetailed, Cores: cores, Policy: p})
	}
	return out
}

// pairPolicies flattens policy pairs into the distinct policies they
// mention.
func pairPolicies(pairs [][2]cache.PolicyName) []cache.PolicyName {
	seen := map[cache.PolicyName]bool{}
	var out []cache.PolicyName
	for _, pr := range pairs {
		for _, p := range pr {
			if !seen[p] {
				seen[p] = true
				out = append(out, p)
			}
		}
	}
	return out
}

// CampaignPlan aggregates the registry Requests of the named experiments
// ("all" expands to the paper's full set). p carries the run parameters
// the requests depend on (the -cores flag). Unknown names are ignored —
// name validation is the dispatcher's job, before planning.
func (l *Lab) CampaignPlan(names []string, p Params) []Request {
	var plan []Request
	for _, name := range names {
		if name == "all" {
			plan = append(plan, l.CampaignPlan(AllExperiments(), p)...)
			continue
		}
		if e, ok := Lookup(name); ok {
			plan = append(plan, e.Requests(l, p)...)
		}
	}
	return plan
}
