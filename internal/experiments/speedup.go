package experiments

import (
	"context"
	"fmt"
	"math"
	"math/rand"
	"sort"

	"mcbench/internal/cache"
	"mcbench/internal/metrics"
	"mcbench/internal/sampling"
)

// The paper closes with an open problem: "the problem of defining
// workload samples that provide accurate speedups with high probability
// is still open" (Section VIII). This extension measures it directly:
// instead of asking whether a sample ranks two microarchitectures
// correctly (a sign question), it asks how accurately the sample
// estimates the throughput ratio T_Y / T_X (a magnitude question), for
// each sampling method.

func init() {
	Register(Spec{
		Name:     "speedup",
		Synopsis: "accuracy of sample speedup estimates (paper's open problem)",
		Group:    GroupExtension,
		Requests: func(l *Lab, p Params) []Request { return l.SpeedupRequests(p.cores()) },
		Run: func(ctx context.Context, l *Lab, p Params) (*Table, error) {
			return l.speedupAccuracyTable(ctx, p.cores())
		},
	})
}

// SpeedupAccuracyPoint is one (method, sample size) accuracy measurement.
type SpeedupAccuracyPoint struct {
	Method     string
	SampleSize int
	// MeanAbsErr is the mean |Ŝ - S| / S over the Monte-Carlo trials,
	// where S is the population speedup and Ŝ the sample estimate.
	MeanAbsErr float64
	// P95AbsErr is the 95th percentile of the same error.
	P95AbsErr float64
}

// SpeedupAccuracy measures, for a policy pair and metric, the relative
// error of the sample speedup estimate under each sampling method.
// Strata for the workload-stratification method are built from the d(w)
// differences, as in Figure 6 — which is exactly what makes this an open
// problem: strata optimised for the *sign* of D are not necessarily
// optimal for the *magnitude* of the ratio.
func (l *Lab) SpeedupAccuracy(ctx context.Context, cores int, m metrics.Metric, x, y cache.PolicyName, sizes []int, trials int) ([]SpeedupAccuracyPoint, error) {
	if len(sizes) == 0 {
		sizes = []int{10, 30, 100}
	}
	if trials <= 0 {
		trials = l.cfg.Fig6Trials
	}
	pop := l.Population(cores)
	ref, err := l.RefTable(ctx, cores)
	if err != nil {
		return nil, err
	}
	ipcX, err := l.BadcoIPC(ctx, cores, x)
	if err != nil {
		return nil, err
	}
	ipcY, err := l.BadcoIPC(ctx, cores, y)
	if err != nil {
		return nil, err
	}
	classes, err := l.Classes(ctx)
	if err != nil {
		return nil, err
	}
	tX := m.Throughputs(ipcX, ref)
	tY := m.Throughputs(ipcY, ref)
	d := m.Diffs(tX, tY)

	popSpeedup := m.Sample(tY) / m.Sample(tX)

	samplers := []sampling.Sampler{sampling.NewSimpleRandom(len(d))}
	if l.isFullPopulation(pop.Size(), cores) {
		samplers = append(samplers, sampling.NewBalancedRandom(pop))
	}
	samplers = append(samplers,
		sampling.NewBenchmarkStrata(pop, classes, sampling.NumClasses),
		sampling.NewWorkloadStrata(d, sampling.DefaultWorkloadStrataConfig()),
	)

	var out []SpeedupAccuracyPoint
	for si, s := range samplers {
		rng := rand.New(rand.NewSource(l.cfg.Seed + 1000 + int64(si)))
		for _, w := range sizes {
			if w > len(d) {
				break
			}
			errs := make([]float64, trials)
			for tr := 0; tr < trials; tr++ {
				idx, weights := s.Draw(rng, w)
				sx := make([]float64, len(idx))
				sy := make([]float64, len(idx))
				for i, j := range idx {
					sx[i] = tX[j]
					sy[i] = tY[j]
				}
				est := m.WeightedSample(sy, weights) / m.WeightedSample(sx, weights)
				errs[tr] = math.Abs(est-popSpeedup) / popSpeedup
			}
			out = append(out, SpeedupAccuracyPoint{
				Method:     s.Name(),
				SampleSize: w,
				MeanAbsErr: mean(errs),
				P95AbsErr:  percentile95(errs),
			})
		}
	}
	return out, nil
}

func mean(xs []float64) float64 {
	sum := 0.0
	for _, x := range xs {
		sum += x
	}
	return sum / float64(len(xs))
}

func percentile95(xs []float64) float64 {
	cp := append([]float64(nil), xs...)
	sort.Float64s(cp)
	idx := int(float64(len(cp)-1) * 0.95)
	return cp[idx]
}

// SpeedupRequests declares the tables SpeedupAccuracy reads: the BADCO
// tables of its two pairs, the reference IPCs (WSU) and the MPKI
// classification behind benchmark stratification.
func (l *Lab) SpeedupRequests(cores int) []Request {
	pols := []cache.PolicyName{cache.DIP, cache.DRRIP, cache.LRU, cache.FIFO}
	return append(badcoSet(cores, pols),
		Request{Sim: SimRef, Cores: cores},
		Request{Sim: SimMPKI})
}

// speedupAccuracyTable renders the extension for the near-tie pair (DRRIP
// vs DIP) and a decisive pair (DRRIP vs LRU) under the WSU metric.
func (l *Lab) speedupAccuracyTable(ctx context.Context, cores int) (*Table, error) {
	t := &Table{
		Title:   fmt.Sprintf("Extension (paper Sec. VIII open problem): speedup-estimate accuracy (WSU, %d cores)", cores),
		Columns: []string{"pair (X,Y)", "method", "W", "mean |err| %", "p95 |err| %"},
		Notes: []string{
			"the paper's stratification targets the SIGN of the difference; this measures the MAGNITUDE",
			"of the estimated speedup T_Y/T_X against the population value",
		},
	}
	for _, pair := range [][2]cache.PolicyName{
		{cache.DIP, cache.DRRIP},
		{cache.LRU, cache.FIFO},
	} {
		pts, err := l.SpeedupAccuracy(ctx, cores, metrics.WSU, pair[0], pair[1], []int{10, 30, 100}, 0)
		if err != nil {
			return nil, err
		}
		for _, p := range pts {
			t.AddRow(fmt.Sprintf("%s,%s", pair[0], pair[1]), p.Method,
				fmt.Sprint(p.SampleSize), f2(p.MeanAbsErr*100), f2(p.P95AbsErr*100))
		}
	}
	return t, nil
}
