package experiments

import (
	"context"
	"fmt"
	"math/rand"

	"mcbench/internal/cache"
	"mcbench/internal/metrics"
	"mcbench/internal/sampling"
)

func init() {
	Register(Spec{
		Name:     "fig6",
		Synopsis: "confidence for 4 sampling methods (IPCT)",
		Group:    GroupPaper,
		Requests: func(l *Lab, p Params) []Request { return l.Fig6Requests(p.cores()) },
		Run: func(ctx context.Context, l *Lab, p Params) (*Table, error) {
			return l.fig6Table(ctx, p.cores())
		},
		Chart: func(ctx context.Context, l *Lab, p Params) (string, error) {
			return l.Fig6Chart(ctx, p.cores())
		},
	})
}

// Fig6Pairs are the four policy pairs of Figure 6 (as (X, Y), labelled
// "Y > X" in the figure).
func Fig6Pairs() [][2]cache.PolicyName {
	return [][2]cache.PolicyName{
		{cache.LRU, cache.DIP},     // DIP > LRU
		{cache.LRU, cache.DRRIP},   // DRRIP > LRU
		{cache.DIP, cache.DRRIP},   // DRRIP > DIP
		{cache.Random, cache.FIFO}, // FIFO > RND
	}
}

// Fig6SampleSizes is the figure's sample-size sweep.
var Fig6SampleSizes = []int{10, 20, 30, 40, 50, 60, 80, 100, 120, 140, 160, 180, 200, 300, 400, 500, 600, 700, 800}

// Fig6Point is one (pair, method, sample size) confidence measurement.
type Fig6Point struct {
	Pair       [2]cache.PolicyName
	Method     string
	SampleSize int
	Confidence float64
}

// Fig6 reproduces Figure 6: the experimental degree of confidence
// (cfg.Fig6Trials stratified/random samples per point, BADCO throughput,
// IPCT metric, 4 cores) for the four sampling methods on four policy
// pairs. Workload stratification uses the paper's parameters
// (TSD = 0.001, WT = 50). Balanced random sampling requires the full
// population; when the lab runs on a subsampled population it is skipped.
func (l *Lab) Fig6(ctx context.Context, cores int) ([]Fig6Point, error) {
	pop := l.Population(cores)
	classes, err := l.Classes(ctx)
	if err != nil {
		return nil, err
	}
	full := l.isFullPopulation(pop.Size(), cores)

	var out []Fig6Point
	for pi, pair := range Fig6Pairs() {
		d, err := l.Diffs(ctx, cores, metrics.IPCT, pair[0], pair[1])
		if err != nil {
			return nil, err
		}

		samplers := []sampling.Sampler{sampling.NewSimpleRandom(len(d))}
		if full {
			samplers = append(samplers, sampling.NewBalancedRandom(pop))
		}
		samplers = append(samplers,
			sampling.NewBenchmarkStrata(pop, classes, sampling.NumClasses),
			sampling.NewWorkloadStrata(d, sampling.DefaultWorkloadStrataConfig()),
		)

		for si, s := range samplers {
			rng := rand.New(rand.NewSource(l.cfg.Seed + 600 + int64(pi*10+si)))
			for _, w := range Fig6SampleSizes {
				if w > len(d) {
					break
				}
				out = append(out, Fig6Point{
					Pair:       pair,
					Method:     s.Name(),
					SampleSize: w,
					Confidence: sampling.EmpiricalConfidence(rng, d, s, w, l.cfg.Fig6Trials),
				})
			}
		}
	}
	return out, nil
}

// Fig6Requests declares the tables Fig6 reads: the BADCO tables of its
// four policy pairs, the reference IPCs, and the MPKI classification
// backing benchmark stratification.
func (l *Lab) Fig6Requests(cores int) []Request {
	plan := badcoSet(cores, pairPolicies(Fig6Pairs()))
	return append(plan,
		Request{Sim: SimRef, Cores: cores},
		Request{Sim: SimMPKI})
}

// fig6Table renders Figure 6 with one row per (pair, sample size) and one
// column per method.
func (l *Lab) fig6Table(ctx context.Context, cores int) (*Table, error) {
	points, err := l.Fig6(ctx, cores)
	if err != nil {
		return nil, err
	}
	methods := []string{"random", "bal-random", "bench-strata", "workload-strata"}
	t := &Table{
		Title:   fmt.Sprintf("Figure 6: confidence vs sample size, 4 sampling methods (IPCT, %d cores)", cores),
		Columns: append([]string{"pair (Y>X)", "W"}, methods...),
		Notes: []string{
			"paper: workload-strata ~100% at W=10 for FIFO>RND (random needs ~80); DIP>LRU needs 50 vs 800;",
			"bal-random second best on average; bench-strata only slightly better than random",
		},
	}
	type key struct {
		pair string
		w    int
	}
	cell := map[key]map[string]float64{}
	var order []key
	for _, p := range points {
		k := key{fmt.Sprintf("%s>%s", p.Pair[1], p.Pair[0]), p.SampleSize}
		if cell[k] == nil {
			cell[k] = map[string]float64{}
			order = append(order, k)
		}
		cell[k][p.Method] = p.Confidence
	}
	for _, k := range order {
		row := []string{k.pair, fmt.Sprint(k.w)}
		for _, m := range methods {
			if v, ok := cell[k][m]; ok {
				row = append(row, f3(v))
			} else {
				row = append(row, "n/a")
			}
		}
		t.AddRow(row...)
	}
	return t, nil
}
