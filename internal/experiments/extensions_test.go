package experiments

import (
	"strings"
	"testing"

	"mcbench/internal/bpred"
	"mcbench/internal/profile"
)

func TestProfilesAndFeatures(t *testing.T) {
	l := quickLab(t)
	profs := must(l.Profiles(tctx))
	if len(profs) != 22 {
		t.Fatalf("%d profiles, want 22", len(profs))
	}
	feats := must(l.BenchFeatures(tctx))
	if len(feats) != 22 || len(feats[0]) != len(profile.FeatureNames()) {
		t.Fatalf("feature matrix %dx%d", len(feats), len(feats[0]))
	}
	// Profile-estimated memory intensity must correlate with the measured
	// MPKI classification: the mean estimated LLC-size miss ratio of the
	// high class must exceed that of the low class.
	classes := must(l.Classes(tctx))
	var lo, hi, nlo, nhi float64
	for i, p := range profs {
		r := p.MissRatio(1 << 12)
		switch classes[i] {
		case 0:
			lo += r
			nlo++
		case 2:
			hi += r
			nhi++
		}
	}
	if nlo == 0 || nhi == 0 {
		t.Skip("degenerate quick classification")
	}
	if hi/nhi <= lo/nlo {
		t.Errorf("profile miss ratios do not separate classes: low %.3f, high %.3f", lo/nlo, hi/nhi)
	}
}

func TestExtMethodsComparison(t *testing.T) {
	l := quickLab(t)
	points := must(l.ExtMethods(tctx, 4))
	if len(points) == 0 {
		t.Fatal("no points")
	}
	byMethod := map[string]map[int]float64{}
	for _, p := range points {
		if p.Confidence < 0 || p.Confidence > 1 {
			t.Fatalf("confidence %g out of range", p.Confidence)
		}
		if byMethod[p.Method] == nil {
			byMethod[p.Method] = map[int]float64{}
		}
		byMethod[p.Method][p.SampleSize] = p.Confidence
	}
	for _, m := range []string{"random", "bench-strata", "cluster-strata", "workload-strata", "workload-cluster"} {
		if byMethod[m] == nil {
			t.Errorf("method %s missing from comparison", m)
		}
	}
	// The paper's core finding must survive the extension: workload
	// stratification is at least as good as simple random (within
	// Monte-Carlo noise) at small samples, and every method converges
	// upward — the pair's winner is decided correctly.
	ws, rnd := byMethod["workload-strata"], byMethod["random"]
	if ws != nil && rnd != nil {
		for _, w := range ExtMethodsSampleSizes {
			if ws[w] < rnd[w]-0.08 {
				t.Errorf("workload-strata clearly worse than random at W=%d: %.3f vs %.3f",
					w, ws[w], rnd[w])
			}
		}
		last := ExtMethodsSampleSizes[len(ExtMethodsSampleSizes)-1]
		if ws[last] < 0.9 || rnd[last] < 0.9 {
			t.Errorf("confidence at W=%d not converging: ws %.3f, random %.3f", last, ws[last], rnd[last])
		}
	}
	tab := must(l.extMethodsTable(tctx, 4))
	if !strings.Contains(tab.String(), "workload-cluster") {
		t.Error("table missing workload-cluster rows")
	}
}

func TestCophaseValidationExperiment(t *testing.T) {
	l := quickLab(t)
	rows := must(l.CophaseValidation(tctx))
	if len(rows) != 4 {
		t.Fatalf("%d rows", len(rows))
	}
	rankOK := 0
	for _, r := range rows {
		if r.IPCErr < 0 || r.IPCErr > 0.6 {
			t.Errorf("%s: implausible IPC error %.2f", r.Workload, r.IPCErr)
		}
		if r.Entries < 1 {
			t.Errorf("%s: empty matrix", r.Workload)
		}
		if r.CostFrac <= 0 {
			t.Errorf("%s: cost fraction %g", r.Workload, r.CostFrac)
		}
		if r.RankOK {
			rankOK++
		}
	}
	if rankOK < len(rows)-1 {
		t.Errorf("thread ranking preserved on only %d of %d workloads", rankOK, len(rows))
	}
}

func TestPredictorAblationExperiment(t *testing.T) {
	l := quickLab(t)
	rows := must(l.PredictorAblation())
	if len(rows) != 12 {
		t.Fatalf("%d rows, want 3 flavours x 4 predictors", len(rows))
	}
	get := func(flavour string, kind bpred.Kind) PredictorRow {
		for _, r := range rows {
			if strings.HasPrefix(r.Flavour, flavour) && r.Predictor == kind {
				return r
			}
		}
		t.Fatalf("row %s/%s missing", flavour, kind)
		return PredictorRow{}
	}
	// On the suite-like flavour bimodal and TAGE are close (the model's
	// documented rationale for defaulting to bimodal).
	if b, tg := get("biased", bpred.Bimodal), get("biased", bpred.TAGE); tg.MissRate > b.MissRate+0.03 {
		t.Errorf("TAGE %.4f much worse than bimodal %.4f on suite-like branches", tg.MissRate, b.MissRate)
	}
	// On loops and correlation TAGE must win clearly.
	if b, tg := get("loop", bpred.Bimodal), get("loop", bpred.TAGE); tg.MissRate > b.MissRate*0.8 {
		t.Errorf("TAGE %.4f not beating bimodal %.4f on loops", tg.MissRate, b.MissRate)
	}
	if b, tg := get("correlated", bpred.Bimodal), get("correlated", bpred.TAGE); tg.MissRate > b.MissRate-0.05 {
		t.Errorf("TAGE %.4f not beating bimodal %.4f on correlated branches", tg.MissRate, b.MissRate)
	}
	for _, r := range rows {
		if r.IPC <= 0 || r.IPC > 4 {
			t.Errorf("%s/%s: IPC %.3f out of range", r.Flavour, r.Predictor, r.IPC)
		}
	}
}

func TestNormalityExperiment(t *testing.T) {
	l := quickLab(t)
	points := must(l.Normality(tctx, 4))
	if len(points) < 5 {
		t.Fatalf("%d points", len(points))
	}
	// KS must trend downward: the last point clearly below the first.
	first, last := points[0].KS, points[len(points)-1].KS
	if last >= first {
		t.Errorf("KS did not decrease: W=%d:%.3f vs W=%d:%.3f",
			points[0].SampleSize, first, points[len(points)-1].SampleSize, last)
	}
	for _, p := range points {
		if p.KS < 0 || p.KS > 1 {
			t.Errorf("KS %g out of range", p.KS)
		}
	}
	if tab := must(l.normalityTable(tctx, 4)); len(tab.Rows) != len(points) {
		t.Error("table row mismatch")
	}
}
