package experiments

import (
	"math"
	"testing"
)

func TestExtPolicies(t *testing.T) {
	l := quickLab(t)
	rows := must(l.ExtPolicies(tctx, 2))
	if len(rows) != 6 {
		t.Fatalf("%d rows, want 3 policies x 2 baselines", len(rows))
	}
	for _, r := range rows {
		if math.IsNaN(r.InvCV) {
			t.Errorf("%v: NaN 1/cv", r.Pair)
		}
		if r.RequiredW < 1 {
			t.Errorf("%v: required W %d", r.Pair, r.RequiredW)
		}
		// The CLT machinery must be self-consistent: |1/cv| >= 1 implies
		// the ~8-workload regime.
		if inv := math.Abs(r.InvCV); inv >= 1 && r.RequiredW > 8 {
			t.Errorf("%v: 1/cv %.2f but required W %d", r.Pair, r.InvCV, r.RequiredW)
		}
	}
	tab := must(l.extPoliciesTable(tctx, 2))
	if len(tab.Rows) != 6 {
		t.Errorf("table rows %d", len(tab.Rows))
	}
}
