package experiments

// The population-scaling study: the experiment the hard-wired suite made
// impossible. The paper's machinery (sample from C(B+K-1, K) workload
// combinations, estimate mean policy differences under the CLT) never
// depends on B being 22 — this experiment sweeps B across scaled
// synthetic populations and measures how the difference distribution
// d(w), its coefficient of variation, the W = 8cv² sampling guideline
// and the fixed-budget estimator error respond.
//
// Every point builds its own scaled:B source (derived from the campaign
// seed), runs a child Lab over it — so products memoize and persist per
// source identity, never colliding with the main campaign — and resolves
// traces lazily: each benchmark's trace exists only while its BADCO
// model builds, which is what lets B=128 run on a small host.

import (
	"context"
	"fmt"
	"math"
	"math/rand"

	"mcbench/internal/bench"
	"mcbench/internal/cache"
	"mcbench/internal/metrics"
	"mcbench/internal/stats"
	"mcbench/internal/workload"
)

func init() {
	Register(Spec{
		Name:     "population-scaling",
		Synopsis: "estimator error vs benchmark-population size B (scaled sources)",
		Group:    GroupExtension,
		// No Requests: each point runs in its own child Lab over its own
		// scaled source, so the products are not expressible as this
		// lab's warm plan; the child labs memoize (and persist) their
		// own sweeps keyed by source identity.
		Run: func(ctx context.Context, l *Lab, p Params) (*Table, error) {
			return l.popScalingTable(ctx, p.cores())
		},
	})
}

// popScaleSampleN is the fixed detailed-budget sample size whose
// estimator error the study tracks across B (the "30 workloads is a
// practical budget" regime of the paper's Section V).
const popScaleSampleN = 30

// PopScalePoint is one B of the population-scaling sweep.
type PopScalePoint struct {
	B          int
	Population uint64 // C(B+K-1, K), saturating
	Exact      bool   // false when Population saturated uint64
	Sampled    int    // workloads actually swept
	MeanD      float64
	CV         float64 // coefficient of variation of d(w)
	W          int     // recommended sample size 8cv² (equation 8)
	Err95      float64 // p95 relative error of the N=30 estimator
	Resident   int     // traces still resident after the point completed
}

// PopScaling sweeps the configured PopScaleBs. For each B it derives a
// scaled:B source from the campaign seed, samples PopScaleSample
// workloads of the given core count, sweeps them with BADCO under LRU
// and DRRIP, and reduces the IPCT difference distribution. When the
// lab's own source is itself scaled, the sweep is capped at its B (so
// `-suite scaled:64 population-scaling` studies sizes up to 64).
func (l *Lab) PopScaling(ctx context.Context, cores int) ([]PopScalePoint, error) {
	bs := l.cfg.PopScaleBs
	if len(bs) == 0 {
		bs = DefaultConfig().PopScaleBs
	}
	maxB := 0
	if sc, ok := l.src.(*bench.ScaledSource); ok {
		maxB = sc.B()
	}
	if maxB > 0 {
		capped := bs[:0:0]
		for _, b := range bs {
			if b <= maxB {
				capped = append(capped, b)
			}
		}
		if len(capped) == 0 {
			// Every configured point exceeds the source: study the
			// source's own size rather than printing an empty table.
			capped = []int{maxB}
		}
		bs = capped
	}
	var out []PopScalePoint
	for _, b := range bs {
		pt, err := l.popScalePoint(ctx, b, cores)
		if err != nil {
			return nil, fmt.Errorf("experiments: population-scaling B=%d: %w", b, err)
		}
		out = append(out, pt)
	}
	return out, nil
}

// popScalePoint measures one B.
func (l *Lab) popScalePoint(ctx context.Context, b, cores int) (PopScalePoint, error) {
	src, err := bench.NewScaled(b, l.cfg.Seed)
	if err != nil {
		return PopScalePoint{}, err
	}
	sub := l.cfg
	sub.Source = src
	sub.PopLimit = l.cfg.PopScaleSample
	if sub.PopLimit <= 0 {
		sub.PopLimit = DefaultConfig().PopScaleSample
	}
	// The core-count-specific population knobs take precedence over
	// PopLimit; zero them so every point samples exactly PopScaleSample
	// workloads whatever the core count.
	sub.Pop4Limit = 0
	sub.Pop8Size = 0
	// The child lab shares the persistent cache directory (tables are
	// keyed by source identity, so nothing collides) but nothing else.
	child := NewLab(sub)

	x, err := child.BadcoIPC(ctx, cores, cache.LRU)
	if err != nil {
		return PopScalePoint{}, err
	}
	y, err := child.BadcoIPC(ctx, cores, cache.DRRIP)
	if err != nil {
		return PopScalePoint{}, err
	}
	m := metrics.IPCT
	d := m.Diffs(m.Throughputs(x, nil), m.Throughputs(y, nil))

	mean := stats.Mean(d)
	cv := stats.CoefVar(d)

	// Monte-Carlo: the p95 relative error of the mean-difference
	// estimate from popScaleSampleN workloads drawn with replacement.
	rng := rand.New(rand.NewSource(l.cfg.Seed + 31000 + int64(b)))
	trials := l.cfg.Fig3Trials
	if trials <= 0 {
		trials = 300
	}
	errs := make([]float64, trials)
	for t := range errs {
		var s float64
		for j := 0; j < popScaleSampleN; j++ {
			s += d[rng.Intn(len(d))]
		}
		errs[t] = math.Abs(s/popScaleSampleN - mean)
	}
	err95 := stats.Quantile(errs, 0.95)
	if mean != 0 {
		err95 /= math.Abs(mean)
	} else {
		err95 = math.Inf(1)
	}

	size, exact := workload.PopulationSize(b, cores)
	return PopScalePoint{
		B:          b,
		Population: size,
		Exact:      exact,
		Sampled:    len(d),
		MeanD:      mean,
		CV:         cv,
		W:          stats.RequiredSampleSize(cv),
		Err95:      err95,
		Resident:   bench.Resident(src),
	}, nil
}

// popScalingTable renders the sweep.
func (l *Lab) popScalingTable(ctx context.Context, cores int) (*Table, error) {
	points, err := l.PopScaling(ctx, cores)
	if err != nil {
		return nil, err
	}
	t := &Table{
		Title: fmt.Sprintf("Extension: estimator error vs benchmark-population size B (LRU vs DRRIP, IPCT, %d cores)", cores),
		Columns: []string{"B", "population", "sampled", "mean d", "cv",
			"W=8cv^2", fmt.Sprintf("p95 err@%d", popScaleSampleN), "resident"},
		Notes: []string{
			"each B is an independent scaled:B source derived from the campaign seed;",
			"traces resolve lazily and are released after BADCO model building,",
			"so the resident column stays at 0 instead of B",
		},
	}
	for _, p := range points {
		pop := fmt.Sprint(p.Population)
		if !p.Exact {
			pop = ">1.8e19"
		}
		t.AddRow(fmt.Sprint(p.B), pop, fmt.Sprint(p.Sampled),
			f4(p.MeanD), f2(p.CV), fmt.Sprint(p.W), f3(p.Err95),
			fmt.Sprintf("%d/%d", p.Resident, p.B))
	}
	return t, nil
}
