package experiments

import (
	"context"
	"fmt"
	"math/rand"

	"mcbench/internal/cache"
	"mcbench/internal/metrics"
	"mcbench/internal/sampling"
)

func init() {
	Register(Spec{
		Name:     "fig3",
		Synopsis: "confidence vs sample size: experiment vs model (DRRIP>DIP, WSU)",
		Group:    GroupPaper,
		Requests: func(l *Lab, p Params) []Request { return l.Fig3Requests(p.CoreCounts) },
		Run: func(ctx context.Context, l *Lab, p Params) (*Table, error) {
			return l.fig3Table(ctx, p.CoreCounts)
		},
		Chart: func(ctx context.Context, l *Lab, p Params) (string, error) {
			return l.Fig3Chart(ctx, p.CoreCounts)
		},
	})
}

// Fig3Point is one sample size of one core count's confidence curve.
type Fig3Point struct {
	Cores      int
	SampleSize int
	Empirical  float64
	Model      float64
}

// Fig3SampleSizes is the logarithmic sweep of Figure 3.
var Fig3SampleSizes = []int{10, 16, 25, 40, 63, 100, 158, 251, 398, 631, 1000}

// fig3CoreCounts resolves the figure's core-count sweep.
func fig3CoreCounts(coreCounts []int) []int {
	if len(coreCounts) == 0 {
		return []int{2, 4, 8}
	}
	return coreCounts
}

// Fig3 reproduces Figure 3: the degree of confidence that DRRIP
// outperforms DIP (WSU metric) as a function of the random sample size,
// measured by Monte-Carlo (cfg.Fig3Trials random samples per point) and
// predicted by the analytical model (equation 5), for 2, 4 and 8 cores.
func (l *Lab) Fig3(ctx context.Context, coreCounts []int) ([]Fig3Point, error) {
	var out []Fig3Point
	for _, cores := range fig3CoreCounts(coreCounts) {
		d, err := l.Diffs(ctx, cores, metrics.WSU, cache.DIP, cache.DRRIP)
		if err != nil {
			return nil, err
		}
		rng := rand.New(rand.NewSource(l.cfg.Seed + 300 + int64(cores)))
		s := sampling.NewSimpleRandom(len(d))
		for _, w := range Fig3SampleSizes {
			if w > len(d) {
				break
			}
			out = append(out, Fig3Point{
				Cores:      cores,
				SampleSize: w,
				Empirical:  sampling.EmpiricalConfidence(rng, d, s, w, l.cfg.Fig3Trials),
				Model:      sampling.ModelConfidence(d, w),
			})
		}
	}
	return out, nil
}

// Fig3Requests declares the tables Fig3 reads: the DIP and DRRIP BADCO
// tables plus the reference IPCs (WSU metric) at each core count.
func (l *Lab) Fig3Requests(coreCounts []int) []Request {
	var plan []Request
	for _, cores := range fig3CoreCounts(coreCounts) {
		plan = append(plan, badcoSet(cores, []cache.PolicyName{cache.DIP, cache.DRRIP})...)
		plan = append(plan, Request{Sim: SimRef, Cores: cores})
	}
	return plan
}

// fig3Table renders Figure 3 as a table of confidence points.
func (l *Lab) fig3Table(ctx context.Context, coreCounts []int) (*Table, error) {
	t := &Table{
		Title:   "Figure 3: confidence that DRRIP > DIP (WSU) vs sample size — experiment vs model",
		Columns: []string{"cores", "W", "empirical", "model", "|diff|"},
		Notes: []string{
			"paper: model curve matches the experimental points quite well, even for small samples",
		},
	}
	points, err := l.Fig3(ctx, coreCounts)
	if err != nil {
		return nil, err
	}
	for _, p := range points {
		diff := p.Empirical - p.Model
		if diff < 0 {
			diff = -diff
		}
		t.AddRow(fmt.Sprint(p.Cores), fmt.Sprint(p.SampleSize), f3(p.Empirical), f3(p.Model), f3(diff))
	}
	return t, nil
}
