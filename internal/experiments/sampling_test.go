package experiments

import (
	"strings"
	"testing"

	"mcbench/internal/cache"
	"mcbench/internal/multicore"
)

func TestSamplingExperimentRegistered(t *testing.T) {
	e, ok := Lookup("sampling-accuracy")
	if !ok {
		t.Fatal("sampling-accuracy not registered")
	}
	if e.Group() != GroupExtension {
		t.Errorf("group = %q, want extension", e.Group())
	}
	if e.Synopsis() == "" {
		t.Error("empty synopsis")
	}
}

// TestSamplingLabSweep drives the sampled route of the detailed
// population sweep end to end: a Lab configured with a SamplingSpec must
// produce estimate tables, persist them with CI/cv columns under
// spec-distinct keys, and reload them bitwise from a fresh Lab.
func TestSamplingLabSweep(t *testing.T) {
	if testing.Short() {
		t.Skip("sweep")
	}
	cfg := QuickConfig()
	cfg.TraceLen = 8000
	cfg.DetailedCount = 6
	cfg.CacheDir = t.TempDir()
	cfg.Sampling = multicore.SamplingSpec{Unit: 2000, Window: 500, Warmup: 500}
	l1 := NewLab(cfg)
	a, err := l1.DetailedIPC(tctx, 2, cache.LRU)
	if err != nil {
		t.Fatal(err)
	}
	if len(a) == 0 {
		t.Fatal("empty sampled table")
	}
	// A fresh lab with the same sampling config loads the persisted
	// estimate bitwise.
	l2 := NewLab(cfg)
	b, err := l2.DetailedIPC(tctx, 2, cache.LRU)
	if err != nil {
		t.Fatal(err)
	}
	for i := range a {
		for k := range a[i] {
			if a[i][k] != b[i][k] {
				t.Fatalf("cached sampled table differs at [%d][%d]", i, k)
			}
		}
	}
	if _, det := l2.SweepCounts(); det != 0 {
		t.Errorf("fresh lab resimulated %d detailed sweeps instead of loading the cache", det)
	}
	// An exact lab over the same cache dir must NOT see the estimate:
	// the spec is part of the table identity.
	exactCfg := cfg
	exactCfg.Sampling = multicore.SamplingSpec{}
	l3 := NewLab(exactCfg)
	c, err := l3.DetailedIPC(tctx, 2, cache.LRU)
	if err != nil {
		t.Fatal(err)
	}
	same := true
	for i := range a {
		for k := range a[i] {
			same = same && a[i][k] == c[i][k]
		}
	}
	if same {
		t.Error("exact sweep returned the sampled estimate: cache keys collide")
	}
}

// TestSamplingWarmupMutuallyExclusive: a Lab with both Warmup and
// Sampling set must refuse the detailed sweep instead of guessing.
func TestSamplingWarmupMutuallyExclusive(t *testing.T) {
	if testing.Short() {
		t.Skip("sweep")
	}
	cfg := QuickConfig()
	cfg.TraceLen = 4000
	cfg.DetailedCount = 4
	cfg.Warmup = 1000
	cfg.Sampling = multicore.SamplingSpec{Unit: 1000, Window: 200, Warmup: 200}
	l := NewLab(cfg)
	_, err := l.DetailedIPC(tctx, 2, cache.LRU)
	if err == nil || !strings.Contains(err.Error(), "mutually exclusive") {
		t.Fatalf("err = %v, want mutual-exclusion error", err)
	}
}

// TestSamplingAccuracyTable runs the registered experiment on a scaled-
// down lab and sanity-checks the table shape and the invariants that do
// not depend on machine speed (wall-clock speedup is reported but not
// asserted here; scripts/bench.sh measures it at bench scale).
func TestSamplingAccuracyTable(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation ensemble")
	}
	cfg := QuickConfig()
	cfg.TraceLen = 10000 // study stretches 10×: 100k-µop traces
	l := NewLab(cfg)
	points, err := l.SamplingAccuracy(tctx)
	if err != nil {
		t.Fatal(err)
	}
	if len(points) != len(samplingSpecs) {
		t.Fatalf("%d points, want %d", len(points), len(samplingSpecs))
	}
	for _, p := range points {
		if p.Total != samplingEnsembleSize {
			t.Errorf("%s: %d runs, want %d", p.Spec, p.Total, samplingEnsembleSize)
		}
		if p.Windows <= 0 {
			t.Errorf("%s: no windows", p.Spec)
		}
		if p.DetFrac <= 0 || p.DetFrac > 1 {
			t.Errorf("%s: detailed fraction %f", p.Spec, p.DetFrac)
		}
		if p.MeanErr < 0 || p.MeanErr > 0.5 {
			t.Errorf("%s: mean error %f out of sane range", p.Spec, p.MeanErr)
		}
		if p.Speedup <= 0 {
			t.Errorf("%s: speedup %f", p.Spec, p.Speedup)
		}
	}
	tab, err := l.samplingAccuracyTable(tctx)
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) != len(samplingSpecs) {
		t.Fatalf("table rows %d, want %d", len(tab.Rows), len(samplingSpecs))
	}
	if tab.Columns[0] != "spec" || tab.Columns[len(tab.Columns)-1] != "speedup" {
		t.Errorf("unexpected columns %v", tab.Columns)
	}
}
