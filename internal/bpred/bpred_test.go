package bpred

import (
	"math/rand"
	"testing"
)

// run feeds a synthetic branch stream to a predictor and returns the miss
// rate over the last measure branches (warm-up excluded).
func run(p Predictor, n, warm int, next func(i int) (pc uint64, taken bool)) float64 {
	var misses, total uint64
	for i := 0; i < n; i++ {
		pc, taken := next(i)
		predicted := p.Predict(pc, taken)
		if i >= warm {
			total++
			if predicted != taken {
				misses++
			}
		}
	}
	return float64(misses) / float64(total)
}

func allKinds(t *testing.T) []Predictor {
	t.Helper()
	return []Predictor{
		NewBimodal(12),
		NewGShare(12, 10),
		NewTournament(12, 10),
		NewDefaultTAGE(),
	}
}

// Every predictor must learn a fully biased branch essentially perfectly.
func TestAlwaysTakenLearned(t *testing.T) {
	for _, p := range allKinds(t) {
		miss := run(p, 4000, 200, func(i int) (uint64, bool) {
			return 0x1000 + uint64(i%8)*16, true
		})
		if miss > 0.01 {
			t.Errorf("%s: miss rate %.3f on always-taken stream", p.Name(), miss)
		}
	}
}

// A short repeating loop pattern (taken 7, not-taken 1) is invisible to
// bimodal (12.5%+ misses) but learnable from history: gshare, tournament
// and TAGE must do clearly better.
func TestLoopPatternNeedsHistory(t *testing.T) {
	pattern := func(i int) (uint64, bool) { return 0x2000, i%8 != 7 }

	bm := run(NewBimodal(12), 20000, 2000, pattern)
	if bm < 0.10 {
		t.Fatalf("bimodal unexpectedly good on loop pattern: %.3f", bm)
	}
	for _, p := range []Predictor{NewGShare(12, 10), NewTournament(12, 10), NewDefaultTAGE()} {
		miss := run(p, 20000, 2000, pattern)
		if miss > bm/2 {
			t.Errorf("%s: miss %.3f not clearly better than bimodal %.3f on loop pattern",
				p.Name(), miss, bm)
		}
	}
}

// TAGE must track a long-period pattern that exceeds gshare's history.
func TestTAGELongPeriodPattern(t *testing.T) {
	const period = 24 // > the 10-bit gshare history window per branch
	pattern := func(i int) (uint64, bool) { return 0x3000, i%period != period-1 }

	tage := run(NewDefaultTAGE(), 60000, 10000, pattern)
	if tage > 0.02 {
		t.Errorf("TAGE miss %.3f on period-%d loop; want near zero", tage, period)
	}
}

// Correlated branches: branch B repeats the outcome of branch A two
// branches earlier. History predictors learn the correlation; bimodal sees
// a 50/50 branch.
func TestCorrelationLearned(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	outcomes := make([]bool, 0, 40000)
	next := func(i int) (uint64, bool) {
		if i%2 == 0 {
			taken := rng.Intn(2) == 0
			outcomes = append(outcomes, taken)
			return 0x4000, taken
		}
		return 0x4040, outcomes[len(outcomes)-1]
	}
	// Only measure the correlated branch (odd positions).
	measure := func(p Predictor) float64 {
		outcomes = outcomes[:0]
		var misses, total uint64
		for i := 0; i < 40000; i++ {
			pc, taken := next(i)
			predicted := p.Predict(pc, taken)
			if i > 4000 && i%2 == 1 {
				total++
				if predicted != taken {
					misses++
				}
			}
		}
		return float64(misses) / float64(total)
	}

	bm := measure(NewBimodal(12))
	tg := measure(NewDefaultTAGE())
	gs := measure(NewGShare(12, 10))
	if bm < 0.35 {
		t.Fatalf("bimodal unexpectedly good on correlated branch: %.3f", bm)
	}
	if tg > 0.05 {
		t.Errorf("TAGE miss %.3f on perfectly correlated branch", tg)
	}
	if gs > 0.05 {
		t.Errorf("gshare miss %.3f on perfectly correlated branch", gs)
	}
}

// On uncorrelated biased branches (the regime of the synthetic suite) all
// predictors should converge near the bias floor; TAGE must not be much
// worse than bimodal (aliasing noise bounded).
func TestBiasedSitesNearOptimal(t *testing.T) {
	const bias = 0.9
	mk := func(seed int64) func(int) (uint64, bool) {
		rng := rand.New(rand.NewSource(seed))
		dominant := make(map[uint64]bool)
		return func(i int) (uint64, bool) {
			pc := 0x5000 + uint64(rng.Intn(64))*16
			d, ok := dominant[pc]
			if !ok {
				d = rng.Intn(2) == 0
				dominant[pc] = d
			}
			taken := d
			if rng.Float64() > bias {
				taken = !taken
			}
			return pc, taken
		}
	}
	floor := 1 - bias
	for _, p := range []Predictor{NewBimodal(12), NewTournament(12, 10), NewDefaultTAGE()} {
		miss := run(p, 60000, 10000, mk(11))
		if miss > floor+0.06 {
			t.Errorf("%s: miss %.3f far above bias floor %.3f", p.Name(), miss, floor)
		}
	}
	// Pure gshare is the outlier here: with no cross-branch correlation
	// the random history scrambles its index, so it cannot even reach the
	// per-site bias floor. This is the classical weakness that the
	// tournament chooser repairs — assert it so the hybrid's value is
	// pinned by a test.
	gs := run(NewGShare(12, 10), 60000, 10000, mk(11))
	tn := run(NewTournament(12, 10), 60000, 10000, mk(11))
	if gs < floor+0.1 {
		t.Errorf("gshare miss %.3f unexpectedly near floor; test premise broken", gs)
	}
	if tn > gs/2 {
		t.Errorf("tournament %.3f not clearly better than gshare %.3f on uncorrelated sites", tn, gs)
	}
}

// Stats must count exactly the lookups fed and the misses returned.
func TestStatsConsistency(t *testing.T) {
	for _, p := range allKinds(t) {
		rng := rand.New(rand.NewSource(3))
		var misses uint64
		const n = 5000
		for i := 0; i < n; i++ {
			pc := 0x100 + uint64(rng.Intn(32))*4
			taken := rng.Intn(2) == 0
			if p.Predict(pc, taken) != taken {
				misses++
			}
		}
		s := p.Stats()
		if s.Lookups != n {
			t.Errorf("%s: %d lookups recorded, want %d", p.Name(), s.Lookups, n)
		}
		if s.Misses != misses {
			t.Errorf("%s: %d misses recorded, want %d", p.Name(), s.Misses, misses)
		}
		if got := s.MissRate(); got != float64(misses)/float64(n) {
			t.Errorf("%s: MissRate %g inconsistent", p.Name(), got)
		}
	}
}

// Determinism: identical input sequences must produce identical
// prediction sequences (required for reproducible simulation).
func TestDeterminism(t *testing.T) {
	build := func() []Predictor { return allKinds(t) }
	a, b := build(), build()
	rng := rand.New(rand.NewSource(99))
	type ev struct {
		pc    uint64
		taken bool
	}
	evs := make([]ev, 20000)
	for i := range evs {
		evs[i] = ev{0x6000 + uint64(rng.Intn(256))*8, rng.Intn(3) > 0}
	}
	for k := range a {
		for _, e := range evs {
			if a[k].Predict(e.pc, e.taken) != b[k].Predict(e.pc, e.taken) {
				t.Fatalf("%s: nondeterministic prediction", a[k].Name())
			}
		}
	}
}

func TestNewByKind(t *testing.T) {
	for _, kind := range []Kind{Bimodal, GShare, Tournament, TAGE} {
		p, err := New(kind, 10, 8)
		if err != nil {
			t.Fatalf("New(%s): %v", kind, err)
		}
		if p.Name() != string(kind) {
			t.Errorf("New(%s).Name() = %s", kind, p.Name())
		}
	}
	if _, err := New("perceptron", 10, 8); err == nil {
		t.Error("unknown kind accepted")
	}
}

func TestMissRateEmptyStats(t *testing.T) {
	var s Stats
	if s.MissRate() != 0 {
		t.Error("MissRate on empty stats")
	}
}

func TestLFSRPeriodAndDeterminism(t *testing.T) {
	l1, l2 := newLFSR(), newLFSR()
	seen := map[uint16]bool{}
	for i := 0; i < 1<<16; i++ {
		v1, v2 := l1.next(), l2.next()
		if v1 != v2 {
			t.Fatal("LFSR nondeterministic")
		}
		seen[v1] = true
	}
	// A maximal 16-bit LFSR cycles through 65535 nonzero states.
	if len(seen) < 60000 {
		t.Errorf("LFSR period too short: %d distinct states", len(seen))
	}
}
