package bpred

import (
	"math/rand"
	"testing"
)

// branchStream generates a deterministic synthetic branch stream with
// per-site bias and some history correlation, enough to train every
// predictor's tables.
func branchStream(seed int64, n int) func(yield func(pc uint64, taken bool)) {
	return func(yield func(pc uint64, taken bool)) {
		rng := rand.New(rand.NewSource(seed))
		hist := 0
		for i := 0; i < n; i++ {
			pc := 0x1000 + uint64(rng.Intn(64))*16
			taken := (pc>>4+uint64(hist))%3 != 0
			if rng.Intn(8) == 0 {
				taken = !taken
			}
			hist = (hist << 1) & 0xff
			if taken {
				hist |= 1
			}
			yield(pc, taken)
		}
	}
}

// TestPredictorCheckpointRoundTrip trains each predictor kind, snapshots
// it, restores into both a fresh and a differently-trained predictor,
// and demands identical prediction sequences and stats from there on.
func TestPredictorCheckpointRoundTrip(t *testing.T) {
	for _, kind := range []Kind{Bimodal, GShare, Tournament, TAGE} {
		p, err := New(kind, 12, 8)
		if err != nil {
			t.Fatal(err)
		}
		branchStream(1, 20000)(func(pc uint64, taken bool) { p.Predict(pc, taken) })

		var st PredictorState
		Snapshot(p, &st)
		var want []bool
		branchStream(2, 5000)(func(pc uint64, taken bool) { want = append(want, p.Predict(pc, taken)) })
		wantStats := p.Stats()

		for name, mk := range map[string]func() Predictor{
			"fresh": func() Predictor {
				q, _ := New(kind, 12, 8)
				return q
			},
			"dirty": func() Predictor {
				q, _ := New(kind, 12, 8)
				branchStream(3, 7000)(func(pc uint64, taken bool) { q.Predict(pc, taken) })
				return q
			},
		} {
			q := mk()
			Restore(q, &st)
			i := 0
			branchStream(2, 5000)(func(pc uint64, taken bool) {
				if got := q.Predict(pc, taken); got != want[i] {
					t.Fatalf("%s %s: prediction %d diverges after restore", kind, name, i)
				}
				i++
			})
			if q.Stats() != wantStats {
				t.Errorf("%s %s: stats %+v after restore, want %+v", kind, name, q.Stats(), wantStats)
			}
		}
	}
}

// TestTargetPredictorCheckpointRoundTrip does the same for the BTAC,
// indirect predictor and RAS.
func TestTargetPredictorCheckpointRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	b := NewBTAC(512, 4)
	ind := DefaultIndirect()
	ras := NewRAS(16)
	touch := func(n int) (sig uint64) {
		for i := 0; i < n; i++ {
			pc := 0x4000 + uint64(rng.Intn(600))*16
			tgt := 0x8000 + uint64(rng.Intn(256))*16
			if p, ok := b.Predict(pc); ok {
				sig = sig*31 + p
			}
			b.Update(pc, tgt)
			if p, ok := ind.Predict(pc); ok {
				sig = sig*31 + p
			}
			ind.Update(pc, tgt)
			if i%3 == 0 {
				ras.Push(tgt)
			} else {
				sig = sig*31 + ras.Pop(tgt)
			}
		}
		return sig
	}
	touch(10000)

	var bs BTACState
	var is IndirectState
	var rs RASState
	b.Snapshot(&bs)
	ind.Snapshot(&is)
	ras.Snapshot(&rs)
	tail := rng.Int63()
	rng = rand.New(rand.NewSource(tail))
	want := touch(5000)

	b2, ind2, ras2 := NewBTAC(512, 4), DefaultIndirect(), NewRAS(16)
	b2.Restore(&bs)
	ind2.Restore(&is)
	ras2.Restore(&rs)
	b, ind, ras = b2, ind2, ras2
	rng = rand.New(rand.NewSource(tail))
	if got := touch(5000); got != want {
		t.Errorf("target predictors diverge after restore: %x, want %x", got, want)
	}
}

// TestPredictorSnapshotAllocationFree pins warmed-buffer Snapshot and
// Restore at zero allocations for every kind.
func TestPredictorSnapshotAllocationFree(t *testing.T) {
	for _, kind := range []Kind{Bimodal, GShare, Tournament, TAGE} {
		p, err := New(kind, 12, 8)
		if err != nil {
			t.Fatal(err)
		}
		branchStream(1, 5000)(func(pc uint64, taken bool) { p.Predict(pc, taken) })
		var st PredictorState
		Snapshot(p, &st)
		if avg := testing.AllocsPerRun(10, func() { Snapshot(p, &st) }); avg != 0 {
			t.Errorf("%s: steady-state Snapshot allocates %.2f times, want 0", kind, avg)
		}
		if avg := testing.AllocsPerRun(10, func() { Restore(p, &st) }); avg != 0 {
			t.Errorf("%s: steady-state Restore allocates %.2f times, want 0", kind, avg)
		}
	}
}
