package bpred

// This file implements the non-TAGE direction predictors: bimodal (per-PC
// 2-bit counters), gshare (global history XOR PC) and a tournament hybrid
// of the two with a per-PC chooser (Alpha 21264 style). They serve both as
// cheap predictor options for the core model and as baselines that the
// TAGE tests compare against.

// ---------------------------------------------------------------------------
// Bimodal

type bimodal struct {
	table []uint8
	mask  uint64
	stats Stats
}

// NewBimodal returns a bimodal predictor with 2^indexBits 2-bit counters.
func NewBimodal(indexBits int) Predictor {
	if indexBits < 1 {
		indexBits = 1
	}
	t := make([]uint8, 1<<indexBits)
	for i := range t {
		t[i] = 2 // weakly taken
	}
	return &bimodal{table: t, mask: uint64(len(t) - 1)}
}

func (b *bimodal) Name() string { return string(Bimodal) }

func (b *bimodal) Stats() Stats { return b.stats }

func (b *bimodal) Predict(pc uint64, taken bool) bool {
	ctr := &b.table[(pc>>2)&b.mask]
	predicted := *ctr >= 2
	b.train(ctr, taken)
	b.stats.Lookups++
	if predicted != taken {
		b.stats.Misses++
	}
	return predicted
}

func (b *bimodal) train(ctr *uint8, taken bool) {
	if taken {
		inc(ctr, 3)
	} else {
		dec(ctr)
	}
}

// ---------------------------------------------------------------------------
// GShare

type gshare struct {
	table   []uint8
	mask    uint64
	history uint64
	histLen uint
	stats   Stats
}

// NewGShare returns a gshare predictor with 2^indexBits 2-bit counters
// indexed by PC XOR the last historyBits branch outcomes.
func NewGShare(indexBits, historyBits int) Predictor {
	if indexBits < 1 {
		indexBits = 1
	}
	if historyBits < 1 {
		historyBits = 1
	}
	if historyBits > 62 {
		historyBits = 62
	}
	t := make([]uint8, 1<<indexBits)
	for i := range t {
		t[i] = 2
	}
	return &gshare{table: t, mask: uint64(len(t) - 1), histLen: uint(historyBits)}
}

func (g *gshare) Name() string { return string(GShare) }

func (g *gshare) Stats() Stats { return g.stats }

func (g *gshare) Predict(pc uint64, taken bool) bool {
	idx := ((pc >> 2) ^ g.history) & g.mask
	ctr := &g.table[idx]
	predicted := *ctr >= 2
	if taken {
		inc(ctr, 3)
	} else {
		dec(ctr)
	}
	g.push(taken)
	g.stats.Lookups++
	if predicted != taken {
		g.stats.Misses++
	}
	return predicted
}

func (g *gshare) push(taken bool) {
	g.history = (g.history << 1) & (1<<g.histLen - 1)
	if taken {
		g.history |= 1
	}
}

// ---------------------------------------------------------------------------
// Tournament

type tournament struct {
	local   *bimodal
	global  *gshare
	chooser []uint8 // per-PC: >=2 prefer global
	mask    uint64
	stats   Stats
}

// NewTournament returns a bimodal/gshare hybrid with a per-PC 2-bit
// chooser. Each component trains on every branch; the chooser trains only
// when the components disagree.
func NewTournament(indexBits, historyBits int) Predictor {
	ch := make([]uint8, 1<<uint(max(indexBits, 1)))
	for i := range ch {
		ch[i] = 2 // weakly prefer global
	}
	return &tournament{
		local:   NewBimodal(indexBits).(*bimodal),
		global:  NewGShare(indexBits, historyBits).(*gshare),
		chooser: ch,
		mask:    uint64(len(ch) - 1),
	}
}

func (t *tournament) Name() string { return string(Tournament) }

func (t *tournament) Stats() Stats { return t.stats }

func (t *tournament) Predict(pc uint64, taken bool) bool {
	// Peek both components without their bookkeeping, then train them.
	lp := t.local.table[(pc>>2)&t.local.mask] >= 2
	gi := ((pc >> 2) ^ t.global.history) & t.global.mask
	gp := t.global.table[gi] >= 2

	choose := &t.chooser[(pc>>2)&t.mask]
	predicted := lp
	if *choose >= 2 {
		predicted = gp
	}
	if lp != gp {
		if gp == taken {
			inc(choose, 3)
		} else {
			dec(choose)
		}
	}
	t.local.Predict(pc, taken)
	t.global.Predict(pc, taken)

	t.stats.Lookups++
	if predicted != taken {
		t.stats.Misses++
	}
	return predicted
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}
