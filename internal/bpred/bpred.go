// Package bpred implements the branch direction and target predictors of
// the paper's Table I core: TAGE (the direction predictor named in the
// table), a BTAC (branch target address cache), an indirect-branch target
// predictor and a 16-entry return address stack, plus the simpler bimodal,
// gshare and tournament predictors used as comparators.
//
// All predictors are trace-driven and deterministic: Predict both returns
// the prediction for the branch at pc and immediately trains on the actual
// outcome, which matches in-order resolution of a µop trace. Randomised
// allocation (TAGE) uses an internal LFSR so identical input sequences
// produce identical predictor states.
package bpred

import "fmt"

// Predictor is a conditional-branch direction predictor.
type Predictor interface {
	// Name identifies the predictor ("bimodal", "gshare", ...).
	Name() string
	// Predict returns the predicted direction for the branch at pc and
	// trains the predictor with the actual outcome taken.
	Predict(pc uint64, taken bool) bool
	// Stats returns lookup/miss counts accumulated so far.
	Stats() Stats
}

// Stats counts predictor activity.
type Stats struct {
	Lookups uint64
	Misses  uint64
}

// MissRate returns Misses/Lookups, or 0 before the first lookup.
func (s Stats) MissRate() float64 {
	if s.Lookups == 0 {
		return 0
	}
	return float64(s.Misses) / float64(s.Lookups)
}

// Kind names a direction predictor implementation.
type Kind string

// Supported predictor kinds.
const (
	Bimodal    Kind = "bimodal"
	GShare     Kind = "gshare"
	Tournament Kind = "tournament"
	TAGE       Kind = "tage"
)

// New builds a predictor of the given kind with a hardware budget
// comparable to the paper's 4 kB TAGE. indexBits sizes the simple
// predictors' tables (2^indexBits counters); historyBits bounds the
// global history of gshare and tournament. TAGE uses its own internal
// table geometry (see NewTAGE) and ignores both parameters.
func New(kind Kind, indexBits, historyBits int) (Predictor, error) {
	switch kind {
	case Bimodal:
		return NewBimodal(indexBits), nil
	case GShare:
		return NewGShare(indexBits, historyBits), nil
	case Tournament:
		return NewTournament(indexBits, historyBits), nil
	case TAGE:
		return NewDefaultTAGE(), nil
	}
	return nil, fmt.Errorf("bpred: unknown predictor kind %q", kind)
}

// MustNew is New for known-good arguments.
func MustNew(kind Kind, indexBits, historyBits int) Predictor {
	p, err := New(kind, indexBits, historyBits)
	if err != nil {
		panic(err)
	}
	return p
}

// counter is an n-bit saturating counter helper; predictors store the
// counter value and use inc/dec with their own maxima.
func inc(c *uint8, max uint8) {
	if *c < max {
		*c++
	}
}

func dec(c *uint8) {
	if *c > 0 {
		*c--
	}
}

// lfsr is a 16-bit linear feedback shift register used for deterministic
// pseudo-random allocation decisions (TAGE).
type lfsr uint16

func newLFSR() lfsr { return 0xACE1 }

// next advances the register and returns its new value.
func (l *lfsr) next() uint16 {
	v := uint16(*l)
	bit := (v ^ v>>2 ^ v>>3 ^ v>>5) & 1
	v = v>>1 | bit<<15
	*l = lfsr(v)
	return v
}
