package bpred

// Checkpoint support: every predictor's mutable state — counter tables,
// global histories, folded registers, the TAGE allocation LFSR and all
// statistics — deep-copies into a reusable State buffer and restores
// bit-exactly. Snapshot and Restore are allocation-free once the buffer
// has grown to its steady-state size. Fields are exported so snapshots
// survive encoding/gob persistence.

import "fmt"

// PredictorState is a reusable snapshot buffer covering every built-in
// direction predictor. It is a union: each predictor uses the fields its
// state needs and ignores the rest.
type PredictorState struct {
	Kind Kind // the predictor kind the snapshot was taken from

	U8  []uint8 // bimodal table / TAGE base
	U8b []uint8 // gshare table (tournament: global component)
	U8c []uint8 // tournament chooser

	History uint64 // gshare global history

	// TAGE tagged components, concatenated across tables in order.
	Tags     []uint16
	Ctrs     []int8
	Us       []uint8
	Folds    []uint64 // 3 folded-history registers per table (idx, tag0, tag1)
	GHist    []uint8
	GPos     int
	UseAlt   int8
	Rand     uint16
	Branches uint64

	Stats  Stats
	StatsB Stats // tournament: local component's stats
	StatsC Stats // tournament: global component's stats
}

// Checkpointer is implemented by every built-in Predictor.
type Checkpointer interface {
	Snapshot(into *PredictorState)
	Restore(from *PredictorState)
}

// Snapshot dispatches to the predictor's Checkpointer implementation,
// failing loudly for a foreign predictor (a silently partial snapshot
// would corrupt restored runs).
func Snapshot(p Predictor, into *PredictorState) {
	cp, ok := p.(Checkpointer)
	if !ok {
		panic(fmt.Sprintf("bpred: predictor %s does not support checkpointing", p.Name()))
	}
	cp.Snapshot(into)
}

// Restore is Snapshot's inverse; the target predictor must be of the
// same kind and geometry as the snapshot's source.
func Restore(p Predictor, from *PredictorState) {
	cp, ok := p.(Checkpointer)
	if !ok {
		panic(fmt.Sprintf("bpred: predictor %s does not support checkpointing", p.Name()))
	}
	cp.Restore(from)
}

// Snapshot implements Checkpointer.
func (b *bimodal) Snapshot(into *PredictorState) {
	into.Kind = Bimodal
	into.U8 = append(into.U8[:0], b.table...)
	into.Stats = b.stats
}

// Restore implements Checkpointer.
func (b *bimodal) Restore(from *PredictorState) {
	copy(b.table, from.U8)
	b.stats = from.Stats
}

// Snapshot implements Checkpointer.
func (g *gshare) Snapshot(into *PredictorState) {
	into.Kind = GShare
	into.U8b = append(into.U8b[:0], g.table...)
	into.History = g.history
	into.Stats = g.stats
}

// Restore implements Checkpointer.
func (g *gshare) Restore(from *PredictorState) {
	copy(g.table, from.U8b)
	g.history = from.History
	g.stats = from.Stats
}

// Snapshot implements Checkpointer.
func (t *tournament) Snapshot(into *PredictorState) {
	into.Kind = Tournament
	into.U8 = append(into.U8[:0], t.local.table...)
	into.U8b = append(into.U8b[:0], t.global.table...)
	into.U8c = append(into.U8c[:0], t.chooser...)
	into.History = t.global.history
	into.Stats = t.stats
	into.StatsB = t.local.stats
	into.StatsC = t.global.stats
}

// Restore implements Checkpointer.
func (t *tournament) Restore(from *PredictorState) {
	copy(t.local.table, from.U8)
	copy(t.global.table, from.U8b)
	copy(t.chooser, from.U8c)
	t.global.history = from.History
	t.stats = from.Stats
	t.local.stats = from.StatsB
	t.global.stats = from.StatsC
}

// Snapshot implements Checkpointer.
func (t *Tage) Snapshot(into *PredictorState) {
	into.Kind = TAGE
	into.U8 = append(into.U8[:0], t.base...)
	into.Tags = into.Tags[:0]
	into.Ctrs = into.Ctrs[:0]
	into.Us = into.Us[:0]
	into.Folds = into.Folds[:0]
	for _, tab := range t.tables {
		for i := range tab.entries {
			e := &tab.entries[i]
			into.Tags = append(into.Tags, e.tag)
			into.Ctrs = append(into.Ctrs, e.ctr)
			into.Us = append(into.Us, e.u)
		}
		into.Folds = append(into.Folds, tab.idxFold.comp, tab.tagFold[0].comp, tab.tagFold[1].comp)
	}
	into.GHist = append(into.GHist[:0], t.ghist...)
	into.GPos = t.gpos
	into.UseAlt = t.useAltOnNA
	into.Rand = uint16(t.rand)
	into.Branches = t.branches
	into.Stats = t.stats
}

// Restore implements Checkpointer.
func (t *Tage) Restore(from *PredictorState) {
	copy(t.base, from.U8)
	off, foff := 0, 0
	for _, tab := range t.tables {
		for i := range tab.entries {
			e := &tab.entries[i]
			e.tag = from.Tags[off]
			e.ctr = from.Ctrs[off]
			e.u = from.Us[off]
			off++
		}
		tab.idxFold.comp = from.Folds[foff]
		tab.tagFold[0].comp = from.Folds[foff+1]
		tab.tagFold[1].comp = from.Folds[foff+2]
		foff += 3
	}
	copy(t.ghist, from.GHist)
	t.gpos = from.GPos
	t.useAltOnNA = from.UseAlt
	t.rand = lfsr(from.Rand)
	t.branches = from.Branches
	t.stats = from.Stats
}

// ---------------------------------------------------------------------------
// Target predictors

// BTACState is a reusable snapshot of a BTAC.
type BTACState struct {
	Tags    []uint64
	Targets []uint64
	LRU     []uint64
	Clock   uint64
	Stats   Stats
}

// Snapshot deep-copies the BTAC state into the buffer.
func (b *BTAC) Snapshot(into *BTACState) {
	into.Tags = append(into.Tags[:0], b.tags...)
	into.Targets = append(into.Targets[:0], b.targets...)
	into.LRU = append(into.LRU[:0], b.lru...)
	into.Clock = b.clock
	into.Stats = b.stats
}

// Restore overwrites the BTAC state from the buffer.
func (b *BTAC) Restore(from *BTACState) {
	copy(b.tags, from.Tags)
	copy(b.targets, from.Targets)
	copy(b.lru, from.LRU)
	b.clock = from.Clock
	b.stats = from.Stats
}

// IndirectState is a reusable snapshot of an Indirect predictor.
type IndirectState struct {
	Tags    []uint32
	Targets []uint64
	Path    uint64
	Stats   Stats
}

// Snapshot deep-copies the predictor state into the buffer.
func (i *Indirect) Snapshot(into *IndirectState) {
	into.Tags = append(into.Tags[:0], i.tags...)
	into.Targets = append(into.Targets[:0], i.targets...)
	into.Path = i.path
	into.Stats = i.stats
}

// Restore overwrites the predictor state from the buffer.
func (i *Indirect) Restore(from *IndirectState) {
	copy(i.tags, from.Tags)
	copy(i.targets, from.Targets)
	i.path = from.Path
	i.stats = from.Stats
}

// RASState is a reusable snapshot of a return address stack.
type RASState struct {
	Stack []uint64
	Top   int
	Depth int
	Stats Stats
}

// Snapshot deep-copies the stack into the buffer.
func (r *RAS) Snapshot(into *RASState) {
	into.Stack = append(into.Stack[:0], r.stack...)
	into.Top = r.top
	into.Depth = r.depth
	into.Stats = r.stats
}

// Restore overwrites the stack from the buffer.
func (r *RAS) Restore(from *RASState) {
	copy(r.stack, from.Stack)
	r.top = from.Top
	r.depth = from.Depth
	r.stats = from.Stats
}
