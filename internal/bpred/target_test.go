package bpred

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestBTACLearnsStableTargets(t *testing.T) {
	b := DefaultBTAC()
	// 64 branch sites, each with one fixed target.
	for round := 0; round < 4; round++ {
		for i := 0; i < 64; i++ {
			pc := 0x1000 + uint64(i)*32
			target := 0x8000 + uint64(i)*128
			got, ok := b.Predict(pc)
			if round > 0 && (!ok || got != target) {
				t.Fatalf("round %d: pc %#x predicted (%#x,%v), want %#x", round, pc, got, ok, target)
			}
			b.Update(pc, target)
		}
	}
	s := b.Stats()
	// Only the first round's 64 updates are compulsory misses.
	if s.Misses != 64 {
		t.Errorf("BTAC misses = %d, want 64 compulsory", s.Misses)
	}
	if s.Lookups != 4*64 {
		t.Errorf("BTAC lookups = %d, want %d", s.Lookups, 4*64)
	}
}

func TestBTACConflictEviction(t *testing.T) {
	b := NewBTAC(8, 2) // 4 sets x 2 ways
	// 3 PCs mapping to the same set exceed its 2 ways.
	pcs := []uint64{0x10, 0x10 + 4*4, 0x10 + 8*4}
	for round := 0; round < 3; round++ {
		for _, pc := range pcs {
			b.Update(pc, pc*2)
		}
	}
	// With LRU and a cyclic access order, every access misses (thrash).
	if s := b.Stats(); s.Misses != s.Lookups {
		t.Errorf("expected thrashing set: %d misses of %d lookups", s.Misses, s.Lookups)
	}
}

func TestBTACTargetChangeCountsMiss(t *testing.T) {
	b := DefaultBTAC()
	b.Update(0x40, 0x100)
	b.Update(0x40, 0x200) // target changed: would mispredict
	b.Update(0x40, 0x200)
	if s := b.Stats(); s.Misses != 2 {
		t.Errorf("misses = %d, want 2 (compulsory + target change)", s.Misses)
	}
}

func TestIndirectMonomorphicLearned(t *testing.T) {
	ind := DefaultIndirect()
	misses := 0
	for i := 0; i < 200; i++ {
		target := uint64(0x9000)
		if got, ok := ind.Predict(0x777); !ok || got != target {
			misses++
		}
		ind.Update(0x777, target)
	}
	// The path history needs a few iterations to reach its fixed point;
	// after that transient the site must be predicted perfectly.
	if misses > 16 {
		t.Errorf("monomorphic indirect branch missed %d times", misses)
	}
	ind2 := DefaultIndirect()
	trans := 0
	for i := 0; i < 400; i++ {
		if got, ok := ind2.Predict(0x777); i >= 200 && (!ok || got != 0x9000) {
			trans++
		}
		ind2.Update(0x777, 0x9000)
	}
	if trans != 0 {
		t.Errorf("%d misses after warm-up on monomorphic site", trans)
	}
}

func TestIndirectPathCorrelatedTargets(t *testing.T) {
	// A polymorphic call site alternating between two targets in a fixed
	// A,B,A,B pattern. The path history (previous target) disambiguates.
	ind := DefaultIndirect()
	misses := 0
	const n = 4000
	for i := 0; i < n; i++ {
		target := uint64(0xA000)
		if i%2 == 1 {
			target = 0xB000
		}
		if got, ok := ind.Predict(0x500); !ok || got != target {
			misses++
		}
		ind.Update(0x500, target)
	}
	rate := float64(misses) / n
	if rate > 0.05 {
		t.Errorf("alternating indirect targets missed at %.3f; path history should disambiguate", rate)
	}
}

func TestRASBalancedCallsPerfect(t *testing.T) {
	r := DefaultRAS()
	var depthTruth []uint64
	rng := rand.New(rand.NewSource(5))
	for i := 0; i < 10000; i++ {
		if len(depthTruth) == 0 || (len(depthTruth) < 16 && rng.Intn(2) == 0) {
			addr := uint64(0x1000 + i*4)
			depthTruth = append(depthTruth, addr)
			r.Push(addr)
			continue
		}
		want := depthTruth[len(depthTruth)-1]
		depthTruth = depthTruth[:len(depthTruth)-1]
		if got := r.Pop(want); got != want {
			t.Fatalf("balanced nesting within capacity mispredicted: got %#x want %#x", got, want)
		}
	}
	if s := r.Stats(); s.Misses != 0 {
		t.Errorf("misses = %d on nesting within capacity", s.Misses)
	}
}

func TestRASOverflowWrapsAround(t *testing.T) {
	r := NewRAS(4)
	// Push 6 deep: the two oldest entries are overwritten.
	for i := 1; i <= 6; i++ {
		r.Push(uint64(i * 0x10))
	}
	if r.Depth() != 4 {
		t.Fatalf("depth = %d, want 4 after overflow", r.Depth())
	}
	// The four most recent return correctly...
	for i := 6; i >= 3; i-- {
		want := uint64(i * 0x10)
		if got := r.Pop(want); got != want {
			t.Errorf("pop %d: got %#x want %#x", i, got, want)
		}
	}
	// ...the overwritten two do not.
	wrong := 0
	for i := 2; i >= 1; i-- {
		if got := r.Pop(uint64(i * 0x10)); got != uint64(i*0x10) {
			wrong++
		}
	}
	if wrong != 2 {
		t.Errorf("overwritten entries: %d wrong pops, want 2", wrong)
	}
	if s := r.Stats(); s.Misses != 2 {
		t.Errorf("misses = %d, want exactly the 2 overflow victims", s.Misses)
	}
}

func TestRASPopEmpty(t *testing.T) {
	r := NewRAS(4)
	if got := r.Pop(0x42); got == 0x42 {
		t.Error("empty RAS cannot predict correctly")
	}
	if r.Depth() != 0 {
		t.Error("depth after popping empty stack")
	}
}

// Property: for any sequence of balanced calls/returns whose nesting never
// exceeds the RAS capacity, every return is predicted exactly.
func TestRASPropertyNoOverflowNoMiss(t *testing.T) {
	f := func(seed int64, capRaw uint8) bool {
		capacity := int(capRaw%31) + 2
		r := NewRAS(capacity)
		rng := rand.New(rand.NewSource(seed))
		var stack []uint64
		for i := 0; i < 500; i++ {
			if len(stack) < capacity && (len(stack) == 0 || rng.Intn(2) == 0) {
				a := rng.Uint64()
				stack = append(stack, a)
				r.Push(a)
			} else {
				want := stack[len(stack)-1]
				stack = stack[:len(stack)-1]
				if r.Pop(want) != want {
					return false
				}
			}
		}
		return r.Stats().Misses == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

// Property: BTAC with stable targets never mispredicts a working set that
// fits its capacity, regardless of access order.
func TestBTACPropertyFittingSetNoMiss(t *testing.T) {
	f := func(seed int64) bool {
		b := NewBTAC(64, 4)
		rng := rand.New(rand.NewSource(seed))
		// 16 branches spread over distinct sets always fit 64 entries.
		pcs := make([]uint64, 16)
		for i := range pcs {
			pcs[i] = uint64(i) * 4 << 2
		}
		// Warm.
		for _, pc := range pcs {
			b.Update(pc, pc^0xFFFF)
		}
		for i := 0; i < 300; i++ {
			pc := pcs[rng.Intn(len(pcs))]
			got, ok := b.Predict(pc)
			if !ok || got != pc^0xFFFF {
				return false
			}
			b.Update(pc, pc^0xFFFF)
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}
