package bpred

// Target prediction structures of Table I: the BTAC (branch target address
// cache, 7.5 kB), the indirect-branch target predictor (2 kB, a tagged
// path-history-indexed target table) and the 16-entry return address
// stack. Direction prediction says whether a branch is taken; these
// structures say where it goes, and a wrong target costs the same redirect
// penalty as a wrong direction.

// BTAC is a set-associative branch target address cache mapping branch PCs
// to their most recent target.
type BTAC struct {
	ways    int
	sets    int
	tags    []uint64 // 0 = empty (PCs are stored +1)
	targets []uint64
	lru     []uint64
	clock   uint64
	stats   Stats
}

// NewBTAC builds a BTAC with the given total entries and associativity.
// Entries is rounded up so that entries/ways is a power of two.
func NewBTAC(entries, ways int) *BTAC {
	if ways < 1 {
		ways = 1
	}
	if entries < ways {
		entries = ways
	}
	sets := nextPow2((entries + ways - 1) / ways)
	n := sets * ways
	return &BTAC{
		ways:    ways,
		sets:    sets,
		tags:    make([]uint64, n),
		targets: make([]uint64, n),
		lru:     make([]uint64, n),
	}
}

// DefaultBTAC approximates the paper's 7.5 kB BTAC: 512 entries, 4-way
// (512 × (tag+target) ≈ 7.5 kB with 46-bit tags and 64-bit targets
// truncated as in real hardware).
func DefaultBTAC() *BTAC { return NewBTAC(512, 4) }

// Stats returns lookup/miss counters. A miss is a lookup that returned no
// target or the wrong target.
func (b *BTAC) Stats() Stats { return b.stats }

// Predict returns the cached target for pc, with ok=false on a tag miss.
func (b *BTAC) Predict(pc uint64) (target uint64, ok bool) {
	set := int((pc >> 2) % uint64(b.sets))
	base := set * b.ways
	for w := 0; w < b.ways; w++ {
		if b.tags[base+w] == pc+1 {
			b.clock++
			b.lru[base+w] = b.clock
			return b.targets[base+w], true
		}
	}
	return 0, false
}

// Update installs the observed target for pc, replacing the LRU way on a
// miss, and records whether the earlier prediction would have been
// correct.
func (b *BTAC) Update(pc, target uint64) {
	b.stats.Lookups++
	set := int((pc >> 2) % uint64(b.sets))
	base := set * b.ways
	victim := base
	for w := 0; w < b.ways; w++ {
		i := base + w
		if b.tags[i] == pc+1 {
			if b.targets[i] != target {
				b.stats.Misses++
			}
			b.targets[i] = target
			b.clock++
			b.lru[i] = b.clock
			return
		}
		if b.lru[i] < b.lru[victim] {
			victim = i
		}
	}
	b.stats.Misses++
	b.clock++
	b.tags[victim] = pc + 1
	b.targets[victim] = target
	b.lru[victim] = b.clock
}

// ---------------------------------------------------------------------------
// Indirect predictor

// Indirect predicts indirect-branch targets from the PC hashed with a
// short path history of recent targets (ITTAGE-lite: a single tagged
// table; the 2 kB budget of Table I).
type Indirect struct {
	tags    []uint32
	targets []uint64
	mask    uint64
	path    uint64
	stats   Stats
}

// NewIndirect builds an indirect predictor with 2^indexBits entries.
func NewIndirect(indexBits int) *Indirect {
	if indexBits < 1 {
		indexBits = 1
	}
	n := 1 << indexBits
	return &Indirect{
		tags:    make([]uint32, n),
		targets: make([]uint64, n),
		mask:    uint64(n - 1),
	}
}

// DefaultIndirect approximates the paper's 2 kB budget: 256 entries of
// tag+target.
func DefaultIndirect() *Indirect { return NewIndirect(8) }

// Stats returns lookup/miss counters.
func (i *Indirect) Stats() Stats { return i.stats }

func (i *Indirect) hash(pc uint64) (idx uint64, tag uint32) {
	// Multiplicative mixing spreads every path bit over the low index
	// bits; a plain shift would lose targets differing only in high bits.
	h := pc>>2 ^ (i.path*0x9E3779B97F4A7C15)>>32
	return h & i.mask, uint32((h>>16)&0xffff) + 1 // +1: 0 means empty
}

// Predict returns the predicted target for the indirect branch at pc.
func (i *Indirect) Predict(pc uint64) (target uint64, ok bool) {
	idx, tag := i.hash(pc)
	if i.tags[idx] == tag {
		return i.targets[idx], true
	}
	return 0, false
}

// Update trains the predictor with the observed target and folds the
// target into the path history.
func (i *Indirect) Update(pc, target uint64) {
	i.stats.Lookups++
	idx, tag := i.hash(pc)
	if i.tags[idx] != tag || i.targets[idx] != target {
		i.stats.Misses++
	}
	i.tags[idx] = tag
	i.targets[idx] = target
	// Bounded path history: only recent targets influence the hash, so a
	// stable target sequence reaches a stable set of table entries.
	i.path = (i.path<<2 ^ target>>4) & 0xffff
}

// ---------------------------------------------------------------------------
// Return address stack

// RAS is a fixed-depth return address stack with wrap-around overwrite on
// overflow, as in real hardware (Table I: 16 entries).
type RAS struct {
	stack []uint64
	top   int // index of the next free slot
	depth int // live entries, capped at len(stack)
	stats Stats
}

// NewRAS builds a return address stack with the given capacity.
func NewRAS(entries int) *RAS {
	if entries < 1 {
		entries = 1
	}
	return &RAS{stack: make([]uint64, entries)}
}

// DefaultRAS returns the Table I 16-entry stack.
func DefaultRAS() *RAS { return NewRAS(16) }

// Stats counts Pop operations (Lookups) and wrong pops (Misses).
func (r *RAS) Stats() Stats { return r.stats }

// Push records a call's return address. On overflow the oldest entry is
// silently overwritten.
func (r *RAS) Push(returnAddr uint64) {
	r.stack[r.top] = returnAddr
	r.top = (r.top + 1) % len(r.stack)
	if r.depth < len(r.stack) {
		r.depth++
	}
}

// Pop predicts the target of a return. actual is the true return address;
// the miss counter advances when the prediction is wrong (typically after
// stack overflow dropped the matching push).
func (r *RAS) Pop(actual uint64) (predicted uint64) {
	r.stats.Lookups++
	if r.depth > 0 {
		r.top = (r.top - 1 + len(r.stack)) % len(r.stack)
		r.depth--
		predicted = r.stack[r.top]
	}
	if predicted != actual {
		r.stats.Misses++
	}
	return predicted
}

// Depth returns the number of live entries.
func (r *RAS) Depth() int { return r.depth }
