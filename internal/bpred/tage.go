package bpred

// TAGE (TAgged GEometric history length) branch predictor, after Seznec &
// Michaud, "A case for (partially) TAgged GEometric history length branch
// prediction" (JILP 2006). This is the predictor named in Table I of the
// paper ("TAGE 4 kB").
//
// Structure: a bimodal base predictor plus NumTables tagged components.
// Component i is indexed by a hash of the PC and the last L(i) outcome
// bits, with L(i) growing geometrically. Each tagged entry carries a
// partial tag, a 3-bit signed counter and a 2-bit usefulness counter. The
// prediction comes from the matching component with the longest history
// (the provider); the next matching component (or the base) is the
// alternate. On a misprediction, a new entry is allocated in a randomly
// chosen longer-history component whose victim entry is not useful.

// TAGEConfig sizes a TAGE predictor.
type TAGEConfig struct {
	BaseBits   int    // log2 of bimodal base entries
	TableBits  int    // log2 of entries per tagged table
	TagBits    int    // partial tag width (per tagged table)
	Histories  []int  // history length per tagged table, ascending
	UResetPerd uint64 // gracefully age usefulness every this many branches
}

// DefaultTAGEConfig matches the paper's 4 kB storage budget: a 2 k-entry
// bimodal base (0.5 kB) plus four 512-entry tagged tables with 9-bit tags
// (~3.5 kB), with geometric histories 5, 15, 44, 130.
func DefaultTAGEConfig() TAGEConfig {
	return TAGEConfig{
		BaseBits:   11,
		TableBits:  9,
		TagBits:    9,
		Histories:  []int{5, 15, 44, 130},
		UResetPerd: 1 << 18,
	}
}

// tageEntry is one tagged-component entry.
type tageEntry struct {
	tag uint16
	ctr int8  // signed 3-bit: -4..3, >=0 predicts taken
	u   uint8 // 2-bit usefulness
}

// foldedHistory incrementally maintains a compressed (folded) view of the
// last origLen history bits in compLen bits, as in the TAGE hardware.
type foldedHistory struct {
	comp    uint64
	compLen uint
	origLen uint
	outPos  uint // position where the outgoing bit re-enters the fold
}

func newFolded(origLen, compLen int) foldedHistory {
	return foldedHistory{
		compLen: uint(compLen),
		origLen: uint(origLen),
		outPos:  uint(origLen % compLen),
	}
}

// update folds in the newest history bit and folds out the bit leaving the
// history window (oldest holds the outcome from origLen branches ago).
func (f *foldedHistory) update(newest, oldest uint64) {
	f.comp = f.comp<<1 | newest
	f.comp ^= oldest << f.outPos
	f.comp ^= f.comp >> f.compLen
	f.comp &= 1<<f.compLen - 1
}

type tageTable struct {
	entries []tageEntry
	idxFold foldedHistory
	tagFold [2]foldedHistory // two folds decorrelate tag from index
	histLen int
	mask    uint64
	tagMask uint16
}

// Tage implements Predictor.
type Tage struct {
	cfg    TAGEConfig
	base   []uint8 // bimodal base, 2-bit counters
	bmask  uint64
	tables []*tageTable

	// Global history as a ring of outcome bits, long enough for the
	// longest component history.
	ghist []uint8
	gpos  int

	useAltOnNA int8 // 4-bit counter: prefer altpred for fresh entries
	rand       lfsr
	branches   uint64
	stats      Stats
}

// NewTAGE builds a TAGE predictor from cfg.
func NewTAGE(cfg TAGEConfig) *Tage {
	if len(cfg.Histories) == 0 {
		panic("bpred: TAGE needs at least one tagged table")
	}
	for i := 1; i < len(cfg.Histories); i++ {
		if cfg.Histories[i] <= cfg.Histories[i-1] {
			panic("bpred: TAGE histories must be ascending")
		}
	}
	base := make([]uint8, 1<<cfg.BaseBits)
	for i := range base {
		base[i] = 2
	}
	t := &Tage{
		cfg:   cfg,
		base:  base,
		bmask: uint64(len(base) - 1),
		ghist: make([]uint8, nextPow2(cfg.Histories[len(cfg.Histories)-1]+1)),
		rand:  newLFSR(),
	}
	for _, hl := range cfg.Histories {
		tab := &tageTable{
			entries: make([]tageEntry, 1<<cfg.TableBits),
			idxFold: newFolded(hl, cfg.TableBits),
			histLen: hl,
			mask:    uint64(1<<cfg.TableBits - 1),
			tagMask: uint16(1<<cfg.TagBits - 1),
		}
		tab.tagFold[0] = newFolded(hl, cfg.TagBits)
		tab.tagFold[1] = newFolded(hl, cfg.TagBits-1)
		t.tables = append(t.tables, tab)
	}
	return t
}

// NewDefaultTAGE builds the 4 kB Table I configuration.
func NewDefaultTAGE() *Tage { return NewTAGE(DefaultTAGEConfig()) }

// Name identifies the predictor.
func (t *Tage) Name() string { return string(TAGE) }

// Stats returns lookup/miss counters.
func (t *Tage) Stats() Stats { return t.stats }

// index computes table i's index for pc.
func (t *Tage) index(tab *tageTable, pc uint64) uint64 {
	h := pc >> 2
	return (h ^ h>>uint(t.cfg.TableBits) ^ uint64(tab.idxFold.comp)) & tab.mask
}

// tag computes table i's partial tag for pc.
func (t *Tage) tag(tab *tageTable, pc uint64) uint16 {
	h := pc >> 2
	return uint16(h^uint64(tab.tagFold[0].comp)^uint64(tab.tagFold[1].comp)<<1) & tab.tagMask
}

// Predict implements Predictor.
func (t *Tage) Predict(pc uint64, taken bool) bool {
	// Component lookups.
	type hit struct {
		table int
		idx   uint64
	}
	provider, alt := hit{table: -1}, hit{table: -1}
	var provPred, altPred bool
	for i := len(t.tables) - 1; i >= 0; i-- {
		tab := t.tables[i]
		idx := t.index(tab, pc)
		if tab.entries[idx].tag == t.tag(tab, pc) {
			if provider.table < 0 {
				provider = hit{i, idx}
				provPred = tab.entries[idx].ctr >= 0
			} else {
				alt = hit{i, idx}
				altPred = tab.entries[idx].ctr >= 0
				break
			}
		}
	}
	basePred := t.base[(pc>>2)&t.bmask] >= 2
	if alt.table < 0 {
		altPred = basePred
	}

	predicted := basePred
	weakProvider := false
	if provider.table >= 0 {
		e := &t.tables[provider.table].entries[provider.idx]
		// A "newly allocated" entry is weak (ctr in {-1,0}) and unproven
		// (u == 0); if experience says the alternate does better on such
		// entries, use it.
		weakProvider = e.u == 0 && (e.ctr == 0 || e.ctr == -1)
		if weakProvider && t.useAltOnNA >= 0 {
			predicted = altPred
		} else {
			predicted = provPred
		}
	}

	t.update(pc, taken, provider.table, provider.idx, provPred, altPred, weakProvider, predicted)

	t.stats.Lookups++
	if predicted != taken {
		t.stats.Misses++
	}
	return predicted
}

// update trains counters, manages usefulness and allocates on
// mispredictions, then pushes the outcome into the global history.
func (t *Tage) update(pc uint64, taken bool, provTable int, provIdx uint64, provPred, altPred, weakProvider, predicted bool) {
	// useAltOnNA learns whether fresh entries should be trusted.
	if provTable >= 0 && weakProvider && provPred != altPred {
		if altPred == taken {
			if t.useAltOnNA < 7 {
				t.useAltOnNA++
			}
		} else if t.useAltOnNA > -8 {
			t.useAltOnNA--
		}
	}

	if provTable >= 0 {
		e := &t.tables[provTable].entries[provIdx]
		// Usefulness: the provider was useful if it disagreed with the
		// alternate and was right.
		if provPred != altPred {
			if provPred == taken {
				inc(&e.u, 3)
			} else {
				dec(&e.u)
			}
		}
		ctrUpdate(&e.ctr, taken)
	} else {
		b := &t.base[(pc>>2)&t.bmask]
		if taken {
			inc(b, 3)
		} else {
			dec(b)
		}
	}

	// Allocate in a longer-history component on a misprediction (unless
	// the provider is the longest table already).
	if predicted != taken && provTable < len(t.tables)-1 {
		t.allocate(pc, taken, provTable)
	}

	// Graceful usefulness aging.
	t.branches++
	if t.cfg.UResetPerd > 0 && t.branches%t.cfg.UResetPerd == 0 {
		for _, tab := range t.tables {
			for i := range tab.entries {
				tab.entries[i].u >>= 1
			}
		}
	}

	t.pushHistory(taken)
}

// allocate tries to claim an entry in a component with a longer history
// than the provider. Among candidates with u == 0, a pseudo-random one is
// chosen (biased toward shorter histories, as in the reference design);
// if none is free, all candidate u counters are decremented.
func (t *Tage) allocate(pc uint64, taken bool, provTable int) {
	start := provTable + 1
	// Pseudo-randomly skip forward so allocation spreads across tables.
	if n := len(t.tables) - start; n > 1 {
		r := t.rand.next()
		if r&1 == 0 { // P(skip)=1/2 toward longer histories
			start++
			if n > 2 && r&2 == 0 {
				start++
			}
		}
	}
	for i := start; i < len(t.tables); i++ {
		tab := t.tables[i]
		idx := t.index(tab, pc)
		if e := &tab.entries[idx]; e.u == 0 {
			e.tag = t.tag(tab, pc)
			e.u = 0
			if taken {
				e.ctr = 0
			} else {
				e.ctr = -1
			}
			return
		}
	}
	for i := provTable + 1; i < len(t.tables); i++ {
		tab := t.tables[i]
		dec(&tab.entries[t.index(tab, pc)].u)
	}
}

// pushHistory shifts the outcome into the global history ring and updates
// every folded register.
func (t *Tage) pushHistory(taken bool) {
	bit := uint64(0)
	if taken {
		bit = 1
	}
	t.gpos = (t.gpos + 1) % len(t.ghist)
	t.ghist[t.gpos] = uint8(bit)
	for _, tab := range t.tables {
		oldest := uint64(t.ghist[(t.gpos-tab.histLen+len(t.ghist)*2)%len(t.ghist)])
		tab.idxFold.update(bit, oldest)
		tab.tagFold[0].update(bit, oldest)
		tab.tagFold[1].update(bit, oldest)
	}
}

// ctrUpdate moves a signed 3-bit counter toward the outcome.
func ctrUpdate(c *int8, taken bool) {
	if taken {
		if *c < 3 {
			*c++
		}
	} else if *c > -4 {
		*c--
	}
}

// nextPow2 returns the smallest power of two >= n.
func nextPow2(n int) int {
	p := 1
	for p < n {
		p <<= 1
	}
	return p
}
