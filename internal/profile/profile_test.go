package profile

import (
	"math"
	"testing"
	"testing/quick"

	"mcbench/internal/trace"
)

func mkParams(name string, seed int64) trace.Params {
	return trace.Params{
		Name:        name,
		LoadFrac:    0.25,
		StoreFrac:   0.10,
		BranchFrac:  0.12,
		FPFrac:      0.08,
		DepMean:     8,
		LoadDepFrac: 0.5,
		BranchBias:  0.9,
		CodeBytes:   16 << 10,
		Patterns:    []trace.PatternSpec{{Kind: trace.HotSet, Bytes: 64 << 10, Weight: 1}},
		Seed:        seed,
	}
}

func TestComputeBasics(t *testing.T) {
	tr := trace.MustGenerate(mkParams("basics", 1), 50000)
	p := MustCompute(tr)

	if p.Ops != 50000 {
		t.Fatalf("Ops = %d", p.Ops)
	}
	// Measured mix must be near the generator parameters.
	for _, c := range []struct {
		name      string
		got, want float64
	}{
		{"load", p.LoadFrac, 0.25},
		{"store", p.StoreFrac, 0.10},
		{"branch", p.BranchFrac, 0.12},
		{"fp", p.FPFrac, 0.08},
	} {
		if math.Abs(c.got-c.want) > 0.01 {
			t.Errorf("%s frac = %.3f, want ~%.3f", c.name, c.got, c.want)
		}
	}
	if p.CallFrac != 0 {
		t.Errorf("CallFrac = %g on a call-free trace", p.CallFrac)
	}
	if p.MemRefs == 0 || p.DataLines == 0 || p.CodeLines == 0 {
		t.Error("footprints empty")
	}
	// A 64 kB hot set spans at most 1024 lines (plus nothing else).
	if p.DataLines > 1024 {
		t.Errorf("DataLines = %d exceeds the 64 kB working set", p.DataLines)
	}
	// Biased branches: taken rate should not be extreme, transition rate
	// in (0,1).
	if p.TransitionRate <= 0 || p.TransitionRate >= 1 {
		t.Errorf("TransitionRate = %g", p.TransitionRate)
	}
	if p.BranchSites == 0 || p.BranchSites > 64 {
		t.Errorf("BranchSites = %d", p.BranchSites)
	}
}

func TestReuseHistogramAccountsAllRefs(t *testing.T) {
	tr := trace.MustGenerate(mkParams("acct", 2), 30000)
	p := MustCompute(tr)
	var total uint64
	for _, c := range p.ReuseHist {
		total += c
	}
	if total != uint64(p.MemRefs) {
		t.Fatalf("histogram total %d != mem refs %d", total, p.MemRefs)
	}
}

// A pure stream has no reuse: every access is a cold miss.
func TestStreamAllCold(t *testing.T) {
	params := mkParams("stream", 3)
	params.Patterns = []trace.PatternSpec{{Kind: trace.Stream, Weight: 1}}
	tr := trace.MustGenerate(params, 20000)
	p := MustCompute(tr)
	if p.ColdMisses != uint64(p.MemRefs) {
		t.Fatalf("stream: %d cold of %d refs; want all cold", p.ColdMisses, p.MemRefs)
	}
	if got := p.MissRatio(1 << 20); got != 1 {
		t.Errorf("stream MissRatio = %g, want 1 for any cache size", got)
	}
	// Streams are sequential: the spatial-locality feature must see it.
	if p.SeqFrac < 0.95 {
		t.Errorf("stream SeqFrac = %g, want ~1", p.SeqFrac)
	}
}

// A tiny hot set fits everywhere: after the cold start, every access hits
// short distances and the estimated miss ratio of any reasonable cache is
// near the cold-miss floor.
func TestHotSetShortDistances(t *testing.T) {
	params := mkParams("hot", 4)
	params.Patterns = []trace.PatternSpec{{Kind: trace.HotSet, Bytes: 4 << 10, Weight: 1}}
	tr := trace.MustGenerate(params, 30000)
	p := MustCompute(tr)
	if p.DataLines > 64 {
		t.Fatalf("4 kB hot set touched %d lines", p.DataLines)
	}
	if got := p.MissRatio(128); got > float64(p.ColdMisses)/float64(p.MemRefs)+0.01 {
		t.Errorf("hot set MissRatio(128 lines) = %g, want near cold floor %g",
			got, float64(p.ColdMisses)/float64(p.MemRefs))
	}
}

// A cyclic scan over R lines thrashes LRU caches smaller than R (every
// access misses) and fits caches larger than R (every access hits after
// the first sweep). The stack-distance histogram must resolve this edge.
func TestScanThrashingEdge(t *testing.T) {
	const regionBytes = 32 << 10 // 512 lines
	params := mkParams("scan", 5)
	params.Patterns = []trace.PatternSpec{{Kind: trace.Scan, Bytes: regionBytes, Weight: 1}}
	tr := trace.MustGenerate(params, 60000)
	p := MustCompute(tr)

	lines := regionBytes / trace.CacheLine
	small := p.MissRatio(lines / 2)
	big := p.MissRatio(lines * 2)
	if small < 0.95 {
		t.Errorf("scan in half-size cache: MissRatio = %g, want ~1", small)
	}
	if big > 0.15 {
		t.Errorf("scan in double-size cache: MissRatio = %g, want near 0", big)
	}
}

// MissRatio must be monotonically non-increasing in the cache size.
func TestMissRatioMonotone(t *testing.T) {
	tr := trace.MustGenerate(mkParams("mono", 6), 30000)
	p := MustCompute(tr)
	prev := 1.1
	for shift := 4; shift <= 20; shift++ {
		r := p.MissRatio(1 << shift)
		if r > prev+1e-12 {
			t.Fatalf("MissRatio not monotone at %d lines: %g after %g", 1<<shift, r, prev)
		}
		prev = r
	}
}

// Feature vectors: stable length, aligned names, deterministic.
func TestFeaturesShape(t *testing.T) {
	tr := trace.MustGenerate(mkParams("feat", 7), 20000)
	p := MustCompute(tr)
	f1, f2 := p.Features(), p.Features()
	if len(f1) != len(FeatureNames()) {
		t.Fatalf("features %d, names %d", len(f1), len(FeatureNames()))
	}
	for i := range f1 {
		if f1[i] != f2[i] {
			t.Fatal("Features not deterministic")
		}
		if math.IsNaN(f1[i]) || math.IsInf(f1[i], 0) {
			t.Fatalf("feature %s = %g", FeatureNames()[i], f1[i])
		}
	}
}

// Distinct access patterns must be separable in feature space: a stream,
// a hot set and a pointer chase produce pairwise distant vectors.
func TestFeaturesSeparatePatterns(t *testing.T) {
	kinds := []trace.PatternKind{trace.Stream, trace.HotSet, trace.Chase}
	var feats [][]float64
	for i, k := range kinds {
		params := mkParams(k.String(), int64(10+i))
		params.Patterns = []trace.PatternSpec{{Kind: k, Bytes: 256 << 10, Weight: 1}}
		feats = append(feats, MustCompute(trace.MustGenerate(params, 30000)).Features())
	}
	for i := 0; i < len(feats); i++ {
		for j := i + 1; j < len(feats); j++ {
			d := 0.0
			for k := range feats[i] {
				d += math.Abs(feats[i][k] - feats[j][k])
			}
			if d < 0.5 {
				t.Errorf("%v and %v features nearly identical (L1 distance %g)",
					kinds[i], kinds[j], d)
			}
		}
	}
}

func TestComputeRejectsEmpty(t *testing.T) {
	if _, err := Compute(&trace.Trace{Name: "empty"}); err == nil {
		t.Fatal("empty trace accepted")
	}
	if _, err := Compute(nil); err == nil {
		t.Fatal("nil trace accepted")
	}
}

// Property: the Fenwick tree matches a naive prefix-sum oracle.
func TestFenwickProperty(t *testing.T) {
	f := func(ops []uint16) bool {
		const n = 64
		fen := newFenwick(n)
		naive := make([]int, n+1)
		for _, o := range ops {
			pos := int(o%n) + 1
			delta := 1
			if o%3 == 0 {
				delta = -1
			}
			fen.add(pos, delta)
			naive[pos] += delta
		}
		for i := 0; i <= n; i++ {
			want := 0
			for j := 1; j <= i; j++ {
				want += naive[j]
			}
			if fen.prefixSum(i) != want {
				return false
			}
		}
		// Spot-check range sums.
		for lo := 1; lo < n; lo += 7 {
			for hi := lo; hi <= n; hi += 11 {
				want := 0
				for j := lo; j <= hi; j++ {
					want += naive[j]
				}
				if fen.rangeSum(lo, hi) != want {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

// Property: bucketOf is monotone and in range.
func TestBucketOfProperty(t *testing.T) {
	prev := 0
	for d := 0; d < 1<<23; d = d*2 + 1 {
		b := bucketOf(d)
		if b < 0 || b >= ReuseBuckets {
			t.Fatalf("bucketOf(%d) = %d out of range", d, b)
		}
		if b < prev {
			t.Fatalf("bucketOf not monotone at %d", d)
		}
		prev = b
	}
}

// The stack-distance implementation must agree with a naive O(n²) oracle
// on a small synthetic reference stream.
func TestStackDistanceAgainstOracle(t *testing.T) {
	params := mkParams("oracle", 9)
	params.Patterns = []trace.PatternSpec{
		{Kind: trace.HotSet, Bytes: 2 << 10, Weight: 1},
		{Kind: trace.Scan, Bytes: 4 << 10, Weight: 1},
	}
	tr := trace.MustGenerate(params, 4000)
	p := MustCompute(tr)

	// Oracle: replay the memory reference stream.
	var hist [ReuseBuckets]uint64
	var refs []uint64
	for _, op := range tr.Ops {
		if op.Kind == trace.Load || op.Kind == trace.Store {
			refs = append(refs, op.Addr/trace.CacheLine)
		}
	}
	lastPos := map[uint64]int{}
	for i, line := range refs {
		if last, ok := lastPos[line]; ok {
			distinct := map[uint64]struct{}{}
			for j := last + 1; j < i; j++ {
				distinct[refs[j]] = struct{}{}
			}
			hist[bucketOf(len(distinct))]++
		} else {
			hist[ReuseBuckets-1]++
		}
		lastPos[line] = i
	}
	if hist != p.ReuseHist {
		t.Fatalf("reuse histogram mismatch:\nfast:   %v\noracle: %v", p.ReuseHist, hist)
	}
}
