// Package profile computes microarchitecture-independent profiles of
// benchmark traces: instruction mix, dependency distances, branch
// behaviour, code/data footprints and the reuse-distance (LRU stack
// distance) histogram of the memory reference stream.
//
// Van Biesbrouck, Eeckhout and Calder ("Representative multiprogram
// workloads for multithreaded processor simulation", IISWC 2007 — cited
// as [7] by the paper) build workload samples by clustering exactly this
// kind of profile. Package cluster consumes the feature vectors produced
// here; package sampling turns the clusters into the two class-based
// selection methods the paper surveys in Section II-B.
package profile

import (
	"fmt"
	"math"

	"mcbench/internal/trace"
)

// ReuseBuckets is the number of log2-spaced reuse-distance buckets:
// bucket i counts accesses with stack distance in [2^i, 2^(i+1)), bucket 0
// counts distance 0 and 1, and the last bucket also absorbs cold misses
// (infinite distance).
const ReuseBuckets = 22

// Profile summarises one benchmark trace.
type Profile struct {
	Name string
	Ops  int

	// Instruction mix (fractions of all µops).
	LoadFrac   float64
	StoreFrac  float64
	BranchFrac float64
	FPFrac     float64
	CallFrac   float64 // calls + returns

	// Dependency behaviour.
	MeanDepDist float64 // mean register dependency distance (both slots)
	DepFrac     float64 // fraction of µops with at least one dependency

	// Branch behaviour.
	TakenRate      float64 // fraction of branches taken
	TransitionRate float64 // fraction of branches whose outcome differs from the previous branch's
	BranchSites    int     // distinct branch PCs

	// Footprints.
	CodeLines int // distinct instruction-cache lines touched
	DataLines int // distinct data-cache lines touched

	// Memory locality.
	MemRefs     int // load + store µops
	ReuseHist   [ReuseBuckets]uint64
	ColdMisses  uint64  // first-touch accesses (infinite stack distance)
	SeqFrac     float64 // accesses whose line follows the previous access's line
	MeanLogDist float64 // mean log2(1+stack distance) over finite distances
}

// Compute profiles tr in one pass. The reuse-distance computation is the
// Bennett–Kruskal algorithm: a Fenwick tree over access timestamps counts
// the distinct lines touched since the profiled line's previous access.
func Compute(tr *trace.Trace) (*Profile, error) {
	if tr == nil || tr.Len() == 0 {
		return nil, fmt.Errorf("profile: empty trace")
	}
	p := &Profile{Name: tr.Name, Ops: tr.Len()}

	memOps := 0
	for _, op := range tr.Ops {
		if op.Kind == trace.Load || op.Kind == trace.Store {
			memOps++
		}
	}
	fen := newFenwick(memOps + 1)
	lastAccess := make(map[uint64]int, 1<<12) // line -> timestamp (1-based)

	var (
		deps, depSum int
		branches     uint64
		taken, trans uint64
		prevTaken    bool
		havePrev     bool
		branchPCs    = map[uint64]struct{}{}
		codeLines    = map[uint32]struct{}{}
		prevLine     uint64
		havePrevLine bool
		seq          uint64
		logDistSum   float64
		finiteReuses uint64
		memTime      int // 1-based timestamp of the current memory access
	)

	for i := range tr.Ops {
		op := &tr.Ops[i]
		codeLines[op.ILine] = struct{}{}
		if op.Dep1 > 0 || op.Dep2 > 0 {
			deps++
		}
		if op.Dep1 > 0 {
			depSum += int(op.Dep1)
		}
		if op.Dep2 > 0 {
			depSum += int(op.Dep2)
		}
		switch op.Kind {
		case trace.Load:
			p.LoadFrac++
		case trace.Store:
			p.StoreFrac++
		case trace.FP:
			p.FPFrac++
		case trace.Call, trace.Ret:
			p.CallFrac++
		case trace.Branch:
			p.BranchFrac++
			branches++
			branchPCs[op.PC] = struct{}{}
			if op.Taken {
				taken++
			}
			if havePrev && op.Taken != prevTaken {
				trans++
			}
			prevTaken, havePrev = op.Taken, true
		}

		if op.Kind != trace.Load && op.Kind != trace.Store {
			continue
		}
		line := op.Addr / trace.CacheLine
		memTime++
		if havePrevLine && (line == prevLine || line == prevLine+1) {
			seq++
		}
		prevLine, havePrevLine = line, true

		if last, ok := lastAccess[line]; ok {
			// Stack distance: distinct lines since the previous access.
			dist := fen.rangeSum(last+1, memTime-1)
			p.ReuseHist[bucketOf(dist)]++
			logDistSum += math.Log2(float64(1 + dist))
			finiteReuses++
			fen.add(last, -1)
		} else {
			p.ColdMisses++
			p.ReuseHist[ReuseBuckets-1]++
		}
		lastAccess[line] = memTime
		fen.add(memTime, 1)
	}

	n := float64(tr.Len())
	p.LoadFrac /= n
	p.StoreFrac /= n
	p.BranchFrac /= n
	p.FPFrac /= n
	p.CallFrac /= n
	if deps > 0 {
		p.MeanDepDist = float64(depSum) / float64(deps)
	}
	p.DepFrac = float64(deps) / n
	if branches > 0 {
		p.TakenRate = float64(taken) / float64(branches)
	}
	if branches > 1 {
		p.TransitionRate = float64(trans) / float64(branches-1)
	}
	p.BranchSites = len(branchPCs)
	p.CodeLines = len(codeLines)
	p.DataLines = len(lastAccess)
	p.MemRefs = memTime
	if memTime > 0 {
		p.SeqFrac = float64(seq) / float64(memTime)
	}
	if finiteReuses > 0 {
		p.MeanLogDist = logDistSum / float64(finiteReuses)
	}
	return p, nil
}

// MustCompute is Compute for known-good traces.
func MustCompute(tr *trace.Trace) *Profile {
	p, err := Compute(tr)
	if err != nil {
		panic(err)
	}
	return p
}

// bucketOf maps a stack distance to its log2 histogram bucket.
func bucketOf(dist int) int {
	if dist < 2 {
		return 0
	}
	b := 0
	for d := dist; d > 1; d >>= 1 {
		b++
	}
	if b >= ReuseBuckets-1 {
		return ReuseBuckets - 2 // the last bucket is reserved for cold
	}
	return b
}

// MissRatio estimates the fraction of memory references that miss in a
// fully-associative LRU cache of cacheLines lines: references whose stack
// distance is at least cacheLines, plus cold misses. It is the classical
// microarchitecture-independent miss model; set-associativity, private-L1
// filtering and prefetching make real miss ratios differ, but the ranking
// of benchmarks by memory intensity is preserved.
func (p *Profile) MissRatio(cacheLines int) float64 {
	if p.MemRefs == 0 {
		return 0
	}
	var misses uint64
	for b := 0; b < ReuseBuckets-1; b++ {
		// Bucket b holds distances in [2^b, 2^(b+1)); count it as missing
		// if its lower bound is at or past the cache size.
		lower := 1 << b
		if b == 0 {
			lower = 0
		}
		if lower >= cacheLines {
			misses += p.ReuseHist[b]
		}
	}
	misses += p.ReuseHist[ReuseBuckets-1] // cold
	return float64(misses) / float64(p.MemRefs)
}

// EstMPKI converts MissRatio into misses per kilo-instruction for a cache
// of the given size in bytes.
func (p *Profile) EstMPKI(cacheBytes int) float64 {
	ratio := p.MissRatio(cacheBytes / trace.CacheLine)
	return ratio * float64(p.MemRefs) / float64(p.Ops) * 1000
}

// Features returns the benchmark's feature vector for cluster analysis.
// Dimensions are chosen to be microarchitecture-independent and roughly
// comparable in magnitude; cluster.Normalize z-scores them anyway.
func (p *Profile) Features() []float64 {
	return []float64{
		p.LoadFrac,
		p.StoreFrac,
		p.BranchFrac,
		p.FPFrac,
		p.MeanDepDist,
		p.DepFrac,
		p.TakenRate,
		p.TransitionRate,
		math.Log2(float64(1 + p.CodeLines)),
		math.Log2(float64(1 + p.DataLines)),
		p.SeqFrac,
		p.MeanLogDist,
		p.MissRatio(1 << 8),  // 16 kB
		p.MissRatio(1 << 12), // 256 kB
		p.MissRatio(1 << 14), // 1 MB
	}
}

// FeatureNames labels the dimensions of Features, index-aligned.
func FeatureNames() []string {
	return []string{
		"load-frac", "store-frac", "branch-frac", "fp-frac",
		"mean-dep-dist", "dep-frac", "taken-rate", "transition-rate",
		"log2-code-lines", "log2-data-lines", "seq-frac", "mean-log-reuse",
		"miss-ratio-16k", "miss-ratio-256k", "miss-ratio-1m",
	}
}

// ---------------------------------------------------------------------------
// Fenwick tree (binary indexed tree) over 1-based positions.

type fenwick struct {
	tree []int
}

func newFenwick(n int) *fenwick { return &fenwick{tree: make([]int, n+1)} }

func (f *fenwick) add(i, delta int) {
	for ; i < len(f.tree); i += i & -i {
		f.tree[i] += delta
	}
}

// prefixSum returns the sum of positions 1..i.
func (f *fenwick) prefixSum(i int) int {
	s := 0
	if i >= len(f.tree) {
		i = len(f.tree) - 1
	}
	for ; i > 0; i -= i & -i {
		s += f.tree[i]
	}
	return s
}

// rangeSum returns the sum of positions lo..hi (inclusive); empty ranges
// return 0.
func (f *fenwick) rangeSum(lo, hi int) int {
	if hi < lo {
		return 0
	}
	if lo < 1 {
		lo = 1
	}
	return f.prefixSum(hi) - f.prefixSum(lo-1)
}
