package serve

// The server's telemetry surface. Every Server owns a private registry
// (co-resident servers in tests must not mix series): the lab and the
// persistent store record into it directly, the HTTP layer wraps each
// endpoint with request/latency instrumentation, and the authoritative
// job-manager counters are mirrored as scrape-time collectors — the
// manager's Stats stay the single source of truth, the registry just
// reads them when scraped, so the two can never drift apart.
//
//	GET /metrics                Prometheus text exposition 0.0.4
//	GET /metrics?format=json    the same registry as a JSON snapshot
//	GET /fleet/metrics          per-worker aggregation (coordinator only)
//	GET /debug/pprof/...        net/http/pprof, opt-in via Config.Pprof

import (
	"net/http"
	"net/http/pprof"
	"time"

	"mcbench/internal/telemetry"
)

// registerMetrics installs the scrape-time mirrors of the server's
// authoritative counters. Called once from New, after the manager exists.
func (s *Server) registerMetrics() {
	r := s.metrics
	stat := func(f func(Stats) int64) func() float64 {
		return func() float64 { return float64(f(s.mgr.snapshotStats())) }
	}
	r.CounterFunc("mcbench_jobs_submitted_total", "job submissions accepted (coalesced included)",
		stat(func(st Stats) int64 { return st.Submitted }))
	r.CounterFunc("mcbench_jobs_coalesced_total", "submissions deduplicated onto an in-flight job",
		stat(func(st Stats) int64 { return st.Coalesced }))
	r.CounterFunc("mcbench_jobs_executed_total", "jobs that actually started running",
		stat(func(st Stats) int64 { return st.Executed }))
	r.CounterFunc("mcbench_jobs_completed_total", "jobs finished successfully",
		stat(func(st Stats) int64 { return st.Done }))
	r.CounterFunc("mcbench_jobs_failed_total", "jobs finished in failure",
		stat(func(st Stats) int64 { return st.Failed }))
	r.CounterFunc("mcbench_jobs_canceled_total", "jobs canceled before completion",
		stat(func(st Stats) int64 { return st.Canceled }))
	r.CounterFunc("mcbench_jobs_panics_total", "jobs that died to a recovered panic",
		stat(func(st Stats) int64 { return st.Panics }))
	r.CounterFunc("mcbench_jobs_timeout_total", "jobs killed by the per-job wall-clock bound",
		stat(func(st Stats) int64 { return st.TimedOut }))
	r.GaugeFunc("mcbench_jobs_queued", "jobs accepted but not yet running",
		stat(func(st Stats) int64 { return st.Queued }))
	r.GaugeFunc("mcbench_jobs_running", "jobs currently executing",
		stat(func(st Stats) int64 { return st.Running }))
	r.CounterFunc("mcbench_sweeps_total", "full population sweeps actually executed (cache and fabric hits excluded)",
		func() float64 { badco, _ := s.lab.SweepCounts(); return float64(badco) },
		telemetry.L("sim", "badco"))
	r.CounterFunc("mcbench_sweeps_total", "full population sweeps actually executed (cache and fabric hits excluded)",
		func() float64 { _, detailed := s.lab.SweepCounts(); return float64(detailed) },
		telemetry.L("sim", "detailed"))
	r.GaugeFunc("mcbench_uptime_seconds", "seconds since the server started",
		func() float64 { return time.Since(s.start).Seconds() })
	if s.coord != nil {
		// Coordinator-local fleet series only — the Prometheus scrape path
		// must never do network I/O (the per-worker aggregation lives on
		// /fleet/metrics, which fans out explicitly).
		r.GaugeFunc("mcbench_fleet_peers", "live fleet workers",
			func() float64 { return float64(s.coord.Peers()) })
		r.CounterFunc("mcbench_fleet_shards_stolen_total", "shards re-issued after a worker death or straggle",
			func() float64 { return float64(s.coord.Stolen()) })
	}
}

// instrument wraps one endpoint's handler with a request counter and a
// latency histogram, both labelled by the route pattern (never the raw
// URL, so /jobs/{id} stays one series regardless of traffic).
func (s *Server) instrument(endpoint string, h http.HandlerFunc) http.HandlerFunc {
	reqs := s.metrics.Counter("mcbench_http_requests_total",
		"HTTP requests served", telemetry.L("endpoint", endpoint))
	lat := s.metrics.Histogram("mcbench_http_request_seconds",
		"HTTP request latency", telemetry.L("endpoint", endpoint))
	return func(w http.ResponseWriter, r *http.Request) {
		start := time.Now()
		h(w, r)
		reqs.Inc()
		lat.ObserveDuration(time.Since(start))
	}
}

// handleMetrics serves the registry: Prometheus text by default, the
// JSON snapshot (the form mcbench.Client and the fleet scraper consume)
// with ?format=json.
func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	if r.URL.Query().Get("format") == "json" {
		writeJSON(w, http.StatusOK, s.metrics.Snapshot())
		return
	}
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	_ = s.metrics.WritePrometheus(w)
}

// WorkerMetrics is one worker's row of the /fleet/metrics aggregation:
// the coordinator scrapes each live worker's JSON snapshot and distils
// the fleet-operations view (queue pressure, sweep throughput, liveness).
type WorkerMetrics struct {
	ID           string `json:"id"`
	Addr         string `json:"addr"`
	HeartbeatAge string `json:"heartbeat_age"`
	// Error is set when the worker's scrape failed; the numeric fields
	// are zero then.
	Error          string  `json:"error,omitempty"`
	Queued         float64 `json:"queued"`
	Running        float64 `json:"running"`
	JobsCompleted  float64 `json:"jobs_completed"`
	SweepsBadco    float64 `json:"sweeps_badco"`
	SweepsDetailed float64 `json:"sweeps_detailed"`
	UptimeSeconds  float64 `json:"uptime_seconds"`
	// SweepsPerSecond is total sweeps over uptime — the worker's
	// campaign throughput since it started.
	SweepsPerSecond float64 `json:"sweeps_per_second"`
}

// FleetMetrics is the /fleet/metrics payload.
type FleetMetrics struct {
	Workers []WorkerMetrics `json:"workers"`
	// Totals sums the numeric columns over the scrapable workers.
	TotalQueued    float64 `json:"total_queued"`
	TotalRunning   float64 `json:"total_running"`
	TotalSweeps    float64 `json:"total_sweeps"`
	ShardsStolen   int64   `json:"shards_stolen"`
	WorkersScraped int     `json:"workers_scraped"`
	WorkersFailed  int     `json:"workers_failed"`
}

// handleFleetMetrics serves the coordinator's aggregated per-worker view.
// Unlike /metrics this fans out over the network (one scrape per live
// worker, in parallel), so it is its own endpoint rather than extra
// series on the Prometheus path.
func (s *Server) handleFleetMetrics(w http.ResponseWriter, r *http.Request) {
	if s.coord == nil {
		writeError(w, http.StatusNotFound, "serve: not a fleet coordinator")
		return
	}
	out := FleetMetrics{Workers: []WorkerMetrics{}, ShardsStolen: s.coord.Stolen()}
	for _, sc := range s.coord.Scrape(r.Context()) {
		wm := WorkerMetrics{
			ID: sc.ID, Addr: sc.Addr,
			HeartbeatAge: sc.HeartbeatAge.Round(time.Millisecond).String(),
		}
		switch {
		case sc.Err != nil:
			wm.Error = sc.Err.Error()
			out.WorkersFailed++
		case sc.Snapshot == nil:
			wm.Error = "peer does not expose metrics"
			out.WorkersFailed++
		default:
			snap := sc.Snapshot
			wm.Queued = snap.Gauge("mcbench_jobs_queued")
			wm.Running = snap.Gauge("mcbench_jobs_running")
			wm.JobsCompleted = snap.Counter("mcbench_jobs_completed_total")
			wm.SweepsBadco = snap.Counters[`mcbench_sweeps_total{sim="badco"}`]
			wm.SweepsDetailed = snap.Counters[`mcbench_sweeps_total{sim="detailed"}`]
			wm.UptimeSeconds = snap.Gauge("mcbench_uptime_seconds")
			if wm.UptimeSeconds > 0 {
				wm.SweepsPerSecond = (wm.SweepsBadco + wm.SweepsDetailed) / wm.UptimeSeconds
			}
			out.TotalQueued += wm.Queued
			out.TotalRunning += wm.Running
			out.TotalSweeps += wm.SweepsBadco + wm.SweepsDetailed
			out.WorkersScraped++
		}
		out.Workers = append(out.Workers, wm)
	}
	writeJSON(w, http.StatusOK, out)
}

// pprofRoutes mounts net/http/pprof on the mux. Opt-in (Config.Pprof):
// profiles expose implementation detail and cost CPU, so a production
// server only carries them when asked.
func pprofRoutes(mux *http.ServeMux) {
	mux.HandleFunc("GET /debug/pprof/", pprof.Index)
	mux.HandleFunc("GET /debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("GET /debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("GET /debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("GET /debug/pprof/trace", pprof.Trace)
}
