package serve

// Job executors. Experiment jobs ride the shared Lab — its single-flight
// memoization and persistent table cache are what make N concurrent
// clients cheap — and the event router forwards the lab's product
// events (sweeps starting, tables landing, cache hits) to every job that
// declared an interest in the product. Ad-hoc simulate/sweep jobs
// resolve traces through the lab's source (memoized, shared) and build
// the few BADCO models they need per job.

import (
	"context"
	"fmt"
	"sync"
	"time"

	"mcbench/internal/badco"
	"mcbench/internal/bench"
	"mcbench/internal/cache"
	"mcbench/internal/experiments"
	"mcbench/internal/multicore"
)

// router fans lab product events out to the jobs interested in each
// product. Jobs register the normalized requests of their campaign plan
// before warming and unregister afterwards; a product event reaches
// every job registered for it at emission time — including single-flight
// waiters riding another job's computation.
type router struct {
	mu sync.Mutex
	m  map[experiments.Request]map[*job]struct{}
}

func newRouter() *router {
	return &router{m: map[experiments.Request]map[*job]struct{}{}}
}

func (r *router) register(j *job, plan []experiments.Request) {
	r.mu.Lock()
	defer r.mu.Unlock()
	for _, req := range plan {
		req = req.Normalized()
		set := r.m[req]
		if set == nil {
			set = map[*job]struct{}{}
			r.m[req] = set
		}
		set[j] = struct{}{}
	}
}

func (r *router) unregister(j *job, plan []experiments.Request) {
	r.mu.Lock()
	defer r.mu.Unlock()
	for _, req := range plan {
		req = req.Normalized()
		if set := r.m[req]; set != nil {
			delete(set, j)
			if len(set) == 0 {
				delete(r.m, req)
			}
		}
	}
}

// dispatch is installed as the lab's Observer. Product events carry
// normalized identity fields by construction, so the lookup key is
// direct.
func (r *router) dispatch(ev experiments.ProductEvent) {
	req := experiments.Request{
		Sim:    experiments.Simulator(ev.Sim),
		Cores:  ev.Cores,
		Policy: cache.PolicyName(ev.Policy),
	}
	r.mu.Lock()
	jobs := make([]*job, 0, len(r.m[req]))
	for j := range r.m[req] {
		jobs = append(jobs, j)
	}
	r.mu.Unlock()
	if len(jobs) == 0 {
		return
	}
	data := map[string]any{
		"sim":   ev.Sim,
		"phase": ev.Phase,
	}
	if ev.Cores > 0 {
		data["cores"] = ev.Cores
	}
	if ev.Policy != "" {
		data["policy"] = ev.Policy
	}
	if ev.Cached {
		data["cached"] = true
	}
	if ev.Phase == "done" && ev.Err == nil {
		data["rows"] = ev.Rows
		data["elapsed_ms"] = ev.Elapsed.Milliseconds()
	}
	if ev.Err != nil {
		data["error"] = ev.Err.Error()
	}
	msg := productMsg(ev)
	for _, j := range jobs {
		j.emit("product", msg, data)
	}
}

// productMsg renders one product event for human consumers of the
// stream.
func productMsg(ev experiments.ProductEvent) string {
	id := ev.Sim
	if ev.Cores > 0 {
		id = fmt.Sprintf("%s c%d", id, ev.Cores)
	}
	if ev.Policy != "" {
		id = fmt.Sprintf("%s %s", id, ev.Policy)
	}
	switch {
	case ev.Err != nil:
		return fmt.Sprintf("%s: %v", id, ev.Err)
	case ev.Phase == "start":
		return id + ": computing"
	case ev.Cached:
		return fmt.Sprintf("%s: %d rows (cache)", id, ev.Rows)
	default:
		return fmt.Sprintf("%s: %d rows in %v", id, ev.Rows, ev.Elapsed.Round(time.Millisecond))
	}
}

// runJob dispatches one job to its executor.
func (s *Server) runJob(ctx context.Context, j *job) (*JobResult, error) {
	switch j.req.Kind {
	case KindExperiment:
		return s.runExperiment(ctx, j)
	case KindSimulate:
		return s.runSimulate(ctx, j)
	case KindSweep:
		return s.runSweep(ctx, j)
	case KindWarm:
		return s.runWarm(ctx, j)
	}
	return nil, fmt.Errorf("serve: unknown job kind %q", j.req.Kind)
}

// runWarm precomputes the requested campaign products through the shared
// lab. On a worker this is how fleet shards execute (each table persists
// into the node's cache, where the fabric serves it); on a coordinator
// the plan is itself fleet-dispatched first, making SubmitWarm a
// distributed warm-up API.
func (s *Server) runWarm(ctx context.Context, j *job) (*JobResult, error) {
	refs := j.req.Warm.Products
	plan := make([]experiments.Request, len(refs))
	for i, p := range refs {
		plan[i] = experiments.Request{
			Sim: experiments.Simulator(p.Sim), Cores: p.Cores, Policy: cache.PolicyName(p.Policy),
		}
	}
	j.emit("plan", fmt.Sprintf("%d products to warm", len(plan)), map[string]any{"products": len(plan)})
	s.router.register(j, plan)
	defer s.router.unregister(j, plan)
	s.fleetWarm(ctx, j, plan)
	n, err := s.lab.Warm(ctx, plan, 0)
	if err != nil {
		return nil, err
	}
	return &JobResult{ID: j.id, Kind: KindWarm, Warmed: n}, nil
}

// runExperiment warms the experiment's campaign plan through the shared
// lab (streaming product events as tables land), then runs the
// experiment itself over the memoized products.
func (s *Server) runExperiment(ctx context.Context, j *job) (*JobResult, error) {
	e, ok := experiments.Lookup(j.req.Experiment.Name)
	if !ok { // canonicalize validated; racing deregistration is impossible
		return nil, fmt.Errorf("serve: unknown experiment %q", j.req.Experiment.Name)
	}
	// The same cores-to-Params mapping as the public Lab.Run, so both
	// entry points key the shared memo and cache identically.
	p := experiments.ParamsFor(j.req.Experiment.Cores)
	plan := e.Requests(s.lab, p)
	if len(plan) > 0 {
		j.emit("plan", fmt.Sprintf("%d products to warm", len(plan)), map[string]any{"products": len(plan)})
		s.router.register(j, plan)
		defer s.router.unregister(j, plan)
		// Fleet dispatch first (no-op when standalone): whatever the
		// workers complete turns into read-through cache hits in the
		// local warm below, which remains the correctness authority.
		s.fleetWarm(ctx, j, plan)
		if _, err := s.lab.Warm(ctx, plan, 0); err != nil {
			return nil, err
		}
	}
	tab, err := e.Run(ctx, s.lab, p)
	if err != nil {
		return nil, err
	}
	return &JobResult{
		ID: j.id, Kind: KindExperiment,
		Table: &TableResult{Title: tab.Title, Columns: tab.Columns, Rows: tab.Rows, Notes: tab.Notes},
		Text:  tab.String(),
	}, nil
}

// runSimulate executes one ad-hoc workload at the lab's trace length.
func (s *Server) runSimulate(ctx context.Context, j *job) (*JobResult, error) {
	req := j.req.Simulate
	results, err := s.adhocSweep(ctx, j, [][]string{req.Workload}, req.Policy, req.Engine, req.Quota, req.Warmup, req.Sampling)
	if err != nil {
		return nil, err
	}
	return &JobResult{ID: j.id, Kind: KindSimulate, Results: results}, nil
}

// runSweep executes many ad-hoc workloads under one configuration.
func (s *Server) runSweep(ctx context.Context, j *job) (*JobResult, error) {
	req := j.req.Sweep
	results, err := s.adhocSweep(ctx, j, req.Workloads, req.Policy, req.Engine, req.Quota, req.Warmup, req.Sampling)
	if err != nil {
		return nil, err
	}
	return &JobResult{ID: j.id, Kind: KindSweep, Results: results}, nil
}

// adhocSweep is the shared simulate/sweep executor: traces resolve
// through the lab's memoized source, BADCO models are built for the
// distinct benchmarks the request touches, and the multicore sweeps
// parallelise across the process-wide simulation budget.
func (s *Server) adhocSweep(ctx context.Context, j *job, workloads [][]string, policy, engine string, quota, warmup uint64, sampling *SampleSpec) ([]SimResult, error) {
	src := s.lab.Source()
	distinct, err := bench.CheckNames(src, workloads)
	if err != nil {
		return nil, err
	}
	prov := s.lab.Provider()
	ws := make([]multicore.Workload, len(workloads))
	for i, w := range workloads {
		ws[i] = multicore.Workload(w)
	}
	pol := cache.PolicyName(policy)
	if spec := sampling.spec(); spec.Enabled() {
		// Sampled runs are detailed-only (canonicalize enforced it).
		sampled, err := multicore.SweepDetailedSampled(ctx, ws, prov, pol, spec, quota)
		for _, n := range distinct {
			prov.Release(n)
		}
		if err != nil {
			return nil, err
		}
		out := make([]SimResult, len(sampled))
		for i, r := range sampled {
			out[i] = SimResult{
				Workload:     append([]string(nil), r.Workload...),
				Policy:       string(r.Policy),
				Engine:       engine,
				IPC:          r.IPC,
				Cycles:       r.Cycles,
				Instructions: r.Instructions,
				Sampling:     sampling,
				CIHalf:       r.CIHalf,
				CV:           r.CV,
				Windows:      r.Windows,
			}
		}
		return out, nil
	}
	var results []multicore.Result
	switch engine {
	case EngineBadco:
		models, err := multicore.BuildModels(ctx, prov, distinct, badco.DefaultBuildConfig())
		if err != nil {
			return nil, err
		}
		j.emit("models", fmt.Sprintf("%d BADCO models built", len(models)), map[string]any{"models": len(models)})
		if warmup > 0 {
			results, err = warmedSweep(ctx, ws, func(ctx context.Context, w multicore.Workload) (multicore.Result, error) {
				return multicore.ApproximateWithWarmup(ctx, w, models, pol, warmup, quota)
			})
		} else {
			results, err = multicore.SweepApproximate(ctx, ws, models, pol, quota)
		}
		if err != nil {
			return nil, err
		}
	default:
		if warmup > 0 {
			results, err = warmedSweep(ctx, ws, func(ctx context.Context, w multicore.Workload) (multicore.Result, error) {
				return multicore.DetailedWithWarmup(ctx, w, prov, pol, warmup, quota)
			})
		} else {
			results, err = multicore.SweepDetailed(ctx, ws, prov, pol, quota)
		}
		// Ad-hoc jobs are one-shot: release every trace the sweep built
		// (the BADCO branch releases through BuildModels) so a
		// long-running server's resident memory tracks in-flight work,
		// not the history of benchmarks clients ever touched. The traces
		// rebuild deterministically if asked again.
		for _, n := range distinct {
			prov.Release(n)
		}
		if err != nil {
			return nil, err
		}
	}
	out := make([]SimResult, len(results))
	for i, r := range results {
		out[i] = SimResult{
			Warmup:       warmup,
			Workload:     append([]string(nil), r.Workload...),
			Policy:       string(r.Policy),
			Engine:       engine,
			IPC:          r.IPC,
			Cycles:       r.Cycles,
			Instructions: r.Instructions,
		}
	}
	return out, nil
}

// warmedSweep runs the two-stage (warmup + measure) simulation per
// workload on the shared simulation budget, mirroring the plain sweeps.
func warmedSweep(ctx context.Context, ws []multicore.Workload, run func(context.Context, multicore.Workload) (multicore.Result, error)) ([]multicore.Result, error) {
	results := make([]multicore.Result, len(ws))
	errs := make([]error, len(ws))
	if err := multicore.RunBounded(ctx, len(ws), func(i int) {
		results[i], errs[i] = run(ctx, ws[i])
	}); err != nil {
		return nil, err
	}
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	return results, nil
}
