package serve

// Unit tests of the job manager: queue bounds, dedup bookkeeping,
// queued-job cancellation, drain semantics.

import (
	"context"
	"errors"
	"fmt"
	"testing"
	"time"
)

// blockingManager runs jobs that wait on release (or their context).
func blockingManager(workers, depth int, release chan struct{}) *manager {
	return newManager(workers, depth, 0, 0, func(ctx context.Context, j *job) (*JobResult, error) {
		select {
		case <-release:
			return &JobResult{ID: j.id, Kind: j.req.Kind}, nil
		case <-ctx.Done():
			return nil, ctx.Err()
		}
	})
}

func expReq(name string) SubmitRequest {
	return SubmitRequest{Kind: KindExperiment, Experiment: &ExperimentRequest{Name: name}}
}

func TestManagerQueueBound(t *testing.T) {
	release := make(chan struct{})
	m := blockingManager(1, 2, release)
	defer func() { close(release); m.drain() }()

	// One running + two queued fit; the next submission is rejected.
	first, _, err := m.submit(expReq("e"), "a")
	if err != nil {
		t.Fatal(err)
	}
	waitState(t, first, StateRunning) // queue is empty again
	for i := 1; i < 4; i++ {
		_, deduped, err := m.submit(expReq("e"), string(rune('a'+i)))
		if i < 3 {
			if err != nil || deduped {
				t.Fatalf("submit %d: deduped=%v err=%v", i, deduped, err)
			}
			continue
		}
		if !errors.Is(err, ErrQueueFull) {
			t.Fatalf("submit %d: err=%v, want ErrQueueFull", i, err)
		}
	}
	// A rejected submission must not leak into the dedup index: the same
	// key resubmitted after capacity frees must not coalesce onto a
	// phantom.
	if _, ok := m.inflight["d"]; ok {
		t.Fatal("rejected submission left an inflight entry")
	}
}

func TestManagerCancelQueuedJob(t *testing.T) {
	release := make(chan struct{})
	m := blockingManager(1, 4, release)
	defer func() { close(release); m.drain() }()

	running, _, err := m.submit(expReq("run"), "run")
	if err != nil {
		t.Fatal(err)
	}
	// Wait until the worker picked it up so the next job stays queued.
	waitState(t, running, StateRunning)
	queued, _, err := m.submit(expReq("wait"), "wait")
	if err != nil {
		t.Fatal(err)
	}
	st, ok := m.cancelJob(queued.id)
	if !ok || st.State != StateCanceled {
		t.Fatalf("cancel queued: ok=%v state=%s", ok, st.State)
	}
	// Its key is free again: a resubmission creates a fresh job.
	j2, deduped, err := m.submit(expReq("wait"), "wait")
	if err != nil || deduped || j2.id == queued.id {
		t.Fatalf("resubmit after cancel: id=%s deduped=%v err=%v", j2.id, deduped, err)
	}
	// Unknown ids are reported.
	if _, ok := m.cancelJob("nope"); ok {
		t.Error("cancel of unknown id succeeded")
	}
}

func TestManagerDrainRejectsAndSettles(t *testing.T) {
	release := make(chan struct{})
	defer close(release)
	m := blockingManager(1, 4, release)

	running, _, _ := m.submit(expReq("run"), "run")
	waitState(t, running, StateRunning)
	queued, _, _ := m.submit(expReq("wait"), "wait")

	done := make(chan struct{})
	go func() { m.drain(); close(done) }()
	select {
	case <-done:
	case <-time.After(10 * time.Second):
		t.Fatal("drain did not finish")
	}
	if st := running.status(); st.State != StateCanceled {
		t.Errorf("running job after drain: %s", st.State)
	}
	if st := queued.status(); st.State != StateCanceled {
		t.Errorf("queued job after drain: %s", st.State)
	}
	if _, _, err := m.submit(expReq("late"), "late"); !errors.Is(err, ErrDraining) {
		t.Errorf("post-drain submit err = %v, want ErrDraining", err)
	}
	stats := m.snapshotStats()
	if stats.Canceled != 2 || stats.Queued != 0 || stats.Running != 0 {
		t.Errorf("post-drain stats %+v", stats)
	}
}

func TestManagerEventCursor(t *testing.T) {
	release := make(chan struct{})
	m := blockingManager(1, 4, release)
	j, _, _ := m.submit(expReq("e"), "k")
	waitState(t, j, StateRunning)
	evs, _, state := j.eventsAfter(0)
	if state.Terminal() || len(evs) < 2 {
		t.Fatalf("pre-finish events: %d, state=%v", len(evs), state)
	}
	// Sequence numbers are dense from 1.
	for i, ev := range evs {
		if ev.Seq != i+1 {
			t.Fatalf("event %d has seq %d", i, ev.Seq)
		}
	}
	// A cursor past the log returns nothing but still reports state.
	if evs, _, _ := j.eventsAfter(100); len(evs) != 0 {
		t.Fatalf("cursor past end returned %d events", len(evs))
	}
	close(release)
	waitState(t, j, StateDone)
	evs, _, state = j.eventsAfter(0)
	if !state.Terminal() || evs[len(evs)-1].Type != "done" {
		t.Fatalf("final log %+v state=%v", evs, state)
	}
	m.drain()
}

// TestCancelFreesQueueSlot pins the backlog semantics: cancelling a
// queued job frees its queue slot immediately, without waiting for a
// worker to dequeue the tombstone — new submissions must not see 503
// while the backlog is actually empty.
func TestCancelFreesQueueSlot(t *testing.T) {
	release := make(chan struct{})
	m := blockingManager(1, 1, release)
	defer func() { close(release); m.drain() }()

	running, _, err := m.submit(expReq("r"), "r")
	if err != nil {
		t.Fatal(err)
	}
	waitState(t, running, StateRunning)
	queued, _, err := m.submit(expReq("q"), "q")
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := m.submit(expReq("x"), "x"); !errors.Is(err, ErrQueueFull) {
		t.Fatalf("overfull submit err = %v, want ErrQueueFull", err)
	}
	if _, ok := m.cancelJob(queued.id); !ok {
		t.Fatal("cancel failed")
	}
	// The worker is still busy with the running job; only the cancel
	// freed capacity.
	j, _, err := m.submit(expReq("x"), "x")
	if err != nil {
		t.Fatalf("slot not freed by cancel: %v", err)
	}
	if j.status().State != StateQueued {
		t.Fatalf("replacement job state %s", j.status().State)
	}
}

// TestManagerSettledRetention pins the retention cap: a long-running
// manager holds only the newest `keep` settled jobs, so sustained
// traffic cannot grow the job table without bound.
func TestManagerSettledRetention(t *testing.T) {
	m := newManager(1, 8, 2, 0, func(ctx context.Context, j *job) (*JobResult, error) {
		return &JobResult{ID: j.id, Kind: j.req.Kind}, nil
	})
	defer m.drain()
	var ids []string
	for i := 0; i < 5; i++ {
		j, _, err := m.submit(expReq("e"), fmt.Sprintf("k%d", i))
		if err != nil {
			t.Fatal(err)
		}
		waitState(t, j, StateDone)
		ids = append(ids, j.id)
	}
	for _, old := range ids[:3] {
		if _, ok := m.get(old); ok {
			t.Errorf("settled job %s not evicted beyond the cap", old)
		}
	}
	list := m.list()
	if len(list) != 2 || list[0].ID != ids[3] || list[1].ID != ids[4] {
		t.Fatalf("retained jobs %+v, want the newest two (%v)", list, ids[3:])
	}
	stats := m.snapshotStats()
	if stats.Done != 5 {
		t.Errorf("eviction corrupted counters: %+v", stats)
	}
}

func waitState(t *testing.T, j *job, want State) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		if j.status().State == want {
			return
		}
		time.Sleep(time.Millisecond)
	}
	t.Fatalf("job %s never reached %s (state %s)", j.id, want, j.status().State)
}
