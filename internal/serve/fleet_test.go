package serve

// Distributed-lab tests over real listeners: the join handshake
// (including mixed-version rejection), fleet /healthz sections, a
// sharded campaign across three in-process workers that must stay
// bit-identical to a single-node run with zero duplicate sweeps
// fleet-wide, and a chaos run that kills a worker mid-campaign and
// relies on work-stealing to finish.
//
// The test Peer below mirrors the public mcbench.Client adapter over
// raw HTTP (this package cannot import the root package), so the wire
// protocol — join 409s, warm submissions, /cache fetches — is what is
// actually exercised.

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strings"
	"sync"
	"testing"
	"time"

	"mcbench/internal/buildinfo"
	"mcbench/internal/experiments"
	"mcbench/internal/faultinject"
	"mcbench/internal/fleet"
)

// httpPeer implements fleet.Peer over raw HTTP against one serve node.
type httpPeer struct{ base string }

// testDialPeer is the fleet Dialer the test servers are wired with.
func testDialPeer(addr string) (fleet.Peer, error) {
	base := addr
	if !strings.Contains(base, "://") {
		base = "http://" + base
	}
	return &httpPeer{base: base}, nil
}

func (p *httpPeer) post(ctx context.Context, path string, in, out any) (int, []byte, error) {
	data, err := json.Marshal(in)
	if err != nil {
		return 0, nil, err
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, p.base+path, bytes.NewReader(data))
	if err != nil {
		return 0, nil, err
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		return 0, nil, err
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		return resp.StatusCode, nil, err
	}
	if out != nil && resp.StatusCode < 300 {
		if err := json.Unmarshal(body, out); err != nil {
			return resp.StatusCode, body, err
		}
	}
	return resp.StatusCode, body, nil
}

func (p *httpPeer) get(ctx context.Context, path string) (int, []byte, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, p.base+path, nil)
	if err != nil {
		return 0, nil, err
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		return 0, nil, err
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	return resp.StatusCode, body, err
}

func (p *httpPeer) Join(ctx context.Context, req fleet.JoinRequest) (*fleet.JoinResponse, error) {
	var resp fleet.JoinResponse
	code, body, err := p.post(ctx, "/fleet/join", req, &resp)
	if err != nil {
		return nil, err
	}
	if code == http.StatusConflict {
		return nil, fmt.Errorf("%w: %s", fleet.ErrIncompatible, body)
	}
	if code != http.StatusOK {
		return nil, fmt.Errorf("join: status %d: %s", code, body)
	}
	return &resp, nil
}

func (p *httpPeer) Heartbeat(ctx context.Context, id string) error {
	code, body, err := p.post(ctx, "/fleet/heartbeat", map[string]string{"id": id}, nil)
	if err != nil {
		return err
	}
	if code != http.StatusOK {
		return fmt.Errorf("heartbeat: status %d: %s", code, body)
	}
	return nil
}

func (p *httpPeer) Leave(ctx context.Context, id string) error {
	_, _, err := p.post(ctx, "/fleet/leave", map[string]string{"id": id}, nil)
	return err
}

func (p *httpPeer) SubmitWarm(ctx context.Context, products []experiments.Request) (string, error) {
	refs := make([]ProductRef, len(products))
	for i, r := range products {
		refs[i] = ProductRef{Sim: string(r.Sim), Cores: r.Cores, Policy: string(r.Policy)}
	}
	var st JobStatus
	code, body, err := p.post(ctx, "/jobs", SubmitRequest{Kind: KindWarm, Warm: &WarmRequest{Products: refs}}, &st)
	if err != nil {
		return "", err
	}
	if code != http.StatusCreated && code != http.StatusOK {
		return "", fmt.Errorf("submit warm: status %d: %s", code, body)
	}
	return st.ID, nil
}

func (p *httpPeer) WaitJob(ctx context.Context, jobID string) error {
	for {
		code, body, err := p.get(ctx, "/jobs/"+jobID)
		if err != nil {
			return err
		}
		if code != http.StatusOK {
			return fmt.Errorf("job %s: status %d: %s", jobID, code, body)
		}
		var st JobStatus
		if err := json.Unmarshal(body, &st); err != nil {
			return err
		}
		if st.State.Terminal() {
			if st.State != StateDone {
				return fmt.Errorf("job %s settled %s", jobID, st.State)
			}
			return nil
		}
		select {
		case <-ctx.Done():
			return ctx.Err()
		case <-time.After(20 * time.Millisecond):
		}
	}
}

func (p *httpPeer) CancelJob(ctx context.Context, jobID string) error {
	_, _, err := p.post(ctx, "/jobs/"+jobID+"/cancel", struct{}{}, nil)
	return err
}

func (p *httpPeer) FetchCache(ctx context.Context, key string) ([]byte, bool, error) {
	code, body, err := p.get(ctx, "/cache/"+key)
	if err != nil {
		return nil, false, err
	}
	switch code {
	case http.StatusOK:
		return body, true, nil
	case http.StatusNotFound:
		return nil, false, nil
	default:
		return nil, false, fmt.Errorf("fetch %s: status %d", key, code)
	}
}

// fleetNode is one serve node running on a real listener.
type fleetNode struct {
	s    *Server
	addr string // host:port
	base string // http://host:port
	stop context.CancelFunc
	done chan error

	mu     sync.Mutex
	exited bool
}

// startFleetNode boots a fleet-configured server on 127.0.0.1:0. An
// empty join makes it a coordinator.
func startFleetNode(t *testing.T, cacheDir, join string, hb, steal time.Duration) *fleetNode {
	t.Helper()
	registerTestExperiments()
	labCfg := experiments.QuickConfig()
	labCfg.TraceLen = 2000
	labCfg.CacheDir = cacheDir
	s := New(Config{
		Lab: labCfg, Workers: 2, QueueDepth: 8,
		Fleet: &FleetConfig{Join: join, Heartbeat: hb, StealAfter: steal, Dial: testDialPeer},
	})
	ctx, cancel := context.WithCancel(context.Background())
	n := &fleetNode{s: s, stop: cancel, done: make(chan error, 1)}
	addrCh := make(chan string, 1)
	go func() { n.done <- s.ListenAndServe(ctx, "127.0.0.1:0", func(a string) { addrCh <- a }) }()
	select {
	case a := <-addrCh:
		n.addr, n.base = a, "http://"+a
	case <-time.After(10 * time.Second):
		t.Fatal("fleet node never became ready")
	}
	t.Cleanup(func() {
		cancel()
		n.mu.Lock()
		exited := n.exited
		n.mu.Unlock()
		if exited {
			return
		}
		select {
		case <-n.done:
		case <-time.After(30 * time.Second):
			t.Error("fleet node did not drain")
		}
	})
	return n
}

// kill tears the node down mid-flight (the in-process stand-in for
// kill -9: the listener dies, jobs are cut, heartbeats stop).
func (n *fleetNode) kill(t *testing.T) {
	t.Helper()
	n.stop()
	select {
	case <-n.done:
		n.mu.Lock()
		n.exited = true
		n.mu.Unlock()
	case <-time.After(30 * time.Second):
		t.Fatal("killed node did not exit")
	}
}

// waitPeers polls the coordinator's /healthz until the fleet section
// reports want live workers.
func waitPeers(t *testing.T, base string, want int) {
	t.Helper()
	deadline := time.Now().Add(15 * time.Second)
	for {
		var h Health
		getJSON(t, base+"/healthz", &h)
		if h.Fleet != nil && h.Fleet.Peers == want {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("coordinator never saw %d peers (fleet: %+v)", want, h.Fleet)
		}
		time.Sleep(20 * time.Millisecond)
	}
}

// compatJoin is a join handshake matching startFleetNode's lab config.
func compatJoin(addr string) fleet.JoinRequest {
	labCfg := experiments.QuickConfig()
	return fleet.JoinRequest{
		Addr: addr, Build: buildinfo.Read(),
		Source: "suite", TraceLen: 2000, Seed: labCfg.Seed, Warmup: labCfg.Warmup,
	}
}

// TestFleetJoinHandshake covers the membership wire protocol: a
// compatible join is granted, mixed builds and mixed lab configurations
// are rejected with 409 (the agent treats that as fatal), heartbeats for
// unknown members 404, and both roles report their fleet /healthz
// sections.
func TestFleetJoinHandshake(t *testing.T) {
	coord := startFleetNode(t, t.TempDir(), "", time.Second, 0)
	worker := startFleetNode(t, t.TempDir(), coord.addr, 0, 0)
	waitPeers(t, coord.base, 1)

	// Coordinator health: role, peers, shard counters present.
	var ch Health
	getJSON(t, coord.base+"/healthz", &ch)
	if ch.Fleet == nil || ch.Fleet.Role != "coordinator" || ch.Fleet.Peers != 1 {
		t.Errorf("coordinator fleet health %+v", ch.Fleet)
	}
	// Worker health: role, coordinator address, granted membership.
	var wh Health
	getJSON(t, worker.base+"/healthz", &wh)
	if wh.Fleet == nil || wh.Fleet.Role != "worker" || wh.Fleet.Coordinator != coord.addr {
		t.Fatalf("worker fleet health %+v", wh.Fleet)
	}
	if wh.Fleet.MemberID == "" || wh.Fleet.LastError != "" {
		t.Errorf("worker membership %+v, want joined and healthy", wh.Fleet)
	}

	// A second compatible join (raw, as a would-be node) is granted.
	resp, body := postJSON(t, coord.base+"/fleet/join", compatJoin("127.0.0.1:1"))
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("compatible join: %d %s", resp.StatusCode, body)
	}
	var granted fleet.JoinResponse
	if err := json.Unmarshal(body, &granted); err != nil || granted.ID == "" || granted.Heartbeat <= 0 {
		t.Errorf("join grant %s (err %v)", body, err)
	}

	// Mixed build: the version handshake rejects it with 409.
	bad := compatJoin("127.0.0.1:2")
	bad.Build.Version = "v0.0.0-other"
	resp, body = postJSON(t, coord.base+"/fleet/join", bad)
	if resp.StatusCode != http.StatusConflict {
		t.Errorf("mixed-version join: %d %s, want 409", resp.StatusCode, body)
	}
	if !bytes.Contains(body, []byte("incompatible")) {
		t.Errorf("409 body %s does not explain the incompatibility", body)
	}

	// Mixed lab configuration: same build, different trace length.
	bad = compatJoin("127.0.0.1:3")
	bad.TraceLen = 4096
	if resp, body = postJSON(t, coord.base+"/fleet/join", bad); resp.StatusCode != http.StatusConflict {
		t.Errorf("mixed-lab join: %d %s, want 409", resp.StatusCode, body)
	}

	// Heartbeats for unknown members 404 so reaped workers re-join.
	resp, _ = postJSON(t, coord.base+"/fleet/heartbeat", map[string]string{"id": "w999"})
	if resp.StatusCode != http.StatusNotFound {
		t.Errorf("unknown heartbeat: %d, want 404", resp.StatusCode)
	}
	// A worker is not a coordinator: membership endpoints 404 there.
	resp, _ = postJSON(t, worker.base+"/fleet/join", compatJoin("127.0.0.1:4"))
	if resp.StatusCode != http.StatusNotFound {
		t.Errorf("join on worker: %d, want 404", resp.StatusCode)
	}

	// The cache fabric endpoint: plain misses 404, invalid keys 400.
	if code, _, _ := (&httpPeer{base: coord.base}).get(context.Background(), "/cache/nonexistent-key"); code != http.StatusNotFound {
		t.Errorf("absent cache key: %d, want 404", code)
	}
	if code, _, _ := (&httpPeer{base: coord.base}).get(context.Background(), "/cache/bad%2Fkey"); code != http.StatusBadRequest {
		t.Errorf("invalid cache key: %d, want 400", code)
	}
}

// TestFleetShardedCampaignBitIdentical is the PR's acceptance test: a
// campaign sharded across three in-process workers produces a result
// bit-identical to the single-node run, with exactly one sweep per
// product fleet-wide (coordinator included) even under duplicate
// concurrent submissions, and the coordinator's cache converges to
// every product through the result fabric.
func TestFleetShardedCampaignBitIdentical(t *testing.T) {
	if testing.Short() {
		t.Skip("population sweeps")
	}
	// Single-node baseline.
	baseline := startFleetNode(t, t.TempDir(), "", time.Second, 0)
	bst := submit(t, baseline.base, SubmitRequest{Kind: KindExperiment, Experiment: &ExperimentRequest{Name: "srvtest-many"}})
	if _, final := waitTerminal(t, baseline.base, bst.ID, 180*time.Second); final != StateDone {
		t.Fatalf("baseline state %q", final)
	}
	var baseResult JobResult
	getJSON(t, baseline.base+"/jobs/"+bst.ID+"/result", &baseResult)
	if baseResult.Text == "" {
		t.Fatal("baseline produced no table text")
	}

	// The fleet: one coordinator, three workers, separate cache dirs.
	coord := startFleetNode(t, t.TempDir(), "", time.Second, 0)
	for i := 0; i < 3; i++ {
		startFleetNode(t, t.TempDir(), coord.addr, 0, 0)
	}
	waitPeers(t, coord.base, 3)

	// Duplicate concurrent submissions: fleet-wide dedup must still hold.
	const m = 8
	req := SubmitRequest{Kind: KindExperiment, Experiment: &ExperimentRequest{Name: "srvtest-many"}}
	var (
		wg  sync.WaitGroup
		mu  sync.Mutex
		ids = map[string]int{}
	)
	start := make(chan struct{})
	for i := 0; i < m; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			<-start
			data, _ := json.Marshal(req)
			resp, err := http.Post(coord.base+"/jobs", "application/json", bytes.NewReader(data))
			if err != nil {
				t.Error(err)
				return
			}
			body, _ := io.ReadAll(resp.Body)
			resp.Body.Close()
			var st JobStatus
			if err := json.Unmarshal(body, &st); err != nil {
				t.Errorf("decode: %v\n%s", err, body)
				return
			}
			mu.Lock()
			ids[st.ID]++
			mu.Unlock()
		}()
	}
	close(start)
	wg.Wait()
	if len(ids) != 1 {
		t.Fatalf("%d duplicate submissions produced %d jobs: %v", m, len(ids), ids)
	}
	var id string
	for k := range ids {
		id = k
	}
	events, final := waitTerminal(t, coord.base, id, 300*time.Second)
	if final != StateDone {
		t.Fatalf("fleet campaign state %q", final)
	}

	// Bit-identical result.
	var fleetResult JobResult
	getJSON(t, coord.base+"/jobs/"+id+"/result", &fleetResult)
	if fleetResult.Text != baseResult.Text {
		t.Errorf("fleet result differs from single-node baseline:\n--- fleet ---\n%s\n--- single ---\n%s",
			fleetResult.Text, baseResult.Text)
	}

	// Zero duplicate sweeps fleet-wide: the workers ran exactly one sweep
	// per product between them, the coordinator ran none (its warm was all
	// fabric read-through hits), summed via each node's SweepCounts.
	cb, cd := coord.s.Lab().SweepCounts()
	if cb != 0 || cd != 0 {
		t.Errorf("coordinator ran (%d, %d) sweeps, want (0, 0) — the fleet should have computed everything", cb, cd)
	}
	// Find the worker nodes back through the coordinator's own records:
	// the test keeps them implicitly via t.Cleanup, so recount from the
	// shard events instead and assert the fabric converged.
	dispatched := 0
	for _, ev := range events {
		if ev.Type == "shard" && ev.Data["shard"] == "dispatch" {
			dispatched++
		}
	}
	if dispatched == 0 {
		t.Error("no shard dispatch events: the campaign never used the fleet")
	}

	// The coordinator's cache converged to all five products.
	var cacheList struct {
		Entries []struct {
			Key   string `json:"key"`
			Table struct {
				Simulator string `json:"simulator"`
				Policy    string `json:"policy"`
			} `json:"table"`
		} `json:"entries"`
	}
	getJSON(t, coord.base+"/cache", &cacheList)
	if len(cacheList.Entries) != len(testPolicies) {
		t.Errorf("coordinator cache has %d entries, want %d", len(cacheList.Entries), len(testPolicies))
	}
	for _, e := range cacheList.Entries {
		if e.Table.Simulator != "badco" || e.Table.Policy == "" {
			t.Errorf("cache entry %q lost identity: %+v", e.Key, e.Table)
		}
	}
	// And /healthz reflects the fleet-wide sweep accounting.
	var h Health
	getJSON(t, coord.base+"/healthz", &h)
	if h.Sweeps.Badco != 0 {
		t.Errorf("coordinator /healthz sweeps %+v, want zero badco", h.Sweeps)
	}
}

// TestFleetWorkerSweepSum asserts the worker side of fleet-wide dedup
// directly: across N workers the five products cost exactly five badco
// sweeps in total.
func TestFleetWorkerSweepSum(t *testing.T) {
	if testing.Short() {
		t.Skip("population sweeps")
	}
	coord := startFleetNode(t, t.TempDir(), "", time.Second, 0)
	workers := []*fleetNode{
		startFleetNode(t, t.TempDir(), coord.addr, 0, 0),
		startFleetNode(t, t.TempDir(), coord.addr, 0, 0),
	}
	waitPeers(t, coord.base, 2)

	st := submit(t, coord.base, SubmitRequest{Kind: KindExperiment, Experiment: &ExperimentRequest{Name: "srvtest-many"}})
	if _, final := waitTerminal(t, coord.base, st.ID, 300*time.Second); final != StateDone {
		t.Fatalf("campaign state %q", final)
	}
	var sum int64
	for _, w := range workers {
		b, d := w.s.Lab().SweepCounts()
		if d != 0 {
			t.Errorf("worker ran %d detailed sweeps, want 0", d)
		}
		sum += b
	}
	cb, _ := coord.s.Lab().SweepCounts()
	if total := sum + cb; total != int64(len(testPolicies)) {
		t.Errorf("fleet-wide badco sweeps = %d (workers %d + coordinator %d), want exactly %d",
			total, sum, cb, len(testPolicies))
	}
	// A warm-kind resubmission of the same products is now free: all
	// cache, zero new sweeps anywhere.
	refs := make([]ProductRef, len(testPolicies))
	for i, pol := range testPolicies {
		refs[i] = ProductRef{Sim: "badco", Cores: 2, Policy: string(pol)}
	}
	wst := submit(t, coord.base, SubmitRequest{Kind: KindWarm, Warm: &WarmRequest{Products: refs}})
	if _, final := waitTerminal(t, coord.base, wst.ID, 120*time.Second); final != StateDone {
		t.Fatalf("warm resubmission state %q", final)
	}
	var after int64
	for _, w := range workers {
		b, _ := w.s.Lab().SweepCounts()
		after += b
	}
	cb2, _ := coord.s.Lab().SweepCounts()
	if after+cb2 != sum+cb {
		t.Errorf("warm resubmission re-ran sweeps: %d → %d", sum+cb, after+cb2)
	}
}

// TestFleetChaosWorkerKill kills one worker mid-campaign and relies on
// the coordinator's work-stealing to finish: the campaign completes,
// at least one shard is re-issued, the surviving nodes never compute
// any product twice, and the coordinator's cache still converges to
// every product.
func TestFleetChaosWorkerKill(t *testing.T) {
	if testing.Short() {
		t.Skip("population sweeps")
	}
	// Widen the kill window: every job (so every worker's shard) stalls
	// up to 500ms before computing, reusing the chaos harness's site.
	plan := faultinject.NewPlan(7)
	plan.Rule("serve.job", faultinject.Rule{SleepRate: 1, Sleep: 500 * time.Millisecond})
	faultinject.Enable(plan)
	t.Cleanup(faultinject.Disable)

	coord := startFleetNode(t, t.TempDir(), "", time.Second, 0)
	workers := map[string]*fleetNode{}
	for i := 0; i < 2; i++ {
		w := startFleetNode(t, t.TempDir(), coord.addr, 0, 0)
		workers[w.addr] = w
	}
	waitPeers(t, coord.base, 2)

	st := submit(t, coord.base, SubmitRequest{Kind: KindExperiment, Experiment: &ExperimentRequest{Name: "srvtest-many"}})

	// Watch the coordinator's event log for the first shard dispatch and
	// kill that worker while its shard is in flight.
	var killed *fleetNode
	deadline := time.Now().Add(60 * time.Second)
	after := 0
	for killed == nil {
		if time.Now().After(deadline) {
			t.Fatal("no shard was dispatched before the deadline")
		}
		var page struct {
			State  State   `json:"state"`
			Events []Event `json:"events"`
		}
		getJSON(t, fmt.Sprintf("%s/jobs/%s/events?after=%d&wait=2s", coord.base, st.ID, after), &page)
		for _, ev := range page.Events {
			after = ev.Seq
			if ev.Type == "shard" && ev.Data["shard"] == "dispatch" {
				addr, _ := ev.Data["addr"].(string)
				if w := workers[addr]; w != nil {
					killed = w
					break
				}
			}
		}
		if page.State.Terminal() {
			t.Fatalf("campaign settled (%s) before any shard dispatch", page.State)
		}
	}
	killed.kill(t)

	events, final := waitTerminal(t, coord.base, st.ID, 300*time.Second)
	if final != StateDone {
		t.Fatalf("campaign state after worker kill %q (events %+v)", final, events)
	}
	var result JobResult
	getJSON(t, coord.base+"/jobs/"+st.ID+"/result", &result)
	if result.Table == nil || len(result.Table.Rows) != len(testPolicies) {
		t.Fatalf("post-chaos result %+v", result)
	}

	// The steal is visible: shard events record it and /healthz counts it.
	stole := false
	for _, ev := range events {
		if ev.Type == "shard" && ev.Data["shard"] == "steal" {
			stole = true
		}
	}
	var h Health
	getJSON(t, coord.base+"/healthz", &h)
	if !stole || h.Fleet == nil || h.Fleet.ShardsStolen == 0 {
		t.Errorf("no work-stealing observed (steal event %v, healthz %+v)", stole, h.Fleet)
	}
	if h.Fleet != nil && h.Fleet.Peers != 1 {
		t.Errorf("coordinator still sees %d peers after the kill, want 1", h.Fleet.Peers)
	}

	// Zero duplicate sweeps among the survivors: the killed worker's
	// results are unreachable, so the survivor and the coordinator must
	// cover all five products exactly once between them.
	var survivorSweeps int64
	for _, w := range workers {
		if w == killed {
			continue
		}
		b, _ := w.s.Lab().SweepCounts()
		survivorSweeps += b
	}
	cb, _ := coord.s.Lab().SweepCounts()
	if survivorSweeps+cb != int64(len(testPolicies)) {
		t.Errorf("survivors ran %d sweeps (worker %d + coordinator %d), want exactly %d",
			survivorSweeps+cb, survivorSweeps, cb, len(testPolicies))
	}

	// The fabric still converged: the coordinator's cache holds all five
	// products with identities intact.
	var cacheList struct {
		Entries []struct {
			Key   string `json:"key"`
			Table struct {
				Simulator string `json:"simulator"`
				Policy    string `json:"policy"`
			} `json:"table"`
		} `json:"entries"`
	}
	getJSON(t, coord.base+"/cache", &cacheList)
	if len(cacheList.Entries) != len(testPolicies) {
		t.Errorf("coordinator cache has %d entries after chaos, want %d", len(cacheList.Entries), len(testPolicies))
	}
	for _, e := range cacheList.Entries {
		if e.Table.Simulator != "badco" || e.Table.Policy == "" {
			t.Errorf("cache entry %q corrupt after chaos: %+v", e.Key, e.Table)
		}
	}
}
