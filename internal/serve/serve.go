// Package serve exposes the experiment engine as a long-running HTTP
// JSON service: the `mcbench serve` subcommand and the public
// mcbench.Client speak to it. One shared experiments.Lab backs every
// job, so concurrent requests ride the lab's single-flight memoization
// and persistent table cache — M clients submitting the same sweep cost
// one computation — and a bounded worker pool keeps the simulation load
// explicit. Identical in-flight submissions coalesce onto one job
// (request.go), per-job event logs stream progress as tables land
// (job.go, run.go), and a cancelled lifetime context drains the server
// gracefully: running jobs are cut, every sweep completed before the
// signal is already persisted, and ListenAndServe returns nil so the
// process exits 0.
package serve

import (
	"context"
	"errors"
	"net"
	"net/http"
	"sync"
	"time"

	"mcbench/internal/bench"
	"mcbench/internal/buildinfo"
	"mcbench/internal/experiments"
	"mcbench/internal/fleet"
	"mcbench/internal/results"
	"mcbench/internal/telemetry"
)

// Config configures a Server.
type Config struct {
	// Lab is the experiment campaign configuration the server's shared
	// lab is built from (source, trace length, cache directory, scale).
	// The server installs its own product Observer, chaining any
	// observer already present.
	Lab experiments.Config
	// Workers bounds the number of concurrently executing jobs
	// (default 2). Each job's sweeps already parallelise internally
	// across the process-wide simulation budget; Workers is the
	// campaign-level axis.
	Workers int
	// QueueDepth bounds the backlog of accepted-but-not-started jobs
	// (default 16); submissions beyond it are rejected with 503.
	QueueDepth int
	// KeepJobs bounds how many settled jobs stay queryable with their
	// event logs and results (default 256). Beyond it the oldest are
	// evicted, so a long-running server holds O(KeepJobs) finished
	// jobs under sustained traffic instead of all of them.
	KeepJobs int
	// JobTimeout bounds each job's wall-clock run time; a job exceeding
	// it is cancelled and marked failed (never canceled — the timeout is
	// the server refusing work, not the client withdrawing it). 0 means
	// no bound.
	JobTimeout time.Duration
	// Fleet opts the server into the distributed lab (see FleetConfig);
	// nil, or a nil Fleet.Dial, keeps it standalone.
	Fleet *FleetConfig
	// Pprof mounts net/http/pprof under /debug/pprof/ (opt-in: profiles
	// expose implementation detail and cost CPU when scraped).
	Pprof bool
}

// Server is the experiment service: a shared Lab, a job manager and the
// HTTP handlers over them.
type Server struct {
	lab     *experiments.Lab
	mgr     *manager
	router  *router
	mux     *http.ServeMux
	build   buildinfo.Info
	start   time.Time
	workers int
	pprofOn bool

	// metrics is this server's private telemetry registry: the lab, the
	// persistent store and the HTTP layer all record into it, and
	// GET /metrics scrapes it. Per-server (not telemetry.Default()) so
	// co-resident servers — every httptest server in the suite — keep
	// disjoint series.
	metrics *telemetry.Registry

	// storeOnce opens the /cache browsing store once, so repeated
	// listings reuse its per-file memo instead of re-reading the
	// directory's tables on every request.
	storeOnce sync.Once
	store     *results.Store
	storeErr  error

	// Fleet state (see fleet.go). coord is non-nil on coordinators,
	// coordPeer on workers; the agent is created once the listener is
	// bound (its advertised address defaults to the bound one).
	fleet     FleetConfig
	coord     *fleet.Coordinator
	coordPeer fleet.Peer
	agentMu   sync.Mutex
	agent     *fleet.Agent
	fleetErr  error // worker dial failure, surfaced by ListenAndServe
}

// cacheStore returns the shared browsing store (nil with a nil error
// when no cache directory is configured).
func (s *Server) cacheStore() (*results.Store, error) {
	s.storeOnce.Do(func() {
		if dir := s.lab.Config().CacheDir; dir != "" {
			s.store, s.storeErr = results.Open(dir)
			if s.store != nil {
				s.store.Instrument(s.metrics)
			}
		}
	})
	return s.store, s.storeErr
}

// New builds a server (and its lab) from the configuration.
func New(cfg Config) *Server {
	if cfg.Workers <= 0 {
		cfg.Workers = 2
	}
	if cfg.QueueDepth <= 0 {
		cfg.QueueDepth = 16
	}
	s := &Server{
		router:  newRouter(),
		build:   buildinfo.Read(),
		start:   time.Now(),
		workers: cfg.Workers,
		pprofOn: cfg.Pprof,
		metrics: telemetry.NewRegistry(),
	}
	labCfg := cfg.Lab
	labCfg.Metrics = s.metrics
	if prev := labCfg.Observer; prev != nil {
		labCfg.Observer = func(ev experiments.ProductEvent) {
			prev(ev)
			s.router.dispatch(ev)
		}
	} else {
		labCfg.Observer = s.router.dispatch
	}
	// Normalize the source here (NewLab would anyway) so the fleet
	// identity below and the lab agree on its name.
	if labCfg.Source == nil {
		labCfg.Source = bench.NewSuite()
	}
	if cfg.Fleet != nil && cfg.Fleet.Dial != nil {
		s.fleet = *cfg.Fleet
		if s.fleet.Join == "" {
			// Coordinator: accept joins, and read through to the workers'
			// caches (rendezvous-ranked) on local misses.
			s.coord = fleet.NewCoordinator(fleet.Config{
				Build:  s.build,
				Source: labCfg.Source.Name(), TraceLen: labCfg.TraceLen,
				Seed: labCfg.Seed, Warmup: labCfg.Warmup,
				Sampling:  labCfg.Sampling.String(),
				Heartbeat: s.fleet.Heartbeat, StealAfter: s.fleet.StealAfter,
				Dial: s.fleet.Dial,
			})
			if labCfg.CacheDir != "" && labCfg.RemoteFetch == nil {
				coord := s.coord
				labCfg.RemoteFetch = func(key string) ([]byte, bool, error) {
					ctx, cancel := context.WithTimeout(context.Background(), fetchTimeout)
					defer cancel()
					return coord.Fetch(ctx, key)
				}
			}
		} else {
			// Worker: read through to the coordinator's cache (which
			// itself holds, or fetches, whatever any node computed).
			peer, err := s.fleet.Dial(s.fleet.Join)
			if err != nil {
				s.fleetErr = err
			} else {
				s.coordPeer = peer
				if labCfg.CacheDir != "" && labCfg.RemoteFetch == nil {
					labCfg.RemoteFetch = func(key string) ([]byte, bool, error) {
						ctx, cancel := context.WithTimeout(context.Background(), fetchTimeout)
						defer cancel()
						return peer.FetchCache(ctx, key)
					}
				}
			}
		}
	}
	s.lab = experiments.NewLab(labCfg)
	s.mgr = newManager(cfg.Workers, cfg.QueueDepth, cfg.KeepJobs, cfg.JobTimeout, s.runJob)
	s.registerMetrics()
	s.mux = s.routes()
	return s
}

// Metrics returns a point-in-time snapshot of the server's registry (the
// same data GET /metrics?format=json serves).
func (s *Server) Metrics() telemetry.Snapshot { return s.metrics.Snapshot() }

// Lab returns the server's shared lab (tests assert on its sweep
// counters; the CLI reports its configuration).
func (s *Server) Lab() *experiments.Lab { return s.lab }

// jobTimeoutString renders the per-job bound for /healthz ("" when
// unbounded, so the field elides).
func (s *Server) jobTimeoutString() string {
	if s.mgr.jobTimeout <= 0 {
		return ""
	}
	return s.mgr.jobTimeout.String()
}

// Handler returns the server's HTTP handler, for httptest and embedding.
func (s *Server) Handler() http.Handler { return s.mux }

// Drain stops accepting submissions, cancels queued and running jobs,
// and waits for the workers to exit. Sweeps completed before the drain
// are already persisted (the lab saves each table as it lands), so a
// restart over the same cache directory serves them from disk.
func (s *Server) Drain() { s.mgr.drain() }

// shutdownGrace bounds how long a draining server waits for in-flight
// HTTP exchanges (the jobs behind them are already cancelled).
const shutdownGrace = 10 * time.Second

// ListenAndServe serves on addr until ctx is cancelled, then drains:
// stop accepting jobs, cancel in-flight ones, flush event streams, shut
// the listener down. A drain triggered by ctx is a clean exit — the
// return value is nil, so a SIGTERM'd server exits 0. onReady, when
// non-nil, is called once with the bound address (useful with ":0").
func (s *Server) ListenAndServe(ctx context.Context, addr string, onReady func(addr string)) error {
	if addr == "" {
		addr = "127.0.0.1:8080"
	}
	if s.fleetErr != nil {
		return s.fleetErr
	}
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return err
	}
	hs := &http.Server{
		Handler: s.Handler(),
		BaseContext: func(net.Listener) context.Context {
			// Request handlers (long-polls, SSE followers) observe the
			// drain through their request contexts.
			return ctx
		},
	}
	if onReady != nil {
		onReady(ln.Addr().String())
	}
	serveErr := make(chan error, 1)
	go func() { serveErr <- hs.Serve(ln) }()
	// A worker starts its membership agent once the listener is bound
	// (the advertised address defaults to the bound one). The agent
	// failing is fatal only when it means incompatibility — a clean nil
	// return is the ctx-cancel path, folded into the drain below.
	var agentErr chan error
	if s.coordPeer != nil {
		adv := s.fleet.Advertise
		if adv == "" {
			adv = ln.Addr().String()
		}
		a := fleet.NewAgent(fleet.AgentConfig{
			Coordinator: s.coordPeer,
			Join: fleet.JoinRequest{
				Addr: adv, Build: s.build,
				Source:   s.lab.Source().Name(),
				TraceLen: s.lab.Config().TraceLen,
				Seed:     s.lab.Config().Seed,
				Warmup:   s.lab.Config().Warmup,
				Sampling: s.lab.Config().Sampling.String(),
			},
		})
		s.agentMu.Lock()
		s.agent = a
		s.agentMu.Unlock()
		agentErr = make(chan error, 1)
		go func() { agentErr <- a.Run(ctx) }()
	}
	select {
	case err := <-serveErr:
		s.Drain()
		return err // listener failed outright
	case err := <-agentErr:
		if err != nil {
			// Incompatible fleet: refuse to run rather than poison the
			// shared cache with differently-built tables.
			s.Drain()
			shutCtx, cancel := context.WithTimeout(context.Background(), shutdownGrace)
			defer cancel()
			_ = hs.Shutdown(shutCtx)
			<-serveErr
			return err
		}
		<-ctx.Done() // agent exits nil only on ctx cancel
	case <-ctx.Done():
	}
	s.Drain()
	shutCtx, cancel := context.WithTimeout(context.Background(), shutdownGrace)
	defer cancel()
	if err := hs.Shutdown(shutCtx); err != nil && !errors.Is(err, context.DeadlineExceeded) {
		return err
	}
	<-serveErr // always http.ErrServerClosed after Shutdown
	return nil
}
