package serve

// Canonicalization tests: defaults, key stability (the dedup identity),
// and validation errors.

import (
	"strings"
	"testing"

	"mcbench/internal/bench"
)

func suiteSrc() bench.Source { return bench.NewSuite() }

// testTraceLen stands in for the lab's Config.TraceLen when resolving a
// zero quota.
const testTraceLen = 10000

func TestCanonicalizeExperiment(t *testing.T) {
	src := suiteSrc()
	canon, key, err := canonicalize(SubmitRequest{
		Kind: KindExperiment, Experiment: &ExperimentRequest{Name: "fig1", Cores: 2},
	}, src, testTraceLen)
	if err != nil {
		t.Fatal(err)
	}
	if canon.Experiment.Name != "fig1" || key != "exp|fig1|c2" {
		t.Fatalf("canon %+v key %q", canon.Experiment, key)
	}
	// Unknown experiments fail fast with a suggestion.
	_, _, err = canonicalize(SubmitRequest{
		Kind: KindExperiment, Experiment: &ExperimentRequest{Name: "fig12"},
	}, src, testTraceLen)
	if err == nil || !strings.Contains(err.Error(), "did you mean") {
		t.Fatalf("unknown experiment error %v lacks suggestion", err)
	}
}

func TestCanonicalizeSimulateDefaultsAndKey(t *testing.T) {
	src := suiteSrc()
	a, keyA, err := canonicalize(SubmitRequest{
		Kind: KindSimulate, Simulate: &SimulateRequest{Workload: []string{"mcf", "povray"}},
	}, src, testTraceLen)
	if err != nil {
		t.Fatal(err)
	}
	if a.Simulate.Policy != "LRU" || a.Simulate.Engine != EngineDetailed {
		t.Fatalf("defaults not filled: %+v", a.Simulate)
	}
	// Explicit defaults canonicalize to the same key: they dedup.
	_, keyB, err := canonicalize(SubmitRequest{
		Kind: KindSimulate, Simulate: &SimulateRequest{
			Workload: []string{"mcf", "povray"}, Policy: "LRU", Engine: EngineDetailed,
		},
	}, src, testTraceLen)
	if err != nil || keyA != keyB {
		t.Fatalf("equivalent submissions have keys %q vs %q (err %v)", keyA, keyB, err)
	}
	// Different policy, different key.
	_, keyC, _ := canonicalize(SubmitRequest{
		Kind: KindSimulate, Simulate: &SimulateRequest{Workload: []string{"mcf", "povray"}, Policy: "DIP"},
	}, src, testTraceLen)
	if keyC == keyA {
		t.Error("different policies share a key")
	}
	// Cores replication canonicalizes into the workload itself.
	d, keyD, err := canonicalize(SubmitRequest{
		Kind: KindSimulate, Simulate: &SimulateRequest{Workload: []string{"mcf"}, Cores: 2},
	}, src, testTraceLen)
	if err != nil {
		t.Fatal(err)
	}
	if len(d.Simulate.Workload) != 2 || d.Simulate.Workload[1] != "mcf" {
		t.Fatalf("replication lost: %+v", d.Simulate.Workload)
	}
	_, keyE, _ := canonicalize(SubmitRequest{
		Kind: KindSimulate, Simulate: &SimulateRequest{Workload: []string{"mcf", "mcf"}},
	}, src, testTraceLen)
	if keyD != keyE {
		t.Errorf("replicated and explicit workloads differ: %q vs %q", keyD, keyE)
	}
}

func TestCanonicalizeRejections(t *testing.T) {
	src := suiteSrc()
	cases := []SubmitRequest{
		{Kind: "nope"},
		{Kind: KindExperiment}, // no payload
		{Kind: KindSimulate},   // no payload
		{Kind: KindSweep},      // no payload
		{Kind: KindSimulate, Simulate: &SimulateRequest{}}, // empty workload
		{Kind: KindSweep, Sweep: &SweepRequest{}},          // empty sweep
		{Kind: KindExperiment, Experiment: &ExperimentRequest{Name: "fig1", Cores: -1}},
		{Kind: KindSimulate, Simulate: &SimulateRequest{Workload: []string{"nosuch"}}},
		{Kind: KindSimulate, Simulate: &SimulateRequest{Workload: []string{"mcf"}, Policy: "NOPE"}},
		{Kind: KindSimulate, Simulate: &SimulateRequest{Workload: []string{"mcf"}, Engine: "zesto"}},
		{Kind: KindSimulate, Simulate: &SimulateRequest{Workload: []string{"mcf", "gcc"}, Cores: 4}},
		// Warmup beyond the explicit quota.
		{Kind: KindSimulate, Simulate: &SimulateRequest{Workload: []string{"mcf"}, Quota: 2000, Warmup: 3000}},
		// Warmup beyond the default quota (one trace length).
		{Kind: KindSimulate, Simulate: &SimulateRequest{Workload: []string{"mcf"}, Warmup: testTraceLen + 1}},
		{Kind: KindSweep, Sweep: &SweepRequest{Workloads: [][]string{{"mcf"}}, Quota: 500, Warmup: 600}},
	}
	for i, req := range cases {
		if _, _, err := canonicalize(req, src, testTraceLen); err == nil {
			t.Errorf("case %d (%+v): accepted", i, req)
		}
	}
}

func TestCanonicalizeSweepDigest(t *testing.T) {
	src := suiteSrc()
	ws := [][]string{{"mcf", "gcc"}, {"povray", "milc"}}
	_, keyA, err := canonicalize(SubmitRequest{Kind: KindSweep, Sweep: &SweepRequest{Workloads: ws}}, src, testTraceLen)
	if err != nil {
		t.Fatal(err)
	}
	_, keyB, _ := canonicalize(SubmitRequest{Kind: KindSweep, Sweep: &SweepRequest{Workloads: ws}}, src, testTraceLen)
	if keyA != keyB {
		t.Errorf("identical sweeps differ: %q vs %q", keyA, keyB)
	}
	// Workload order matters (results are indexed by it).
	_, keyC, _ := canonicalize(SubmitRequest{Kind: KindSweep, Sweep: &SweepRequest{
		Workloads: [][]string{{"povray", "milc"}, {"mcf", "gcc"}},
	}}, src, testTraceLen)
	if keyC == keyA {
		t.Error("reordered sweep shares a key")
	}
}

func TestCanonicalizeWarmupKeys(t *testing.T) {
	src := suiteSrc()
	// A warmed request computes different numbers than a cold one, so it
	// must not dedup onto a cold job; a zero warmup keeps the historic
	// key format byte-for-byte.
	cold, keyCold, err := canonicalize(SubmitRequest{
		Kind: KindSimulate, Simulate: &SimulateRequest{Workload: []string{"mcf", "povray"}},
	}, src, testTraceLen)
	if err != nil {
		t.Fatal(err)
	}
	if want := "sim|detailed|LRU|q0|mcf,povray"; keyCold != want {
		t.Fatalf("cold key %q, want %q", keyCold, want)
	}
	_, keyWarm, err := canonicalize(SubmitRequest{
		Kind: KindSimulate, Simulate: &SimulateRequest{Workload: []string{"mcf", "povray"}, Warmup: 2500},
	}, src, testTraceLen)
	if err != nil {
		t.Fatal(err)
	}
	if keyWarm == keyCold {
		t.Error("warmed and cold requests share a key")
	}
	if !strings.HasSuffix(keyWarm, "|w2500") {
		t.Errorf("warm key %q lacks warmup suffix", keyWarm)
	}
	if cold.Simulate.Warmup != 0 {
		t.Errorf("cold canonical form gained warmup %d", cold.Simulate.Warmup)
	}
	// A warmup that fits exactly inside the default quota is accepted.
	if _, _, err := canonicalize(SubmitRequest{
		Kind: KindSimulate, Simulate: &SimulateRequest{Workload: []string{"mcf"}, Warmup: testTraceLen},
	}, src, testTraceLen); err != nil {
		t.Errorf("warmup == trace length rejected: %v", err)
	}
	// Sweeps carry the same suffix.
	_, keySweep, err := canonicalize(SubmitRequest{
		Kind: KindSweep, Sweep: &SweepRequest{Workloads: [][]string{{"mcf", "gcc"}}, Warmup: 100},
	}, src, testTraceLen)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.HasSuffix(keySweep, "|w100") {
		t.Errorf("sweep key %q lacks warmup suffix", keySweep)
	}
}

func TestCanonicalizeSamplingKeys(t *testing.T) {
	src := suiteSrc()
	smp := &SampleSpec{Unit: 4000, Window: 1000, Warmup: 500}
	// A sampled request computes estimates, not the exact numbers: it
	// must never dedup onto an exact job.
	_, keySmp, err := canonicalize(SubmitRequest{
		Kind: KindSimulate, Simulate: &SimulateRequest{
			Workload: []string{"mcf", "povray"}, Sampling: smp,
		},
	}, src, testTraceLen)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.HasSuffix(keySmp, "|smpu4000d1000w500") {
		t.Errorf("sampled key %q lacks spec suffix", keySmp)
	}
	_, keyExact, _ := canonicalize(SubmitRequest{
		Kind: KindSimulate, Simulate: &SimulateRequest{Workload: []string{"mcf", "povray"}},
	}, src, testTraceLen)
	if keySmp == keyExact {
		t.Error("sampled and exact requests share a key")
	}
	// The bounded-warming dial is part of the identity too.
	_, keyWarm, err := canonicalize(SubmitRequest{
		Kind: KindSimulate, Simulate: &SimulateRequest{
			Workload: []string{"mcf", "povray"},
			Sampling: &SampleSpec{Unit: 4000, Window: 1000, Warmup: 500, Warm: 2000},
		},
	}, src, testTraceLen)
	if err != nil {
		t.Fatal(err)
	}
	if keyWarm == keySmp || !strings.HasSuffix(keyWarm, "f2000") {
		t.Errorf("bounded-warm key %q does not extend %q", keyWarm, keySmp)
	}
	// Sweeps carry the same suffix.
	_, keySweep, err := canonicalize(SubmitRequest{
		Kind: KindSweep, Sweep: &SweepRequest{
			Workloads: [][]string{{"mcf", "gcc"}}, Sampling: smp,
		},
	}, src, testTraceLen)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.HasSuffix(keySweep, "|smpu4000d1000w500") {
		t.Errorf("sampled sweep key %q lacks spec suffix", keySweep)
	}
}

func TestCanonicalizeSamplingRejections(t *testing.T) {
	src := suiteSrc()
	cases := []struct {
		name string
		req  SimulateRequest
	}{
		{"badco engine", SimulateRequest{Workload: []string{"mcf"}, Engine: EngineBadco,
			Sampling: &SampleSpec{Unit: 4000, Window: 1000}}},
		{"with warmup", SimulateRequest{Workload: []string{"mcf"}, Warmup: 100,
			Sampling: &SampleSpec{Unit: 4000, Window: 1000}}},
		{"overfull unit", SimulateRequest{Workload: []string{"mcf"},
			Sampling: &SampleSpec{Unit: 1000, Window: 800, Warmup: 300}}},
		{"empty spec", SimulateRequest{Workload: []string{"mcf"}, Sampling: &SampleSpec{}}},
		{"warm beyond gap", SimulateRequest{Workload: []string{"mcf"},
			Sampling: &SampleSpec{Unit: 4000, Window: 1000, Warmup: 500, Warm: 2501}}},
	}
	for _, c := range cases {
		req := c.req
		_, _, err := canonicalize(SubmitRequest{Kind: KindSimulate, Simulate: &req}, src, testTraceLen)
		if err == nil {
			t.Errorf("%s: accepted", c.name)
		}
	}
}
