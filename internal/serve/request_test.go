package serve

// Canonicalization tests: defaults, key stability (the dedup identity),
// and validation errors.

import (
	"strings"
	"testing"

	"mcbench/internal/bench"
)

func suiteSrc() bench.Source { return bench.NewSuite() }

func TestCanonicalizeExperiment(t *testing.T) {
	src := suiteSrc()
	canon, key, err := canonicalize(SubmitRequest{
		Kind: KindExperiment, Experiment: &ExperimentRequest{Name: "fig1", Cores: 2},
	}, src)
	if err != nil {
		t.Fatal(err)
	}
	if canon.Experiment.Name != "fig1" || key != "exp|fig1|c2" {
		t.Fatalf("canon %+v key %q", canon.Experiment, key)
	}
	// Unknown experiments fail fast with a suggestion.
	_, _, err = canonicalize(SubmitRequest{
		Kind: KindExperiment, Experiment: &ExperimentRequest{Name: "fig12"},
	}, src)
	if err == nil || !strings.Contains(err.Error(), "did you mean") {
		t.Fatalf("unknown experiment error %v lacks suggestion", err)
	}
}

func TestCanonicalizeSimulateDefaultsAndKey(t *testing.T) {
	src := suiteSrc()
	a, keyA, err := canonicalize(SubmitRequest{
		Kind: KindSimulate, Simulate: &SimulateRequest{Workload: []string{"mcf", "povray"}},
	}, src)
	if err != nil {
		t.Fatal(err)
	}
	if a.Simulate.Policy != "LRU" || a.Simulate.Engine != EngineDetailed {
		t.Fatalf("defaults not filled: %+v", a.Simulate)
	}
	// Explicit defaults canonicalize to the same key: they dedup.
	_, keyB, err := canonicalize(SubmitRequest{
		Kind: KindSimulate, Simulate: &SimulateRequest{
			Workload: []string{"mcf", "povray"}, Policy: "LRU", Engine: EngineDetailed,
		},
	}, src)
	if err != nil || keyA != keyB {
		t.Fatalf("equivalent submissions have keys %q vs %q (err %v)", keyA, keyB, err)
	}
	// Different policy, different key.
	_, keyC, _ := canonicalize(SubmitRequest{
		Kind: KindSimulate, Simulate: &SimulateRequest{Workload: []string{"mcf", "povray"}, Policy: "DIP"},
	}, src)
	if keyC == keyA {
		t.Error("different policies share a key")
	}
	// Cores replication canonicalizes into the workload itself.
	d, keyD, err := canonicalize(SubmitRequest{
		Kind: KindSimulate, Simulate: &SimulateRequest{Workload: []string{"mcf"}, Cores: 2},
	}, src)
	if err != nil {
		t.Fatal(err)
	}
	if len(d.Simulate.Workload) != 2 || d.Simulate.Workload[1] != "mcf" {
		t.Fatalf("replication lost: %+v", d.Simulate.Workload)
	}
	_, keyE, _ := canonicalize(SubmitRequest{
		Kind: KindSimulate, Simulate: &SimulateRequest{Workload: []string{"mcf", "mcf"}},
	}, src)
	if keyD != keyE {
		t.Errorf("replicated and explicit workloads differ: %q vs %q", keyD, keyE)
	}
}

func TestCanonicalizeRejections(t *testing.T) {
	src := suiteSrc()
	cases := []SubmitRequest{
		{Kind: "nope"},
		{Kind: KindExperiment}, // no payload
		{Kind: KindSimulate},   // no payload
		{Kind: KindSweep},      // no payload
		{Kind: KindSimulate, Simulate: &SimulateRequest{}}, // empty workload
		{Kind: KindSweep, Sweep: &SweepRequest{}},          // empty sweep
		{Kind: KindExperiment, Experiment: &ExperimentRequest{Name: "fig1", Cores: -1}},
		{Kind: KindSimulate, Simulate: &SimulateRequest{Workload: []string{"nosuch"}}},
		{Kind: KindSimulate, Simulate: &SimulateRequest{Workload: []string{"mcf"}, Policy: "NOPE"}},
		{Kind: KindSimulate, Simulate: &SimulateRequest{Workload: []string{"mcf"}, Engine: "zesto"}},
		{Kind: KindSimulate, Simulate: &SimulateRequest{Workload: []string{"mcf", "gcc"}, Cores: 4}},
	}
	for i, req := range cases {
		if _, _, err := canonicalize(req, src); err == nil {
			t.Errorf("case %d (%+v): accepted", i, req)
		}
	}
}

func TestCanonicalizeSweepDigest(t *testing.T) {
	src := suiteSrc()
	ws := [][]string{{"mcf", "gcc"}, {"povray", "milc"}}
	_, keyA, err := canonicalize(SubmitRequest{Kind: KindSweep, Sweep: &SweepRequest{Workloads: ws}}, src)
	if err != nil {
		t.Fatal(err)
	}
	_, keyB, _ := canonicalize(SubmitRequest{Kind: KindSweep, Sweep: &SweepRequest{Workloads: ws}}, src)
	if keyA != keyB {
		t.Errorf("identical sweeps differ: %q vs %q", keyA, keyB)
	}
	// Workload order matters (results are indexed by it).
	_, keyC, _ := canonicalize(SubmitRequest{Kind: KindSweep, Sweep: &SweepRequest{
		Workloads: [][]string{{"povray", "milc"}, {"mcf", "gcc"}},
	}}, src)
	if keyC == keyA {
		t.Error("reordered sweep shares a key")
	}
}
