package serve

// Request canonicalization. Every submission is validated and rewritten
// into a canonical form up front — defaults filled in, workloads
// resolved, names checked against the benchmark source — and the
// canonical form is rendered into a stable key string. The key is the
// dedup identity: two submissions asking for the same computation
// canonicalize to the same key and coalesce onto one job, the serve-side
// analogue of the identity scheme results.IPCTable.Key uses for the
// persistent table cache.

import (
	"fmt"
	"hash/fnv"
	"strings"

	"mcbench/internal/bench"
	"mcbench/internal/cache"
	"mcbench/internal/experiments"
)

// Kind classifies a job.
type Kind string

const (
	// KindExperiment runs a registered experiment (registry-dispatched).
	KindExperiment Kind = "experiment"
	// KindSimulate runs one ad-hoc workload.
	KindSimulate Kind = "simulate"
	// KindSweep runs many ad-hoc workloads under one configuration.
	KindSweep Kind = "sweep"
)

// Engine names on the wire.
const (
	EngineDetailed = "detailed"
	EngineBadco    = "badco"
)

// SubmitRequest is the wire form of a job submission: a kind plus the
// matching payload. Exactly one payload must be set.
type SubmitRequest struct {
	Kind       Kind               `json:"kind"`
	Experiment *ExperimentRequest `json:"experiment,omitempty"`
	Simulate   *SimulateRequest   `json:"simulate,omitempty"`
	Sweep      *SweepRequest      `json:"sweep,omitempty"`
}

// ExperimentRequest asks for one registered experiment.
type ExperimentRequest struct {
	// Name is a registry experiment name (see /experiments).
	Name string `json:"name"`
	// Cores pins the core count; 0 means the experiment's paper default.
	Cores int `json:"cores,omitempty"`
}

// SimulateRequest asks for one ad-hoc workload simulation. The trace
// length is the server lab's Config.TraceLen.
type SimulateRequest struct {
	// Workload is one benchmark name per core. A single name with
	// Cores > 1 is replicated onto all cores.
	Workload []string `json:"workload"`
	// Policy is the LLC replacement policy (default "LRU").
	Policy string `json:"policy,omitempty"`
	// Engine is "detailed" (default) or "badco".
	Engine string `json:"engine,omitempty"`
	// Quota is the per-thread instruction quota (0: one trace length).
	Quota uint64 `json:"quota,omitempty"`
	// Warmup runs each thread for that many committed µops before the
	// measurement window opens (0: measure from reset). It must not
	// exceed the quota; submissions violating that are rejected before
	// enqueueing.
	Warmup uint64 `json:"warmup,omitempty"`
	// Cores replicates a single-benchmark workload; 0 keeps the
	// workload's own width.
	Cores int `json:"cores,omitempty"`
}

// SweepRequest is SimulateRequest over many workloads at once.
type SweepRequest struct {
	Workloads [][]string `json:"workloads"`
	Policy    string     `json:"policy,omitempty"`
	Engine    string     `json:"engine,omitempty"`
	Quota     uint64     `json:"quota,omitempty"`
	Warmup    uint64     `json:"warmup,omitempty"`
	Cores     int        `json:"cores,omitempty"`
}

// submitError is a validation failure; the handler maps it to 400.
type submitError struct{ msg string }

func (e *submitError) Error() string { return e.msg }

func badRequest(format string, args ...any) error {
	return &submitError{msg: fmt.Sprintf(format, args...)}
}

// canonicalize validates the submission against the source and registry,
// fills in defaults, resolves workloads, and returns the canonical
// request plus its dedup key. traceLen is the lab's per-benchmark trace
// length; it resolves a zero quota when validating the warmup window.
func canonicalize(req SubmitRequest, src bench.Source, traceLen int) (SubmitRequest, string, error) {
	switch req.Kind {
	case KindExperiment:
		if req.Experiment == nil {
			return req, "", badRequest("serve: experiment submission without payload")
		}
		e := *req.Experiment
		if e.Cores < 0 {
			return req, "", badRequest("serve: negative cores %d", e.Cores)
		}
		if _, ok := experiments.Lookup(e.Name); !ok {
			msg := fmt.Sprintf("serve: unknown experiment %q", e.Name)
			if s := experiments.Suggest(e.Name); s != "" {
				msg += fmt.Sprintf(" (did you mean %q?)", s)
			}
			return req, "", badRequest("%s", msg)
		}
		canon := SubmitRequest{Kind: KindExperiment, Experiment: &e}
		return canon, fmt.Sprintf("exp|%s|c%d", e.Name, e.Cores), nil

	case KindSimulate:
		if req.Simulate == nil {
			return req, "", badRequest("serve: simulate submission without payload")
		}
		s := *req.Simulate
		w, policy, engine, err := canonSim(src, [][]string{s.Workload}, s.Policy, s.Engine, s.Cores)
		if err != nil {
			return req, "", err
		}
		if err := checkWarmup(s.Warmup, s.Quota, traceLen); err != nil {
			return req, "", err
		}
		s.Workload, s.Policy, s.Engine = w[0], policy, engine
		canon := SubmitRequest{Kind: KindSimulate, Simulate: &s}
		key := fmt.Sprintf("sim|%s|%s|q%d|%s", engine, policy, s.Quota, strings.Join(s.Workload, ","))
		if s.Warmup > 0 {
			key += fmt.Sprintf("|w%d", s.Warmup)
		}
		return canon, key, nil

	case KindSweep:
		if req.Sweep == nil {
			return req, "", badRequest("serve: sweep submission without payload")
		}
		s := *req.Sweep
		if len(s.Workloads) == 0 {
			return req, "", badRequest("serve: empty sweep")
		}
		w, policy, engine, err := canonSim(src, s.Workloads, s.Policy, s.Engine, s.Cores)
		if err != nil {
			return req, "", err
		}
		if err := checkWarmup(s.Warmup, s.Quota, traceLen); err != nil {
			return req, "", err
		}
		s.Workloads, s.Policy, s.Engine = w, policy, engine
		canon := SubmitRequest{Kind: KindSweep, Sweep: &s}
		// Workload lists can be large; the key carries a digest plus the
		// shape so distinct sweeps cannot collide in practice.
		h := fnv.New64a()
		for _, wl := range s.Workloads {
			h.Write([]byte(strings.Join(wl, ",")))
			h.Write([]byte{'\n'})
		}
		key := fmt.Sprintf("sweep|%s|%s|q%d|n%d|%016x", engine, policy, s.Quota, len(s.Workloads), h.Sum64())
		if s.Warmup > 0 {
			key += fmt.Sprintf("|w%d", s.Warmup)
		}
		return canon, key, nil

	default:
		return req, "", badRequest("serve: unknown job kind %q", req.Kind)
	}
}

// checkWarmup rejects a warmup prefix that exceeds the measurement
// quota (a zero quota resolves to one trace length, as in the drivers),
// so an impossible run is refused before it is enqueued.
func checkWarmup(warmup, quota uint64, traceLen int) error {
	q := quota
	if q == 0 {
		q = uint64(traceLen)
	}
	if warmup > q {
		return badRequest("serve: warmup %d exceeds the instruction quota %d", warmup, q)
	}
	return nil
}

// canonSim validates and canonicalizes the shared simulate/sweep fields:
// policy and engine defaults, WithCores-style replication, and name
// validation against the source.
func canonSim(src bench.Source, workloads [][]string, policy, engine string, cores int) (resolved [][]string, pol, eng string, err error) {
	if policy == "" {
		policy = string(cache.LRU)
	}
	if _, err := cache.NewPolicy(cache.PolicyName(policy), 0); err != nil {
		return nil, "", "", badRequest("serve: %v", err)
	}
	switch engine {
	case "":
		engine = EngineDetailed
	case EngineDetailed, EngineBadco:
	default:
		return nil, "", "", badRequest("serve: unknown engine %q (want %q or %q)", engine, EngineDetailed, EngineBadco)
	}
	if cores < 0 {
		return nil, "", "", badRequest("serve: negative cores %d", cores)
	}
	resolved = make([][]string, len(workloads))
	for i, w := range workloads {
		rw, err := resolveWorkload(w, cores)
		if err != nil {
			return nil, "", "", err
		}
		resolved[i] = rw
	}
	if _, err := bench.CheckNames(src, resolved); err != nil {
		return nil, "", "", badRequest("%v (see /benches)", err)
	}
	return resolved, policy, engine, nil
}

// resolveWorkload applies the cores option to one named workload: a
// single benchmark is replicated onto all cores, a multi-benchmark
// workload must already match.
func resolveWorkload(workload []string, cores int) ([]string, error) {
	if len(workload) == 0 {
		return nil, badRequest("serve: empty workload")
	}
	if cores == 0 || cores == len(workload) {
		return append([]string(nil), workload...), nil
	}
	if len(workload) == 1 {
		w := make([]string, cores)
		for i := range w {
			w[i] = workload[0]
		}
		return w, nil
	}
	return nil, badRequest("serve: workload has %d threads but cores=%d was given", len(workload), cores)
}
