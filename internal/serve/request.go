package serve

// Request canonicalization. Every submission is validated and rewritten
// into a canonical form up front — defaults filled in, workloads
// resolved, names checked against the benchmark source — and the
// canonical form is rendered into a stable key string. The key is the
// dedup identity: two submissions asking for the same computation
// canonicalize to the same key and coalesce onto one job, the serve-side
// analogue of the identity scheme results.IPCTable.Key uses for the
// persistent table cache.

import (
	"fmt"
	"hash/fnv"
	"sort"
	"strings"

	"mcbench/internal/bench"
	"mcbench/internal/cache"
	"mcbench/internal/experiments"
	"mcbench/internal/multicore"
)

// Kind classifies a job.
type Kind string

const (
	// KindExperiment runs a registered experiment (registry-dispatched).
	KindExperiment Kind = "experiment"
	// KindSimulate runs one ad-hoc workload.
	KindSimulate Kind = "simulate"
	// KindSweep runs many ad-hoc workloads under one configuration.
	KindSweep Kind = "sweep"
	// KindWarm precomputes campaign products into the node's persistent
	// cache without rendering a table. The fleet coordinator dispatches
	// campaign shards to workers as warm jobs; the results converge
	// through the content-addressed cache, not the job result.
	KindWarm Kind = "warm"
)

// Engine names on the wire.
const (
	EngineDetailed = "detailed"
	EngineBadco    = "badco"
)

// SubmitRequest is the wire form of a job submission: a kind plus the
// matching payload. Exactly one payload must be set.
type SubmitRequest struct {
	Kind       Kind               `json:"kind"`
	Experiment *ExperimentRequest `json:"experiment,omitempty"`
	Simulate   *SimulateRequest   `json:"simulate,omitempty"`
	Sweep      *SweepRequest      `json:"sweep,omitempty"`
	Warm       *WarmRequest       `json:"warm,omitempty"`
}

// ProductRef names one campaign product on the wire (the serve form of
// experiments.Request). Cores and Policy are meaningful per the
// simulator, exactly as in the campaign planner.
type ProductRef struct {
	Sim    string `json:"sim"`
	Cores  int    `json:"cores,omitempty"`
	Policy string `json:"policy,omitempty"`
}

// WarmRequest asks a node to warm the named products into its lab (and
// persistent cache, when configured).
type WarmRequest struct {
	Products []ProductRef `json:"products"`
}

// ExperimentRequest asks for one registered experiment.
type ExperimentRequest struct {
	// Name is a registry experiment name (see /experiments).
	Name string `json:"name"`
	// Cores pins the core count; 0 means the experiment's paper default.
	Cores int `json:"cores,omitempty"`
}

// SimulateRequest asks for one ad-hoc workload simulation. The trace
// length is the server lab's Config.TraceLen.
type SimulateRequest struct {
	// Workload is one benchmark name per core. A single name with
	// Cores > 1 is replicated onto all cores.
	Workload []string `json:"workload"`
	// Policy is the LLC replacement policy (default "LRU").
	Policy string `json:"policy,omitempty"`
	// Engine is "detailed" (default) or "badco".
	Engine string `json:"engine,omitempty"`
	// Quota is the per-thread instruction quota (0: one trace length).
	Quota uint64 `json:"quota,omitempty"`
	// Warmup runs each thread for that many committed µops before the
	// measurement window opens (0: measure from reset). It must not
	// exceed the quota; submissions violating that are rejected before
	// enqueueing.
	Warmup uint64 `json:"warmup,omitempty"`
	// Cores replicates a single-benchmark workload; 0 keeps the
	// workload's own width.
	Cores int `json:"cores,omitempty"`
	// Sampling, when set, runs the detailed simulation under systematic
	// sampling (multicore.DetailedSampled): the returned IPCs become
	// steady-state estimates with confidence and cv columns. Requires
	// the detailed engine and is mutually exclusive with Warmup.
	Sampling *SampleSpec `json:"sampling,omitempty"`
}

// SampleSpec is the wire form of a systematic-sampling schedule (see
// multicore.SamplingSpec): per Unit µops one Window of detailed
// measurement after Warmup detailed warmup µops, the gap fast-forwarded
// under functional warming (bounded to the last Warm µops when Warm is
// non-zero).
type SampleSpec struct {
	Unit   uint64 `json:"unit"`
	Window uint64 `json:"window"`
	Warmup uint64 `json:"warmup,omitempty"`
	Warm   uint64 `json:"warm,omitempty"`
}

// spec converts the wire form to the kernel's.
func (s *SampleSpec) spec() multicore.SamplingSpec {
	if s == nil {
		return multicore.SamplingSpec{}
	}
	return multicore.SamplingSpec{Unit: s.Unit, Window: s.Window, Warmup: s.Warmup, Warm: s.Warm}
}

// SweepRequest is SimulateRequest over many workloads at once.
type SweepRequest struct {
	Workloads [][]string  `json:"workloads"`
	Policy    string      `json:"policy,omitempty"`
	Engine    string      `json:"engine,omitempty"`
	Quota     uint64      `json:"quota,omitempty"`
	Warmup    uint64      `json:"warmup,omitempty"`
	Cores     int         `json:"cores,omitempty"`
	Sampling  *SampleSpec `json:"sampling,omitempty"`
}

// submitError is a validation failure; the handler maps it to 400.
type submitError struct{ msg string }

func (e *submitError) Error() string { return e.msg }

func badRequest(format string, args ...any) error {
	return &submitError{msg: fmt.Sprintf(format, args...)}
}

// canonicalize validates the submission against the source and registry,
// fills in defaults, resolves workloads, and returns the canonical
// request plus its dedup key. traceLen is the lab's per-benchmark trace
// length; it resolves a zero quota when validating the warmup window.
func canonicalize(req SubmitRequest, src bench.Source, traceLen int) (SubmitRequest, string, error) {
	switch req.Kind {
	case KindExperiment:
		if req.Experiment == nil {
			return req, "", badRequest("serve: experiment submission without payload")
		}
		e := *req.Experiment
		if e.Cores < 0 {
			return req, "", badRequest("serve: negative cores %d", e.Cores)
		}
		if _, ok := experiments.Lookup(e.Name); !ok {
			msg := fmt.Sprintf("serve: unknown experiment %q", e.Name)
			if s := experiments.Suggest(e.Name); s != "" {
				msg += fmt.Sprintf(" (did you mean %q?)", s)
			}
			return req, "", badRequest("%s", msg)
		}
		canon := SubmitRequest{Kind: KindExperiment, Experiment: &e}
		return canon, fmt.Sprintf("exp|%s|c%d", e.Name, e.Cores), nil

	case KindSimulate:
		if req.Simulate == nil {
			return req, "", badRequest("serve: simulate submission without payload")
		}
		s := *req.Simulate
		w, policy, engine, err := canonSim(src, [][]string{s.Workload}, s.Policy, s.Engine, s.Cores)
		if err != nil {
			return req, "", err
		}
		if err := checkWarmup(s.Warmup, s.Quota, traceLen); err != nil {
			return req, "", err
		}
		if err := checkSampling(s.Sampling, engine, s.Warmup); err != nil {
			return req, "", err
		}
		s.Workload, s.Policy, s.Engine = w[0], policy, engine
		canon := SubmitRequest{Kind: KindSimulate, Simulate: &s}
		key := fmt.Sprintf("sim|%s|%s|q%d|%s", engine, policy, s.Quota, strings.Join(s.Workload, ","))
		if s.Warmup > 0 {
			key += fmt.Sprintf("|w%d", s.Warmup)
		}
		if s.Sampling != nil {
			key += "|smp" + s.Sampling.spec().String()
		}
		return canon, key, nil

	case KindSweep:
		if req.Sweep == nil {
			return req, "", badRequest("serve: sweep submission without payload")
		}
		s := *req.Sweep
		if len(s.Workloads) == 0 {
			return req, "", badRequest("serve: empty sweep")
		}
		w, policy, engine, err := canonSim(src, s.Workloads, s.Policy, s.Engine, s.Cores)
		if err != nil {
			return req, "", err
		}
		if err := checkWarmup(s.Warmup, s.Quota, traceLen); err != nil {
			return req, "", err
		}
		if err := checkSampling(s.Sampling, engine, s.Warmup); err != nil {
			return req, "", err
		}
		s.Workloads, s.Policy, s.Engine = w, policy, engine
		canon := SubmitRequest{Kind: KindSweep, Sweep: &s}
		// Workload lists can be large; the key carries a digest plus the
		// shape so distinct sweeps cannot collide in practice.
		h := fnv.New64a()
		for _, wl := range s.Workloads {
			h.Write([]byte(strings.Join(wl, ",")))
			h.Write([]byte{'\n'})
		}
		key := fmt.Sprintf("sweep|%s|%s|q%d|n%d|%016x", engine, policy, s.Quota, len(s.Workloads), h.Sum64())
		if s.Warmup > 0 {
			key += fmt.Sprintf("|w%d", s.Warmup)
		}
		if s.Sampling != nil {
			key += "|smp" + s.Sampling.spec().String()
		}
		return canon, key, nil

	case KindWarm:
		if req.Warm == nil {
			return req, "", badRequest("serve: warm submission without payload")
		}
		wr := *req.Warm
		if len(wr.Products) == 0 {
			return req, "", badRequest("serve: empty warm plan")
		}
		seen := make(map[experiments.Request]bool, len(wr.Products))
		var norm []experiments.Request
		for _, p := range wr.Products {
			r, err := canonProduct(p)
			if err != nil {
				return req, "", err
			}
			if !seen[r] {
				seen[r] = true
				norm = append(norm, r)
			}
		}
		// Sorted products make the dedup key order-insensitive: two
		// shards naming the same set coalesce regardless of plan order.
		sort.Slice(norm, func(i, j int) bool {
			a, b := norm[i], norm[j]
			if a.Sim != b.Sim {
				return a.Sim < b.Sim
			}
			if a.Cores != b.Cores {
				return a.Cores < b.Cores
			}
			return a.Policy < b.Policy
		})
		products := make([]ProductRef, len(norm))
		h := fnv.New64a()
		for i, r := range norm {
			products[i] = ProductRef{Sim: string(r.Sim), Cores: r.Cores, Policy: string(r.Policy)}
			fmt.Fprintf(h, "%s|%d|%s\n", r.Sim, r.Cores, r.Policy)
		}
		wr.Products = products
		canon := SubmitRequest{Kind: KindWarm, Warm: &wr}
		return canon, fmt.Sprintf("warm|n%d|%016x", len(products), h.Sum64()), nil

	default:
		return req, "", badRequest("serve: unknown job kind %q", req.Kind)
	}
}

// canonProduct validates one wire product and returns its normalized
// campaign request.
func canonProduct(p ProductRef) (experiments.Request, error) {
	sim := experiments.Simulator(p.Sim)
	switch sim {
	case experiments.SimBadco, experiments.SimDetailed:
		if p.Cores <= 0 {
			return experiments.Request{}, badRequest("serve: product %q needs cores > 0", p.Sim)
		}
		if p.Policy == "" {
			return experiments.Request{}, badRequest("serve: product %q needs a policy", p.Sim)
		}
		if _, err := cache.NewPolicy(cache.PolicyName(p.Policy), 0); err != nil {
			return experiments.Request{}, badRequest("serve: %v", err)
		}
	case experiments.SimRef:
		if p.Cores <= 0 {
			return experiments.Request{}, badRequest("serve: product %q needs cores > 0", p.Sim)
		}
	case experiments.SimMPKI, experiments.SimModels:
	default:
		return experiments.Request{}, badRequest("serve: unknown product simulator %q", p.Sim)
	}
	r := experiments.Request{Sim: sim, Cores: p.Cores, Policy: cache.PolicyName(p.Policy)}
	return r.Normalized(), nil
}

// checkSampling rejects an unusable sampling schedule before it is
// enqueued: the spec itself must validate, only the detailed engine can
// be sampled, and a whole-run warmup cannot combine with it (the spec's
// own warmup field plays that role per window).
func checkSampling(s *SampleSpec, engine string, warmup uint64) error {
	if s == nil {
		return nil
	}
	if err := s.spec().Validate(); err != nil {
		return badRequest("serve: %v", err)
	}
	if !s.spec().Enabled() {
		return badRequest("serve: empty sampling spec (omit the field for an exact run)")
	}
	if engine != EngineDetailed {
		return badRequest("serve: sampling requires the %q engine", EngineDetailed)
	}
	if warmup > 0 {
		return badRequest("serve: warmup and sampling are mutually exclusive (the sampling spec's warmup field warms each window)")
	}
	return nil
}

// checkWarmup rejects a warmup prefix that exceeds the measurement
// quota (a zero quota resolves to one trace length, as in the drivers),
// so an impossible run is refused before it is enqueued.
func checkWarmup(warmup, quota uint64, traceLen int) error {
	q := quota
	if q == 0 {
		q = uint64(traceLen)
	}
	if warmup > q {
		return badRequest("serve: warmup %d exceeds the instruction quota %d", warmup, q)
	}
	return nil
}

// canonSim validates and canonicalizes the shared simulate/sweep fields:
// policy and engine defaults, WithCores-style replication, and name
// validation against the source.
func canonSim(src bench.Source, workloads [][]string, policy, engine string, cores int) (resolved [][]string, pol, eng string, err error) {
	if policy == "" {
		policy = string(cache.LRU)
	}
	if _, err := cache.NewPolicy(cache.PolicyName(policy), 0); err != nil {
		return nil, "", "", badRequest("serve: %v", err)
	}
	switch engine {
	case "":
		engine = EngineDetailed
	case EngineDetailed, EngineBadco:
	default:
		return nil, "", "", badRequest("serve: unknown engine %q (want %q or %q)", engine, EngineDetailed, EngineBadco)
	}
	if cores < 0 {
		return nil, "", "", badRequest("serve: negative cores %d", cores)
	}
	resolved = make([][]string, len(workloads))
	for i, w := range workloads {
		rw, err := resolveWorkload(w, cores)
		if err != nil {
			return nil, "", "", err
		}
		resolved[i] = rw
	}
	if _, err := bench.CheckNames(src, resolved); err != nil {
		return nil, "", "", badRequest("%v (see /benches)", err)
	}
	return resolved, policy, engine, nil
}

// resolveWorkload applies the cores option to one named workload: a
// single benchmark is replicated onto all cores, a multi-benchmark
// workload must already match.
func resolveWorkload(workload []string, cores int) ([]string, error) {
	if len(workload) == 0 {
		return nil, badRequest("serve: empty workload")
	}
	if cores == 0 || cores == len(workload) {
		return append([]string(nil), workload...), nil
	}
	if len(workload) == 1 {
		w := make([]string, cores)
		for i := range w {
			w[i] = workload[0]
		}
		return w, nil
	}
	return nil, badRequest("serve: workload has %d threads but cores=%d was given", len(workload), cores)
}
