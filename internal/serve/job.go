package serve

// The job manager: a bounded queue feeding a fixed worker pool, with
// in-flight request deduplication. Identical submissions (by canonical
// key) coalesce onto one job while it is queued or running — N clients
// asking for the same sweep cost one computation — and every job keeps
// an append-only event log that the streaming handlers replay and follow.

import (
	"context"
	"errors"
	"fmt"
	"runtime/debug"
	"sync"
	"time"

	"mcbench/internal/faultinject"
)

// State is a job's lifecycle state.
type State string

const (
	StateQueued   State = "queued"
	StateRunning  State = "running"
	StateDone     State = "done"
	StateFailed   State = "failed"
	StateCanceled State = "canceled"
)

// Terminal reports whether the state is final.
func (s State) Terminal() bool {
	return s == StateDone || s == StateFailed || s == StateCanceled
}

// Event is one entry of a job's progress log. Seq starts at 1 and is the
// resume cursor of the streaming endpoints (?after=SEQ).
type Event struct {
	Seq  int       `json:"seq"`
	Time time.Time `json:"time"`
	// Type is "queued", "started", "plan", "product", "models", "done",
	// "failed" or "canceled".
	Type string `json:"type"`
	Msg  string `json:"msg,omitempty"`
	// Data carries type-specific fields (product events: sim, cores,
	// policy, phase, cached, rows).
	Data map[string]any `json:"data,omitempty"`
}

// JobStatus is the wire form of a job.
type JobStatus struct {
	ID   string `json:"id"`
	Kind Kind   `json:"kind"`
	// Key is the canonical request identity submissions dedup by.
	Key     string    `json:"key"`
	State   State     `json:"state"`
	Error   string    `json:"error,omitempty"`
	Created time.Time `json:"created"`
	// Started/Finished are zero until the job reaches that point.
	Started  time.Time `json:"started,omitzero"`
	Finished time.Time `json:"finished,omitzero"`
	// Coalesced counts duplicate submissions that rode this job.
	Coalesced int `json:"coalesced"`
	// Events is the current length of the event log.
	Events int `json:"events"`
	// Deduped is set on submission responses when an already in-flight
	// job was returned instead of a new one.
	Deduped bool `json:"deduped,omitempty"`
}

// TableResult is the structured form of an experiment table.
type TableResult struct {
	Title   string     `json:"title"`
	Columns []string   `json:"columns"`
	Rows    [][]string `json:"rows"`
	Notes   []string   `json:"notes,omitempty"`
}

// SimResult is the wire form of one simulated workload.
type SimResult struct {
	Workload     []string  `json:"workload"`
	Policy       string    `json:"policy"`
	Engine       string    `json:"engine"`
	IPC          []float64 `json:"ipc"`
	Cycles       []uint64  `json:"cycles"`
	Instructions uint64    `json:"instructions"`
	// Warmup is the per-thread warmup prefix the measurement excluded
	// (0 when the run measured from reset).
	Warmup uint64 `json:"warmup,omitempty"`
	// Sampling echoes the sampling schedule of a sampled run, with the
	// per-core 95% confidence half-width and coefficient of variation of
	// the window IPCs and the number of detailed windows measured. All
	// four are absent on exact runs.
	Sampling *SampleSpec `json:"sampling,omitempty"`
	CIHalf   []float64   `json:"ci_half,omitempty"`
	CV       []float64   `json:"cv,omitempty"`
	Windows  int         `json:"windows,omitempty"`
}

// JobResult is a completed job's payload: a table (experiment jobs) or
// simulation results (simulate: one, sweep: one per workload).
type JobResult struct {
	ID   string `json:"id"`
	Kind Kind   `json:"kind"`
	// Table and Text are set for experiment jobs.
	Table *TableResult `json:"table,omitempty"`
	Text  string       `json:"text,omitempty"`
	// Results is set for simulate/sweep jobs.
	Results []SimResult `json:"results,omitempty"`
	// Warmed is set for warm jobs: the number of distinct products the
	// plan named (the tables themselves live in the persistent cache).
	Warmed int `json:"warmed,omitempty"`
}

// job is the manager's internal job record.
type job struct {
	id  string
	key string
	req SubmitRequest

	mu        sync.Mutex
	state     State
	err       string
	result    *JobResult
	events    []Event
	wake      chan struct{} // closed and replaced on every append
	cancel    context.CancelFunc
	created   time.Time
	started   time.Time
	finished  time.Time
	coalesced int
}

// status snapshots the job.
func (j *job) status() JobStatus {
	j.mu.Lock()
	defer j.mu.Unlock()
	return JobStatus{
		ID: j.id, Kind: j.req.Kind, Key: j.key, State: j.state, Error: j.err,
		Created: j.created, Started: j.started, Finished: j.finished,
		Coalesced: j.coalesced, Events: len(j.events),
	}
}

// emit appends an event and wakes every watcher.
func (j *job) emit(typ, msg string, data map[string]any) {
	j.mu.Lock()
	j.events = append(j.events, Event{
		Seq: len(j.events) + 1, Time: time.Now(), Type: typ, Msg: msg, Data: data,
	})
	close(j.wake)
	j.wake = make(chan struct{})
	j.mu.Unlock()
}

// eventsAfter returns the events past the cursor, a channel that closes
// on the next append, and the state observed in the same snapshot. The
// final event is appended under the same lock that flips the state (see
// finishFrom), so a terminal state implies the final event is already
// in the returned log — a follower that drains to the end never misses
// it, and a response pairing this state with these events can never
// claim "done" while withholding the done event.
func (j *job) eventsAfter(after int) (evs []Event, wake <-chan struct{}, state State) {
	j.mu.Lock()
	defer j.mu.Unlock()
	if after < 0 {
		after = 0
	}
	if after < len(j.events) {
		evs = append(evs, j.events[after:]...)
	}
	return evs, j.wake, j.state
}

// finishFrom atomically flips the job from one specific state to a
// terminal state and appends the matching final event. It reports false
// when the job is not in the from state (a concurrent transition won the
// race), which makes cancel-vs-start and cancel-vs-cancel races
// harmless.
func (j *job) finishFrom(from, final State, errText, msg string) bool {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.state != from {
		return false
	}
	j.state = final
	j.finished = time.Now()
	j.err = errText
	if msg == "" {
		msg = errText
	}
	j.events = append(j.events, Event{
		Seq: len(j.events) + 1, Time: time.Now(), Type: string(final), Msg: msg,
	})
	close(j.wake)
	j.wake = make(chan struct{})
	return true
}

// Stats counts the manager's traffic. Executed is the number of jobs
// that actually ran — the dedup tests assert Submitted - Coalesced
// collapses onto it.
type Stats struct {
	Submitted int64 `json:"submitted"`
	Coalesced int64 `json:"coalesced"`
	Executed  int64 `json:"executed"`
	Done      int64 `json:"done"`
	Failed    int64 `json:"failed"`
	Canceled  int64 `json:"canceled"`
	Queued    int64 `json:"queued"`
	Running   int64 `json:"running"`
	// Panics counts jobs that died to a recovered panic (a subset of
	// Failed). Non-zero panics mean an experiment has a crash bug the
	// server absorbed — worth alerting on even though service continued.
	Panics int64 `json:"panics"`
	// TimedOut counts jobs killed by the per-job wall-clock timeout
	// (a subset of Failed).
	TimedOut int64 `json:"timed_out"`
}

// Errors the handlers map to HTTP statuses.
var (
	// ErrDraining rejects submissions while the server drains (503).
	ErrDraining = errors.New("serve: draining, not accepting jobs")
	// ErrQueueFull rejects submissions beyond the queue bound (503).
	ErrQueueFull = errors.New("serve: job queue full")
)

// manager owns the job table, the dedup index and the worker pool.
type manager struct {
	run func(ctx context.Context, j *job) (*JobResult, error)

	// jobTimeout bounds each job's wall-clock run time; 0 means no bound.
	jobTimeout time.Duration

	baseCtx    context.Context
	cancelBase context.CancelFunc

	mu       sync.Mutex
	cond     *sync.Cond // signals workers when pending grows or drain starts
	jobs     map[string]*job
	order    []string        // submission order, for listing
	inflight map[string]*job // canonical key -> queued/running job
	settled  []string        // terminal job ids, oldest first (retention)
	keep     int             // settled-job retention cap
	pending  []*job          // FIFO backlog; a slice (not a channel) so a
	// cancelled queued job can be removed and its slot freed immediately
	queueCap int
	seq      int
	draining bool
	stats    Stats

	wg sync.WaitGroup
}

// newManager starts a pool of workers executing run for each job. keep
// bounds how many settled jobs (with their event logs and results) stay
// queryable; beyond it the oldest are evicted, so a long-running server
// under sustained traffic holds O(keep) finished jobs, not all of them.
func newManager(workers, queueDepth, keep int, jobTimeout time.Duration, run func(ctx context.Context, j *job) (*JobResult, error)) *manager {
	if workers <= 0 {
		workers = 2
	}
	if queueDepth <= 0 {
		queueDepth = 16
	}
	if keep <= 0 {
		keep = 256
	}
	ctx, cancel := context.WithCancel(context.Background())
	m := &manager{
		run:        run,
		jobTimeout: jobTimeout,
		baseCtx:    ctx,
		cancelBase: cancel,
		jobs:       map[string]*job{},
		inflight:   map[string]*job{},
		keep:       keep,
		queueCap:   queueDepth,
	}
	m.cond = sync.NewCond(&m.mu)
	m.wg.Add(workers)
	for i := 0; i < workers; i++ {
		go m.worker()
	}
	return m
}

// submit canonicalizes nothing — the caller already did — and either
// coalesces onto an in-flight job with the same key or enqueues a new
// one. The returned bool reports dedup.
func (m *manager) submit(req SubmitRequest, key string) (*job, bool, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.draining {
		return nil, false, ErrDraining
	}
	m.stats.Submitted++
	if j := m.inflight[key]; j != nil {
		j.mu.Lock()
		j.coalesced++
		j.mu.Unlock()
		m.stats.Coalesced++
		return j, true, nil
	}
	if len(m.pending) >= m.queueCap {
		m.stats.Submitted--
		return nil, false, ErrQueueFull
	}
	m.seq++
	j := &job{
		id:      fmt.Sprintf("j%06d", m.seq),
		key:     key,
		req:     req,
		state:   StateQueued,
		wake:    make(chan struct{}),
		created: time.Now(),
	}
	m.pending = append(m.pending, j)
	m.jobs[j.id] = j
	m.order = append(m.order, j.id)
	m.inflight[key] = j
	m.stats.Queued++
	m.cond.Signal()
	j.emit("queued", "job accepted", nil)
	return j, false, nil
}

// dequeue blocks until a job is pending or the manager drains; ok is
// false when the worker should exit.
func (m *manager) dequeue() (*job, bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	for len(m.pending) == 0 && !m.draining {
		m.cond.Wait()
	}
	if len(m.pending) == 0 {
		return nil, false
	}
	j := m.pending[0]
	m.pending = m.pending[1:]
	return j, true
}

// removePending unlinks a job from the backlog (a cancelled queued job),
// freeing its queue slot immediately. It reports whether the job was
// still pending.
func (m *manager) removePending(j *job) bool {
	m.mu.Lock()
	defer m.mu.Unlock()
	for i, p := range m.pending {
		if p == j {
			m.pending = append(m.pending[:i], m.pending[i+1:]...)
			return true
		}
	}
	return false
}

// get returns a job by id.
func (m *manager) get(id string) (*job, bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	j, ok := m.jobs[id]
	return j, ok
}

// list snapshots every job in submission order.
func (m *manager) list() []JobStatus {
	m.mu.Lock()
	ids := append([]string(nil), m.order...)
	jobs := make([]*job, 0, len(ids))
	for _, id := range ids {
		jobs = append(jobs, m.jobs[id])
	}
	m.mu.Unlock()
	out := make([]JobStatus, len(jobs))
	for i, j := range jobs {
		out[i] = j.status()
	}
	return out
}

// cancelJob cancels a queued or running job. Unknown ids report false;
// terminal jobs are left alone (ok, already settled).
func (m *manager) cancelJob(id string) (JobStatus, bool) {
	j, ok := m.get(id)
	if !ok {
		return JobStatus{}, false
	}
	// Not yet picked up: settle it here and unlink it from the backlog
	// so its queue slot frees immediately (the worker's own
	// queued→running transition guards the race — finishFrom loses it
	// cleanly if the job just started). A job the worker already holds
	// but has not transitioned is settled here and skipped there.
	if j.finishFrom(StateQueued, StateCanceled, "", "canceled before start") {
		m.removePending(j)
		m.settle(j, StateQueued, StateCanceled, false)
		return j.status(), true
	}
	j.mu.Lock()
	cancel := j.cancel
	j.mu.Unlock()
	if cancel != nil {
		cancel() // the worker observes ctx death and settles the job
	}
	return j.status(), true
}

// settle atomically retires a job: one critical section decrements the
// from-state gauge (queued or running), bumps the terminal counter (and
// the timeout sub-counter when the wall-clock bound fired), drops the
// in-flight index entry and enforces the settled-job retention cap.
// Folding the gauge and the counter into one section keeps every Stats
// snapshot consistent — no /healthz reader can observe a job counted
// done while still counted running, or the reverse. The job's own
// terminal transition must already have happened (finishFrom).
func (m *manager) settle(j *job, from, final State, timedOut bool) {
	m.mu.Lock()
	if m.inflight[j.key] == j {
		delete(m.inflight, j.key)
	}
	switch from {
	case StateQueued:
		m.stats.Queued--
	case StateRunning:
		m.stats.Running--
	}
	switch final {
	case StateDone:
		m.stats.Done++
	case StateFailed:
		m.stats.Failed++
	case StateCanceled:
		m.stats.Canceled++
	}
	if timedOut {
		m.stats.TimedOut++
	}
	m.settled = append(m.settled, j.id)
	for len(m.settled) > m.keep {
		old := m.settled[0]
		m.settled = m.settled[1:]
		delete(m.jobs, old)
		for i, id := range m.order {
			if id == old {
				m.order = append(m.order[:i], m.order[i+1:]...)
				break
			}
		}
	}
	m.mu.Unlock()
}

// worker executes pending jobs until the manager drains.
func (m *manager) worker() {
	defer m.wg.Done()
	for {
		j, ok := m.dequeue()
		if !ok {
			return
		}
		m.runOne(j)
	}
}

// runOne drives one job through its lifecycle.
func (m *manager) runOne(j *job) {
	j.mu.Lock()
	if j.state != StateQueued { // canceled while waiting
		j.mu.Unlock()
		return
	}
	ctx, cancel := context.WithCancel(m.baseCtx)
	j.state = StateRunning
	j.started = time.Now()
	j.cancel = cancel
	j.mu.Unlock()
	defer cancel()
	m.mu.Lock()
	m.stats.Queued--
	m.stats.Running++
	m.stats.Executed++
	m.mu.Unlock()
	j.emit("started", string(j.req.Kind)+" running", nil)

	// The wall-clock bound nests inside the cancel context: a fired
	// deadline with ctx still alive is unambiguously a timeout, not a
	// client cancel or a server drain.
	runCtx := ctx
	if m.jobTimeout > 0 {
		var tcancel context.CancelFunc
		runCtx, tcancel = context.WithTimeout(ctx, m.jobTimeout)
		defer tcancel()
	}

	result, err := m.execute(runCtx, j)

	final, errText, msg := StateDone, "", "job complete"
	timedOut := false
	switch {
	case err == nil:
	case errors.Is(err, context.DeadlineExceeded) && ctx.Err() == nil:
		// A timeout is a failure of the job, not a cancellation: the
		// client asked for work the server's policy refused to finish.
		final, errText, msg = StateFailed, fmt.Sprintf("job exceeded timeout %s", m.jobTimeout), ""
		timedOut = true
	case errors.Is(err, context.Canceled), errors.Is(err, context.DeadlineExceeded):
		final, errText, msg = StateCanceled, err.Error(), ""
	default:
		final, errText, msg = StateFailed, err.Error(), ""
	}
	// Publish the result before the terminal transition: a client that
	// observes a done state must find the result already there.
	if err == nil && result != nil {
		j.mu.Lock()
		j.result = result
		j.mu.Unlock()
	}
	j.finishFrom(StateRunning, final, errText, msg)
	m.settle(j, StateRunning, final, timedOut)
}

// execute invokes the job body with panic isolation: a panicking
// experiment fails its own job — stack preserved in the event log,
// counted in Stats.Panics — while the worker, its pool and every other
// job keep going. Without this one crashing experiment kills the whole
// server and every queued job with it.
//
// Fault-injection site: "serve.job" (inject a job failure or stall).
func (m *manager) execute(ctx context.Context, j *job) (result *JobResult, err error) {
	defer func() {
		if r := recover(); r != nil {
			m.mu.Lock()
			m.stats.Panics++
			m.mu.Unlock()
			j.emit("panic", fmt.Sprintf("panic: %v", r),
				map[string]any{"stack": string(debug.Stack())})
			result, err = nil, fmt.Errorf("serve: job panicked: %v", r)
		}
	}()
	faultinject.Sleep("serve.job")
	if err := faultinject.Error("serve.job"); err != nil {
		return nil, err
	}
	return m.run(ctx, j)
}

// activeWarmJobs counts the warm jobs currently queued or running — the
// fleet shards this node presently owns, reported by /healthz. The
// nested job-lock acquisition under the manager lock mirrors submit's
// coalesce path, so the lock order is consistent.
func (m *manager) activeWarmJobs() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	n := 0
	for _, j := range m.jobs {
		if j.req.Kind != KindWarm {
			continue
		}
		j.mu.Lock()
		if !j.state.Terminal() {
			n++
		}
		j.mu.Unlock()
	}
	return n
}

// snapshotStats returns the current counters.
func (m *manager) snapshotStats() Stats {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.stats
}

// drain stops accepting submissions, cancels every queued and running
// job, and waits for the workers to exit. Completed sweeps were already
// persisted as they finished (the lab saves each table at sweep
// completion), so a drained server loses only in-flight work — a restart
// over the same cache directory resumes from everything that completed.
func (m *manager) drain() {
	m.mu.Lock()
	if m.draining {
		m.mu.Unlock()
		m.wg.Wait()
		return
	}
	m.draining = true
	backlog := m.pending
	m.pending = nil
	m.cond.Broadcast()
	m.mu.Unlock()
	// Settle the backlog, then cut the running jobs.
	for _, j := range backlog {
		if j.finishFrom(StateQueued, StateCanceled, "", "server draining") {
			m.settle(j, StateQueued, StateCanceled, false)
		}
	}
	m.cancelBase()
	m.wg.Wait()
}
