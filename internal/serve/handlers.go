package serve

// The HTTP surface. All endpoints speak JSON; /jobs/{id}/events also
// speaks Server-Sent Events when the client asks for text/event-stream.
//
//	GET  /healthz            server identity, uptime, job stats
//	GET  /metrics            Prometheus text exposition (?format=json)
//	GET  /fleet/metrics      per-worker aggregated view (coordinator)
//	GET  /experiments        the registry catalogue
//	GET  /benches            the active benchmark source
//	GET  /cache              identity-preserving persistent-store listing
//	POST /jobs               submit {kind, experiment|simulate|sweep}
//	GET  /jobs               list jobs
//	GET  /jobs/{id}          one job's status
//	GET  /jobs/{id}/result   the result (202 while not finished)
//	GET  /jobs/{id}/events   progress log: JSON long-poll (?after, ?wait)
//	                         or SSE (Accept: text/event-stream)
//	POST /jobs/{id}/cancel   cancel a queued or running job

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"strconv"
	"strings"
	"time"

	"mcbench/internal/buildinfo"
	"mcbench/internal/experiments"
	"mcbench/internal/results"
	"mcbench/internal/trace"
)

// maxBodyBytes bounds submission bodies (sweep workload lists included).
const maxBodyBytes = 8 << 20

// maxLongPollWait caps the ?wait parameter of the long-poll endpoint.
const maxLongPollWait = 60 * time.Second

// writeJSON renders v with a status code.
func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v)
}

// writeError renders a JSON error body.
func writeError(w http.ResponseWriter, status int, format string, args ...any) {
	writeJSON(w, status, map[string]string{"error": fmt.Sprintf(format, args...)})
}

// Health is the /healthz payload.
type Health struct {
	OK       bool           `json:"ok"`
	Build    buildinfo.Info `json:"build"`
	Uptime   string         `json:"uptime"`
	Source   string         `json:"source"`
	TraceLen int            `json:"trace_len"`
	CacheDir string         `json:"cache_dir,omitempty"`
	Workers  int            `json:"workers"`
	// JobTimeout is the per-job wall-clock bound ("0s" when unbounded).
	JobTimeout string `json:"job_timeout,omitempty"`
	Jobs       Stats  `json:"jobs"`
	// Sweeps counts the full population sweeps this node actually ran
	// (cache and fabric hits excluded); summed across a fleet it pins
	// fleet-wide dedup.
	Sweeps SweepCounts `json:"sweeps"`
	// Fleet is this node's fleet role, when it has one.
	Fleet *FleetHealth `json:"fleet,omitempty"`
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	badco, detailed := s.lab.SweepCounts()
	writeJSON(w, http.StatusOK, Health{
		OK:         true,
		Build:      s.build,
		Uptime:     time.Since(s.start).Round(time.Millisecond).String(),
		Source:     s.lab.Source().Name(),
		TraceLen:   s.lab.Config().TraceLen,
		CacheDir:   s.lab.Config().CacheDir,
		Workers:    s.workers,
		JobTimeout: s.jobTimeoutString(),
		Jobs:       s.mgr.snapshotStats(),
		Sweeps:     SweepCounts{Badco: badco, Detailed: detailed},
		Fleet:      s.fleetHealth(),
	})
}

// ExperimentInfo is one /experiments entry.
type ExperimentInfo struct {
	Name     string `json:"name"`
	Synopsis string `json:"synopsis"`
	Group    string `json:"group"`
}

func (s *Server) handleExperiments(w http.ResponseWriter, r *http.Request) {
	var out []ExperimentInfo
	for _, g := range []experiments.Group{experiments.GroupPaper, experiments.GroupExtension} {
		for _, e := range experiments.ByGroup(g) {
			out = append(out, ExperimentInfo{Name: e.Name(), Synopsis: e.Synopsis(), Group: string(e.Group())})
		}
	}
	writeJSON(w, http.StatusOK, map[string]any{"experiments": out})
}

// BenchInfo is one /benches entry.
type BenchInfo struct {
	Name string `json:"name"`
	// Params carries the trace-generator parameters when the source
	// exposes them (load/store/branch/fp fractions, pattern kinds).
	Params *BenchParams `json:"params,omitempty"`
}

// BenchParams is the introspectable slice of trace.Params.
type BenchParams struct {
	LoadFrac   float64  `json:"load_frac"`
	StoreFrac  float64  `json:"store_frac"`
	BranchFrac float64  `json:"branch_frac"`
	FPFrac     float64  `json:"fp_frac"`
	Patterns   []string `json:"patterns,omitempty"`
}

func (s *Server) handleBenches(w http.ResponseWriter, r *http.Request) {
	src := s.lab.Source()
	type paramsSource interface {
		Params(string) (trace.Params, bool)
	}
	ps, hasParams := src.(paramsSource)
	names := src.Names()
	out := make([]BenchInfo, 0, len(names))
	for _, n := range names {
		info := BenchInfo{Name: n}
		if hasParams {
			if p, ok := ps.Params(n); ok {
				bp := &BenchParams{
					LoadFrac: p.LoadFrac, StoreFrac: p.StoreFrac,
					BranchFrac: p.BranchFrac, FPFrac: p.FPFrac,
				}
				for _, spec := range p.Patterns {
					bp.Patterns = append(bp.Patterns, spec.Kind.String())
				}
				info.Params = bp
			}
		}
		out = append(out, info)
	}
	writeJSON(w, http.StatusOK, map[string]any{"source": src.Name(), "benchmarks": out})
}

func (s *Server) handleCache(w http.ResponseWriter, r *http.Request) {
	store, err := s.cacheStore()
	if err != nil {
		writeError(w, http.StatusInternalServerError, "%v", err)
		return
	}
	if store == nil {
		writeJSON(w, http.StatusOK, map[string]any{
			"dir": "", "entries": []results.Entry{},
			"note": "no cache directory configured (-cache)",
		})
		return
	}
	entries, err := store.List()
	if err != nil {
		writeError(w, http.StatusInternalServerError, "%v", err)
		return
	}
	if entries == nil {
		entries = []results.Entry{}
	}
	writeJSON(w, http.StatusOK, map[string]any{"dir": s.lab.Config().CacheDir, "entries": entries})
}

func (s *Server) handleSubmit(w http.ResponseWriter, r *http.Request) {
	var req SubmitRequest
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, maxBodyBytes))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, "serve: bad submission: %v", err)
		return
	}
	canon, key, err := canonicalize(req, s.lab.Source(), s.lab.Config().TraceLen)
	if err != nil {
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	j, deduped, err := s.mgr.submit(canon, key)
	switch {
	case errors.Is(err, ErrDraining), errors.Is(err, ErrQueueFull):
		// Contract: a 503 here means the submission was rejected before it
		// was enqueued — nothing ran, nothing will — so retrying it is
		// always safe. Retry-After tells well-behaved clients (including
		// mcbench.Client) when; 1s is one queue-drain quantum.
		w.Header().Set("Retry-After", "1")
		writeError(w, http.StatusServiceUnavailable, "%v", err)
		return
	case err != nil:
		writeError(w, http.StatusInternalServerError, "%v", err)
		return
	}
	st := j.status()
	st.Deduped = deduped
	status := http.StatusCreated
	if deduped {
		status = http.StatusOK
	}
	writeJSON(w, status, st)
}

func (s *Server) handleJobs(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, map[string]any{"jobs": s.mgr.list()})
}

// jobFor resolves {id} or writes a 404.
func (s *Server) jobFor(w http.ResponseWriter, r *http.Request) (*job, bool) {
	id := r.PathValue("id")
	j, ok := s.mgr.get(id)
	if !ok {
		writeError(w, http.StatusNotFound, "serve: no job %q", id)
		return nil, false
	}
	return j, true
}

func (s *Server) handleJob(w http.ResponseWriter, r *http.Request) {
	if j, ok := s.jobFor(w, r); ok {
		writeJSON(w, http.StatusOK, j.status())
	}
}

func (s *Server) handleResult(w http.ResponseWriter, r *http.Request) {
	j, ok := s.jobFor(w, r)
	if !ok {
		return
	}
	st := j.status()
	if !st.State.Terminal() {
		writeJSON(w, http.StatusAccepted, st)
		return
	}
	if st.State != StateDone {
		writeJSON(w, http.StatusOK, map[string]any{"status": st})
		return
	}
	j.mu.Lock()
	result := j.result
	j.mu.Unlock()
	writeJSON(w, http.StatusOK, result)
}

func (s *Server) handleCancel(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	st, ok := s.mgr.cancelJob(id)
	if !ok {
		writeError(w, http.StatusNotFound, "serve: no job %q", id)
		return
	}
	writeJSON(w, http.StatusOK, st)
}

// handleEvents streams a job's progress log. JSON mode returns the
// events past ?after=SEQ, long-polling up to ?wait=DURATION for new ones;
// SSE mode (Accept: text/event-stream) replays from ?after and follows
// until the job is terminal.
func (s *Server) handleEvents(w http.ResponseWriter, r *http.Request) {
	j, ok := s.jobFor(w, r)
	if !ok {
		return
	}
	after := 0
	if v := r.URL.Query().Get("after"); v != "" {
		n, err := strconv.Atoi(v)
		if err != nil || n < 0 {
			writeError(w, http.StatusBadRequest, "serve: bad after cursor %q", v)
			return
		}
		after = n
	}
	// Compound Accept values ("text/event-stream, */*", quality params)
	// are how SSE libraries and proxies commonly ask; substring matching
	// keeps them on the stream instead of silently degrading to one
	// long-poll page.
	if strings.Contains(r.Header.Get("Accept"), "text/event-stream") {
		s.streamSSE(w, r, j, after)
		return
	}
	var wait time.Duration
	if v := r.URL.Query().Get("wait"); v != "" {
		d, err := time.ParseDuration(v)
		if err != nil || d < 0 {
			writeError(w, http.StatusBadRequest, "serve: bad wait duration %q", v)
			return
		}
		wait = min(d, maxLongPollWait)
	}
	deadline := time.Now().Add(wait)
	for {
		evs, wake, state := j.eventsAfter(after)
		if len(evs) > 0 || state.Terminal() || wait == 0 || !time.Now().Before(deadline) {
			if evs == nil {
				evs = []Event{}
			}
			// state comes from the same snapshot as evs: a terminal
			// state here guarantees the final event is in (or before)
			// this page, so a follower never stops early.
			writeJSON(w, http.StatusOK, map[string]any{
				"id": j.id, "state": state, "events": evs,
			})
			return
		}
		timer := time.NewTimer(time.Until(deadline))
		select {
		case <-wake:
		case <-timer.C:
		case <-r.Context().Done():
			timer.Stop()
			return
		}
		timer.Stop()
	}
}

// streamSSE follows the event log as Server-Sent Events until the job
// settles or the client disconnects. Event Seq doubles as the SSE id, so
// a reconnecting client resumes with ?after=<last id>.
func (s *Server) streamSSE(w http.ResponseWriter, r *http.Request, j *job, after int) {
	flusher, ok := w.(http.Flusher)
	if !ok {
		writeError(w, http.StatusNotImplemented, "serve: streaming unsupported")
		return
	}
	w.Header().Set("Content-Type", "text/event-stream")
	w.Header().Set("Cache-Control", "no-cache")
	w.WriteHeader(http.StatusOK)
	for {
		evs, wake, state := j.eventsAfter(after)
		for _, ev := range evs {
			data, err := json.Marshal(ev)
			if err != nil {
				continue
			}
			fmt.Fprintf(w, "id: %d\nevent: %s\ndata: %s\n\n", ev.Seq, ev.Type, data)
			after = ev.Seq
		}
		flusher.Flush()
		if state.Terminal() {
			// The snapshot's terminal state guarantees the final event
			// was in evs (state and log move under one lock), so the
			// stream ends complete.
			return
		}
		select {
		case <-wake:
		case <-r.Context().Done():
			return
		}
	}
}

// routes builds the mux. Every endpoint is wrapped with per-endpoint
// request/latency instrumentation keyed by the route pattern.
func (s *Server) routes() *http.ServeMux {
	mux := http.NewServeMux()
	handle := func(pattern string, h http.HandlerFunc) {
		mux.HandleFunc(pattern, s.instrument(pattern, h))
	}
	handle("GET /healthz", s.handleHealthz)
	handle("GET /metrics", s.handleMetrics)
	handle("GET /experiments", s.handleExperiments)
	handle("GET /benches", s.handleBenches)
	handle("GET /cache", s.handleCache)
	handle("GET /cache/{key}", s.handleCacheGet)
	handle("POST /fleet/join", s.handleFleetJoin)
	handle("POST /fleet/heartbeat", s.handleFleetHeartbeat)
	handle("POST /fleet/leave", s.handleFleetLeave)
	handle("GET /fleet/metrics", s.handleFleetMetrics)
	handle("POST /jobs", s.handleSubmit)
	handle("GET /jobs", s.handleJobs)
	handle("GET /jobs/{id}", s.handleJob)
	handle("GET /jobs/{id}/result", s.handleResult)
	handle("GET /jobs/{id}/events", s.handleEvents)
	handle("POST /jobs/{id}/cancel", s.handleCancel)
	if s.pprofOn {
		pprofRoutes(mux)
	}
	return mux
}
