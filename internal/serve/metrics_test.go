package serve

// Telemetry-surface tests: the /metrics endpoint in both exposition
// forms tracking one job's lifecycle exactly, dedup visibility (8
// submissions → 1 sweep in the scraped series), the stats-snapshot
// consistency invariant under concurrent churn (the /healthz torn-read
// fix), and the opt-in pprof mount.

import (
	"context"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"runtime"
	"strings"
	"sync"
	"testing"
	"time"

	"mcbench/internal/experiments"
	"mcbench/internal/telemetry"
)

func promText(t *testing.T, base string) string {
	t.Helper()
	resp, err := http.Get(base + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/metrics: %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "text/plain; version=0.0.4; charset=utf-8" {
		t.Errorf("/metrics content-type %q", ct)
	}
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return string(body)
}

// TestMetricsLifecycle pins the endpoint against one simulation-free
// job: every job counter advances by exactly its share, the HTTP series
// are labelled by route pattern, and both exposition forms agree.
func TestMetricsLifecycle(t *testing.T) {
	s := newTestServer(t, "")
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	before := promText(t, ts.URL)
	for _, want := range []string{
		"# TYPE mcbench_jobs_submitted_total counter",
		"mcbench_jobs_submitted_total 0",
		"# TYPE mcbench_jobs_queued gauge",
		"# TYPE mcbench_http_request_seconds histogram",
		`mcbench_sweeps_total{sim="badco"} 0`,
		`mcbench_sweeps_total{sim="detailed"} 0`,
	} {
		if !strings.Contains(before, want) {
			t.Errorf("fresh /metrics lacks %q", want)
		}
	}

	st := submit(t, ts.URL, SubmitRequest{Kind: KindExperiment, Experiment: &ExperimentRequest{Name: "config"}})
	if _, final := waitTerminal(t, ts.URL, st.ID, 30*time.Second); final != StateDone {
		t.Fatalf("final state %q", final)
	}

	var snap telemetry.Snapshot
	if code := getJSON(t, ts.URL+"/metrics?format=json", &snap); code != http.StatusOK {
		t.Fatalf("/metrics?format=json: %d", code)
	}
	for name, want := range map[string]float64{
		"mcbench_jobs_submitted_total": 1,
		"mcbench_jobs_executed_total":  1,
		"mcbench_jobs_completed_total": 1,
		"mcbench_jobs_failed_total":    0,
		"mcbench_jobs_coalesced_total": 0,
		"mcbench_sweeps_total":         0, // config is simulation-free
	} {
		if got := snap.Counter(name); got != want {
			t.Errorf("%s = %g, want %g", name, got, want)
		}
	}
	if q, r := snap.Gauge("mcbench_jobs_queued"), snap.Gauge("mcbench_jobs_running"); q != 0 || r != 0 {
		t.Errorf("settled server gauges queued=%g running=%g, want 0/0", q, r)
	}
	if up := snap.Gauge("mcbench_uptime_seconds"); up <= 0 {
		t.Errorf("uptime gauge %g, want > 0", up)
	}
	// The HTTP series count by route pattern, and exactly: one POST /jobs
	// happened, with a latency observation to match.
	if got := snap.Counters[`mcbench_http_requests_total{endpoint="POST /jobs"}`]; got != 1 {
		t.Errorf("POST /jobs request counter = %g, want 1", got)
	}
	if h := snap.Histograms[`mcbench_http_request_seconds{endpoint="POST /jobs"}`]; h.Count != 1 {
		t.Errorf("POST /jobs latency count = %d, want 1", h.Count)
	}

	after := promText(t, ts.URL)
	for _, want := range []string{
		"mcbench_jobs_submitted_total 1",
		"mcbench_jobs_completed_total 1",
		`mcbench_http_requests_total{endpoint="POST /jobs"} 1`,
	} {
		if !strings.Contains(after, want) {
			t.Errorf("post-job /metrics lacks %q", want)
		}
	}
}

// TestMetricsDedupVisibility is the dedup tentpole seen through the
// telemetry surface: 8 identical submissions scrape as submitted=8,
// coalesced=7, executed=1 and exactly one badco sweep.
func TestMetricsDedupVisibility(t *testing.T) {
	if testing.Short() {
		t.Skip("population sweep")
	}
	s := newTestServer(t, "")
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	const m = 8
	req := SubmitRequest{Kind: KindExperiment, Experiment: &ExperimentRequest{Name: "srvtest-gate"}}
	var id string
	for i := 0; i < m; i++ {
		st := submit(t, ts.URL, req)
		if i == 0 {
			id = st.ID
		} else if st.ID != id || !st.Deduped {
			t.Fatalf("submission %d: id=%s deduped=%v, want coalesced onto %s", i, st.ID, st.Deduped, id)
		}
	}
	close(gate)
	defer func() { gate = make(chan struct{}) }()
	if _, final := waitTerminal(t, ts.URL, id, 60*time.Second); final != StateDone {
		t.Fatalf("final state %q", final)
	}

	var snap telemetry.Snapshot
	getJSON(t, ts.URL+"/metrics?format=json", &snap)
	for name, want := range map[string]float64{
		"mcbench_jobs_submitted_total": m,
		"mcbench_jobs_coalesced_total": m - 1,
		"mcbench_jobs_executed_total":  1,
		"mcbench_jobs_completed_total": 1,
	} {
		if got := snap.Counter(name); got != want {
			t.Errorf("%s = %g, want %g", name, got, want)
		}
	}
	if got := snap.Counters[`mcbench_sweeps_total{sim="badco"}`]; got != 1 {
		t.Errorf("badco sweep series = %g, want exactly 1 for %d coalesced submissions", got, m)
	}
}

// TestStatsInvariantUnderConcurrency pins the /healthz torn-snapshot
// fix: under concurrent submission, cancellation and completion, every
// stats snapshot satisfies queued+running+settled == submitted−coalesced.
// Run with -race this also proves the single-critical-section settle path.
func TestStatsInvariantUnderConcurrency(t *testing.T) {
	release := make(chan struct{})
	m := newManager(4, 1024, 0, 0, func(ctx context.Context, j *job) (*JobResult, error) {
		select {
		case <-release:
			return &JobResult{ID: j.id, Kind: j.req.Kind}, nil
		case <-ctx.Done():
			return nil, ctx.Err()
		}
	})
	defer m.drain()

	stop := make(chan struct{})
	torn := make(chan Stats, 1)
	var checkers sync.WaitGroup
	for i := 0; i < 4; i++ {
		checkers.Add(1)
		go func() {
			defer checkers.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				st := m.snapshotStats()
				if st.Queued+st.Running+st.Done+st.Failed+st.Canceled != st.Submitted-st.Coalesced {
					select {
					case torn <- st:
					default:
					}
					return
				}
				runtime.Gosched()
			}
		}()
	}

	var subs sync.WaitGroup
	for g := 0; g < 8; g++ {
		subs.Add(1)
		go func(g int) {
			defer subs.Done()
			for i := 0; i < 40; i++ {
				key := fmt.Sprintf("k%d-%d", g, i%15) // repeats coalesce
				j, deduped, err := m.submit(expReq(key), key)
				if err != nil {
					t.Error(err)
					return
				}
				if !deduped && i%3 == 0 {
					m.cancelJob(j.id)
				}
			}
		}(g)
	}
	subs.Wait()
	close(release)
	deadline := time.Now().Add(15 * time.Second)
	for {
		st := m.snapshotStats()
		if st.Queued == 0 && st.Running == 0 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("jobs never settled: %+v", st)
		}
		time.Sleep(2 * time.Millisecond)
	}
	close(stop)
	checkers.Wait()
	select {
	case st := <-torn:
		t.Fatalf("torn stats snapshot %+v: queued+running+settled = %d, submitted-coalesced = %d",
			st, st.Queued+st.Running+st.Done+st.Failed+st.Canceled, st.Submitted-st.Coalesced)
	default:
	}
	final := m.snapshotStats()
	if got, want := final.Done+final.Failed+final.Canceled, final.Submitted-final.Coalesced; got != want {
		t.Errorf("settled %d of %d effective submissions: %+v", got, want, final)
	}
}

// TestPprofOptIn: the profiling mux is mounted only when asked.
func TestPprofOptIn(t *testing.T) {
	registerTestExperiments()
	labCfg := experiments.QuickConfig()
	labCfg.TraceLen = 2000
	off := New(Config{Lab: labCfg, Workers: 1})
	t.Cleanup(off.Drain)
	tsOff := httptest.NewServer(off.Handler())
	defer tsOff.Close()
	if resp, err := http.Get(tsOff.URL + "/debug/pprof/"); err != nil {
		t.Fatal(err)
	} else if resp.Body.Close(); resp.StatusCode != http.StatusNotFound {
		t.Errorf("pprof without opt-in: %d, want 404", resp.StatusCode)
	}

	on := New(Config{Lab: labCfg, Workers: 1, Pprof: true})
	t.Cleanup(on.Drain)
	tsOn := httptest.NewServer(on.Handler())
	defer tsOn.Close()
	resp, err := http.Get(tsOn.URL + "/debug/pprof/")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK || !strings.Contains(string(body), "goroutine") {
		t.Errorf("pprof index: %d %q", resp.StatusCode, body)
	}
}
