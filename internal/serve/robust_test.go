package serve

// Robustness tests: panic isolation (a panicking experiment fails its
// own job while the server keeps serving), per-job wall-clock timeouts,
// and the Retry-After contract on queue-full 503 rejections.

import (
	"context"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"mcbench/internal/experiments"
)

var registerPanicOnce sync.Once

// registerPanicExperiment adds an experiment whose Run panics — the
// crash-bug stand-in the isolation test drives through the full HTTP
// path.
func registerPanicExperiment() {
	registerPanicOnce.Do(func() {
		experiments.Register(experiments.Spec{
			Name: "srvtest-panic", Synopsis: "panics on run", Group: experiments.GroupExtension,
			Run: func(ctx context.Context, l *experiments.Lab, p experiments.Params) (*experiments.Table, error) {
				panic("deliberate test panic")
			},
		})
	})
}

// TestPanicIsolation pins the acceptance criterion: a panicking job
// fails alone — stack in its event log, counted in Stats.Panics and
// /healthz — while the worker pool keeps executing other jobs.
func TestPanicIsolation(t *testing.T) {
	registerPanicExperiment()
	s := newTestServer(t, "")
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	st := submit(t, ts.URL, SubmitRequest{Kind: KindExperiment, Experiment: &ExperimentRequest{Name: "srvtest-panic"}})
	evs, state := waitTerminal(t, ts.URL, st.ID, 30*time.Second)
	if state != StateFailed {
		t.Fatalf("panicking job settled %s, want failed", state)
	}
	var panicEv *Event
	for i := range evs {
		if evs[i].Type == "panic" {
			panicEv = &evs[i]
		}
	}
	if panicEv == nil {
		t.Fatalf("no panic event in log: %+v", evs)
	}
	if !strings.Contains(panicEv.Msg, "deliberate test panic") {
		t.Errorf("panic event msg %q", panicEv.Msg)
	}
	if stack, _ := panicEv.Data["stack"].(string); !strings.Contains(stack, "goroutine") {
		t.Errorf("panic event carries no stack: %v", panicEv.Data)
	}
	var got JobStatus
	getJSON(t, ts.URL+"/jobs/"+st.ID, &got)
	if got.State != StateFailed || !strings.Contains(got.Error, "panicked") {
		t.Errorf("job status %+v", got)
	}

	// The server survived: the panic is counted, and the very same
	// worker pool still executes jobs to completion.
	var health Health
	if code := getJSON(t, ts.URL+"/healthz", &health); code != http.StatusOK {
		t.Fatalf("healthz after panic: %d", code)
	}
	if health.Jobs.Panics != 1 || health.Jobs.Failed != 1 {
		t.Errorf("stats after panic: %+v", health.Jobs)
	}
	next := submit(t, ts.URL, SubmitRequest{Kind: KindExperiment, Experiment: &ExperimentRequest{Name: "srvtest-many"}})
	if _, state := waitTerminal(t, ts.URL, next.ID, 120*time.Second); state != StateDone {
		t.Fatalf("job after panic settled %s, want done", state)
	}
}

// TestJobTimeout pins the wall-clock bound: a job exceeding JobTimeout
// fails (it is the server refusing work, not a client cancel), with the
// timeout named in the error and counted in Stats.TimedOut.
func TestJobTimeout(t *testing.T) {
	registerTestExperiments()
	labCfg := experiments.QuickConfig()
	labCfg.TraceLen = 2000
	s := New(Config{Lab: labCfg, Workers: 1, QueueDepth: 4, JobTimeout: 50 * time.Millisecond})
	t.Cleanup(s.Drain)
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	st := submit(t, ts.URL, SubmitRequest{Kind: KindExperiment, Experiment: &ExperimentRequest{Name: "srvtest-slow"}})
	_, state := waitTerminal(t, ts.URL, st.ID, 30*time.Second)
	if state != StateFailed {
		t.Fatalf("timed-out job settled %s, want failed", state)
	}
	var got JobStatus
	getJSON(t, ts.URL+"/jobs/"+st.ID, &got)
	if !strings.Contains(got.Error, "exceeded timeout") {
		t.Errorf("timeout job error %q", got.Error)
	}
	var health Health
	getJSON(t, ts.URL+"/healthz", &health)
	if health.Jobs.TimedOut != 1 {
		t.Errorf("TimedOut = %d, want 1", health.Jobs.TimedOut)
	}
	if health.JobTimeout != "50ms" {
		t.Errorf("healthz job_timeout %q", health.JobTimeout)
	}
}

// TestQueueFullRetryAfter pins the 503 contract: a submission rejected
// by a full queue gets a Retry-After hint and nothing was enqueued, so
// retrying it is safe.
func TestQueueFullRetryAfter(t *testing.T) {
	registerTestExperiments()
	labCfg := experiments.QuickConfig()
	labCfg.TraceLen = 2000
	s := New(Config{Lab: labCfg, Workers: 1, QueueDepth: 1})
	t.Cleanup(s.Drain)
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	// Distinct cores values give distinct canonical keys, so nothing
	// coalesces: one running job, one queued job, then a full queue.
	slow := func(cores int) SubmitRequest {
		return SubmitRequest{Kind: KindExperiment, Experiment: &ExperimentRequest{Name: "srvtest-slow", Cores: cores}}
	}
	first := submit(t, ts.URL, slow(1))
	waitRunning(t, s, first.ID)
	submit(t, ts.URL, slow(2)) // fills the queue

	resp, body := postJSON(t, ts.URL+"/jobs", slow(3))
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("overflow submit: %d %s", resp.StatusCode, body)
	}
	if got := resp.Header.Get("Retry-After"); got != "1" {
		t.Errorf("503 Retry-After = %q, want \"1\"", got)
	}
	if !strings.Contains(string(body), "queue full") {
		t.Errorf("503 body %s", body)
	}
}

// waitRunning waits until the job leaves the queue, so a queue-capacity
// test knows its worker slot is taken.
func waitRunning(t *testing.T, s *Server, id string) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		j, ok := s.mgr.get(id)
		if !ok {
			t.Fatalf("job %s vanished", id)
		}
		if st := j.status(); st.State == StateRunning {
			return
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatalf("job %s never started running", id)
}
