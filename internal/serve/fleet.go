package serve

// Fleet integration: coordinator-side membership endpoints (join,
// heartbeat, leave), the content-addressed cache fetch endpoint that
// forms the fleet's shared result fabric, the shard dispatch hook the
// experiment/warm executors call before their local warm, and the fleet
// section of /healthz.
//
// Role model: a server with a FleetConfig whose Join is empty is a
// coordinator — it accepts joins and shards campaigns across whoever
// registered (a coordinator with no workers degrades to a plain
// single-node server). A server with Join set is a worker: it runs a
// membership agent against the coordinator and serves warm jobs; its
// cache read-through fetches from the coordinator, whose own
// read-through fans out to the workers, so any node can serve any
// table with at most one hop and no fetch cycles.

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"time"

	"mcbench/internal/experiments"
	"mcbench/internal/fleet"
	"mcbench/internal/results"
)

// FleetConfig opts a server into the fleet.
type FleetConfig struct {
	// Join is the coordinator address to join as a worker; empty means
	// this server is itself a coordinator (every server is
	// coordinator-capable — running standalone just means zero peers).
	Join string
	// Advertise is the address fleet peers should reach this server at;
	// empty defaults to the bound listen address (useful only when the
	// listen address is directly reachable, e.g. not ":0" behind NAT).
	Advertise string
	// Heartbeat is the worker heartbeat interval granted by the
	// coordinator (0 → the fleet default).
	Heartbeat time.Duration
	// StealAfter bounds how long a dispatched shard may run before the
	// coordinator steals it from the straggling worker (0 → steal only
	// when a worker's lease lapses).
	StealAfter time.Duration
	// Dial opens a fleet peer for an address. Injected by the public
	// mcbench package (backed by mcbench.Client); nil disables all fleet
	// behaviour.
	Dial fleet.Dialer
}

// fetchTimeout bounds one remote cache fetch (the store's Fetcher has no
// context of its own — it is called from deep inside lab loads).
const fetchTimeout = 30 * time.Second

// SweepCounts is the /healthz form of Lab.SweepCounts: how many full
// population sweeps this node actually ran (cache and fabric hits
// excluded). Summing it across a fleet asserts fleet-wide dedup.
type SweepCounts struct {
	Badco    int64 `json:"badco"`
	Detailed int64 `json:"detailed"`
}

// FleetHealth is the fleet section of /healthz.
type FleetHealth struct {
	// Role is "coordinator" or "worker".
	Role string `json:"role"`
	// Peers counts live workers (coordinator only).
	Peers int `json:"peers"`
	// Coordinator is the address this worker joined (worker only).
	Coordinator string `json:"coordinator,omitempty"`
	// MemberID is the membership identity granted by the coordinator
	// (worker only; empty while not joined).
	MemberID string `json:"member_id,omitempty"`
	// Queue is the live job-queue depth on this node.
	Queue int64 `json:"queue"`
	// ShardsOwned counts the warm jobs currently queued or running on
	// this node — the shards it presently owns.
	ShardsOwned int `json:"shards_owned"`
	// ShardsStolen counts shards the coordinator re-issued after a
	// worker died or straggled (coordinator only).
	ShardsStolen int64 `json:"shards_stolen,omitempty"`
	// LastError is the worker agent's most recent membership failure.
	LastError string `json:"last_error,omitempty"`
}

// fleetHealth assembles the /healthz fleet section (nil when the server
// is not fleet-configured).
func (s *Server) fleetHealth() *FleetHealth {
	stats := s.mgr.snapshotStats()
	if s.coord != nil {
		return &FleetHealth{
			Role:         "coordinator",
			Peers:        s.coord.Peers(),
			Queue:        stats.Queued,
			ShardsOwned:  s.mgr.activeWarmJobs(),
			ShardsStolen: s.coord.Stolen(),
		}
	}
	if s.fleet.Join == "" {
		return nil
	}
	fh := &FleetHealth{
		Role:        "worker",
		Coordinator: s.fleet.Join,
		Queue:       stats.Queued,
		ShardsOwned: s.mgr.activeWarmJobs(),
	}
	s.agentMu.Lock()
	a := s.agent
	s.agentMu.Unlock()
	if a != nil {
		id, lastErr := a.Status()
		fh.MemberID = id
		if lastErr != nil {
			fh.LastError = lastErr.Error()
		}
	}
	return fh
}

// fleetWarm dispatches the plan's shardable products across the fleet
// before the caller's local warm. Strictly best-effort: the local warm
// that follows is the authority — it reads every table the fleet did
// complete through the result fabric (cache hits) and computes whatever
// is left, so a dead worker, a lost shard or an empty fleet costs
// locality, never correctness.
func (s *Server) fleetWarm(ctx context.Context, j *job, plan []experiments.Request) {
	if s.coord == nil || s.coord.Peers() == 0 {
		return
	}
	shards := s.lab.PartitionPlan(plan)
	if len(shards) == 0 {
		return
	}
	rep := s.coord.WarmFleet(ctx, shards, func(ev fleet.ShardEvent) {
		j.emit("shard", shardMsg(ev), shardData(ev))
	})
	if rep.Shards > 0 {
		j.emit("fleet",
			fmt.Sprintf("fleet warm: %d products over %d workers (%d shards, %d stolen, %d unassigned)",
				rep.Products, rep.Members, rep.Shards, rep.Stolen, rep.Unassigned),
			map[string]any{
				"members": rep.Members, "shards": rep.Shards, "products": rep.Products,
				"stolen": rep.Stolen, "unassigned": rep.Unassigned,
			})
	}
}

// shardMsg renders one shard event for human stream consumers.
func shardMsg(ev fleet.ShardEvent) string {
	switch ev.Type {
	case "dispatch":
		return fmt.Sprintf("shard → %s (%s): %d products as %s", ev.Worker, ev.Addr, ev.Products, ev.JobID)
	case "done":
		return fmt.Sprintf("shard ✓ %s: %d products", ev.Worker, ev.Products)
	default:
		return fmt.Sprintf("shard stolen from %s: %v", ev.Worker, ev.Err)
	}
}

// shardData is the structured form of one shard event.
func shardData(ev fleet.ShardEvent) map[string]any {
	data := map[string]any{
		"shard":    ev.Type,
		"worker":   ev.Worker,
		"addr":     ev.Addr,
		"products": ev.Products,
	}
	if ev.JobID != "" {
		data["job"] = ev.JobID
	}
	if ev.Err != nil {
		data["error"] = ev.Err.Error()
	}
	return data
}

// handleCacheGet serves one stored table's raw bytes (integrity footer
// included) — the content-addressed fetch behind the fleet's result
// fabric. Strictly local: it never triggers this node's own
// read-through, so peer fetches cannot cycle.
func (s *Server) handleCacheGet(w http.ResponseWriter, r *http.Request) {
	store, err := s.cacheStore()
	if err != nil {
		writeError(w, http.StatusInternalServerError, "%v", err)
		return
	}
	key := r.PathValue("key")
	if store == nil {
		writeError(w, http.StatusNotFound, "serve: no cache entry %q (no cache directory configured)", key)
		return
	}
	data, ok, err := store.ReadRaw(key)
	switch {
	case errors.Is(err, results.ErrBadKey):
		writeError(w, http.StatusBadRequest, "%v", err)
	case err != nil:
		writeError(w, http.StatusInternalServerError, "%v", err)
	case !ok:
		writeError(w, http.StatusNotFound, "serve: no cache entry %q", key)
	default:
		w.Header().Set("Content-Type", "application/octet-stream")
		w.Header().Set("Content-Length", fmt.Sprint(len(data)))
		_, _ = w.Write(data)
	}
}

// fleetIDRequest is the heartbeat/leave body.
type fleetIDRequest struct {
	ID string `json:"id"`
}

// handleFleetJoin registers a worker (coordinator only). Incompatible
// builds or lab configurations are rejected with 409 — the agent treats
// that as fatal, so mixed-version fleets fail loudly at startup instead
// of silently poisoning the shared cache.
func (s *Server) handleFleetJoin(w http.ResponseWriter, r *http.Request) {
	if s.coord == nil {
		writeError(w, http.StatusNotFound, "serve: not a fleet coordinator")
		return
	}
	var req fleet.JoinRequest
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, maxBodyBytes))
	if err := dec.Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, "serve: bad join request: %v", err)
		return
	}
	resp, err := s.coord.Join(req)
	switch {
	case errors.Is(err, fleet.ErrIncompatible):
		writeError(w, http.StatusConflict, "%v", err)
	case err != nil:
		writeError(w, http.StatusBadRequest, "%v", err)
	default:
		writeJSON(w, http.StatusOK, resp)
	}
}

// handleFleetHeartbeat renews a worker's lease; an unknown id is 404
// (the worker re-joins).
func (s *Server) handleFleetHeartbeat(w http.ResponseWriter, r *http.Request) {
	if s.coord == nil {
		writeError(w, http.StatusNotFound, "serve: not a fleet coordinator")
		return
	}
	var req fleetIDRequest
	if err := json.NewDecoder(http.MaxBytesReader(w, r.Body, maxBodyBytes)).Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, "serve: bad heartbeat: %v", err)
		return
	}
	if !s.coord.Beat(req.ID) {
		writeError(w, http.StatusNotFound, "serve: unknown fleet member %q", req.ID)
		return
	}
	writeJSON(w, http.StatusOK, map[string]bool{"ok": true})
}

// handleFleetLeave deregisters a worker (idempotent).
func (s *Server) handleFleetLeave(w http.ResponseWriter, r *http.Request) {
	if s.coord == nil {
		writeError(w, http.StatusNotFound, "serve: not a fleet coordinator")
		return
	}
	var req fleetIDRequest
	if err := json.NewDecoder(http.MaxBytesReader(w, r.Body, maxBodyBytes)).Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, "serve: bad leave: %v", err)
		return
	}
	s.coord.Leave(req.ID)
	writeJSON(w, http.StatusOK, map[string]bool{"ok": true})
}
