package serve

// End-to-end tests over httptest and a real listener: submit → stream →
// result, concurrent-duplicate dedup (exactly one sweep), mid-job
// cancellation through the API, and graceful drain that persists
// completed sweeps for a restarted server to serve from disk.

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"

	"mcbench/internal/bench"
	"mcbench/internal/cache"
	"mcbench/internal/experiments"
)

// testPolicies are the five sweep products srvtest-many warms.
var testPolicies = []cache.PolicyName{cache.LRU, cache.FIFO, cache.Random, cache.DIP, cache.DRRIP}

// gate blocks srvtest-gate's Run until released, so dedup tests control
// exactly when the coalesced job finishes.
var gate = make(chan struct{})

var registerOnce sync.Once

// registerTestExperiments adds tiny registry experiments the serve tests
// drive: one sweep product (gated), a five-product campaign, and a job
// that blocks until cancelled.
func registerTestExperiments() {
	registerOnce.Do(func() {
		experiments.Register(experiments.Spec{
			Name: "srvtest-gate", Synopsis: "one 2-core LRU sweep, gated finish", Group: experiments.GroupExtension,
			Requests: func(l *experiments.Lab, p experiments.Params) []experiments.Request {
				return []experiments.Request{{Sim: experiments.SimBadco, Cores: 2, Policy: cache.LRU}}
			},
			Run: func(ctx context.Context, l *experiments.Lab, p experiments.Params) (*experiments.Table, error) {
				tab, err := l.BadcoIPC(ctx, 2, cache.LRU)
				if err != nil {
					return nil, err
				}
				select {
				case <-gate:
				case <-ctx.Done():
					return nil, ctx.Err()
				}
				t := &experiments.Table{Title: "srvtest-gate", Columns: []string{"rows"}}
				t.AddRow(fmt.Sprint(len(tab)))
				return t, nil
			},
		})
		experiments.Register(experiments.Spec{
			Name: "srvtest-many", Synopsis: "five 2-core sweep products", Group: experiments.GroupExtension,
			Requests: func(l *experiments.Lab, p experiments.Params) []experiments.Request {
				var reqs []experiments.Request
				for _, pol := range testPolicies {
					reqs = append(reqs, experiments.Request{Sim: experiments.SimBadco, Cores: 2, Policy: pol})
				}
				return reqs
			},
			Run: func(ctx context.Context, l *experiments.Lab, p experiments.Params) (*experiments.Table, error) {
				t := &experiments.Table{Title: "srvtest-many", Columns: []string{"policy", "rows"}}
				for _, pol := range testPolicies {
					tab, err := l.BadcoIPC(ctx, 2, pol)
					if err != nil {
						return nil, err
					}
					t.AddRow(string(pol), fmt.Sprint(len(tab)))
				}
				return t, nil
			},
		})
		experiments.Register(experiments.Spec{
			Name: "srvtest-slow", Synopsis: "blocks until cancelled", Group: experiments.GroupExtension,
			Run: func(ctx context.Context, l *experiments.Lab, p experiments.Params) (*experiments.Table, error) {
				<-ctx.Done()
				return nil, ctx.Err()
			},
		})
	})
}

// newTestServer builds a server over a tiny lab (sub-second sweeps).
func newTestServer(t *testing.T, cacheDir string) *Server {
	t.Helper()
	registerTestExperiments()
	labCfg := experiments.QuickConfig()
	labCfg.TraceLen = 2000
	labCfg.CacheDir = cacheDir
	s := New(Config{Lab: labCfg, Workers: 2, QueueDepth: 8})
	t.Cleanup(s.Drain)
	return s
}

// --- small HTTP helpers -------------------------------------------------

func postJSON(t *testing.T, url string, body any) (*http.Response, []byte) {
	t.Helper()
	data, err := json.Marshal(body)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(url, "application/json", bytes.NewReader(data))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	out, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp, out
}

func getJSON(t *testing.T, url string, into any) int {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if into != nil {
		if err := json.Unmarshal(data, into); err != nil {
			t.Fatalf("decode %s: %v\n%s", url, err, data)
		}
	}
	return resp.StatusCode
}

func submit(t *testing.T, base string, req SubmitRequest) JobStatus {
	t.Helper()
	resp, body := postJSON(t, base+"/jobs", req)
	if resp.StatusCode != http.StatusCreated && resp.StatusCode != http.StatusOK {
		t.Fatalf("submit: %d %s", resp.StatusCode, body)
	}
	var st JobStatus
	if err := json.Unmarshal(body, &st); err != nil {
		t.Fatalf("submit decode: %v\n%s", err, body)
	}
	return st
}

// waitTerminal polls the long-poll events endpoint until the job
// settles, returning every event seen and the final state.
func waitTerminal(t *testing.T, base, id string, timeout time.Duration) ([]Event, State) {
	t.Helper()
	deadline := time.Now().Add(timeout)
	var all []Event
	after := 0
	for time.Now().Before(deadline) {
		var page struct {
			State  State   `json:"state"`
			Events []Event `json:"events"`
		}
		code := getJSON(t, fmt.Sprintf("%s/jobs/%s/events?after=%d&wait=2s", base, id, after), &page)
		if code != http.StatusOK {
			t.Fatalf("events: status %d", code)
		}
		all = append(all, page.Events...)
		if len(page.Events) > 0 {
			after = page.Events[len(page.Events)-1].Seq
		}
		if page.State.Terminal() {
			return all, page.State
		}
	}
	t.Fatalf("job %s did not settle within %v (events so far: %+v)", id, timeout, all)
	return nil, ""
}

// --- tests --------------------------------------------------------------

// TestEndToEndSubmitStreamResult drives the full client path over
// httptest: health, catalogue, submission, event streaming, result.
func TestEndToEndSubmitStreamResult(t *testing.T) {
	s := newTestServer(t, "")
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	var health Health
	if code := getJSON(t, ts.URL+"/healthz", &health); code != http.StatusOK {
		t.Fatalf("healthz: %d", code)
	}
	if !health.OK || health.Build.GoVersion == "" || health.Source != "suite" {
		t.Errorf("healthz payload %+v", health)
	}
	var cat struct {
		Experiments []ExperimentInfo `json:"experiments"`
	}
	getJSON(t, ts.URL+"/experiments", &cat)
	if len(cat.Experiments) < 20 {
		t.Errorf("catalogue has %d experiments", len(cat.Experiments))
	}
	var benches struct {
		Source     string      `json:"source"`
		Benchmarks []BenchInfo `json:"benchmarks"`
	}
	getJSON(t, ts.URL+"/benches", &benches)
	if benches.Source != "suite" || len(benches.Benchmarks) != 22 {
		t.Errorf("benches: %s / %d", benches.Source, len(benches.Benchmarks))
	}

	// config is simulation-free: instant, deterministic.
	st := submit(t, ts.URL, SubmitRequest{Kind: KindExperiment, Experiment: &ExperimentRequest{Name: "config"}})
	if st.State != StateQueued && st.State != StateRunning && !st.State.Terminal() {
		t.Fatalf("fresh job state %q", st.State)
	}
	events, final := waitTerminal(t, ts.URL, st.ID, 30*time.Second)
	if final != StateDone {
		t.Fatalf("final state %q, events %+v", final, events)
	}
	types := map[string]bool{}
	for _, ev := range events {
		types[ev.Type] = true
	}
	for _, want := range []string{"queued", "started", "done"} {
		if !types[want] {
			t.Errorf("event log missing %q: %+v", want, events)
		}
	}
	var result JobResult
	if code := getJSON(t, ts.URL+"/jobs/"+st.ID+"/result", &result); code != http.StatusOK {
		t.Fatalf("result: %d", code)
	}
	if result.Table == nil || len(result.Table.Rows) == 0 || !strings.Contains(result.Text, "==") {
		t.Fatalf("empty experiment result: %+v", result)
	}
}

// TestAdhocSimulateJob submits an ad-hoc BADCO workload and reads back
// per-thread IPCs.
func TestAdhocSimulateJob(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation")
	}
	s := newTestServer(t, "")
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	st := submit(t, ts.URL, SubmitRequest{Kind: KindSimulate, Simulate: &SimulateRequest{
		Workload: []string{"mcf"}, Cores: 2, Engine: EngineBadco,
	}})
	_, final := waitTerminal(t, ts.URL, st.ID, 60*time.Second)
	if final != StateDone {
		t.Fatalf("final state %q", final)
	}
	var result JobResult
	getJSON(t, ts.URL+"/jobs/"+st.ID+"/result", &result)
	if len(result.Results) != 1 || len(result.Results[0].IPC) != 2 {
		t.Fatalf("simulate result %+v", result)
	}
	for _, v := range result.Results[0].IPC {
		if v <= 0 || v > 4 {
			t.Errorf("implausible IPC %g", v)
		}
	}
	if result.Results[0].Workload[0] != "mcf" || result.Results[0].Workload[1] != "mcf" {
		t.Errorf("cores replication lost: %v", result.Results[0].Workload)
	}

	// A detailed ad-hoc job releases its traces when it finishes: the
	// server's resident trace memory tracks in-flight work, not the
	// history of benchmarks clients ever touched.
	st2 := submit(t, ts.URL, SubmitRequest{Kind: KindSimulate, Simulate: &SimulateRequest{
		Workload: []string{"gcc", "milc"}, Engine: EngineDetailed,
	}})
	if _, final := waitTerminal(t, ts.URL, st2.ID, 60*time.Second); final != StateDone {
		t.Fatalf("detailed sim state %q", final)
	}
	if got := bench.Resident(s.Lab().Source()); got != 0 {
		t.Errorf("%d traces resident after ad-hoc detailed job, want 0", got)
	}
}

// TestDedupConcurrentSubmissions is the acceptance test of the dedup
// tentpole: M concurrent identical submissions coalesce onto one job and
// execute exactly one underlying sweep.
func TestDedupConcurrentSubmissions(t *testing.T) {
	if testing.Short() {
		t.Skip("population sweep")
	}
	s := newTestServer(t, "")
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	const m = 8
	req := SubmitRequest{Kind: KindExperiment, Experiment: &ExperimentRequest{Name: "srvtest-gate"}}
	var (
		wg       sync.WaitGroup
		mu       sync.Mutex
		ids      = map[string]int{}
		deduped  int
		statuses []int
	)
	start := make(chan struct{})
	for i := 0; i < m; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			<-start
			data, _ := json.Marshal(req)
			resp, err := http.Post(ts.URL+"/jobs", "application/json", bytes.NewReader(data))
			if err != nil {
				t.Error(err)
				return
			}
			body, _ := io.ReadAll(resp.Body)
			resp.Body.Close()
			var st JobStatus
			if err := json.Unmarshal(body, &st); err != nil {
				t.Errorf("decode: %v\n%s", err, body)
				return
			}
			mu.Lock()
			ids[st.ID]++
			if st.Deduped {
				deduped++
			}
			statuses = append(statuses, resp.StatusCode)
			mu.Unlock()
		}()
	}
	close(start)
	wg.Wait()
	if len(ids) != 1 {
		t.Fatalf("%d concurrent identical submissions produced %d jobs: %v", m, len(ids), ids)
	}
	if deduped != m-1 {
		t.Errorf("%d submissions marked deduped, want %d", deduped, m-1)
	}
	var id string
	for k := range ids {
		id = k
	}
	// The job is gated: all m submissions coalesced while it was
	// in-flight. Release it and let it finish.
	close(gate)
	defer func() { gate = make(chan struct{}) }()
	events, final := waitTerminal(t, ts.URL, id, 60*time.Second)
	if final != StateDone {
		t.Fatalf("final state %q", final)
	}
	// Exactly one underlying sweep ran for the m submissions.
	if badco, detailed := s.Lab().SweepCounts(); badco != 1 || detailed != 0 {
		t.Fatalf("sweeps = (%d, %d), want exactly (1, 0) for %d coalesced submissions", badco, detailed, m)
	}
	stats := s.mgr.snapshotStats()
	if stats.Executed != 1 || stats.Submitted != m || stats.Coalesced != m-1 {
		t.Errorf("stats %+v, want 1 executed / %d submitted / %d coalesced", stats, m, m-1)
	}
	// The streamed log shows the sweep landing (a product done event
	// with rows).
	sawRows := false
	for _, ev := range events {
		if ev.Type == "product" && ev.Data["phase"] == "done" {
			if rows, ok := ev.Data["rows"].(float64); ok && rows > 0 {
				sawRows = true
			}
		}
	}
	if !sawRows {
		t.Errorf("no product-done event with rows in %+v", events)
	}
	if st := s.mgr.snapshotStats(); st.Done != 1 {
		t.Errorf("done count %d", st.Done)
	}
	// The coalesced count is visible on the job status.
	var jst JobStatus
	getJSON(t, ts.URL+"/jobs/"+id, &jst)
	if jst.Coalesced != m-1 {
		t.Errorf("job coalesced = %d, want %d", jst.Coalesced, m-1)
	}
}

// TestCancelMidJobViaAPI cancels a running job through the HTTP API and
// checks the server keeps serving.
func TestCancelMidJobViaAPI(t *testing.T) {
	s := newTestServer(t, "")
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	st := submit(t, ts.URL, SubmitRequest{Kind: KindExperiment, Experiment: &ExperimentRequest{Name: "srvtest-slow"}})
	// Wait until it is actually running.
	deadline := time.Now().Add(10 * time.Second)
	for {
		var cur JobStatus
		getJSON(t, ts.URL+"/jobs/"+st.ID, &cur)
		if cur.State == StateRunning {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("job never started: %+v", cur)
		}
		time.Sleep(5 * time.Millisecond)
	}
	resp, body := postJSON(t, ts.URL+"/jobs/"+st.ID+"/cancel", struct{}{})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("cancel: %d %s", resp.StatusCode, body)
	}
	_, final := waitTerminal(t, ts.URL, st.ID, 10*time.Second)
	if final != StateCanceled {
		t.Fatalf("state after cancel %q", final)
	}
	// The server is still healthy and runs new jobs.
	st2 := submit(t, ts.URL, SubmitRequest{Kind: KindExperiment, Experiment: &ExperimentRequest{Name: "config"}})
	if _, final := waitTerminal(t, ts.URL, st2.ID, 30*time.Second); final != StateDone {
		t.Fatalf("post-cancel job state %q", final)
	}
}

// TestSSEStream reads the events endpoint as Server-Sent Events and
// checks ids, event names and termination.
func TestSSEStream(t *testing.T) {
	s := newTestServer(t, "")
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	st := submit(t, ts.URL, SubmitRequest{Kind: KindExperiment, Experiment: &ExperimentRequest{Name: "config"}})
	req, _ := http.NewRequest("GET", ts.URL+"/jobs/"+st.ID+"/events", nil)
	req.Header.Set("Accept", "text/event-stream")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); ct != "text/event-stream" {
		t.Fatalf("content type %q", ct)
	}
	var names []string
	sc := bufio.NewScanner(resp.Body)
	for sc.Scan() {
		if strings.HasPrefix(sc.Text(), "event: ") {
			names = append(names, strings.TrimPrefix(sc.Text(), "event: "))
		}
	}
	// The stream must end on its own (job terminal) with the full
	// lifecycle in order.
	if len(names) < 3 || names[0] != "queued" || names[len(names)-1] != "done" {
		t.Fatalf("SSE event names %v", names)
	}
}

// TestGracefulDrainPersistsAndResumes is the acceptance test of the
// drain tentpole: a lifetime-cancelled server (the SIGTERM path) stops
// with a nil error after persisting every completed sweep, and a
// restarted server over the same cache directory serves them from disk
// without re-sweeping.
func TestGracefulDrainPersistsAndResumes(t *testing.T) {
	if testing.Short() {
		t.Skip("population sweeps")
	}
	dir := t.TempDir()
	s := newTestServer(t, dir)

	ctx, cancel := context.WithCancel(context.Background())
	addrCh := make(chan string, 1)
	serveDone := make(chan error, 1)
	go func() {
		serveDone <- s.ListenAndServe(ctx, "127.0.0.1:0", func(a string) { addrCh <- a })
	}()
	var base string
	select {
	case a := <-addrCh:
		base = "http://" + a
	case <-time.After(10 * time.Second):
		t.Fatal("server never became ready")
	}

	// Kick off the five-product campaign and wait for the first sweep to
	// land (a product done event that is not a cache hit).
	st := submit(t, base, SubmitRequest{Kind: KindExperiment, Experiment: &ExperimentRequest{Name: "srvtest-many"}})
	deadline := time.Now().Add(120 * time.Second)
	after, landed := 0, false
	for !landed {
		if time.Now().After(deadline) {
			t.Fatal("no sweep landed before deadline")
		}
		var page struct {
			State  State   `json:"state"`
			Events []Event `json:"events"`
		}
		getJSON(t, fmt.Sprintf("%s/jobs/%s/events?after=%d&wait=2s", base, st.ID, after), &page)
		for _, ev := range page.Events {
			after = ev.Seq
			if ev.Type == "product" && ev.Data["phase"] == "done" && ev.Data["cached"] == nil && ev.Data["error"] == nil {
				landed = true
			}
		}
		if page.State.Terminal() && !landed {
			t.Fatalf("job settled (%s) without a sweep landing", page.State)
		}
	}

	// SIGTERM: the CLI cancels the lifetime context (sigctx). Drain must
	// return nil — the process exits 0.
	cancel()
	select {
	case err := <-serveDone:
		if err != nil {
			t.Fatalf("drained server returned %v, want nil", err)
		}
	case <-time.After(30 * time.Second):
		t.Fatal("server did not drain")
	}

	// Completed sweeps are on disk.
	persisted, err := filepath.Glob(filepath.Join(dir, "*.json"))
	if err != nil || len(persisted) == 0 {
		t.Fatalf("no persisted sweeps after drain (err %v)", err)
	}

	// A fresh server over the same cache dir serves them from disk: the
	// persisted products reload as cache hits, not re-sweeps.
	s2 := newTestServer(t, dir)
	ts2 := httptest.NewServer(s2.Handler())
	defer ts2.Close()
	st2 := submit(t, ts2.URL, SubmitRequest{Kind: KindExperiment, Experiment: &ExperimentRequest{Name: "srvtest-many"}})
	events, final := waitTerminal(t, ts2.URL, st2.ID, 120*time.Second)
	if final != StateDone {
		t.Fatalf("restarted campaign state %q", final)
	}
	cachedHits := 0
	for _, ev := range events {
		if ev.Type == "product" && ev.Data["cached"] == true {
			cachedHits++
		}
	}
	if cachedHits < len(persisted) {
		t.Errorf("restart saw %d cache hits for %d persisted tables", cachedHits, len(persisted))
	}
	badco, _ := s2.Lab().SweepCounts()
	if int(badco) != len(testPolicies)-cachedHits {
		t.Errorf("restart ran %d sweeps with %d cache hits (want %d total products)",
			badco, cachedHits, len(testPolicies))
	}
	// And the cache endpoint can browse what the directory holds, with
	// identities preserved.
	var cacheList struct {
		Dir     string `json:"dir"`
		Entries []struct {
			Key   string `json:"key"`
			Table struct {
				Simulator string `json:"simulator"`
				Cores     int    `json:"cores"`
				Policy    string `json:"policy"`
			} `json:"table"`
		} `json:"entries"`
	}
	getJSON(t, ts2.URL+"/cache", &cacheList)
	if cacheList.Dir != dir || len(cacheList.Entries) < len(persisted) {
		t.Fatalf("/cache: dir %q, %d entries, want >= %d", cacheList.Dir, len(cacheList.Entries), len(persisted))
	}
	for _, e := range cacheList.Entries {
		if e.Table.Simulator != "badco" || e.Table.Cores != 2 || e.Table.Policy == "" {
			t.Errorf("cache entry %q lost identity: %+v", e.Key, e.Table)
		}
	}
	// The result still rendered from the mixed memo/disk products.
	var result JobResult
	getJSON(t, ts2.URL+"/jobs/"+st2.ID+"/result", &result)
	if result.Table == nil || len(result.Table.Rows) != len(testPolicies) {
		t.Fatalf("restart result %+v", result)
	}
}

// TestAdhocSampledJob drives a sampled simulate job end to end: the
// result must carry the confidence columns, and a sampled submission
// must not dedup onto an exact one.
func TestAdhocSampledJob(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation")
	}
	s := newTestServer(t, "")
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	smp := &SampleSpec{Unit: 500, Window: 100, Warmup: 100}
	st := submit(t, ts.URL, SubmitRequest{Kind: KindSimulate, Simulate: &SimulateRequest{
		Workload: []string{"mcf", "povray"}, Sampling: smp,
	}})
	exact := submit(t, ts.URL, SubmitRequest{Kind: KindSimulate, Simulate: &SimulateRequest{
		Workload: []string{"mcf", "povray"},
	}})
	if st.ID == exact.ID {
		t.Fatal("sampled submission deduped onto an exact job")
	}
	if _, final := waitTerminal(t, ts.URL, st.ID, 60*time.Second); final != StateDone {
		t.Fatalf("sampled job state %q", final)
	}
	var result JobResult
	getJSON(t, ts.URL+"/jobs/"+st.ID+"/result", &result)
	if len(result.Results) != 1 {
		t.Fatalf("results %+v", result)
	}
	r := result.Results[0]
	if r.Windows != 4 { // 2000-µop test traces, 500-µop units
		t.Errorf("windows = %d, want 4", r.Windows)
	}
	if len(r.CIHalf) != 2 || len(r.CV) != 2 || r.Sampling == nil {
		t.Fatalf("sampled result lacks confidence columns: %+v", r)
	}
	for i := range r.IPC {
		if r.IPC[i] <= 0 || r.CIHalf[i] <= 0 {
			t.Errorf("core %d: ipc %g ci %g", i, r.IPC[i], r.CIHalf[i])
		}
	}
	if got := bench.Resident(s.Lab().Source()); got != 0 {
		t.Errorf("%d traces resident after sampled job, want 0", got)
	}
}
