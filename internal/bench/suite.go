package bench

import "mcbench/internal/trace"

// SuiteSource is the paper's fixed 22-benchmark synthetic suite exposed
// as a Source. Its traces are bit-identical to trace.NewSuite /
// trace.Generate output for the same length — the equivalence is pinned
// by a golden test in internal/multicore — so migrating a consumer from
// the eager suite map onto a SuiteSource cannot change results.
type SuiteSource struct {
	*paramsSource
}

// NewSuite returns a source over the fixed suite. Each call returns an
// independent source with its own memo; share one instance to share
// generated traces.
func NewSuite() *SuiteSource {
	return &SuiteSource{newParamsSource("suite", trace.Suite())}
}
