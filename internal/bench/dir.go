package bench

import (
	"context"
	"fmt"
	"path/filepath"
	"sort"
	"strings"

	"mcbench/internal/trace"
)

// TraceExt is the file extension of stored traces (the compact
// delta/varint format of internal/trace, as written by cmd/tracegen).
const TraceExt = ".mcbt"

// DirSource serves benchmarks from a directory of stored trace files:
// one <benchmark>.mcbt per benchmark, loaded lazily through the
// internal/trace codecs and memoized until released. It is the path for
// recorded (or externally generated) traces — the role the paper's
// SimpleScalar EIO traces play — instead of the synthetic generators.
type DirSource struct {
	name  string
	dir   string
	names []string
	m     *memo
}

// NewDir scans dir for stored traces and returns a source over them.
// The benchmark name is the file name without extension; the trace
// embedded in each file must carry the same name (checked on load).
func NewDir(dir string) (*DirSource, error) {
	matches, err := filepath.Glob(filepath.Join(dir, "*"+TraceExt))
	if err != nil {
		return nil, fmt.Errorf("bench: scanning %s: %w", dir, err)
	}
	if len(matches) == 0 {
		return nil, fmt.Errorf("bench: no %s traces in %s", TraceExt, dir)
	}
	names := make([]string, len(matches))
	for i, m := range matches {
		names[i] = strings.TrimSuffix(filepath.Base(m), TraceExt)
	}
	sort.Strings(names)
	s := &DirSource{
		name:  "dir:" + filepath.Clean(dir),
		dir:   dir,
		names: names,
	}
	known := make(map[string]bool, len(names))
	for _, n := range names {
		known[n] = true
	}
	s.m = newMemo(func(ctx context.Context, bench string, _ int) (*trace.Trace, error) {
		if !known[bench] {
			return nil, fmt.Errorf("bench: %s: unknown benchmark %q", s.name, bench)
		}
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		tr, err := trace.LoadFile(filepath.Join(s.dir, bench+TraceExt))
		if err != nil {
			return nil, fmt.Errorf("bench: %s: %w", s.name, err)
		}
		if tr.Name != bench {
			return nil, fmt.Errorf("bench: %s: file %s%s contains benchmark %q",
				s.name, bench, TraceExt, tr.Name)
		}
		return tr, nil
	})
	return s, nil
}

func (s *DirSource) Name() string { return s.name }

func (s *DirSource) Names() []string { return append([]string(nil), s.names...) }

// Trace loads the stored trace. A stored trace has a fixed length: n <=
// 0 (or exactly the stored length) returns it whole, a shorter n
// returns a prefix view sharing the loaded µops, and a longer n is an
// error — a file cannot be extended.
func (s *DirSource) Trace(ctx context.Context, name string, n int) (*trace.Trace, error) {
	full, err := s.m.trace(ctx, name, 0)
	if err != nil {
		return nil, err
	}
	switch {
	case n <= 0 || n == full.Len():
		return full, nil
	case n < full.Len():
		return &trace.Trace{Name: full.Name, Ops: full.Ops[:n]}, nil
	default:
		return nil, fmt.Errorf("bench: %s: trace %q holds %d µops, %d requested",
			s.name, name, full.Len(), n)
	}
}

func (s *DirSource) Release(name string) { s.m.release(name) }

// Resident returns the number of loaded (or in-flight) traces.
func (s *DirSource) Resident() int { return s.m.Resident() }

// Dir returns the backing directory.
func (s *DirSource) Dir() string { return s.dir }
