package bench

import (
	"fmt"
	"strconv"
	"strings"
)

// DefaultScaledSeed seeds scaled sources whose spec omits the seed.
const DefaultScaledSeed = 1

// Parse builds a source from a spec string, the syntax of the CLI's
// -suite flag and the public suite registry:
//
//	suite            the fixed 22-benchmark suite
//	scaled:B         B synthetic benchmarks (12..512), seed 1
//	scaled:B:SEED    the same with an explicit seed
//	dir:PATH         stored .mcbt traces under PATH
//
// The empty spec means "suite".
func Parse(spec string) (Source, error) {
	switch {
	case spec == "" || spec == "suite":
		return NewSuite(), nil
	case strings.HasPrefix(spec, "scaled:"):
		rest := strings.TrimPrefix(spec, "scaled:")
		bs, seedStr, hasSeed := strings.Cut(rest, ":")
		b, err := strconv.Atoi(bs)
		if err != nil {
			return nil, fmt.Errorf("bench: bad scaled population %q in %q", bs, spec)
		}
		seed := int64(DefaultScaledSeed)
		if hasSeed {
			seed, err = strconv.ParseInt(seedStr, 10, 64)
			if err != nil {
				return nil, fmt.Errorf("bench: bad scaled seed %q in %q", seedStr, spec)
			}
		}
		return NewScaled(b, seed)
	case strings.HasPrefix(spec, "dir:"):
		return NewDir(strings.TrimPrefix(spec, "dir:"))
	default:
		return nil, fmt.Errorf("bench: unknown source %q (want \"suite\", \"scaled:B[:seed]\" or \"dir:PATH\")", spec)
	}
}
