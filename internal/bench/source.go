// Package bench provides benchmark sources: named, seeded, lazily
// memoized providers of benchmark traces. A Source decouples every
// consumer — the multicore sweeps, the experiment Lab, the public API,
// the CLI — from the hard-wired 22-benchmark suite: the paper studies
// populations of C(B+K-1, K) workload combinations, and a source is the
// knob that grows B (ScaledSource), swaps in recorded traces
// (DirSource) or keeps the paper's fixed suite (SuiteSource).
//
// Traces are built on first use and memoized until released, so a
// source's peak memory tracks the in-flight working set rather than the
// whole benchmark population: a consumer that releases each trace after
// its last use (e.g. BADCO model building) keeps O(parallelism) traces
// resident instead of O(B).
package bench

import (
	"context"
	"fmt"
	"sync"

	"mcbench/internal/trace"
)

// Source is a named, lazily-memoized provider of benchmark traces.
// Implementations are safe for concurrent use.
type Source interface {
	// Name identifies the source ("suite", "scaled:64:7", "dir:PATH").
	// Consumers key memoized products and persistent caches by it, so
	// two sources producing different traces must never share a name.
	Name() string

	// Names returns the benchmark names in the source's canonical order.
	// It never builds a trace.
	Names() []string

	// Trace returns the n-µop trace of the named benchmark, building
	// (or loading) it on first use and memoizing it until released.
	// Concurrent callers for the same benchmark share one build. The
	// returned trace is immutable and remains valid after Release.
	Trace(ctx context.Context, name string, n int) (*trace.Trace, error)

	// Release drops the memoized trace for the named benchmark, freeing
	// its memory once no caller references it. A later Trace call
	// rebuilds it deterministically. Releasing an unknown or unbuilt
	// benchmark is a no-op.
	Release(name string)
}

// Resident reports how many benchmark traces the source currently holds
// memoized (including in-flight builds), or -1 when the source does not
// expose residency. Tests use it to pin the working-set guarantee.
func Resident(s Source) int {
	if r, ok := s.(interface{ Resident() int }); ok {
		return r.Resident()
	}
	return -1
}

// builder materialises one benchmark's trace at a given length.
type builder func(ctx context.Context, name string, n int) (*trace.Trace, error)

// entry is one memoized (or in-flight) trace build.
type entry struct {
	n    int
	done chan struct{}
	tr   *trace.Trace
	err  error
}

// memo gives a source single-flight, release-droppable memoization: one
// entry per benchmark name, concurrent callers share the build, errors
// are never memoized, and Release drops the entry so the next caller
// rebuilds. A benchmark requested at a different length than its
// memoized entry replaces the entry (sources serve one length per
// benchmark at a time; mixed-length use thrashes but stays correct).
type memo struct {
	build builder

	mu      sync.Mutex
	entries map[string]*entry
}

// newMemo returns a memo over the given builder.
func newMemo(build builder) *memo {
	return &memo{build: build, entries: map[string]*entry{}}
}

func (m *memo) lock()   { m.mu.Lock() }
func (m *memo) unlock() { m.mu.Unlock() }

// trace returns the memoized trace for (name, n), building at most once.
func (m *memo) trace(ctx context.Context, name string, n int) (*trace.Trace, error) {
	for {
		m.lock()
		e := m.entries[name]
		switch {
		case e == nil:
			e = &entry{n: n, done: make(chan struct{})}
			m.entries[name] = e
			m.unlock()
			e.tr, e.err = m.build(ctx, name, n)
			if e.err != nil {
				// Never memoize a failure (most commonly a cancelled
				// context): drop the entry so the next caller retries.
				m.lock()
				if m.entries[name] == e {
					delete(m.entries, name)
				}
				m.unlock()
			}
			close(e.done)
			return e.tr, e.err

		case e.n == n:
			m.unlock()
			select {
			case <-e.done:
				if e.err != nil {
					// The building caller failed (and dropped the
					// entry); retry with our own context.
					if ctx.Err() != nil {
						return nil, ctx.Err()
					}
					continue
				}
				return e.tr, e.err
			case <-ctx.Done():
				return nil, ctx.Err()
			}

		default:
			// Length mismatch: wait out the incumbent, replace it.
			m.unlock()
			select {
			case <-e.done:
			case <-ctx.Done():
				return nil, ctx.Err()
			}
			m.lock()
			if m.entries[name] == e {
				delete(m.entries, name)
			}
			m.unlock()
		}
	}
}

// release drops the memoized entry for name. An in-flight build is left
// alone (it is in use by definition); its caller still receives the
// trace, and the entry becomes releasable once built.
func (m *memo) release(name string) {
	m.lock()
	if e := m.entries[name]; e != nil {
		select {
		case <-e.done:
			delete(m.entries, name)
		default:
		}
	}
	m.unlock()
}

// Resident returns the number of memoized (or in-flight) traces.
func (m *memo) Resident() int {
	m.lock()
	n := len(m.entries)
	m.unlock()
	return n
}

// paramsSource is a source backed by a fixed set of trace generator
// parameters (the suite, or a scaled synthetic population).
type paramsSource struct {
	name   string
	names  []string
	params map[string]trace.Params
	m      *memo
}

func newParamsSource(name string, ps []trace.Params) *paramsSource {
	s := &paramsSource{
		name:   name,
		names:  make([]string, len(ps)),
		params: make(map[string]trace.Params, len(ps)),
	}
	for i, p := range ps {
		s.names[i] = p.Name
		s.params[p.Name] = p
	}
	s.m = newMemo(func(ctx context.Context, bench string, n int) (*trace.Trace, error) {
		p, ok := s.params[bench]
		if !ok {
			return nil, fmt.Errorf("bench: %s: unknown benchmark %q", s.name, bench)
		}
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		return trace.Generate(p, n)
	})
	return s
}

func (s *paramsSource) Name() string { return s.name }

func (s *paramsSource) Names() []string { return append([]string(nil), s.names...) }

func (s *paramsSource) Trace(ctx context.Context, name string, n int) (*trace.Trace, error) {
	return s.m.trace(ctx, name, n)
}

func (s *paramsSource) Release(name string) { s.m.release(name) }

// Resident returns the number of memoized (or in-flight) traces.
func (s *paramsSource) Resident() int { return s.m.Resident() }

// Params returns the generator parameters of the named benchmark, for
// introspection (the CLI's benches listing); ok is false for unknown
// names.
func (s *paramsSource) Params(name string) (trace.Params, bool) {
	p, ok := s.params[name]
	return p, ok
}

// Provider binds a Source to one trace length. It satisfies the
// trace-resolution interface of internal/multicore, which resolves
// benchmarks by name alone.
type Provider struct {
	src Source
	n   int
}

// At binds the source to a trace length of n µops.
func At(src Source, n int) Provider { return Provider{src: src, n: n} }

// Trace resolves the named benchmark at the provider's bound length.
func (p Provider) Trace(ctx context.Context, name string) (*trace.Trace, error) {
	return p.src.Trace(ctx, name, p.n)
}

// Release forwards to the underlying source.
func (p Provider) Release(name string) { p.src.Release(name) }

// Names lists the underlying source's benchmarks.
func (p Provider) Names() []string { return p.src.Names() }

// Source returns the underlying source.
func (p Provider) Source() Source { return p.src }

// Len returns the bound trace length in µops.
func (p Provider) Len() int { return p.n }

// CheckNames validates every workload name against the source before
// any simulation starts, and returns the distinct names in first-use
// order — the model-build list of a BADCO sweep. It is the one shared
// validation path of the public API and the CLI.
func CheckNames(src Source, workloads [][]string) ([]string, error) {
	valid := map[string]bool{}
	for _, n := range src.Names() {
		valid[n] = true
	}
	seen := map[string]bool{}
	var distinct []string
	for _, w := range workloads {
		for _, name := range w {
			if !valid[name] {
				return nil, fmt.Errorf("bench: %s: unknown benchmark %q", src.Name(), name)
			}
			if !seen[name] {
				seen[name] = true
				distinct = append(distinct, name)
			}
		}
	}
	return distinct, nil
}
