package bench

import (
	"fmt"
	"reflect"
	"strings"
	"testing"

	"mcbench/internal/trace"
)

func TestScaledBounds(t *testing.T) {
	for _, b := range []int{MinScaled, 22, 64, MaxScaled} {
		src, err := NewScaled(b, 7)
		if err != nil {
			t.Fatalf("NewScaled(%d): %v", b, err)
		}
		if got := len(src.Names()); got != b {
			t.Fatalf("NewScaled(%d) has %d names", b, got)
		}
		if src.B() != b || src.Seed() != 7 {
			t.Errorf("accessors B=%d seed=%d", src.B(), src.Seed())
		}
		if want := fmt.Sprintf("scaled:%d:7", b); src.Name() != want {
			t.Errorf("name %q, want %q", src.Name(), want)
		}
	}
	for _, b := range []int{0, MinScaled - 1, MaxScaled + 1} {
		if _, err := NewScaled(b, 1); err == nil {
			t.Errorf("NewScaled(%d) accepted", b)
		}
	}
}

func TestScaledNamesSelfDescribing(t *testing.T) {
	src, err := NewScaled(MaxScaled, 3)
	if err != nil {
		t.Fatal(err)
	}
	names := src.Names()
	counts := map[string]int{}
	for i, n := range names {
		class, idx, ok := strings.Cut(n, "-")
		if !ok || len(idx) < 3 {
			t.Fatalf("name %q not <class>-<index>", n)
		}
		if want := fmt.Sprintf("%03d", i); idx != want {
			t.Fatalf("name %q at position %d, want index %s", n, i, want)
		}
		counts[class]++
	}
	// The issue's canonical examples land in the right classes.
	if names[17] != "low-017" {
		t.Errorf("names[17] = %q, want low-017", names[17])
	}
	if names[203] != "high-203" {
		t.Errorf("names[203] = %q, want high-203", names[203])
	}
	// Class proportions track the suite's 11/5/6 split over any B.
	total := float64(len(names))
	for class, want := range map[string]float64{"low": 11.0 / 22, "med": 5.0 / 22, "high": 6.0 / 22} {
		got := float64(counts[class]) / total
		if got < want-0.05 || got > want+0.05 {
			t.Errorf("class %s fraction %.3f, want ~%.3f", class, got, want)
		}
	}
}

func TestScaledDeterministicAndPrefixStable(t *testing.T) {
	a, _ := NewScaled(64, 9)
	b, _ := NewScaled(64, 9)
	c, _ := NewScaled(128, 9)
	d, _ := NewScaled(64, 10)
	if !reflect.DeepEqual(a.Names(), b.Names()) {
		t.Fatal("same (B, seed) disagrees on names")
	}
	if !reflect.DeepEqual(a.Names(), c.Names()[:64]) {
		t.Fatal("scaled:64 is not a prefix of scaled:128 at one seed")
	}
	name := a.Names()[17]
	ta, err := a.Trace(bctx, name, 3000)
	if err != nil {
		t.Fatal(err)
	}
	tb, err := b.Trace(bctx, name, 3000)
	if err != nil {
		t.Fatal(err)
	}
	tc, err := c.Trace(bctx, name, 3000)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(ta.Ops, tb.Ops) || !reflect.DeepEqual(ta.Ops, tc.Ops) {
		t.Fatal("same benchmark differs across equal-seed sources")
	}
	td, err := d.Trace(bctx, name, 3000)
	if err != nil {
		t.Fatal(err)
	}
	if reflect.DeepEqual(ta.Ops, td.Ops) {
		t.Fatal("different seeds produced an identical trace")
	}
}

// TestScaledFootprintsMatchClasses pins the structural property behind
// the Table-IV classes without simulating: a low benchmark's whole
// touched footprint fits the 256 kB 1-core LLC, a medium one's dominant
// hot set exceeds it moderately, and a high one touches several times
// the LLC per iteration.
func TestScaledFootprintsMatchClasses(t *testing.T) {
	const llc = 256 * 1024
	src, err := NewScaled(MaxScaled, 5)
	if err != nil {
		t.Fatal(err)
	}
	for i, name := range src.Names() {
		p, ok := src.Params(name)
		if !ok {
			t.Fatalf("no params for %s", name)
		}
		touched := p.CodeBytes
		dominant := trace.PatternSpec{Weight: -1}
		hasStream := false
		for _, ps := range p.Patterns {
			touched += ps.Bytes
			if ps.Weight > dominant.Weight {
				dominant = ps
			}
			if ps.Kind == trace.Stream {
				hasStream = true
			}
		}
		class, _, _ := strings.Cut(name, "-")
		switch class {
		case "low":
			if touched > llc {
				t.Errorf("%s (#%d): touched %d B exceeds the LLC", name, i, touched)
			}
		case "med":
			if dominant.Kind != trace.HotSet || dominant.Bytes < llc/2 || dominant.Bytes > 2*llc {
				t.Errorf("%s (#%d): dominant %v/%d B not a medium hot set", name, i, dominant.Kind, dominant.Bytes)
			}
		case "high":
			if !hasStream && touched < llc {
				t.Errorf("%s (#%d): touched %d B too small for high intensity", name, i, touched)
			}
		}
	}
}
