package bench

import (
	"fmt"
	"math/rand"

	"mcbench/internal/trace"
)

// Scaled-population limits. The lower bound keeps every intensity class
// populated; the upper bound keeps a full trace set addressable on a
// small host (512 benchmarks × 100 k µops × 32 B/µop ≈ 1.6 GB if someone
// insists on materialising everything — the lazy source exists so nobody
// has to).
const (
	MinScaled = 12
	MaxScaled = 512
)

// intensity is a benchmark's Table-IV memory-intensity class.
type intensity uint8

const (
	low intensity = iota
	medium
	high
)

func (c intensity) prefix() string {
	switch c {
	case low:
		return "low"
	case medium:
		return "med"
	}
	return "high"
}

// classPattern spreads the suite's class proportions (11 low, 5 medium,
// 6 high out of 22) evenly over any population size: benchmark i takes
// class classPattern[i%22], so every window of the population mixes all
// three classes and small B keeps the paper's rough 50/23/27 split.
var classPattern = [22]intensity{
	low, medium, high, low, low, high, medium, low, high, low, low,
	medium, high, low, low, high, medium, low, high, low, medium, low,
}

// ScaledSource procedurally derives B reproducible synthetic benchmarks
// from a single seed by jittering the three Table-IV intensity-class
// families of the fixed suite. Benchmark i is named
// "<class>-<i padded to 3 digits>" (low-017, high-203, ...), so names
// are self-describing and stable under B changes: scaled:64 and
// scaled:128 with one seed agree on their first 64 benchmarks.
type ScaledSource struct {
	*paramsSource
	b    int
	seed int64
}

// NewScaled builds a scaled source of b benchmarks (MinScaled <= b <=
// MaxScaled) derived from seed. Equal (b, seed) pairs produce identical
// benchmarks on every host.
func NewScaled(b int, seed int64) (*ScaledSource, error) {
	if b < MinScaled || b > MaxScaled {
		return nil, fmt.Errorf("bench: scaled population %d outside [%d, %d]", b, MinScaled, MaxScaled)
	}
	ps := make([]trace.Params, b)
	for i := range ps {
		ps[i] = scaledParams(seed, i)
		if err := ps[i].Validate(); err != nil {
			// The jitter ranges are chosen to always validate; a failure
			// here is a programming error in this file, not bad input.
			panic(err)
		}
	}
	return &ScaledSource{
		paramsSource: newParamsSource(fmt.Sprintf("scaled:%d:%d", b, seed), ps),
		b:            b,
		seed:         seed,
	}, nil
}

// B returns the population size.
func (s *ScaledSource) B() int { return s.b }

// Seed returns the derivation seed.
func (s *ScaledSource) Seed() int64 { return s.seed }

// splitmix64 is the SplitMix64 finaliser, used to derive independent
// per-benchmark RNG streams from (seed, index) without correlation
// between neighbouring indices.
func splitmix64(x uint64) uint64 {
	x += 0x9E3779B97F4A7C15
	x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9
	x = (x ^ (x >> 27)) * 0x94D049BB133111EB
	return x ^ (x >> 31)
}

// benchRNG returns the deterministic RNG stream of benchmark i.
func benchRNG(seed int64, i int) *rand.Rand {
	s := splitmix64(splitmix64(uint64(seed)) + uint64(i))
	return rand.New(rand.NewSource(int64(s & (1<<63 - 1))))
}

// between draws uniformly from [lo, hi).
func between(rng *rand.Rand, lo, hi float64) float64 {
	return lo + rng.Float64()*(hi-lo)
}

// kb draws a footprint between lo and hi kilobytes, quantised to 16 kB
// so footprints land on round set-count boundaries like the suite's.
func kb(rng *rand.Rand, lo, hi int) int {
	steps := (hi-lo)/16 + 1
	return (lo + 16*rng.Intn(steps)) * 1024
}

// scaledParams derives benchmark i of the scaled population. All
// randomness comes from the per-benchmark stream, so one benchmark's
// parameters do not depend on B or on any other benchmark.
func scaledParams(seed int64, i int) trace.Params {
	rng := benchRNG(seed, i)
	class := classPattern[i%len(classPattern)]

	p := trace.Params{
		Name: fmt.Sprintf("%s-%03d", class.prefix(), i),
		Seed: int64(splitmix64(uint64(seed)+uint64(i)) & (1<<62 - 1)),
	}

	// Instruction mix: an FP-heavy scientific flavour or an
	// integer/control flavour, mirroring the two populations of the
	// suite (milc/namd/bwaves vs gcc/gobmk/mcf).
	fpFlavour := rng.Float64() < 0.45
	p.LoadFrac = between(rng, 0.25, 0.35)
	p.StoreFrac = between(rng, 0.10, 0.17)
	if fpFlavour {
		p.FPFrac = between(rng, 0.25, 0.40)
		p.BranchFrac = between(rng, 0.03, 0.10)
		p.BranchBias = between(rng, 0.96, 0.99)
		p.DepMean = between(rng, 12, 20)
		p.LoadDepFrac = between(rng, 0.05, 0.30)
	} else {
		p.FPFrac = between(rng, 0.01, 0.05)
		p.BranchFrac = between(rng, 0.10, 0.20)
		p.BranchBias = between(rng, 0.86, 0.95)
		p.DepMean = between(rng, 4, 10)
		p.LoadDepFrac = between(rng, 0.35, 0.70)
	}
	// Keep an ALU share of at least 5% so the mix always validates.
	if sum := p.LoadFrac + p.StoreFrac + p.BranchFrac + p.FPFrac; sum > 0.95 {
		f := 0.95 / sum
		p.LoadFrac *= f
		p.StoreFrac *= f
		p.BranchFrac *= f
		p.FPFrac *= f
	}

	// Data access mixture per class, calibrated like the suite against
	// the scaled 256 kB 1-core LLC: what decides the class is the
	// footprint a trace actually touches per iteration relative to that
	// LLC.
	switch class {
	case low:
		// Everything touched fits the LLC comfortably.
		p.CodeBytes = kb(rng, 32, 64)
		p.Patterns = []trace.PatternSpec{
			{Kind: trace.HotSet, Bytes: kb(rng, 64, 112), Weight: between(rng, 1, 4)},
		}
		if rng.Float64() < 0.35 {
			p.Patterns = append(p.Patterns,
				trace.PatternSpec{Kind: trace.Chase, Bytes: kb(rng, 16, 32), Weight: 1})
		}
	case medium:
		// A dominant hot set whose cold tail exceeds the LLC: a
		// moderate, partially-cached miss stream.
		p.CodeBytes = kb(rng, 48, 128)
		p.Patterns = []trace.PatternSpec{
			{Kind: trace.HotSet, Bytes: kb(rng, 192, 352), Weight: between(rng, 8, 19)},
		}
		switch rng.Intn(3) {
		case 0:
			p.Patterns = append(p.Patterns,
				trace.PatternSpec{Kind: trace.Chase, Bytes: kb(rng, 96, 192), Weight: 1})
		case 1:
			p.Patterns = append(p.Patterns,
				trace.PatternSpec{Kind: trace.Scan, Bytes: kb(rng, 48, 80), Stride: 16, Weight: 1})
		default:
			p.Patterns = append(p.Patterns,
				trace.PatternSpec{Kind: trace.Stride, Bytes: kb(rng, 768, 1280),
					Stride: 3 * trace.CacheLine, Weight: 1})
		}
	default: // high
		// Per-iteration touched footprint several times the LLC.
		p.CodeBytes = kb(rng, 16, 96)
		hot := trace.PatternSpec{Kind: trace.HotSet, Bytes: kb(rng, 32, 192),
			Weight: between(rng, 3, 9)}
		switch rng.Intn(3) {
		case 0:
			// LRU-hostile cyclic scan (libquantum/soplex family). The
			// hot set is kept large enough that scan + hot set + code
			// always exceed the LLC.
			p.Patterns = []trace.PatternSpec{
				{Kind: trace.Scan, Bytes: kb(rng, 192, 256), Stride: 16,
					Weight: between(rng, 3, 9)},
				{Kind: trace.HotSet, Bytes: kb(rng, 128, 192),
					Weight: between(rng, 3, 9)},
			}
			if rng.Float64() < 0.4 {
				p.Patterns = append(p.Patterns,
					trace.PatternSpec{Kind: trace.Stream, Weight: 1})
			}
		case 1:
			// Miss-serialising pointer chase (mcf/omnetpp family).
			p.LoadDepFrac = between(rng, 0.60, 0.90)
			p.DepMean = between(rng, 4, 7)
			p.Patterns = []trace.PatternSpec{
				{Kind: trace.Chase, Bytes: kb(rng, 2048, 16384),
					Weight: between(rng, 1, 3)},
				hot,
			}
		default:
			// Prefetch-visible streaming (bwaves/leslie3d family).
			p.LoadDepFrac = between(rng, 0.05, 0.15)
			p.Patterns = []trace.PatternSpec{
				{Kind: trace.Stream, Weight: between(rng, 1, 2)},
				{Kind: trace.Stride, Bytes: kb(rng, 4096, 8192),
					Stride: (3 + 2*rng.Intn(3)) * trace.CacheLine,
					Weight: between(rng, 1, 2)},
				hot,
			}
		}
	}
	return p
}
