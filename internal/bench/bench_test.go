package bench

import (
	"context"
	"errors"
	"reflect"
	"sync"
	"sync/atomic"
	"testing"

	"mcbench/internal/trace"
)

var bctx = context.Background()

func TestSuiteSourceMatchesLegacySuite(t *testing.T) {
	src := NewSuite()
	if src.Name() != "suite" {
		t.Errorf("name %q", src.Name())
	}
	if got, want := src.Names(), trace.SuiteNames(); !reflect.DeepEqual(got, want) {
		t.Fatalf("names %v != suite names %v", got, want)
	}
	const n = 4000
	legacy, err := trace.NewSuite(n)
	if err != nil {
		t.Fatal(err)
	}
	for _, name := range src.Names() {
		tr, err := src.Trace(bctx, name, n)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if !reflect.DeepEqual(tr.Ops, legacy[name].Ops) {
			t.Fatalf("%s: source trace diverges from trace.NewSuite", name)
		}
	}
	if got := Resident(src); got != 22 {
		t.Errorf("resident %d after full generation, want 22", got)
	}
}

func TestSourceMemoizesAndReleases(t *testing.T) {
	src := NewSuite()
	a, err := src.Trace(bctx, "mcf", 2000)
	if err != nil {
		t.Fatal(err)
	}
	b, err := src.Trace(bctx, "mcf", 2000)
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Error("second Trace call rebuilt instead of returning the memo")
	}
	if got := Resident(src); got != 1 {
		t.Errorf("resident %d, want 1", got)
	}
	src.Release("mcf")
	if got := Resident(src); got != 0 {
		t.Errorf("resident %d after release, want 0", got)
	}
	c, err := src.Trace(bctx, "mcf", 2000)
	if err != nil {
		t.Fatal(err)
	}
	if c == a {
		t.Error("released trace not rebuilt")
	}
	if !reflect.DeepEqual(c.Ops, a.Ops) {
		t.Error("rebuild after release is not deterministic")
	}
	// The old pointer stays valid after release and rebuild.
	if a.Len() != 2000 || a.Name != "mcf" {
		t.Error("released trace corrupted")
	}
	// Releasing unknown or unbuilt names is a no-op.
	src.Release("mcf")
	src.Release("nosuch")
}

func TestSourceSingleFlight(t *testing.T) {
	var builds atomic.Int64
	m := newMemo(func(ctx context.Context, name string, n int) (*trace.Trace, error) {
		builds.Add(1)
		p, _ := trace.ByName(name)
		return trace.Generate(p, n)
	})
	const callers = 8
	var wg sync.WaitGroup
	got := make([]*trace.Trace, callers)
	for i := 0; i < callers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			tr, err := m.trace(bctx, "gcc", 3000)
			if err != nil {
				panic(err)
			}
			got[i] = tr
		}(i)
	}
	wg.Wait()
	if builds.Load() != 1 {
		t.Errorf("%d builds for %d concurrent callers, want 1", builds.Load(), callers)
	}
	for i := 1; i < callers; i++ {
		if got[i] != got[0] {
			t.Fatalf("caller %d got a different trace pointer", i)
		}
	}
}

func TestSourceLengthMismatchReplaces(t *testing.T) {
	src := NewSuite()
	a, err := src.Trace(bctx, "gcc", 1000)
	if err != nil {
		t.Fatal(err)
	}
	b, err := src.Trace(bctx, "gcc", 2000)
	if err != nil {
		t.Fatal(err)
	}
	if a.Len() != 1000 || b.Len() != 2000 {
		t.Fatalf("lengths %d/%d", a.Len(), b.Len())
	}
	if got := Resident(src); got != 1 {
		t.Errorf("resident %d after replacement, want 1", got)
	}
	// The longer build replaced the shorter; a repeat at 2000 is a hit.
	c, err := src.Trace(bctx, "gcc", 2000)
	if err != nil {
		t.Fatal(err)
	}
	if c != b {
		t.Error("replacement entry not memoized")
	}
}

func TestSourceErrorsNotMemoized(t *testing.T) {
	fail := errors.New("boom")
	calls := 0
	m := newMemo(func(ctx context.Context, name string, n int) (*trace.Trace, error) {
		calls++
		if calls == 1 {
			return nil, fail
		}
		p, _ := trace.ByName(name)
		return trace.Generate(p, n)
	})
	if _, err := m.trace(bctx, "mcf", 1000); !errors.Is(err, fail) {
		t.Fatalf("first call error %v", err)
	}
	if m.Resident() != 0 {
		t.Fatal("failed build left an entry behind")
	}
	if _, err := m.trace(bctx, "mcf", 1000); err != nil {
		t.Fatalf("retry after failure: %v", err)
	}
}

func TestSourceCancellation(t *testing.T) {
	src := NewSuite()
	ctx, cancel := context.WithCancel(bctx)
	cancel()
	if _, err := src.Trace(ctx, "mcf", 1000); !errors.Is(err, context.Canceled) {
		t.Fatalf("error %v, want context.Canceled", err)
	}
	if got := Resident(src); got != 0 {
		t.Errorf("resident %d after cancelled build", got)
	}
}

func TestSourceUnknownBenchmark(t *testing.T) {
	src := NewSuite()
	if _, err := src.Trace(bctx, "nosuch", 1000); err == nil {
		t.Fatal("unknown benchmark accepted")
	}
}

func TestProviderBindsLength(t *testing.T) {
	src := NewSuite()
	prov := At(src, 1500)
	tr, err := prov.Trace(bctx, "povray")
	if err != nil {
		t.Fatal(err)
	}
	if tr.Len() != 1500 {
		t.Fatalf("length %d, want 1500", tr.Len())
	}
	if prov.Source() != Source(src) || prov.Len() != 1500 {
		t.Error("provider accessors broken")
	}
	if !reflect.DeepEqual(prov.Names(), src.Names()) {
		t.Error("provider names diverge from source")
	}
	prov.Release("povray")
	if got := Resident(src); got != 0 {
		t.Errorf("resident %d after provider release", got)
	}
}

func TestParseSpecs(t *testing.T) {
	for _, tc := range []struct {
		spec string
		name string
	}{
		{"", "suite"},
		{"suite", "suite"},
		{"scaled:64", "scaled:64:1"},
		{"scaled:64:7", "scaled:64:7"},
	} {
		src, err := Parse(tc.spec)
		if err != nil {
			t.Fatalf("Parse(%q): %v", tc.spec, err)
		}
		if src.Name() != tc.name {
			t.Errorf("Parse(%q).Name() = %q, want %q", tc.spec, src.Name(), tc.name)
		}
	}
	for _, spec := range []string{"nosuch", "scaled:x", "scaled:64:y", "scaled:4", "scaled:1000", "dir:/nonexistent-dir-xyz"} {
		if _, err := Parse(spec); err == nil {
			t.Errorf("Parse(%q) accepted", spec)
		}
	}
}
