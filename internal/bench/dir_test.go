package bench

import (
	"path/filepath"
	"reflect"
	"testing"

	"mcbench/internal/trace"
)

// writeSuiteDir stores the first few suite benchmarks as .mcbt files and
// returns the directory and the names written.
func writeSuiteDir(t *testing.T, n, count int) (string, []string) {
	t.Helper()
	dir := t.TempDir()
	names := trace.SuiteNames()[:count]
	for _, name := range names {
		p, _ := trace.ByName(name)
		tr, err := trace.Generate(p, n)
		if err != nil {
			t.Fatal(err)
		}
		if err := tr.SaveFile(filepath.Join(dir, name+TraceExt)); err != nil {
			t.Fatal(err)
		}
	}
	return dir, names
}

// TestDirSourceRoundTrip writes suite traces through the trace/io codec
// and reads them back through a DirSource: the loaded µop streams must
// be identical to the generated ones (the write → load → identical
// Results guarantee rests on this, plus the determinism of the
// simulators pinned elsewhere).
func TestDirSourceRoundTrip(t *testing.T) {
	const n = 3000
	dir, names := writeSuiteDir(t, n, 4)
	src, err := NewDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if src.Dir() != dir {
		t.Errorf("Dir() = %q", src.Dir())
	}
	wantNames := append([]string(nil), names...)
	gotNames := src.Names()
	if len(gotNames) != len(wantNames) {
		t.Fatalf("names %v, want %v", gotNames, wantNames)
	}
	for _, name := range wantNames {
		found := false
		for _, g := range gotNames {
			found = found || g == name
		}
		if !found {
			t.Fatalf("names %v missing %s", gotNames, name)
		}
	}
	for _, name := range names {
		p, _ := trace.ByName(name)
		want, err := trace.Generate(p, n)
		if err != nil {
			t.Fatal(err)
		}
		got, err := src.Trace(bctx, name, n)
		if err != nil {
			t.Fatal(err)
		}
		if got.Name != name || !reflect.DeepEqual(got.Ops, want.Ops) {
			t.Fatalf("%s: loaded trace differs from generated", name)
		}
	}
	if got := Resident(src); got != len(names) {
		t.Errorf("resident %d, want %d", got, len(names))
	}
	for _, name := range names {
		src.Release(name)
	}
	if got := Resident(src); got != 0 {
		t.Errorf("resident %d after release", got)
	}
}

func TestDirSourceLengths(t *testing.T) {
	const n = 2000
	dir, names := writeSuiteDir(t, n, 1)
	src, err := NewDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	name := names[0]
	full, err := src.Trace(bctx, name, 0)
	if err != nil || full.Len() != n {
		t.Fatalf("full load: %v, len %d", err, full.Len())
	}
	exact, err := src.Trace(bctx, name, n)
	if err != nil || exact != full {
		t.Fatalf("exact-length load: %v, shared=%v", err, exact == full)
	}
	prefix, err := src.Trace(bctx, name, 500)
	if err != nil || prefix.Len() != 500 {
		t.Fatalf("prefix: %v, len %d", err, prefix.Len())
	}
	if !reflect.DeepEqual(prefix.Ops, full.Ops[:500]) {
		t.Error("prefix view diverges from the stored µops")
	}
	if _, err := src.Trace(bctx, name, n+1); err == nil {
		t.Error("over-long request accepted")
	}
	// One stored trace backs all the views.
	if got := Resident(src); got != 1 {
		t.Errorf("resident %d, want 1", got)
	}
}

func TestDirSourceRejectsMismatchedName(t *testing.T) {
	dir := t.TempDir()
	p, _ := trace.ByName("mcf")
	tr, err := trace.Generate(p, 1000)
	if err != nil {
		t.Fatal(err)
	}
	// Stored under a different benchmark name than the trace carries.
	if err := tr.SaveFile(filepath.Join(dir, "impostor"+TraceExt)); err != nil {
		t.Fatal(err)
	}
	src, err := NewDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := src.Trace(bctx, "impostor", 0); err == nil {
		t.Fatal("mismatched embedded name accepted")
	}
}

func TestDirSourceEmptyDir(t *testing.T) {
	if _, err := NewDir(t.TempDir()); err == nil {
		t.Fatal("empty directory accepted")
	}
}
