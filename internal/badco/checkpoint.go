package badco

// Checkpoint support: a Machine's State is its replay cursor (node index
// and iteration), the per-node time vectors and the clocks. The model and
// the memory binding are identity, owned by whoever rebuilds the machine.
// Fields are exported so snapshots survive encoding/gob persistence;
// Snapshot into a warmed buffer and Restore are allocation-free.

// State is a reusable deep snapshot of a Machine.
type State struct {
	Next     int
	Iter     uint64
	IssueT   []uint64
	CompT    []uint64
	PrevEnd  uint64
	Clock    uint64
	ReqCount uint64
}

// Snapshot deep-copies the machine's mutable state into the buffer.
func (ma *Machine) Snapshot(into *State) {
	into.Next = ma.next
	into.Iter = ma.iter
	into.IssueT = append(into.IssueT[:0], ma.issueT...)
	into.CompT = append(into.CompT[:0], ma.compT...)
	into.PrevEnd = ma.prevEnd
	into.Clock = ma.clock
	into.ReqCount = ma.reqCount
}

// Restore overwrites the machine's mutable state from the buffer. The
// target must replay the same model as the snapshot's source.
func (ma *Machine) Restore(from *State) {
	ma.next = from.Next
	ma.iter = from.Iter
	copy(ma.issueT, from.IssueT)
	copy(ma.compT, from.CompT)
	ma.prevEnd = from.PrevEnd
	ma.clock = from.Clock
	ma.reqCount = from.ReqCount
}
