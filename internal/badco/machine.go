package badco

import (
	"fmt"

	"mcbench/internal/uncore"
)

// Machine replays a Model against a memory hierarchy. It is the fast
// counterpart of cpu.Core: it executes one node (one demand uncore
// request plus its satellites) per Step instead of one µop, skipping all
// intra-core computation, which is where the simulation speedup comes
// from.
type Machine struct {
	model *Model
	mem   uncore.Memory
	unc   *uncore.Uncore // mem devirtualized, when it is the real uncore
	id    int

	next    int      // next node index within the current iteration
	iter    uint64   // completed trace iterations
	issueT  []uint64 // per-node issue times, current iteration
	compT   []uint64 // per-node completion times, current iteration
	prevEnd uint64   // end time of the previous iteration
	clock   uint64   // monotonic local clock

	reqCount uint64 // total demand requests replayed
}

// NewMachine binds a model to a core id and memory hierarchy. The
// machine's memory parallelism is bounded by the model's instruction
// window (WindowDep), the same limit the detailed core enforced during
// calibration, so no separate MSHR parameter is needed.
func NewMachine(id int, m *Model, mem uncore.Memory) (*Machine, error) {
	if m == nil {
		return nil, fmt.Errorf("badco: nil model")
	}
	if mem == nil {
		return nil, fmt.Errorf("badco: nil memory")
	}
	unc, _ := mem.(*uncore.Uncore)
	return &Machine{
		model:  m,
		mem:    mem,
		unc:    unc,
		id:     id,
		issueT: make([]uint64, len(m.Nodes)),
		compT:  make([]uint64, len(m.Nodes)),
	}, nil
}

// MustNewMachine is NewMachine for known-good arguments.
func MustNewMachine(id int, m *Model, mem uncore.Memory) *Machine {
	ma, err := NewMachine(id, m, mem)
	if err != nil {
		panic(err)
	}
	return ma
}

// ID returns the machine's core id.
func (ma *Machine) ID() int { return ma.id }

// Model returns the machine's model.
func (ma *Machine) Model() *Model { return ma.model }

// Requests returns the number of demand requests replayed.
func (ma *Machine) Requests() uint64 { return ma.reqCount }

// Now returns the machine's monotonic local clock. The multicore driver
// steps the machine with the smallest Now.
func (ma *Machine) Now() uint64 { return ma.clock }

// Committed returns the total number of committed µops: completed
// iterations plus the progress implied by the last executed node.
func (ma *Machine) Committed() uint64 {
	c := ma.iter * uint64(ma.model.TraceLen)
	if ma.next > 0 {
		c += uint64(ma.model.Nodes[ma.next-1].OpIndex)
	}
	return c
}

// IterationEnds returns the completed iteration count and the end time of
// the last completed iteration.
func (ma *Machine) IterationEnds() (iters, endCycle uint64) {
	return ma.iter, ma.prevEnd
}

// Step executes one node: waits for its anchor, issues its demand request
// and its satellites, and records completion. Models with no nodes (fully
// L1-resident benchmarks) advance a whole iteration per Step. It returns
// the machine's local clock after the step.
func (ma *Machine) Step() uint64 {
	m := ma.model
	if len(m.Nodes) == 0 {
		ma.prevEnd += m.Head
		ma.iter++
		ma.clock = ma.prevEnd
		return ma.clock
	}
	j := ma.next
	n := &m.Nodes[j]
	issueT, compT := ma.issueT, ma.compT

	var t int64
	switch {
	case j == 0:
		// Head is the lead-in compute time of the iteration's first node.
		t = int64(ma.prevEnd + m.Head)
	case n.Dep >= 0:
		t = int64(compT[n.Dep]) + n.Delay
	default:
		t = int64(issueT[j-1]) + n.Delay
	}
	if t < int64(ma.prevEnd) {
		t = int64(ma.prevEnd)
	}
	issue := uint64(t)
	// The instruction window bounds run-ahead: this node cannot issue
	// before the node one ROB behind it has completed.
	if n.WindowDep >= 0 {
		if w := compT[n.WindowDep]; w > issue {
			issue = w
		}
	}
	done := ma.mem.Access(ma.id, n.PC, n.VAddr, n.Write, false, issue)
	ma.reqCount++
	for i := range n.Satellites {
		s := &n.Satellites[i]
		ma.mem.Access(ma.id, s.PC, s.VAddr, s.Write, s.Prefetch, issue+s.Offset)
	}

	issueT[j] = issue
	compT[j] = done
	if done > ma.clock {
		ma.clock = done
	}
	ma.next++
	if ma.next == len(m.Nodes) {
		ma.prevEnd = done + m.Tail
		ma.iter++
		ma.next = 0
		if ma.prevEnd > ma.clock {
			ma.clock = ma.prevEnd
		}
	}
	return ma.clock
}

// StepUntil executes nodes until the local clock reaches limit or the
// committed µop count reaches quota, whichever comes first, and returns
// the number of nodes executed. It is the batch form of Step used by the
// multicore driver: because Now is nondecreasing and the other cores'
// clocks cannot change while this machine runs, stepping until the clock
// reaches the runner-up core's clock reproduces the per-step
// smallest-clock-first schedule exactly, with one dispatch per batch.
//
// The loop body is Step's node replay with the machine state held in
// locals and the committed count maintained incrementally; the golden
// determinism tests (internal/multicore) pin it to the Step-based
// reference driver, so the two cannot drift apart unnoticed.
func (ma *Machine) StepUntil(limit, quota uint64) (steps uint64) {
	m := ma.model
	nodes := m.Nodes
	if len(nodes) == 0 {
		for ma.clock < limit && ma.Committed() < quota {
			ma.Step()
			steps++
		}
		return steps
	}
	issueT, compT := ma.issueT, ma.compT
	unc, mem, id := ma.unc, ma.mem, ma.id
	next, iter := ma.next, ma.iter
	prevEnd, clock := ma.prevEnd, ma.clock
	reqs := ma.reqCount
	iterBase := iter * uint64(m.TraceLen)
	committed := iterBase
	if next > 0 {
		committed += uint64(nodes[next-1].OpIndex)
	}
	for clock < limit && committed < quota {
		n := &nodes[next]
		var t int64
		switch {
		case next == 0:
			t = int64(prevEnd + m.Head)
		case n.Dep >= 0:
			t = int64(compT[n.Dep]) + n.Delay
		default:
			t = int64(issueT[next-1]) + n.Delay
		}
		if t < int64(prevEnd) {
			t = int64(prevEnd)
		}
		issue := uint64(t)
		if n.WindowDep >= 0 {
			if w := compT[n.WindowDep]; w > issue {
				issue = w
			}
		}
		var done uint64
		if unc != nil {
			done = unc.Access(id, n.PC, n.VAddr, n.Write, false, issue)
		} else {
			done = mem.Access(id, n.PC, n.VAddr, n.Write, false, issue)
		}
		reqs++
		for i := range n.Satellites {
			s := &n.Satellites[i]
			if unc != nil {
				unc.Access(id, s.PC, s.VAddr, s.Write, s.Prefetch, issue+s.Offset)
			} else {
				mem.Access(id, s.PC, s.VAddr, s.Write, s.Prefetch, issue+s.Offset)
			}
		}
		issueT[next] = issue
		compT[next] = done
		if done > clock {
			clock = done
		}
		next++
		if next == len(nodes) {
			prevEnd = done + m.Tail
			iter++
			next = 0
			iterBase += uint64(m.TraceLen)
			committed = iterBase
			if prevEnd > clock {
				clock = prevEnd
			}
		} else {
			committed = iterBase + uint64(n.OpIndex)
		}
		steps++
	}
	ma.next, ma.iter = next, iter
	ma.prevEnd, ma.clock = prevEnd, clock
	ma.reqCount = reqs
	return steps
}

// RunIterations executes n full trace iterations and returns the end time
// of the last one.
func (ma *Machine) RunIterations(n int) uint64 {
	target := ma.iter + uint64(n)
	for ma.iter < target {
		ma.Step()
	}
	return ma.prevEnd
}

// CPI returns cycles per µop over the completed iterations.
func (ma *Machine) CPI() float64 {
	if ma.iter == 0 {
		return 0
	}
	return float64(ma.prevEnd) / float64(ma.iter*uint64(ma.model.TraceLen))
}
