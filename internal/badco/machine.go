package badco

import (
	"fmt"

	"mcbench/internal/uncore"
)

// Machine replays a Model against a memory hierarchy. It is the fast
// counterpart of cpu.Core: it executes one node (one demand uncore
// request plus its satellites) per Step instead of one µop, skipping all
// intra-core computation, which is where the simulation speedup comes
// from.
type Machine struct {
	model *Model
	mem   uncore.Memory
	id    int

	next    int      // next node index within the current iteration
	iter    uint64   // completed trace iterations
	issueT  []uint64 // per-node issue times, current iteration
	compT   []uint64 // per-node completion times, current iteration
	prevEnd uint64   // end time of the previous iteration
	clock   uint64   // monotonic local clock

	reqCount uint64 // total demand requests replayed
}

// NewMachine binds a model to a core id and memory hierarchy. The
// machine's memory parallelism is bounded by the model's instruction
// window (WindowDep), the same limit the detailed core enforced during
// calibration, so no separate MSHR parameter is needed.
func NewMachine(id int, m *Model, mem uncore.Memory) (*Machine, error) {
	if m == nil {
		return nil, fmt.Errorf("badco: nil model")
	}
	if mem == nil {
		return nil, fmt.Errorf("badco: nil memory")
	}
	return &Machine{
		model:  m,
		mem:    mem,
		id:     id,
		issueT: make([]uint64, len(m.Nodes)),
		compT:  make([]uint64, len(m.Nodes)),
	}, nil
}

// MustNewMachine is NewMachine for known-good arguments.
func MustNewMachine(id int, m *Model, mem uncore.Memory) *Machine {
	ma, err := NewMachine(id, m, mem)
	if err != nil {
		panic(err)
	}
	return ma
}

// ID returns the machine's core id.
func (ma *Machine) ID() int { return ma.id }

// Model returns the machine's model.
func (ma *Machine) Model() *Model { return ma.model }

// Requests returns the number of demand requests replayed.
func (ma *Machine) Requests() uint64 { return ma.reqCount }

// Now returns the machine's monotonic local clock. The multicore driver
// steps the machine with the smallest Now.
func (ma *Machine) Now() uint64 { return ma.clock }

// Committed returns the total number of committed µops: completed
// iterations plus the progress implied by the last executed node.
func (ma *Machine) Committed() uint64 {
	c := ma.iter * uint64(ma.model.TraceLen)
	if ma.next > 0 {
		c += uint64(ma.model.Nodes[ma.next-1].OpIndex)
	}
	return c
}

// IterationEnds returns the completed iteration count and the end time of
// the last completed iteration.
func (ma *Machine) IterationEnds() (iters, endCycle uint64) {
	return ma.iter, ma.prevEnd
}

// Step executes one node: waits for its anchor, issues its demand request
// and its satellites, and records completion. Models with no nodes (fully
// L1-resident benchmarks) advance a whole iteration per Step. It returns
// the machine's local clock after the step.
func (ma *Machine) Step() uint64 {
	m := ma.model
	if len(m.Nodes) == 0 {
		ma.prevEnd += m.Head
		ma.iter++
		ma.clock = ma.prevEnd
		return ma.clock
	}
	j := ma.next
	n := &m.Nodes[j]

	var t int64
	switch {
	case j == 0:
		// Head is the lead-in compute time of the iteration's first node.
		t = int64(ma.prevEnd + m.Head)
	case n.Dep >= 0:
		t = int64(ma.compT[n.Dep]) + n.Delay
	default:
		t = int64(ma.issueT[j-1]) + n.Delay
	}
	if t < int64(ma.prevEnd) {
		t = int64(ma.prevEnd)
	}
	issue := uint64(t)
	// The instruction window bounds run-ahead: this node cannot issue
	// before the node one ROB behind it has completed.
	if n.WindowDep >= 0 {
		if w := ma.compT[n.WindowDep]; w > issue {
			issue = w
		}
	}
	done := ma.mem.Access(ma.id, n.PC, n.VAddr, n.Write, false, issue)
	ma.reqCount++
	for _, s := range n.Satellites {
		ma.mem.Access(ma.id, s.PC, s.VAddr, s.Write, s.Prefetch, issue+s.Offset)
	}

	ma.issueT[j] = issue
	ma.compT[j] = done
	if done > ma.clock {
		ma.clock = done
	}
	ma.next++
	if ma.next == len(m.Nodes) {
		ma.prevEnd = done + m.Tail
		ma.iter++
		ma.next = 0
		if ma.prevEnd > ma.clock {
			ma.clock = ma.prevEnd
		}
	}
	return ma.clock
}

// RunIterations executes n full trace iterations and returns the end time
// of the last one.
func (ma *Machine) RunIterations(n int) uint64 {
	target := ma.iter + uint64(n)
	for ma.iter < target {
		ma.Step()
	}
	return ma.prevEnd
}

// CPI returns cycles per µop over the completed iterations.
func (ma *Machine) CPI() float64 {
	if ma.iter == 0 {
		return 0
	}
	return float64(ma.prevEnd) / float64(ma.iter*uint64(ma.model.TraceLen))
}
