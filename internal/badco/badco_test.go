package badco

import (
	"math"
	"testing"
	"time"

	"mcbench/internal/cache"
	"mcbench/internal/cpu"
	"mcbench/internal/trace"
	"mcbench/internal/uncore"
)

const testTraceLen = 30000

func buildModel(t *testing.T, name string) (*Model, *trace.Trace) {
	t.Helper()
	p, ok := trace.ByName(name)
	if !ok {
		t.Fatalf("unknown benchmark %s", name)
	}
	tr := trace.MustGenerate(p, testTraceLen)
	m, err := Build(tr, DefaultBuildConfig())
	if err != nil {
		t.Fatalf("Build(%s): %v", name, err)
	}
	return m, tr
}

func TestBuildValidation(t *testing.T) {
	if _, err := Build(nil, DefaultBuildConfig()); err == nil {
		t.Error("Build accepted nil trace")
	}
	cfg := DefaultBuildConfig()
	cfg.LatB = cfg.LatA
	p, _ := trace.ByName("mcf")
	tr := trace.MustGenerate(p, 1000)
	if _, err := Build(tr, cfg); err == nil {
		t.Error("Build accepted equal calibration latencies")
	}
}

func TestModelStructure(t *testing.T) {
	m, tr := buildModel(t, "mcf")
	if m.NodeCount() == 0 {
		t.Fatal("mcf model has no nodes")
	}
	if m.TraceLen != tr.Len() {
		t.Errorf("trace length %d, want %d", m.TraceLen, tr.Len())
	}
	prevOp := -1
	for i, n := range m.Nodes {
		if n.OpIndex < prevOp {
			t.Fatalf("node %d op index %d < previous %d", i, n.OpIndex, prevOp)
		}
		prevOp = n.OpIndex
		if n.Dep >= i {
			t.Fatalf("node %d depends on later node %d", i, n.Dep)
		}
	}
}

func TestMemoryBoundHasMoreNodes(t *testing.T) {
	mcf, _ := buildModel(t, "mcf")
	povray, _ := buildModel(t, "povray")
	if mcf.RequestsPerKiloOp() <= povray.RequestsPerKiloOp() {
		t.Errorf("mcf %.2f req/kop not above povray %.2f",
			mcf.RequestsPerKiloOp(), povray.RequestsPerKiloOp())
	}
}

func TestChaseModelHasDependencies(t *testing.T) {
	// Pointer chasing serialises misses: many nodes must carry inferred
	// dependencies.
	m, _ := buildModel(t, "mcf")
	dep := 0
	for _, n := range m.Nodes {
		if n.Dep >= 0 {
			dep++
		}
	}
	if frac := float64(dep) / float64(len(m.Nodes)); frac < 0.3 {
		t.Errorf("mcf dependent-node fraction %.2f, want >= 0.3", frac)
	}
}

func TestStreamModelKeepsMemoryParallelism(t *testing.T) {
	// libquantum streams: its misses overlap in the detailed core, so the
	// model must retain memory-level parallelism — replaying it against a
	// slow memory has to finish well ahead of the fully serialised bound.
	// (Node-level Dep fractions are not meaningful here: rhythmic streams
	// produce coincidental delta matches that faithfully mimic timing.)
	m, _ := buildModel(t, "libquantum")
	const lat = 300
	end := MustNewMachine(0, m, &uncore.FixedLatency{Lat: lat}).RunIterations(1)
	serialBound := uint64(len(m.Nodes)) * lat
	if end*2 >= serialBound {
		t.Errorf("libquantum replay at lat %d took %d cycles, want < half the serial bound %d",
			lat, end, serialBound)
	}
	// A pointer chase, by contrast, must be strongly serialised: more
	// cycles per node than the stream.
	mcf, _ := buildModel(t, "mcf")
	mcfEnd := MustNewMachine(0, mcf, &uncore.FixedLatency{Lat: lat}).RunIterations(1)
	mcfPerNode := float64(mcfEnd) / float64(len(mcf.Nodes))
	libqPerNode := float64(end) / float64(len(m.Nodes))
	if mcfPerNode <= libqPerNode {
		t.Errorf("mcf %.1f cycles/node not above libquantum %.1f", mcfPerNode, libqPerNode)
	}
}

// The machine must reproduce the calibration run almost exactly when
// replayed against the calibration latency.
func TestMachineReproducesCalibration(t *testing.T) {
	for _, name := range []string{"mcf", "gcc", "povray", "libquantum"} {
		m, _ := buildModel(t, name)
		cfg := DefaultBuildConfig()
		ma := MustNewMachine(0, m, &uncore.FixedLatency{Lat: cfg.LatA})
		end := ma.RunIterations(1)
		err := math.Abs(float64(end)-float64(m.CalCycles)) / float64(m.CalCycles)
		if err > 0.08 {
			t.Errorf("%s: replay at calibration latency ends at %d vs detailed %d (%.1f%% error)",
				name, end, m.CalCycles, err*100)
		}
	}
}

// CPI error against the detailed simulator on a real uncore should be
// small (the paper reports ~4-5% average, < 22% max on its setup).
func TestMachineApproximatesDetailedOnRealUncore(t *testing.T) {
	var totalErr float64
	names := []string{"mcf", "gcc", "povray", "libquantum", "soplex", "hmmer"}
	for _, name := range names {
		p, _ := trace.ByName(name)
		tr := trace.MustGenerate(p, testTraceLen)
		m, err := Build(tr, DefaultBuildConfig())
		if err != nil {
			t.Fatal(err)
		}

		det := cpu.MustNew(0, cpu.DefaultConfig(), tr,
			uncore.MustNew(uncore.ConfigFor(1, cache.LRU)))
		det.Run(tr.Len())
		detCPI := det.Stats().CPI()

		ma := MustNewMachine(0, m, uncore.MustNew(uncore.ConfigFor(1, cache.LRU)))
		ma.RunIterations(1)
		badcoCPI := ma.CPI()

		relErr := math.Abs(badcoCPI-detCPI) / detCPI
		totalErr += relErr
		t.Logf("%s: detailed CPI %.3f, BADCO CPI %.3f (%.1f%% error)",
			name, detCPI, badcoCPI, relErr*100)
		// The paper reports < 22% worst-case on its setup; our worst case
		// (streaming benchmarks at short trace lengths, where flat-latency
		// calibration undershoots a bimodal-latency uncore) is wider.
		if relErr > 0.45 {
			t.Errorf("%s: BADCO CPI error %.1f%% exceeds 45%%", name, relErr*100)
		}
	}
	if avg := totalErr / float64(len(names)); avg > 0.18 {
		t.Errorf("average BADCO CPI error %.1f%%, want <= 18%%", avg*100)
	}
}

func TestMachineFasterThanDetailed(t *testing.T) {
	p, _ := trace.ByName("gcc")
	tr := trace.MustGenerate(p, testTraceLen)
	m, err := Build(tr, DefaultBuildConfig())
	if err != nil {
		t.Fatal(err)
	}

	timeIt := func(f func()) time.Duration {
		start := time.Now()
		f()
		return time.Since(start)
	}
	detDur := timeIt(func() {
		det := cpu.MustNew(0, cpu.DefaultConfig(), tr,
			uncore.MustNew(uncore.ConfigFor(1, cache.LRU)))
		det.Run(tr.Len() * 3)
	})
	badcoDur := timeIt(func() {
		ma := MustNewMachine(0, m, uncore.MustNew(uncore.ConfigFor(1, cache.LRU)))
		ma.RunIterations(3)
	})
	if badcoDur*2 >= detDur {
		t.Errorf("BADCO (%v) not clearly faster than detailed (%v)", badcoDur, detDur)
	}
}

func TestMachineIterationAccounting(t *testing.T) {
	m, tr := buildModel(t, "astar")
	ma := MustNewMachine(0, m, &uncore.FixedLatency{Lat: 50})
	ma.RunIterations(3)
	iters, end := ma.IterationEnds()
	if iters != 3 {
		t.Errorf("iterations %d, want 3", iters)
	}
	if end == 0 {
		t.Error("zero end time")
	}
	if got := ma.Committed(); got != 3*uint64(tr.Len()) {
		t.Errorf("committed %d, want %d", got, 3*tr.Len())
	}
	if ma.CPI() <= 0 {
		t.Error("non-positive CPI")
	}
}

func TestMachineMonotonicClock(t *testing.T) {
	m, _ := buildModel(t, "soplex")
	ma := MustNewMachine(0, m, uncore.MustNew(uncore.ConfigFor(1, cache.DIP)))
	prev := uint64(0)
	for i := 0; i < len(m.Nodes)*2+10; i++ {
		now := ma.Step()
		if now < prev {
			t.Fatalf("clock went backwards at step %d: %d < %d", i, now, prev)
		}
		prev = now
	}
}

func TestEmptyNodeModel(t *testing.T) {
	// A trace with a tiny working set may produce a model with only a
	// handful of nodes; an artificial node-free model must still advance.
	m := &Model{Name: "none", TraceLen: 1000, Head: 250}
	ma := MustNewMachine(0, m, &uncore.FixedLatency{Lat: 10})
	end := ma.RunIterations(2)
	if end != 500 {
		t.Errorf("node-free model end %d, want 500", end)
	}
	if ma.Committed() != 2000 {
		t.Errorf("committed %d, want 2000", ma.Committed())
	}
}

func TestNewMachineValidation(t *testing.T) {
	m, _ := buildModel(t, "hmmer")
	if _, err := NewMachine(0, nil, &uncore.FixedLatency{}); err == nil {
		t.Error("NewMachine accepted nil model")
	}
	if _, err := NewMachine(0, m, nil); err == nil {
		t.Error("NewMachine accepted nil memory")
	}
}

// Slower memory must slow the machine down (sanity of the replay timing).
func TestMachineLatencySensitivity(t *testing.T) {
	m, _ := buildModel(t, "mcf")
	fast := MustNewMachine(0, m, &uncore.FixedLatency{Lat: 30})
	slow := MustNewMachine(0, m, &uncore.FixedLatency{Lat: 300})
	fEnd := fast.RunIterations(1)
	sEnd := slow.RunIterations(1)
	if sEnd <= fEnd {
		t.Errorf("300-cycle memory end %d not after 30-cycle end %d", sEnd, fEnd)
	}
}
